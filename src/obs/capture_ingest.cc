#include "obs/capture_ingest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "sql/parser.h"

namespace hd {

namespace {

// Minimal scanner for one flat JSON object (hd-qlog/1 lines contain no
// nested objects or arrays). Respects string escapes, so a key name
// appearing inside a captured SQL string cannot confuse field lookup —
// the failure mode a naive substring search would have. String values
// are unescaped; numbers/booleans are stored raw.
bool ParseFlatJson(const std::string& s,
                   std::map<std::string, std::string>* out) {
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  };
  auto parse_string = [&](std::string* v) -> bool {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    v->clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': *v += '\n'; break;
          case 'r': *v += '\r'; break;
          case 't': *v += '\t'; break;
          case 'u': {
            if (i + 4 >= s.size()) return false;
            unsigned code = std::strtoul(s.substr(i + 1, 4).c_str(), nullptr, 16);
            *v += static_cast<char>(code < 0x80 ? code : '?');
            i += 4;
            break;
          }
          default: *v += s[i];
        }
      } else {
        *v += s[i];
      }
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skip_ws();
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < s.size() && s[i] == '}') return true;
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(&key)) return false;
    skip_ws();
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    skip_ws();
    std::string val;
    if (i < s.size() && s[i] == '"') {
      if (!parse_string(&val)) return false;
    } else {
      while (i < s.size() && s[i] != ',' && s[i] != '}') val += s[i++];
      while (!val.empty() && (val.back() == ' ' || val.back() == '\t')) {
        val.pop_back();
      }
    }
    (*out)[key] = std::move(val);
    skip_ws();
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') return true;
    return false;
  }
}

}  // namespace

Result<std::vector<CapturedClass>> LoadQlog(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open capture: " + path);
  std::vector<CapturedClass> classes;
  std::map<uint64_t, size_t> index;  // fingerprint -> classes slot
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::map<std::string, std::string> f;
    if (!ParseFlatJson(line, &f)) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": malformed qlog line");
    }
    if (f["schema"] != "hd-qlog/1") {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": schema '" + f["schema"] +
                                     "' is not hd-qlog/1");
    }
    if (f["status"] != "ok") continue;  // don't tune for failures
    const std::string& sql = f["sql"];
    if (sql.empty()) continue;  // API-level traffic carries no SQL text
    const uint64_t fp = std::strtoull(f["fp"].c_str(), nullptr, 16);
    auto [it, fresh] = index.emplace(fp, classes.size());
    if (fresh) {
      CapturedClass c;
      c.fingerprint = fp;
      c.sql = sql;
      c.norm = f["norm"];
      c.kind = f["kind"];
      classes.push_back(std::move(c));
    }
    CapturedClass& c = classes[it->second];
    c.calls++;
    c.total_ms += std::strtod(f["latency_ms"].c_str(), nullptr);
  }
  return classes;
}

Result<std::vector<Query>> WorkloadFromCapture(const Database& db,
                                               const std::string& path,
                                               size_t* skipped) {
  HD_ASSIGN_OR_RETURN(std::vector<CapturedClass> classes, LoadQlog(path));
  std::vector<Query> workload;
  size_t dropped = 0;
  for (const CapturedClass& c : classes) {
    Result<Query> q = ParseSql(db, c.sql);
    if (!q.ok()) {
      // Schema drift (table/column dropped since capture) — skip the
      // class rather than failing the whole tuning run.
      ++dropped;
      continue;
    }
    Query query = q.take();
    query.explain = Query::ExplainMode::kNone;  // advisor costs plain runs
    query.weight = static_cast<double>(c.calls);
    workload.push_back(std::move(query));
  }
  if (skipped != nullptr) *skipped = dropped;
  return workload;
}

}  // namespace hd
