#include "obs/query_store.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <sstream>

#include "common/failpoint.h"

namespace hd {

uint64_t FingerprintText(const std::string& text) {
  // FNV-1a 64-bit: tiny, deterministic across platforms, and good enough
  // dispersion for a statement-class key (collisions merge two classes'
  // aggregates — harmless for tuning input, and astronomically unlikely
  // at workload scale).
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string FingerprintHex(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, fp);
  return std::string(buf);
}

namespace {

uint64_t WallMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string StatusName(Code c) { return c == Code::kOk ? "ok" : "error"; }

// One-line preview of a statement for the text tables: collapse to a
// single line and cap the width so `.queries` stays readable.
std::string Preview(const std::string& s, size_t width) {
  std::string out;
  out.reserve(std::min(s.size(), width));
  for (char c : s) {
    out += (c == '\n' || c == '\t' || c == '\r') ? ' ' : c;
    if (out.size() >= width) {
      out.resize(width - 3);
      out += "...";
      break;
    }
  }
  return out;
}

}  // namespace

QueryStore::QueryStore(QueryStoreOptions opts) : opts_(std::move(opts)) {
  per_shard_cap_ = opts_.capacity / kShards;
  if (opts_.capacity > 0 && per_shard_cap_ == 0) per_shard_cap_ = 1;
  if (opts_.slow_log_capacity > 0) {
    slow_ring_.reserve(std::min<size_t>(opts_.slow_log_capacity, 64));
  }
  Telemetry& t = Telemetry::Instance();
  c_recorded_ = t.Counter("qstore.recorded");
  c_dropped_ = t.Counter("qstore.dropped");
  c_evicted_ = t.Counter("qstore.evicted");
  c_slow_ = t.Counter("qstore.slow");
  c_fp_overflow_ = t.Counter("qstore.fp_overflow");
  if (!opts_.qlog_path.empty()) {
    qlog_ = std::fopen(opts_.qlog_path.c_str(), "a");
    // A qlog that cannot be opened must not take the store (or the
    // engine) down: capture is best-effort. Records simply stay
    // in-memory-only; ExportQlog remains available.
  }
}

QueryStore::~QueryStore() {
  std::lock_guard<std::mutex> g(qlog_mu_);
  if (qlog_ != nullptr) {
    std::fclose(qlog_);
    qlog_ = nullptr;
  }
}

void QueryStore::Record(QueryRecord rec) {
  // Best-effort seam: a poisoned store write drops the record, never the
  // query (chaos_test sweeps this point and asserts exactly that).
  if (!EvalFailPoint("querystore.record").ok()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    c_dropped_->Add(1);
    return;
  }
  rec.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  rec.ts_ms = WallMs();
  if (rec.fingerprint == 0) {
    rec.fingerprint =
        FingerprintText(rec.norm.empty() ? rec.sql : rec.norm);
  }
  if (rec.rows_out == 0) {
    rec.rows_out = rec.metrics.rows_output.load(std::memory_order_relaxed);
  }
  rec.rows_scanned = rec.metrics.rows_scanned.load(std::memory_order_relaxed);
  rec.decode_bytes =
      rec.metrics.bytes_processed.load(std::memory_order_relaxed);
  rec.slow = opts_.slow_query_ms >= 0 && rec.latency_ms >= opts_.slow_query_ms;

  Aggregate(rec);

  if (rec.slow) {
    slow_.fetch_add(1, std::memory_order_relaxed);
    c_slow_->Add(1);
    if (opts_.slow_log_capacity > 0) {
      std::lock_guard<std::mutex> g(slow_mu_);
      if (slow_ring_.size() < opts_.slow_log_capacity) {
        slow_ring_.push_back(rec);
      } else {
        slow_ring_[slow_next_] = rec;
        slow_next_ = (slow_next_ + 1) % opts_.slow_log_capacity;
      }
    }
  }

  // The qlog line is written under the file lock, which also assigns the
  // final ts_ms (clamped monotone) so the JSONL stream satisfies the
  // hd-qlog/1 ordering contract even with concurrent writers.
  AppendQlog(&rec);

  recorded_.fetch_add(1, std::memory_order_relaxed);
  c_recorded_->Add(1);

  if (per_shard_cap_ > 0) Retain(std::move(rec));
}

void QueryStore::Retain(QueryRecord&& rec) {
  RingShard& sh = rings_[rec.seq % kShards];
  std::lock_guard<std::mutex> g(sh.mu);
  if (sh.ring.size() < per_shard_cap_) {
    sh.ring.push_back(std::move(rec));
  } else {
    sh.ring[sh.next] = std::move(rec);
    sh.next = (sh.next + 1) % per_shard_cap_;
    evicted_.fetch_add(1, std::memory_order_relaxed);
    c_evicted_->Add(1);
  }
}

void QueryStore::Aggregate(const QueryRecord& rec) {
  AggShard& sh = aggs_[rec.fingerprint % kShards];
  const int64_t lat_ns = static_cast<int64_t>(rec.latency_ms * 1e6);
  std::lock_guard<std::mutex> g(sh.mu);
  FpAgg& a = sh.by_fp[rec.fingerprint];
  if (a.calls == 0) {
    a.norm = rec.norm.empty() ? rec.sql : rec.norm;
    a.kind = rec.kind;
    if (opts_.max_exported_fingerprints > 0) {
      // First-come capped exposition: the fetch_add reserves a slot; on
      // overflow the class still aggregates locally, it just gets no
      // registry series.
      size_t slot = exported_fps_.fetch_add(1, std::memory_order_relaxed);
      if (slot < opts_.max_exported_fingerprints) {
        const std::string base = "qstore.fp." + FingerprintHex(rec.fingerprint);
        Telemetry& t = Telemetry::Instance();
        a.exp_calls = t.Counter(base + ".calls");
        a.exp_errors = t.Counter(base + ".errors");
        a.exp_latency = t.Histogram(base + ".latency_ns");
      } else {
        c_fp_overflow_->Add(1);
      }
    }
  }
  a.calls++;
  if (rec.code != Code::kOk) a.errors++;
  a.rows_out += rec.rows_out;
  a.decode_bytes += rec.decode_bytes;
  a.total_ms += rec.latency_ms;
  a.min_ms = a.calls == 1 ? rec.latency_ms : std::min(a.min_ms, rec.latency_ms);
  a.max_ms = std::max(a.max_ms, rec.latency_ms);
  a.latency_ns.Record(lat_ns);
  if (a.exp_calls != nullptr) {
    a.exp_calls->Add(1);
    if (rec.code != Code::kOk) a.exp_errors->Add(1);
    a.exp_latency->Record(lat_ns);
  }
}

std::string QueryStore::ToQlogJson(const QueryRecord& rec) {
  std::ostringstream os;
  os << "{\"schema\":\"hd-qlog/1\",\"seq\":" << rec.seq
     << ",\"ts_ms\":" << rec.ts_ms << ",\"session\":" << rec.session_id
     << ",\"trace\":\"" << FingerprintHex(rec.trace_id) << "\",\"fp\":\""
     << FingerprintHex(rec.fingerprint) << "\",\"kind\":\""
     << JsonEscape(rec.kind) << "\",\"status\":\"" << StatusName(rec.code)
     << "\",\"code\":" << static_cast<int>(rec.code);
  char num[64];
  std::snprintf(num, sizeof num, "%.3f", rec.latency_ms);
  os << ",\"latency_ms\":" << num;
  std::snprintf(num, sizeof num, "%.3f", rec.queue_ms);
  os << ",\"queue_ms\":" << num;
  os << ",\"slow\":" << (rec.slow ? "true" : "false")
     << ",\"rows_out\":" << rec.rows_out
     << ",\"rows_scanned\":" << rec.rows_scanned
     << ",\"decode_bytes\":" << rec.decode_bytes << ",\"dop\":"
     << rec.metrics.dop << ",\"cpu_ms\":";
  std::snprintf(num, sizeof num, "%.3f", rec.metrics.cpu_ms());
  os << num << ",\"plan\":\"" << JsonEscape(rec.plan) << "\",\"norm\":\""
     << JsonEscape(rec.norm) << "\",\"sql\":\"" << JsonEscape(rec.sql);
  os << "\"";
  if (!rec.error.empty()) os << ",\"error\":\"" << JsonEscape(rec.error) << "\"";
  os << "}";
  return os.str();
}

void QueryStore::AppendQlog(QueryRecord* rec) {
  std::lock_guard<std::mutex> g(qlog_mu_);
  uint64_t ts = WallMs();
  if (ts < last_qlog_ts_ms_) ts = last_qlog_ts_ms_;
  last_qlog_ts_ms_ = ts;
  rec->ts_ms = ts;
  if (qlog_ == nullptr) return;
  const std::string line = ToQlogJson(*rec);
  std::fwrite(line.data(), 1, line.size(), qlog_);
  std::fputc('\n', qlog_);
  std::fflush(qlog_);
}

std::vector<QueryRecord> QueryStore::Recent(size_t n) const {
  std::vector<QueryRecord> out;
  for (const RingShard& sh : rings_) {
    std::lock_guard<std::mutex> g(sh.mu);
    out.insert(out.end(), sh.ring.begin(), sh.ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.seq > b.seq;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<QueryRecord> QueryStore::Slow(size_t n) const {
  std::vector<QueryRecord> out;
  {
    std::lock_guard<std::mutex> g(slow_mu_);
    out = slow_ring_;
  }
  std::sort(out.begin(), out.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.seq > b.seq;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<FingerprintStats> QueryStore::Fingerprints() const {
  std::vector<FingerprintStats> out;
  for (const AggShard& sh : aggs_) {
    std::lock_guard<std::mutex> g(sh.mu);
    for (const auto& [fp, a] : sh.by_fp) {
      FingerprintStats s;
      s.fingerprint = fp;
      s.norm = a.norm;
      s.kind = a.kind;
      s.calls = a.calls;
      s.errors = a.errors;
      s.rows_out = a.rows_out;
      s.decode_bytes = a.decode_bytes;
      s.total_ms = a.total_ms;
      s.min_ms = a.min_ms;
      s.max_ms = a.max_ms;
      s.p95_ms = a.latency_ns.Snapshot().Quantile(0.95) / 1e6;
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FingerprintStats& a, const FingerprintStats& b) {
              return a.total_ms > b.total_ms;
            });
  return out;
}

Status QueryStore::ExportQlog(const std::string& path) const {
  std::vector<QueryRecord> all;
  for (const RingShard& sh : rings_) {
    std::lock_guard<std::mutex> g(sh.mu);
    all.insert(all.end(), sh.ring.begin(), sh.ring.end());
  }
  std::sort(all.begin(), all.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.seq < b.seq;
            });
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  // Concurrent writers can finalize out of seq order, so the retained
  // ts_ms values are only near-sorted; re-clamp in seq order to keep the
  // exported stream valid hd-qlog/1 (monotone timestamps).
  uint64_t last_ts = 0;
  for (QueryRecord& rec : all) {
    if (rec.ts_ms < last_ts) rec.ts_ms = last_ts;
    last_ts = rec.ts_ms;
    const std::string line = ToQlogJson(rec);
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size() ||
        std::fputc('\n', f) == EOF) {
      std::fclose(f);
      return Status::IoError("short write to " + path);
    }
  }
  if (std::fclose(f) != 0) return Status::IoError("close failed: " + path);
  return Status::OK();
}

void QueryStore::Flush() {
  std::lock_guard<std::mutex> g(qlog_mu_);
  if (qlog_ != nullptr) std::fflush(qlog_);
}

std::string QueryStore::RenderTop(size_t n) const {
  std::vector<QueryRecord> recs = Recent(n);
  std::ostringstream os;
  os << "query store: " << recorded() << " recorded, " << evicted()
     << " evicted, " << dropped() << " dropped, " << slow_count() << " slow\n";
  char buf[256];
  std::snprintf(buf, sizeof buf, "%6s %8s %18s %10s %6s %8s  %s\n", "seq",
                "kind", "trace", "ms", "status", "rows", "sql");
  os << buf;
  for (const QueryRecord& r : recs) {
    std::snprintf(buf, sizeof buf, "%6" PRIu64 " %8s %18s %10.2f %6s %8" PRIu64
                                   "  %s\n",
                  r.seq, r.kind.c_str(), FingerprintHex(r.trace_id).c_str(),
                  r.latency_ms, StatusName(r.code).c_str(), r.rows_out,
                  Preview(r.sql.empty() ? r.norm : r.sql, 60).c_str());
    os << buf;
  }
  return os.str();
}

std::string QueryStore::RenderSlow(size_t n) const {
  std::vector<QueryRecord> recs = Slow(n);
  std::ostringstream os;
  if (opts_.slow_query_ms < 0) {
    os << "slow-query log disabled (set --slow-query-ms)\n";
    return os.str();
  }
  os << "slow-query log (threshold " << opts_.slow_query_ms << " ms): "
     << slow_count() << " total\n";
  char buf[320];
  std::snprintf(buf, sizeof buf, "%6s %18s %18s %10s %10s  %s\n", "seq",
                "trace", "fingerprint", "ms", "queue_ms", "sql");
  os << buf;
  for (const QueryRecord& r : recs) {
    std::snprintf(buf, sizeof buf,
                  "%6" PRIu64 " %18s %18s %10.2f %10.2f  %s\n", r.seq,
                  FingerprintHex(r.trace_id).c_str(),
                  FingerprintHex(r.fingerprint).c_str(), r.latency_ms,
                  r.queue_ms, Preview(r.sql.empty() ? r.norm : r.sql, 52).c_str());
    os << buf;
  }
  return os.str();
}

std::string QueryStore::RenderFingerprints(size_t n) const {
  std::vector<FingerprintStats> fps = Fingerprints();
  std::ostringstream os;
  os << "fingerprint classes: " << fps.size() << "\n";
  char buf[320];
  std::snprintf(buf, sizeof buf, "%18s %8s %6s %10s %10s %10s %10s  %s\n",
                "fingerprint", "calls", "errs", "total_ms", "p95_ms", "max_ms",
                "rows", "statement");
  os << buf;
  size_t shown = 0;
  for (const FingerprintStats& s : fps) {
    if (shown++ >= n) break;
    std::snprintf(buf, sizeof buf,
                  "%18s %8" PRIu64 " %6" PRIu64 " %10.2f %10.2f %10.2f %10"
                  PRIu64 "  %s\n",
                  FingerprintHex(s.fingerprint).c_str(), s.calls, s.errors,
                  s.total_ms, s.p95_ms, s.max_ms, s.rows_out,
                  Preview(s.norm, 48).c_str());
    os << buf;
  }
  return os.str();
}

uint64_t QueryStore::recorded() const {
  return recorded_.load(std::memory_order_relaxed);
}
uint64_t QueryStore::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}
uint64_t QueryStore::evicted() const {
  return evicted_.load(std::memory_order_relaxed);
}
uint64_t QueryStore::slow_count() const {
  return slow_.load(std::memory_order_relaxed);
}

}  // namespace hd
