// Query Store: per-query workload capture with statement fingerprints.
//
// The advisor (src/core/advisor) is only as good as the workload it is
// fed, and until now nothing in the engine recorded *which statements
// ran*: QueryMetrics dies with its query, and the telemetry registry
// aggregates across statements. The query store is the missing
// collection layer — a low-overhead, lock-sharded in-memory ring of
// per-query records plus a fingerprint-keyed aggregate table, with a
// slow-query log and an `hd-qlog/1` JSONL persistence path the advisor
// ingests directly (--workload-from-capture).
//
// One record per finalized statement:
//   - verbatim SQL text and the normalized statement ("fingerprint
//     text"): identifiers case-folded, literals replaced by `?`,
//     whitespace collapsed — so `where a < 5` and `WHERE a < 9` share a
//     fingerprint (see NormalizeSql in sql/parser.h; this header only
//     stores precomputed values, keeping hd_obs below hd_sql in the
//     link order);
//   - the 64-bit FNV-1a fingerprint of the normalized text;
//   - chosen plan shape (PhysicalPlan::Describe()), admission queue
//     wait, latency, status, full QueryMetrics snapshot;
//   - session id and end-to-end trace id (docs/PROTOCOL.md §2.3) so a
//     record correlates with the wire frame, chrome://tracing spans,
//     and the slow-query log line it produced.
//
// Aggregates are keyed by fingerprint: calls, errors, total/min/max
// latency, p95 via the existing log-linear THistogram, rows and decoded
// bytes. The per-fingerprint histograms are also published through the
// process Telemetry registry (`qstore.fp.<hex16>.*`, capped — see
// QueryStoreOptions::max_exported_fingerprints) so Prometheus scrapes
// see per-statement-class latency without a new exposition path.
//
// Concurrency: the ring is sharded by record sequence number (one mutex
// per shard), the aggregate table by fingerprint; a writer takes exactly
// one shard lock of each kind. Capture is strictly best-effort: the
// `querystore.record` failpoint can poison any write and the query must
// still succeed (chaos-tested); a failed capture only bumps
// `qstore.dropped`.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/telemetry.h"

namespace hd {

/// 64-bit FNV-1a over `text` — the statement fingerprint hash. Callers
/// normally hash NormalizeSql(sql) (sql/parser.h); API-level callers
/// without SQL text (benches) may hash any stable statement label.
uint64_t FingerprintText(const std::string& text);

/// Fingerprint rendered the way every surface prints it (16 hex digits).
std::string FingerprintHex(uint64_t fp);

/// Capture identity for one statement, carried on ExecContext so the
/// executor can assemble the record at its rollup point without knowing
/// where the statement came from (shell, server session, bench driver).
struct QueryCaptureInfo {
  std::string sql;       ///< verbatim statement text (may be empty)
  std::string norm;      ///< normalized text; empty = use sql verbatim
  uint64_t fingerprint = 0;  ///< 0 = FingerprintText(norm or sql) at record
  uint64_t session_id = 0;   ///< 0 for in-process (shell/bench) callers
  uint64_t trace_id = 0;     ///< end-to-end trace id; 0 = untraced
};

struct QueryStoreOptions {
  /// Total retained records across all ring shards; older records are
  /// evicted per-shard in FIFO order. 0 disables retention (aggregates
  /// and the qlog still work).
  size_t capacity = 1024;
  /// Statements at or above this wall latency are copied into the slow
  /// log ring and flagged `"slow":true` in the qlog. < 0 disables.
  double slow_query_ms = -1;
  /// Retained slow-log entries (separate small ring; slow queries are
  /// rare by definition).
  size_t slow_log_capacity = 256;
  /// Append one hd-qlog/1 JSONL line per record to this file. Empty
  /// disables live persistence (ExportQlog still dumps the rings).
  std::string qlog_path;
  /// Publish per-fingerprint aggregates into the Telemetry registry
  /// (Prometheus / hd-stats): at most this many distinct fingerprints
  /// get `qstore.fp.<hex16>.*` series; the overflow is counted in
  /// `qstore.fp_overflow`. 0 disables per-fingerprint exposition.
  size_t max_exported_fingerprints = 64;
};

/// One finalized statement. Everything is plain data — records are
/// copied out of the store by value for rendering/export.
struct QueryRecord {
  uint64_t seq = 0;        ///< store-assigned, monotone per store
  uint64_t ts_ms = 0;      ///< wall clock (unix ms) at finalize
  uint64_t session_id = 0;
  uint64_t trace_id = 0;
  uint64_t fingerprint = 0;
  std::string sql;
  std::string norm;
  std::string plan;        ///< PhysicalPlan::Describe()
  std::string kind;        ///< "select" | "insert" | "update" | "delete"
  Code code = Code::kOk;
  std::string error;       ///< status message when code != kOk
  double latency_ms = 0;   ///< end-to-end wall (includes queue wait)
  double queue_ms = 0;     ///< admission queue wait
  bool slow = false;
  uint64_t rows_out = 0;
  uint64_t rows_scanned = 0;
  uint64_t decode_bytes = 0;  ///< QueryMetrics::bytes_processed
  QueryMetrics metrics;

  bool ok() const { return code == Code::kOk; }
};

/// Aggregate view of one fingerprint class (copied out by value).
struct FingerprintStats {
  uint64_t fingerprint = 0;
  std::string norm;        ///< normalized text of the first call seen
  std::string kind;
  uint64_t calls = 0;
  uint64_t errors = 0;
  uint64_t rows_out = 0;
  uint64_t decode_bytes = 0;
  double total_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  double p95_ms = 0;  ///< from the per-fingerprint THistogram (ns units)
};

class QueryStore {
 public:
  explicit QueryStore(QueryStoreOptions opts = {});
  ~QueryStore();

  QueryStore(const QueryStore&) = delete;
  QueryStore& operator=(const QueryStore&) = delete;

  /// Finalize one statement into the store: assign seq + ts_ms, retain
  /// in the ring, fold into the fingerprint aggregates, copy to the
  /// slow log when at/over threshold, and append the hd-qlog/1 line.
  /// Best-effort by contract: evaluates the `querystore.record`
  /// failpoint first and silently drops the record (counting
  /// qstore.dropped) when poisoned. Never fails the caller.
  void Record(QueryRecord rec);

  /// Most recent `n` retained records, newest first.
  std::vector<QueryRecord> Recent(size_t n) const;
  /// Most recent `n` slow-log entries, newest first.
  std::vector<QueryRecord> Slow(size_t n) const;
  /// All fingerprint classes, most total time first.
  std::vector<FingerprintStats> Fingerprints() const;

  /// Dump every retained ring record (ascending seq) as hd-qlog/1
  /// JSONL — the export path when no live qlog_path was configured.
  Status ExportQlog(const std::string& path) const;
  /// Flush the live qlog stream (tests / orderly shutdown).
  void Flush();

  /// Text tables behind `.queries [top|slow|fingerprints]`.
  std::string RenderTop(size_t n = 10) const;
  std::string RenderSlow(size_t n = 10) const;
  std::string RenderFingerprints(size_t n = 20) const;

  // Introspection (tests, stats surfaces).
  uint64_t recorded() const;
  uint64_t dropped() const;
  uint64_t evicted() const;
  uint64_t slow_count() const;
  const QueryStoreOptions& options() const { return opts_; }

  /// One hd-qlog/1 JSONL line (no trailing newline) for `rec` — shared
  /// by the live appender and ExportQlog; exposed for tests.
  static std::string ToQlogJson(const QueryRecord& rec);

 private:
  static constexpr size_t kShards = 8;

  struct RingShard {
    mutable std::mutex mu;
    std::vector<QueryRecord> ring;  // ring.size() <= per_shard_cap
    size_t next = 0;                // overwrite cursor once full
  };

  struct FpAgg {
    std::string norm;
    std::string kind;
    uint64_t calls = 0;
    uint64_t errors = 0;
    uint64_t rows_out = 0;
    uint64_t decode_bytes = 0;
    double total_ms = 0;
    double min_ms = 0;
    double max_ms = 0;
    THistogram latency_ns;  // per-fingerprint HDR histogram
    // Registry series (nullptr when this fingerprint fell past the
    // exposition cap or exposition is disabled).
    TCounter* exp_calls = nullptr;
    TCounter* exp_errors = nullptr;
    THistogram* exp_latency = nullptr;
  };

  struct AggShard {
    mutable std::mutex mu;
    std::map<uint64_t, FpAgg> by_fp;  // node-based: stable addresses
  };

  void Retain(QueryRecord&& rec);
  void Aggregate(const QueryRecord& rec);
  void AppendQlog(QueryRecord* rec);  // assigns ts under the file lock

  QueryStoreOptions opts_;
  size_t per_shard_cap_ = 0;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> evicted_{0};
  std::atomic<uint64_t> slow_{0};
  std::atomic<size_t> exported_fps_{0};
  RingShard rings_[kShards];
  AggShard aggs_[kShards];

  mutable std::mutex slow_mu_;
  std::vector<QueryRecord> slow_ring_;
  size_t slow_next_ = 0;

  mutable std::mutex qlog_mu_;
  std::FILE* qlog_ = nullptr;
  uint64_t last_qlog_ts_ms_ = 0;

  // Process counters (registry-owned, never freed).
  TCounter* c_recorded_ = nullptr;
  TCounter* c_dropped_ = nullptr;
  TCounter* c_evicted_ = nullptr;
  TCounter* c_slow_ = nullptr;
  TCounter* c_fp_overflow_ = nullptr;
};

}  // namespace hd
