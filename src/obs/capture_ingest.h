// hd-qlog/1 capture ingestion: turn a query-store JSONL file back into
// an advisor workload (the --workload-from-capture path).
//
// This is the consuming half of the capture loop (ROADMAP item 3): the
// query store records what ran (obs/query_store.h), this module
// compresses the capture by statement fingerprint — one representative
// SQL text per class, weighted by observed call count — and re-parses
// the representatives against the live catalog so Advisor::Recommend
// optimizes for real traffic instead of a hand-written driver. Workload
// compression by template is exactly what the DTA lineage assumes
// ("ML-Powered Index Tuning" §2, CoPhy's workload model in PAPERS.md).
//
// Lives in its own library (hd_obs_ingest) because it needs the SQL
// parser: hd_sql already links hd_exec (and thereby hd_obs), so the
// store itself must stay parser-free to keep the link order acyclic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "common/status.h"
#include "exec/query.h"

namespace hd {

/// One statement class reconstructed from a capture.
struct CapturedClass {
  uint64_t fingerprint = 0;
  std::string sql;   ///< representative verbatim statement (first seen)
  std::string norm;  ///< normalized text from the capture
  std::string kind;  ///< "select" | "insert" | "update" | "delete"
  uint64_t calls = 0;     ///< successful executions in the capture
  double total_ms = 0;    ///< summed latency across those calls
};

/// Parse an hd-qlog/1 JSONL file and group records by fingerprint,
/// first-seen order. Records with a non-ok status or no SQL text (pure
/// API traffic) are skipped — the advisor should not tune for
/// statements that failed. Unknown fields are ignored; a line without
/// the hd-qlog/1 schema tag is an error.
Result<std::vector<CapturedClass>> LoadQlog(const std::string& path);

/// Build an advisor workload from a capture: one Query per fingerprint
/// class, parsed against `db`, with Query::weight set to the class call
/// count. EXPLAIN prefixes are stripped to the underlying statement.
/// Classes whose representative no longer parses (schema drift between
/// capture and tuning time) are skipped and counted in *skipped.
Result<std::vector<Query>> WorkloadFromCapture(const Database& db,
                                               const std::string& path,
                                               size_t* skipped = nullptr);

}  // namespace hd
