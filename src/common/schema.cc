#include "common/schema.h"

namespace hd {

int Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Schema::RowWidth() const {
  int w = 0;
  for (const auto& c : cols_) w += c.Width();
  return w;
}

Schema Schema::Project(const std::vector<int>& idxs) const {
  std::vector<Column> out;
  out.reserve(idxs.size());
  for (int i : idxs) out.push_back(cols_[i]);
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::string s = "(";
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i) s += ", ";
    s += cols_[i].name;
    s += " ";
    s += ValueTypeName(cols_[i].type);
  }
  s += ")";
  return s;
}

}  // namespace hd
