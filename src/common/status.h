// Status / Result: RocksDB-style error propagation without exceptions
// across module boundaries.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hd {

/// Error/result code carried by every fallible operation in the engine.
enum class Code {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kCorruption,
  kNotSupported,
  kResourceExhausted,
  kAborted,     // e.g. deadlock victim
  kIoError,     // storage-layer read/write failure (transient by contract)
  kInternal,
};

/// Lightweight status object. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(Code::kNotFound, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(Code::kInvalidArgument, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(Code::kCorruption, std::move(m));
  }
  static Status NotSupported(std::string m) {
    return Status(Code::kNotSupported, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(Code::kResourceExhausted, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(Code::kAborted, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(Code::kIoError, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(Code::kInternal, std::move(m));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  /// True for failures a caller may retry from the top of its transaction:
  /// deadlock-victim aborts and (by contract transient) I/O errors.
  /// Corruption, invalid arguments, etc. are permanent — retrying them
  /// would spin a hot loop on the same failure.
  bool IsRetryable() const {
    return code_ == Code::kAborted || code_ == Code::kIoError;
  }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad column".
  std::string ToString() const;

 private:
  Code code_;
  std::string msg_;
};

/// Result<T>: a value or a non-OK Status (minimal StatusOr).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {   // NOLINT(runtime/explicit)
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T&& take() {
    assert(ok());
    return std::move(*value_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define HD_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::hd::Status _st = (expr);              \
    if (!_st.ok()) return _st;              \
  } while (0)

#define HD_CONCAT_INNER_(a, b) a##b
#define HD_CONCAT_(a, b) HD_CONCAT_INNER_(a, b)

#define HD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = tmp.take();

#define HD_ASSIGN_OR_RETURN(lhs, expr) \
  HD_ASSIGN_OR_RETURN_IMPL_(HD_CONCAT_(_res_, __LINE__), lhs, expr)

}  // namespace hd
