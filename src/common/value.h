// Typed scalar values and the column type system used across the engine.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace hd {

/// Column data types. kDate is stored as days-since-epoch in an int32.
enum class ValueType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kDate = 4,
};

/// Name of a type for catalogs / debug output ("INT32", "STRING", ...).
const char* ValueTypeName(ValueType t);

/// Fixed per-row byte width of a type in uncompressed row storage.
/// Strings report their average configured width at schema level; this
/// returns the in-row overhead for the variable part's pointer.
int FixedWidth(ValueType t);

/// A dynamically typed scalar. NULL is represented by std::monostate.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int32_t v) : v_(v) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  static Value Null() { return Value(); }
  static Value Int32(int32_t v) { return Value(v); }
  static Value Int64(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  /// Date value: days since 1970-01-01.
  static Value Date(int32_t days) { return Value(days); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }

  /// Which alternative the value holds. Numeric values are wire-stable
  /// (hd-proto/1 tags values with exactly these, see docs/PROTOCOL.md).
  enum class Kind : uint8_t {
    kNull = 0,
    kInt32 = 1,
    kInt64 = 2,
    kDouble = 3,
    kString = 4,
  };
  Kind kind() const { return static_cast<Kind>(v_.index()); }

  int32_t i32() const { return std::get<int32_t>(v_); }
  int64_t i64() const { return std::get<int64_t>(v_); }
  double f64() const { return std::get<double>(v_); }
  const std::string& str() const { return std::get<std::string>(v_); }

  /// Numeric view of the value; integer types widen, strings are invalid.
  double AsDouble() const;
  /// Integer view; doubles truncate, strings are invalid.
  int64_t AsInt64() const;

  /// Three-way comparison. NULL sorts first. Mixed numeric types compare
  /// numerically; comparing a string with a number is undefined (asserts).
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }

  /// Stable hash for hash joins / aggregation.
  size_t Hash() const;

  std::string ToString() const;

 private:
  explicit Value(std::monostate m) : v_(m) {}
  std::variant<std::monostate, int32_t, int64_t, double, std::string> v_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace hd
