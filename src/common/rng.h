// Deterministic pseudo-random generation for workload synthesis.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace hd {

/// Deterministic RNG wrapper; all workload generators take an explicit seed
/// so experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : eng_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(eng_);
  }

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(eng_);
  }

  /// Bernoulli trial with probability p of true.
  bool Flip(double p) {
    return std::bernoulli_distribution(p)(eng_);
  }

  /// Zipfian-distributed value in [0, n) with skew theta (0 = uniform-ish).
  /// Uses the classic Gray et al. rejection-free approximation.
  int64_t Zipf(int64_t n, double theta);

  /// Random lowercase string of the given length.
  std::string String(int len) {
    std::string s(len, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Uniform(0, 25));
    return s;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), eng_);
  }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

inline int64_t Rng::Zipf(int64_t n, double theta) {
  if (n <= 1) return 0;
  if (theta <= 0.0) return Uniform(0, n - 1);
  if (theta > 0.99) theta = 0.99;  // keep the power-law exponent finite
  // Inverse-CDF sampling on the truncated zeta distribution via the
  // power-law approximation; adequate for workload skew synthesis.
  double u = UniformReal(1e-12, 1.0);
  double x = static_cast<double>(n) * std::pow(u, 1.0 / (1.0 - theta));
  int64_t k = static_cast<int64_t>(x);
  if (k >= n) k = n - 1;
  return k;  // rank 0 is the most popular
}

}  // namespace hd
