// Writer-preferring shared latch.
//
// std::shared_mutex on glibc is pthread_rwlock with READER preference: as
// long as any reader holds the lock, new readers are admitted immediately,
// so a writer can wait unboundedly when readers overlap continuously.
// That is not a theoretical concern here — closed-loop analytic streams
// (bench_fig6_mixed's side-streams, or any busy reporting client against
// one table) hold the table's phys_latch shared nearly 100% of the time,
// and every UPDATE needs it exclusive: with reader preference the
// transactional stream starves outright (observed as a livelocked mixed
// workload at full CPU).
//
// FairSharedMutex flips the policy: once a writer is waiting, new
// lock_shared() callers block; current readers drain, the writer runs,
// then the queued readers are admitted in a batch. Readers never starve
// writers, writers never starve readers for longer than their own
// critical sections. Acquisition cost is one mutex round-trip per
// lock/unlock — fine for statement-granular latches, wrong for per-row
// paths.
//
// Meets the C++ SharedMutex named requirements, so std::shared_lock /
// std::unique_lock / std::scoped_lock work unchanged.
//
// Deadlock note (same discipline as before the swap): statements acquire
// multiple shared latches in one globally sorted order and DML takes
// exactly one exclusive latch, so the waits-for graph stays acyclic even
// though waiting writers now block incoming readers.
#pragma once

#include <condition_variable>
#include <mutex>

namespace hd {

class FairSharedMutex {
 public:
  FairSharedMutex() = default;
  FairSharedMutex(const FairSharedMutex&) = delete;
  FairSharedMutex& operator=(const FairSharedMutex&) = delete;

  void lock() {
    std::unique_lock<std::mutex> lk(mu_);
    ++writers_waiting_;
    gate_.wait(lk, [&] { return !writer_active_ && readers_ == 0; });
    --writers_waiting_;
    writer_active_ = true;
  }

  bool try_lock() {
    std::lock_guard<std::mutex> lk(mu_);
    if (writer_active_ || readers_ != 0) return false;
    writer_active_ = true;
    return true;
  }

  void unlock() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      writer_active_ = false;
    }
    gate_.notify_all();
  }

  void lock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    // Blocking behind writers_waiting_ is the whole point: an arriving
    // reader yields to every queued writer, which bounds writer wait by
    // the in-flight readers' critical sections.
    gate_.wait(lk, [&] { return !writer_active_ && writers_waiting_ == 0; });
    ++readers_;
  }

  bool try_lock_shared() {
    std::lock_guard<std::mutex> lk(mu_);
    if (writer_active_ || writers_waiting_ != 0) return false;
    ++readers_;
    return true;
  }

  void unlock_shared() {
    bool wake;
    {
      std::lock_guard<std::mutex> lk(mu_);
      wake = (--readers_ == 0);
    }
    if (wake) gate_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable gate_;
  int readers_ = 0;
  int writers_waiting_ = 0;
  bool writer_active_ = false;
};

}  // namespace hd
