// Deterministic fault injection ("failpoints"), in the style of the
// registries RocksDB and TiKV use for crash/error testing.
//
// A failpoint is a named hook compiled into a risky seam of the engine
// (an I/O charge, a B+ tree split, a lock acquire, a morsel dispatch).
// Tests arm a failpoint with a *trigger* (one-shot, every-Nth call,
// probability-p from a seeded RNG) and an *effect* (return an injected
// Status, add real latency, charge simulated I/O stall — or a mix).
// Everything is deterministic under a fixed seed, so a chaos run that
// found a bug can be replayed exactly.
//
// Cost when nothing is armed: one relaxed atomic load per check
// (HD_FAILPOINT* macros below), so the hooks can live on warm paths
// without moving benchmark medians.
//
// See docs/ROBUSTNESS.md for the catalog of wired failpoints and the
// invariants the chaos harness (tests/chaos_test.cc) asserts.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>

#include "common/metrics.h"
#include "common/status.h"

namespace hd {

/// Trigger + effect of one armed failpoint.
struct FailSpec {
  enum class Trigger {
    kAlways,       // fire on every evaluation
    kOneShot,      // fire on the first evaluation only
    kEveryNth,     // fire on evaluations n, 2n, 3n, ...
    kProbability,  // fire with probability p per evaluation (seeded RNG)
  };

  Trigger trigger = Trigger::kAlways;
  uint64_t every_n = 1;      // kEveryNth period
  double probability = 1.0;  // kProbability fire chance
  uint64_t seed = 42;        // kProbability draw stream

  /// Injected status; Code::kOk makes the failpoint latency-only.
  Code code = Code::kIoError;
  std::string message = "injected fault";
  /// Real wall-clock sleep when the point fires (latency spike).
  double latency_ms = 0;
  /// Simulated I/O stall charged into the caller's QueryMetrics (only at
  /// sites that evaluate with a metrics block).
  double sim_io_ms = 0;

  static FailSpec Always(Code c, std::string msg = "injected fault") {
    FailSpec s;
    s.trigger = Trigger::kAlways;
    s.code = c;
    s.message = std::move(msg);
    return s;
  }
  static FailSpec OneShot(Code c, std::string msg = "injected fault") {
    FailSpec s;
    s.trigger = Trigger::kOneShot;
    s.code = c;
    s.message = std::move(msg);
    return s;
  }
  static FailSpec EveryNth(uint64_t n, Code c,
                           std::string msg = "injected fault") {
    FailSpec s;
    s.trigger = Trigger::kEveryNth;
    s.every_n = n > 0 ? n : 1;
    s.code = c;
    s.message = std::move(msg);
    return s;
  }
  static FailSpec Probability(double p, uint64_t seed, Code c,
                              std::string msg = "injected fault") {
    FailSpec s;
    s.trigger = Trigger::kProbability;
    s.probability = p;
    s.seed = seed;
    s.code = c;
    s.message = std::move(msg);
    return s;
  }
  /// Latency-only spike (no error): fires always.
  static FailSpec Latency(double ms) {
    FailSpec s;
    s.code = Code::kOk;
    s.latency_ms = ms;
    return s;
  }
};

/// Process-wide registry of named failpoints. Thread-safe: Arm/Disarm and
/// Evaluate may race freely (chaos workloads arm points while queries
/// run). The disabled fast path is a single relaxed atomic load.
class FailPoints {
 public:
  static FailPoints& Instance();

  /// Arm (or re-arm, resetting counters) the named point.
  void Arm(const std::string& name, FailSpec spec);
  void Disarm(const std::string& name);
  void DisarmAll();

  /// True if any failpoint is armed anywhere in the process. The macros
  /// gate on this so un-instrumented runs pay one relaxed load per check.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluate the named point: count the evaluation, decide whether it
  /// fires, apply effects. Returns the injected Status when it fires with
  /// a non-OK code, OK otherwise (including when the point is not armed).
  Status Evaluate(const char* name, QueryMetrics* m = nullptr);

  // Introspection (tests).
  bool Armed(const std::string& name) const;
  uint64_t EvalCount(const std::string& name) const;
  uint64_t HitCount(const std::string& name) const;
  /// Total fires across all points since the last DisarmAll/Arm reset.
  uint64_t TotalHits() const;

 private:
  FailPoints() = default;

  struct Point {
    FailSpec spec;
    uint64_t evals = 0;
    uint64_t hits = 0;
    bool done = false;  // one-shot already fired
    std::mt19937_64 rng;
  };

  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
  static std::atomic<int> armed_count_;
};

/// RAII arming for tests: arms in the constructor, disarms when the scope
/// ends (even on early return / test failure).
class ScopedFailPoint {
 public:
  ScopedFailPoint(std::string name, FailSpec spec) : name_(std::move(name)) {
    FailPoints::Instance().Arm(name_, std::move(spec));
  }
  ~ScopedFailPoint() { FailPoints::Instance().Disarm(name_); }
  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

 private:
  std::string name_;
};

/// Evaluate a failpoint, returning its injected Status (OK when disabled).
/// The AnyArmed() gate keeps the disabled cost to one relaxed load.
inline Status EvalFailPoint(const char* name, QueryMetrics* m = nullptr) {
  if (!FailPoints::AnyArmed()) return Status::OK();
  return FailPoints::Instance().Evaluate(name, m);
}

/// Propagate an injected failure out of a Status-returning function.
#define HD_FAILPOINT_RETURN(name)                            \
  do {                                                       \
    if (::hd::FailPoints::AnyArmed()) {                      \
      ::hd::Status _fp = ::hd::FailPoints::Instance().Evaluate(name); \
      if (!_fp.ok()) return _fp;                             \
    }                                                        \
  } while (0)

/// Same, charging simulated-I/O effects into a QueryMetrics block.
#define HD_FAILPOINT_RETURN_M(name, m)                       \
  do {                                                       \
    if (::hd::FailPoints::AnyArmed()) {                      \
      ::hd::Status _fp = ::hd::FailPoints::Instance().Evaluate(name, m); \
      if (!_fp.ok()) return _fp;                             \
    }                                                        \
  } while (0)

}  // namespace hd
