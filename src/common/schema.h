// Table schemas and rows.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace hd {

/// Row identifier: position of a row within its table's primary storage.
using RowId = uint64_t;
constexpr RowId kInvalidRowId = ~0ull;

/// One column of a table schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
  /// Average encoded width in bytes for variable-length types (strings);
  /// ignored for fixed-width types.
  int avg_width = 0;

  int Width() const {
    return avg_width > 0 ? avg_width : FixedWidth(type);
  }
};

/// A row is a flat vector of values, positionally matching a Schema.
using Row = std::vector<Value>;

/// Ordered list of columns describing a table or intermediate result.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  int num_columns() const { return static_cast<int>(cols_.size()); }
  const Column& column(int i) const { return cols_[i]; }
  const std::vector<Column>& columns() const { return cols_; }

  /// Index of the column with the given name, or -1.
  int Find(const std::string& name) const;

  /// Total average row width in bytes (uncompressed row format).
  int RowWidth() const;

  /// Schema containing only the given column positions.
  Schema Project(const std::vector<int>& idxs) const;

  std::string ToString() const;

 private:
  std::vector<Column> cols_;
};

}  // namespace hd
