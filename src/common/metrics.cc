#include "common/metrics.h"

#include <sstream>

namespace hd {

void QueryMetrics::Clear() {
  pages_read = 0;
  bytes_read = 0;
  bytes_processed = 0;
  rows_scanned = 0;
  rows_output = 0;
  segments_scanned = 0;
  segments_skipped = 0;
  morsels_scheduled = 0;
  morsels_stolen = 0;
  runs_evaluated = 0;
  rows_decoded = 0;
  rows_selected = 0;
  rows_late_materialized = 0;
  aggs_pushed_down = 0;
  hash_probes = 0;
  join_batch_probes = 0;
  join_matches = 0;
  join_bloom_checks = 0;
  join_bloom_filtered = 0;
  sim_io_ns = 0;
  cpu_ns = 0;
  peak_memory_bytes = 0;
  spill_bytes = 0;
  shared_scan_attaches = 0;
  segments_shared = 0;
  shared_decode_bytes_saved = 0;
  txn_retries = 0;
  backoff_ns = 0;
  dop = 1;
}

void QueryMetrics::Merge(const QueryMetrics& o) {
  pages_read += o.pages_read.load();
  bytes_read += o.bytes_read.load();
  bytes_processed += o.bytes_processed.load();
  rows_scanned += o.rows_scanned.load();
  rows_output += o.rows_output.load();
  segments_scanned += o.segments_scanned.load();
  segments_skipped += o.segments_skipped.load();
  morsels_scheduled += o.morsels_scheduled.load();
  morsels_stolen += o.morsels_stolen.load();
  runs_evaluated += o.runs_evaluated.load();
  rows_decoded += o.rows_decoded.load();
  rows_selected += o.rows_selected.load();
  rows_late_materialized += o.rows_late_materialized.load();
  aggs_pushed_down += o.aggs_pushed_down.load();
  hash_probes += o.hash_probes.load();
  join_batch_probes += o.join_batch_probes.load();
  join_matches += o.join_matches.load();
  join_bloom_checks += o.join_bloom_checks.load();
  join_bloom_filtered += o.join_bloom_filtered.load();
  sim_io_ns += o.sim_io_ns.load();
  cpu_ns += o.cpu_ns.load();
  spill_bytes += o.spill_bytes.load();
  shared_scan_attaches += o.shared_scan_attaches.load();
  segments_shared += o.segments_shared.load();
  shared_decode_bytes_saved += o.shared_decode_bytes_saved.load();
  txn_retries += o.txn_retries.load();
  backoff_ns += o.backoff_ns.load();
  UpdatePeakMemory(o.peak_memory_bytes.load());
}

std::string QueryMetrics::ToString() const {
  std::ostringstream os;
  os << "exec_ms=" << exec_ms() << " cpu_ms=" << cpu_ms()
     << " io_ms=" << sim_io_ms() << " pages=" << pages_read.load()
     << " read_mb=" << data_read_mb() << " rows=" << rows_scanned.load()
     << " segs=" << segments_scanned.load() << "+"
     << segments_skipped.load() << "skip"
     << " morsels=" << morsels_scheduled.load() << "+"
     << morsels_stolen.load() << "stolen"
     << " runs_eval=" << runs_evaluated.load()
     << " rows_dec=" << rows_decoded.load()
     << " rows_sel=" << rows_selected.load()
     << " rows_latemat=" << rows_late_materialized.load()
     << " aggs_pushed=" << aggs_pushed_down.load()
     << " hash_probes=" << hash_probes.load()
     << " peak_mem=" << peak_memory_bytes.load() << " dop=" << dop;
  if (join_batch_probes.load() > 0 || join_bloom_checks.load() > 0) {
    os << " join_probes=" << join_batch_probes.load()
       << " join_matches=" << join_matches.load()
       << " bloom=" << join_bloom_filtered.load() << "/"
       << join_bloom_checks.load();
  }
  if (shared_scan_attaches.load() > 0) {
    os << " shared_segs=" << segments_shared.load()
       << " shared_saved_mb=" << shared_decode_bytes_saved.load() / 1e6;
  }
  if (txn_retries.load() > 0 || backoff_ns.load() > 0) {
    os << " retries=" << txn_retries.load()
       << " backoff_ms=" << backoff_ns.load() / 1e6;
  }
  return os.str();
}

}  // namespace hd
