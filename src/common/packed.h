// Packed row format: the engine-internal representation of a row.
//
// Every column value is encoded into one int64_t such that the natural
// int64 ordering matches the value ordering:
//   - INT32/INT64/DATE: identity.
//   - DOUBLE: order-preserving bit transform (PackDouble/UnpackDouble).
//   - STRING: per-column dictionary code (order-preserving for bulk-loaded
//     data, where dictionaries are built sorted; codes for strings first
//     seen by later inserts are appended and only equality-correct —
//     documented engine limitation, same spirit as SQL Server's
//     dictionary-encoded segments being unordered).
//
// This keeps B+ tree comparisons and columnstore encodings branch-free
// int64 operations and the memory footprint at 8 bytes per value.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace hd {

/// A packed row: one int64 per column, positionally matching the schema.
using PackedRow = std::vector<int64_t>;

/// Order-preserving encode of a double into int64.
inline int64_t PackDouble(double d) {
  uint64_t u = std::bit_cast<uint64_t>(d);
  // Positive doubles: set the sign bit; negatives: flip all bits. Result
  // compares as unsigned in value order; xor with MSB makes it signed.
  u = (u & 0x8000000000000000ull) ? ~u : (u | 0x8000000000000000ull);
  return std::bit_cast<int64_t>(u ^ 0x8000000000000000ull);
}

/// Inverse of PackDouble.
inline double UnpackDouble(int64_t v) {
  uint64_t u = std::bit_cast<uint64_t>(v) ^ 0x8000000000000000ull;
  // MSB set => the original was non-negative (we or-ed the bit in);
  // MSB clear => the original was negative (we flipped all bits).
  u = (u & 0x8000000000000000ull) ? (u ^ 0x8000000000000000ull) : ~u;
  return std::bit_cast<double>(u);
}

/// Lexicographic compare of two equal-length packed key prefixes.
inline int ComparePacked(const int64_t* a, const int64_t* b, int n) {
  for (int i = 0; i < n; ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

}  // namespace hd
