#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/failpoint.h"
#include "common/telemetry.h"

namespace hd {

namespace {

// Process-wide scheduler telemetry. `pool.queue_depth` tracks submitted
// tasks not yet popped (delta-updated, so it aggregates across pools);
// `pool.task_ns` is the per-morsel execution latency.
struct PoolStats {
  TCounter* morsels = Telemetry::Instance().Counter("pool.morsels");
  TCounter* steals = Telemetry::Instance().Counter("pool.steals");
  TGauge* queue_depth = Telemetry::Instance().Gauge("pool.queue_depth");
  THistogram* task_ns = Telemetry::Instance().Histogram("pool.task_ns");
};

PoolStats& Stats() {
  static PoolStats s;
  return s;
}

/// Run one morsel through `fn`, recording its latency.
inline void TimedMorsel(const std::function<void(int, uint64_t)>& fn, int slot,
                        uint64_t i) {
  const auto t0 = std::chrono::steady_clock::now();
  fn(slot, i);
  Stats().task_ns->Record(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

// ---------------------------------------------------------------------
// Pool lifecycle.
// ---------------------------------------------------------------------

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    if (const char* env = std::getenv("HD_POOL_THREADS")) {
      num_threads = std::atoi(env);
    }
    // At least 2 workers even on tiny hosts: concurrency-sensitive paths
    // (mixed workloads, lock interaction) need real overlap, and the
    // scheduler shares the core fairly.
    if (num_threads <= 0) num_threads = std::max(2, HardwareDop());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();  // intentionally leaked:
  // worker threads must outlive all static destructors that might still
  // schedule work during teardown.
  return *pool;
}

int ThreadPool::HardwareDop() {
  static const int dop = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    return std::min(16, std::max(1, static_cast<int>(hc)));
  }();
  return dop;
}

// ---------------------------------------------------------------------
// Task queue: per-worker deques, round-robin submit, steal-from-back.
// ---------------------------------------------------------------------

void ThreadPool::Submit(std::function<void()> task) {
  const size_t w = next_worker_.fetch_add(1, std::memory_order_relaxed) %
                   workers_.size();
  {
    std::lock_guard<std::mutex> g(workers_[w]->mu);
    workers_[w]->deq.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  Stats().queue_depth->Add(1);
  sleep_cv_.notify_one();
}

bool ThreadPool::TryPop(int wid, std::function<void()>* out) {
  // Own deque first (front = oldest local work), then steal from the back
  // of the other workers' deques.
  const int n = static_cast<int>(workers_.size());
  {
    Worker& me = *workers_[wid];
    std::lock_guard<std::mutex> g(me.mu);
    if (!me.deq.empty()) {
      *out = std::move(me.deq.front());
      me.deq.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      Stats().queue_depth->Add(-1);
      return true;
    }
  }
  for (int d = 1; d < n; ++d) {
    Worker& victim = *workers_[(wid + d) % n];
    std::lock_guard<std::mutex> g(victim.mu);
    if (!victim.deq.empty()) {
      *out = std::move(victim.deq.back());
      victim.deq.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      Stats().queue_depth->Add(-1);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int wid) {
  std::function<void()> task;
  while (true) {
    if (TryPop(wid, &task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_mu_);
    sleep_cv_.wait(lk, [this] {
      return stop_.load() || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load() && pending_.load() == 0) return;
  }
}

// ---------------------------------------------------------------------
// Morsel-driven ParallelFor.
// ---------------------------------------------------------------------

struct ThreadPool::ParallelState {
  // One contiguous morsel range per participant slot. Owners and thieves
  // both take morsels with fetch_add on `next`, so each index is executed
  // exactly once.
  struct alignas(64) Slot {
    std::atomic<uint64_t> next{0};
    uint64_t end = 0;
  };

  int nslots = 0;
  const std::function<void(int, uint64_t)>* fn = nullptr;
  std::unique_ptr<Slot[]> slots;
  /// Next participant slot to claim. Once this reaches nslots, late pool
  /// tasks return without touching `fn` (whose lifetime is the caller's).
  std::atomic<int> claimed{0};
  std::atomic<int> finished{0};
  std::atomic<uint64_t> stolen{0};
  /// Morsels actually run through `fn` (== num_morsels unless a morsel was
  /// skipped by cancellation or the `threadpool.task` failpoint).
  std::atomic<uint64_t> executed{0};
  /// Caller-provided cancellation flag (may be null).
  std::atomic<bool>* cancel = nullptr;
  std::mutex err_mu;
  Status inject_status;  ///< first `threadpool.task` injection, under err_mu
  std::mutex mu;
  std::condition_variable cv;

  bool Cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// Pre-execution gate for one claimed morsel: false = skip it. Evaluates
  /// the `threadpool.task` failpoint; an injection records the first
  /// failure and trips `cancel` so sibling lanes stop claiming work.
  bool AdmitMorsel() {
    if (Cancelled()) return false;
    if (!FailPoints::AnyArmed()) return true;
    Status fs = FailPoints::Instance().Evaluate("threadpool.task");
    if (fs.ok()) return true;
    {
      std::lock_guard<std::mutex> g(err_mu);
      if (inject_status.ok()) inject_status = std::move(fs);
    }
    if (cancel != nullptr) cancel->store(true, std::memory_order_relaxed);
    return false;
  }
};

void ThreadPool::RunSlot(const std::shared_ptr<ParallelState>& st, int slot) {
  const auto& fn = *st->fn;
  ParallelState::Slot& own = st->slots[slot];
  while (true) {
    const uint64_t i = own.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= own.end) break;
    if (!st->AdmitMorsel()) continue;  // keep claiming so ranges drain fast
    TimedMorsel(fn, slot, i);
    st->executed.fetch_add(1, std::memory_order_relaxed);
  }
  // Own range drained: steal morsels from the other slots until every
  // range is exhausted.
  bool found = true;
  while (found && !st->Cancelled()) {
    found = false;
    for (int v = 0; v < st->nslots; ++v) {
      if (v == slot) continue;
      ParallelState::Slot& s = st->slots[v];
      while (s.next.load(std::memory_order_relaxed) < s.end) {
        const uint64_t i = s.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= s.end) break;
        found = true;
        if (!st->AdmitMorsel()) continue;
        st->stolen.fetch_add(1, std::memory_order_relaxed);
        TimedMorsel(fn, slot, i);
        st->executed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  {
    std::lock_guard<std::mutex> g(st->mu);
    st->finished.fetch_add(1, std::memory_order_release);
  }
  st->cv.notify_all();
}

MorselStats ThreadPool::ParallelFor(
    uint64_t num_morsels, int max_dop,
    const std::function<void(int, uint64_t)>& fn,
    std::atomic<bool>* cancel) {
  MorselStats stats;
  if (num_morsels == 0) return stats;
  const int cap = std::max(1, max_dop);
  const int nslots =
      static_cast<int>(std::min<uint64_t>(num_morsels, cap));
  if (nslots == 1) {
    // Serial fast path shares the gate semantics of the parallel one.
    ParallelState st1;
    st1.cancel = cancel;
    for (uint64_t i = 0; i < num_morsels; ++i) {
      if (st1.Cancelled()) break;
      if (!st1.AdmitMorsel()) continue;
      TimedMorsel(fn, 0, i);
      ++stats.scheduled;
    }
    stats.participants = 1;
    stats.status = st1.inject_status;
    Stats().morsels->Add(stats.scheduled);
    return stats;
  }

  auto st = std::make_shared<ParallelState>();
  st->nslots = nslots;
  st->fn = &fn;
  st->cancel = cancel;
  st->slots = std::make_unique<ParallelState::Slot[]>(nslots);
  const uint64_t per = num_morsels / nslots;
  const uint64_t rem = num_morsels % nslots;
  uint64_t begin = 0;
  for (int p = 0; p < nslots; ++p) {
    const uint64_t take = per + (static_cast<uint64_t>(p) < rem ? 1 : 0);
    st->slots[p].next.store(begin, std::memory_order_relaxed);
    st->slots[p].end = begin + take;
    begin += take;
  }

  // One pool task per non-caller slot. Tasks claim slots dynamically, so
  // a task arriving after the caller already drained everything is a
  // cheap no-op.
  for (int p = 1; p < nslots; ++p) {
    Submit([st] {
      const int slot = st->claimed.fetch_add(1, std::memory_order_acq_rel);
      if (slot >= st->nslots) return;
      RunSlot(st, slot);
    });
  }

  // The caller is participant 0 (claimed starts at 0 -> we take it now).
  int slot = st->claimed.fetch_add(1, std::memory_order_acq_rel);
  int ran_here = 0;
  while (slot < nslots) {
    RunSlot(st, slot);
    ++ran_here;
    // Claim any slot no pool worker has picked up yet — this is what makes
    // nested / saturated-pool calls deadlock-free.
    slot = st->claimed.fetch_add(1, std::memory_order_acq_rel);
  }
  {
    std::unique_lock<std::mutex> lk(st->mu);
    st->cv.wait(lk, [&] {
      return st->finished.load(std::memory_order_acquire) >= nslots;
    });
  }
  stats.scheduled = st->executed.load();
  stats.stolen = st->stolen.load();
  stats.participants = nslots;
  stats.status = st->inject_status;  // all participants finished: no race
  Stats().morsels->Add(stats.scheduled);
  if (stats.stolen != 0) Stats().steals->Add(stats.stolen);
  (void)ran_here;
  return stats;
}

}  // namespace hd
