#include "common/status.h"

namespace hd {

namespace {
const char* CodeName(Code c) {
  switch (c) {
    case Code::kOk: return "OK";
    case Code::kNotFound: return "NotFound";
    case Code::kInvalidArgument: return "InvalidArgument";
    case Code::kCorruption: return "Corruption";
    case Code::kNotSupported: return "NotSupported";
    case Code::kResourceExhausted: return "ResourceExhausted";
    case Code::kAborted: return "Aborted";
    case Code::kIoError: return "IoError";
    case Code::kInternal: return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace hd
