// Per-query execution metrics and timing helpers.
//
// The engine reports two time components for every query, mirroring the
// paper's methodology (Section 3.1): measured CPU work, and simulated I/O
// stall time charged by the DiskModel for non-resident data. "Execution
// time" = CPU critical path + I/O stalls; "CPU time" = total work summed
// over worker threads (so parallel plans show the Fig. 1(b) jump).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace hd {

/// Monotonic wall-clock stopwatch (milliseconds).
class Timer {
 public:
  Timer() { Reset(); }
  void Reset() { start_ = Clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Counters accumulated while executing one query. Thread-safe: parallel
/// operator instances add into the same object.
struct QueryMetrics {
  std::atomic<uint64_t> pages_read{0};
  std::atomic<uint64_t> bytes_read{0};        // from "disk" (cold)
  std::atomic<uint64_t> bytes_processed{0};   // decoded/scanned bytes
  std::atomic<uint64_t> rows_scanned{0};
  std::atomic<uint64_t> rows_output{0};
  std::atomic<uint64_t> segments_scanned{0};
  std::atomic<uint64_t> segments_skipped{0};
  /// Morsel scheduling (shared work-stealing pool): morsels dispatched for
  /// this query, and how many ran on a participant that did not own them.
  std::atomic<uint64_t> morsels_scheduled{0};
  std::atomic<uint64_t> morsels_stolen{0};
  /// Encoded-domain predicate evaluation: RLE runs tested per-run instead
  /// of per-row, and rows actually decoded to values (output columns).
  std::atomic<uint64_t> runs_evaluated{0};
  std::atomic<uint64_t> rows_decoded{0};
  /// Vectorized scan kernels: rows surviving the predicate bitmaps
  /// (before delete filtering), and rows decoded through the sparse
  /// late-materialization gather (a subset of rows_decoded).
  std::atomic<uint64_t> rows_selected{0};
  std::atomic<uint64_t> rows_late_materialized{0};
  /// Aggregates answered entirely in the encoded domain (no decode), and
  /// aggregate hash-table probe chains walked (one per FindOrInsert).
  std::atomic<uint64_t> aggs_pushed_down{0};
  std::atomic<uint64_t> hash_probes{0};
  /// Batch-mode hash joins: keys probed through the vectorized kernels
  /// (one per key per join step), and (probe-row, build-row) matches those
  /// probes expanded to. Bloom pushdown (sideways information passing):
  /// decoded join keys tested against a build-side Bloom filter inside the
  /// base scan, and how many of those the filter eliminated before any
  /// other column was gathered.
  std::atomic<uint64_t> join_batch_probes{0};
  std::atomic<uint64_t> join_matches{0};
  std::atomic<uint64_t> join_bloom_checks{0};
  std::atomic<uint64_t> join_bloom_filtered{0};
  /// Simulated I/O stall nanoseconds (summed; on the critical path for
  /// serial plans, divided by DOP for parallel scans when reporting).
  std::atomic<uint64_t> sim_io_ns{0};
  /// Measured compute nanoseconds summed over all worker threads.
  std::atomic<uint64_t> cpu_ns{0};
  std::atomic<uint64_t> peak_memory_bytes{0};
  std::atomic<uint64_t> spill_bytes{0};
  /// Cooperative shared scans (ScanScheduler): passes this query attached
  /// to, column segments whose decode it consumed from another query's
  /// decode work, and the decoded bytes it therefore did not produce
  /// itself.
  std::atomic<uint64_t> shared_scan_attaches{0};
  std::atomic<uint64_t> segments_shared{0};
  std::atomic<uint64_t> shared_decode_bytes_saved{0};
  /// Transaction-level robustness counters (mixed driver): whole-txn
  /// retries after a retryable failure, and wall-clock nanoseconds spent
  /// sleeping in the retry backoff.
  std::atomic<uint64_t> txn_retries{0};
  std::atomic<uint64_t> backoff_ns{0};
  int dop = 1;

  QueryMetrics() = default;
  QueryMetrics(const QueryMetrics& o) { *this = o; }
  QueryMetrics& operator=(const QueryMetrics& o) {
    if (this == &o) return *this;
    Clear();
    Merge(o);
    dop = o.dop;
    return *this;
  }

  void Clear();

  /// Merge counters from another metrics block (e.g. per-thread locals).
  void Merge(const QueryMetrics& o);

  double cpu_ms() const { return cpu_ns.load() / 1e6; }
  double sim_io_ms() const { return sim_io_ns.load() / 1e6; }
  /// End-to-end execution estimate: compute critical path + I/O stalls.
  double exec_ms() const {
    int d = dop > 0 ? dop : 1;
    return cpu_ns.load() / 1e6 / d + sim_io_ns.load() / 1e6 / d;
  }
  double data_read_mb() const { return bytes_read.load() / (1024.0 * 1024.0); }

  void UpdatePeakMemory(uint64_t bytes) {
    uint64_t prev = peak_memory_bytes.load();
    while (bytes > prev &&
           !peak_memory_bytes.compare_exchange_weak(prev, bytes)) {
    }
  }

  std::string ToString() const;
};

/// One physical plan node's identity plus the counters attributed to it
/// during execution (the EXPLAIN ANALYZE payload). The executor runs a
/// pipelined plan (scan -> join steps -> agg/sort), so operators form a
/// linear chain; `depth` positions the node when rendering the tree
/// (larger = deeper, i.e. the leaf scan has the largest depth).
///
/// Attribution contract (see docs/OBSERVABILITY.md): every counter
/// increment during execution lands in exactly one operator's `metrics`
/// block; the query-level QueryMetrics is the merge ("rollup") of all
/// operator blocks plus a small residual (locks, version-chain probes,
/// DML mutation) charged at query level. For read-only statements the
/// data-path counters (rows_scanned, segments_*, runs_evaluated,
/// rows_decoded, rows_selected, rows_late_materialized, aggs_pushed_down,
/// hash_probes, join_batch_probes, join_matches, join_bloom_checks,
/// join_bloom_filtered, morsels_*) therefore sum exactly across operators
/// to the query totals. The join_bloom_* pair is charged to the *join*
/// operator whose filter ran (not the scan it ran inside): the check is
/// work done on that join's behalf.
struct OperatorProfile {
  std::string name;   ///< e.g. "CsiScan[csi_sales]", "HashAgg"
  std::string phase;  ///< "scan" | "join" | "agg" | "sort"
  int depth = 0;
  /// Optimizer estimates captured at planning time; -1 = not estimated.
  double est_rows = -1;
  double est_cost_ms = -1;
  /// Row flow through this operator (actuals).
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  /// Counters incremented exclusively on behalf of this operator.
  QueryMetrics metrics;
};

}  // namespace hd
