#include "common/telemetry.h"

#include <bit>
#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "common/failpoint.h"

namespace hd {

// ---------------------------------------------------------------------
// Counter sharding.
// ---------------------------------------------------------------------

uint32_t TCounter::Slot() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

// ---------------------------------------------------------------------
// Log-linear histogram.
// ---------------------------------------------------------------------

uint32_t THistogram::BucketIndex(uint64_t v) {
  if (v < kSubBuckets) return static_cast<uint32_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBits;
  const uint64_t sub = (v >> shift) - kSubBuckets;  // in [0, kSubBuckets)
  return static_cast<uint32_t>((msb - kSubBits + 1) * kSubBuckets + sub);
}

void THistogram::BucketBounds(uint32_t idx, uint64_t* lo, uint64_t* hi) {
  if (idx < kSubBuckets) {
    *lo = idx;
    *hi = idx + 1;
    return;
  }
  const uint32_t oct = idx / kSubBuckets;  // >= 1
  const uint32_t sub = idx % kSubBuckets;
  const int shift = static_cast<int>(oct) - 1;
  *lo = static_cast<uint64_t>(kSubBuckets + sub) << shift;
  *hi = *lo + (1ull << shift);
}

HistSnapshot THistogram::Snapshot() const {
  HistSnapshot s;
  // Read bucket cells first, then the count: a racing Record increments
  // the bucket before count_, so `count` never exceeds the bucket sum by
  // more than in-flight recorders (quantiles clamp their rank anyway).
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) s.buckets.emplace_back(static_cast<uint32_t>(i), c);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void THistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

double HistSnapshot::Quantile(double p) const {
  uint64_t total = 0;
  for (const auto& [idx, c] : buckets) total += c;
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  uint64_t rank = static_cast<uint64_t>(p * total);
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (const auto& [idx, c] : buckets) {
    seen += c;
    if (seen > rank) {
      uint64_t lo, hi;
      THistogram::BucketBounds(idx, &lo, &hi);
      return static_cast<double>(lo) + static_cast<double>(hi - lo) / 2.0;
    }
  }
  uint64_t lo, hi;
  THistogram::BucketBounds(buckets.back().first, &lo, &hi);
  return static_cast<double>(hi);
}

uint64_t HistSnapshot::MaxBound() const {
  if (buckets.empty()) return 0;
  uint64_t lo, hi;
  THistogram::BucketBounds(buckets.back().first, &lo, &hi);
  return hi;
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

Telemetry& Telemetry::Instance() {
  static Telemetry* t = new Telemetry();  // intentionally leaked: worker
  // threads and samplers may record during static destruction.
  return *t;
}

TCounter* Telemetry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<TCounter>();
  return slot.get();
}

TGauge* Telemetry::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<TGauge>();
  return slot.get();
}

THistogram* Telemetry::Histogram(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<THistogram>();
  return slot.get();
}

TelemetrySnapshot Telemetry::Snapshot() const {
  TelemetrySnapshot s;
  s.ts_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->Value();
  for (const auto& [name, v] : gauges_) s.gauges[name] = v->Value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->Snapshot();
  return s;
}

void Telemetry::ResetForTest() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, v] : gauges_) v->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

// ---------------------------------------------------------------------
// Exposition.
// ---------------------------------------------------------------------

namespace {

/// "bp.hits" -> "hd_bp_hits" (Prometheus metric-name charset).
std::string PromName(const std::string& name) {
  std::string out = "hd_";
  out.reserve(name.size() + 3);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  *out += buf;
}

constexpr double kQuantiles[] = {0.5, 0.95, 0.99, 0.999};
constexpr const char* kQuantileLabels[] = {"0.5", "0.95", "0.99", "0.999"};

}  // namespace

std::string TelemetrySnapshot::ToPrometheus() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    const std::string pn = PromName(name) + "_total";
    AppendF(&out, "# TYPE %s counter\n", pn.c_str());
    AppendF(&out, "%s %llu\n", pn.c_str(),
            static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : gauges) {
    const std::string pn = PromName(name);
    AppendF(&out, "# TYPE %s gauge\n", pn.c_str());
    AppendF(&out, "%s %lld\n", pn.c_str(), static_cast<long long>(v));
  }
  for (const auto& [name, h] : histograms) {
    const std::string pn = PromName(name);
    AppendF(&out, "# TYPE %s summary\n", pn.c_str());
    for (int q = 0; q < 4; ++q) {
      AppendF(&out, "%s{quantile=\"%s\"} %g\n", pn.c_str(),
              kQuantileLabels[q], h.Quantile(kQuantiles[q]));
    }
    AppendF(&out, "%s_sum %llu\n", pn.c_str(),
            static_cast<unsigned long long>(h.sum));
    AppendF(&out, "%s_count %llu\n", pn.c_str(),
            static_cast<unsigned long long>(h.count));
  }
  return out;
}

std::string TelemetrySnapshot::ToJson() const {
  std::string out;
  out.reserve(1024);
  AppendF(&out, "{\"schema\": \"hd-stats/1\", \"ts_ms\": %llu",
          static_cast<unsigned long long>(ts_ms));
  out += ", \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    AppendF(&out, "%s\"%s\": %llu", first ? "" : ", ", name.c_str(),
            static_cast<unsigned long long>(v));
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    AppendF(&out, "%s\"%s\": %lld", first ? "" : ", ", name.c_str(),
            static_cast<long long>(v));
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    AppendF(&out,
            "%s\"%s\": {\"count\": %llu, \"sum\": %llu, \"mean\": %g, "
            "\"p50\": %g, \"p95\": %g, \"p99\": %g, \"p999\": %g, "
            "\"max\": %llu}",
            first ? "" : ", ", name.c_str(),
            static_cast<unsigned long long>(h.count),
            static_cast<unsigned long long>(h.sum), h.Mean(),
            h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99),
            h.Quantile(0.999), static_cast<unsigned long long>(h.MaxBound()));
    first = false;
  }
  out += "}}";
  return out;
}

// ---------------------------------------------------------------------
// Background sampler.
// ---------------------------------------------------------------------

Status TelemetrySampler::Start(const std::string& path, int interval_ms) {
  std::lock_guard<std::mutex> g(mu_);
  if (thread_ != nullptr) return Status::Internal("sampler already running");
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  file_ = f;
  interval_ms_ = interval_ms > 0 ? interval_ms : 1000;
  stop_requested_ = false;
  samples_written_.store(0, std::memory_order_relaxed);
  samples_skipped_.store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  thread_ = std::make_unique<std::thread>([this] { Loop(); });
  return Status::OK();
}

void TelemetrySampler::Stop() {
  std::unique_ptr<std::thread> t;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (thread_ == nullptr) return;
    stop_requested_ = true;
    t = std::move(thread_);
  }
  cv_.notify_all();
  t->join();
  std::lock_guard<std::mutex> g(mu_);
  // Final snapshot so the file always ends with the post-workload state.
  WriteSample();
  std::fclose(static_cast<FILE*>(file_));
  file_ = nullptr;
  running_.store(false, std::memory_order_release);
}

void TelemetrySampler::Loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    WriteSample();
    cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_requested_; });
  }
}

void TelemetrySampler::WriteSample() {
  // Called with mu_ held. A failing metrics sink must never fail the
  // engine: an injected `telemetry.sample` fault just skips this tick.
  if (FailPoints::AnyArmed() &&
      !FailPoints::Instance().Evaluate("telemetry.sample").ok()) {
    samples_skipped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  FILE* f = static_cast<FILE*>(file_);
  if (f == nullptr) return;
  const std::string line = Telemetry::Instance().Snapshot().ToJson();
  std::fwrite(line.data(), 1, line.size(), f);
  std::fputc('\n', f);
  std::fflush(f);
  samples_written_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hd
