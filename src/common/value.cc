#include "common/value.h"

#include <cassert>
#include <cmath>
#include <functional>

namespace hd {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt32: return "INT32";
    case ValueType::kInt64: return "INT64";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
    case ValueType::kDate: return "DATE";
  }
  return "?";
}

int FixedWidth(ValueType t) {
  switch (t) {
    case ValueType::kInt32: return 4;
    case ValueType::kInt64: return 8;
    case ValueType::kDouble: return 8;
    case ValueType::kString: return 16;  // average payload assumption
    case ValueType::kDate: return 4;
  }
  return 8;
}

double Value::AsDouble() const {
  if (auto* p = std::get_if<int32_t>(&v_)) return static_cast<double>(*p);
  if (auto* p = std::get_if<int64_t>(&v_)) return static_cast<double>(*p);
  if (auto* p = std::get_if<double>(&v_)) return *p;
  assert(false && "AsDouble on non-numeric value");
  return 0.0;
}

int64_t Value::AsInt64() const {
  if (auto* p = std::get_if<int32_t>(&v_)) return *p;
  if (auto* p = std::get_if<int64_t>(&v_)) return *p;
  if (auto* p = std::get_if<double>(&v_)) return static_cast<int64_t>(*p);
  assert(false && "AsInt64 on non-numeric value");
  return 0;
}

int Value::Compare(const Value& other) const {
  const bool ln = is_null(), rn = other.is_null();
  if (ln || rn) return static_cast<int>(rn) - static_cast<int>(ln);
  const bool lstr = std::holds_alternative<std::string>(v_);
  const bool rstr = std::holds_alternative<std::string>(other.v_);
  assert(lstr == rstr && "cannot compare string with numeric");
  (void)rstr;
  if (lstr) {
    const auto& a = std::get<std::string>(v_);
    const auto& b = std::get<std::string>(other.v_);
    int c = a.compare(b);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Fast path: both int64-representable without precision loss.
  const bool ld = std::holds_alternative<double>(v_);
  const bool rd = std::holds_alternative<double>(other.v_);
  if (!ld && !rd) {
    int64_t a = AsInt64(), b = other.AsInt64();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  double a = AsDouble(), b = other.AsDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  if (auto* p = std::get_if<std::string>(&v_)) {
    return std::hash<std::string>{}(*p);
  }
  if (auto* p = std::get_if<double>(&v_)) {
    double d = *p;
    // Hash integral doubles identically to the integer of the same value so
    // mixed-type join keys land in the same bucket.
    if (d == std::floor(d) && std::abs(d) < 9.2e18) {
      return std::hash<int64_t>{}(static_cast<int64_t>(d));
    }
    return std::hash<double>{}(d);
  }
  return std::hash<int64_t>{}(AsInt64());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (auto* p = std::get_if<std::string>(&v_)) return *p;
  if (auto* p = std::get_if<double>(&v_)) return std::to_string(*p);
  return std::to_string(AsInt64());
}

}  // namespace hd
