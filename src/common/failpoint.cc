#include "common/failpoint.h"

#include <chrono>
#include <thread>

namespace hd {

std::atomic<int> FailPoints::armed_count_{0};

FailPoints& FailPoints::Instance() {
  static FailPoints* fp = new FailPoints();  // leaked: evaluated from pool
  // worker threads that outlive static destructors.
  return *fp;
}

void FailPoints::Arm(const std::string& name, FailSpec spec) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
    it = points_.emplace(name, Point{}).first;
  }
  Point& p = it->second;
  p.evals = 0;
  p.hits = 0;
  p.done = false;
  p.rng.seed(spec.seed);
  p.spec = std::move(spec);
}

void FailPoints::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  if (points_.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoints::DisarmAll() {
  std::lock_guard<std::mutex> g(mu_);
  armed_count_.fetch_sub(static_cast<int>(points_.size()),
                         std::memory_order_relaxed);
  points_.clear();
}

Status FailPoints::Evaluate(const char* name, QueryMetrics* m) {
  double latency_ms = 0;
  double sim_io_ms = 0;
  Code code = Code::kOk;
  std::string message;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return Status::OK();
    Point& p = it->second;
    ++p.evals;
    bool fire = false;
    switch (p.spec.trigger) {
      case FailSpec::Trigger::kAlways:
        fire = true;
        break;
      case FailSpec::Trigger::kOneShot:
        fire = !p.done;
        p.done = true;
        break;
      case FailSpec::Trigger::kEveryNth:
        fire = (p.evals % p.spec.every_n) == 0;
        break;
      case FailSpec::Trigger::kProbability: {
        // Per-point seeded stream: the fire pattern is a pure function of
        // (seed, evaluation index), independent of wall clock or global
        // RNG state.
        std::uniform_real_distribution<double> u(0.0, 1.0);
        fire = u(p.rng) < p.spec.probability;
        break;
      }
    }
    if (!fire) return Status::OK();
    ++p.hits;
    latency_ms = p.spec.latency_ms;
    sim_io_ms = p.spec.sim_io_ms;
    code = p.spec.code;
    message = p.spec.message;
  }
  // Effects applied outside the registry lock.
  if (latency_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(latency_ms));
  }
  if (sim_io_ms > 0 && m != nullptr) {
    m->sim_io_ns += static_cast<uint64_t>(sim_io_ms * 1e6);
  }
  if (code == Code::kOk) return Status::OK();
  return Status(code, message + " (failpoint " + name + ")");
}

bool FailPoints::Armed(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  return points_.count(name) > 0;
}

uint64_t FailPoints::EvalCount(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.evals;
}

uint64_t FailPoints::HitCount(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FailPoints::TotalHits() const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t n = 0;
  for (const auto& [k, p] : points_) n += p.hits;
  return n;
}

}  // namespace hd
