#include "common/trace.h"

#include <cstdio>
#include <sstream>

namespace hd {

Trace& Trace::Global() {
  // Intentionally leaked: pool workers (and the telemetry sampler) may
  // still emit trace events while static destructors run at exit; a
  // function-local static with a real destructor would be torn down
  // first and leave them writing freed memory.
  static Trace* t = new Trace();
  return *t;
}

void Trace::Enable() {
  std::lock_guard<std::mutex> g(mu_);
  events_.clear();
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void Trace::Disable() { enabled_.store(false, std::memory_order_release); }

uint64_t Trace::NowUs() const {
  if (!enabled_.load(std::memory_order_relaxed)) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Trace::Record(const std::string& name, int tid, uint64_t ts_us,
                   uint64_t dur_us, uint64_t morsel, uint64_t trace_id,
                   const char* cat, int pid) {
  std::lock_guard<std::mutex> g(mu_);
  events_.push_back(Event{name, tid, ts_us, dur_us, morsel, trace_id, cat, pid});
}

size_t Trace::event_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return events_.size();
}

void Trace::Clear() {
  std::lock_guard<std::mutex> g(mu_);
  events_.clear();
}

namespace {

// Operator labels are generated from plan Describe() strings (identifier
// characters plus []{}()=,->); escape anything JSON cares about anyway so
// the output is valid for arbitrary names.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Trace::ToJson() const {
  std::lock_guard<std::mutex> g(mu_);
  std::ostringstream os;
  os << "{\n  \"traceEvents\": [\n";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    os << "    {\"name\": \"" << JsonEscape(e.name) << "\", \"cat\": \""
       << e.cat << "\", \"ph\": \"X\", \"pid\": " << e.pid
       << ", \"tid\": " << e.tid << ", \"ts\": " << e.ts_us
       << ", \"dur\": " << e.dur_us << ", \"args\": {\"morsel\": " << e.morsel;
    if (e.trace_id != 0) {
      char hex[17];
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(e.trace_id));
      os << ", \"trace\": \"" << hex << "\"";
    }
    os << "}}" << (i + 1 < events_.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"displayTimeUnit\": \"ms\",\n"
     << "  \"otherData\": {\"schema\": \"hd-trace/2\"}\n}\n";
  return os.str();
}

Status Trace::WriteJson(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  const std::string json = ToJson();
  const size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) return Status::Internal("short write to " + path);
  return Status::OK();
}

}  // namespace hd
