// Process-wide work-stealing thread pool with a morsel-driven ParallelFor.
//
// Morsel-driven parallelism (Leis et al., SIGMOD'14): a parallel operator
// is a loop over small, dynamically scheduled work units ("morsels" — one
// columnstore row group, a heap-page range, a batch of B+ tree leaves).
// Every query shares ONE process-wide pool instead of spawning and joining
// fresh threads per operator; DOP is a *concurrency cap* on how many
// participants may process a loop's morsels at once, not a thread count.
//
// Scheduling model:
//   - The pool owns `num_threads` workers, each with its own task deque.
//     Submitted tasks are distributed round-robin; an idle worker pops its
//     own deque front and steals from the back of others' deques.
//   - ParallelFor partitions [0, n) into one contiguous range per
//     participant slot. A participant drains its own range, then steals
//     morsels from other slots' ranges (tracked in MorselStats::stolen).
//   - The calling thread always participates (slot 0) and, while waiting,
//     claims any participant slot no pool worker has picked up yet. This
//     makes nested ParallelFor deadlock-free: a loop never depends on the
//     pool having a free thread, only on its own caller making progress.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace hd {

/// Per-call statistics of one ParallelFor (fed into QueryMetrics by the
/// executor: morsels_scheduled / morsels_stolen).
struct MorselStats {
  uint64_t scheduled = 0;  ///< total morsels executed
  uint64_t stolen = 0;     ///< morsels run by a slot that did not own them
  int participants = 0;    ///< participant slots actually claimed
  /// First failure injected by the `threadpool.task` failpoint, if any.
  /// Morsels skipped by injection or cancellation are not counted in
  /// `scheduled`, so callers can tell a clean loop from a cut-short one.
  Status status;
};

class ThreadPool {
 public:
  /// `num_threads` == 0 picks a hardware-sized pool.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The shared process-wide pool every query schedules onto.
  static ThreadPool& Global();

  /// Default DOP when ExecContext::max_dop == 0: hardware width, capped at
  /// 16 (mirrors SQL Server's default MAXDOP guidance).
  static int HardwareDop();

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Run `fn(slot, morsel)` for every morsel in [0, num_morsels) with at
  /// most `max_dop` concurrent participants. `slot` is in
  /// [0, min(max_dop, num_morsels)) and is exclusively owned by one
  /// participant for the whole call, so worker-local state (sinks, metric
  /// blocks) may be indexed by it without synchronization. Blocks until
  /// every morsel has been executed or skipped; safe to call from inside a
  /// morsel (nested loops share the pool, the caller always participates).
  ///
  /// `cancel`, when non-null, is a cooperative cancellation flag: once it
  /// reads true, participants stop claiming morsels (already-running
  /// morsels finish). The pool itself sets it when the `threadpool.task`
  /// failpoint fires, so one injected lane failure cuts the whole loop
  /// short instead of burning the remaining morsels.
  MorselStats ParallelFor(uint64_t num_morsels, int max_dop,
                          const std::function<void(int, uint64_t)>& fn,
                          std::atomic<bool>* cancel = nullptr);

 private:
  struct ParallelState;
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> deq;
  };

  void WorkerLoop(int wid);
  void Submit(std::function<void()> task);
  bool TryPop(int wid, std::function<void()>* out);

  /// Claim-and-drain loop shared by pool tasks and the waiting caller.
  static void RunSlot(const std::shared_ptr<ParallelState>& st, int slot);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> next_worker_{0};
  std::atomic<int> pending_{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stop_{false};
};

}  // namespace hd
