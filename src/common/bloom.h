// Blocked Bloom filter for sideways information passing (join pushdown).
//
// One membership test touches exactly one 64-bit word: the hash's high
// bits pick the word, and three 6-bit fields of the hash pick bits within
// it. That keeps a "does this base row have any chance of joining?" check
// to a single cache line — cheap enough to run on the decoded join-key
// vector inside the columnstore scan, before any other column is
// gathered. False positives only let extra rows through to the exact
// hash probe; a row that can join is never dropped.
#pragma once

#include <cstdint>
#include <vector>

namespace hd {

class BlockedBloomFilter {
 public:
  /// Size the filter for roughly `n` distinct keys: at least 16 bits per
  /// key (one word per 4 keys, rounded up to a power of two), which with
  /// three probe bits keeps the observed false-positive rate in the low
  /// percent range for the PK build sides we feed it. Clears previous
  /// contents. An empty build side leaves every word zero, so MayContain
  /// is always false — exactly right for a join with nothing to match.
  void Init(size_t n) {
    size_t words = 8;
    while (words * 4 < n) words <<= 1;
    words_.assign(words, 0);
    mask_ = words - 1;
  }

  bool empty() const { return words_.empty(); }
  size_t memory_bytes() const { return words_.size() * sizeof(uint64_t); }

  void Insert(int64_t key) {
    const uint64_t h = Mix(key);
    words_[(h >> 46) & mask_] |= MaskOf(h);
  }

  bool MayContain(int64_t key) const {
    const uint64_t h = Mix(key);
    const uint64_t m = MaskOf(h);
    return (words_[(h >> 46) & mask_] & m) == m;
  }

 private:
  /// Same multiply-xor-shift family as the join map's hash, but with a
  /// different odd constant so the filter's bit pattern is independent of
  /// the probe table's slot choice.
  static uint64_t Mix(int64_t k) {
    uint64_t h = static_cast<uint64_t>(k) * 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    return h ^ (h >> 29);
  }
  /// Three bits within one word, from three disjoint 6-bit hash fields.
  static uint64_t MaskOf(uint64_t h) {
    return (1ull << (h & 63)) | (1ull << ((h >> 6) & 63)) |
           (1ull << ((h >> 12) & 63));
  }

  std::vector<uint64_t> words_;
  size_t mask_ = 0;
};

}  // namespace hd
