// Capped exponential backoff with seeded jitter and a retry budget.
//
// Deadlock victims that retry immediately re-collide with the transaction
// that beat them (the hot-loop the mixed driver had before PR 3). The fix
// every production lock manager's clients use: wait base * 2^attempt
// capped at `cap`, jittered so two victims of the same deadlock do not
// wake in lockstep, and give up after a budget of attempts. Jitter draws
// from a seeded RNG so workload runs stay reproducible.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/rng.h"

namespace hd {

class Backoff {
 public:
  /// `base_ms` first-retry delay, doubled per attempt up to `cap_ms`;
  /// `budget` = max attempts before Exhausted().
  Backoff(double base_ms, double cap_ms, int budget, uint64_t seed)
      : base_ms_(std::max(0.0, base_ms)),
        cap_ms_(std::max(base_ms_, cap_ms)),
        budget_(std::max(0, budget)),
        rng_(seed) {}

  /// True once the retry budget is spent; the caller should surface
  /// kResourceExhausted instead of retrying again.
  bool Exhausted() const { return attempts_ >= budget_; }

  /// Delay for the next retry, in ms: raw = min(cap, base * 2^attempt),
  /// jittered into [raw/2, raw] ("equal jitter" — bounded below so a
  /// retry never fires immediately, bounded above by the cap).
  double NextDelayMs() {
    double raw = base_ms_;
    for (int i = 0; i < attempts_ && raw < cap_ms_; ++i) raw *= 2;
    raw = std::min(raw, cap_ms_);
    ++attempts_;
    const double d = raw / 2 + rng_.UniformReal(0.0, raw / 2);
    total_ms_ += d;
    return d;
  }

  /// Compute the next delay and sleep it (real wall-clock wait).
  double SleepNext() {
    const double d = NextDelayMs();
    if (d > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(d));
    }
    return d;
  }

  int attempts() const { return attempts_; }
  double total_backoff_ms() const { return total_ms_; }

 private:
  double base_ms_;
  double cap_ms_;
  int budget_;
  int attempts_ = 0;
  double total_ms_ = 0;
  Rng rng_;
};

}  // namespace hd
