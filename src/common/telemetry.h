// Process-wide engine telemetry: counters, gauges, and log-linear
// (HDR-style) latency histograms, always on and cheap enough to leave in
// every hot path.
//
// This registry is *complementary* to per-query QueryMetrics: QueryMetrics
// attributes work to one statement (and, via OperatorProfile, to one plan
// node); telemetry aggregates the same subsystems *across* statements and
// over time — buffer-pool pressure, lock contention, pool scheduling,
// transaction latencies, columnstore health — the always-on signals the
// paper's mixed-workload analysis (Sections 3.6–3.7) is about, and the
// input a production tuning loop would consume.
//
// Design:
//   - Metric objects are owned by the registry and never deallocated
//     (pointers handed out stay valid for the process lifetime; the
//     registry singleton is intentionally leaked, like ThreadPool, so
//     recording from worker threads during static destruction is safe).
//   - Recording is lock-free: counters are sharded atomics (one cache
//     line per shard, thread-local shard choice), gauges are single
//     atomics, histograms are one relaxed fetch_add on a bucket.
//   - Snapshot() gives a consistent-enough copy for exposition (each cell
//     is read atomically; cross-metric skew is bounded by the scrape
//     duration, the standard Prometheus contract).
//
// Histogram bucket scheme (documented in docs/OBSERVABILITY.md): values
// are non-negative integers (by convention nanoseconds, or a unitless
// depth). Buckets are log-linear: exact unit buckets for v < 32, then 32
// linear sub-buckets per power of two. Bucket width / lower bound <=
// 1/32, so any reported quantile q satisfies
//     |q_est - q_exact| <= q_exact / 32 + 1.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace hd {

/// Monotonic event counter, sharded to keep concurrent recorders off each
/// other's cache lines.
class TCounter {
 public:
  void Add(uint64_t n = 1) {
    shards_[Slot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  /// Zero in place (tests); concurrent Adds may survive the reset.
  void Reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr int kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  static uint32_t Slot();
  Shard shards_[kShards];
};

/// Signed instantaneous value. Subsystems update by *delta* (Add), so one
/// process gauge aggregates correctly across many instances (e.g. every
/// BufferPool adds its residency changes into the same gauge).
class TGauge {
 public:
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Immutable copy of one histogram, with quantile estimation.
struct HistSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;  // in recorded units
  /// (bucket index, count) pairs for every non-empty bucket, ascending.
  std::vector<std::pair<uint32_t, uint64_t>> buckets;

  /// Estimated value at quantile p in [0, 1]; 0 when empty. Error bound:
  /// |est - exact| <= exact/32 + 1 (see bucket scheme above).
  double Quantile(double p) const;
  double Mean() const { return count ? static_cast<double>(sum) / count : 0; }
  /// Upper bound of the highest non-empty bucket (approximate max).
  uint64_t MaxBound() const;
};

/// Log-linear histogram of non-negative integer values.
class THistogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 32
  static constexpr int kNumBuckets = (64 - kSubBits + 1) * kSubBuckets;

  void Record(int64_t value) {
    const uint64_t v = value > 0 ? static_cast<uint64_t>(value) : 0;
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  HistSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

  /// Bucket index of value v (exposed for tests).
  static uint32_t BucketIndex(uint64_t v);
  /// [lower, upper) bounds of bucket `idx` (exposed for tests).
  static void BucketBounds(uint32_t idx, uint64_t* lo, uint64_t* hi);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Point-in-time copy of the whole registry, ready for exposition.
struct TelemetrySnapshot {
  /// Unix epoch milliseconds at snapshot time.
  uint64_t ts_ms = 0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistSnapshot> histograms;

  /// Prometheus text exposition format: counters as `<name>_total`,
  /// gauges as-is, histograms as summaries (p50/p95/p99/p999 quantile
  /// series plus _sum and _count). Metric names are prefixed `hd_` and
  /// sanitized (`.` -> `_`).
  std::string ToPrometheus() const;

  /// One JSON object (single line, no trailing newline) — the JSONL
  /// record the background sampler appends per tick. Schema
  /// `hd-stats/1` (docs/OBSERVABILITY.md).
  std::string ToJson() const;
};

/// The process-wide registry. Get-or-create by name; returned pointers
/// are valid forever (metrics are never destroyed).
class Telemetry {
 public:
  static Telemetry& Instance();

  TCounter* Counter(const std::string& name);
  TGauge* Gauge(const std::string& name);
  THistogram* Histogram(const std::string& name);

  TelemetrySnapshot Snapshot() const;

  /// Zero every registered metric in place (tests). Cached pointers stay
  /// valid; racing recorders may leave residue.
  void ResetForTest();

 private:
  Telemetry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TCounter>> counters_;
  std::map<std::string, std::unique_ptr<TGauge>> gauges_;
  std::map<std::string, std::unique_ptr<THistogram>> histograms_;
};

/// Background sampler: a thread that appends one TelemetrySnapshot JSONL
/// record to a file every `interval_ms`, until stopped. Stop() (or the
/// destructor) joins the thread and writes one final snapshot, so the
/// file always ends with the post-workload state.
///
/// Failpoint-aware: each tick evaluates the `telemetry.sample` failpoint;
/// an injected failure skips that tick's write (counted in
/// samples_skipped) and sampling continues — a flaky metrics sink must
/// never take the engine down.
///
/// Shutdown ordering: the sampler reads only registry-owned memory (the
/// leaked Telemetry singleton), never engine objects, so it is safe to
/// keep sampling while Databases, pools, and transaction managers are
/// destroyed (tests/chaos_test.cc regression-tests this ordering).
class TelemetrySampler {
 public:
  TelemetrySampler() = default;
  ~TelemetrySampler() { Stop(); }

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Open `path` for append and start the sampling thread. Fails if
  /// already running or the file cannot be opened.
  Status Start(const std::string& path, int interval_ms);

  /// Stop sampling: joins the thread, appends a final snapshot, closes
  /// the file. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint64_t samples_written() const {
    return samples_written_.load(std::memory_order_relaxed);
  }
  uint64_t samples_skipped() const {
    return samples_skipped_.load(std::memory_order_relaxed);
  }

 private:
  struct Impl;
  void Loop();
  void WriteSample();

  std::mutex mu_;  // guards start/stop transitions and file_
  std::condition_variable cv_;
  bool stop_requested_ = false;
  void* file_ = nullptr;  // FILE*, kept opaque to avoid <cstdio> here
  int interval_ms_ = 1000;
  std::unique_ptr<std::thread> thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> samples_written_{0};
  std::atomic<uint64_t> samples_skipped_{0};
};

}  // namespace hd
