// Structured execution tracing in Chrome trace-event format.
//
// When enabled, the executor records one complete ("ph":"X") event per
// morsel it schedules, tagged with the operator label and the participant
// slot that ran it. The resulting JSON loads directly into
// chrome://tracing or https://ui.perfetto.dev, giving a per-worker lane
// view of how the shared pool interleaved and stole morsels — the
// scheduling behaviour behind the morsels_scheduled/morsels_stolen
// counters in QueryMetrics.
//
// Schema (docs/OBSERVABILITY.md has the full contract):
//   {
//     "traceEvents": [
//       {"name": "CsiScan[csi]", "cat": "exec", "ph": "X",
//        "pid": 0, "tid": 3, "ts": 1234, "dur": 56,
//        "args": {"morsel": 17, "trace": "00c0ffee00c0ffee"}},
//       ...
//     ],
//     "displayTimeUnit": "ms",
//     "otherData": {"schema": "hd-trace/2"}
//   }
//
// `tid` is the participant slot (the lane the morsel ran on), `ts`/`dur`
// are microseconds since Enable(). Collection is process-global and
// thread-safe; the Enabled() check is a single relaxed atomic load so the
// disabled hot path costs nothing measurable per morsel.
//
// hd-trace/2 (query-store PR) adds end-to-end correlation: events carry
// a category (`exec` morsels, `admission` queue waits, `wal` commit
// fsyncs, `session` per-statement server rows), an optional 64-bit trace
// id rendered in args as 16 hex digits (the same id the wire protocol,
// query store, and slow-query log print — see docs/PROTOCOL.md §2.3),
// and a pid lane group: pid 0 is the executor (one tid per worker slot),
// pid 1 is the server (one tid per session id), so chrome://tracing
// shows wire-level rows above the morsel lanes that served them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace hd {

class Trace {
 public:
  struct Event {
    std::string name;    // operator label
    int tid = 0;         // participant slot (lane), or session id (pid 1)
    uint64_t ts_us = 0;  // start, microseconds since Enable()
    uint64_t dur_us = 0;
    uint64_t morsel = 0;    // morsel index within the operator's loop
    uint64_t trace_id = 0;  // end-to-end query trace id; 0 = untraced
    const char* cat = "exec";  // "exec" | "admission" | "wal" | "session"
    int pid = 0;               // lane group: 0 executor, 1 server sessions
  };

  /// The process-wide collector the executor records into.
  static Trace& Global();

  /// Cheap hot-path check; true only between Enable() and Disable().
  static bool Enabled() {
    return Global().enabled_.load(std::memory_order_relaxed);
  }

  /// Start collecting; resets the clock and drops prior events.
  void Enable();
  void Disable();

  /// Microseconds since Enable() (0 when disabled).
  uint64_t NowUs() const;

  /// Record one complete span. The defaulted tail keeps pre-trace-id
  /// callsites source-compatible; `cat` must be a string literal (or
  /// otherwise outlive the trace).
  void Record(const std::string& name, int tid, uint64_t ts_us,
              uint64_t dur_us, uint64_t morsel, uint64_t trace_id = 0,
              const char* cat = "exec", int pid = 0);

  size_t event_count() const;
  void Clear();

  /// Render every collected event as Chrome trace-event JSON.
  std::string ToJson() const;

  /// ToJson() to a file.
  Status WriteJson(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace hd
