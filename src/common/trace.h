// Structured execution tracing in Chrome trace-event format.
//
// When enabled, the executor records one complete ("ph":"X") event per
// morsel it schedules, tagged with the operator label and the participant
// slot that ran it. The resulting JSON loads directly into
// chrome://tracing or https://ui.perfetto.dev, giving a per-worker lane
// view of how the shared pool interleaved and stole morsels — the
// scheduling behaviour behind the morsels_scheduled/morsels_stolen
// counters in QueryMetrics.
//
// Schema (docs/OBSERVABILITY.md has the full contract):
//   {
//     "traceEvents": [
//       {"name": "CsiScan[csi]", "cat": "exec", "ph": "X",
//        "pid": 0, "tid": 3, "ts": 1234, "dur": 56,
//        "args": {"morsel": 17}},
//       ...
//     ],
//     "displayTimeUnit": "ms",
//     "otherData": {"schema": "hd-trace/1"}
//   }
//
// `tid` is the participant slot (the lane the morsel ran on), `ts`/`dur`
// are microseconds since Enable(). Collection is process-global and
// thread-safe; the Enabled() check is a single relaxed atomic load so the
// disabled hot path costs nothing measurable per morsel.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace hd {

class Trace {
 public:
  struct Event {
    std::string name;    // operator label
    int tid = 0;         // participant slot (lane)
    uint64_t ts_us = 0;  // start, microseconds since Enable()
    uint64_t dur_us = 0;
    uint64_t morsel = 0;  // morsel index within the operator's loop
  };

  /// The process-wide collector the executor records into.
  static Trace& Global();

  /// Cheap hot-path check; true only between Enable() and Disable().
  static bool Enabled() {
    return Global().enabled_.load(std::memory_order_relaxed);
  }

  /// Start collecting; resets the clock and drops prior events.
  void Enable();
  void Disable();

  /// Microseconds since Enable() (0 when disabled).
  uint64_t NowUs() const;

  void Record(const std::string& name, int tid, uint64_t ts_us,
              uint64_t dur_us, uint64_t morsel);

  size_t event_count() const;
  void Clear();

  /// Render every collected event as Chrome trace-event JSON.
  std::string ToJson() const;

  /// ToJson() to a file.
  Status WriteJson(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace hd
