#include "txn/lock_manager.h"

#include <chrono>
#include <functional>

#include "common/failpoint.h"
#include "common/telemetry.h"

namespace hd {

namespace {

// Process-wide lock-manager telemetry. The wait histogram records only
// contended acquires (requests granted without blocking skip the clock
// entirely, keeping the uncontended OLTP path cheap).
struct LockStats {
  TCounter* grants = Telemetry::Instance().Counter("lock.grants");
  TCounter* waits = Telemetry::Instance().Counter("lock.waits");
  TCounter* timeouts = Telemetry::Instance().Counter("lock.timeouts");
  THistogram* wait_ns = Telemetry::Instance().Histogram("lock.wait_ns");
};

LockStats& Stats() {
  static LockStats s;
  return s;
}

}  // namespace

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kX: return "X";
  }
  return "?";
}

bool LockCompatible(LockMode held, LockMode req) {
  // Standard multi-granularity matrix.
  switch (held) {
    case LockMode::kIS:
      return req != LockMode::kX;
    case LockMode::kIX:
      return req == LockMode::kIS || req == LockMode::kIX;
    case LockMode::kS:
      return req == LockMode::kIS || req == LockMode::kS;
    case LockMode::kX:
      return false;
  }
  return false;
}

uint64_t LockManager::HashTable(const std::string& name) {
  return std::hash<std::string>{}(name) | 1;  // never zero
}

bool LockManager::CanGrant(const LockState& st, uint64_t txn_id,
                           LockMode mode, uint64_t ticket) {
  for (const auto& [other, held] : st.granted) {
    if (other == txn_id) continue;
    if (!LockCompatible(held, mode)) return false;
  }
  // Fairness: wait behind earlier incompatible waiters.
  for (const auto& w : st.waiters) {
    if (w.txn == txn_id || w.ticket >= ticket) continue;
    if (!LockCompatible(w.mode, mode) || !LockCompatible(mode, w.mode)) {
      return false;
    }
  }
  return true;
}

namespace {
/// Strength order for upgrades: IS < IX < S < X (S/IX incomparable in
/// theory — we rank X strongest, then S, then IX, then IS, which is safe
/// for our usage where upgrades are IS->S, IX->X, S->X).
int Strength(LockMode m) {
  switch (m) {
    case LockMode::kIS: return 0;
    case LockMode::kIX: return 1;
    case LockMode::kS: return 2;
    case LockMode::kX: return 3;
  }
  return 0;
}
}  // namespace

Status LockManager::Acquire(uint64_t txn_id, const LockResource& res,
                            LockMode mode, int timeout_ms) {
  // Spurious timeout injection: the caller sees the same Aborted status a
  // real deadlock victim gets, so its rollback/retry path is exercised
  // without having to manufacture an actual lock cycle.
  HD_FAILPOINT_RETURN("lockmgr.acquire");
  Shard& sh = ShardFor(res);
  std::unique_lock<std::mutex> g(sh.mu);
  LockState& st = sh.locks[res];
  auto it = st.granted.find(txn_id);
  if (it != st.granted.end() && Strength(it->second) >= Strength(mode)) {
    return Status::OK();  // already held at sufficient strength
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const uint64_t ticket = next_ticket_.fetch_add(1);
  st.waiters.push_back(Waiter{ticket, txn_id, mode});
  auto remove_waiter = [&] {
    for (auto it = st.waiters.begin(); it != st.waiters.end(); ++it) {
      if (it->ticket == ticket) {
        st.waiters.erase(it);
        break;
      }
    }
  };
  // Contended path: time the wait (fast grants below never take a clock).
  const bool contended = !CanGrant(st, txn_id, mode, ticket);
  std::chrono::steady_clock::time_point wait_start;
  if (contended) {
    wait_start = std::chrono::steady_clock::now();
    Stats().waits->Add(1);
  }
  auto record_wait = [&] {
    if (!contended) return;
    Stats().wait_ns->Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count());
  };
  while (!CanGrant(st, txn_id, mode, ticket)) {
    if (sh.cv.wait_until(g, deadline) == std::cv_status::timeout &&
        !CanGrant(st, txn_id, mode, ticket)) {
      remove_waiter();
      sh.cv.notify_all();  // successors may now be grantable
      record_wait();
      Stats().timeouts->Add(1);
      return Status::Aborted("lock timeout (deadlock victim)");
    }
  }
  remove_waiter();
  sh.cv.notify_all();  // our dequeue may unblock same-mode successors
  record_wait();
  Stats().grants->Add(1);
  const bool upgrade = st.granted.count(txn_id) > 0;
  st.granted[txn_id] = mode;
  if (!upgrade) sh.held[txn_id].push_back(res);
  return Status::OK();
}

void LockManager::Release(uint64_t txn_id, const LockResource& res) {
  Shard& sh = ShardFor(res);
  std::lock_guard<std::mutex> g(sh.mu);
  auto it = sh.locks.find(res);
  if (it == sh.locks.end()) return;
  it->second.granted.erase(txn_id);
  if (it->second.granted.empty() && it->second.waiters.empty()) {
    sh.locks.erase(it);
  }
  auto hit = sh.held.find(txn_id);
  if (hit != sh.held.end()) {
    auto& v = hit->second;
    for (auto rit = v.begin(); rit != v.end(); ++rit) {
      if (*rit == res) {
        v.erase(rit);
        break;
      }
    }
    if (v.empty()) sh.held.erase(hit);
  }
  sh.cv.notify_all();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    auto hit = sh.held.find(txn_id);
    if (hit == sh.held.end()) continue;
    for (const auto& res : hit->second) {
      auto it = sh.locks.find(res);
      if (it == sh.locks.end()) continue;
      it->second.granted.erase(txn_id);
      if (it->second.granted.empty() && it->second.waiters.empty()) {
        sh.locks.erase(it);
      }
    }
    sh.held.erase(hit);
    sh.cv.notify_all();
  }
}

uint64_t LockManager::TotalGranted() {
  uint64_t n = 0;
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    for (const auto& [res, st] : sh.locks) n += st.granted.size();
  }
  return n;
}

int LockManager::GrantedCount(const LockResource& res) {
  Shard& sh = ShardFor(res);
  std::lock_guard<std::mutex> g(sh.mu);
  auto it = sh.locks.find(res);
  return it == sh.locks.end() ? 0 : static_cast<int>(it->second.granted.size());
}

}  // namespace hd
