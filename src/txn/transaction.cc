#include "txn/transaction.h"

#include <algorithm>

#include "common/telemetry.h"

namespace hd {

namespace {

// Process-wide transaction telemetry: lifetime histograms (Begin to
// Commit/Abort) and outcome counters.
struct TxnStats {
  TCounter* commits = Telemetry::Instance().Counter("txn.commits");
  TCounter* aborts = Telemetry::Instance().Counter("txn.aborts");
  THistogram* commit_ns = Telemetry::Instance().Histogram("txn.commit_ns");
  THistogram* abort_ns = Telemetry::Instance().Histogram("txn.abort_ns");
};

TxnStats& Stats() {
  static TxnStats s;
  return s;
}

int64_t SinceNs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

const char* IsolationLevelName(IsolationLevel l) {
  switch (l) {
    case IsolationLevel::kReadCommitted: return "RC";
    case IsolationLevel::kSnapshot: return "SI";
    case IsolationLevel::kSerializable: return "SR";
  }
  return "?";
}

std::unique_ptr<Transaction> TransactionManager::Begin(IsolationLevel iso) {
  auto t = std::make_unique<Transaction>();
  t->id_ = next_txn_.fetch_add(1);
  t->iso_ = iso;
  t->snapshot_ts_ = ts_.load();
  t->begin_tp_ = std::chrono::steady_clock::now();
  if (wal_ != nullptr) t->wal_id_ = wal_->AllocTxnId();
  if (iso == IsolationLevel::kSnapshot) {
    std::lock_guard<std::mutex> g(active_mu_);
    active_snapshots_.insert(t->snapshot_ts_);
  }
  return t;
}

Status TransactionManager::Commit(Transaction* txn) {
  // Durability first: the commit record must be on disk (per mode) before
  // locks release and the effects become visible to other transactions.
  Status durable = Status::OK();
  if (wal_ != nullptr && txn->wal_wrote_) {
    durable = wal_->Commit(txn->wal_id_);
  }
  locks_.ReleaseAll(txn->id());
  if (txn->isolation() == IsolationLevel::kSnapshot) {
    std::lock_guard<std::mutex> g(active_mu_);
    active_snapshots_.erase(txn->snapshot_ts_);
  }
  txn->noted_.clear();  // committed versions are permanent
  ts_.fetch_add(1);
  Stats().commits->Add(1);
  Stats().commit_ns->Record(SinceNs(txn->begin_tp_));
  return durable;
}

void TransactionManager::Abort(Transaction* txn) {
  // Note: logical rollback of data is the caller's responsibility (our
  // workloads retry idempotent statements); this releases locks and
  // removes the version markers the transaction created, so aborted
  // writers do not inflate SI chain lengths or leak version_count().
  // Recovery undoes the transaction's logged inserts; the abort record is
  // advisory (a missing one just means a longer analysis loser set).
  if (wal_ != nullptr && txn->wal_wrote_) wal_->Abort(txn->wal_id_);
  locks_.ReleaseAll(txn->id());
  for (auto rit = txn->noted_.rbegin(); rit != txn->noted_.rend(); ++rit) {
    const auto [key, stamp] = *rit;
    VersionShard& sh = VShardFor(key);
    std::lock_guard<std::mutex> g(sh.mu);
    auto it = sh.chains.find(key);
    if (it == sh.chains.end()) continue;  // trimmed by chain bounding / GC
    auto& chain = it->second;
    // Erase one matching stamp, newest-first (ours is likely near the
    // back). Best effort: the marker may already be gone to bounding.
    for (auto c = chain.rbegin(); c != chain.rend(); ++c) {
      if (*c == stamp) {
        chain.erase(std::next(c).base());
        break;
      }
    }
    if (chain.empty()) sh.chains.erase(it);
  }
  txn->noted_.clear();
  if (txn->isolation() == IsolationLevel::kSnapshot) {
    std::lock_guard<std::mutex> g(active_mu_);
    active_snapshots_.erase(txn->snapshot_ts_);
  }
  Stats().aborts->Add(1);
  Stats().abort_ns->Record(SinceNs(txn->begin_tp_));
}

void TransactionManager::NoteVersion(uint64_t table_hash, int64_t rid,
                                     Transaction* txn) {
  const uint64_t key = VKey(table_hash, rid);
  VersionShard& sh = VShardFor(key);
  const uint64_t now = ts_.load();
  if (txn != nullptr) txn->noted_.emplace_back(key, now);
  std::lock_guard<std::mutex> g(sh.mu);
  auto& chain = sh.chains[key];
  chain.push_back(now);
  // Bound chains: real version stores GC continuously.
  if (chain.size() > 64) chain.erase(chain.begin(), chain.begin() + 32);
}

int TransactionManager::VersionChainLength(uint64_t table_hash, int64_t rid,
                                           uint64_t snapshot_ts) const {
  const uint64_t key = VKey(table_hash, rid);
  VersionShard& sh = VShardFor(key);
  std::lock_guard<std::mutex> g(sh.mu);
  auto it = sh.chains.find(key);
  if (it == sh.chains.end()) return 0;
  // A version stamped at ts >= snapshot_ts was written after the snapshot
  // was taken (commits advance the clock past their writes).
  int n = 0;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (*rit < snapshot_ts) break;
    ++n;
  }
  return n;
}

void TransactionManager::GarbageCollect() {
  uint64_t oldest = ts_.load();
  {
    std::lock_guard<std::mutex> g(active_mu_);
    for (uint64_t s : active_snapshots_) oldest = std::min(oldest, s);
  }
  for (auto& sh : vshards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    for (auto it = sh.chains.begin(); it != sh.chains.end();) {
      auto& chain = it->second;
      auto keep = std::lower_bound(chain.begin(), chain.end(), oldest);
      chain.erase(chain.begin(), keep);
      it = chain.empty() ? sh.chains.erase(it) : std::next(it);
    }
  }
}

uint64_t TransactionManager::version_count() const {
  uint64_t n = 0;
  for (auto& sh : vshards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    for (auto& [k, c] : sh.chains) n += c.size();
  }
  return n;
}

}  // namespace hd
