// Hierarchical two-phase lock manager (table intent locks + row locks).
//
// Used by the mixed-workload experiments (Sections 3.4 and 5.2.2) where
// lock contention between short update transactions and long analytic
// scans is part of the measured behaviour. Deadlocks are resolved by
// timeout: a waiter that cannot be granted within its timeout aborts.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace hd {

enum class LockMode : uint8_t { kIS, kIX, kS, kX };

const char* LockModeName(LockMode m);

/// True if a new request `req` is compatible with an already-granted `held`.
bool LockCompatible(LockMode held, LockMode req);

/// Lockable resource: a whole table (rid == kTableResource) or one row.
struct LockResource {
  uint64_t table = 0;  // table name hash
  int64_t rid = kTableResource;

  static constexpr int64_t kTableResource = -1;

  bool operator<(const LockResource& o) const {
    return table != o.table ? table < o.table : rid < o.rid;
  }
  bool operator==(const LockResource& o) const {
    return table == o.table && rid == o.rid;
  }
};

class LockManager {
 public:
  LockManager() = default;

  /// Acquire (or upgrade) a lock for transaction `txn_id`. Blocks until
  /// granted or `timeout_ms` elapsed; timeout returns Aborted (the caller
  /// is the deadlock victim and should roll back).
  Status Acquire(uint64_t txn_id, const LockResource& res, LockMode mode,
                 int timeout_ms = 200);

  /// Release one resource held by `txn_id`.
  void Release(uint64_t txn_id, const LockResource& res);

  /// Release everything `txn_id` holds (commit/abort).
  void ReleaseAll(uint64_t txn_id);

  /// Resource hash helper for table names.
  static uint64_t HashTable(const std::string& name);

  /// Introspection for tests.
  int GrantedCount(const LockResource& res);

  /// Total granted locks across all shards — zero once every transaction
  /// has committed or aborted (the chaos harness's leak check).
  uint64_t TotalGranted();

 private:
  struct Waiter {
    uint64_t ticket;
    uint64_t txn;
    LockMode mode;
  };
  struct LockState {
    // txn -> strongest granted mode.
    std::map<uint64_t, LockMode> granted;
    // FIFO wait queue: a request must also wait behind earlier
    // incompatible waiters, so writers cannot starve readers (and vice
    // versa).
    std::vector<Waiter> waiters;
  };
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::map<LockResource, LockState> locks;
    // txn -> resources held (within this shard).
    std::map<uint64_t, std::vector<LockResource>> held;
  };

  Shard& ShardFor(const LockResource& r) {
    return shards_[(r.table ^ static_cast<uint64_t>(r.rid * 0x9e3779b9)) %
                   kNumShards];
  }

  static bool CanGrant(const LockState& st, uint64_t txn_id, LockMode mode,
                       uint64_t ticket);

  static constexpr int kNumShards = 64;
  Shard shards_[kNumShards];
  std::atomic<uint64_t> next_ticket_{1};
};

}  // namespace hd
