// Transactions, isolation levels, and the version store that makes
// Snapshot Isolation reads pay for version-chain traversal.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/wal.h"
#include "txn/lock_manager.h"

namespace hd {

enum class IsolationLevel {
  kReadCommitted,  // short S locks on reads, X till commit
  kSnapshot,       // no read locks; reads resolve row versions
  kSerializable,   // S and X locks held till commit
};

const char* IsolationLevelName(IsolationLevel l);

class TransactionManager;

/// One transaction. Not thread-safe; each worker owns its transactions.
class Transaction {
 public:
  uint64_t id() const { return id_; }
  IsolationLevel isolation() const { return iso_; }
  /// Snapshot timestamp (SI): versions written after this are invisible.
  uint64_t snapshot_ts() const { return snapshot_ts_; }

  /// WAL transaction id (0 when durability is off). Distinct from id():
  /// the WAL allocator survives restarts, this one does not.
  uint64_t wal_id() const { return wal_id_; }
  /// Mark that a statement logged under wal_id() — Commit must then wait
  /// for the log per the durability mode, and Abort must log the abort.
  void MarkWalWrite() { wal_wrote_ = true; }
  bool wal_wrote() const { return wal_wrote_; }

 private:
  friend class TransactionManager;
  uint64_t id_ = 0;
  IsolationLevel iso_ = IsolationLevel::kReadCommitted;
  uint64_t snapshot_ts_ = 0;
  uint64_t wal_id_ = 0;
  bool wal_wrote_ = false;
  /// Begin() time, for the commit/abort latency telemetry histograms.
  std::chrono::steady_clock::time_point begin_tp_;
  /// Version-store entries this transaction created: (vkey, timestamp).
  /// Abort undoes them so aborted writers leave no phantom versions (GC
  /// only trims versions older than the oldest snapshot, and an abort
  /// does not advance the clock — without undo these would leak).
  std::vector<std::pair<uint64_t, uint64_t>> noted_;
};

/// Manages transaction lifecycle, the lock manager, and a version store.
///
/// The version store models SI's row versioning cost: every update under
/// SI appends a version marker keyed by (table, rid); SI readers probe it
/// per qualifying row and walk the chain length. Commit/GC trims markers.
class TransactionManager {
 public:
  TransactionManager() = default;

  std::unique_ptr<Transaction> Begin(IsolationLevel iso);

  /// Commit: when the transaction logged WAL records, the commit record is
  /// made durable per the WAL's mode FIRST (before locks release). A
  /// returned error means durability is UNKNOWN — the commit's effects are
  /// applied in memory and may or may not survive a crash, so callers must
  /// report the operation failed and must NOT retry it (a retry that lands
  /// after a commit record that did reach disk double-applies on replay).
  Status Commit(Transaction* txn);
  void Abort(Transaction* txn);

  /// Route commits/aborts through `wal` (may be null = durability off).
  /// Begin() then stamps each transaction with a WAL txn id.
  void BindWal(WalManager* wal) { wal_ = wal; }
  WalManager* wal() const { return wal_; }

  LockManager* locks() { return &locks_; }
  uint64_t current_ts() const { return ts_.load(); }

  /// Record that (table, rid) gained a version at the current timestamp.
  /// When `txn` is given, the entry is remembered so Abort can undo it.
  void NoteVersion(uint64_t table_hash, int64_t rid,
                   Transaction* txn = nullptr);

  /// Number of versions of (table, rid) newer than `snapshot_ts` — the
  /// chain length an SI reader must traverse. 0 for unversioned rows.
  int VersionChainLength(uint64_t table_hash, int64_t rid,
                         uint64_t snapshot_ts) const;

  /// Drop versions older than the oldest active snapshot (background GC).
  void GarbageCollect();

  uint64_t version_count() const;

 private:
  struct VersionShard {
    mutable std::mutex mu;
    // (table ^ rid-mix) -> timestamps of versions, newest last.
    std::unordered_map<uint64_t, std::vector<uint64_t>> chains;
  };
  static uint64_t VKey(uint64_t table_hash, int64_t rid) {
    return table_hash ^ (static_cast<uint64_t>(rid) * 0x9e3779b97f4a7c15ull);
  }
  VersionShard& VShardFor(uint64_t key) const {
    return vshards_[key % kNumShards];
  }

  static constexpr int kNumShards = 64;
  WalManager* wal_ = nullptr;
  LockManager locks_;
  std::atomic<uint64_t> next_txn_{1};
  std::atomic<uint64_t> ts_{1};
  mutable VersionShard vshards_[kNumShards];

  mutable std::mutex active_mu_;
  std::unordered_set<uint64_t> active_snapshots_;  // snapshot_ts values
};

}  // namespace hd
