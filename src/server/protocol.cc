#include "server/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

namespace hd {

namespace {

// Per-value tags inside RowBatch (PROTOCOL.md §2.5). Distinct from the
// ValueType column declarations: a tag travels with every value, so a
// decoder never guesses widths.
enum ValTag : uint8_t {
  kTagNull = 0,
  kTagI32 = 1,
  kTagI64 = 2,
  kTagF64 = 3,
  kTagStr = 4,
};

Status Truncated() { return Status::InvalidArgument("truncated payload"); }

/// Loop send() until the whole buffer is on the wire.
Status SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    if (w == 0) return Status::IoError("send: connection closed");
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Loop recv() until exactly n bytes. `*got` counts bytes received so
/// the caller can distinguish clean EOF (0) from a torn frame (>0).
Status RecvAll(int fd, char* data, size_t n, size_t* got) {
  *got = 0;
  while (*got < n) {
    const ssize_t r = ::recv(fd, data + *got, n - *got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (r == 0) {
      return *got == 0 ? Status::NotFound("connection closed")
                       : Status::IoError("recv: truncated frame");
    }
    *got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "Hello";
    case MsgType::kHelloOk: return "HelloOk";
    case MsgType::kQuery: return "Query";
    case MsgType::kResultHeader: return "ResultHeader";
    case MsgType::kRowBatch: return "RowBatch";
    case MsgType::kResultDone: return "ResultDone";
    case MsgType::kError: return "Error";
    case MsgType::kStatsReq: return "StatsReq";
    case MsgType::kStatsResult: return "StatsResult";
    case MsgType::kClose: return "Close";
    case MsgType::kCloseOk: return "CloseOk";
    case MsgType::kInfo: return "Info";
  }
  return "?";
}

uint8_t WireCode(Code c) { return static_cast<uint8_t>(c); }

Code CodeFromWire(uint8_t v) {
  return v <= static_cast<uint8_t>(Code::kInternal) ? static_cast<Code>(v)
                                                    : Code::kInternal;
}

// ---- WireWriter --------------------------------------------------------

void WireWriter::U32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 4);
}

void WireWriter::U64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void WireWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  U64(bits);
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void WireWriter::Value(const hd::Value& v) {
  switch (v.kind()) {
    case hd::Value::Kind::kNull:
      U8(kTagNull);
      return;
    case hd::Value::Kind::kInt32:
      U8(kTagI32);
      U32(static_cast<uint32_t>(v.i32()));
      return;
    case hd::Value::Kind::kInt64:
      U8(kTagI64);
      U64(static_cast<uint64_t>(v.i64()));
      return;
    case hd::Value::Kind::kDouble:
      U8(kTagF64);
      F64(v.f64());
      return;
    case hd::Value::Kind::kString:
      U8(kTagStr);
      Str(v.str());
      return;
  }
}

// ---- WireReader --------------------------------------------------------

Status WireReader::Need(size_t n) {
  return s_.size() - off_ >= n ? Status::OK() : Truncated();
}

Status WireReader::U8(uint8_t* v) {
  HD_RETURN_IF_ERROR(Need(1));
  *v = static_cast<uint8_t>(s_[off_++]);
  return Status::OK();
}

Status WireReader::U32(uint32_t* v) {
  HD_RETURN_IF_ERROR(Need(4));
  uint32_t x = 0;
  for (int i = 0; i < 4; ++i) {
    x |= static_cast<uint32_t>(static_cast<uint8_t>(s_[off_ + i])) << (8 * i);
  }
  off_ += 4;
  *v = x;
  return Status::OK();
}

Status WireReader::U64(uint64_t* v) {
  HD_RETURN_IF_ERROR(Need(8));
  uint64_t x = 0;
  for (int i = 0; i < 8; ++i) {
    x |= static_cast<uint64_t>(static_cast<uint8_t>(s_[off_ + i])) << (8 * i);
  }
  off_ += 8;
  *v = x;
  return Status::OK();
}

Status WireReader::F64(double* v) {
  uint64_t bits;
  HD_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(v, &bits, sizeof bits);
  return Status::OK();
}

Status WireReader::Str(std::string* s) {
  uint32_t n;
  HD_RETURN_IF_ERROR(U32(&n));
  HD_RETURN_IF_ERROR(Need(n));
  s->assign(s_, off_, n);
  off_ += n;
  return Status::OK();
}

Status WireReader::Value(hd::Value* v) {
  uint8_t tag;
  HD_RETURN_IF_ERROR(U8(&tag));
  switch (tag) {
    case kTagNull:
      *v = hd::Value::Null();
      return Status::OK();
    case kTagI32: {
      uint32_t x;
      HD_RETURN_IF_ERROR(U32(&x));
      *v = hd::Value::Int32(static_cast<int32_t>(x));
      return Status::OK();
    }
    case kTagI64: {
      uint64_t x;
      HD_RETURN_IF_ERROR(U64(&x));
      *v = hd::Value::Int64(static_cast<int64_t>(x));
      return Status::OK();
    }
    case kTagF64: {
      double x;
      HD_RETURN_IF_ERROR(F64(&x));
      *v = hd::Value::Double(x);
      return Status::OK();
    }
    case kTagStr: {
      std::string s;
      HD_RETURN_IF_ERROR(Str(&s));
      *v = hd::Value::String(std::move(s));
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("unknown value tag " +
                                     std::to_string(tag));
  }
}

// ---- Typed payloads ----------------------------------------------------

std::string EncodeHello(const HelloMsg& m) {
  WireWriter w;
  w.Str(m.version);
  w.Str(m.client_name);
  return w.Take();
}

Status DecodeHello(const std::string& p, HelloMsg* m) {
  WireReader r(p);
  HD_RETURN_IF_ERROR(r.Str(&m->version));
  HD_RETURN_IF_ERROR(r.Str(&m->client_name));
  return Status::OK();
}

std::string EncodeHelloOk(const HelloOkMsg& m) {
  WireWriter w;
  w.Str(m.server_version);
  w.U64(m.session_id);
  return w.Take();
}

Status DecodeHelloOk(const std::string& p, HelloOkMsg* m) {
  WireReader r(p);
  HD_RETURN_IF_ERROR(r.Str(&m->server_version));
  HD_RETURN_IF_ERROR(r.U64(&m->session_id));
  return Status::OK();
}

std::string EncodeQuery(const QueryMsg& m) {
  WireWriter w;
  w.Str(m.sql);
  w.U64(m.trace_id);
  return w.Take();
}

Status DecodeQuery(const std::string& p, QueryMsg* m) {
  WireReader r(p);
  HD_RETURN_IF_ERROR(r.Str(&m->sql));
  // Optional trailing trace id (§2.3): absent from pre-trace clients,
  // decoded as 0 ("server, assign one"). Anything else trailing is still
  // a decode error — only this field is spec-blessed as optional.
  m->trace_id = 0;
  if (!r.AtEnd()) {
    HD_RETURN_IF_ERROR(r.U64(&m->trace_id));
    if (!r.AtEnd()) return Status::InvalidArgument("trailing bytes in Query");
  }
  return Status::OK();
}

std::string EncodeResultHeader(const ResultHeaderMsg& m) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(m.columns.size()));
  for (const auto& [name, type] : m.columns) {
    w.Str(name);
    w.U8(type);
  }
  return w.Take();
}

Status DecodeResultHeader(const std::string& p, ResultHeaderMsg* m) {
  WireReader r(p);
  uint32_t n;
  HD_RETURN_IF_ERROR(r.U32(&n));
  m->columns.clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint8_t type;
    HD_RETURN_IF_ERROR(r.Str(&name));
    HD_RETURN_IF_ERROR(r.U8(&type));
    m->columns.emplace_back(std::move(name), type);
  }
  return Status::OK();
}

std::string EncodeRowBatch(const RowBatchMsg& m) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(m.rows.size()));
  w.U8(m.last ? 1 : 0);
  for (const Row& row : m.rows) {
    w.U32(static_cast<uint32_t>(row.size()));
    for (const auto& v : row) w.Value(v);
  }
  return w.Take();
}

Status DecodeRowBatch(const std::string& p, RowBatchMsg* m) {
  WireReader r(p);
  uint32_t nrows;
  uint8_t last;
  HD_RETURN_IF_ERROR(r.U32(&nrows));
  HD_RETURN_IF_ERROR(r.U8(&last));
  m->last = last != 0;
  m->rows.clear();
  for (uint32_t i = 0; i < nrows; ++i) {
    uint32_t ncols;
    HD_RETURN_IF_ERROR(r.U32(&ncols));
    // A row cannot have more values than payload bytes left; reject
    // absurd counts before reserving (fuzzed payloads, §1.3).
    if (ncols > r.remaining()) return Truncated();
    Row row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      hd::Value v;
      HD_RETURN_IF_ERROR(r.Value(&v));
      row.push_back(std::move(v));
    }
    m->rows.push_back(std::move(row));
  }
  return Status::OK();
}

std::string EncodeResultDone(const ResultDoneMsg& m) {
  WireWriter w;
  w.U64(m.row_count);
  w.U64(m.affected_rows);
  w.F64(m.exec_ms);
  w.Str(m.info);
  w.U64(m.trace_id);
  return w.Take();
}

Status DecodeResultDone(const std::string& p, ResultDoneMsg* m) {
  WireReader r(p);
  HD_RETURN_IF_ERROR(r.U64(&m->row_count));
  HD_RETURN_IF_ERROR(r.U64(&m->affected_rows));
  HD_RETURN_IF_ERROR(r.F64(&m->exec_ms));
  HD_RETURN_IF_ERROR(r.Str(&m->info));
  // Optional trailing trace id (§2.6): absent from pre-trace servers.
  m->trace_id = 0;
  if (!r.AtEnd()) {
    HD_RETURN_IF_ERROR(r.U64(&m->trace_id));
    if (!r.AtEnd()) {
      return Status::InvalidArgument("trailing bytes in ResultDone");
    }
  }
  return Status::OK();
}

std::string EncodeError(const ErrorMsg& m) {
  WireWriter w;
  w.U8(WireCode(m.code));
  w.Str(m.message);
  return w.Take();
}

Status DecodeError(const std::string& p, ErrorMsg* m) {
  WireReader r(p);
  uint8_t code;
  HD_RETURN_IF_ERROR(r.U8(&code));
  m->code = CodeFromWire(code);
  HD_RETURN_IF_ERROR(r.Str(&m->message));
  return Status::OK();
}

std::string EncodeStatsReq(const StatsReqMsg& m) {
  WireWriter w;
  w.U8(m.format);
  return w.Take();
}

Status DecodeStatsReq(const std::string& p, StatsReqMsg* m) {
  WireReader r(p);
  return r.U8(&m->format);
}

std::string EncodeStatsResult(const std::string& blob) {
  WireWriter w;
  w.Str(blob);
  return w.Take();
}

Status DecodeStatsResult(const std::string& p, std::string* blob) {
  WireReader r(p);
  return r.Str(blob);
}

std::string EncodeInfo(const InfoMsg& m) {
  WireWriter w;
  w.Str(m.text);
  return w.Take();
}

Status DecodeInfo(const std::string& p, InfoMsg* m) {
  WireReader r(p);
  return r.Str(&m->text);
}

// ---- Socket framing ----------------------------------------------------

Status WriteFrame(int fd, MsgType type, const std::string& payload,
                  uint64_t* wire_bytes) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(payload.size() + 1));
  w.U8(static_cast<uint8_t>(type));
  std::string head = w.Take();
  HD_RETURN_IF_ERROR(SendAll(fd, head.data(), head.size()));
  HD_RETURN_IF_ERROR(SendAll(fd, payload.data(), payload.size()));
  if (wire_bytes != nullptr) *wire_bytes = head.size() + payload.size();
  return Status::OK();
}

Status ReadFrame(int fd, Frame* out, uint32_t max_frame,
                 uint64_t* wire_bytes) {
  char lenbuf[4];
  size_t got = 0;
  HD_RETURN_IF_ERROR(RecvAll(fd, lenbuf, sizeof lenbuf, &got));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(lenbuf[i])) << (8 * i);
  }
  if (len == 0 || len > max_frame) {
    return Status::InvalidArgument("frame length " + std::to_string(len) +
                                   " outside (0, " + std::to_string(max_frame) +
                                   "]");
  }
  std::string body(len, '\0');
  HD_RETURN_IF_ERROR(RecvAll(fd, body.data(), len, &got));
  out->type = static_cast<MsgType>(static_cast<uint8_t>(body[0]));
  out->payload.assign(body, 1, len - 1);
  if (wire_bytes != nullptr) *wire_bytes = 4u + len;
  return Status::OK();
}

}  // namespace hd
