// hd_server: the TCP socket/session layer over the engine (ROADMAP item
// 1's second half; session lifecycle: docs/PROTOCOL.md §3, threading
// model: DESIGN.md "Server & sessions").
//
// One accept thread hands each connection to one of `workers` session
// workers, round-robin. Each worker multiplexes its sessions with
// poll(): when a session's socket turns readable it reads ONE frame and
// handles it to completion (queries execute inline on the worker —
// intra-query parallelism comes from the engine's morsel pool, and
// cross-session reads of the same columnstore converge in the shared
// ScanScheduler pass exactly as the in-process shell's --shared-scans
// does). Fairness across the sessions of one worker is therefore at
// frame granularity.
//
// Shutdown ordering: Stop() closes the listener, joins the accept
// thread, then asks every worker to drain; workers destroy their
// sessions (each destructor aborts any open transaction and closes the
// socket) before joining. The process-wide TelemetrySampler, if any,
// outlives all of this safely — it reads only the leaked registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/database.h"
#include "exec/admission.h"
#include "exec/scan_scheduler.h"
#include "server/session.h"
#include "txn/transaction.h"

namespace hd {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Session workers. Each multiplexes many connections; total engine
  /// parallelism is still governed by the morsel pool + admission gate.
  int workers = 4;
  /// Accepted connections beyond this are refused with a typed Error
  /// frame before the handshake.
  int max_sessions = 256;
  /// Route non-transactional CSI SELECTs through a process-wide shared
  /// ScanScheduler (the shell's --shared-scans).
  bool shared_scans = false;
  /// >0 installs an AdmissionController with this many slots (the
  /// shell's --admission n); shed/timeout surfaces to clients as an
  /// Error frame carrying kResourceExhausted.
  int admission_slots = 0;
  /// Per-statement execution defaults handed to every session.
  int max_dop = 0;
  uint64_t memory_grant_bytes = 4ull << 30;
  /// recv() timeout per frame read; a client that stalls mid-frame
  /// longer than this is treated as a torn frame and disconnected.
  int read_timeout_ms = 10'000;
  uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Query store (obs/query_store.h): retained per-query records across
  /// all sessions. 0 disables capture entirely (`.queries` then answers
  /// kNotSupported). Capture is on by default — it is the observability
  /// layer the advisor feeds on, and its overhead is budgeted ≤ 2%
  /// (EXPERIMENTS.md "Capture overhead").
  size_t query_store_capacity = 1024;
  /// Slow-query threshold in ms (`--slow-query-ms`); < 0 disables the
  /// slow log.
  double slow_query_ms = -1;
  /// Append one hd-qlog/1 JSONL line per finalized statement
  /// (`--qlog`); empty disables live persistence.
  std::string qlog_path;
};

class Server {
 public:
  explicit Server(Database* db, ServerOptions opts = ServerOptions());
  ~Server();  // Stop() if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start accept/worker threads. Fails (typed) when the
  /// port is taken or the socket cannot be created.
  Status Start();

  /// Close the listener, drain and destroy every session, join all
  /// threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (after Start() with port 0).
  int port() const { return port_; }
  int sessions_active() const {
    return sessions_active_.load(std::memory_order_relaxed);
  }
  uint64_t connections_total() const {
    return connections_total_.load(std::memory_order_relaxed);
  }

  // Engine-side objects, exposed for tests and telemetry probes.
  TransactionManager* txns() { return &txns_; }
  ScanScheduler* scan_scheduler() { return scan_scheduler_.get(); }
  AdmissionController* admission() { return admission_.get(); }
  /// Server-owned workload capture; null when query_store_capacity == 0.
  QueryStore* query_store() { return query_store_.get(); }

 private:
  struct Worker;

  void AcceptLoop();
  void WorkerLoop(Worker* w);
  SessionEnv MakeEnv();

  Database* db_;
  ServerOptions opts_;
  TransactionManager txns_;
  std::unique_ptr<ScanScheduler> scan_scheduler_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<QueryStore> query_store_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<int> sessions_active_{0};
  std::atomic<uint64_t> connections_total_{0};
};

}  // namespace hd
