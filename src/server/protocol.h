// hd-proto/1: the length-prefixed binary wire protocol between sql_client
// and hd_server (normative spec: docs/PROTOCOL.md; this header implements
// it and the two must agree section-by-section).
//
// Frame (PROTOCOL.md §1):
//   u32 length   little-endian; number of bytes that FOLLOW the length
//                field, i.e. 1 (type byte) + payload size. Minimum 1.
//   u8  type     MsgType below (PROTOCOL.md §2).
//   ...payload   message-specific, built from the wire scalars in §1.2.
//
// A peer that receives a frame whose length field is 0 or exceeds the
// negotiated maximum must treat the connection as poisoned: the length
// cannot be trusted, so resynchronization is impossible (§1.3). The
// server answers with Error{kInvalidArgument} when the stream is still
// writable and closes the connection.
//
// Everything here is plain payload encode/decode plus blocking
// read/write-a-frame over a connected socket; no session state. The
// session layer (server/session.h) owns sequencing, the client library
// (server/client.h) owns the request/response pairing.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace hd {

/// Protocol version exchanged in Hello/HelloOk (PROTOCOL.md §5).
inline constexpr const char* kProtocolVersion = "hd-proto/1";

/// Default upper bound on `length` a peer will accept (§1.3). Large
/// result sets are paginated into RowBatch frames well under this.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Rows per RowBatch frame the server emits (§2.5). A decoder must not
/// rely on any particular batch size, only on the `last` flag.
inline constexpr uint32_t kRowsPerBatch = 1024;

/// Message types (PROTOCOL.md §2). Values are wire-stable: new types may
/// be appended, existing values never change meaning within hd-proto/1.
enum class MsgType : uint8_t {
  kHello = 1,         // c→s  version handshake (§2.1)
  kHelloOk = 2,       // s→c  handshake accept + session id (§2.2)
  kQuery = 3,         // c→s  one SQL statement or dot-command (§2.3)
  kResultHeader = 4,  // s→c  column names/types of a row stream (§2.4)
  kRowBatch = 5,      // s→c  a batch of rows; `last` flag ends it (§2.5)
  kResultDone = 6,    // s→c  statement summary, ends the exchange (§2.6)
  kError = 7,         // s→c  typed failure, ends the exchange (§2.7)
  kStatsReq = 8,      // c→s  telemetry snapshot request (§2.8)
  kStatsResult = 9,   // s→c  telemetry snapshot blob (§2.8)
  kClose = 10,        // c→s  orderly goodbye (§2.9)
  kCloseOk = 11,      // s→c  goodbye ack; server closes after (§2.9)
  kInfo = 12,         // s→c  out-of-band text (EXPLAIN output) (§2.10)
};

const char* MsgTypeName(MsgType t);

/// Status codes on the wire (§4): the u8 in an Error frame is the
/// numeric value of Code. Unknown values decode as kInternal.
uint8_t WireCode(Code c);
Code CodeFromWire(uint8_t v);

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Append-only payload builder for the §1.2 wire scalars (all integers
/// little-endian; strings are u32 length + bytes, no terminator).
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);
  void Str(const std::string& s);
  void Value(const hd::Value& v);

  const std::string& buf() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked payload reader. Every getter returns
/// kInvalidArgument("truncated payload") past the end — a malformed
/// payload must never read out of bounds (§1.3).
class WireReader {
 public:
  explicit WireReader(const std::string& s) : s_(s) {}

  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status F64(double* v);
  Status Str(std::string* s);
  Status Value(hd::Value* v);

  bool AtEnd() const { return off_ == s_.size(); }
  size_t remaining() const { return s_.size() - off_; }

 private:
  Status Need(size_t n);
  const std::string& s_;
  size_t off_ = 0;
};

// ---- Typed payloads (one struct per §2 message that carries fields) ----

struct HelloMsg {             // §2.1
  std::string version;        // must equal kProtocolVersion
  std::string client_name;    // informational (telemetry labels)
};

struct HelloOkMsg {           // §2.2
  std::string server_version;
  uint64_t session_id = 0;
};

struct QueryMsg {             // §2.3
  std::string sql;
  /// Optional trailing field (§2.3, §5 minor rev): client-chosen
  /// end-to-end trace id. 0 (or absent on the wire — old clients) means
  /// "unassigned"; the server then assigns one. Echoed in ResultDone.
  uint64_t trace_id = 0;
};

struct ResultHeaderMsg {      // §2.4
  /// Per output column: name + declared ValueType. A column whose type
  /// is only known per-row (aggregate outputs) declares kDynamicColType;
  /// the per-value tags in RowBatch are authoritative either way.
  static constexpr uint8_t kDynamicColType = 0xff;
  std::vector<std::pair<std::string, uint8_t>> columns;
};

struct RowBatchMsg {          // §2.5
  bool last = false;
  std::vector<Row> rows;
};

struct ResultDoneMsg {        // §2.6
  uint64_t row_count = 0;
  uint64_t affected_rows = 0;
  double exec_ms = 0;
  std::string info;           // plan_desc, txn state change, ...
  /// Optional trailing field (§2.6, §5 minor rev): the trace id the
  /// statement actually ran under (client-sent, or server-assigned when
  /// the Query frame carried 0/omitted it). 0 from pre-trace servers.
  uint64_t trace_id = 0;
};

struct ErrorMsg {             // §2.7
  Code code = Code::kInternal;
  std::string message;
};

struct StatsReqMsg {          // §2.8
  enum Format : uint8_t { kPrometheus = 0, kJson = 1 };
  uint8_t format = kPrometheus;
};

struct InfoMsg {              // §2.10
  std::string text;
};

std::string EncodeHello(const HelloMsg& m);
std::string EncodeHelloOk(const HelloOkMsg& m);
std::string EncodeQuery(const QueryMsg& m);
std::string EncodeResultHeader(const ResultHeaderMsg& m);
std::string EncodeRowBatch(const RowBatchMsg& m);
std::string EncodeResultDone(const ResultDoneMsg& m);
std::string EncodeError(const ErrorMsg& m);
std::string EncodeStatsReq(const StatsReqMsg& m);
std::string EncodeStatsResult(const std::string& blob);
std::string EncodeInfo(const InfoMsg& m);

Status DecodeHello(const std::string& p, HelloMsg* m);
Status DecodeHelloOk(const std::string& p, HelloOkMsg* m);
Status DecodeQuery(const std::string& p, QueryMsg* m);
Status DecodeResultHeader(const std::string& p, ResultHeaderMsg* m);
Status DecodeRowBatch(const std::string& p, RowBatchMsg* m);
Status DecodeResultDone(const std::string& p, ResultDoneMsg* m);
Status DecodeError(const std::string& p, ErrorMsg* m);
Status DecodeStatsReq(const std::string& p, StatsReqMsg* m);
Status DecodeStatsResult(const std::string& p, std::string* blob);
Status DecodeInfo(const std::string& p, InfoMsg* m);

// ---- Socket framing ----------------------------------------------------

/// Write one frame to a connected socket (blocking, MSG_NOSIGNAL; a
/// closed peer surfaces as kIoError, not SIGPIPE). On success
/// *wire_bytes (optional) is the total bytes put on the wire
/// (4 + 1 + payload).
Status WriteFrame(int fd, MsgType type, const std::string& payload,
                  uint64_t* wire_bytes = nullptr);

/// Read one frame (blocking until a full frame, EOF, or socket timeout).
/// EOF before any byte → kNotFound("connection closed") so callers can
/// tell an orderly hangup from a mid-frame truncation (kIoError). A
/// length of 0 or > max_frame → kInvalidArgument (§1.3: poisoned
/// stream). The session layer, not this framing layer, owns the
/// `server.read`/`server.write` failpoint seams — arming them must fault
/// only the server side, and both peers share these functions.
Status ReadFrame(int fd, Frame* out, uint32_t max_frame = kMaxFrameBytes,
                 uint64_t* wire_bytes = nullptr);

}  // namespace hd
