#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

#include "common/failpoint.h"
#include "common/telemetry.h"

namespace hd {

namespace {

// Listener/session telemetry (docs/OBSERVABILITY.md "Server" glossary).
struct ListenerStats {
  TCounter* connections =
      Telemetry::Instance().Counter("server.connections");
  TCounter* refused = Telemetry::Instance().Counter("server.refused");
  TCounter* accept_errors =
      Telemetry::Instance().Counter("server.accept_errors");
  TGauge* sessions_active =
      Telemetry::Instance().Gauge("server.sessions_active");
};

ListenerStats& LStats() {
  static ListenerStats s;
  return s;
}

void SetRecvTimeout(int fd, int ms) {
  if (ms <= 0) return;
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

}  // namespace

/// One session worker: a poll() loop over its sessions' sockets plus a
/// wake pipe the accept thread (and Stop) writes to.
struct Server::Worker {
  std::thread thread;
  int wake_pipe[2] = {-1, -1};  // [0] read end polled, [1] written to wake
  std::mutex mu;                // guards pending (handoff from accept)
  std::vector<std::unique_ptr<Session>> pending;
  std::vector<std::unique_ptr<Session>> sessions;  // worker-thread only

  void Wake() {
    const char b = 1;
    // A full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(wake_pipe[1], &b, 1);
  }
};

Server::Server(Database* db, ServerOptions opts) : db_(db), opts_(opts) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.shared_scans) {
    scan_scheduler_ = std::make_unique<ScanScheduler>();
  }
  if (opts_.admission_slots > 0) {
    AdmissionOptions ao;
    ao.max_concurrent = opts_.admission_slots;
    admission_ = std::make_unique<AdmissionController>(ao);
  }
  if (opts_.query_store_capacity > 0) {
    QueryStoreOptions qo;
    qo.capacity = opts_.query_store_capacity;
    qo.slow_query_ms = opts_.slow_query_ms;
    qo.qlog_path = opts_.qlog_path;
    query_store_ = std::make_unique<QueryStore>(qo);
  }
}

Server::~Server() { Stop(); }

SessionEnv Server::MakeEnv() {
  SessionEnv env;
  env.db = db_;
  env.txns = &txns_;
  env.scan_scheduler = scan_scheduler_.get();
  env.admission = admission_.get();
  env.query_store = query_store_.get();
  env.max_dop = opts_.max_dop;
  env.memory_grant_bytes = opts_.memory_grant_bytes;
  env.max_frame_bytes = opts_.max_frame_bytes;
  return env;
}

Status Server::Start() {
  if (running_.load()) return Status::InvalidArgument("server already running");
  // Durability, if the caller opened it on the database, routes every
  // session's COMMIT/ROLLBACK through the WAL.
  txns_.BindWal(db_->wal());
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host '" + opts_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    Status s = Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status s = Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  stop_.store(false);
  workers_.clear();
  for (int i = 0; i < opts_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    // The wake pipe's read end must be non-blocking: the drain loop in
    // WorkerLoop reads until empty.
    if (::pipe(w->wake_pipe) != 0 ||
        ::fcntl(w->wake_pipe[0], F_SETFL, O_NONBLOCK) != 0) {
      Status s = Status::IoError(std::string("pipe: ") + std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      workers_.push_back(std::move(w));
      for (auto& prev : workers_) {
        if (prev->wake_pipe[0] >= 0) ::close(prev->wake_pipe[0]);
        if (prev->wake_pipe[1] >= 0) ::close(prev->wake_pipe[1]);
      }
      workers_.clear();
      return s;
    }
    workers_.push_back(std::move(w));
  }
  running_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    Worker* wp = w.get();
    w->thread = std::thread([this, wp] { WorkerLoop(wp); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true);
  // Unblock accept(): shutdown + close the listener.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& w : workers_) {
    w->Wake();
    if (w->thread.joinable()) w->thread.join();
    ::close(w->wake_pipe[0]);
    ::close(w->wake_pipe[1]);
  }
  workers_.clear();
}

void Server::AcceptLoop() {
  size_t next_worker = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (stop_.load(std::memory_order_acquire)) break;
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      LStats().accept_errors->Add(1);
      continue;
    }
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    LStats().connections->Add(1);
    // Connection-level fault seam: an injected failure drops the freshly
    // accepted connection, as a listener hitting EMFILE or a half-open
    // TCP handshake would (docs/ROBUSTNESS.md).
    if (Status fp = EvalFailPoint("server.accept"); !fp.ok()) {
      LStats().accept_errors->Add(1);
      ::close(fd);
      continue;
    }
    if (sessions_active_.load(std::memory_order_relaxed) >=
        opts_.max_sessions) {
      LStats().refused->Add(1);
      (void)WriteFrame(fd, MsgType::kError,
                       EncodeError({Code::kResourceExhausted,
                                    "server at max_sessions"}));
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    SetRecvTimeout(fd, opts_.read_timeout_ms);
    auto session = std::make_unique<Session>(
        next_session_id_.fetch_add(1, std::memory_order_relaxed), fd,
        MakeEnv());
    sessions_active_.fetch_add(1, std::memory_order_relaxed);
    LStats().sessions_active->Add(1);
    Worker* w = workers_[next_worker % workers_.size()].get();
    ++next_worker;
    {
      std::lock_guard<std::mutex> g(w->mu);
      w->pending.push_back(std::move(session));
    }
    w->Wake();
  }
}

void Server::WorkerLoop(Worker* w) {
  auto retire = [&](size_t idx) {
    w->sessions.erase(w->sessions.begin() + static_cast<long>(idx));
    sessions_active_.fetch_sub(1, std::memory_order_relaxed);
    LStats().sessions_active->Add(-1);
  };
  while (true) {
    {
      std::lock_guard<std::mutex> g(w->mu);
      for (auto& s : w->pending) w->sessions.push_back(std::move(s));
      w->pending.clear();
    }
    if (stop_.load(std::memory_order_acquire)) break;

    std::vector<pollfd> pfds;
    pfds.reserve(w->sessions.size() + 1);
    pfds.push_back({w->wake_pipe[0], POLLIN, 0});
    for (const auto& s : w->sessions) {
      pfds.push_back({s->fd(), POLLIN, 0});
    }
    const int pr = ::poll(pfds.data(), pfds.size(), 200);
    if (pr <= 0) continue;
    if ((pfds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(w->wake_pipe[0], buf, sizeof buf) > 0) {
      }
    }
    // Walk backwards so retiring a session does not shift unvisited
    // indices (pfds[i + 1] pairs with sessions[i]).
    for (size_t i = w->sessions.size(); i-- > 0;) {
      const short ev = pfds[i + 1].revents;
      if (ev == 0) continue;
      if ((ev & (POLLIN | POLLHUP | POLLERR)) != 0) {
        // POLLHUP with queued data still delivers the data first; Pump
        // reads one frame and reports EOF/err via its Outcome.
        if (w->sessions[i]->Pump() == Session::Outcome::kClose) retire(i);
      }
    }
  }
  // Drain: session destructors abort open transactions (releasing their
  // locks) and close sockets.
  while (!w->sessions.empty()) retire(w->sessions.size() - 1);
  {
    std::lock_guard<std::mutex> g(w->mu);
    for (auto& s : w->pending) {
      w->sessions.push_back(std::move(s));
    }
    w->pending.clear();
  }
  while (!w->sessions.empty()) retire(w->sessions.size() - 1);
}

}  // namespace hd
