#include "server/session.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/failpoint.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "exec/admission.h"
#include "exec/explain.h"
#include "exec/scan_scheduler.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"

namespace hd {

namespace {

// server.* telemetry shared by all sessions (glossary:
// docs/OBSERVABILITY.md "Server" section).
struct ServerStats {
  TCounter* queries = Telemetry::Instance().Counter("server.queries");
  TCounter* errors = Telemetry::Instance().Counter("server.errors");
  TCounter* bytes_in = Telemetry::Instance().Counter("server.bytes_in");
  TCounter* bytes_out = Telemetry::Instance().Counter("server.bytes_out");
  TCounter* cache_hits =
      Telemetry::Instance().Counter("server.plan_cache_hits");
  THistogram* query_ns = Telemetry::Instance().Histogram("server.query_ns");
};

ServerStats& SStats() {
  static ServerStats s;
  return s;
}

/// Server-assigned trace ids for Query frames that carry none (old or
/// lazy clients, §2.3). Session id in the top bits keeps concurrent
/// sessions' assignments disjoint and recognizably grouped in the qlog.
uint64_t AssignTraceId(uint64_t session_id) {
  static std::atomic<uint64_t> n{0};
  return (session_id << 40) | (n.fetch_add(1, std::memory_order_relaxed) + 1);
}

/// Uppercased first word of a statement ("BEGIN", "SELECT", ...); *rest
/// (optional) receives everything after it, untrimmed.
std::string FirstWord(const std::string& sql, std::string* rest = nullptr) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  size_t j = i;
  while (j < sql.size() &&
         std::isalpha(static_cast<unsigned char>(sql[j]))) {
    ++j;
  }
  std::string w = sql.substr(i, j - i);
  for (char& c : w) c = static_cast<char>(std::toupper(c));
  if (rest != nullptr) *rest = sql.substr(j);
  return w;
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

/// Trim ASCII whitespace both ends.
std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Output column names/types for a query's result rows: group-by columns
/// then aggregate labels for aggregating queries, the projected columns
/// (or all base columns for SELECT *) otherwise. Best effort — the
/// per-value tags in RowBatch are authoritative (§2.4); a mismatch with
/// the actual row width is padded/truncated against the first row.
ResultHeaderMsg BuildHeader(const Database& db, const Query& q,
                            const QueryResult& r) {
  ResultHeaderMsg h;
  auto table_of = [&](int t) -> const Table* {
    const std::string& name =
        t == 0 ? q.base.table : q.joins[t - 1].dim.table;
    return db.GetTable(name);
  };
  auto add_col = [&](const ColRef& ref) {
    const Table* t = table_of(ref.table);
    if (t != nullptr && ref.col < t->schema().num_columns()) {
      const Column& c = t->schema().column(ref.col);
      h.columns.emplace_back(c.name, static_cast<uint8_t>(c.type));
    } else {
      h.columns.emplace_back("col" + std::to_string(ref.col),
                             ResultHeaderMsg::kDynamicColType);
    }
  };
  if (!q.aggs.empty()) {
    for (const ColRef& g : q.group_by) add_col(g);
    for (const AggSpec& a : q.aggs) {
      h.columns.emplace_back(a.label, ResultHeaderMsg::kDynamicColType);
    }
  } else if (!q.select_cols.empty()) {
    for (const ColRef& c : q.select_cols) add_col(c);
  } else if (const Table* t = table_of(0)) {
    for (const Column& c : t->schema().columns()) {
      h.columns.emplace_back(c.name, static_cast<uint8_t>(c.type));
    }
  }
  const size_t width = r.rows.empty() ? h.columns.size() : r.rows[0].size();
  while (h.columns.size() < width) {
    h.columns.emplace_back("col" + std::to_string(h.columns.size()),
                           ResultHeaderMsg::kDynamicColType);
  }
  if (h.columns.size() > width && !r.rows.empty()) h.columns.resize(width);
  return h;
}

}  // namespace

Session::Session(uint64_t id, int fd, SessionEnv env)
    : id_(id), fd_(fd), env_(env) {}

Session::~Session() {
  if (txn_ != nullptr && env_.txns != nullptr) {
    env_.txns->Abort(txn_.get());
    txn_.reset();
  }
  if (fd_ >= 0) ::close(fd_);
}

Status Session::Send(MsgType t, const std::string& payload) {
  // Connection-fault seam (docs/ROBUSTNESS.md): an injected failure here
  // behaves like a peer that vanished mid-write. Lives at the session
  // layer, not in WriteFrame, so arming it never faults client-side
  // writers in the same process.
  HD_FAILPOINT_RETURN("server.write");
  uint64_t n = 0;
  Status s = WriteFrame(fd_, t, payload, &n);
  SStats().bytes_out->Add(n);
  return s;
}

Status Session::SendError(const Status& s) {
  SStats().errors->Add(1);
  return Send(MsgType::kError, EncodeError({s.code(), s.message()}));
}

Session::Outcome Session::Pump() {
  Frame f;
  uint64_t n = 0;
  // Connection-fault seam (docs/ROBUSTNESS.md): injected read failures
  // take the same torn-frame path as a real one below. Server-side only
  // by construction — see the note in Send().
  Status s = EvalFailPoint("server.read");
  if (s.ok()) s = ReadFrame(fd_, &f, env_.max_frame_bytes, &n);
  SStats().bytes_in->Add(n);
  if (s.IsNotFound()) return Outcome::kClose;  // orderly EOF
  if (!s.ok()) {
    // Torn/oversized/injected-fault frame: tell the client (when the
    // stream is still writable) and drop the connection — after a bad
    // length prefix the stream cannot be re-synchronized (§1.3).
    (void)SendError(s);
    return Outcome::kClose;
  }
  return HandleFrame(f);
}

Session::Outcome Session::HandleFrame(const Frame& f) {
  // §3.1: the first frame must be Hello; anything else is a protocol
  // violation that ends the connection.
  if (!hello_done_) {
    if (f.type != MsgType::kHello) {
      (void)SendError(Status::InvalidArgument(
          std::string("expected Hello, got ") + MsgTypeName(f.type)));
      return Outcome::kClose;
    }
    HelloMsg hello;
    Status s = DecodeHello(f.payload, &hello);
    if (s.ok() && hello.version != kProtocolVersion) {
      s = Status::InvalidArgument("unsupported protocol version '" +
                                  hello.version + "', server speaks " +
                                  kProtocolVersion);
    }
    if (!s.ok()) {
      (void)SendError(s);
      return Outcome::kClose;
    }
    hello_done_ = true;
    if (!Send(MsgType::kHelloOk,
              EncodeHelloOk({kProtocolVersion, id_}))
             .ok()) {
      return Outcome::kClose;
    }
    return Outcome::kKeep;
  }

  switch (f.type) {
    case MsgType::kQuery: {
      QueryMsg q;
      Status s = DecodeQuery(f.payload, &q);
      if (!s.ok()) {
        (void)SendError(s);
        return Outcome::kClose;
      }
      return HandleQuery(q.sql, q.trace_id);
    }
    case MsgType::kStatsReq: {
      StatsReqMsg req;
      Status s = DecodeStatsReq(f.payload, &req);
      if (!s.ok()) {
        (void)SendError(s);
        return Outcome::kClose;
      }
      return HandleStats(req);
    }
    case MsgType::kClose:
      (void)Send(MsgType::kCloseOk, "");
      return Outcome::kClose;
    default:
      // §2: clients only originate Hello/Query/StatsReq/Close.
      (void)SendError(Status::InvalidArgument(
          std::string("unexpected client frame ") + MsgTypeName(f.type)));
      return Outcome::kClose;
  }
}

Session::Outcome Session::HandleStats(const StatsReqMsg& req) {
  TelemetrySnapshot snap = Telemetry::Instance().Snapshot();
  std::string blob;
  switch (req.format) {
    case StatsReqMsg::kPrometheus:
      blob = snap.ToPrometheus();
      break;
    case StatsReqMsg::kJson:
      blob = snap.ToJson();
      break;
    default:
      if (!SendError(Status::InvalidArgument(
               "unknown stats format " + std::to_string(req.format)))
               .ok()) {
        return Outcome::kClose;
      }
      return Outcome::kKeep;
  }
  return Send(MsgType::kStatsResult, EncodeStatsResult(blob)).ok()
             ? Outcome::kKeep
             : Outcome::kClose;
}

bool Session::HandleTxnStatement(const std::string& sql, Outcome* out) {
  std::string tail;
  const std::string word = FirstWord(sql, &tail);
  if (word != "BEGIN" && word != "COMMIT" && word != "ROLLBACK" &&
      word != "ABORT") {
    return false;
  }
  auto done = [&](const std::string& info) {
    ResultDoneMsg d;
    d.info = info;
    *out = Send(MsgType::kResultDone, EncodeResultDone(d)).ok()
               ? Outcome::kKeep
               : Outcome::kClose;
  };
  auto fail = [&](const Status& s) {
    *out = SendError(s).ok() ? Outcome::kKeep : Outcome::kClose;
  };
  if (env_.txns == nullptr) {
    fail(Status::NotSupported("server has no transaction manager"));
    return true;
  }
  if (word == "BEGIN") {
    if (txn_ != nullptr) {
      fail(Status::InvalidArgument("transaction already open (§3.3)"));
      return true;
    }
    const std::string rest = Upper(Trim(tail));
    IsolationLevel iso = IsolationLevel::kReadCommitted;
    if (rest == "SNAPSHOT") {
      iso = IsolationLevel::kSnapshot;
    } else if (rest == "SERIALIZABLE") {
      iso = IsolationLevel::kSerializable;
    } else if (!rest.empty()) {
      fail(Status::InvalidArgument("BEGIN [SNAPSHOT|SERIALIZABLE], got '" +
                                   rest + "'"));
      return true;
    }
    txn_ = env_.txns->Begin(iso);
    done(std::string("BEGIN ") + IsolationLevelName(iso));
    return true;
  }
  if (txn_ == nullptr) {
    fail(Status::InvalidArgument("no open transaction (§3.3)"));
    return true;
  }
  if (word == "COMMIT") {
    // A failed commit means durability is unknown (fsync error): surface
    // it as a typed error; the transaction is over either way (§3.3).
    Status cs = env_.txns->Commit(txn_.get());
    txn_.reset();
    if (!cs.ok()) {
      fail(cs);
      return true;
    }
    done("COMMIT");
  } else {  // ROLLBACK / ABORT
    env_.txns->Abort(txn_.get());
    txn_.reset();
    done("ROLLBACK");
  }
  return true;
}

Status Session::PlanStatement(const std::string& sql, const CachedPlan** out) {
  auto it = cache_.find(sql);
  if (it != cache_.end()) {
    SStats().cache_hits->Add(1);
    *out = &it->second;
    return Status::OK();
  }
  HD_ASSIGN_OR_RETURN(Query q, ParseSql(*env_.db, sql));
  Optimizer opt(env_.db);
  PlanOptions popts;
  popts.max_dop = env_.max_dop;
  popts.memory_grant_bytes = env_.memory_grant_bytes;
  HD_ASSIGN_OR_RETURN(
      Optimizer::PlanResult pr,
      opt.Plan(q, Configuration::FromCatalog(*env_.db), popts));
  if (cache_.size() >= env_.plan_cache_capacity && !cache_order_.empty()) {
    cache_.erase(cache_order_.front());
    cache_order_.pop_front();
  }
  CachedPlan entry{std::move(q), std::move(pr.plan), NormalizeSql(sql), 0};
  entry.fingerprint = FingerprintText(entry.norm);
  auto [pos, inserted] = cache_.emplace(sql, std::move(entry));
  if (inserted) cache_order_.push_back(sql);
  *out = &pos->second;
  return Status::OK();
}

bool Session::HandleQueriesCommand(const std::string& sql, Outcome* out) {
  const std::string t = Trim(sql);
  if (t.rfind(".queries", 0) != 0) return false;
  auto fail = [&](const Status& s) {
    *out = SendError(s).ok() ? Outcome::kKeep : Outcome::kClose;
  };
  if (env_.query_store == nullptr) {
    fail(Status::NotSupported(
        "query store disabled (--query-store-capacity 0)"));
    return true;
  }
  const std::string arg = Upper(Trim(t.substr(8)));
  const QueryStore& qs = *env_.query_store;
  std::string text;
  if (arg.empty() || arg == "TOP") {
    text = qs.RenderTop();
  } else if (arg == "SLOW") {
    text = qs.RenderSlow();
  } else if (arg == "FINGERPRINTS" || arg == "FP") {
    text = qs.RenderFingerprints();
  } else {
    fail(Status::InvalidArgument("usage: .queries [top|slow|fingerprints]"));
    return true;
  }
  if (!Send(MsgType::kInfo, EncodeInfo({text})).ok()) {
    *out = Outcome::kClose;
    return true;
  }
  ResultDoneMsg d;
  d.info = ".queries";
  *out = Send(MsgType::kResultDone, EncodeResultDone(d)).ok()
             ? Outcome::kKeep
             : Outcome::kClose;
  return true;
}

Session::Outcome Session::HandleQuery(const std::string& sql,
                                      uint64_t trace_id) {
  SStats().queries->Add(1);
  if (trace_id == 0) trace_id = AssignTraceId(id_);
  Timer wall;
  const bool tracing = Trace::Enabled();
  const uint64_t tr0 = tracing ? Trace::Global().NowUs() : 0;
  auto record = [&] {
    SStats().query_ns->Record(static_cast<int64_t>(wall.ElapsedMs() * 1e6));
    if (tracing) {
      // Per-session server row (pid 1, tid = session id): one span per
      // statement, keyed by the same trace id the executor stamps on
      // this statement's admission/morsel/WAL spans — the wire-level
      // lane above the worker lanes that served it.
      Trace::Global().Record("Query", static_cast<int>(id_), tr0,
                             Trace::Global().NowUs() - tr0, 0, trace_id,
                             "session", 1);
    }
  };

  Outcome out = Outcome::kKeep;
  if (HandleQueriesCommand(sql, &out)) {
    record();
    return out;
  }
  if (HandleTxnStatement(sql, &out)) {
    record();
    return out;
  }

  const CachedPlan* cp = nullptr;
  Status s = PlanStatement(sql, &cp);
  if (!s.ok()) {
    record();
    // Parse/plan failures are captured too: NormalizeSql tokenizes even
    // unparseable text, so mistyped statement *classes* show up in the
    // fingerprint table instead of vanishing.
    if (env_.query_store != nullptr) {
      QueryRecord rec;
      rec.session_id = id_;
      rec.trace_id = trace_id;
      rec.sql = sql;
      rec.norm = NormalizeSql(sql);
      rec.fingerprint = FingerprintText(rec.norm);
      rec.kind = "invalid";
      rec.code = s.code();
      rec.error = s.message();
      rec.latency_ms = wall.ElapsedMs();
      env_.query_store->Record(std::move(rec));
    }
    return SendError(s).ok() ? Outcome::kKeep : Outcome::kClose;
  }
  const Query& q = cp->query;

  if (q.explain == Query::ExplainMode::kPlan) {
    record();
    if (!Send(MsgType::kInfo, EncodeInfo({ExplainPlan(q, cp->plan)})).ok()) {
      return Outcome::kClose;
    }
    ResultDoneMsg d;
    d.info = "EXPLAIN";
    d.trace_id = trace_id;
    return Send(MsgType::kResultDone, EncodeResultDone(d)).ok()
               ? Outcome::kKeep
               : Outcome::kClose;
  }

  ExecContext ctx;
  ctx.db = env_.db;
  ctx.max_dop = env_.max_dop;
  ctx.memory_grant_bytes = env_.memory_grant_bytes;
  ctx.scan_scheduler = env_.scan_scheduler;
  ctx.admission = env_.admission;
  ctx.query_store = env_.query_store;
  ctx.capture.sql = sql;
  ctx.capture.norm = cp->norm;
  ctx.capture.fingerprint = cp->fingerprint;
  ctx.capture.session_id = id_;
  ctx.capture.trace_id = trace_id;
  if (txn_ != nullptr) {
    ctx.txns = env_.txns;
    ctx.txn = txn_.get();
  }
  Executor ex(ctx);
  QueryResult r = ex.Execute(q, cp->plan);
  record();
  if (!r.ok()) {
    // Typed failure over the wire: admission shed arrives here as
    // kResourceExhausted (§4) — the client sees exactly the engine code.
    return SendError(r.status).ok() ? Outcome::kKeep : Outcome::kClose;
  }
  return SendResult(q, cp->plan, r, wall.ElapsedMs(), trace_id).ok()
             ? Outcome::kKeep
             : Outcome::kClose;
}

Status Session::SendResult(const Query& q, const PhysicalPlan& plan,
                           const QueryResult& r, double wall_ms,
                           uint64_t trace_id) {
  if (q.explain == Query::ExplainMode::kAnalyze) {
    HD_RETURN_IF_ERROR(
        Send(MsgType::kInfo, EncodeInfo({ExplainAnalyze(q, plan, r)})));
  } else if (q.kind == Query::Kind::kSelect) {
    HD_RETURN_IF_ERROR(
        Send(MsgType::kResultHeader,
             EncodeResultHeader(BuildHeader(*env_.db, q, r))));
    // §2.5: rows stream in batches; exactly one batch carries last=1,
    // including the zero-row result (one empty final batch).
    size_t i = 0;
    do {
      RowBatchMsg b;
      const size_t n = std::min<size_t>(kRowsPerBatch, r.rows.size() - i);
      b.rows.assign(r.rows.begin() + i, r.rows.begin() + i + n);
      i += n;
      b.last = i == r.rows.size();
      HD_RETURN_IF_ERROR(Send(MsgType::kRowBatch, EncodeRowBatch(b)));
    } while (i < r.rows.size());
  }
  ResultDoneMsg d;
  d.row_count = r.row_count;
  d.affected_rows = r.affected_rows;
  d.exec_ms = wall_ms;
  d.info = r.plan_desc;
  d.trace_id = trace_id;
  return Send(MsgType::kResultDone, EncodeResultDone(d));
}

}  // namespace hd
