#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hd {

Status Client::Connect(const std::string& host, int port,
                       const std::string& client_name) {
  if (fd_ >= 0) return Status::InvalidArgument("already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Abort();
    return Status::InvalidArgument("bad host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status s = Status::IoError(std::string("connect: ") +
                               std::strerror(errno));
    Abort();
    return s;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  Status s = WriteFrame(fd_, MsgType::kHello,
                        EncodeHello({kProtocolVersion, client_name}));
  Frame f;
  if (!s.ok()) {
    // A server refusing pre-handshake (max_sessions, §3.1) sends Error
    // and closes; our Hello write may die on the closed socket first
    // (EPIPE) while the typed refusal still sits in the receive buffer.
    // Prefer that refusal over the raw write error when it is readable.
    if (ReadFrame(fd_, &f).ok() && f.type == MsgType::kError) s = Status::OK();
  } else {
    s = ReadFrame(fd_, &f);
  }
  if (s.ok() && f.type == MsgType::kError) {
    ErrorMsg e;
    s = DecodeError(f.payload, &e).ok()
            ? Status(e.code, e.message)
            : Status::Internal("undecodable Error frame");
  } else if (s.ok() && f.type != MsgType::kHelloOk) {
    s = Status::InvalidArgument(std::string("expected HelloOk, got ") +
                                MsgTypeName(f.type));
  }
  if (s.ok()) {
    HelloOkMsg ok;
    s = DecodeHelloOk(f.payload, &ok);
    if (s.ok()) session_id_ = ok.session_id;
  }
  if (!s.ok()) Abort();
  return s;
}

Result<RemoteResult> Client::Query(const std::string& sql,
                                   uint64_t trace_id) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  if (trace_id == 0) {
    // Client-generated trace id (§2.3): high bit marks client origin,
    // session id above a per-connection counter — unique per statement
    // without coordination, and visibly grouped by session in the qlog.
    trace_id =
        0x8000000000000000ull | (session_id_ << 40) | ++next_trace_seq_;
  }
  HD_RETURN_IF_ERROR(
      WriteFrame(fd_, MsgType::kQuery, EncodeQuery({sql, trace_id})));
  RemoteResult out;
  // §3.2: consume frames until the exchange terminator (ResultDone or
  // Error). Header/batches/info may precede it in any valid stream.
  while (true) {
    Frame f;
    HD_RETURN_IF_ERROR(ReadFrame(fd_, &f));
    switch (f.type) {
      case MsgType::kResultHeader: {
        ResultHeaderMsg h;
        HD_RETURN_IF_ERROR(DecodeResultHeader(f.payload, &h));
        out.columns.clear();
        out.column_types.clear();
        for (auto& [name, type] : h.columns) {
          out.columns.push_back(std::move(name));
          out.column_types.push_back(type);
        }
        break;
      }
      case MsgType::kRowBatch: {
        RowBatchMsg b;
        HD_RETURN_IF_ERROR(DecodeRowBatch(f.payload, &b));
        for (auto& r : b.rows) out.rows.push_back(std::move(r));
        break;
      }
      case MsgType::kInfo: {
        InfoMsg info;
        HD_RETURN_IF_ERROR(DecodeInfo(f.payload, &info));
        if (!out.info.empty()) out.info += "\n";
        out.info += info.text;
        break;
      }
      case MsgType::kResultDone: {
        ResultDoneMsg d;
        HD_RETURN_IF_ERROR(DecodeResultDone(f.payload, &d));
        out.row_count = d.row_count;
        out.affected_rows = d.affected_rows;
        out.exec_ms = d.exec_ms;
        out.trace_id = d.trace_id;
        if (!d.info.empty()) {
          if (!out.info.empty()) out.info += "\n";
          out.info += d.info;
        }
        return out;
      }
      case MsgType::kError: {
        ErrorMsg e;
        HD_RETURN_IF_ERROR(DecodeError(f.payload, &e));
        return Status(e.code, e.message);
      }
      default:
        return Status::InvalidArgument(
            std::string("unexpected server frame ") + MsgTypeName(f.type));
    }
  }
}

Result<std::string> Client::Stats(StatsReqMsg::Format format) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  StatsReqMsg req;
  req.format = format;
  HD_RETURN_IF_ERROR(WriteFrame(fd_, MsgType::kStatsReq, EncodeStatsReq(req)));
  Frame f;
  HD_RETURN_IF_ERROR(ReadFrame(fd_, &f));
  if (f.type == MsgType::kError) {
    ErrorMsg e;
    HD_RETURN_IF_ERROR(DecodeError(f.payload, &e));
    return Status(e.code, e.message);
  }
  if (f.type != MsgType::kStatsResult) {
    return Status::InvalidArgument(std::string("expected StatsResult, got ") +
                                   MsgTypeName(f.type));
  }
  std::string blob;
  HD_RETURN_IF_ERROR(DecodeStatsResult(f.payload, &blob));
  return blob;
}

Status Client::Close() {
  if (fd_ < 0) return Status::OK();
  Status s = WriteFrame(fd_, MsgType::kClose, "");
  if (s.ok()) {
    Frame f;
    s = ReadFrame(fd_, &f);
    if (s.ok() && f.type != MsgType::kCloseOk) {
      s = Status::InvalidArgument(std::string("expected CloseOk, got ") +
                                  MsgTypeName(f.type));
    }
  }
  Abort();
  return s;
}

void Client::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace hd
