// hd_server: the engine as a network service — the promotion of
// examples/sql_shell.cpp to a real multi-client SQL server (ROADMAP item
// 1). Clients speak hd-proto/1 (docs/PROTOCOL.md); examples/sql_client
// is the interactive CLI.
//
//   terminal 1:  ./build/src/server/hd_server --port 5433 --shared-scans
//   terminal 2:  ./build/examples/sql_client --port 5433
//
// The server preloads the same 400k-row 'sales' demo table the shell
// did (clustered B+ tree(region, day) + secondary columnstore), serves
// until SIGINT/SIGTERM, then shuts down cleanly: sessions drained,
// transactions aborted, telemetry sampler flushed — exit code 0.
//
// Flags:
//   --host <ip>          listen address (default 127.0.0.1)
//   --port <n>           TCP port (default 5433; 0 = ephemeral, printed)
//   --workers <n>        session worker threads (default 4)
//   --max-sessions <n>   connection cap (default 256)
//   --dop <n>            per-statement DOP cap (default: hardware)
//   --shared-scans       cooperative shared scans for CSI SELECTs
//   --admission <n>      admission gate with n concurrent slots
//   --stats-json <file>  background hd-stats/1 JSONL sampler
//   --stats-interval <ms>  sampler tick (default 1000)
//   --stats-prom <file>  final Prometheus snapshot on exit
//   --data-dir <path>    durable root: WAL + checkpoints live here. On
//                        startup the server recovers whatever the
//                        directory holds (kill -9 included) and only
//                        loads the demo table into a fresh directory.
//   --durability <m>     off | commit | group (default group when
//                        --data-dir is given): fsync per commit vs one
//                        batched fsync per group-commit window.
//   --query-store-capacity <n>  retained query-store records (default
//                        1024; 0 disables capture and `.queries`)
//   --slow-query-ms <ms> slow-query log threshold (default: disabled)
//   --qlog <file>        append hd-qlog/1 JSONL, one line per statement
//                        (the advisor's --workload-from-capture input)
//   --trace <file>       chrome://tracing export written at shutdown:
//                        per-session query rows + admission/morsel/WAL
//                        spans, all keyed by trace id (hd-trace/2)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/telemetry.h"
#include "common/trace.h"
#include "server/server.h"

using namespace hd;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

/// The shell's demo schema: 400k-row sales with a hybrid design.
Status LoadDemo(Database* db) {
  auto sales = db->CreateTable(
      "sales", Schema({{"region", ValueType::kString, 8},
                       {"day", ValueType::kInt32, 0},
                       {"units", ValueType::kInt32, 0},
                       {"revenue", ValueType::kDouble, 0}}));
  if (!sales.ok()) return sales.status();
  static const char* kRegions[] = {"east", "north", "south", "west"};
  std::vector<Row> rows;
  rows.reserve(400000);
  for (int i = 0; i < 400000; ++i) {
    rows.push_back({Value::String(kRegions[i % 4]), Value::Int32(i % 365),
                    Value::Int32(1 + i % 9), Value::Double(5.0 + i % 200)});
  }
  sales.value()->BulkLoad(rows);
  HD_RETURN_IF_ERROR(sales.value()->SetPrimary(PrimaryKind::kBTree, {0, 1}));
  HD_RETURN_IF_ERROR(sales.value()->CreateSecondaryColumnStore("csi_sales"));
  sales.value()->Analyze();
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions opts;
  opts.port = 5433;
  std::string stats_path, prom_path, data_dir, trace_path;
  DurabilityMode durability = DurabilityMode::kOff;
  bool durability_set = false;
  int stats_interval_ms = 1000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      opts.host = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      opts.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      opts.workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-sessions") == 0 && i + 1 < argc) {
      opts.max_sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dop") == 0 && i + 1 < argc) {
      opts.max_dop = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shared-scans") == 0) {
      opts.shared_scans = true;
    } else if (std::strcmp(argv[i], "--admission") == 0 && i + 1 < argc) {
      opts.admission_slots = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      stats_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stats-interval") == 0 && i + 1 < argc) {
      stats_interval_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--stats-prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--durability") == 0 && i + 1 < argc) {
      if (!ParseDurabilityMode(argv[++i], &durability)) {
        std::fprintf(stderr, "--durability must be off|commit|group\n");
        return 2;
      }
      durability_set = true;
    } else if (std::strcmp(argv[i], "--query-store-capacity") == 0 &&
               i + 1 < argc) {
      opts.query_store_capacity =
          static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--slow-query-ms") == 0 && i + 1 < argc) {
      opts.slow_query_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--qlog") == 0 && i + 1 < argc) {
      opts.qlog_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host ip] [--port n] [--workers n] "
                   "[--max-sessions n] [--dop n] [--shared-scans] "
                   "[--admission n] [--stats-json f] [--stats-interval ms] "
                   "[--stats-prom f] [--data-dir path] "
                   "[--durability off|commit|group] "
                   "[--query-store-capacity n] [--slow-query-ms ms] "
                   "[--qlog f] [--trace f]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!data_dir.empty() && !durability_set) {
    durability = DurabilityMode::kGroup;
  }
  if (data_dir.empty() && durability_set && durability != DurabilityMode::kOff) {
    std::fprintf(stderr, "--durability %s requires --data-dir\n",
                 DurabilityModeName(durability));
    return 2;
  }

  if (!trace_path.empty()) {
    Trace::Global().Enable();
  }

  TelemetrySampler sampler;
  if (!stats_path.empty()) {
    Status s = sampler.Start(stats_path, stats_interval_ms);
    if (!s.ok()) {
      std::fprintf(stderr, "stats sampler failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  Database db;
  if (durability != DurabilityMode::kOff) {
    // Recover whatever the directory holds; only a fresh directory gets
    // the demo load (followed by a checkpoint — DDL and bulk loads are
    // not logged, so the checkpoint IS their durability point).
    RecoveryStats rstats;
    if (Status s = db.OpenDurability(data_dir, durability, WalOptions(),
                                     &rstats);
        !s.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (rstats.checkpoint_loaded) {
      std::printf(
          "recovered %s: redo=%llu undo=%llu truncated_tail=%lluB in %.1fms\n",
          data_dir.c_str(),
          static_cast<unsigned long long>(rstats.redo_records),
          static_cast<unsigned long long>(rstats.undo_records),
          static_cast<unsigned long long>(rstats.truncated_bytes),
          rstats.restart_ms);
    } else {
      if (Status s = LoadDemo(&db); !s.ok()) {
        std::fprintf(stderr, "demo load failed: %s\n", s.ToString().c_str());
        return 1;
      }
      if (Status s = db.Checkpoint(); !s.ok()) {
        std::fprintf(stderr, "initial checkpoint failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
      std::printf("initialized fresh data dir %s (durability=%s)\n",
                  data_dir.c_str(), DurabilityModeName(durability));
    }
  } else if (Status s = LoadDemo(&db); !s.ok()) {
    std::fprintf(stderr, "demo load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  Server server(&db, opts);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("hd_server listening on %s:%d (%s)\n", opts.host.c_str(),
              server.port(), kProtocolVersion);
  std::printf("preloaded table 'sales'(region, day, units, revenue), "
              "400000 rows; shared_scans=%s admission=%d workers=%d\n",
              opts.shared_scans ? "on" : "off", opts.admission_slots,
              opts.workers);
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down: %d active sessions, %llu connections total\n",
              server.sessions_active(),
              static_cast<unsigned long long>(server.connections_total()));
  server.Stop();

  // Clean SIGTERM gets a final checkpoint so the next start replays an
  // empty (truncated) log. A kill -9 skips this — that is what the WAL
  // replay path is for.
  if (durability != DurabilityMode::kOff) {
    if (Status s = db.Checkpoint(); s.ok()) {
      std::printf("final checkpoint written to %s\n", data_dir.c_str());
    } else {
      std::fprintf(stderr, "final checkpoint failed: %s\n",
                   s.ToString().c_str());
    }
  }

  if (!trace_path.empty()) {
    // Sessions are drained, so every query's admission/morsel/WAL spans
    // and its pid-1 session row (all keyed by trace id) are in the ring.
    if (Status s = Trace::Global().WriteJson(trace_path); s.ok()) {
      std::printf("wrote trace to %s (hd-trace/2)\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
    }
  }
  if (!stats_path.empty()) {
    sampler.Stop();
    std::printf("wrote %llu telemetry samples to %s\n",
                static_cast<unsigned long long>(sampler.samples_written()),
                stats_path.c_str());
  }
  if (!prom_path.empty()) {
    FILE* f = std::fopen(prom_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", prom_path.c_str());
      return 1;
    }
    const std::string text = Telemetry::Instance().Snapshot().ToPrometheus();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  std::printf("clean shutdown\n");
  return 0;
}
