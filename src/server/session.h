// One client connection's server-side state (PROTOCOL.md §3).
//
// A session owns: its socket, its protocol state machine (handshake →
// query loop → close), an optional open transaction, and its
// catalog-of-intermediates — a bounded plan cache mapping exact SQL text
// to the parsed Query + chosen PhysicalPlan, so a dashboard-style client
// that re-issues the same statement skips parse/bind/optimize on every
// round trip (hits surface as `server.plan_cache_hits`).
//
// Sessions are single-threaded by construction: a session is owned by
// exactly one server worker and Pump() is only ever called from that
// worker's loop, so there is no internal locking. Engine-side concurrency
// (morsel parallelism, shared scan passes, the admission gate) is reached
// through the process-wide objects in SessionEnv — the same wiring the
// in-process shell's --shared-scans/--admission flags use.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "catalog/database.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "exec/query.h"
#include "server/protocol.h"
#include "txn/transaction.h"

namespace hd {

class ScanScheduler;
class AdmissionController;

/// Process-wide engine objects every session shares, plus the per-session
/// execution defaults the server hands out.
struct SessionEnv {
  Database* db = nullptr;
  TransactionManager* txns = nullptr;
  ScanScheduler* scan_scheduler = nullptr;     // may be null (private scans)
  AdmissionController* admission = nullptr;    // may be null (no gate)
  /// Workload capture (obs/query_store.h); may be null (capture off).
  /// Sessions record every executed statement — and parse/plan failures
  /// — stamped with their session and trace ids.
  QueryStore* query_store = nullptr;
  int max_dop = 0;
  uint64_t memory_grant_bytes = 4ull << 30;
  uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Plan-cache entries per session before FIFO eviction.
  size_t plan_cache_capacity = 64;
};

class Session {
 public:
  /// What the worker loop should do with the session after one Pump().
  enum class Outcome {
    kKeep,   // frame handled; keep polling this fd
    kClose,  // orderly or errored end; destroy the session
  };

  /// Takes ownership of `fd` (closed in the destructor).
  Session(uint64_t id, int fd, SessionEnv env);
  /// Closes the socket and aborts any open transaction, releasing its
  /// locks — an abruptly-disconnected client must leak nothing (§3.4).
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Read exactly one frame from the socket and handle it. Called by the
  /// owning worker when poll() reports the fd readable.
  Outcome Pump();

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  bool in_transaction() const { return txn_ != nullptr; }
  uint64_t plan_cache_size() const { return cache_.size(); }

 private:
  struct CachedPlan {
    Query query;
    PhysicalPlan plan;
    /// Statement fingerprint (NormalizeSql at plan time, so cache hits
    /// skip re-normalization along with parse/bind/optimize).
    std::string norm;
    uint64_t fingerprint = 0;
  };

  Outcome HandleFrame(const Frame& f);
  /// `trace_id` is the client-sent id from the Query frame; 0 means the
  /// session assigns one (§2.3). The id the statement actually ran under
  /// is echoed in ResultDone (§2.6).
  Outcome HandleQuery(const std::string& sql, uint64_t trace_id);
  /// `.queries [top|slow|fingerprints]` — remote query-store views,
  /// intercepted before the SQL parser like txn meta-statements.
  bool HandleQueriesCommand(const std::string& sql, Outcome* out);
  Outcome HandleStats(const StatsReqMsg& req);
  /// Txn meta-statements (BEGIN/COMMIT/ROLLBACK, §3.3) are intercepted
  /// before the SQL parser. Returns true when `sql` was one.
  bool HandleTxnStatement(const std::string& sql, Outcome* out);

  /// Parse+plan `sql`, or return the session-cached entry for this exact
  /// text. The cache key is the verbatim statement, so a hit is by
  /// construction the same query with the same constants.
  Status PlanStatement(const std::string& sql, const CachedPlan** out);

  /// Send helpers; on any write failure the session is torn down by the
  /// caller (client gone — nobody is listening for an apology).
  Status Send(MsgType t, const std::string& payload);
  Status SendError(const Status& s);
  Status SendResult(const Query& q, const PhysicalPlan& plan,
                    const QueryResult& r, double wall_ms, uint64_t trace_id);

  const uint64_t id_;
  int fd_;
  SessionEnv env_;
  bool hello_done_ = false;

  std::unique_ptr<Transaction> txn_;

  /// FIFO plan cache: map + insertion-order list for eviction.
  std::unordered_map<std::string, CachedPlan> cache_;
  std::list<std::string> cache_order_;
};

}  // namespace hd
