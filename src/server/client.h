// Thin hd-proto/1 client library (docs/PROTOCOL.md) used by
// examples/sql_client.cpp, tests/server_test.cc, and
// bench_fig13 --remote.
//
// Blocking, single-connection, not thread-safe: one Client per client
// thread (the benches open k of them). The request/response pairing is
// the §3.2 query loop: Query() sends one statement and consumes frames
// until the terminating ResultDone or Error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "server/protocol.h"

namespace hd {

/// Everything one statement produced on the wire.
struct RemoteResult {
  std::vector<std::string> columns;     // from ResultHeader (may be empty)
  std::vector<uint8_t> column_types;    // ValueType or kDynamicColType
  std::vector<Row> rows;                // materialized row stream
  uint64_t row_count = 0;               // true cardinality (§2.6)
  uint64_t affected_rows = 0;
  double exec_ms = 0;                   // server-side wall time
  std::string info;                     // plan_desc / EXPLAIN text / txn ack
  /// End-to-end trace id the statement ran under (§2.3/§2.6): the
  /// client-generated id echoed back, or the server-assigned one. The
  /// same 16-hex id appears in the server's qlog, slow-query log, and
  /// chrome://tracing spans. 0 when talking to a pre-trace server.
  uint64_t trace_id = 0;
};

class Client {
 public:
  Client() = default;
  ~Client() { Abort(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// TCP connect + Hello/HelloOk handshake (§3.1).
  Status Connect(const std::string& host, int port,
                 const std::string& client_name = "sql_client");

  bool connected() const { return fd_ >= 0; }
  uint64_t session_id() const { return session_id_; }
  /// The connected socket (tests use it to craft raw/hostile frames).
  int fd() const { return fd_; }

  /// Execute one statement (SQL, or BEGIN/COMMIT/ROLLBACK, §3.3) and
  /// collect the full response. A server-side Error frame surfaces as
  /// the equivalent engine Status (§4) — e.g. admission shed is
  /// kResourceExhausted, exactly as in-process callers see it.
  /// Each call stamps the Query frame with a fresh client-generated
  /// trace id (session id in the top bits, per-connection counter
  /// below); pass `trace_id` to pin one explicitly. The id the server
  /// confirms comes back in RemoteResult::trace_id.
  Result<RemoteResult> Query(const std::string& sql, uint64_t trace_id = 0);

  /// Fetch a telemetry snapshot (§2.8).
  Result<std::string> Stats(StatsReqMsg::Format format);

  /// Orderly goodbye: Close → CloseOk → socket close (§3.4).
  Status Close();

  /// Abrupt disconnect: close the socket with no Close frame — the
  /// kill-client-mid-query path tests/server_test.cc exercises. The
  /// server must release the session's locks, transaction, and scan
  /// attachments on its own.
  void Abort();

 private:
  int fd_ = -1;
  uint64_t session_id_ = 0;
  uint64_t next_trace_seq_ = 0;
};

}  // namespace hd
