// Columnstore size estimation from block-level samples (Section 4.4).
//
// Two estimators, as in the paper:
//   - Black-box: build a real columnstore on the sample and scale each
//     column's compressed size by the inverse sampling ratio. Simple, but
//     overestimates low-cardinality columns (dictionary sizes do not scale
//     linearly) and pays for sorting/compressing the sample.
//   - Run-model (GEE): mimic the engine's greedy fewest-runs-first column
//     ordering, bound the number of RLE runs of each column by the GEE
//     estimate of distinct prefix combinations, and price runs/dictionaries
//     directly. Cheaper and usually more accurate.
#pragma once

#include "catalog/table.h"
#include "optimizer/config.h"

namespace hd {

struct SizeEstimateOptions {
  double sample_ratio = 0.05;
  int block_rows = 1024;
  uint64_t seed = 17;
  /// Row-group size assumed for the hypothetical index.
  size_t rowgroup_size = 1u << 17;
};

/// Black-box estimator: compress the sample, scale linearly.
IndexStatsInfo EstimateCsiSizeBlackBox(const Table& t,
                                       const SizeEstimateOptions& opts);

/// GEE run-model estimator.
IndexStatsInfo EstimateCsiSizeGee(const Table& t,
                                  const SizeEstimateOptions& opts);

/// Ground truth: build the full index and report exact sizes (used by the
/// accuracy benchmarks; too expensive for the advisor's inner loop).
IndexStatsInfo MeasureCsiSizeExact(const Table& t, size_t rowgroup_size);

}  // namespace hd
