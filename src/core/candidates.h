// Candidate selection and index merging for the advisor (Section 4.3).
#pragma once

#include <string>
#include <vector>

#include "catalog/database.h"
#include "exec/query.h"
#include "optimizer/config.h"

namespace hd {

/// Which index types the advisor may recommend — the paper's three
/// compared alternatives (Section 5.1).
enum class AdvisorMode {
  kBTreeOnly,
  kCsiOnly,
  kHybrid,
};

const char* AdvisorModeName(AdvisorMode m);

/// One candidate physical structure on a named table.
struct Candidate {
  std::string table;
  IndexDef def;
  IndexStatsInfo stats;  // filled by the advisor's size estimation

  bool SameAs(const Candidate& o) const {
    return table == o.table && def == o.def;
  }
};

/// Deterministic index name derived from a definition.
std::string MakeIndexName(const std::string& table, const IndexDef& def);

/// Syntactic per-query candidate generation: B+ tree candidates from
/// equality/range predicates, sort/group requirements, and join columns
/// (both fact-side for the dim-driven shape and dim-side for index NL);
/// one all-column secondary columnstore per referenced table (the paper's
/// design choice (ii): include all columns, Section 4.3).
std::vector<Candidate> GenerateCandidates(const Query& q, Database* db,
                                          AdvisorMode mode);

/// Index merging (Chaudhuri & Narasayya '99): merge B+ tree candidates on
/// the same table when one's keys are a prefix of the other's; the merged
/// index keeps the longer key and unions included columns. Columnstores
/// never merge with B+ trees (Section 4.3). Input order is preserved;
/// merged additions are appended.
std::vector<Candidate> MergeCandidates(std::vector<Candidate> cands);

}  // namespace hd
