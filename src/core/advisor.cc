#include "core/advisor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace hd {

std::string Recommendation::Report() const {
  std::ostringstream os;
  os << "Recommendation: " << chosen.size() << " indexes, workload cost "
     << initial_cost_ms << " -> " << final_cost_ms << " ms (est), "
     << candidates_generated << " candidates (" << candidates_after_pruning
     << " after pruning)\n";
  for (const auto& ci : chosen) {
    os << "  " << ci.table << ": " << ci.def.Describe() << "  size~"
       << ci.est_size_bytes / (1024.0 * 1024.0) << "MB gain~" << ci.gain_ms
       << "ms\n";
  }
  return os.str();
}

IndexStatsInfo Advisor::EstimateStats(const Candidate& c) const {
  Table* t = db_->GetTable(c.table);
  if (c.def.is_btree()) return EstimateBTreeStats(*t, c.def);
  return opts_.use_blackbox_size_estimator
             ? EstimateCsiSizeBlackBox(*t, opts_.size_opts)
             : EstimateCsiSizeGee(*t, opts_.size_opts);
}

Result<Recommendation> Advisor::Recommend(const std::vector<Query>& workload) {
  Recommendation rec;

  // Start from the current primaries with no secondary structures.
  Configuration cfg = Configuration::FromCatalog(*db_);
  for (auto& [name, tc] : cfg.tables) tc.secondaries.clear();

  // csi-only mode is not a search: build a secondary columnstore on every
  // table the workload references (Section 5.1's columnstore-only design).
  if (opts_.mode == AdvisorMode::kCsiOnly) {
    std::unordered_set<std::string> referenced;
    for (const auto& q : workload) {
      referenced.insert(q.base.table);
      for (const auto& j : q.joins) referenced.insert(j.dim.table);
    }
    for (const auto& name : referenced) {
      TableConfig* tc = cfg.FindMutable(name);
      if (tc == nullptr || tc->HasCsi()) continue;
      Candidate c;
      c.table = name;
      c.def.type = IndexDef::Type::kColumnStore;
      c.def.name = MakeIndexName(name, c.def);
      ConfigIndex ci;
      ci.def = c.def;
      ci.stats = EstimateStats(c);
      ci.hypothetical = true;
      tc->secondaries.push_back(ci);
      rec.chosen.push_back(
          {name, c.def, ci.stats.size_bytes, 0.0});
    }
  }

  // Per-query initial costs.
  auto workload_costs = [&](const Configuration& c,
                            std::vector<double>* out) -> Status {
    out->clear();
    for (const auto& q : workload) {
      HD_ASSIGN_OR_RETURN(double cost,
                          optimizer_.WhatIfCost(q, c, opts_.plan_opts));
      out->push_back(cost * q.weight);
    }
    return Status::OK();
  };

  std::vector<double> base_costs;
  {
    Configuration clean = cfg;
    for (auto& [name, tc] : clean.tables) tc.secondaries.clear();
    HD_RETURN_IF_ERROR(workload_costs(clean, &base_costs));
  }
  rec.per_query_initial_ms = base_costs;
  for (double c : base_costs) rec.initial_cost_ms += c;

  if (opts_.mode == AdvisorMode::kCsiOnly) {
    HD_RETURN_IF_ERROR(workload_costs(cfg, &rec.per_query_final_ms));
    for (double c : rec.per_query_final_ms) rec.final_cost_ms += c;
    rec.config = std::move(cfg);
    return rec;
  }

  // ---- Candidate selection (per query) ----
  std::vector<Candidate> cands;
  for (const auto& q : workload) {
    for (auto& c : GenerateCandidates(q, db_, opts_.mode)) {
      bool dup = false;
      for (const auto& d : cands) dup |= d.SameAs(c);
      if (!dup) cands.push_back(std::move(c));
    }
  }
  // ---- Index merging ----
  cands = MergeCandidates(std::move(cands));
  rec.candidates_generated = static_cast<int>(cands.size());

  // Size estimation for every candidate.
  for (auto& c : cands) c.stats = EstimateStats(c);

  // ---- Per-query pruning: keep candidates that help some query ----
  std::vector<char> keep(cands.size(), 0);
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    const Query& q = workload[qi];
    for (size_t ci = 0; ci < cands.size(); ++ci) {
      if (keep[ci]) continue;
      // Only candidates on tables this query touches.
      bool relevant = cands[ci].table == q.base.table;
      for (const auto& j : q.joins) relevant |= cands[ci].table == j.dim.table;
      if (!relevant) continue;
      Configuration trial = cfg;
      TableConfig* tc = trial.FindMutable(cands[ci].table);
      if (cands[ci].def.is_columnstore() && tc->HasCsi()) continue;
      ConfigIndex ix;
      ix.def = cands[ci].def;
      ix.stats = cands[ci].stats;
      ix.hypothetical = true;
      tc->secondaries.push_back(ix);
      HD_ASSIGN_OR_RETURN(double cost,
                          optimizer_.WhatIfCost(q, trial, opts_.plan_opts));
      if (cost * q.weight <
          base_costs[qi] * (1.0 - opts_.per_query_keep_fraction)) {
        keep[ci] = 1;
      }
    }
  }
  std::vector<Candidate> pruned;
  for (size_t ci = 0; ci < cands.size(); ++ci) {
    if (keep[ci]) pruned.push_back(std::move(cands[ci]));
  }
  cands = std::move(pruned);
  rec.candidates_after_pruning = static_cast<int>(cands.size());

  // ---- Greedy workload-level enumeration under the storage budget ----
  std::vector<double> cur_costs = base_costs;
  double cur_total = rec.initial_cost_ms;
  uint64_t used_bytes = 0;
  std::vector<char> used(cands.size(), 0);

  while (static_cast<int>(rec.chosen.size()) < opts_.max_chosen_indexes) {
    int best_ci = -1;
    double best_gain = 0;
    std::vector<double> best_costs;
    for (size_t ci = 0; ci < cands.size(); ++ci) {
      if (used[ci]) continue;
      const Candidate& c = cands[ci];
      if (used_bytes + c.stats.size_bytes > opts_.storage_budget_bytes) {
        continue;
      }
      TableConfig* tc0 = cfg.FindMutable(c.table);
      if (c.def.is_columnstore() && tc0->HasCsi()) continue;
      Configuration trial = cfg;
      TableConfig* tc = trial.FindMutable(c.table);
      ConfigIndex ix;
      ix.def = c.def;
      ix.stats = c.stats;
      ix.hypothetical = true;
      tc->secondaries.push_back(ix);
      // Recost only the queries touching this table.
      double total = 0;
      std::vector<double> costs = cur_costs;
      for (size_t qi = 0; qi < workload.size(); ++qi) {
        const Query& q = workload[qi];
        bool touches = q.base.table == c.table;
        for (const auto& j : q.joins) touches |= j.dim.table == c.table;
        if (touches) {
          HD_ASSIGN_OR_RETURN(double cost,
                              optimizer_.WhatIfCost(q, trial, opts_.plan_opts));
          costs[qi] = cost * q.weight;
        }
        total += costs[qi];
      }
      const double gain = cur_total - total;
      if (gain > best_gain) {
        best_gain = gain;
        best_ci = static_cast<int>(ci);
        best_costs = std::move(costs);
      }
    }
    if (best_ci < 0 ||
        best_gain < opts_.min_gain_fraction * rec.initial_cost_ms) {
      break;
    }
    const Candidate& c = cands[best_ci];
    TableConfig* tc = cfg.FindMutable(c.table);
    ConfigIndex ix;
    ix.def = c.def;
    ix.stats = c.stats;
    ix.hypothetical = true;
    tc->secondaries.push_back(ix);
    used[best_ci] = 1;
    used_bytes += c.stats.size_bytes;
    cur_costs = std::move(best_costs);
    cur_total -= best_gain;
    rec.chosen.push_back({c.table, c.def, c.stats.size_bytes, best_gain});
  }

  rec.per_query_final_ms = cur_costs;
  rec.final_cost_ms = cur_total;
  rec.config = std::move(cfg);
  return rec;
}

}  // namespace hd
