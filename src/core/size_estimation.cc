#include "core/size_estimation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace hd {

namespace {

/// Exact compressed per-column sizes of a columnstore built over the given
/// column-major data (shared by the black-box path and ground truth).
IndexStatsInfo CompressAndMeasure(const Table& t,
                                  std::vector<std::vector<int64_t>> cols,
                                  size_t rowgroup_size) {
  IndexStatsInfo st;
  const int ncols = static_cast<int>(cols.size());
  const size_t n = ncols > 0 ? cols[0].size() : 0;
  st.rows = n;
  st.column_bytes.assign(ncols, 0);
  if (n == 0) return st;
  // A scratch buffer pool: segments register extents we do not keep.
  DiskModel disk;
  BufferPool pool(&disk);
  CsiOptions opts;
  opts.rowgroup_size = rowgroup_size;
  std::vector<int64_t> locs(n);
  std::iota(locs.begin(), locs.end(), 0);
  ColumnStoreIndex csi(ColumnStoreIndex::Kind::kSecondary, ncols, &pool, opts);
  csi.BulkLoad(std::move(cols), std::move(locs));
  for (int c = 0; c < ncols; ++c) {
    st.column_bytes[c] = csi.column_size_bytes(c);
    st.size_bytes += st.column_bytes[c];
  }
  (void)t;
  return st;
}

}  // namespace

IndexStatsInfo MeasureCsiSizeExact(const Table& t, size_t rowgroup_size) {
  std::vector<std::vector<int64_t>> cols;
  t.SampleBlocks(1.0, 0, 1 << 20, &cols);
  return CompressAndMeasure(t, std::move(cols), rowgroup_size);
}

IndexStatsInfo EstimateCsiSizeBlackBox(const Table& t,
                                       const SizeEstimateOptions& opts) {
  std::vector<std::vector<int64_t>> cols;
  t.SampleBlocks(opts.sample_ratio, opts.seed, opts.block_rows, &cols);
  const uint64_t total_rows = t.num_rows();
  const size_t ns = cols.empty() ? 0 : cols[0].size();
  if (ns == 0) {
    IndexStatsInfo st;
    st.rows = total_rows;
    st.column_bytes.assign(t.num_columns(), 0);
    return st;
  }
  const double scale = static_cast<double>(total_rows) / ns;
  // Shrink the row-group size proportionally so the sample sees the same
  // number of row groups the full build would.
  const size_t rg = std::max<size_t>(
      1024, static_cast<size_t>(opts.rowgroup_size / scale));
  IndexStatsInfo st = CompressAndMeasure(t, std::move(cols), rg);
  st.rows = total_rows;
  st.size_bytes = 0;
  for (auto& b : st.column_bytes) {
    b = static_cast<uint64_t>(b * scale);
    st.size_bytes += b;
  }
  return st;
}

IndexStatsInfo EstimateCsiSizeGee(const Table& t,
                                  const SizeEstimateOptions& opts) {
  std::vector<std::vector<int64_t>> cols;
  t.SampleBlocks(opts.sample_ratio, opts.seed, opts.block_rows, &cols);
  const int ncols = t.num_columns();
  const uint64_t total_rows = t.num_rows();
  IndexStatsInfo st;
  st.rows = total_rows;
  st.column_bytes.assign(ncols, 0);
  const size_t ns = cols.empty() ? 0 : cols[0].size();
  if (ns == 0 || total_rows == 0) return st;

  // Per-column GEE distinct estimates.
  std::vector<uint64_t> ndv(ncols);
  for (int c = 0; c < ncols; ++c) {
    std::vector<int64_t> v = cols[c];
    std::sort(v.begin(), v.end());
    ndv[c] = std::max<uint64_t>(1, GeeEstimateDistinct(v, total_rows));
  }

  // Greedy fewest-runs-first ordering (the engine's strategy, approximated
  // by ascending distinct count as in Section 4.4).
  std::vector<int> order(ncols);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return ndv[a] < ndv[b]; });

  // Runs of the k-th sorted column are bounded by the GEE estimate of
  // distinct combinations of the first k columns. Estimate combination
  // counts by hashing sample prefixes.
  const uint64_t rows_per_group = opts.rowgroup_size;
  const double num_groups =
      std::max(1.0, std::ceil(static_cast<double>(total_rows) / rows_per_group));
  std::vector<int64_t> combo(ns, 0);
  std::vector<int64_t> sorted_combo;
  for (int k = 0; k < ncols; ++k) {
    const int c = order[k];
    // combo[i] = hash of (combo[i], cols[c][i]) — running prefix signature.
    for (size_t i = 0; i < ns; ++i) {
      uint64_t h = static_cast<uint64_t>(combo[i]) * 0x9e3779b97f4a7c15ull;
      h ^= static_cast<uint64_t>(cols[c][i]) + (h << 6) + (h >> 2);
      combo[i] = static_cast<int64_t>(h);
    }
    sorted_combo = combo;
    std::sort(sorted_combo.begin(), sorted_combo.end());
    uint64_t combos = GeeEstimateDistinct(sorted_combo, total_rows);
    combos = std::max<uint64_t>(1, std::min(combos, total_rows));
    // Within each independently-compressed row group, runs cannot exceed
    // the group's row count, and each distinct combination present starts
    // at least one run. Expected runs per group ≈ min(combos, rows/group),
    // because a combination spanning groups restarts its run.
    const double runs_per_group =
        std::min<double>(static_cast<double>(rows_per_group),
                         static_cast<double>(combos) / num_groups +
                             std::min<double>(combos, num_groups));
    const double total_runs = runs_per_group * num_groups;
    // Price the encoding the engine would choose.
    const double avg_run = static_cast<double>(total_rows) / total_runs;
    double bytes;
    const double dict_bytes = static_cast<double>(ndv[c]) * 8.0;
    if (avg_run >= 3.0) {
      bytes = total_runs * sizeof(Run) + dict_bytes;
    } else {
      // Bit-packed codes.
      const int bits = std::max(1, BitsFor(ndv[c] - 1));
      bytes = static_cast<double>(total_rows) * bits / 8.0 + dict_bytes;
    }
    bytes += 64.0 * num_groups;  // headers
    st.column_bytes[c] = static_cast<uint64_t>(bytes);
    st.size_bytes += st.column_bytes[c];
  }
  return st;
}

}  // namespace hd
