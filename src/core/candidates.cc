#include "core/candidates.h"

#include <algorithm>
#include <functional>
#include <set>

namespace hd {

const char* AdvisorModeName(AdvisorMode m) {
  switch (m) {
    case AdvisorMode::kBTreeOnly: return "btree-only";
    case AdvisorMode::kCsiOnly: return "csi-only";
    case AdvisorMode::kHybrid: return "hybrid";
  }
  return "?";
}

std::string MakeIndexName(const std::string& table, const IndexDef& def) {
  if (def.is_columnstore()) {
    std::string s = "csi_" + table;
    if (!def.key_cols.empty()) s += "_s" + std::to_string(def.key_cols[0]);
    return s;
  }
  std::string s = "ix_" + table + "_k";
  for (int c : def.key_cols) s += "_" + std::to_string(c);
  if (!def.included_cols.empty()) {
    s += "_i";
    for (int c : def.included_cols) s += "_" + std::to_string(c);
  }
  return s;
}

namespace {

void CollectExprBaseCols(const Expr& e, int table, std::vector<int>* out) {
  if (e.kind == Expr::Kind::kCol && e.col.table == table) {
    out->push_back(e.col.col);
  }
  for (const auto& c : e.children) CollectExprBaseCols(c, table, out);
}

/// Columns of table `tbl` the query references anywhere.
std::vector<int> ReferencedCols(const Query& q, int tbl, int ncols) {
  std::vector<char> need(ncols, 0);
  for (const auto& a : q.aggs) {
    if (a.arg) {
      std::vector<int> cols;
      CollectExprBaseCols(*a.arg, tbl, &cols);
      for (int c : cols) need[c] = 1;
    }
  }
  auto mark = [&](const std::vector<ColRef>& refs) {
    for (const auto& r : refs) {
      if (r.table == tbl && r.col < ncols) need[r.col] = 1;
    }
  };
  mark(q.group_by);
  mark(q.order_by);
  mark(q.select_cols);
  const std::vector<Pred>* preds =
      tbl == 0 ? &q.base.preds : &q.joins[tbl - 1].dim.preds;
  for (const auto& p : *preds) need[p.col] = 1;
  if (tbl == 0) {
    for (const auto& j : q.joins) need[j.base_col] = 1;
    for (const auto& s : q.sets) need[s.col] = 1;
  } else {
    need[q.joins[tbl - 1].dim_col] = 1;
  }
  std::vector<int> out;
  for (int c = 0; c < ncols; ++c) {
    if (need[c]) out.push_back(c);
  }
  return out;
}

void AddBTreeCandidate(const std::string& table, std::vector<int> keys,
                       const std::vector<int>& referenced,
                       std::vector<Candidate>* out) {
  if (keys.empty()) return;
  // Dedup keys preserving order.
  std::vector<int> k;
  for (int c : keys) {
    if (std::find(k.begin(), k.end(), c) == k.end()) k.push_back(c);
  }
  Candidate cand;
  cand.table = table;
  cand.def.type = IndexDef::Type::kBTree;
  cand.def.key_cols = k;
  for (int c : referenced) {
    if (std::find(k.begin(), k.end(), c) == k.end()) {
      cand.def.included_cols.push_back(c);
    }
  }
  cand.def.name = MakeIndexName(table, cand.def);
  out->push_back(std::move(cand));
}

}  // namespace

std::vector<Candidate> GenerateCandidates(const Query& q, Database* db,
                                          AdvisorMode mode) {
  std::vector<Candidate> out;
  const bool btree_ok = mode != AdvisorMode::kCsiOnly;
  const bool csi_ok = mode != AdvisorMode::kBTreeOnly;

  auto handle_table = [&](int tbl, const std::string& name,
                          const std::vector<Pred>& preds) {
    Table* t = db->GetTable(name);
    if (t == nullptr) return;
    const std::vector<int> referenced = ReferencedCols(q, tbl, t->num_columns());
    if (btree_ok) {
      // Predicate-driven candidate: equality columns first, then one range
      // column as the final key.
      std::vector<int> eq_cols, range_cols;
      for (const auto& p : preds) {
        (p.is_equality() ? eq_cols : range_cols).push_back(p.col);
      }
      if (!eq_cols.empty() || !range_cols.empty()) {
        std::vector<int> keys = eq_cols;
        if (!range_cols.empty()) keys.push_back(range_cols[0]);
        AddBTreeCandidate(name, keys, referenced, &out);
      }
      // Sort/group-order candidates.
      std::vector<int> order_cols, group_cols;
      for (const auto& o : q.order_by) {
        if (o.table == tbl) order_cols.push_back(o.col);
      }
      for (const auto& g : q.group_by) {
        if (g.table == tbl) group_cols.push_back(g.col);
      }
      AddBTreeCandidate(name, order_cols, referenced, &out);
      AddBTreeCandidate(name, group_cols, referenced, &out);
      // Join-column candidates.
      if (tbl == 0) {
        for (const auto& j : q.joins) {
          AddBTreeCandidate(name, {j.base_col}, referenced, &out);
        }
      } else {
        AddBTreeCandidate(name, {q.joins[tbl - 1].dim_col}, referenced, &out);
      }
    }
    if (csi_ok && q.is_read_only()) {
      Candidate cand;
      cand.table = name;
      cand.def.type = IndexDef::Type::kColumnStore;
      cand.def.name = MakeIndexName(name, cand.def);
      out.push_back(std::move(cand));
      // Sorted-columnstore candidate (Section 4.5 extension): candidate
      // selection is aware of range-predicate columns and proposes a
      // projection order enabling segment elimination.
      for (const auto& p : preds) {
        if (p.is_equality()) continue;
        Candidate sorted;
        sorted.table = name;
        sorted.def.type = IndexDef::Type::kColumnStore;
        sorted.def.key_cols = {p.col};
        sorted.def.name = MakeIndexName(name, sorted.def);
        out.push_back(std::move(sorted));
        break;  // one sorted variant per table reference
      }
    }
  };

  handle_table(0, q.base.table, q.base.preds);
  for (size_t j = 0; j < q.joins.size(); ++j) {
    handle_table(static_cast<int>(j) + 1, q.joins[j].dim.table,
                 q.joins[j].dim.preds);
  }

  // Dedup.
  std::vector<Candidate> dedup;
  for (auto& c : out) {
    bool dup = false;
    for (const auto& d : dedup) dup |= d.SameAs(c);
    if (!dup) dedup.push_back(std::move(c));
  }
  return dedup;
}

std::vector<Candidate> MergeCandidates(std::vector<Candidate> cands) {
  std::vector<Candidate> merged = cands;
  auto is_prefix = [](const std::vector<int>& a, const std::vector<int>& b) {
    if (a.size() > b.size()) return false;
    return std::equal(a.begin(), a.end(), b.begin());
  };
  for (size_t i = 0; i < cands.size(); ++i) {
    for (size_t j = 0; j < cands.size(); ++j) {
      if (i == j) continue;
      const Candidate& a = cands[i];
      const Candidate& b = cands[j];
      if (a.table != b.table) continue;
      if (!a.def.is_btree() || !b.def.is_btree()) continue;  // CSI never merges
      if (!is_prefix(a.def.key_cols, b.def.key_cols)) continue;
      Candidate m;
      m.table = a.table;
      m.def.type = IndexDef::Type::kBTree;
      m.def.key_cols = b.def.key_cols;
      std::set<int> incl(b.def.included_cols.begin(), b.def.included_cols.end());
      for (int c : a.def.included_cols) incl.insert(c);
      for (int c : a.def.key_cols) incl.insert(c);
      for (int c : m.def.key_cols) incl.erase(c);
      m.def.included_cols.assign(incl.begin(), incl.end());
      m.def.name = MakeIndexName(m.table, m.def);
      bool dup = false;
      for (const auto& d : merged) dup |= d.SameAs(m);
      if (!dup) merged.push_back(std::move(m));
    }
  }
  return merged;
}

}  // namespace hd
