// The advisor: DTA extended with hybrid B+ tree / columnstore
// recommendations — the paper's primary contribution (Section 4).
//
// Architecture mirrors Figure 7: per-query candidate selection, index
// merging, and a cost-based workload-level greedy search, all driven by
// the optimizer's what-if API over hypothetical configurations whose
// columnstore sizes come from sampling-based estimation (Section 4.4).
#pragma once

#include <string>
#include <vector>

#include "core/candidates.h"
#include "core/size_estimation.h"
#include "optimizer/optimizer.h"

namespace hd {

struct AdvisorOptions {
  AdvisorMode mode = AdvisorMode::kHybrid;
  /// Storage budget for recommended (secondary) structures.
  uint64_t storage_budget_bytes = ~0ull;
  /// Stop when the best remaining candidate improves total workload cost
  /// by less than this fraction of the initial cost.
  double min_gain_fraction = 0.005;
  /// Keep a candidate after per-query analysis only if it improves some
  /// query by at least this fraction.
  double per_query_keep_fraction = 0.03;
  int max_chosen_indexes = 64;
  /// Columnstore size estimation.
  SizeEstimateOptions size_opts;
  bool use_blackbox_size_estimator = false;
  /// Planning environment for costing. The advisor costs at DOP 1:
  /// optimizer cost should reflect logical work (the paper's execution-
  /// cost metric is CPU time), not elapsed time on one parallelism level —
  /// otherwise large parallel scans look as cheap as selective seeks.
  PlanOptions plan_opts = PlanOptions{/*cold=*/false,
                                      /*memory_grant_bytes=*/4ull << 30,
                                      /*max_dop=*/1};
};

/// One chosen index with its bookkeeping.
struct ChosenIndex {
  std::string table;
  IndexDef def;
  uint64_t est_size_bytes = 0;
  double gain_ms = 0;  // workload cost reduction when it was added
};

struct Recommendation {
  Configuration config;           // final recommended design
  double initial_cost_ms = 0;     // workload cost with no secondaries
  double final_cost_ms = 0;       // workload cost under `config`
  std::vector<ChosenIndex> chosen;
  std::vector<double> per_query_initial_ms;
  std::vector<double> per_query_final_ms;
  int candidates_generated = 0;
  int candidates_after_pruning = 0;

  std::string Report() const;
};

class Advisor {
 public:
  Advisor(Database* db, AdvisorOptions opts = AdvisorOptions())
      : db_(db), opts_(opts), optimizer_(db) {}

  /// Analyze `workload` and recommend a physical design. The database's
  /// current primary structures are kept; existing secondary indexes are
  /// ignored (tuning from a clean slate, as in the paper's evaluation).
  Result<Recommendation> Recommend(const std::vector<Query>& workload);

  const Optimizer& optimizer() const { return optimizer_; }

 private:
  IndexStatsInfo EstimateStats(const Candidate& c) const;

  Database* db_;
  AdvisorOptions opts_;
  Optimizer optimizer_;
};

}  // namespace hd
