#include "storage/heap_file.h"

#include <algorithm>
#include <cstring>

#include "common/failpoint.h"

namespace hd {

HeapFile::HeapFile(int stride, BufferPool* pool)
    : stride_(std::max(1, stride)), pool_(pool) {
  rows_per_page_ =
      std::max<int>(1, static_cast<int>(kPageBytes) / (stride_ * 8));
}

HeapFile::~HeapFile() {
  for (auto& p : pages_) {
    if (p->extent != kInvalidExtent) pool_->Unregister(p->extent);
  }
}

uint64_t HeapFile::Append(std::span<const int64_t> row) {
  if (pages_.empty() || pages_.back()->count >= rows_per_page_) {
    auto page = std::make_unique<Page>();
    page->data.resize(static_cast<size_t>(rows_per_page_) * stride_);
    page->extent = pool_->Register(kPageBytes);
    pages_.push_back(std::move(page));
  }
  Page* p = pages_.back().get();
  std::memcpy(p->data.data() + static_cast<size_t>(p->count) * stride_,
              row.data(), stride_ * 8);
  p->deleted.push_back(false);
  ++p->count;
  return num_rows_++;
}

uint64_t HeapFile::AppendTombstone() {
  static thread_local std::vector<int64_t> zeros;
  zeros.assign(stride_, 0);
  const uint64_t rid = Append(zeros);
  int slot;
  Page* p = PageFor(rid, &slot);
  p->deleted[slot] = true;
  ++deleted_rows_;
  return rid;
}

void HeapFile::StampPageLsn(uint64_t rid, uint64_t lsn) {
  int slot;
  Page* p = PageFor(rid, &slot);
  if (p == nullptr) return;
  p->lsn = std::max(p->lsn, lsn);
  pool_->MarkDirty(p->extent, lsn);
}

uint64_t HeapFile::PageLsn(uint64_t rid) const {
  int slot;
  const Page* p = PageFor(rid, &slot);
  return p == nullptr ? 0 : p->lsn;
}

HeapFile::Page* HeapFile::PageFor(uint64_t rid, int* slot) const {
  if (rid >= num_rows_) return nullptr;
  const uint64_t pidx = rid / rows_per_page_;
  *slot = static_cast<int>(rid % rows_per_page_);
  return pages_[pidx].get();
}

Status HeapFile::Fetch(uint64_t rid, int64_t* out, QueryMetrics* m) const {
  int slot;
  Page* p = PageFor(rid, &slot);
  if (p == nullptr || slot >= p->count) {
    return Status::NotFound("row id out of range");
  }
  HD_FAILPOINT_RETURN_M("heapfile.io", m);
  HD_RETURN_IF_ERROR(pool_->Access(p->extent, IoPattern::kRandom, m));
  if (p->deleted[slot]) return Status::NotFound("row deleted");
  std::memcpy(out, p->data.data() + static_cast<size_t>(slot) * stride_,
              stride_ * 8);
  return Status::OK();
}

Status HeapFile::Update(uint64_t rid, std::span<const int64_t> row,
                        QueryMetrics* m) {
  int slot;
  Page* p = PageFor(rid, &slot);
  if (p == nullptr || slot >= p->count || p->deleted[slot]) {
    return Status::NotFound("row not found");
  }
  HD_FAILPOINT_RETURN_M("heapfile.io", m);
  HD_RETURN_IF_ERROR(pool_->Access(p->extent, IoPattern::kRandom, m));
  std::memcpy(p->data.data() + static_cast<size_t>(slot) * stride_, row.data(),
              stride_ * 8);
  return Status::OK();
}

Status HeapFile::Delete(uint64_t rid, QueryMetrics* m) {
  int slot;
  Page* p = PageFor(rid, &slot);
  if (p == nullptr || slot >= p->count || p->deleted[slot]) {
    return Status::NotFound("row not found");
  }
  HD_FAILPOINT_RETURN_M("heapfile.io", m);
  HD_RETURN_IF_ERROR(pool_->Access(p->extent, IoPattern::kRandom, m));
  p->deleted[slot] = true;
  ++deleted_rows_;
  return Status::OK();
}

Status HeapFile::Resurrect(uint64_t rid, std::span<const int64_t> row) {
  int slot;
  Page* p = PageFor(rid, &slot);
  if (p == nullptr || slot >= p->count) {
    return Status::NotFound("row id out of range");
  }
  if (!p->deleted[slot]) {
    return Status::Corruption("resurrect of a live row");
  }
  std::memcpy(p->data.data() + static_cast<size_t>(slot) * stride_,
              row.data(), stride_ * 8);
  p->deleted[slot] = false;
  --deleted_rows_;
  return Status::OK();
}

Status HeapFile::Scan(const std::function<bool(uint64_t, const int64_t*)>& fn,
                      QueryMetrics* m) const {
  return ScanRange(0, num_rows_, fn, m);
}

Status HeapFile::ScanRange(
    uint64_t begin_rid, uint64_t end_rid,
    const std::function<bool(uint64_t, const int64_t*)>& fn,
    QueryMetrics* m) const {
  end_rid = std::min(end_rid, num_rows_);
  if (begin_rid >= end_rid) return Status::OK();
  HD_FAILPOINT_RETURN_M("heapfile.io", m);
  uint64_t pidx = begin_rid / rows_per_page_;
  int slot = static_cast<int>(begin_rid % rows_per_page_);
  uint64_t rid = begin_rid;
  for (; pidx < pages_.size() && rid < end_rid; ++pidx, slot = 0) {
    const Page* p = pages_[pidx].get();
    HD_RETURN_IF_ERROR(pool_->Access(p->extent, IoPattern::kSequential, m));
    for (; slot < p->count && rid < end_rid; ++slot, ++rid) {
      if (p->deleted[slot]) continue;
      if (m != nullptr) m->rows_scanned += 1;
      if (!fn(rid, p->data.data() + static_cast<size_t>(slot) * stride_)) {
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

}  // namespace hd
