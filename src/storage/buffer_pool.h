// Buffer pool: residency accounting over storage extents.
//
// Real row/column data lives in ordinary process memory (this is an
// in-process engine); the buffer pool tracks which *extents* — B+ tree
// nodes, heap pages, column segments — are "resident" versus "on disk",
// charges the DiskModel on misses, and evicts LRU extents when the
// configured capacity is exceeded. EvictAll() models a cold cache.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/disk_model.h"

namespace hd {

/// Identifier of a registered extent.
using ExtentId = uint64_t;
constexpr ExtentId kInvalidExtent = 0;

constexpr uint64_t kPageBytes = 8 * 1024;

/// Thread-safe, sharded LRU residency tracker.
class BufferPool {
 public:
  /// `capacity_bytes` = 0 means unbounded (everything fits; the paper's
  /// server had 384 GB RAM so most experiments were memory-resident).
  explicit BufferPool(DiskModel* disk, uint64_t capacity_bytes = 0);
  /// Subtracts this pool's residency from the process telemetry gauges.
  ~BufferPool();

  /// Register a new extent of the given size; initially resident (freshly
  /// built data is in cache). Returns kInvalidExtent when the
  /// `bufferpool.register` failpoint fires (allocation failure); callers
  /// treat such an extent as permanently untracked — Access / Resize /
  /// Unregister on kInvalidExtent are safe no-ops.
  ExtentId Register(uint64_t bytes);

  /// Resize an existing extent (e.g. a heap page filling up).
  void Resize(ExtentId id, uint64_t bytes);

  void Unregister(ExtentId id);

  /// Touch an extent on behalf of a query: on miss, charge the DiskModel
  /// for a read of its size using `pattern` and make it resident (evicting
  /// colder extents if over capacity). Counts a logical page access.
  /// Fails (kIoError) only when the `disk.read` failpoint fires on a miss;
  /// the extent then stays non-resident so a later access retries the
  /// read. Unknown ids (incl. kInvalidExtent) are OK no-ops.
  Status Access(ExtentId id, IoPattern pattern, QueryMetrics* m);

  /// True if the extent is currently resident (test hook).
  bool IsResident(ExtentId id) const;

  /// Drop residency of every extent: the next access to anything is cold.
  void EvictAll();

  /// Mark every extent resident without charging I/O (warm the cache).
  void WarmAll();

  // ---------- WAL rule (storage/wal.h) ----------

  /// Record that `id` holds changes logged at `lsn` (monotonic max per
  /// extent). Dirty extents must not be checkpointed before the log is
  /// durable past their LSN. Unknown ids (incl. kInvalidExtent) ignored.
  void MarkDirty(ExtentId id, uint64_t lsn);

  /// Checkpoint-side enforcement of the WAL rule, scoped to the fuzzy
  /// snapshot the checkpoint actually captured: clear dirty marks with
  /// LSN <= `horizon` (the max applied LSN across the table snapshots),
  /// failing (kInternal) if any of THOSE carries an LSN > `durable_lsn` —
  /// that would mean persisting a page whose log is not yet on disk.
  /// Extents dirtied past the horizon are concurrent DML the snapshot did
  /// not see; they stay dirty for the next checkpoint.
  Status CleanUpTo(uint64_t horizon, uint64_t durable_lsn);

  /// Smallest LSN across dirty extents (0 = nothing dirty) — the redo low
  /// point a fuzzy checkpoint must keep log for.
  uint64_t min_dirty_lsn() const;
  uint64_t dirty_extents() const;

  uint64_t resident_bytes() const;
  uint64_t total_bytes() const;
  uint64_t capacity_bytes() const { return capacity_; }
  void set_capacity_bytes(uint64_t b) { capacity_ = b; }

  DiskModel* disk() { return disk_; }

 private:
  struct Shard;
  struct Entry {
    uint64_t bytes = 0;
    bool resident = false;
    std::list<ExtentId>::iterator lru_pos;
    bool in_lru = false;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<ExtentId, Entry> entries;
    std::list<ExtentId> lru;  // front = most recent
    /// Extents with logged-but-not-checkpointed changes -> max LSN.
    std::unordered_map<ExtentId, uint64_t> dirty;
  };

  Shard& ShardFor(ExtentId id) {
    return shards_[id % kNumShards];
  }
  const Shard& ShardFor(ExtentId id) const {
    return shards_[id % kNumShards];
  }
  void EvictIfNeeded();  // best-effort global check

  static constexpr int kNumShards = 64;

  DiskModel* disk_;
  uint64_t capacity_;
  std::vector<Shard> shards_;
  std::atomic<ExtentId> next_id_{1};
  std::atomic<uint64_t> resident_bytes_{0};
  std::atomic<uint64_t> total_bytes_{0};
};

}  // namespace hd
