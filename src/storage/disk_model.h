// Simulated storage medium.
//
// The paper's experiments ran against an 18 TB HDD RAID-0 array with about
// 1 GB/s sequential read and 400 MB/s write bandwidth (Section 3.1). We do
// not have that hardware, so cold-run I/O is simulated: every access to a
// non-resident extent charges stall time into the query's metrics based on
// a configurable bandwidth/latency model. Hot runs touch only resident
// data and charge nothing, exactly like a warmed buffer pool.
#pragma once

#include <cstdint>

#include "common/metrics.h"
#include "common/status.h"

namespace hd {

/// Access pattern hint for an I/O charge.
enum class IoPattern {
  kRandom,      // pay per-access latency + transfer
  kSequential,  // pay transfer only (seeks amortized by readahead)
};

/// Parameters of the simulated medium. Defaults approximate the paper's
/// RAID-0 HDD array.
struct DiskConfig {
  double read_bw_mb_s = 1000.0;
  double write_bw_mb_s = 400.0;
  /// Cost of one random positioning operation, in milliseconds. RAID-0 of
  /// HDDs: a few ms; the default is mildly optimistic because of request
  /// coalescing across the stripe.
  double random_latency_ms = 4.0;
  /// Readahead granularity for sequential access, bytes. Columnstores read
  /// megabyte-sized blocks, B+ trees kilobyte-sized pages (Section 3.2.1).
  uint64_t readahead_bytes = 4ull << 20;

  static DiskConfig Hdd() { return DiskConfig{}; }
  static DiskConfig Ssd() {
    return DiskConfig{2000.0, 1200.0, 0.08, 1ull << 20};
  }
};

/// Charges simulated I/O time for reads/writes of non-resident data.
class DiskModel {
 public:
  explicit DiskModel(DiskConfig cfg = DiskConfig()) : cfg_(cfg) {}

  const DiskConfig& config() const { return cfg_; }
  void set_config(const DiskConfig& c) { cfg_ = c; }

  /// Charge a read of `bytes` into `m` (may be null to only account time).
  /// Returns the simulated nanoseconds charged.
  uint64_t ChargeRead(uint64_t bytes, IoPattern pattern,
                      QueryMetrics* m) const;

  /// Charge a write of `bytes`.
  uint64_t ChargeWrite(uint64_t bytes, IoPattern pattern,
                       QueryMetrics* m) const;

  /// Fallible read/write: evaluate the `disk.read` / `disk.write`
  /// failpoints (injected kIoError and/or latency spike), then charge the
  /// model. With no failpoint armed these are exactly ChargeRead /
  /// ChargeWrite. All new I/O paths should call these; the Charge*
  /// primitives remain for infallible accounting (plan costing, setup).
  Status Read(uint64_t bytes, IoPattern pattern, QueryMetrics* m) const;
  Status Write(uint64_t bytes, IoPattern pattern, QueryMetrics* m) const;

 private:
  DiskConfig cfg_;
};

}  // namespace hd
