#include "storage/disk_model.h"

#include "common/failpoint.h"

namespace hd {

namespace {
uint64_t TransferNs(uint64_t bytes, double bw_mb_s) {
  const double ms = bytes / (bw_mb_s * 1024.0 * 1024.0) * 1000.0;
  return static_cast<uint64_t>(ms * 1e6);
}
}  // namespace

uint64_t DiskModel::ChargeRead(uint64_t bytes, IoPattern pattern,
                               QueryMetrics* m) const {
  uint64_t ns = TransferNs(bytes, cfg_.read_bw_mb_s);
  if (pattern == IoPattern::kRandom) {
    ns += static_cast<uint64_t>(cfg_.random_latency_ms * 1e6);
  }
  if (m != nullptr) {
    m->sim_io_ns += ns;
    m->bytes_read += bytes;
  }
  return ns;
}

uint64_t DiskModel::ChargeWrite(uint64_t bytes, IoPattern pattern,
                                QueryMetrics* m) const {
  uint64_t ns = TransferNs(bytes, cfg_.write_bw_mb_s);
  if (pattern == IoPattern::kRandom) {
    ns += static_cast<uint64_t>(cfg_.random_latency_ms * 1e6);
  }
  if (m != nullptr) {
    m->sim_io_ns += ns;
  }
  return ns;
}

Status DiskModel::Read(uint64_t bytes, IoPattern pattern,
                       QueryMetrics* m) const {
  HD_FAILPOINT_RETURN_M("disk.read", m);
  ChargeRead(bytes, pattern, m);
  return Status::OK();
}

Status DiskModel::Write(uint64_t bytes, IoPattern pattern,
                        QueryMetrics* m) const {
  HD_FAILPOINT_RETURN_M("disk.write", m);
  ChargeWrite(bytes, pattern, m);
  return Status::OK();
}

}  // namespace hd
