// Heap file: unordered row storage over packed rows, the default primary
// structure when a table has neither a primary B+ tree nor a primary
// columnstore.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/packed.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace hd {

/// Append-only paged heap of fixed-stride packed rows with in-place update
/// and logical delete. RowIds are stable insert positions.
class HeapFile {
 public:
  /// `stride` = number of int64 slots per row.
  HeapFile(int stride, BufferPool* pool);
  ~HeapFile();

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  int stride() const { return stride_; }

  /// Append one row; returns its RowId (insert position).
  uint64_t Append(std::span<const int64_t> row);

  /// Append a pre-deleted placeholder row (recovery uses this to keep
  /// RowIds dense with physical slots when replay must skip a rid).
  uint64_t AppendTombstone();

  /// Stamp the page holding `rid` with a log LSN (WAL rule: the page must
  /// not reach a checkpoint before the log is durable past this LSN) and
  /// mark its extent dirty in the buffer pool.
  void StampPageLsn(uint64_t rid, uint64_t lsn);
  /// LSN of the last logged mutation on the page holding `rid` (0 = clean
  /// since load).
  uint64_t PageLsn(uint64_t rid) const;

  /// Fetch a row by id (random page access); `out` needs stride capacity.
  Status Fetch(uint64_t rid, int64_t* out, QueryMetrics* m) const;

  /// Overwrite a row in place.
  Status Update(uint64_t rid, std::span<const int64_t> row, QueryMetrics* m);

  /// Logical delete.
  Status Delete(uint64_t rid, QueryMetrics* m);

  /// Bring a logically-deleted slot back to life with the given image.
  /// Recovery undoes a checkpointed loser DELETE this way: the checkpoint
  /// padded the rid with a tombstone, and the WAL carries the old row.
  /// kNotFound if the rid is out of range; kCorruption if the slot is
  /// live (undo must never clobber surviving data).
  Status Resurrect(uint64_t rid, std::span<const int64_t> row);

  /// Full sequential scan of live rows; `fn` returns false to stop early
  /// (still OK). Non-OK only on an injected/propagated I/O failure.
  Status Scan(const std::function<bool(uint64_t, const int64_t*)>& fn,
              QueryMetrics* m) const;

  /// Scan restricted to rows [begin_rid, end_rid) — parallel partitioning.
  Status ScanRange(uint64_t begin_rid, uint64_t end_rid,
                   const std::function<bool(uint64_t, const int64_t*)>& fn,
                   QueryMetrics* m) const;

  uint64_t num_rows() const { return num_rows_; }
  uint64_t live_rows() const { return num_rows_ - deleted_rows_; }
  uint64_t num_pages() const { return pages_.size(); }
  uint64_t size_bytes() const { return num_pages() * kPageBytes; }
  int rows_per_page() const { return rows_per_page_; }

 private:
  struct Page {
    std::vector<int64_t> data;     // rows_per_page * stride slots
    std::vector<bool> deleted;
    int count = 0;
    ExtentId extent = kInvalidExtent;
    /// pageLSN: last logged mutation applied to this page (0 = none).
    uint64_t lsn = 0;
  };

  Page* PageFor(uint64_t rid, int* slot) const;

  int stride_;
  BufferPool* pool_;
  int rows_per_page_;
  std::vector<std::unique_ptr<Page>> pages_;
  uint64_t num_rows_ = 0;
  uint64_t deleted_rows_ = 0;
};

}  // namespace hd
