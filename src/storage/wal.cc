#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/failpoint.h"
#include "common/telemetry.h"

namespace hd {

namespace {

constexpr uint32_t kSegmentMagic = 0x4844574cu;  // "HDWL"
constexpr uint32_t kSegmentVersion = 1;
constexpr uint32_t kMaxRecordBytes = 64u << 20;  // frame sanity bound

struct WalStats {
  TCounter* appends = Telemetry::Instance().Counter("wal.appends");
  TCounter* bytes = Telemetry::Instance().Counter("wal.bytes");
  TCounter* fsyncs = Telemetry::Instance().Counter("wal.fsyncs");
  THistogram* group_size = Telemetry::Instance().Histogram("wal.group_size");
  THistogram* flush_wait_ns =
      Telemetry::Instance().Histogram("wal.flush_wait_ns");
};

WalStats& Stats() {
  static WalStats s;
  return s;
}

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t n = out->size();
  out->resize(n + 4);
  std::memcpy(out->data() + n, &v, 4);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t n = out->size();
  out->resize(n + 8);
  std::memcpy(out->data() + n, &v, 8);
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

void PutRow(std::vector<uint8_t>* out, const WalRow& row) {
  PutU32(out, static_cast<uint32_t>(row.size()));
  for (const WalValue& v : row) {
    PutU8(out, static_cast<uint8_t>(v.tag));
    switch (v.tag) {
      case WalValue::Tag::kPacked: PutI64(out, v.packed); break;
      case WalValue::Tag::kString: PutString(out, v.str); break;
      case WalValue::Tag::kNull: break;
    }
  }
}

/// Bounds-checked little cursor for decode.
struct Cursor {
  const uint8_t* p;
  size_t left;
  bool ok = true;

  bool Take(void* dst, size_t n) {
    if (left < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }
  uint8_t U8() {
    uint8_t v = 0;
    Take(&v, 1);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Take(&v, 4);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Take(&v, 8);
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  std::string Str() {
    const uint32_t n = U32();
    if (!ok || left < n) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }
  bool Row(WalRow* out) {
    const uint32_t n = U32();
    if (!ok || n > (16u << 20)) return ok = false, false;
    out->clear();
    out->reserve(n);
    for (uint32_t i = 0; i < n && ok; ++i) {
      WalValue v;
      v.tag = static_cast<WalValue::Tag>(U8());
      switch (v.tag) {
        case WalValue::Tag::kPacked: v.packed = I64(); break;
        case WalValue::Tag::kString: v.str = Str(); break;
        case WalValue::Tag::kNull: break;
        default: return ok = false, false;
      }
      out->push_back(std::move(v));
    }
    return ok;
  }
};

const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

uint32_t WalCrc32(const uint8_t* data, size_t n) {
  const uint32_t* table = Crc32Table();
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

const char* DurabilityModeName(DurabilityMode m) {
  switch (m) {
    case DurabilityMode::kOff: return "off";
    case DurabilityMode::kCommit: return "commit";
    case DurabilityMode::kGroup: return "group";
  }
  return "?";
}

bool ParseDurabilityMode(const std::string& s, DurabilityMode* out) {
  if (s == "off") *out = DurabilityMode::kOff;
  else if (s == "commit") *out = DurabilityMode::kCommit;
  else if (s == "group") *out = DurabilityMode::kGroup;
  else return false;
  return true;
}

// ---------------------------------------------------------------------
// Record encode / decode.
// ---------------------------------------------------------------------

void WalRecord::EncodeBody(std::vector<uint8_t>* out) const {
  PutU64(out, lsn);
  PutU8(out, static_cast<uint8_t>(type));
  PutU64(out, txn);
  PutU32(out, table_id);
  switch (type) {
    case WalRecordType::kTxnCommit:
    case WalRecordType::kTxnAbort:
      break;
    case WalRecordType::kInsert:
      PutI64(out, rid);
      PutRow(out, new_row);
      break;
    case WalRecordType::kUpdate:
      PutI64(out, rid);
      PutRow(out, old_row);
      PutRow(out, new_row);
      break;
    case WalRecordType::kDelete:
      PutI64(out, rid);
      PutRow(out, old_row);
      break;
    case WalRecordType::kCsiReorg:
      PutString(out, aux);
      break;
  }
}

Status WalRecord::DecodeBody(const uint8_t* data, size_t n, WalRecord* out) {
  Cursor c{data, n};
  out->lsn = c.U64();
  out->type = static_cast<WalRecordType>(c.U8());
  out->txn = c.U64();
  out->table_id = c.U32();
  switch (out->type) {
    case WalRecordType::kTxnCommit:
    case WalRecordType::kTxnAbort:
      break;
    case WalRecordType::kInsert:
      out->rid = c.I64();
      c.Row(&out->new_row);
      break;
    case WalRecordType::kUpdate:
      out->rid = c.I64();
      c.Row(&out->old_row);
      c.Row(&out->new_row);
      break;
    case WalRecordType::kDelete:
      out->rid = c.I64();
      c.Row(&out->old_row);
      break;
    case WalRecordType::kCsiReorg:
      out->aux = c.Str();
      break;
    default:
      return Status::Corruption("unknown WAL record type");
  }
  if (!c.ok || c.left != 0) {
    return Status::Corruption("short or overlong WAL record body");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// WalManager.
// ---------------------------------------------------------------------

WalManager::WalManager(std::string dir, DurabilityMode mode, WalOptions opts)
    : dir_(std::move(dir)), mode_(mode), opts_(opts) {}

WalManager::~WalManager() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_ = true;
    // Final flush so a clean shutdown loses nothing even without an
    // explicit checkpoint (best-effort: errors are unreportable here).
    if (fd_ >= 0 && poison_.ok()) (void)SyncLocked();
  }
  work_cv_.notify_all();
  durable_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (fd_ >= 0) ::close(fd_);
}

std::string WalManager::WalDir(const std::string& dir) {
  return dir + "/wal";
}

Status WalManager::Open(uint64_t next_lsn, uint64_t next_txn) {
  std::error_code ec;
  std::filesystem::create_directories(WalDir(dir_), ec);
  if (ec) {
    return Status::IoError("cannot create WAL dir: " + ec.message());
  }
  std::unique_lock<std::mutex> lk(mu_);
  next_lsn_ = std::max<uint64_t>(1, next_lsn);
  written_lsn_ = durable_lsn_ = next_lsn_ - 1;
  next_txn_.store(std::max<uint64_t>(1, next_txn));
  // Enumerate pre-existing segments (recovery already consumed them; we
  // only need their names for truncation) and continue the sequence.
  segment_seq_ = 0;
  closed_segments_.clear();
  for (const auto& e : std::filesystem::directory_iterator(WalDir(dir_), ec)) {
    const std::string name = e.path().filename().string();
    unsigned long long seq = 0;
    if (std::sscanf(name.c_str(), "wal-%llu.log", &seq) == 1) {
      segment_seq_ = std::max<uint64_t>(segment_seq_, seq);
      // Old segments hold records strictly below our start LSN.
      closed_segments_.emplace_back(0, e.path().string());
    }
  }
  std::sort(closed_segments_.begin(), closed_segments_.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  ++segment_seq_;
  HD_RETURN_IF_ERROR(OpenSegmentLocked());
  if (mode_ == DurabilityMode::kGroup && !writer_.joinable()) {
    stop_ = false;
    writer_ = std::thread([this] { WriterLoop(); });
  }
  return Status::OK();
}

Status WalManager::OpenSegmentLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%010llu.log",
                static_cast<unsigned long long>(segment_seq_));
  const std::string path = WalDir(dir_) + "/" + name;
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::IoError("cannot open WAL segment " + path + ": " +
                           std::strerror(errno));
  }
  segment_bytes_written_ = 0;
  segment_first_lsn_ = next_lsn_;
  // Segment header: magic, version, first LSN to be written here.
  std::vector<uint8_t> hdr;
  PutU32(&hdr, kSegmentMagic);
  PutU32(&hdr, kSegmentVersion);
  PutU64(&hdr, next_lsn_);
  HD_RETURN_IF_ERROR(WriteLocked(hdr.data(), hdr.size()));
  // Make the segment itself durable before any record relies on it.
  if (::fsync(fd_) != 0) {
    return Status::IoError("WAL segment header fsync failed");
  }
  // fsync the directory so the new file name survives a crash.
  const int dfd = ::open(WalDir(dir_).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Status WalManager::WriteLocked(const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd_, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("WAL write failed: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  segment_bytes_written_ += n;
  return Status::OK();
}

uint64_t WalManager::AllocTxnId() {
  return next_txn_.fetch_add(1, std::memory_order_relaxed);
}

void WalManager::FrameRecordLocked(WalRecord* rec, std::vector<uint8_t>* out) {
  rec->lsn = next_lsn_++;
  std::vector<uint8_t> body;
  rec->EncodeBody(&body);
  PutU32(out, static_cast<uint32_t>(body.size()));
  PutU32(out, WalCrc32(body.data(), body.size()));
  out->insert(out->end(), body.begin(), body.end());
}

Status WalManager::Append(WalRecord* rec, uint64_t* lsn_out) {
  HD_FAILPOINT_RETURN("wal.append");
  std::unique_lock<std::mutex> lk(mu_);
  if (fd_ < 0) return Status::Internal("WAL not open");
  if (!poison_.ok()) return poison_;
  std::vector<uint8_t> framed;
  FrameRecordLocked(rec, &framed);
  if (buffer_.empty()) buffer_begin_lsn_ = rec->lsn;
  buffer_end_lsn_ = rec->lsn;
  buffer_.insert(buffer_.end(), framed.begin(), framed.end());
  switch (rec->type) {
    case WalRecordType::kInsert:
    case WalRecordType::kUpdate:
    case WalRecordType::kDelete:
      if (rec->txn != 0) {
        active_txn_first_lsn_.try_emplace(rec->txn, rec->lsn);
      }
      break;
    case WalRecordType::kTxnCommit:
    case WalRecordType::kTxnAbort:
      active_txn_first_lsn_.erase(rec->txn);
      break;
    case WalRecordType::kCsiReorg:
      break;
  }
  appends_.fetch_add(1, std::memory_order_relaxed);
  Stats().appends->Add(1);
  Stats().bytes->Add(static_cast<int64_t>(framed.size()));
  if (lsn_out != nullptr) *lsn_out = rec->lsn;
  return Status::OK();
}

Status WalManager::FlushBufferLocked() {
  if (!poison_.ok()) return poison_;
  if (buffer_.empty()) return Status::OK();
  Status w = WriteLocked(buffer_.data(), buffer_.size());
  if (!w.ok()) {
    // A failed write(2) leaves the byte-stream position unknown; any
    // further append would tear the log silently. Poison.
    poison_ = w;
    return w;
  }
  written_lsn_ = buffer_end_lsn_;
  buffer_.clear();
  buffer_begin_lsn_ = 0;
  return Status::OK();
}

Status WalManager::SyncLocked() {
  // Flush the buffer and fsync; caller holds mu_.
  HD_RETURN_IF_ERROR(FlushBufferLocked());
  if (written_lsn_ <= durable_lsn_) return Status::OK();
  Status fp = EvalFailPoint("wal.fsync");
  bool real_failure = false;
  if (fp.ok() && ::fsync(fd_) != 0) {
    fp = Status::IoError(std::string("WAL fsync failed: ") +
                         std::strerror(errno));
    real_failure = true;
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  Stats().fsyncs->Add(1);
  if (!fp.ok()) {
    // durable_lsn_ stays put — nothing past it is proven on disk. A real
    // fsync failure additionally poisons the log: the kernel may have
    // dropped the dirty pages, so a later successful fsync would prove
    // nothing about this range (fsyncgate). Injected faults are
    // transient by contract and may be retried.
    if (real_failure) poison_ = fp;
    return fp;
  }
  durable_lsn_ = written_lsn_;
  // Rotate once past the segment budget; a freshly rotated segment starts
  // durable (header fsync in OpenSegmentLocked).
  if (segment_bytes_written_ >= opts_.segment_bytes) {
    closed_segments_.emplace_back(segment_first_lsn_, [&] {
      char name[64];
      std::snprintf(name, sizeof(name), "wal-%010llu.log",
                    static_cast<unsigned long long>(segment_seq_));
      return WalDir(dir_) + "/" + name;
    }());
    ++segment_seq_;
    HD_RETURN_IF_ERROR(OpenSegmentLocked());
  }
  return Status::OK();
}

Status WalManager::Flush() {
  std::unique_lock<std::mutex> lk(mu_);
  return FlushBufferLocked();
}

Status WalManager::Sync() {
  std::unique_lock<std::mutex> lk(mu_);
  pending_commits_ = 0;
  return SyncLocked();
}

Status WalManager::EnsureDurable(uint64_t lsn) {
  if (lsn == 0) return Status::OK();
  std::unique_lock<std::mutex> lk(mu_);
  if (!poison_.ok()) return poison_;
  if (durable_lsn_ >= lsn) return Status::OK();
  if (mode_ == DurabilityMode::kGroup && writer_.joinable()) {
    work_cv_.notify_one();
    durable_cv_.wait(
        lk, [&] { return durable_lsn_ >= lsn || stop_ || !poison_.ok(); });
    if (!poison_.ok()) return poison_;
    if (durable_lsn_ < lsn) return Status::Internal("WAL writer stopped");
    return Status::OK();
  }
  return SyncLocked();
}

Status WalManager::Commit(uint64_t txn) {
  WalRecord rec;
  rec.type = WalRecordType::kTxnCommit;
  rec.txn = txn;
  uint64_t lsn = 0;
  HD_RETURN_IF_ERROR(Append(&rec, &lsn));
  const int64_t t0 = NowNs();
  Status s;
  if (mode_ == DurabilityMode::kCommit) {
    std::unique_lock<std::mutex> lk(mu_);
    pending_commits_ = 0;
    s = SyncLocked();
  } else {
    std::unique_lock<std::mutex> lk(mu_);
    ++pending_commits_;
    work_cv_.notify_one();
    // Park until the writer's fsync actually covers our LSN. A batch
    // whose fsync hit an injected fault is retried next window, so the
    // wait simply lasts longer; only a poisoned log or writer shutdown
    // fails the commit (durability unknown in both cases).
    durable_cv_.wait(
        lk, [&] { return durable_lsn_ >= lsn || stop_ || !poison_.ok(); });
    if (!poison_.ok()) {
      s = poison_;
    } else if (durable_lsn_ < lsn) {
      s = Status::Internal("WAL writer stopped before commit became durable");
    }
  }
  Stats().flush_wait_ns->Record(NowNs() - t0);
  return s;
}

Status WalManager::Abort(uint64_t txn) {
  WalRecord rec;
  rec.type = WalRecordType::kTxnAbort;
  rec.txn = txn;
  return Append(&rec);
}

void WalManager::WriterLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  bool backoff = false;
  while (true) {
    if (backoff) {
      // Previous fsync hit an injected fault; the bytes are written but
      // unproven (durable_lsn_ < written_lsn_, so the wake predicate is
      // already true). Plain timed sleep paces the retry.
      work_cv_.wait_for(lk, std::chrono::microseconds(opts_.group_window_us));
      backoff = false;
    } else {
      work_cv_.wait_for(lk, std::chrono::microseconds(opts_.group_window_us),
                        [&] {
                          return stop_ || !buffer_.empty() ||
                                 written_lsn_ > durable_lsn_;
                        });
    }
    if (!poison_.ok()) {
      durable_cv_.notify_all();
      return;
    }
    if (buffer_.empty() && written_lsn_ <= durable_lsn_) {
      if (stop_) return;
      continue;
    }
    const uint64_t group = pending_commits_;
    pending_commits_ = 0;
    Status s = SyncLocked();
    if (!s.ok()) {
      if (!poison_.ok() || stop_) {
        // Real failure or shutdown: parked committers wake, see the
        // poison/stop state, and report the commit failed (durability
        // unknown). durable_lsn_ was never advanced over the batch.
        durable_cv_.notify_all();
        return;
      }
      backoff = true;  // injected transient fault: retry next window
      continue;
    }
    if (group > 0) Stats().group_size->Record(static_cast<int64_t>(group));
    durable_cv_.notify_all();
  }
}

uint64_t WalManager::next_lsn() const {
  std::unique_lock<std::mutex> lk(mu_);
  return next_lsn_;
}

uint64_t WalManager::durable_lsn() const {
  std::unique_lock<std::mutex> lk(mu_);
  return durable_lsn_;
}

uint64_t WalManager::OldestActiveTxnLsn() const {
  std::unique_lock<std::mutex> lk(mu_);
  uint64_t oldest = 0;
  for (const auto& [txn, first] : active_txn_first_lsn_) {
    if (oldest == 0 || first < oldest) oldest = first;
  }
  return oldest;
}

Status WalManager::TruncateBelow(uint64_t lsn) {
  std::unique_lock<std::mutex> lk(mu_);
  // A closed segment is deletable when the NEXT segment starts at or
  // below `lsn` (so every record in it is < lsn). Segments enumerated at
  // Open() with unknown first LSN (0) are pre-recovery leftovers — they
  // are deletable whenever any post-recovery checkpoint advances past
  // them, which `lsn >= segment_first_lsn_ of the active segment` covers
  // because recovery replayed them fully before this manager opened.
  size_t deletable = 0;
  for (size_t i = 0; i < closed_segments_.size(); ++i) {
    const uint64_t next_first = i + 1 < closed_segments_.size()
                                    ? closed_segments_[i + 1].first
                                    : segment_first_lsn_;
    if (next_first <= lsn) {
      deletable = i + 1;
    } else {
      break;
    }
  }
  for (size_t i = 0; i < deletable; ++i) {
    std::error_code ec;
    std::filesystem::remove(closed_segments_[i].second, ec);
  }
  closed_segments_.erase(closed_segments_.begin(),
                         closed_segments_.begin() + deletable);
  return Status::OK();
}

Status WalManager::ReadLog(const std::string& dir,
                           const std::function<void(const WalRecord&)>& fn,
                           uint64_t* truncated_bytes) {
  if (truncated_bytes != nullptr) *truncated_bytes = 0;
  std::error_code ec;
  if (!std::filesystem::is_directory(WalDir(dir), ec)) return Status::OK();
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const auto& e : std::filesystem::directory_iterator(WalDir(dir), ec)) {
    unsigned long long seq = 0;
    if (std::sscanf(e.path().filename().string().c_str(), "wal-%llu.log",
                    &seq) == 1) {
      segments.emplace_back(seq, e.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  uint64_t last_lsn = 0;
  for (const auto& [seq, path] : segments) {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) continue;
    std::fseek(f, 0, SEEK_END);
    const long fsize = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> data(fsize > 0 ? static_cast<size_t>(fsize) : 0);
    const size_t got = data.empty() ? 0 : std::fread(data.data(), 1, data.size(), f);
    std::fclose(f);
    data.resize(got);
    size_t off = 0;
    // Segment header.
    if (data.size() < 16) continue;
    uint32_t magic, version;
    std::memcpy(&magic, data.data(), 4);
    std::memcpy(&version, data.data() + 4, 4);
    if (magic != kSegmentMagic || version != kSegmentVersion) continue;
    off = 16;
    // Records until a torn/corrupt frame — the rest of THIS segment is
    // unreachable tail (later segments belong to later generations that
    // recovered past the tear, so the scan continues with them).
    while (off + 8 <= data.size()) {
      uint32_t len, crc;
      std::memcpy(&len, data.data() + off, 4);
      std::memcpy(&crc, data.data() + off + 4, 4);
      if (len > kMaxRecordBytes || off + 8 + len > data.size()) break;
      const uint8_t* body = data.data() + off + 8;
      if (WalCrc32(body, len) != crc) break;
      WalRecord rec;
      if (!WalRecord::DecodeBody(body, len, &rec).ok()) break;
      if (rec.lsn <= last_lsn) break;  // stale bytes past a truncation
      last_lsn = rec.lsn;
      fn(rec);
      off += 8 + len;
    }
    if (truncated_bytes != nullptr && off < data.size()) {
      *truncated_bytes += data.size() - off;
    }
  }
  return Status::OK();
}

}  // namespace hd
