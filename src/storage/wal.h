// Write-ahead log: the durability substrate (ROADMAP item 2).
//
// Everything else in this engine models I/O through DiskModel; the WAL is
// the one component doing REAL file I/O, because its whole point is to
// survive `kill -9`. The design is ARIES-lite with logical redo:
//
//   - The log is an append-only sequence of CRC-framed records in
//     fixed-capacity segment files (`wal-<seq>.log` under <dir>/wal/).
//     Every record carries an LSN from a single monotonic allocator.
//   - Records are *logical table-level* mutations (insert/update/delete
//     with packed row images, strings spelled out so dictionaries
//     rebuild), transaction commit/abort marks, and a "reorg applied"
//     mark for the columnstore tuple mover. Physical page contents are
//     never logged — recovery replays the logical operations against
//     structures rebuilt from the last checkpoint, which reproduces
//     heap pages, B+ trees, and CSI row groups deterministically.
//   - WAL rule: callers append a record (getting its LSN) BEFORE applying
//     the mutation, stamp the touched structures with that LSN, and a
//     checkpoint only persists state after EnsureDurable(lsn) has fsynced
//     the log past every stamped LSN (BufferPool::CleanUpTo enforces it).
//   - Group commit: in kGroup mode committing transactions park on a
//     commit queue while a dedicated log writer batches everything
//     pending and fsyncs ONCE per window, so update throughput scales
//     with writer concurrency instead of paying one fsync per txn.
//     kCommit fsyncs synchronously per commit; kOff means no WAL at all.
//   - Fsync failure: durable_lsn only advances on a SUCCESSFUL fsync.
//     An injected (failpoint) fault is transient — kCommit surfaces it to
//     the committer (durability unknown), the group writer retries the
//     batch next window and parked committers wait it out. A real
//     write/fsync syscall failure poisons the log: the kernel may have
//     dropped the dirty pages, so every later append/commit/barrier
//     fails until restart recovery re-reads what actually reached disk.
//
// Failpoint seams (docs/ROBUSTNESS.md): `wal.append` (record append),
// `wal.fsync` (group/commit fsync), `wal.checkpoint` (checkpoint write;
// armed in catalog/recovery.cc), `recovery.redo` (replay loop).
//
// Telemetry (docs/OBSERVABILITY.md): wal.appends, wal.bytes, wal.fsyncs,
// wal.group_size, wal.flush_wait_ns; recovery.* counters are published by
// catalog/recovery.cc.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace hd {

/// How a commit becomes durable. Parsed from --durability=<off|commit|group>.
enum class DurabilityMode {
  kOff,     // no WAL: everything volatile (the pre-durability engine)
  kCommit,  // append + fsync synchronously inside every commit
  kGroup,   // commits park; the log writer batches one fsync per window
};

const char* DurabilityModeName(DurabilityMode m);
bool ParseDurabilityMode(const std::string& s, DurabilityMode* out);

/// CRC32 (IEEE, reflected) over a byte range — the record frame checksum.
uint32_t WalCrc32(const uint8_t* data, size_t n);

enum class WalRecordType : uint8_t {
  kTxnCommit = 1,
  kTxnAbort = 2,
  kInsert = 3,   // rid + new row image
  kUpdate = 4,   // rid + old row image + new row image
  kDelete = 5,   // rid + old row image (secondary keys need it to redo)
  kCsiReorg = 6, // tuple mover ran on (table, index); replayed for layout
};

/// One logged column value. Strings travel as text so recovery can rebuild
/// dictionary codes no matter what the crash did to in-memory dicts.
struct WalValue {
  enum class Tag : uint8_t { kPacked = 0, kString = 1, kNull = 2 };
  Tag tag = Tag::kPacked;
  int64_t packed = 0;
  std::string str;

  static WalValue Packed(int64_t v) {
    WalValue w;
    w.packed = v;
    return w;
  }
  static WalValue Str(std::string s) {
    WalValue w;
    w.tag = Tag::kString;
    w.str = std::move(s);
    return w;
  }
  static WalValue Null() {
    WalValue w;
    w.tag = Tag::kNull;
    return w;
  }
};

using WalRow = std::vector<WalValue>;

/// One decoded log record. `txn` 0 is reserved for records that are
/// logically self-committed (e.g. kCsiReorg).
struct WalRecord {
  uint64_t lsn = 0;  // assigned by Append
  WalRecordType type = WalRecordType::kInsert;
  uint64_t txn = 0;
  uint32_t table_id = 0;
  int64_t rid = -1;
  WalRow old_row;  // kUpdate / kDelete
  WalRow new_row;  // kInsert / kUpdate
  std::string aux; // kCsiReorg: secondary index name ("" = primary CSI)

  void EncodeBody(std::vector<uint8_t>* out) const;
  /// Decode from a body buffer (after the frame was CRC-verified).
  static Status DecodeBody(const uint8_t* data, size_t n, WalRecord* out);
};

struct WalOptions {
  /// Rotate to a new segment once the current one exceeds this.
  uint64_t segment_bytes = 8ull << 20;
  /// kGroup: the writer sleeps at most this long before flushing whatever
  /// accumulated (commits are woken as soon as their batch is durable, so
  /// this is a latency cap, not a floor).
  int group_window_us = 500;
};

/// Append-only segmented log with group commit. Thread-safe.
class WalManager {
 public:
  WalManager(std::string dir, DurabilityMode mode, WalOptions opts = {});
  ~WalManager();

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Create <dir> (and <dir>/wal/) if needed and open a fresh segment for
  /// appends, starting LSN/txn allocation at the given values (recovery
  /// passes the maxima it observed + 1; a fresh database passes 1).
  /// Starts the group-commit writer in kGroup mode.
  Status Open(uint64_t next_lsn, uint64_t next_txn);

  DurabilityMode mode() const { return mode_; }
  const std::string& dir() const { return dir_; }
  bool open() const { return fd_ >= 0; }

  /// Allocate a WAL transaction id (never reused across restarts —
  /// recovery re-seeds the counter past everything in the log).
  uint64_t AllocTxnId();

  /// Frame + buffer one record, assigning its LSN (returned via the
  /// record and `*lsn_out` when non-null). The record is durable only
  /// after the commit protocol (or an explicit Sync). Fails on the
  /// `wal.append` failpoint — callers must then NOT apply the mutation.
  Status Append(WalRecord* rec, uint64_t* lsn_out = nullptr);

  /// Append the commit record for `txn` and make it durable per mode:
  /// kCommit = synchronous fsync; kGroup = park until the writer's batch
  /// fsync covers our LSN. Returns the fsync failure if durability could
  /// not be established (the commit must then be reported failed).
  Status Commit(uint64_t txn);

  /// Append the abort record for `txn` (no durability wait — an aborted
  /// transaction that vanishes in a crash aborts "harder").
  Status Abort(uint64_t txn);

  /// Write buffered records to the OS (no fsync).
  Status Flush();
  /// Flush + fsync everything appended so far.
  Status Sync();
  /// Ensure the log is durable at least through `lsn` (checkpoint's WAL
  /// rule). No-op when already durable.
  Status EnsureDurable(uint64_t lsn);

  uint64_t next_lsn() const;
  /// Highest LSN known fsynced.
  uint64_t durable_lsn() const;
  /// First LSN of the oldest transaction with logged-but-unresolved
  /// records, or 0 when none — the fuzzy checkpoint's undo horizon.
  uint64_t OldestActiveTxnLsn() const;

  /// Delete whole segments whose records all have LSN < `lsn` (checkpoint
  /// truncation). The active segment is never deleted.
  Status TruncateBelow(uint64_t lsn);

  uint64_t fsyncs() const { return fsyncs_; }
  uint64_t appends() const { return appends_; }

  /// Scan every segment under <dir>/wal/ in LSN order, invoking `fn` per
  /// CRC-valid record. Stops cleanly (Status::OK) at the first torn or
  /// corrupt frame — everything after a bad frame is unreachable tail by
  /// the append-only contract — reporting the count of discarded tail
  /// bytes in `*truncated_bytes` (may be non-null). Used by recovery
  /// before any WalManager is opened for appends.
  static Status ReadLog(const std::string& dir,
                        const std::function<void(const WalRecord&)>& fn,
                        uint64_t* truncated_bytes = nullptr);

  static std::string WalDir(const std::string& dir);

 private:
  Status OpenSegmentLocked();
  Status WriteLocked(const uint8_t* data, size_t n);
  /// Write buffered frames to the OS under mu_; poisons the log on a real
  /// write failure (the byte stream position is then unknown).
  Status FlushBufferLocked();
  /// Flush buffer + fsync under mu_ held by the caller (kCommit path).
  Status SyncLocked();
  void WriterLoop();
  void FrameRecordLocked(WalRecord* rec, std::vector<uint8_t>* out);

  const std::string dir_;
  const DurabilityMode mode_;
  const WalOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // writer: work available / stop
  std::condition_variable durable_cv_;  // committers: durable_lsn_ advanced
  std::vector<uint8_t> buffer_;         // framed records not yet written
  uint64_t buffer_begin_lsn_ = 0;       // first lsn in buffer_ (0 = empty)
  uint64_t buffer_end_lsn_ = 0;         // last lsn in buffer_
  uint64_t pending_commits_ = 0;        // commit records in buffer_
  uint64_t next_lsn_ = 1;
  uint64_t written_lsn_ = 0;   // last lsn handed to the OS
  uint64_t durable_lsn_ = 0;   // last lsn fsynced; only ever advances on a
                               // SUCCESSFUL fsync
  /// Non-OK once a real write/fsync syscall failed: the kernel may have
  /// dropped dirty pages (fsyncgate), so no later success can prove the
  /// earlier bytes reached disk. Every subsequent Append/Commit/
  /// EnsureDurable/Sync fails with this status until restart+recovery.
  /// Injected (failpoint) faults do NOT poison — they model transient
  /// failures the group writer retries.
  Status poison_;
  std::map<uint64_t, uint64_t> active_txn_first_lsn_;
  std::atomic<uint64_t> next_txn_{1};

  int fd_ = -1;
  uint64_t segment_seq_ = 0;
  uint64_t segment_bytes_written_ = 0;
  uint64_t segment_first_lsn_ = 0;
  /// (first_lsn, path) of closed segments, for truncation.
  std::vector<std::pair<uint64_t, std::string>> closed_segments_;

  std::thread writer_;
  bool stop_ = false;

  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> appends_{0};
};

}  // namespace hd
