#include "storage/buffer_pool.h"

#include <cassert>

#include "common/failpoint.h"
#include "common/telemetry.h"

namespace hd {

namespace {

// Process-wide buffer-pool telemetry (docs/OBSERVABILITY.md). Gauges are
// updated by delta so they aggregate correctly across pool instances.
struct BpStats {
  TCounter* hits = Telemetry::Instance().Counter("bp.hits");
  TCounter* misses = Telemetry::Instance().Counter("bp.misses");
  TCounter* evictions = Telemetry::Instance().Counter("bp.evictions");
  TGauge* resident = Telemetry::Instance().Gauge("bp.resident_bytes");
  TGauge* total = Telemetry::Instance().Gauge("bp.total_bytes");
  TGauge* dirty = Telemetry::Instance().Gauge("bp.dirty_extents");
};

BpStats& Stats() {
  static BpStats s;
  return s;
}

}  // namespace

BufferPool::BufferPool(DiskModel* disk, uint64_t capacity_bytes)
    : disk_(disk), capacity_(capacity_bytes), shards_(kNumShards) {}

BufferPool::~BufferPool() {
  // Return this pool's contribution to the process gauges: extents die
  // with the pool whether or not callers Unregistered them.
  Stats().resident->Add(-static_cast<int64_t>(resident_bytes_.load()));
  Stats().total->Add(-static_cast<int64_t>(total_bytes_.load()));
}

ExtentId BufferPool::Register(uint64_t bytes) {
  if (FailPoints::AnyArmed() &&
      !FailPoints::Instance().Evaluate("bufferpool.register").ok()) {
    // Injected allocation failure: the caller gets an untracked extent.
    // Access/Resize/Unregister on it are no-ops, so data built under the
    // failure stays reachable — it just never charges simulated I/O.
    return kInvalidExtent;
  }
  ExtentId id = next_id_.fetch_add(1);
  Shard& s = ShardFor(id);
  {
    std::lock_guard<std::mutex> g(s.mu);
    Entry e;
    e.bytes = bytes;
    e.resident = true;
    s.lru.push_front(id);
    e.lru_pos = s.lru.begin();
    e.in_lru = true;
    s.entries.emplace(id, e);
    resident_bytes_ += bytes;
    total_bytes_ += bytes;
  }
  Stats().resident->Add(static_cast<int64_t>(bytes));
  Stats().total->Add(static_cast<int64_t>(bytes));
  // Outside the shard lock: EvictIfNeeded re-locks every shard, including
  // this one (self-deadlock under registration pressure otherwise).
  EvictIfNeeded();
  return id;
}

void BufferPool::Resize(ExtentId id, uint64_t bytes) {
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> g(s.mu);
  auto it = s.entries.find(id);
  if (it == s.entries.end()) return;
  const int64_t delta =
      static_cast<int64_t>(bytes) - static_cast<int64_t>(it->second.bytes);
  total_bytes_ += bytes - it->second.bytes;
  Stats().total->Add(delta);
  if (it->second.resident) {
    resident_bytes_ += bytes - it->second.bytes;
    Stats().resident->Add(delta);
  }
  it->second.bytes = bytes;
}

void BufferPool::Unregister(ExtentId id) {
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> g(s.mu);
  auto it = s.entries.find(id);
  if (it == s.entries.end()) return;
  if (it->second.in_lru) s.lru.erase(it->second.lru_pos);
  if (it->second.resident) {
    resident_bytes_ -= it->second.bytes;
    Stats().resident->Add(-static_cast<int64_t>(it->second.bytes));
  }
  total_bytes_ -= it->second.bytes;
  Stats().total->Add(-static_cast<int64_t>(it->second.bytes));
  s.entries.erase(it);
  if (s.dirty.erase(id) != 0) Stats().dirty->Add(-1);
}

Status BufferPool::Access(ExtentId id, IoPattern pattern, QueryMetrics* m) {
  Shard& s = ShardFor(id);
  {
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.entries.find(id);
    if (it == s.entries.end()) return Status::OK();
    Entry& e = it->second;
    if (m != nullptr) {
      m->pages_read += (e.bytes + kPageBytes - 1) / kPageBytes;
    }
    if (e.in_lru) s.lru.erase(e.lru_pos);
    s.lru.push_front(id);
    e.lru_pos = s.lru.begin();
    e.in_lru = true;
    if (e.resident) {
      Stats().hits->Add(1);
      return Status::OK();  // hit: no I/O
    }
    // Miss: the read must succeed before residency flips, so an injected
    // read failure leaves the extent cold and the next access retries.
    Stats().misses->Add(1);
    HD_RETURN_IF_ERROR(disk_->Read(e.bytes, pattern, m));
    e.resident = true;
    resident_bytes_ += e.bytes;
    Stats().resident->Add(static_cast<int64_t>(e.bytes));
  }
  EvictIfNeeded();
  return Status::OK();
}

bool BufferPool::IsResident(ExtentId id) const {
  const Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> g(s.mu);
  auto it = s.entries.find(id);
  return it != s.entries.end() && it->second.resident;
}

void BufferPool::EvictAll() {
  int64_t freed = 0;
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    for (auto& [id, e] : s.entries) {
      if (e.resident) {
        e.resident = false;
        resident_bytes_ -= e.bytes;
        freed += static_cast<int64_t>(e.bytes);
      }
    }
  }
  Stats().resident->Add(-freed);
}

void BufferPool::WarmAll() {
  int64_t warmed = 0;
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    for (auto& [id, e] : s.entries) {
      if (!e.resident) {
        e.resident = true;
        resident_bytes_ += e.bytes;
        warmed += static_cast<int64_t>(e.bytes);
      }
    }
  }
  Stats().resident->Add(warmed);
}

uint64_t BufferPool::resident_bytes() const { return resident_bytes_.load(); }
uint64_t BufferPool::total_bytes() const { return total_bytes_.load(); }

void BufferPool::MarkDirty(ExtentId id, uint64_t lsn) {
  if (id == kInvalidExtent) return;
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> g(s.mu);
  if (s.entries.find(id) == s.entries.end()) return;
  auto [it, inserted] = s.dirty.try_emplace(id, lsn);
  if (!inserted) {
    it->second = std::max(it->second, lsn);
  } else {
    Stats().dirty->Add(1);
  }
}

Status BufferPool::CleanUpTo(uint64_t horizon, uint64_t durable_lsn) {
  // Only extents the snapshot could have captured (lsn <= horizon) are
  // subject to the WAL rule here; concurrent DML legitimately dirties
  // extents past the horizon while the checkpoint is in flight.
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    for (const auto& [id, lsn] : s.dirty) {
      if (lsn <= horizon && lsn > durable_lsn) {
        return Status::Internal(
            "WAL rule violation: dirty extent " + std::to_string(id) +
            " at lsn " + std::to_string(lsn) + " > durable " +
            std::to_string(durable_lsn));
      }
    }
  }
  int64_t cleaned = 0;
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    for (auto it = s.dirty.begin(); it != s.dirty.end();) {
      if (it->second <= horizon) {
        it = s.dirty.erase(it);
        ++cleaned;
      } else {
        ++it;
      }
    }
  }
  Stats().dirty->Add(-cleaned);
  return Status::OK();
}

uint64_t BufferPool::min_dirty_lsn() const {
  uint64_t lo = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    for (const auto& [id, lsn] : s.dirty) {
      if (lo == 0 || lsn < lo) lo = lsn;
    }
  }
  return lo;
}

uint64_t BufferPool::dirty_extents() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    n += s.dirty.size();
  }
  return n;
}

void BufferPool::EvictIfNeeded() {
  if (capacity_ == 0) return;
  if (FailPoints::AnyArmed() &&
      !FailPoints::Instance().Evaluate("bufferpool.evict").ok()) {
    // Injected eviction failure: skip this sweep. The pool runs over
    // capacity transiently; a later Register/Access re-attempts.
    return;
  }
  // Best-effort: sweep shards evicting LRU tails until under capacity.
  uint64_t evicted = 0;
  int64_t freed = 0;
  for (auto& s : shards_) {
    if (resident_bytes_.load() <= capacity_) break;
    std::lock_guard<std::mutex> g(s.mu);
    while (resident_bytes_.load() > capacity_ && !s.lru.empty()) {
      ExtentId victim = s.lru.back();
      auto it = s.entries.find(victim);
      assert(it != s.entries.end());
      s.lru.pop_back();
      it->second.in_lru = false;
      if (it->second.resident) {
        it->second.resident = false;
        resident_bytes_ -= it->second.bytes;
        freed += static_cast<int64_t>(it->second.bytes);
        ++evicted;
      }
    }
  }
  if (evicted != 0) {
    Stats().evictions->Add(evicted);
    Stats().resident->Add(-freed);
  }
}

}  // namespace hd
