#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <optional>

#include "obs/query_store.h"

namespace hd {

namespace {

// ---------------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------------

enum class Tok {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // punctuation / operators
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;  // uppercased for idents
  std::string raw;   // original spelling
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string s) : s_(std::move(s)) { Advance(); }

  const Token& cur() const { return cur_; }

  void Advance() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
    cur_.pos = i_;
    if (i_ >= s_.size()) {
      cur_ = {Tok::kEnd, "", "", i_};
      return;
    }
    const char c = s_[i_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i_;
      while (j < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[j])) || s_[j] == '_')) {
        ++j;
      }
      cur_.kind = Tok::kIdent;
      cur_.raw = s_.substr(i_, j - i_);
      cur_.text = Upper(cur_.raw);
      i_ = j;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i_ + 1 < s_.size() &&
         std::isdigit(static_cast<unsigned char>(s_[i_ + 1])))) {
      size_t j = i_ + 1;
      bool is_float = false;
      while (j < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[j])) || s_[j] == '.')) {
        is_float |= s_[j] == '.';
        ++j;
      }
      cur_.kind = Tok::kNumber;
      cur_.raw = s_.substr(i_, j - i_);
      cur_.text = is_float ? "F" : "I";
      i_ = j;
      return;
    }
    if (c == '\'') {
      size_t j = i_ + 1;
      while (j < s_.size() && s_[j] != '\'') ++j;
      cur_.kind = Tok::kString;
      cur_.raw = s_.substr(i_ + 1, j - i_ - 1);
      cur_.text = cur_.raw;
      i_ = j < s_.size() ? j + 1 : j;
      return;
    }
    // Two-char operators.
    if ((c == '<' || c == '>') && i_ + 1 < s_.size() && s_[i_ + 1] == '=') {
      cur_ = {Tok::kSymbol, std::string(1, c) + "=", std::string(1, c) + "=",
              i_};
      i_ += 2;
      return;
    }
    cur_ = {Tok::kSymbol, std::string(1, c), std::string(1, c), i_};
    ++i_;
  }

  static std::string Upper(std::string s) {
    for (auto& ch : s) ch = static_cast<char>(std::toupper(ch));
    return s;
  }

 private:
  std::string s_;
  size_t i_ = 0;
  Token cur_;
};

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

class Parser {
 public:
  Parser(const Database& db, const std::string& sql) : db_(db), lex_(sql) {}

  Result<Query> Parse() {
    Query::ExplainMode explain = Query::ExplainMode::kNone;
    if (Accept("EXPLAIN")) {
      explain = Accept("ANALYZE") ? Query::ExplainMode::kAnalyze
                                  : Query::ExplainMode::kPlan;
    }
    Result<Query> r = ParseStatement();
    if (r.ok()) r.value().explain = explain;
    return r;
  }

 private:
  Result<Query> ParseStatement() {
    if (Accept("SELECT")) return ParseSelect();
    if (Accept("UPDATE")) return ParseUpdate();
    if (Accept("DELETE")) return ParseDelete();
    if (Accept("INSERT")) return ParseInsert();
    return Err("expected SELECT, UPDATE, DELETE, or INSERT");
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(
        msg + " at position " + std::to_string(lex_.cur().pos) + " near '" +
        lex_.cur().raw + "'");
  }

  bool Accept(const std::string& kw) {
    if (lex_.cur().kind == Tok::kIdent && lex_.cur().text == kw) {
      lex_.Advance();
      return true;
    }
    return false;
  }
  bool AcceptSym(const std::string& s) {
    if (lex_.cur().kind == Tok::kSymbol && lex_.cur().text == s) {
      lex_.Advance();
      return true;
    }
    return false;
  }
  bool Peek(const std::string& kw) const {
    return lex_.cur().kind == Tok::kIdent && lex_.cur().text == kw;
  }

  Status Expect(const std::string& kw) {
    if (!Accept(kw)) return Err("expected " + kw);
    return Status::OK();
  }
  Status ExpectSym(const std::string& s) {
    if (!AcceptSym(s)) return Err("expected '" + s + "'");
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (lex_.cur().kind != Tok::kIdent) return Err("expected identifier");
    std::string raw = lex_.cur().raw;
    lex_.Advance();
    return raw;
  }

  // ---- name resolution ----

  /// Tables visible to the statement: index 0 = base, i = joins[i-1].
  struct Scope {
    std::vector<std::string> names;
    std::vector<Table*> tables;
  };

  Result<ColRef> ResolveColumn(const std::string& raw_first) {
    std::string tbl, col;
    if (AcceptSym(".")) {
      HD_ASSIGN_OR_RETURN(col, ExpectIdent());
      tbl = raw_first;
    } else {
      col = raw_first;
    }
    if (!tbl.empty()) {
      for (size_t t = 0; t < scope_.names.size(); ++t) {
        if (scope_.names[t] == tbl) {
          const int c = scope_.tables[t]->schema().Find(col);
          if (c < 0) return Err("no column '" + col + "' in " + tbl);
          return ColRef{static_cast<int>(t), c};
        }
      }
      return Err("table '" + tbl + "' not in FROM/JOIN");
    }
    std::optional<ColRef> found;
    for (size_t t = 0; t < scope_.names.size(); ++t) {
      const int c = scope_.tables[t]->schema().Find(col);
      if (c >= 0) {
        if (found.has_value()) return Err("ambiguous column '" + col + "'");
        found = ColRef{static_cast<int>(t), c};
      }
    }
    if (!found) return Err("unknown column '" + col + "'");
    return *found;
  }

  Result<ColRef> ParseColumnRef() {
    HD_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    return ResolveColumn(first);
  }

  Result<Value> ParseLiteral() {
    const Token t = lex_.cur();
    if (t.kind == Tok::kNumber) {
      lex_.Advance();
      if (t.text == "F") return Value::Double(std::stod(t.raw));
      return Value::Int64(std::stoll(t.raw));
    }
    if (t.kind == Tok::kString) {
      lex_.Advance();
      return Value::String(t.raw);
    }
    return Err("expected literal");
  }

  // ---- expressions (for aggregates) ----

  Result<Expr> ParseExpr() { return ParseAddSub(); }

  Result<Expr> ParseAddSub() {
    HD_ASSIGN_OR_RETURN(Expr lhs, ParseMul());
    while (true) {
      if (AcceptSym("+")) {
        HD_ASSIGN_OR_RETURN(Expr rhs, ParseMul());
        lhs = Expr::Add(std::move(lhs), std::move(rhs));
      } else if (AcceptSym("-")) {
        HD_ASSIGN_OR_RETURN(Expr rhs, ParseMul());
        lhs = Expr::Sub(std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<Expr> ParseMul() {
    HD_ASSIGN_OR_RETURN(Expr lhs, ParseAtom());
    while (AcceptSym("*")) {
      HD_ASSIGN_OR_RETURN(Expr rhs, ParseAtom());
      lhs = Expr::Mul(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseAtom() {
    if (AcceptSym("(")) {
      HD_ASSIGN_OR_RETURN(Expr e, ParseExpr());
      HD_RETURN_IF_ERROR(ExpectSym(")"));
      return e;
    }
    if (lex_.cur().kind == Tok::kNumber) {
      HD_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      return Expr::Const(v.AsDouble());
    }
    HD_ASSIGN_OR_RETURN(ColRef c, ParseColumnRef());
    return Expr::Col(c);
  }

  // ---- predicates ----

  Status ParseWhere(Query* q) {
    do {
      HD_ASSIGN_OR_RETURN(ColRef c, ParseColumnRef());
      Pred p;
      p.col = c.col;
      if (Accept("BETWEEN")) {
        HD_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
        HD_RETURN_IF_ERROR(Expect("AND"));
        HD_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
        p = Pred::Between(c.col, std::move(lo), std::move(hi));
      } else if (AcceptSym("=")) {
        HD_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        p = Pred::Eq(c.col, std::move(v));
      } else if (AcceptSym("<=")) {
        HD_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        p = Pred::Le(c.col, std::move(v));
      } else if (AcceptSym("<")) {
        HD_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        p = Pred::Lt(c.col, std::move(v));
      } else if (AcceptSym(">=")) {
        HD_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        p = Pred::Ge(c.col, std::move(v));
      } else if (AcceptSym(">")) {
        HD_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        p = Pred::Gt(c.col, std::move(v));
      } else {
        return Err("expected comparison operator");
      }
      if (c.table == 0) {
        q->base.preds.push_back(std::move(p));
      } else {
        q->joins[c.table - 1].dim.preds.push_back(std::move(p));
      }
    } while (Accept("AND"));
    return Status::OK();
  }

  // ---- statements ----

  // SELECT items are captured verbatim until FROM, the scope is resolved
  // from FROM/JOIN, then the items are parsed with names bound.
  Result<Query> ParseSelect();
  Result<Query> ParseUpdate();
  Result<Query> ParseDelete();
  Result<Query> ParseInsert();

  Status ResolveFromAndJoins(Query* q);

  const Database& db_;
  Lexer lex_;
  Scope scope_;
  std::string pending_items_;
};

// SELECT is parsed by first capturing the item list verbatim, resolving
// FROM/JOIN to build the scope, then parsing the items with names bound.
Result<Query> Parser::ParseSelect() {
  // Capture item tokens verbatim until FROM.
  std::string items;
  int depth = 0;
  while (true) {
    const Token& t = lex_.cur();
    if (t.kind == Tok::kEnd) return Err("expected FROM");
    if (t.kind == Tok::kIdent && t.text == "FROM" && depth == 0) break;
    if (t.kind == Tok::kSymbol && t.text == "(") ++depth;
    if (t.kind == Tok::kSymbol && t.text == ")") --depth;
    if (t.kind == Tok::kString) {
      items += "'" + t.raw + "'";
    } else {
      items += t.raw;
    }
    items += " ";
    lex_.Advance();
  }
  lex_.Advance();  // FROM

  Query q;
  HD_RETURN_IF_ERROR(ResolveFromAndJoins(&q));

  // Parse the captured items with the scope in place.
  Lexer item_lex(items);
  std::swap(lex_, item_lex);
  bool star = false;
  do {
    if (AcceptSym("*")) {
      star = true;
      continue;
    }
    if (Peek("COUNT")) {
      lex_.Advance();
      HD_RETURN_IF_ERROR(ExpectSym("("));
      HD_RETURN_IF_ERROR(ExpectSym("*"));
      HD_RETURN_IF_ERROR(ExpectSym(")"));
      q.aggs.push_back(AggSpec::CountStar());
      continue;
    }
    bool agg_handled = false;
    for (auto [kw, fn] : {std::pair{"SUM", AggSpec::Fn::kSum},
                          {"MIN", AggSpec::Fn::kMin},
                          {"MAX", AggSpec::Fn::kMax},
                          {"AVG", AggSpec::Fn::kAvg}}) {
      if (Peek(kw)) {
        lex_.Advance();
        HD_RETURN_IF_ERROR(ExpectSym("("));
        HD_ASSIGN_OR_RETURN(Expr e, ParseExpr());
        HD_RETURN_IF_ERROR(ExpectSym(")"));
        AggSpec a;
        a.fn = fn;
        a.arg = std::move(e);
        a.label = Lexer::Upper(kw);
        q.aggs.push_back(std::move(a));
        agg_handled = true;
        break;
      }
    }
    if (agg_handled) continue;
    HD_ASSIGN_OR_RETURN(ColRef c, ParseColumnRef());
    q.select_cols.push_back(c);
  } while (AcceptSym(","));
  if (lex_.cur().kind != Tok::kEnd) {
    Status s = Err("unexpected token in select list");
    std::swap(lex_, item_lex);
    return s;
  }
  std::swap(lex_, item_lex);

  if (star && (!q.aggs.empty() || !q.select_cols.empty())) {
    return Err("'*' cannot be combined with other select items");
  }

  if (Accept("WHERE")) HD_RETURN_IF_ERROR(ParseWhere(&q));
  if (Accept("GROUP")) {
    HD_RETURN_IF_ERROR(Expect("BY"));
    do {
      HD_ASSIGN_OR_RETURN(ColRef c, ParseColumnRef());
      q.group_by.push_back(c);
    } while (AcceptSym(","));
  }
  if (Accept("ORDER")) {
    HD_RETURN_IF_ERROR(Expect("BY"));
    do {
      HD_ASSIGN_OR_RETURN(ColRef c, ParseColumnRef());
      q.order_by.push_back(c);
    } while (AcceptSym(","));
  }
  if (Accept("LIMIT")) {
    HD_ASSIGN_OR_RETURN(Value v, ParseLiteral());
    q.limit = v.AsInt64();
  }
  if (lex_.cur().kind != Tok::kEnd && !AcceptSym(";")) {
    return Err("unexpected trailing input");
  }
  if (!q.aggs.empty() && !q.select_cols.empty()) {
    // Plain columns next to aggregates must be GROUP BY columns; grouped
    // output is emitted as (group columns..., aggregates...), so they are
    // dropped from the projection here.
    for (const ColRef& c : q.select_cols) {
      if (std::find(q.group_by.begin(), q.group_by.end(), c) ==
          q.group_by.end()) {
        return Err("column in SELECT with aggregates must appear in GROUP BY");
      }
    }
    q.select_cols.clear();
  }
  return q;
}

Status Parser::ResolveFromAndJoins(Query* q) {
  HD_ASSIGN_OR_RETURN(std::string base, ExpectIdent());
  Table* bt = db_.GetTable(base);
  if (bt == nullptr) return Err("unknown table '" + base + "'");
  q->base.table = base;
  scope_.names = {base};
  scope_.tables = {bt};
  while (Accept("JOIN")) {
    HD_ASSIGN_OR_RETURN(std::string dim, ExpectIdent());
    Table* dt = db_.GetTable(dim);
    if (dt == nullptr) return Err("unknown table '" + dim + "'");
    JoinClause jc;
    jc.dim.table = dim;
    q->joins.push_back(jc);
    scope_.names.push_back(dim);
    scope_.tables.push_back(dt);
    HD_RETURN_IF_ERROR(Expect("ON"));
    HD_ASSIGN_OR_RETURN(ColRef a, ParseColumnRef());
    HD_RETURN_IF_ERROR(ExpectSym("="));
    HD_ASSIGN_OR_RETURN(ColRef b, ParseColumnRef());
    const int this_dim = static_cast<int>(q->joins.size());
    if (a.table == 0 && b.table == this_dim) {
      q->joins.back().base_col = a.col;
      q->joins.back().dim_col = b.col;
    } else if (b.table == 0 && a.table == this_dim) {
      q->joins.back().base_col = b.col;
      q->joins.back().dim_col = a.col;
    } else {
      return Err("JOIN condition must correlate the FROM table with the "
                 "joined table");
    }
  }
  return Status::OK();
}

Result<Query> Parser::ParseUpdate() {
  Query q;
  q.kind = Query::Kind::kUpdate;
  HD_RETURN_IF_ERROR(ResolveFromAndJoins(&q));
  HD_RETURN_IF_ERROR(Expect("SET"));
  do {
    HD_ASSIGN_OR_RETURN(ColRef c, ParseColumnRef());
    if (c.table != 0) return Err("UPDATE can only set base-table columns");
    HD_RETURN_IF_ERROR(ExpectSym("="));
    // Either `col = col +/- number` or `col = literal`.
    if (lex_.cur().kind == Tok::kIdent) {
      HD_ASSIGN_OR_RETURN(ColRef same, ParseColumnRef());
      if (!(same == c)) return Err("SET col = <other col> unsupported");
      double sign = 1;
      if (AcceptSym("-")) {
        sign = -1;
      } else if (!AcceptSym("+")) {
        return Err("expected + or - in SET expression");
      }
      HD_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      q.sets.push_back(UpdateSet::Add(c.col, sign * v.AsDouble()));
    } else {
      HD_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      q.sets.push_back(UpdateSet::Assign(c.col, std::move(v)));
    }
  } while (AcceptSym(","));
  if (Accept("WHERE")) HD_RETURN_IF_ERROR(ParseWhere(&q));
  if (Accept("LIMIT")) {
    HD_ASSIGN_OR_RETURN(Value v, ParseLiteral());
    q.limit = v.AsInt64();
  }
  return q;
}

Result<Query> Parser::ParseDelete() {
  Query q;
  q.kind = Query::Kind::kDelete;
  HD_RETURN_IF_ERROR(Expect("FROM"));
  HD_RETURN_IF_ERROR(ResolveFromAndJoins(&q));
  if (Accept("WHERE")) HD_RETURN_IF_ERROR(ParseWhere(&q));
  if (Accept("LIMIT")) {
    HD_ASSIGN_OR_RETURN(Value v, ParseLiteral());
    q.limit = v.AsInt64();
  }
  return q;
}

Result<Query> Parser::ParseInsert() {
  Query q;
  q.kind = Query::Kind::kInsert;
  HD_RETURN_IF_ERROR(Expect("INTO"));
  HD_ASSIGN_OR_RETURN(std::string tbl, ExpectIdent());
  Table* t = db_.GetTable(tbl);
  if (t == nullptr) return Err("unknown table '" + tbl + "'");
  q.base.table = tbl;
  scope_.names = {tbl};
  scope_.tables = {t};
  HD_RETURN_IF_ERROR(Expect("VALUES"));
  do {
    HD_RETURN_IF_ERROR(ExpectSym("("));
    std::vector<Value> row;
    do {
      HD_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      row.push_back(std::move(v));
    } while (AcceptSym(","));
    HD_RETURN_IF_ERROR(ExpectSym(")"));
    if (static_cast<int>(row.size()) != t->num_columns()) {
      return Err("VALUES row has " + std::to_string(row.size()) +
                 " values; table has " + std::to_string(t->num_columns()) +
                 " columns");
    }
    q.insert_rows.push_back(std::move(row));
  } while (AcceptSym(","));
  return q;
}

}  // namespace

Result<Query> ParseSql(const Database& db, const std::string& sql) {
  Parser p(db, sql);
  HD_ASSIGN_OR_RETURN(Query q, p.Parse());
  q.id = sql.substr(0, 40);
  return q;
}

std::string NormalizeSql(const std::string& sql) {
  Lexer lex(sql);
  std::string out;
  out.reserve(sql.size());
  while (lex.cur().kind != Tok::kEnd) {
    const Token& t = lex.cur();
    if (!out.empty()) out += ' ';
    switch (t.kind) {
      case Tok::kNumber:
      case Tok::kString:
        out += '?';
        break;
      default:
        // Idents arrive uppercased in .text; symbols are verbatim.
        out += t.text;
    }
    lex.Advance();
  }
  return out;
}

uint64_t FingerprintSql(const std::string& sql) {
  return FingerprintText(NormalizeSql(sql));
}

}  // namespace hd
