// A small SQL dialect over the engine's query algebra.
//
// Grammar (case-insensitive keywords):
//
//   [EXPLAIN [ANALYZE]] <statement>
//     EXPLAIN prints the chosen physical plan with optimizer estimates
//     and does not execute; EXPLAIN ANALYZE executes and annotates each
//     operator with its actual counters (see docs/OBSERVABILITY.md).
//     Query::explain carries the mode; execution is the caller's choice.
//
//   SELECT <item> [, <item>]*
//     FROM <table>
//     [JOIN <table> ON <tbl.col> = <tbl.col>]*
//     [WHERE <pred> [AND <pred>]*]
//     [GROUP BY <col> [, <col>]*]
//     [ORDER BY <col> [, <col>]*]
//     [LIMIT <n>]
//
//   UPDATE <table> SET <col> = <col> + <num> | <col> = <literal> [, ...]
//     [WHERE ...] [LIMIT <n>]
//
//   DELETE FROM <table> [WHERE ...]
//
//   INSERT INTO <table> VALUES (<literal>, ...) [, (...)]*
//
//   item  := * | <col> | SUM(<expr>) | COUNT(*) | MIN(<col>) | MAX(<col>)
//          | AVG(<expr>)
//   expr  := arithmetic +, -, * over columns, numeric literals, parens
//   pred  := <col> (= | < | <= | > | >=) <literal>
//          | <col> BETWEEN <literal> AND <literal>
//   literal := integer | float | 'string'
//
// Column names resolve against the Database catalog: unqualified names
// must be unambiguous across the statement's tables; qualified names use
// `table.column`. The FROM table is the query's base; each JOIN clause
// must correlate one base column with one column of the joined table
// (star-join shape, matching the executor).
#pragma once

#include <string>

#include "catalog/database.h"
#include "exec/query.h"

namespace hd {

/// Parse one statement. Errors carry a position-annotated message.
Result<Query> ParseSql(const Database& db, const std::string& sql);

/// Normalized statement text for fingerprinting, produced by the same
/// lexer the parser uses: keywords and identifiers case-folded to upper,
/// numeric and string literals replaced by `?`, whitespace collapsed to
/// single spaces. `where a < 5` and `WHERE  A<9` normalize identically;
/// changing a table, column, or operator changes the text. Works on any
/// statement the lexer can tokenize — no catalog needed, and unparseable
/// statements still normalize (so failed queries fingerprint too).
std::string NormalizeSql(const std::string& sql);

/// FingerprintText(NormalizeSql(sql)) — the 64-bit statement-class key
/// stamped on query-store records (obs/query_store.h).
uint64_t FingerprintSql(const std::string& sql);

}  // namespace hd
