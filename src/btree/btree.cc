#include "btree/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/failpoint.h"
#include "common/telemetry.h"

namespace hd {

namespace {

// Process-wide B+ tree maintenance telemetry: structural splits (leaf +
// internal) and the depth point lookups traverse.
struct BtStats {
  TCounter* splits = Telemetry::Instance().Counter("btree.splits");
  THistogram* seek_depth = Telemetry::Instance().Histogram("btree.seek_depth");
};

BtStats& Stats() {
  static BtStats s;
  return s;
}

}  // namespace

struct BTree::Node {
  bool is_leaf = false;
  ExtentId extent = kInvalidExtent;
};

struct BTree::Leaf : BTree::Node {
  // count entries, each stride_ int64s, key first.
  std::vector<int64_t> data;
  int count = 0;
  Leaf* next = nullptr;
  Leaf* prev = nullptr;

  const int64_t* Entry(int i, int stride) const { return data.data() + i * stride; }
  int64_t* Entry(int i, int stride) { return data.data() + i * stride; }
};

struct BTree::Internal : BTree::Node {
  // count children; count-1 separator keys, each kw_ int64s. Separator i
  // is the smallest key in child i+1's subtree.
  std::vector<int64_t> keys;
  std::vector<Node*> children;

  const int64_t* Key(int i, int kw) const { return keys.data() + i * kw; }
  int64_t* Key(int i, int kw) { return keys.data() + i * kw; }
  int count() const { return static_cast<int>(children.size()); }
};

BTree::BTree(int key_width, int payload_width, BufferPool* pool)
    : kw_(key_width), pw_(payload_width), stride_(key_width + payload_width),
      pool_(pool) {
  assert(kw_ >= 1);
  const int entry_bytes = stride_ * 8;
  leaf_cap_ = std::clamp<int>(static_cast<int>(kPageBytes) / entry_bytes, 8, 1024);
  const int ikey_bytes = kw_ * 8 + 8;  // separator + child pointer
  internal_cap_ = std::clamp<int>(static_cast<int>(kPageBytes) / ikey_bytes, 8, 1024);
}

BTree::~BTree() { Clear(); }

void BTree::Clear() {
  // Walk the tree freeing nodes level by level via leaf chain + recursion.
  std::function<void(Node*)> free_node = [&](Node* n) {
    if (n == nullptr) return;
    if (!n->is_leaf) {
      auto* in = static_cast<Internal*>(n);
      for (Node* c : in->children) free_node(c);
      pool_->Unregister(in->extent);
      delete in;
    } else {
      auto* l = static_cast<Leaf*>(n);
      pool_->Unregister(l->extent);
      delete l;
    }
  };
  free_node(root_);
  root_ = nullptr;
  first_leaf_ = nullptr;
  num_entries_ = 0;
  num_nodes_ = 0;
  height_ = 0;
}

BTree::Leaf* BTree::NewLeaf() {
  auto* l = new Leaf();
  l->is_leaf = true;
  l->data.resize(static_cast<size_t>(leaf_cap_) * stride_);
  l->extent = pool_->Register(kPageBytes);
  ++num_nodes_;
  return l;
}

BTree::Internal* BTree::NewInternal() {
  auto* n = new Internal();
  n->is_leaf = false;
  n->extent = pool_->Register(kPageBytes);
  ++num_nodes_;
  return n;
}

void BTree::BulkLoad(const std::vector<int64_t>& flat) {
  Clear();
  const uint64_t n = flat.size() / stride_;
  assert(flat.size() == n * static_cast<uint64_t>(stride_));
  if (n == 0) {
    root_ = first_leaf_ = NewLeaf();
    height_ = 1;
    return;
  }
  // Build leaves ~90% full so near-term inserts do not immediately split.
  const int fill = std::max(1, leaf_cap_ * 9 / 10);
  std::vector<Node*> level;
  std::vector<std::vector<int64_t>> level_keys;  // first key of each node
  Leaf* prev = nullptr;
  for (uint64_t i = 0; i < n;) {
    Leaf* l = NewLeaf();
    const int take = static_cast<int>(std::min<uint64_t>(fill, n - i));
    std::memcpy(l->data.data(), flat.data() + i * stride_,
                static_cast<size_t>(take) * stride_ * 8);
    l->count = take;
    if (prev != nullptr) {
      prev->next = l;
      l->prev = prev;
    } else {
      first_leaf_ = l;
    }
    prev = l;
    level.push_back(l);
    level_keys.emplace_back(l->Entry(0, stride_), l->Entry(0, stride_) + kw_);
    i += take;
  }
  num_entries_ = n;
  height_ = 1;
  // Build internal levels bottom-up.
  const int ifill = std::max(2, internal_cap_ * 9 / 10);
  while (level.size() > 1) {
    std::vector<Node*> up;
    std::vector<std::vector<int64_t>> up_keys;
    for (size_t i = 0; i < level.size();) {
      Internal* in = NewInternal();
      const size_t take = std::min<size_t>(ifill, level.size() - i);
      for (size_t j = 0; j < take; ++j) {
        in->children.push_back(level[i + j]);
        if (j > 0) {
          in->keys.insert(in->keys.end(), level_keys[i + j].begin(),
                          level_keys[i + j].end());
        }
      }
      up.push_back(in);
      up_keys.push_back(level_keys[i]);
      i += take;
    }
    level = std::move(up);
    level_keys = std::move(up_keys);
    ++height_;
  }
  root_ = level[0];
}

int BTree::CmpPrefix(const int64_t* entry_key, const std::vector<int64_t>& bound,
                     int kw) {
  const int n = std::min<int>(kw, static_cast<int>(bound.size()));
  return ComparePacked(entry_key, bound.data(), n);
}

bool BTree::PastHi(const int64_t* entry_key, const Bound& hi) const {
  if (hi.unbounded()) return false;
  const int c = CmpPrefix(entry_key, hi.key, kw_);
  return hi.inclusive ? c > 0 : c >= 0;
}

BTree::Leaf* BTree::DescendToLeaf(std::span<const int64_t> key, QueryMetrics* m,
                                  std::vector<Internal*>* path,
                                  Status* io) const {
  Node* n = root_;
  if (n == nullptr) return nullptr;
  while (!n->is_leaf) {
    auto* in = static_cast<Internal*>(n);
    {
      Status s = pool_->Access(in->extent, IoPattern::kRandom, m);
      if (!s.ok()) {
        if (io != nullptr) *io = std::move(s);
        return nullptr;
      }
    }
    // Binary search over separators: child i covers keys in
    // [sep[i-1], sep[i]). For a full key, sep == key means the key lives in
    // the right child (separators are right-child minimums). For a prefix
    // key we descend to the *leftmost* child that may hold the prefix, so
    // equality keeps us left; the leaf chain covers the rest.
    const int n_cmp = std::min<int>(kw_, static_cast<int>(key.size()));
    const bool full_key = n_cmp == kw_;
    int child = 0;
    int l = 0, r = in->count() - 2;
    while (l <= r) {
      int mid = (l + r) / 2;
      int c = ComparePacked(in->Key(mid, kw_), key.data(), n_cmp);
      if (c < 0 || (c == 0 && full_key)) {
        child = mid + 1;
        l = mid + 1;
      } else {
        r = mid - 1;
      }
    }
    if (path != nullptr) path->push_back(in);
    n = in->children[child];
  }
  auto* leaf = static_cast<Leaf*>(n);
  {
    Status s = pool_->Access(leaf->extent, IoPattern::kRandom, m);
    if (!s.ok()) {
      if (io != nullptr) *io = std::move(s);
      return nullptr;
    }
  }
  return leaf;
}

BTree::Leaf* BTree::LeftmostLeaf(QueryMetrics* m, Status* io) const {
  Node* n = root_;
  if (n == nullptr) return nullptr;
  while (!n->is_leaf) {
    auto* in = static_cast<Internal*>(n);
    Status s = pool_->Access(in->extent, IoPattern::kRandom, m);
    if (!s.ok()) {
      if (io != nullptr) *io = std::move(s);
      return nullptr;
    }
    n = in->children[0];
  }
  auto* leaf = static_cast<Leaf*>(n);
  Status s = pool_->Access(leaf->extent, IoPattern::kRandom, m);
  if (!s.ok()) {
    if (io != nullptr) *io = std::move(s);
    return nullptr;
  }
  return leaf;
}

BTree::Leaf* BTree::SeekLeaf(const Bound& lo, QueryMetrics* m,
                             Status* io) const {
  if (lo.unbounded()) return LeftmostLeaf(m, io);
  return DescendToLeaf(std::span<const int64_t>(lo.key.data(), lo.key.size()),
                       m, nullptr, io);
}

int BTree::LowerBoundInLeaf(const Leaf* l, std::span<const int64_t> key) const {
  int lo = 0, hi = l->count;
  const int n = std::min<int>(kw_, static_cast<int>(key.size()));
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (ComparePacked(l->Entry(mid, stride_), key.data(), n) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status BTree::Insert(std::span<const int64_t> key,
                     std::span<const int64_t> payload, QueryMetrics* m) {
  assert(static_cast<int>(key.size()) == kw_);
  assert(static_cast<int>(payload.size()) == pw_);
  if (root_ == nullptr) {
    root_ = first_leaf_ = NewLeaf();
    height_ = 1;
  }
  std::vector<Internal*> path;
  Status io;
  Leaf* leaf = DescendToLeaf(key, m, &path, &io);
  if (leaf == nullptr) return io.ok() ? Status::NotFound("empty tree") : io;
  int pos = LowerBoundInLeaf(leaf, key);
  if (pos < leaf->count &&
      ComparePacked(leaf->Entry(pos, stride_), key.data(), kw_) == 0) {
    return Status::InvalidArgument("duplicate key in B+ tree insert");
  }
  if (leaf->count < leaf_cap_) {
    int64_t* base = leaf->data.data();
    std::memmove(base + (pos + 1) * stride_, base + pos * stride_,
                 static_cast<size_t>(leaf->count - pos) * stride_ * 8);
    std::memcpy(base + pos * stride_, key.data(), kw_ * 8);
    std::memcpy(base + pos * stride_ + kw_, payload.data(), pw_ * 8);
    ++leaf->count;
    ++num_entries_;
    return Status::OK();
  }
  // Split the leaf. The failpoint models node-allocation failure at the
  // riskiest structural moment; firing here leaves the tree exactly as it
  // was before the insert (no entry added, no chain links touched).
  HD_FAILPOINT_RETURN_M("btree.split", m);
  Stats().splits->Add(1);
  Leaf* right = NewLeaf();
  const int half = leaf->count / 2;
  std::memcpy(right->data.data(), leaf->Entry(half, stride_),
              static_cast<size_t>(leaf->count - half) * stride_ * 8);
  right->count = leaf->count - half;
  leaf->count = half;
  right->next = leaf->next;
  if (right->next != nullptr) right->next->prev = right;
  right->prev = leaf;
  leaf->next = right;
  // Re-insert into the proper half.
  Leaf* target = (ComparePacked(key.data(), right->Entry(0, stride_), kw_) < 0)
                     ? leaf
                     : right;
  pos = LowerBoundInLeaf(target, key);
  int64_t* base = target->data.data();
  std::memmove(base + (pos + 1) * stride_, base + pos * stride_,
               static_cast<size_t>(target->count - pos) * stride_ * 8);
  std::memcpy(base + pos * stride_, key.data(), kw_ * 8);
  std::memcpy(base + pos * stride_ + kw_, payload.data(), pw_ * 8);
  ++target->count;
  ++num_entries_;
  InsertIntoParent(&path, leaf, right->Entry(0, stride_), right);
  // The structural change is durable at this point; a failed touch of the
  // fresh right sibling is only an accounting miss, not a lost insert.
  if (m != nullptr) {
    HD_RETURN_IF_ERROR(pool_->Access(right->extent, IoPattern::kRandom, m));
  }
  return Status::OK();
}

void BTree::InsertIntoParent(std::vector<Internal*>* path, Node* left,
                             const int64_t* sep_key, Node* right) {
  if (path->empty()) {
    Internal* nr = NewInternal();
    nr->children.push_back(left);
    nr->children.push_back(right);
    nr->keys.assign(sep_key, sep_key + kw_);
    root_ = nr;
    ++height_;
    return;
  }
  Internal* parent = path->back();
  path->pop_back();
  // Position of `left` among children.
  int idx = 0;
  while (idx < parent->count() && parent->children[idx] != left) ++idx;
  assert(idx < parent->count());
  parent->children.insert(parent->children.begin() + idx + 1, right);
  parent->keys.insert(parent->keys.begin() + idx * kw_, sep_key, sep_key + kw_);
  if (parent->count() <= internal_cap_) return;
  // Split the internal node.
  Stats().splits->Add(1);
  Internal* rnode = NewInternal();
  const int total = parent->count();
  const int lcount = total / 2;           // children staying left
  const int rcount = total - lcount;      // children moving right
  // Separator promoted to grandparent = key index lcount-1.
  std::vector<int64_t> promoted(parent->Key(lcount - 1, kw_),
                                parent->Key(lcount - 1, kw_) + kw_);
  rnode->children.assign(parent->children.begin() + lcount,
                         parent->children.end());
  rnode->keys.assign(parent->keys.begin() + lcount * kw_, parent->keys.end());
  parent->children.resize(lcount);
  parent->keys.resize(static_cast<size_t>(lcount - 1) * kw_);
  (void)rcount;
  InsertIntoParent(path, parent, promoted.data(), rnode);
}

Status BTree::Delete(std::span<const int64_t> key, QueryMetrics* m) {
  Status io;
  Leaf* leaf = DescendToLeaf(key, m, nullptr, &io);
  if (leaf == nullptr) return io.ok() ? Status::NotFound("empty tree") : io;
  int pos = LowerBoundInLeaf(leaf, key);
  if (pos >= leaf->count ||
      ComparePacked(leaf->Entry(pos, stride_), key.data(), kw_) != 0) {
    return Status::NotFound("key not in B+ tree");
  }
  int64_t* base = leaf->data.data();
  std::memmove(base + pos * stride_, base + (pos + 1) * stride_,
               static_cast<size_t>(leaf->count - pos - 1) * stride_ * 8);
  --leaf->count;
  --num_entries_;
  // No rebalancing on underflow: sparse leaves are tolerated (deletes are
  // a small fraction of our workloads; SQL Server likewise defers merges).
  return Status::OK();
}

Status BTree::UpdatePayload(std::span<const int64_t> key,
                            std::span<const int64_t> payload, QueryMetrics* m) {
  Status io;
  Leaf* leaf = DescendToLeaf(key, m, nullptr, &io);
  if (leaf == nullptr) return io.ok() ? Status::NotFound("empty tree") : io;
  int pos = LowerBoundInLeaf(leaf, key);
  if (pos >= leaf->count ||
      ComparePacked(leaf->Entry(pos, stride_), key.data(), kw_) != 0) {
    return Status::NotFound("key not in B+ tree");
  }
  std::memcpy(leaf->Entry(pos, stride_) + kw_, payload.data(), pw_ * 8);
  return Status::OK();
}

Status BTree::SeekEqual(std::span<const int64_t> key, int64_t* out,
                        QueryMetrics* m) const {
  Status io;
  Leaf* leaf = DescendToLeaf(key, m, nullptr, &io);
  if (leaf == nullptr) return io.ok() ? Status::NotFound("empty tree") : io;
  Stats().seek_depth->Record(height_);
  int pos = LowerBoundInLeaf(leaf, key);
  if (pos >= leaf->count ||
      ComparePacked(leaf->Entry(pos, stride_), key.data(), kw_) != 0) {
    return Status::NotFound("key not in B+ tree");
  }
  std::memcpy(out, leaf->Entry(pos, stride_) + kw_, pw_ * 8);
  return Status::OK();
}

Status BTree::Scan(
    const Bound& lo, const Bound& hi,
    const std::function<bool(const int64_t*, const int64_t*)>& fn,
    QueryMetrics* m) const {
  Status io;
  Leaf* leaf = SeekLeaf(lo, m, &io);
  if (leaf == nullptr) return io;
  int pos = 0;
  if (!lo.unbounded()) {
    pos = LowerBoundInLeaf(leaf, std::span<const int64_t>(lo.key.data(),
                                                          lo.key.size()));
  }
  // An exclusive prefix lower bound must keep skipping equal-prefix entries
  // even across leaf boundaries.
  bool checking_lo = !lo.unbounded() && !lo.inclusive;
  bool first = true;
  while (leaf != nullptr) {
    if (!first) {
      HD_RETURN_IF_ERROR(
          pool_->Access(leaf->extent, IoPattern::kSequential, m));
      pos = 0;
    }
    first = false;
    for (; pos < leaf->count; ++pos) {
      const int64_t* e = leaf->Entry(pos, stride_);
      if (checking_lo) {
        if (CmpPrefix(e, lo.key, kw_) == 0) continue;
        checking_lo = false;
      }
      if (PastHi(e, hi)) return Status::OK();
      if (m != nullptr) m->rows_scanned += 1;
      if (!fn(e, e + kw_)) return Status::OK();
    }
    leaf = leaf->next;
  }
  return Status::OK();
}

Status BTree::CollectLeaves(const Bound& lo, const Bound& hi, QueryMetrics* m,
                            std::vector<LeafHandle>* out) const {
  out->clear();
  Status io;
  Leaf* leaf = SeekLeaf(lo, m, &io);
  if (leaf == nullptr) return io;
  while (leaf != nullptr) {
    if (leaf->count > 0 && PastHi(leaf->Entry(0, stride_), hi)) break;
    out->push_back(LeafHandle{leaf});
    leaf = leaf->next;
  }
  return Status::OK();
}

Status BTree::ScanLeaf(
    LeafHandle h, const Bound& lo, const Bound& hi,
    const std::function<bool(const int64_t*, const int64_t*)>& fn,
    QueryMetrics* m) const {
  const Leaf* leaf = static_cast<const Leaf*>(h.leaf);
  HD_RETURN_IF_ERROR(pool_->Access(leaf->extent, IoPattern::kSequential, m));
  for (int i = 0; i < leaf->count; ++i) {
    const int64_t* e = leaf->Entry(i, stride_);
    if (!lo.unbounded()) {
      const int c = CmpPrefix(e, lo.key, kw_);
      if (c < 0 || (c == 0 && !lo.inclusive)) continue;
    }
    if (PastHi(e, hi)) return Status::OK();
    if (m != nullptr) m->rows_scanned += 1;
    if (!fn(e, e + kw_)) return Status::OK();
  }
  return Status::OK();
}

}  // namespace hd
