// B+ tree index over packed rows.
//
// Entries are (key, payload) pairs of fixed int64 widths. Keys must be
// unique: tables append a hidden uniquifier column to non-unique keys
// (same trick SQL Server uses for non-unique clustered indexes). Interior
// and leaf nodes are sized to the 8 KB page budget and registered with the
// buffer pool so traversals charge hot/cold I/O faithfully.
//
// Primary ("clustered") indexes store the full table row as payload;
// secondary indexes store included columns plus a row locator. That policy
// lives in catalog::Table — this class is agnostic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/packed.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace hd {

/// Half-open/inclusive bound for a range scan; empty key = unbounded.
struct Bound {
  std::vector<int64_t> key;  // may be a strict prefix of the index key
  bool inclusive = true;

  static Bound Unbounded() { return Bound{}; }
  static Bound Inclusive(std::vector<int64_t> k) { return Bound{std::move(k), true}; }
  static Bound Exclusive(std::vector<int64_t> k) { return Bound{std::move(k), false}; }
  bool unbounded() const { return key.empty(); }
};

/// Opaque handle to a leaf, used to partition scans across worker threads.
struct LeafHandle {
  const void* leaf = nullptr;
};

class BTree {
 public:
  /// `key_width` int64 slots of key, `payload_width` slots of payload.
  BTree(int key_width, int payload_width, BufferPool* pool);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  int key_width() const { return kw_; }
  int payload_width() const { return pw_; }
  uint64_t num_entries() const { return num_entries_; }
  int height() const { return height_; }
  uint64_t num_nodes() const { return num_nodes_; }
  /// Bytes of node storage, page-rounded (for size budgets / cost model).
  uint64_t size_bytes() const { return num_nodes_ * kPageBytes; }

  /// WAL rule plumbing (storage/wal.h): LSN of the last logged mutation
  /// applied to this tree. A checkpoint must not persist the tree before
  /// the log is durable past this point. Stamped by catalog::Table.
  uint64_t recovery_lsn() const { return recovery_lsn_; }
  void set_recovery_lsn(uint64_t lsn) {
    if (lsn > recovery_lsn_) recovery_lsn_ = lsn;
  }

  /// Bulk build from entries sorted ascending by key. Each entry is
  /// key_width+payload_width int64s (key first). Destroys prior content.
  void BulkLoad(const std::vector<int64_t>& flat_entries);

  /// Insert one entry; key must not already exist.
  Status Insert(std::span<const int64_t> key, std::span<const int64_t> payload,
                QueryMetrics* m);

  /// Remove the entry with exactly this key.
  Status Delete(std::span<const int64_t> key, QueryMetrics* m);

  /// Replace the payload of an existing key.
  Status UpdatePayload(std::span<const int64_t> key,
                       std::span<const int64_t> payload, QueryMetrics* m);

  /// Exact-match lookup of a full key. Copies payload into `out` (must have
  /// payload_width capacity). NotFound if absent.
  Status SeekEqual(std::span<const int64_t> key, int64_t* out,
                   QueryMetrics* m) const;

  /// Ordered range scan. `fn(key, payload)` returns false to stop (still
  /// OK). Non-OK only on a propagated buffer-pool/disk failure.
  Status Scan(const Bound& lo, const Bound& hi,
              const std::function<bool(const int64_t* key, const int64_t* payload)>& fn,
              QueryMetrics* m) const;

  /// Leaves overlapping [lo, hi], in order, for parallel scan partitioning.
  Status CollectLeaves(const Bound& lo, const Bound& hi, QueryMetrics* m,
                       std::vector<LeafHandle>* out) const;

  /// Scan the entries of one leaf that satisfy [lo, hi].
  Status ScanLeaf(LeafHandle h, const Bound& lo, const Bound& hi,
                  const std::function<bool(const int64_t* key, const int64_t* payload)>& fn,
                  QueryMetrics* m) const;

 private:
  struct Leaf;
  struct Internal;
  struct Node;

  void Clear();
  /// Descent helpers return nullptr for an empty tree OR an I/O failure;
  /// when `io` is given it distinguishes the two (non-OK = failed Access,
  /// and the caller must propagate it instead of reporting NotFound).
  Leaf* DescendToLeaf(std::span<const int64_t> key, QueryMetrics* m,
                      std::vector<Internal*>* path,
                      Status* io = nullptr) const;
  Leaf* LeftmostLeaf(QueryMetrics* m, Status* io = nullptr) const;
  /// First leaf that can contain keys >= / > `lo`.
  Leaf* SeekLeaf(const Bound& lo, QueryMetrics* m, Status* io = nullptr) const;
  int LowerBoundInLeaf(const Leaf* l, std::span<const int64_t> key) const;
  /// -1/0/+1 of entry key vs a (possibly prefix) bound key.
  static int CmpPrefix(const int64_t* entry_key, const std::vector<int64_t>& bound,
                       int kw);
  bool PastHi(const int64_t* entry_key, const Bound& hi) const;
  void InsertIntoParent(std::vector<Internal*>* path, Node* left,
                        const int64_t* sep_key, Node* right);
  Leaf* NewLeaf();
  Internal* NewInternal();

  int kw_;
  int pw_;
  int stride_;       // kw_ + pw_
  int leaf_cap_;
  int internal_cap_;
  BufferPool* pool_;
  Node* root_ = nullptr;
  Leaf* first_leaf_ = nullptr;
  uint64_t num_entries_ = 0;
  uint64_t num_nodes_ = 0;
  int height_ = 0;
  uint64_t recovery_lsn_ = 0;
};

}  // namespace hd
