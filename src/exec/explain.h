// EXPLAIN / EXPLAIN ANALYZE: plan-tree rendering with optimizer estimates
// and (for ANALYZE) the per-operator actuals captured during execution.
//
// The executor runs a pipelined plan, so operators form a linear chain.
// BuildOperatorSkeleton materializes that chain as OperatorProfile nodes
// in *pipeline order* (index 0 = the leaf access path, last = the root);
// the executor fills each node's counters while running, and the query
// level QueryMetrics is the rollup (merge) of all node blocks plus a
// small residual (locks, version probes) charged at query level.
//
// Node layout per statement kind (OperatorIndex maps roles to indices):
//   SELECT:  [scan] [join step...] [Agg | Project] [Sort?]
//            - aggregating queries end in HashAgg/StreamAgg, followed by
//              a Sort node when ORDER BY is present;
//            - non-aggregating queries end in a Project node, preceded by
//              a Sort node when the plan carries an explicit sort;
//            - dimension-driven hybrid plans (PhysicalPlan::driving_join)
//              name the driving step "DimDriver{...}": it scans the
//              filtered dimension and seeks the base B+ tree per row.
//   UPDATE/DELETE: [scan] [Update|Delete]
//   INSERT:  [Insert]
#pragma once

#include <string>
#include <vector>

#include "common/metrics.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "exec/query.h"

namespace hd {

/// Role -> index into the skeleton vector; -1 = node absent.
struct OperatorIndex {
  int scan = -1;
  std::vector<int> join;  // one entry per PhysicalPlan::joins step
  int agg = -1;
  int sort = -1;
  int output = -1;  // Project / Insert / Update / Delete root
};

/// Build the operator chain for (q, plan) with names, depths, and
/// optimizer estimates filled in and all counters zero.
std::vector<OperatorProfile> BuildOperatorSkeleton(const Query& q,
                                                   const PhysicalPlan& plan,
                                                   OperatorIndex* idx = nullptr);

/// Render the plan tree with estimates only (EXPLAIN).
std::string ExplainPlan(const Query& q, const PhysicalPlan& plan);

/// Render the plan tree annotated with estimates next to the actuals in
/// `r.operators`, plus the query-level rollup line (EXPLAIN ANALYZE).
std::string ExplainAnalyze(const Query& q, const PhysicalPlan& plan,
                           const QueryResult& r);

}  // namespace hd
