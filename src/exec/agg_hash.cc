#include "exec/agg_hash.h"

namespace hd {

void AggHashTable::Init(size_t key_width, size_t num_aggs) {
  kw_ = key_width == 0 ? 1 : key_width;
  na_ = num_aggs;
  stride_ = kw_ + na_ * (sizeof(AggState) / sizeof(int64_t));
  ngroups_ = 0;
  probes_ = 0;
  constexpr size_t kInitSlots = 1024;  // power of two
  slots_.assign(kInitSlots, 0);
  mask_ = kInitSlots - 1;
  payload_.clear();
  hashes_.clear();
}

void AggHashTable::ComputeHashes(const int64_t* keys, size_t n,
                                 uint64_t* out) const {
  if (kw_ == 1) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = HashKey(keys + i, 1);
      __builtin_prefetch(&slots_[out[i] & mask_], 0, 1);
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = HashKey(keys + i * kw_, kw_);
    __builtin_prefetch(&slots_[out[i] & mask_], 0, 1);
  }
}

size_t AggHashTable::InsertAt(size_t s, const int64_t* key, uint64_t hash,
                              size_t max_groups) {
  if (ngroups_ >= max_groups) return kNoSlot;
  // Zero-filled payload row = key slot + all-zero AggStates (a valid
  // initial accumulator); the key is copied over the front.
  payload_.resize(payload_.size() + stride_, 0);
  std::memcpy(payload_.data() + ngroups_ * stride_, key,
              kw_ * sizeof(int64_t));
  hashes_.push_back(hash);
  slots_[s] = static_cast<uint32_t>(ngroups_) + 1;
  const size_t g = ngroups_++;
  // Keep the load factor under 0.7; growing after the append is safe (the
  // directory is rebuilt from the cached hashes).
  if (ngroups_ * 10 >= (mask_ + 1) * 7) Grow();
  return g;
}

void AggHashTable::Grow() {
  const size_t cap = (mask_ + 1) * 2;
  slots_.assign(cap, 0);
  mask_ = cap - 1;
  // Cached per-group hashes make rehashing slot-directory-only work.
  for (size_t g = 0; g < ngroups_; ++g) {
    size_t s = hashes_[g] & mask_;
    while (slots_[s] != 0) s = (s + 1) & mask_;
    slots_[s] = static_cast<uint32_t>(g) + 1;
  }
}

}  // namespace hd
