#include "exec/explain.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace hd {

namespace {

std::string AggName(const Query& q, const PhysicalPlan& plan) {
  if (plan.agg == AggMethod::kStream) return "StreamAgg";
  std::string s = "HashAgg";
  if (!q.group_by.empty()) {
    s += "(groups=" + std::to_string(q.group_by.size()) + " cols)";
  }
  return s;
}

}  // namespace

std::vector<OperatorProfile> BuildOperatorSkeleton(const Query& q,
                                                   const PhysicalPlan& plan,
                                                   OperatorIndex* idx) {
  OperatorIndex local;
  OperatorIndex& ix = idx != nullptr ? *idx : local;
  ix = OperatorIndex{};
  std::vector<OperatorProfile> ops;

  auto add = [&](std::string name, std::string phase, double est_rows) {
    OperatorProfile op;
    op.name = std::move(name);
    op.phase = std::move(phase);
    op.est_rows = est_rows;
    ops.push_back(std::move(op));
    return static_cast<int>(ops.size()) - 1;
  };

  if (q.kind == Query::Kind::kInsert) {
    ix.output = add("Insert[" + q.base.table + "]", "dml",
                    static_cast<double>(q.insert_rows.size()));
  } else {
    // Describe() already names the secondary index in brackets; only add
    // the table for primary access paths.
    std::string scan_name = plan.base.Describe();
    if (plan.base.index_name.empty()) scan_name += "[" + q.base.table + "]";
    ix.scan = add(std::move(scan_name), "scan", plan.est_base_rows);
    for (size_t s = 0; s < plan.joins.size(); ++s) {
      const JoinStep& st = plan.joins[s];
      std::string name =
          plan.driving_join == st.join_idx
              ? "DimDriver{" + st.dim_path.Describe() + "[" +
                    q.joins[st.join_idx].dim.table + "]}"
              : st.Describe() + "[" + q.joins[st.join_idx].dim.table + "]";
      ix.join.push_back(add(std::move(name), "join", st.est_rows_out));
    }
    if (q.kind == Query::Kind::kSelect) {
      if (!q.aggs.empty()) {
        ix.agg = add(AggName(q, plan), "agg", plan.est_out_rows);
        if (!q.order_by.empty()) ix.sort = add("Sort", "sort", plan.est_out_rows);
      } else {
        if (plan.explicit_sort) {
          ix.sort = add("Sort", "sort", plan.est_out_rows);
        }
        ix.output = add("Project", "project", plan.est_out_rows);
      }
    } else {
      ix.output = add(q.kind == Query::Kind::kUpdate
                          ? "Update[" + q.base.table + "]"
                          : "Delete[" + q.base.table + "]",
                      "dml", plan.est_out_rows);
    }
  }

  const int n = static_cast<int>(ops.size());
  for (int i = 0; i < n; ++i) ops[i].depth = n - 1 - i;
  // The root carries the whole-plan cost estimate.
  if (n > 0) ops[n - 1].est_cost_ms = plan.est_cost;
  return ops;
}

namespace {

std::string Fmt(double v) {
  char buf[64];
  if (v >= 100 || v == static_cast<int64_t>(v)) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  }
  return buf;
}

void RenderNode(std::ostringstream& os, const OperatorProfile& op,
                bool analyze) {
  for (int i = 0; i < op.depth; ++i) os << "  ";
  os << "-> " << op.name;
  os << "  (est_rows=" << (op.est_rows >= 0 ? Fmt(op.est_rows) : "?");
  if (op.est_cost_ms >= 0) os << " est_cost_ms=" << Fmt(op.est_cost_ms);
  os << ")";
  if (analyze) {
    const QueryMetrics& m = op.metrics;
    os << "  [actual";
    if (op.phase == "join" || op.phase == "agg" || op.phase == "sort" ||
        op.phase == "project") {
      os << " rows_in=" << op.rows_in;
    }
    os << " rows_out=" << op.rows_out;
    if (m.rows_scanned.load() > 0) os << " rows_scanned=" << m.rows_scanned.load();
    if (m.segments_scanned.load() > 0 || m.segments_skipped.load() > 0) {
      os << " segments=" << m.segments_scanned.load() << " scanned/"
         << m.segments_skipped.load() << " skipped";
    }
    if (m.runs_evaluated.load() > 0) {
      os << " runs_evaluated=" << m.runs_evaluated.load();
    }
    if (m.rows_decoded.load() > 0) os << " rows_decoded=" << m.rows_decoded.load();
    if (m.rows_selected.load() > 0) {
      os << " rows_selected=" << m.rows_selected.load();
    }
    if (m.rows_late_materialized.load() > 0) {
      os << " rows_late_materialized=" << m.rows_late_materialized.load();
    }
    if (m.aggs_pushed_down.load() > 0) {
      os << " aggs_pushed_down=" << m.aggs_pushed_down.load();
    }
    if (m.shared_scan_attaches.load() > 0) {
      os << " shared_scan=attached segments_shared=" << m.segments_shared.load()
         << " decode_bytes_saved=" << m.shared_decode_bytes_saved.load();
    }
    if (m.hash_probes.load() > 0) os << " hash_probes=" << m.hash_probes.load();
    if (m.join_batch_probes.load() > 0) {
      os << " batch_probes=" << m.join_batch_probes.load()
         << " matches=" << m.join_matches.load();
    }
    if (m.join_bloom_checks.load() > 0) {
      os << " bloom_checks=" << m.join_bloom_checks.load()
         << " bloom_filtered=" << m.join_bloom_filtered.load();
    }
    if (m.morsels_scheduled.load() > 0) {
      os << " morsels=" << m.morsels_scheduled.load() << "(+"
         << m.morsels_stolen.load() << " stolen)";
    }
    if (m.spill_bytes.load() > 0) os << " spill_bytes=" << m.spill_bytes.load();
    if (m.peak_memory_bytes.load() > 0) {
      os << " peak_mem=" << m.peak_memory_bytes.load();
    }
    char t[64];
    std::snprintf(t, sizeof t, " cpu_ms=%.3f", m.cpu_ms());
    os << t;
    if (m.sim_io_ns.load() > 0) {
      std::snprintf(t, sizeof t, " io_ms=%.3f", m.sim_io_ms());
      os << t;
    }
    os << "]";
  }
  os << "\n";
}

std::string Render(const Query& q, const PhysicalPlan& plan,
                   const std::vector<OperatorProfile>& ops, bool analyze,
                   const QueryResult* r) {
  std::ostringstream os;
  os << (analyze ? "EXPLAIN ANALYZE" : "EXPLAIN") << " " << plan.Describe()
     << "\n";
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    RenderNode(os, *it, analyze);
  }
  if (analyze && r != nullptr) {
    os << "Query totals (rollup of all operators + residual): "
       << r->metrics.ToString() << "\n";
    if (r->trace_id != 0) {
      // The same 16-hex id the wire protocol, query store, slow-query
      // log, and chrome://tracing spans print — one grep correlates all
      // five surfaces.
      os << "Trace: " << FingerprintHex(r->trace_id) << "\n";
    }
  }
  (void)q;
  return os.str();
}

}  // namespace

std::string ExplainPlan(const Query& q, const PhysicalPlan& plan) {
  std::vector<OperatorProfile> ops = BuildOperatorSkeleton(q, plan);
  return Render(q, plan, ops, /*analyze=*/false, nullptr);
}

std::string ExplainAnalyze(const Query& q, const PhysicalPlan& plan,
                           const QueryResult& r) {
  if (r.operators.empty()) {
    // Executor did not run (error paths): fall back to estimates.
    return ExplainPlan(q, plan);
  }
  return Render(q, plan, r.operators, /*analyze=*/true, &r);
}

}  // namespace hd
