// Flat open-addressing join hash table with a vectorized probe interface.
//
// Build uses a two-pass counting sort into a contiguous match-index array
// (a {key, start, count} directory + idx payload), so a probe resolves to
// a [start, start+count) range of build-row indices without chasing
// pointers. The directory is a single array of 16-byte entries, not
// parallel key/start/count arrays: one probe touches one cache line, not
// three. Row mode uses Find() one key at a time; batch mode runs the
// AggHashTable-style three-kernel sequence over a decoded key column:
//
//   ComputeHashes  — hash the key vector, prefetching each slot's
//                    directory entry (stage-1 prefetch),
//   FindSlots      — walk the probe chains, resolving each key to its
//                    directory slot (or kMiss) and prefetching the slot's
//                    match-index range (stage-2 prefetch),
//   ExpandMatches  — turn resolved slots into aligned (probe-row,
//                    build-row) match vectors, expanding multi-match keys
//                    by duplicating the probe row. When the build side is
//                    unique (FK -> PK, detected at Build), this is a
//                    1-match straight copy.
//
// Empty slots are marked with an in-band sentinel key. A *legitimate*
// build key equal to the sentinel is kept out of the directory entirely
// (a dedicated side slot) so it can never be written as "empty" and
// truncate other keys' probe chains — the sentinel-collision bug the
// in-executor version of this table had.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hd {

class FlatJoinMap {
 public:
  /// FindSlots resolutions that are not directory slots.
  static constexpr int32_t kMiss = -1;      ///< key has no build rows
  static constexpr int32_t kSentinel = -2;  ///< key == kEmptyKey, side slot

  /// The in-band "empty slot" marker. Exposed so tests can build
  /// adversarial key sets around it.
  static constexpr int64_t kEmptyKey = INT64_MIN + 7;

  /// (join key, build row index) pairs -> probe directory. Clears any
  /// previous contents.
  void Build(const std::vector<std::pair<int64_t, uint32_t>>& pairs);

  /// Pointer to `*n` matching build-row indices; nullptr when no match.
  /// The row-mode probe, and the oracle the batch kernels are tested
  /// against.
  const uint32_t* Find(int64_t key, uint32_t* n) const {
    if (__builtin_expect(key == kEmptyKey, 0)) {
      *n = static_cast<uint32_t>(sentinel_idx_.size());
      return sentinel_idx_.empty() ? nullptr : sentinel_idx_.data();
    }
    size_t s = Hash(key) & mask_;
    while (true) {
      const Entry& e = entries_[s];
      if (e.key == key) {
        *n = e.count;
        return idx_.data() + e.start;
      }
      if (e.key == kEmptyKey) {
        *n = 0;
        return nullptr;
      }
      s = (s + 1) & mask_;
    }
  }

  /// Hash `n` keys into `out`, prefetching each hash's directory entry
  /// so FindSlots runs against a warm slot array.
  void ComputeHashes(const int64_t* keys, size_t n, uint64_t* out) const;

  /// Resolve each key to its directory slot: slots[i] >= 0 is an index
  /// whose match range is idx[start, start+count); kMiss means no build
  /// rows; kSentinel routes to the side slot. Prefetches each hit's
  /// match-index range for ExpandMatches.
  void FindSlots(const int64_t* keys, const uint64_t* hashes, size_t n,
                 int32_t* slots) const;

  /// Expand resolved slots into aligned match vectors: for every match,
  /// prow gets the probe position i (0..n-1) and brow the build row.
  /// Appends; returns the number of matches added. Multi-match keys
  /// duplicate the probe position (vector expansion); a unique build
  /// side takes a 1-match straight-copy fast path.
  size_t ExpandMatches(const int32_t* slots, size_t n,
                       std::vector<uint32_t>* prow,
                       std::vector<uint32_t>* brow) const;

  /// True when every build key maps to exactly one build row (FK -> PK).
  bool unique_keys() const { return unique_; }
  size_t size() const { return idx_.size() + sentinel_idx_.size(); }
  uint64_t memory_bytes() const {
    return entries_.size() * sizeof(Entry) +
           (idx_.size() + sentinel_idx_.size()) * sizeof(uint32_t);
  }

 private:
  /// One directory slot: the key plus its [start, start+count) match
  /// range in idx_. 16 bytes so a probe's compare and range lookup land
  /// on the same cache line.
  struct Entry {
    int64_t key;
    uint32_t start;
    uint32_t count;
  };

  static size_t Hash(int64_t k) {
    uint64_t h = static_cast<uint64_t>(k) * 0x9e3779b97f4a7c15ull;
    return h ^ (h >> 29);
  }
  /// Probe chain for a non-sentinel key; inserts it at the first empty
  /// slot when asked. Build-time only.
  size_t Slot(int64_t k, bool insert) {
    size_t s = Hash(k) & mask_;
    while (entries_[s].key != k) {
      if (entries_[s].key == kEmptyKey) {
        if (insert) entries_[s].key = k;
        break;
      }
      s = (s + 1) & mask_;
    }
    return s;
  }

  size_t mask_ = 0;
  bool unique_ = true;
  std::vector<Entry> entries_;
  std::vector<uint32_t> idx_;
  /// Build rows whose key IS kEmptyKey — kept out of the directory so the
  /// sentinel stays unambiguous in keys_.
  std::vector<uint32_t> sentinel_idx_;
};

}  // namespace hd
