// Logical query model.
//
// A deliberately restricted algebra that covers every workload in the
// paper: single-table scans with range/equality predicates, star-style
// equi-joins, aggregation (optionally grouped), ordering, TOP-N, and
// UPDATE/DELETE/INSERT statements. Queries are engine-neutral: the
// optimizer chooses the physical plan, the executor runs it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace hd {

/// Reference to a column of one of the query's tables: table 0 is the base
/// (fact) table, table i >= 1 is joins[i-1]'s dimension table.
struct ColRef {
  int table = 0;
  int col = 0;

  bool operator==(const ColRef& o) const {
    return table == o.table && col == o.col;
  }
};

/// Conjunctive range predicate on a single column of one table.
/// Both bounds optional; equality is lo == hi, both inclusive.
struct Pred {
  int col = 0;
  std::optional<Value> lo;
  bool lo_incl = true;
  std::optional<Value> hi;
  bool hi_incl = true;

  static Pred Eq(int col, Value v) { return Pred{col, v, true, v, true}; }
  static Pred Lt(int col, Value v) {
    return Pred{col, std::nullopt, true, std::move(v), false};
  }
  static Pred Le(int col, Value v) {
    return Pred{col, std::nullopt, true, std::move(v), true};
  }
  static Pred Gt(int col, Value v) {
    return Pred{col, std::move(v), false, std::nullopt, true};
  }
  static Pred Ge(int col, Value v) {
    return Pred{col, std::move(v), true, std::nullopt, true};
  }
  static Pred Between(int col, Value lo, Value hi) {
    return Pred{col, std::move(lo), true, std::move(hi), true};
  }
  bool is_equality() const {
    return lo.has_value() && hi.has_value() && lo_incl && hi_incl &&
           lo->Compare(*hi) == 0;
  }
};

/// Scalar arithmetic expression over the (joined) wide row, evaluated in
/// the double domain. Enough for expressions like
/// sum(l_extendedprice * (1 - l_discount)).
struct Expr {
  enum class Kind { kCol, kConst, kAdd, kSub, kMul };
  Kind kind = Kind::kConst;
  ColRef col;        // kCol
  double constant = 0;  // kConst
  std::vector<Expr> children;  // binary ops: exactly 2

  static Expr Col(ColRef c) {
    Expr e;
    e.kind = Kind::kCol;
    e.col = c;
    return e;
  }
  static Expr Col(int table, int col) { return Col(ColRef{table, col}); }
  static Expr Const(double v) {
    Expr e;
    e.kind = Kind::kConst;
    e.constant = v;
    return e;
  }
  static Expr Binary(Kind k, Expr l, Expr r) {
    Expr e;
    e.kind = k;
    e.children.push_back(std::move(l));
    e.children.push_back(std::move(r));
    return e;
  }
  static Expr Add(Expr l, Expr r) { return Binary(Kind::kAdd, std::move(l), std::move(r)); }
  static Expr Sub(Expr l, Expr r) { return Binary(Kind::kSub, std::move(l), std::move(r)); }
  static Expr Mul(Expr l, Expr r) { return Binary(Kind::kMul, std::move(l), std::move(r)); }
};

/// Aggregate function over an expression (or * for count).
struct AggSpec {
  enum class Fn { kCount, kSum, kMin, kMax, kAvg };
  Fn fn = Fn::kCount;
  std::optional<Expr> arg;  // empty = count(*)
  std::string label;

  static AggSpec CountStar() { return AggSpec{Fn::kCount, std::nullopt, "count"}; }
  static AggSpec Sum(Expr e, std::string label = "sum") {
    return AggSpec{Fn::kSum, std::move(e), std::move(label)};
  }
  static AggSpec Min(Expr e) { return AggSpec{Fn::kMin, std::move(e), "min"}; }
  static AggSpec Max(Expr e) { return AggSpec{Fn::kMax, std::move(e), "max"}; }
  static AggSpec Avg(Expr e) { return AggSpec{Fn::kAvg, std::move(e), "avg"}; }
};

/// One table participating in a query, with its conjunctive predicates.
struct TableRef {
  std::string table;
  std::vector<Pred> preds;
};

/// Equi-join between the base table and a dimension table.
struct JoinClause {
  TableRef dim;
  int base_col = 0;  // join column on the base (fact) table
  int dim_col = 0;   // join column on the dimension table
};

/// SET clause of an UPDATE: col = col + delta, or col = value.
struct UpdateSet {
  int col = 0;
  bool is_add = true;
  double add_delta = 0;  // when is_add
  Value set_value;       // when !is_add

  static UpdateSet Add(int col, double delta) {
    UpdateSet s;
    s.col = col;
    s.is_add = true;
    s.add_delta = delta;
    return s;
  }
  static UpdateSet Assign(int col, Value v) {
    UpdateSet s;
    s.col = col;
    s.is_add = false;
    s.set_value = std::move(v);
    return s;
  }
};

/// A logical statement.
struct Query {
  enum class Kind { kSelect, kUpdate, kDelete, kInsert };

  /// EXPLAIN prefix handling: kPlan plans without executing and renders
  /// the annotated tree; kAnalyze executes and renders estimates next to
  /// per-operator actuals (see exec/explain.h).
  enum class ExplainMode { kNone, kPlan, kAnalyze };

  std::string id;  // for reporting (e.g. "Q1", "TPCDS-54")
  Kind kind = Kind::kSelect;
  ExplainMode explain = ExplainMode::kNone;
  TableRef base;
  std::vector<JoinClause> joins;

  // SELECT shape:
  std::vector<AggSpec> aggs;      // empty => project rows
  std::vector<ColRef> group_by;
  std::vector<ColRef> order_by;
  std::vector<ColRef> select_cols;  // projection when aggs empty
  int64_t limit = -1;               // TOP N; -1 = all

  // UPDATE shape (applies to base table; limit = TOP N rows updated):
  std::vector<UpdateSet> sets;

  // INSERT shape: literal rows for the base table.
  std::vector<std::vector<Value>> insert_rows;

  /// Relative weight in a workload (DTA input).
  double weight = 1.0;

  bool is_read_only() const { return kind == Kind::kSelect; }
};

}  // namespace hd
