// Cooperative shared scans (ROADMAP item 1; cf. ClockScan / SharedDB).
//
// Concurrent CSI scans of the same table attach to one in-flight circular
// pass over its row groups. A pass maintains a small ring of slots; each
// slot holds the dense decoded image of one row group (DecodedGroup). The
// first consumer to need the next group claims a free slot and decodes it
// (paying the segment fetch + decode ONCE); every consumer attached at
// claim time then evaluates its own predicates against the shared image —
// directly in the value domain, since the image includes predicate
// columns — and emits selection-vector batches into its own operator
// tree (ColumnBatch::sel — no per-consumer gather). A consumer records the
// pass position at attach, consumes groups in circular order, and detaches
// after a full wrap — so N concurrent queries pay ~1× decode instead of N×.
//
// Correctness: the executor holds the table's shared phys_latch for the
// whole statement, so row groups, delete bitmaps and the delete buffer
// cannot change while any consumer is attached; the pass snapshots the
// delete buffer once at creation. The delta store is NOT part of the pass —
// each consumer scans it privately after its wrap (row-mode, cheap).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "columnstore/columnstore.h"
#include "common/metrics.h"
#include "common/status.h"

namespace hd {

struct ScanSchedulerOptions {
  /// Decoded row groups in flight per pass. More slots = more decode
  /// pipelining (slow consumers lag behind fast decoders) at the cost of
  /// slot_count × rowgroup_size × (cols+1) × 8 bytes of peak memory.
  int ring_slots = 4;
};

/// Process-wide shared-scan coordinator. Thread-safe; one instance is
/// typically shared by every ExecContext that opts in.
class ScanScheduler {
 public:
  explicit ScanScheduler(ScanSchedulerOptions opts = ScanSchedulerOptions());
  ~ScanScheduler();

  ScanScheduler(const ScanScheduler&) = delete;
  ScanScheduler& operator=(const ScanScheduler&) = delete;

  /// Scan every row group of `csi` through the shared pass for that index
  /// (joining the in-flight pass when one exists, starting one otherwise).
  /// Semantically equivalent to
  ///   csi->ScanGroups(0, csi->num_row_groups(), ...)
  /// except batches may arrive in circular (not ascending) group order and
  /// may carry ColumnBatch::sel. Blocks until this consumer has seen every
  /// group (or `fn` returned false / an error occurred). The caller must
  /// hold the table's shared phys_latch and must scan the delta store
  /// itself afterwards.
  Status Scan(const ColumnStoreIndex* csi, const std::vector<int>& cols_needed,
              const std::vector<SegPredicate>& preds,
              const std::function<bool(const ColumnBatch&)>& fn,
              QueryMetrics* m, bool need_locators);

  /// Passes ever started / consumer attaches (tests and benches; the same
  /// values feed the scan.* telemetry counters).
  uint64_t passes_started() const;
  uint64_t attaches() const;
  /// Passes currently in flight. A pass is erased when its last consumer
  /// detaches, so 0 means no consumer is attached anywhere — the
  /// "no leaked scheduler attachments" probe the server tests use after
  /// abrupt client disconnects.
  size_t active_passes() const;

 private:
  struct Slot;
  struct Consumer;
  struct Pass;

  /// Detach `me` from `pass`: release claimed-but-unconsumed slots in its
  /// window, drop it from the consumer list, erase the pass when it was
  /// the last consumer.
  void Detach(const std::shared_ptr<Pass>& pass, Consumer* me,
              const ColumnStoreIndex* csi);

  ScanSchedulerOptions opts_;
  mutable std::mutex mu_;  // guards passes_; ordered before Pass::mu
  std::map<const ColumnStoreIndex*, std::shared_ptr<Pass>> passes_;
  uint64_t passes_started_ = 0;
  uint64_t attaches_ = 0;
};

}  // namespace hd
