// Physical plans: the optimizer's output, the executor's input.
#pragma once

#include <string>
#include <vector>

#include "catalog/index_def.h"

namespace hd {

/// How one table is accessed.
struct AccessPath {
  enum class Kind {
    kHeapScan,        // full scan of a heap primary
    kBTreeRange,      // (range) scan/seek of primary or secondary B+ tree
    kBTreeFullScan,   // full ordered scan of a B+ tree
    kCsiScan,         // vectorized columnstore scan (primary or secondary)
  };

  Kind kind = Kind::kHeapScan;
  /// Secondary index name; empty = the table's primary structure.
  std::string index_name;
  /// For kBTreeRange: number of leading key columns bounded by predicates.
  int seek_cols = 0;

  bool is_btree() const {
    return kind == Kind::kBTreeRange || kind == Kind::kBTreeFullScan;
  }
  bool is_csi() const { return kind == Kind::kCsiScan; }

  std::string Describe() const;
};

/// One join in execution order.
struct JoinStep {
  enum class Method {
    kHash,     // build hash table on the dimension, probe from base stream
    kIndexNL,  // per base row, seek the dimension's B+ tree on the join col
  };
  int join_idx = 0;  // index into Query::joins
  Method method = Method::kHash;
  AccessPath dim_path;  // how the dimension is read (build side / NL target)

  // Optimizer estimates captured at planning time (-1 = not estimated):
  // dimension rows surviving the dim predicates (hash build size / NL
  // match pool), and rows streaming out of this join step.
  double est_dim_rows = -1;
  double est_rows_out = -1;

  std::string Describe() const;
};

/// Aggregation strategy.
enum class AggMethod {
  kNone,
  kHash,      // hash aggregate (spills beyond the memory grant)
  kStream,    // streaming aggregate over sorted input (needs order)
};

/// A complete physical plan for one Query.
struct PhysicalPlan {
  AccessPath base;
  std::vector<JoinStep> joins;
  AggMethod agg = AggMethod::kNone;
  /// Sort needed to satisfy ORDER BY (false if the base path provides it).
  bool explicit_sort = false;
  /// Degree of parallelism for the base scan.
  int dop = 1;
  /// If >= 0, the plan is dimension-driven: joins[driving_join]'s dim table
  /// is scanned as the outer side and each of its rows seeks the base
  /// table's B+ tree (`base`, which must be kBTreeRange leading on the join
  /// column). This is the hybrid plan shape of Section 5.3 (e.g. TPC-DS
  /// Q54): selective dimension predicates drive index seeks into the fact.
  int driving_join = -1;

  // Optimizer estimates (cost model units ~ milliseconds).
  double est_cost = 0;
  double est_base_rows = 0;   // rows out of the base access path
  double est_out_rows = 0;

  /// Leaf-access accounting for Fig. 10.
  int leaf_btree_count() const;
  int leaf_csi_count() const;
  int leaf_heap_count() const;
  bool is_hybrid() const {
    return leaf_btree_count() > 0 && leaf_csi_count() > 0;
  }

  std::string Describe() const;
};

inline std::string AccessPath::Describe() const {
  std::string s;
  switch (kind) {
    case Kind::kHeapScan: s = "HeapScan"; break;
    case Kind::kBTreeRange: s = "BTreeRange(seek=" + std::to_string(seek_cols) + ")"; break;
    case Kind::kBTreeFullScan: s = "BTreeScan"; break;
    case Kind::kCsiScan: s = "CsiScan"; break;
  }
  if (!index_name.empty()) s += "[" + index_name + "]";
  return s;
}

inline std::string JoinStep::Describe() const {
  return std::string(method == Method::kHash ? "HashJoin" : "IndexNLJoin") +
         "{" + dim_path.Describe() + "}";
}

inline int PhysicalPlan::leaf_btree_count() const {
  int n = base.is_btree() ? 1 : 0;
  for (const auto& j : joins) n += j.dim_path.is_btree() ? 1 : 0;
  return n;
}

inline int PhysicalPlan::leaf_csi_count() const {
  int n = base.is_csi() ? 1 : 0;
  for (const auto& j : joins) n += j.dim_path.is_csi() ? 1 : 0;
  return n;
}

inline int PhysicalPlan::leaf_heap_count() const {
  int n = base.kind == AccessPath::Kind::kHeapScan ? 1 : 0;
  for (const auto& j : joins) {
    n += j.dim_path.kind == AccessPath::Kind::kHeapScan ? 1 : 0;
  }
  return n;
}

inline std::string PhysicalPlan::Describe() const {
  std::string s = base.Describe();
  for (const auto& j : joins) s += " -> " + j.Describe();
  if (agg == AggMethod::kHash) s += " -> HashAgg";
  if (agg == AggMethod::kStream) s += " -> StreamAgg";
  if (explicit_sort) s += " -> Sort";
  if (dop > 1) s += " (dop=" + std::to_string(dop) + ")";
  return s;
}

}  // namespace hd
