#include "exec/executor.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <queue>
#include <shared_mutex>
#include <unordered_map>

#include "common/bloom.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/admission.h"
#include "exec/agg_hash.h"
#include "common/telemetry.h"
#include "exec/explain.h"
#include "exec/join_hash.h"
#include "exec/scan_scheduler.h"

namespace hd {

namespace {

// End-to-end statement latency histograms keyed by statement class, plus
// a failed-statement counter. Recorded once per Execute() call.
struct StmtStats {
  THistogram* select_ns = Telemetry::Instance().Histogram("stmt.select_ns");
  THistogram* update_ns = Telemetry::Instance().Histogram("stmt.update_ns");
  THistogram* delete_ns = Telemetry::Instance().Histogram("stmt.delete_ns");
  THistogram* insert_ns = Telemetry::Instance().Histogram("stmt.insert_ns");
  TCounter* errors = Telemetry::Instance().Counter("stmt.errors");
  // Batch-join process counters, folded from each statement's rollup.
  TCounter* join_batch_probes =
      Telemetry::Instance().Counter("join.batch_probes");
  TCounter* join_matches = Telemetry::Instance().Counter("join.matches");
  TCounter* join_bloom_checks =
      Telemetry::Instance().Counter("join.bloom_checks");
  TCounter* join_bloom_filtered =
      Telemetry::Instance().Counter("join.bloom_filtered");

  THistogram* ForKind(Query::Kind k) {
    switch (k) {
      case Query::Kind::kSelect: return select_ns;
      case Query::Kind::kUpdate: return update_ns;
      case Query::Kind::kDelete: return delete_ns;
      case Query::Kind::kInsert: return insert_ns;
    }
    return select_ns;
  }
};

StmtStats& SStats() {
  static StmtStats s;
  return s;
}

// ---------------------------------------------------------------------
// Predicate binding: Value bounds -> inclusive packed [lo, hi] ranges.
// ---------------------------------------------------------------------

struct BoundPred {
  int col = 0;
  int64_t lo = INT64_MIN;
  int64_t hi = INT64_MAX;
  bool impossible = false;
};

std::vector<BoundPred> BindPreds(const Table& t, const std::vector<Pred>& preds) {
  std::vector<BoundPred> out;
  out.reserve(preds.size());
  for (const auto& p : preds) {
    BoundPred b;
    b.col = p.col;
    if (p.is_equality()) {
      bool found = true;
      int64_t v = t.PackBound(p.col, *p.lo, 0, &found);
      if (!found) {
        b.impossible = true;
      } else {
        b.lo = b.hi = v;
      }
      out.push_back(b);
      continue;
    }
    if (p.lo.has_value()) {
      bool found = true;
      int64_t v = t.PackBound(p.col, *p.lo, +1, &found);
      b.lo = p.lo_incl || !found ? v : v + 1;
      if (!found) b.lo = v;  // PackBound(+1) already rounded up
    }
    if (p.hi.has_value()) {
      bool found = true;
      int64_t v = t.PackBound(p.col, *p.hi, -1, &found);
      b.hi = p.hi_incl || !found ? v : v - 1;
    }
    if (b.lo > b.hi) b.impossible = true;
    out.push_back(b);
  }
  return out;
}

bool CheckPreds(const std::vector<BoundPred>& preds, const int64_t* row) {
  for (const auto& p : preds) {
    const int64_t v = row[p.col];
    if (v < p.lo || v > p.hi) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Wide-row layout over base + joined dimension tables.
// ---------------------------------------------------------------------

struct Layout {
  std::vector<Table*> tables;  // 0 = base, then query join order
  std::vector<int> offset;
  int total = 0;

  void Build(Table* base, const std::vector<Table*>& dims) {
    tables.clear();
    offset.clear();
    tables.push_back(base);
    for (Table* d : dims) tables.push_back(d);
    int off = 0;
    for (Table* t : tables) {
      offset.push_back(off);
      off += t->num_columns();
    }
    total = off;
  }
  int SlotOf(ColRef c) const { return offset[c.table] + c.col; }
  ValueType TypeOf(ColRef c) const {
    return tables[c.table]->schema().column(c.col).type;
  }
};

// ---------------------------------------------------------------------
// Scalar expressions over the wide packed row, double domain.
// ---------------------------------------------------------------------

double DecodeNumeric(int64_t packed, ValueType t) {
  return t == ValueType::kDouble ? UnpackDouble(packed)
                                 : static_cast<double>(packed);
}

double EvalExpr(const Expr& e, const Layout& L, const int64_t* wide) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      return e.constant;
    case Expr::Kind::kCol:
      return DecodeNumeric(wide[L.SlotOf(e.col)], L.TypeOf(e.col));
    case Expr::Kind::kAdd:
      return EvalExpr(e.children[0], L, wide) + EvalExpr(e.children[1], L, wide);
    case Expr::Kind::kSub:
      return EvalExpr(e.children[0], L, wide) - EvalExpr(e.children[1], L, wide);
    case Expr::Kind::kMul:
      return EvalExpr(e.children[0], L, wide) * EvalExpr(e.children[1], L, wide);
  }
  return 0;
}

/// Evaluate an expression against a ColumnBatch (base table only).
double EvalExprBatch(const Expr& e, const Layout& L,
                     const std::vector<const int64_t*>& cols,
                     const std::vector<int>& slot_of_col, int i) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      return e.constant;
    case Expr::Kind::kCol: {
      assert(e.col.table == 0);
      const int ci = slot_of_col[e.col.col];
      assert(ci >= 0);
      return DecodeNumeric(cols[ci][i], L.TypeOf(e.col));
    }
    case Expr::Kind::kAdd:
      return EvalExprBatch(e.children[0], L, cols, slot_of_col, i) +
             EvalExprBatch(e.children[1], L, cols, slot_of_col, i);
    case Expr::Kind::kSub:
      return EvalExprBatch(e.children[0], L, cols, slot_of_col, i) -
             EvalExprBatch(e.children[1], L, cols, slot_of_col, i);
    case Expr::Kind::kMul:
      return EvalExprBatch(e.children[0], L, cols, slot_of_col, i) *
             EvalExprBatch(e.children[1], L, cols, slot_of_col, i);
  }
  return 0;
}

void CollectExprCols(const Expr& e, std::vector<ColRef>* out) {
  if (e.kind == Expr::Kind::kCol) out->push_back(e.col);
  for (const auto& c : e.children) CollectExprCols(c, out);
}

// ---------------------------------------------------------------------
// Aggregation state.
// ---------------------------------------------------------------------

struct AggDesc {
  AggSpec::Fn fn;
  bool has_arg = false;
  Expr arg;
  /// Fast path: arg is exactly one column (min/max track packed values,
  /// integer sums stay exact in int64).
  bool arg_is_col = false;
  ColRef arg_col;
  bool arg_is_int = false;  // integer-typed single column
};

// AggState lives in exec/agg_hash.h: the flat aggregate hash table stores
// them contiguously per group.

void AggUpdate(const AggDesc& a, AggState* s, const Layout& L,
               const int64_t* wide) {
  switch (a.fn) {
    case AggSpec::Fn::kCount:
      ++s->count;
      return;
    case AggSpec::Fn::kSum:
    case AggSpec::Fn::kAvg: {
      ++s->count;
      if (a.arg_is_col && a.arg_is_int) {
        s->i += wide[L.SlotOf(a.arg_col)];
      } else {
        s->d += EvalExpr(a.arg, L, wide);
      }
      return;
    }
    case AggSpec::Fn::kMin:
    case AggSpec::Fn::kMax: {
      if (a.arg_is_col) {
        const int64_t v = wide[L.SlotOf(a.arg_col)];
        if (!s->has || (a.fn == AggSpec::Fn::kMin ? v < s->packed_minmax
                                                  : v > s->packed_minmax)) {
          s->packed_minmax = v;
        }
      } else {
        const double v = EvalExpr(a.arg, L, wide);
        if (!s->has || (a.fn == AggSpec::Fn::kMin ? v < s->d : v > s->d)) {
          s->d = v;
        }
      }
      s->has = true;
      return;
    }
  }
}

void AggMerge(const AggDesc& a, AggState* into, const AggState& from) {
  switch (a.fn) {
    case AggSpec::Fn::kCount:
      into->count += from.count;
      return;
    case AggSpec::Fn::kSum:
    case AggSpec::Fn::kAvg:
      into->count += from.count;
      into->i += from.i;
      into->d += from.d;
      return;
    case AggSpec::Fn::kMin:
    case AggSpec::Fn::kMax:
      if (!from.has) return;
      if (!into->has) {
        *into = from;
        return;
      }
      if (a.arg_is_col) {
        if (a.fn == AggSpec::Fn::kMin
                ? from.packed_minmax < into->packed_minmax
                : from.packed_minmax > into->packed_minmax) {
          into->packed_minmax = from.packed_minmax;
        }
      } else {
        if (a.fn == AggSpec::Fn::kMin ? from.d < into->d : from.d > into->d) {
          into->d = from.d;
        }
      }
      return;
  }
}

Value AggFinal(const AggDesc& a, const AggState& s, const Layout& L) {
  switch (a.fn) {
    case AggSpec::Fn::kCount:
      return Value::Int64(static_cast<int64_t>(s.count));
    case AggSpec::Fn::kSum:
      if (a.arg_is_col && a.arg_is_int) return Value::Int64(s.i);
      return Value::Double(s.d);
    case AggSpec::Fn::kAvg: {
      const double total =
          (a.arg_is_col && a.arg_is_int) ? static_cast<double>(s.i) : s.d;
      return Value::Double(s.count ? total / s.count : 0.0);
    }
    case AggSpec::Fn::kMin:
    case AggSpec::Fn::kMax:
      if (!s.has) return Value::Null();
      if (a.arg_is_col) {
        return L.tables[a.arg_col.table]->UnpackValue(a.arg_col.col,
                                                      s.packed_minmax);
      }
      return Value::Double(s.d);
  }
  return Value::Null();
}

// ---------------------------------------------------------------------
// Join structures.
// ---------------------------------------------------------------------

// The join hash table (exec/join_hash.h) carries both the row-mode Find
// and the vectorized ComputeHashes/FindSlots/ExpandMatches kernels; one
// hot probe is a few nanoseconds, which is what makes batch-mode joins an
// order of magnitude cheaper per row than row-mode joins (whose per-row
// operator interpretation overhead is charged separately).
struct HashDim {
  int table_idx = 0;  // layout index
  std::vector<int64_t> rows;  // flat, stride = dim ncols
  int stride = 0;
  std::vector<std::pair<int64_t, uint32_t>> build_pairs;
  FlatJoinMap map;
  /// Build-side Bloom filter, pushed into CSI base scans as a join-key
  /// pre-filter (sideways information passing). Empty when never built.
  BlockedBloomFilter bloom;
};

struct NlDim {
  int table_idx = 0;
  Table* table = nullptr;
  BTree* tree = nullptr;
  int kw = 0;
  /// entry slot per dim column (0..kw-1 key slots, kw.. payload), -1 absent.
  std::vector<int> entry_slot;
  std::vector<BoundPred> preds;
  /// pk-hint slots within the entry (for FetchRow when a column is absent).
  std::vector<int> pk_slots;
  bool covering = true;  // all needed dim columns present in the entry
  std::vector<int> needed_cols;
};

struct JoinExec {
  JoinStep::Method method;
  int base_join_slot = 0;  // wide slot of the base join column
  int dim_offset = 0;      // wide offset of this dim
  HashDim hash;
  NlDim nl;
};

}  // namespace

// ---------------------------------------------------------------------
// Executor implementation.
// ---------------------------------------------------------------------

struct Executor::Impl {
  const ExecContext& ctx;
  const Query& q;
  const PhysicalPlan& plan;
  QueryResult res;

  Layout L;
  Table* base = nullptr;
  std::vector<BoundPred> base_preds;
  std::vector<int> needed_base_cols;  // columns the query actually touches
  std::vector<JoinExec> joins;
  std::vector<AggDesc> aggs;
  std::vector<int> group_slots;
  uint64_t table_hash = 0;

  // Per-operator observability: one OperatorProfile per plan node, built
  // in Setup (exec/explain.h defines the layout). Every data-path counter
  // increment during execution targets exactly one node's metrics block;
  // Execute() rolls all blocks up into res.metrics at the end, so the
  // query totals stay what they always were while EXPLAIN ANALYZE can
  // attribute them. Residual costs with no operator home (lock waits,
  // version-chain probes) charge res.metrics directly.
  std::vector<OperatorProfile> ops;
  OperatorIndex opx;
  QueryMetrics* OpM(int idx) { return idx >= 0 ? &ops[idx].metrics : &res.metrics; }
  QueryMetrics* ScanM() { return OpM(opx.scan); }

  // Locking strategy for this statement.
  bool use_table_lock = false;
  bool row_read_locks = false;

  /// Set by RunSelect when this statement's base scan routes through the
  /// cooperative shared-scan pass (ctx.scan_scheduler). The scan is then
  /// consumed by this thread alone (the sharing IS the parallelism), so
  /// DriveBaseScan takes the scheduler branch and reported DOP is 1.
  bool use_shared_scan = false;

  /// WAL id this statement's mutations were logged under, and whether the
  /// statement owns its durability (autocommit: no enclosing transaction,
  /// so Execute commits AFTER the exclusive latch releases — a group-
  /// commit wait inside the latch would serialize all traffic through the
  /// commit window).
  uint64_t wal_txn = 0;
  bool wal_autocommit = false;
  bool wal_wrote = false;

  Impl(const ExecContext& c, const Query& qq, const PhysicalPlan& p)
      : ctx(c), q(qq), plan(p) {}

  int dop() const {
    int d = plan.dop;
    int hw = ctx.max_dop > 0 ? ctx.max_dop : ThreadPool::HardwareDop();
    return std::clamp(d, 1, std::max(1, hw));
  }

  Status Setup();
  Status PrepareJoins();
  /// Index into plan.joins of the driving (outer) join step, or -1.
  int DrivingStepIndex() const {
    if (plan.driving_join < 0) return -1;
    for (size_t s = 0; s < plan.joins.size(); ++s) {
      if (plan.joins[s].join_idx == plan.driving_join) {
        return static_cast<int>(s);
      }
    }
    return -1;
  }
  Status RunSelect();
  Status RunDml();

  // Base scan driving `emit(rid, base_row)` with `nworkers` workers.
  // `emit` must be thread-compatible (worker-local state captured by the
  // caller via the worker index).
  using EmitFn = std::function<bool(int worker, int64_t rid, const int64_t*)>;
  Status DriveBaseScan(int nworkers, const EmitFn& emit);

  // Schedule `nmorsels` morsels on the shared process-wide pool with at
  // most `nworkers` concurrent participants. `fn(slot, morsel, wm)` runs
  // with a per-slot metrics block; slots are exclusively owned, so fn may
  // index worker-local sinks by `slot`. Per-slot metrics are merged into
  // `m` along with the pool's scheduling counters when the loop finishes.
  // `label` names the operator in the Chrome trace (--trace): when tracing
  // is on, every morsel emits one complete event on its slot's lane.
  // `fn` returns Status; the first non-OK morsel trips the loop's cancel
  // flag so remaining morsels are skipped, and that status (or a pool-level
  // injected status) is returned after per-slot metrics are merged.
  template <typename Fn>
  Status MorselLoop(uint64_t nmorsels, int nworkers, QueryMetrics* m,
                    const std::string& label, Fn&& fn) {
    std::vector<QueryMetrics> wms(nworkers);
    std::atomic<bool> cancel{false};
    std::mutex err_mu;
    Status first_err;
    MorselStats ms = ThreadPool::Global().ParallelFor(
        nmorsels, nworkers,
        [&](int slot, uint64_t mi) {
          const bool tracing = Trace::Enabled();
          const uint64_t t0 = tracing ? Trace::Global().NowUs() : 0;
          Timer t;
          Status s = fn(slot, mi, &wms[slot]);
          wms[slot].cpu_ns += static_cast<uint64_t>(t.ElapsedMs() * 1e6);
          if (tracing) {
            Trace::Global().Record(label, slot, t0,
                                   Trace::Global().NowUs() - t0, mi,
                                   ctx.capture.trace_id);
          }
          if (!s.ok()) {
            {
              std::lock_guard<std::mutex> g(err_mu);
              if (first_err.ok()) first_err = std::move(s);
            }
            cancel.store(true, std::memory_order_relaxed);
          }
        },
        &cancel);
    for (auto& wm : wms) m->Merge(wm);
    m->morsels_scheduled += ms.scheduled;
    m->morsels_stolen += ms.stolen;
    if (!first_err.ok()) return first_err;
    return ms.status;
  }

  // Errors raised inside scan callbacks (row-lock acquisition, non-covering
  // index fetches, NL probes) cannot flow out through the bool-returning
  // callback chain; they are recorded here and checked once the scan
  // returns. First error wins.
  std::mutex side_err_mu;
  Status side_err;
  void RecordSideError(Status s) {
    if (s.ok()) return;
    std::lock_guard<std::mutex> g(side_err_mu);
    if (side_err.ok()) side_err = std::move(s);
  }
  Status TakeSideError() {
    std::lock_guard<std::mutex> g(side_err_mu);
    return side_err;
  }

  // CSI batch scan fast path plumbing.
  bool CsiFastPathEligible() const;

  Status AcquireReadLocks();
  Status LockRowX(int64_t rid);
  void PayVersionCost(int64_t rid);
};

Status Executor::Impl::Setup() {
  base = ctx.db->GetTable(q.base.table);
  if (base == nullptr) return Status::NotFound("table " + q.base.table);
  std::vector<Table*> dims;
  for (const auto& j : q.joins) {
    Table* d = ctx.db->GetTable(j.dim.table);
    if (d == nullptr) return Status::NotFound("table " + j.dim.table);
    dims.push_back(d);
  }
  L.Build(base, dims);
  base_preds = BindPreds(*base, q.base.preds);
  table_hash = LockManager::HashTable(q.base.table);

  // Base columns the query touches (DML and SELECT * need everything).
  {
    std::vector<char> need(base->num_columns(), 0);
    if (q.kind != Query::Kind::kSelect ||
        (q.aggs.empty() && q.select_cols.empty())) {
      std::fill(need.begin(), need.end(), 1);
    } else {
      for (const auto& a : q.aggs) {
        if (a.arg) {
          std::vector<ColRef> refs;
          CollectExprCols(*a.arg, &refs);
          for (const auto& r : refs) {
            if (r.table == 0) need[r.col] = 1;
          }
        }
      }
      auto mark = [&](const std::vector<ColRef>& refs) {
        for (const auto& r : refs) {
          if (r.table == 0) need[r.col] = 1;
        }
      };
      mark(q.group_by);
      mark(q.order_by);
      mark(q.select_cols);
      for (const auto& j : q.joins) need[j.base_col] = 1;
      for (const auto& p : q.base.preds) need[p.col] = 1;
    }
    for (int c = 0; c < base->num_columns(); ++c) {
      if (need[c]) needed_base_cols.push_back(c);
    }
  }

  for (const auto& a : q.aggs) {
    AggDesc d;
    d.fn = a.fn;
    d.has_arg = a.arg.has_value();
    if (d.has_arg) {
      d.arg = *a.arg;
      if (d.arg.kind == Expr::Kind::kCol) {
        d.arg_is_col = true;
        d.arg_col = d.arg.col;
        d.arg_is_int = L.TypeOf(d.arg_col) != ValueType::kDouble;
      }
    }
    aggs.push_back(std::move(d));
  }
  for (const auto& g : q.group_by) group_slots.push_back(L.SlotOf(g));

  // Locking policy.
  if (ctx.txn != nullptr && ctx.txns != nullptr) {
    if (q.is_read_only()) {
      if (ctx.txn->isolation() != IsolationLevel::kSnapshot) {
        use_table_lock = plan.est_base_rows > ctx.table_lock_threshold;
        row_read_locks = !use_table_lock;
      }
    }
  }

  ops = BuildOperatorSkeleton(q, plan, &opx);
  return Status::OK();
}

// Scan one dimension with its own access path, invoking fn(dim_row).
static Status ScanDim(Table* dim, const AccessPath& path,
                      const std::vector<BoundPred>& preds,
                      const std::function<void(const int64_t*)>& fn,
                      QueryMetrics* m, double row_overhead_ns) {
  const int ncols = dim->num_columns();
  for (const auto& p : preds) {
    if (p.impossible) return Status::OK();
  }
  switch (path.kind) {
    case AccessPath::Kind::kHeapScan: {
      uint64_t seen = 0;
      Status hs = dim->heap()->Scan(
          [&](uint64_t, const int64_t* row) {
            ++seen;
            if (CheckPreds(preds, row)) fn(row);
            return true;
          },
          m);
      if (m != nullptr) {
        m->cpu_ns += static_cast<uint64_t>(seen * row_overhead_ns);
      }
      return hs;
    }
    case AccessPath::Kind::kCsiScan: {
      ColumnStoreIndex* csi = path.index_name.empty()
                                  ? dim->primary_csi()
                                  : dim->FindSecondary(path.index_name)->csi.get();
      std::vector<int> all(ncols);
      for (int c = 0; c < ncols; ++c) all[c] = c;
      std::vector<SegPredicate> sp;
      for (const auto& p : preds) sp.push_back({p.col, p.lo, p.hi});
      PackedRow row(ncols);
      auto emit = [&](const ColumnBatch& b) {
        for (int i = 0; i < b.count; ++i) {
          for (int c = 0; c < ncols; ++c) row[c] = b.cols[c][i];
          fn(row.data());
        }
        return true;
      };
      HD_RETURN_IF_ERROR(
          csi->ScanGroups(0, csi->num_row_groups(), all, sp, emit, m));
      return csi->ScanDelta(all, sp, emit, m);
    }
    case AccessPath::Kind::kBTreeRange:
    case AccessPath::Kind::kBTreeFullScan: {
      BTree* tree;
      std::vector<int> key_cols;
      std::vector<int> payload_cols;
      bool payload_full = false;
      if (path.index_name.empty()) {
        tree = dim->primary_btree();
        key_cols = dim->primary_key_cols();
        payload_full = true;
      } else {
        SecondaryIndex* si = dim->FindSecondary(path.index_name);
        if (si == nullptr || !si->btree) {
          return Status::NotFound("index " + path.index_name);
        }
        tree = si->btree.get();
        key_cols = si->def.key_cols;
        payload_cols = si->payload_cols;
      }
      if (tree == nullptr) return Status::Internal("no btree for dim");
      const int kw = static_cast<int>(key_cols.size()) + 1;
      // Build bounds from preds on leading key columns.
      Bound lo, hi;
      for (int k = 0; k < static_cast<int>(key_cols.size()); ++k) {
        const BoundPred* bp = nullptr;
        for (const auto& p : preds) {
          if (p.col == key_cols[k]) bp = &p;
        }
        if (bp == nullptr) break;
        lo.key.push_back(bp->lo);
        hi.key.push_back(bp->hi);
        if (bp->lo != bp->hi) break;
      }
      PackedRow row(ncols);
      std::vector<char> have(ncols, 0);
      uint64_t seen = 0;
      Status fetch_err;
      Status ts = tree->Scan(lo, hi, [&](const int64_t* key, const int64_t* payload) {
        ++seen;
        std::fill(have.begin(), have.end(), 0);
        for (size_t k = 0; k < key_cols.size(); ++k) {
          row[key_cols[k]] = key[k];
          have[key_cols[k]] = 1;
        }
        if (payload_full) {
          for (int c = 0; c < ncols; ++c) row[c] = payload[c];
        } else {
          for (size_t pi = 0; pi < payload_cols.size(); ++pi) {
            row[payload_cols[pi]] = payload[pi];
            have[payload_cols[pi]] = 1;
          }
          // Non-covering: fetch the full row (key lookup).
          bool missing = false;
          for (int c = 0; c < ncols && !missing; ++c) missing = !have[c];
          if (missing) {
            std::vector<int64_t> pk_hint;
            for (int pk : dim->primary_key_cols()) pk_hint.push_back(row[pk]);
            PackedRow full;
            Status fs = dim->FetchRow(key[kw - 1], pk_hint, &full, m);
            if (fs.ok()) {
              row = full;
            } else if (fs.IsIoError()) {
              // A failed read must fail the scan; a vanished row is skipped.
              fetch_err = std::move(fs);
              return false;
            }
          }
        }
        if (CheckPreds(preds, row.data())) fn(row.data());
        return true;
      }, m);
      if (m != nullptr) {
        m->cpu_ns += static_cast<uint64_t>(seen * row_overhead_ns);
      }
      if (!fetch_err.ok()) return fetch_err;
      return ts;
    }
  }
  return Status::Internal("unreachable");
}

Status Executor::Impl::PrepareJoins() {
  const int driving = DrivingStepIndex();
  for (size_t s = 0; s < plan.joins.size(); ++s) {
    const JoinStep& step = plan.joins[s];
    // Build-side work (dim scan, hash build, NL setup) is attributed to
    // this join step's operator block.
    QueryMetrics* m = OpM(opx.join[s]);
    Timer tstep;
    if (static_cast<int>(s) == driving) {
      // The driving dimension is scanned as the outer side; keep a
      // placeholder so pipeline step indices stay aligned.
      JoinExec je;
      je.method = JoinStep::Method::kHash;
      je.base_join_slot = -1;
      joins.push_back(std::move(je));
      continue;
    }
    const JoinClause& jc = q.joins[step.join_idx];
    Table* dim = L.tables[step.join_idx + 1];
    JoinExec je;
    je.method = step.method;
    je.base_join_slot = L.SlotOf(ColRef{0, jc.base_col});
    je.dim_offset = L.offset[step.join_idx + 1];
    std::vector<BoundPred> dim_preds = BindPreds(*dim, jc.dim.preds);
    if (step.method == JoinStep::Method::kHash) {
      je.hash.table_idx = step.join_idx + 1;
      je.hash.stride = dim->num_columns();
      // Morsel-parallel build: a CSI dimension with multiple row groups is
      // scanned over the morsel pool into per-worker partitions, which are
      // then stitched (index offset fix-up) into the single flat build
      // array the counting-sort Build consumes. MorselLoop merges the
      // per-slot metrics into `m`, so build time stays attributed to this
      // join's operator block exactly as in the serial path.
      ColumnStoreIndex* dcsi = nullptr;
      if (step.dim_path.kind == AccessPath::Kind::kCsiScan) {
        if (step.dim_path.index_name.empty()) {
          dcsi = dim->primary_csi();
        } else {
          SecondaryIndex* si = dim->FindSecondary(step.dim_path.index_name);
          dcsi = si != nullptr && si->csi ? si->csi.get() : nullptr;
        }
      }
      const int bw = dop();
      bool impossible = false;
      for (const auto& p : dim_preds) impossible |= p.impossible;
      if (!impossible && dcsi != nullptr && bw > 1 &&
          dcsi->num_row_groups() > 1) {
        // Decode only the columns the query touches on this dimension
        // (join column, dim predicates, downstream references); the flat
        // rows' other slots stay zero and are never read.
        const int ncols = dim->num_columns();
        std::vector<char> needed(ncols, 0);
        needed[jc.dim_col] = 1;
        for (const auto& p : dim_preds) needed[p.col] = 1;
        std::vector<ColRef> refs;
        for (const auto& a : q.aggs) {
          if (a.arg) CollectExprCols(*a.arg, &refs);
        }
        for (const auto& g : q.group_by) refs.push_back(g);
        for (const auto& o : q.order_by) refs.push_back(o);
        for (const auto& sc : q.select_cols) refs.push_back(sc);
        for (const auto& r : refs) {
          if (r.table == step.join_idx + 1) needed[r.col] = 1;
        }
        std::vector<int> dcols;
        for (int c = 0; c < ncols; ++c) {
          if (needed[c]) dcols.push_back(c);
        }
        std::vector<SegPredicate> sp;
        for (const auto& p : dim_preds) sp.push_back({p.col, p.lo, p.hi});
        struct BuildPart {
          std::vector<int64_t> rows;
          std::vector<std::pair<int64_t, uint32_t>> pairs;
        };
        std::vector<BuildPart> parts(bw);
        std::unordered_set<int64_t> dead;
        HD_RETURN_IF_ERROR(dcsi->SnapshotDeleteBuffer(&dead, m));
        const int ngroups = dcsi->num_row_groups();
        const int stride = je.hash.stride;
        HD_RETURN_IF_ERROR(MorselLoop(
            static_cast<uint64_t>(ngroups) + 1, bw, m,
            ops[opx.join[s]].name + "[build]",
            [&](int slot, uint64_t mi, QueryMetrics* wm) -> Status {
              BuildPart& pt = parts[slot];
              auto handler = [&](const ColumnBatch& b) {
                for (int i = 0; i < b.count; ++i) {
                  const size_t off = pt.rows.size();
                  pt.rows.resize(off + stride, 0);
                  for (size_t ci = 0; ci < dcols.size(); ++ci) {
                    pt.rows[off + dcols[ci]] = b.cols[ci][i];
                  }
                  pt.pairs.emplace_back(pt.rows[off + jc.dim_col],
                                        static_cast<uint32_t>(off / stride));
                }
                return true;
              };
              if (mi < static_cast<uint64_t>(ngroups)) {
                const int g = static_cast<int>(mi);
                return dcsi->ScanGroups(g, g + 1, dcols, sp, handler, wm,
                                        /*need_locators=*/false, &dead);
              }
              return dcsi->ScanDelta(dcols, sp, handler, wm,
                                     /*need_locators=*/false);
            }));
        for (BuildPart& pt : parts) {
          const uint32_t off =
              static_cast<uint32_t>(je.hash.rows.size() / stride);
          je.hash.rows.insert(je.hash.rows.end(), pt.rows.begin(),
                              pt.rows.end());
          for (const auto& [k, v] : pt.pairs) {
            je.hash.build_pairs.emplace_back(k, v + off);
          }
        }
      } else if (!impossible) {
        HD_RETURN_IF_ERROR(ScanDim(
            dim, step.dim_path, dim_preds,
            [&](const int64_t* row) {
              const uint32_t idx =
                  static_cast<uint32_t>(je.hash.rows.size() / je.hash.stride);
              je.hash.rows.insert(je.hash.rows.end(), row,
                                  row + je.hash.stride);
              je.hash.build_pairs.emplace_back(row[jc.dim_col], idx);
            },
            m, ctx.serial_row_overhead_ns));
      }
      // Deterministic kill seam: fires after the build-side scan (latches
      // and any admission pass already held) so tests can prove an error
      // here unwinds without leaking either.
      HD_RETURN_IF_ERROR(EvalFailPoint("exec.join_build", m));
      je.hash.map.Build(je.hash.build_pairs);
      // Build the pushdown Bloom filter from the build keys before they
      // are discarded; an empty build side leaves the filter all-zero
      // (MayContain always false), which is exactly the join's semantics.
      je.hash.bloom.Init(je.hash.build_pairs.size());
      for (const auto& [k, v] : je.hash.build_pairs) {
        (void)v;
        je.hash.bloom.Insert(k);
      }
      je.hash.build_pairs.clear();
      je.hash.build_pairs.shrink_to_fit();
    } else {
      je.nl.table_idx = step.join_idx + 1;
      je.nl.table = dim;
      je.nl.preds = dim_preds;
      const int ncols = dim->num_columns();
      std::vector<int> key_cols;
      std::vector<int> payload_cols;
      bool payload_full = false;
      if (step.dim_path.index_name.empty()) {
        je.nl.tree = dim->primary_btree();
        key_cols = dim->primary_key_cols();
        payload_full = true;
      } else {
        SecondaryIndex* si = dim->FindSecondary(step.dim_path.index_name);
        if (si == nullptr || !si->btree) {
          return Status::NotFound("NL index " + step.dim_path.index_name);
        }
        je.nl.tree = si->btree.get();
        key_cols = si->def.key_cols;
        payload_cols = si->payload_cols;
      }
      if (je.nl.tree == nullptr || key_cols.empty() ||
          key_cols[0] != jc.dim_col) {
        return Status::InvalidArgument(
            "IndexNL join requires a B+ tree leading on the join column");
      }
      je.nl.kw = static_cast<int>(key_cols.size()) + 1;
      je.nl.entry_slot.assign(ncols, -1);
      for (size_t k = 0; k < key_cols.size(); ++k) {
        je.nl.entry_slot[key_cols[k]] = static_cast<int>(k);
      }
      if (payload_full) {
        for (int c = 0; c < ncols; ++c) {
          if (je.nl.entry_slot[c] < 0) je.nl.entry_slot[c] = je.nl.kw + c;
        }
      } else {
        for (size_t pi = 0; pi < payload_cols.size(); ++pi) {
          if (je.nl.entry_slot[payload_cols[pi]] < 0) {
            je.nl.entry_slot[payload_cols[pi]] =
                je.nl.kw + static_cast<int>(pi);
          }
        }
      }
      for (int pk : dim->primary_key_cols()) {
        je.nl.pk_slots.push_back(je.nl.entry_slot[pk]);
      }
      // Needed dim columns: preds + any column referenced downstream.
      std::vector<char> needed(ncols, 0);
      for (const auto& p : dim_preds) needed[p.col] = 1;
      std::vector<ColRef> refs;
      for (const auto& a : q.aggs) {
        if (a.arg) CollectExprCols(*a.arg, &refs);
      }
      for (const auto& g : q.group_by) refs.push_back(g);
      for (const auto& o : q.order_by) refs.push_back(o);
      for (const auto& sc : q.select_cols) refs.push_back(sc);
      for (const auto& r : refs) {
        if (r.table == step.join_idx + 1) needed[r.col] = 1;
      }
      for (int c = 0; c < ncols; ++c) {
        if (needed[c]) {
          je.nl.needed_cols.push_back(c);
          if (je.nl.entry_slot[c] < 0) je.nl.covering = false;
        }
      }
    }
    m->cpu_ns += static_cast<uint64_t>(tstep.ElapsedMs() * 1e6);
    joins.push_back(std::move(je));
  }
  return Status::OK();
}

Status Executor::Impl::AcquireReadLocks() {
  if (!use_table_lock) return Status::OK();
  return ctx.txns->locks()->Acquire(ctx.txn->id(),
                                    LockResource{table_hash},
                                    LockMode::kS, ctx.lock_timeout_ms);
}

Status Executor::Impl::LockRowX(int64_t rid) {
  HD_RETURN_IF_ERROR(ctx.txns->locks()->Acquire(
      ctx.txn->id(), LockResource{table_hash}, LockMode::kIX,
      ctx.lock_timeout_ms));
  return ctx.txns->locks()->Acquire(ctx.txn->id(),
                                    LockResource{table_hash, rid},
                                    LockMode::kX, ctx.lock_timeout_ms);
}

void Executor::Impl::PayVersionCost(int64_t rid) {
  if (ctx.txn == nullptr || ctx.txns == nullptr) return;
  if (ctx.txn->isolation() != IsolationLevel::kSnapshot) return;
  // SI readers traverse the version chain for recently-updated rows.
  (void)ctx.txns->VersionChainLength(table_hash, rid, ctx.txn->snapshot_ts());
}

// ---------------------------------------------------------------------
// Base scan driver.
// ---------------------------------------------------------------------

Status Executor::Impl::DriveBaseScan(int nworkers, const EmitFn& emit) {
  for (const auto& p : base_preds) {
    if (p.impossible) return Status::OK();
  }
  QueryMetrics* m = ScanM();
  const std::string& scan_label = ops[opx.scan].name;

  // Resolve residual predicates per path.
  switch (plan.base.kind) {
    case AccessPath::Kind::kHeapScan: {
      HeapFile* h = base->heap();
      if (h == nullptr) return Status::Internal("no heap primary");
      const uint64_t n = h->num_rows();
      const double row_oh = nworkers > 1 ? ctx.parallel_row_overhead_ns
                                         : ctx.serial_row_overhead_ns;
      auto worker = [&](int w, uint64_t lo, uint64_t hi,
                        QueryMetrics* wm) -> Status {
        uint64_t seen = 0;
        Status ss = h->ScanRange(lo, hi, [&](uint64_t rid, const int64_t* row) {
          ++seen;
          if (!CheckPreds(base_preds, row)) return true;
          return emit(w, static_cast<int64_t>(rid), row);
        }, wm);
        wm->cpu_ns += static_cast<uint64_t>(seen * row_oh);
        return ss;
      };
      if (nworkers <= 1) {
        Timer t;
        Status ss = worker(0, 0, n, m);
        m->cpu_ns += static_cast<uint64_t>(t.ElapsedMs() * 1e6);
        return ss;
      }
      // Morsel = a fixed-size page range; the pool's participants drain
      // and steal morsels instead of owning one static range each.
      constexpr uint64_t kHeapMorselRows = 65536;
      const uint64_t nmorsels = (n + kHeapMorselRows - 1) / kHeapMorselRows;
      std::atomic<bool> stop{false};
      return MorselLoop(
          nmorsels, nworkers, m, scan_label,
          [&](int slot, uint64_t mi, QueryMetrics* wm) -> Status {
            if (stop.load(std::memory_order_relaxed)) return Status::OK();
            uint64_t seen = 0;
            const uint64_t lo = mi * kHeapMorselRows;
            const uint64_t hi = std::min(n, lo + kHeapMorselRows);
            Status ss = h->ScanRange(lo, hi,
                                     [&](uint64_t rid, const int64_t* row) {
                                       ++seen;
                                       if (!CheckPreds(base_preds, row)) {
                                         return true;
                                       }
                                       if (!emit(slot,
                                                 static_cast<int64_t>(rid),
                                                 row)) {
                                         stop.store(true,
                                                    std::memory_order_relaxed);
                                         return false;
                                       }
                                       return true;
                                     },
                                     wm);
            wm->cpu_ns += static_cast<uint64_t>(seen * row_oh);
            return ss;
          });
    }
    case AccessPath::Kind::kBTreeRange:
    case AccessPath::Kind::kBTreeFullScan: {
      BTree* tree;
      std::vector<int> key_cols;
      std::vector<int> payload_cols;
      bool payload_full = false;
      if (plan.base.index_name.empty()) {
        tree = base->primary_btree();
        key_cols = base->primary_key_cols();
        payload_full = true;
      } else {
        SecondaryIndex* si = base->FindSecondary(plan.base.index_name);
        if (si == nullptr || !si->btree) {
          return Status::NotFound("index " + plan.base.index_name);
        }
        tree = si->btree.get();
        key_cols = si->def.key_cols;
        payload_cols = si->payload_cols;
      }
      if (tree == nullptr) return Status::Internal("no btree primary");
      const int kw = static_cast<int>(key_cols.size()) + 1;
      const int ncols = base->num_columns();
      Bound lo, hi;
      if (plan.base.kind == AccessPath::Kind::kBTreeRange) {
        for (int k = 0; k < static_cast<int>(key_cols.size()); ++k) {
          const BoundPred* bp = nullptr;
          for (const auto& p : base_preds) {
            if (p.col == key_cols[k]) bp = &p;
          }
          if (bp == nullptr) break;
          bool bounded_lo = bp->lo != INT64_MIN;
          bool bounded_hi = bp->hi != INT64_MAX;
          if (bounded_lo) lo.key.push_back(bp->lo);
          if (bounded_hi) hi.key.push_back(bp->hi);
          if (!bounded_lo || !bounded_hi || bp->lo != bp->hi) break;
        }
      }
      // Per-entry handler shared by serial/parallel variants.
      std::vector<char> have_template(ncols, 0);
      auto make_handler = [&](int w, PackedRow* rowbuf, QueryMetrics* wm,
                              uint64_t* seen) {
        return [&, w, rowbuf, wm, seen](const int64_t* key,
                                        const int64_t* payload) {
          ++*seen;
          PackedRow& row = *rowbuf;
          if (payload_full) {
            std::copy(payload, payload + ncols, row.begin());
          } else {
            std::vector<char> have = have_template;
            for (size_t k = 0; k < key_cols.size(); ++k) {
              row[key_cols[k]] = key[k];
              have[key_cols[k]] = 1;
            }
            for (size_t pi = 0; pi < payload_cols.size(); ++pi) {
              row[payload_cols[pi]] = payload[pi];
              have[payload_cols[pi]] = 1;
            }
            // Check covered predicates before paying for a lookup.
            for (const auto& p : base_preds) {
              if (have[p.col]) {
                const int64_t v = row[p.col];
                if (v < p.lo || v > p.hi) return true;
              }
            }
            bool missing = false;
            for (int c = 0; c < ncols; ++c) {
              if (!have[c]) { missing = true; break; }
            }
            if (missing) {
              std::vector<int64_t> pk_hint;
              for (int pk : base->primary_key_cols()) pk_hint.push_back(row[pk]);
              PackedRow full;
              Status fs = base->FetchRow(key[kw - 1], pk_hint, &full, wm);
              if (!fs.ok()) {
                // A failed read fails the scan; a vanished row is skipped.
                if (!fs.IsIoError()) return true;
                RecordSideError(std::move(fs));
                return false;
              }
              row = full;
            }
          }
          if (!CheckPreds(base_preds, row.data())) return true;
          return emit(w, key[kw - 1], row.data());
        };
      };
      if (nworkers <= 1) {
        Timer t;
        PackedRow rowbuf(ncols);
        uint64_t seen = 0;
        Status ss = tree->Scan(lo, hi, make_handler(0, &rowbuf, m, &seen), m);
        m->cpu_ns += static_cast<uint64_t>(t.ElapsedMs() * 1e6) +
                     static_cast<uint64_t>(seen * ctx.serial_row_overhead_ns);
        return ss;
      }
      // Morsel = a small batch of leaves (16 morsels per participant at
      // the initial split keeps stealing granular without per-leaf
      // scheduling overhead).
      std::vector<LeafHandle> leaves;
      HD_RETURN_IF_ERROR(tree->CollectLeaves(lo, hi, m, &leaves));
      const uint64_t nleaves = leaves.size();
      const uint64_t chunk = std::max<uint64_t>(
          1, nleaves / (16ull * static_cast<uint64_t>(nworkers)));
      const uint64_t nmorsels = (nleaves + chunk - 1) / chunk;
      std::vector<PackedRow> rowbufs(nworkers, PackedRow(ncols));
      return MorselLoop(
          nmorsels, nworkers, m, scan_label,
          [&](int slot, uint64_t mi, QueryMetrics* wm) -> Status {
            uint64_t seen = 0;
            auto handler = make_handler(slot, &rowbufs[slot], wm, &seen);
            const size_t b = static_cast<size_t>(mi * chunk);
            const size_t e =
                std::min<size_t>(nleaves, b + static_cast<size_t>(chunk));
            Status ss;
            for (size_t li = b; li < e && ss.ok(); ++li) {
              ss = tree->ScanLeaf(leaves[li], lo, hi, handler, wm);
            }
            wm->cpu_ns += static_cast<uint64_t>(
                seen * ctx.parallel_row_overhead_ns);
            return ss;
          });
    }
    case AccessPath::Kind::kCsiScan: {
      ColumnStoreIndex* csi;
      if (plan.base.index_name.empty()) {
        csi = base->primary_csi();
      } else {
        SecondaryIndex* si = base->FindSecondary(plan.base.index_name);
        if (si == nullptr || !si->csi) {
          return Status::NotFound("csi " + plan.base.index_name);
        }
        csi = si->csi.get();
      }
      if (csi == nullptr) return Status::Internal("no csi");
      const int ncols = base->num_columns();
      // Only decode columns the query touches; the wide row's other slots
      // stay unset and are never read downstream.
      const std::vector<int>& cols = needed_base_cols;
      const int ncneed = static_cast<int>(cols.size());
      std::vector<SegPredicate> sp;
      for (const auto& p : base_preds) sp.push_back({p.col, p.lo, p.hi});
      // Locators (row ids) are only needed when a transaction wants per-row
      // locks/versions or DML collects row references.
      const bool need_locs = ctx.txn != nullptr || q.kind != Query::Kind::kSelect;
      // Bloom pushdown: every hash join's build-side filter runs inside
      // the scan on the decoded join-key vector, so rows that cannot join
      // are dropped before the other columns are gathered. Checks are
      // charged to the owning join's operator block.
      const int driving = DrivingStepIndex();
      std::vector<ScanKeyFilter> kfs;
      for (size_t s = 0; s < joins.size(); ++s) {
        if (static_cast<int>(s) == driving) continue;
        const JoinExec& je = joins[s];
        if (je.method != JoinStep::Method::kHash || je.hash.bloom.empty()) {
          continue;
        }
        kfs.push_back(ScanKeyFilter{q.joins[plan.joins[s].join_idx].base_col,
                                    &je.hash.bloom, OpM(opx.join[s])});
      }
      const std::vector<ScanKeyFilter>* kfp = kfs.empty() ? nullptr : &kfs;
      auto make_batch_handler = [&](int w, PackedRow* rowbuf) {
        return [&, w, rowbuf](const ColumnBatch& b) {
          PackedRow& row = *rowbuf;
          for (int i = 0; i < b.count; ++i) {
            const uint32_t pi =
                b.sel != nullptr ? b.sel[i] : static_cast<uint32_t>(i);
            for (int c = 0; c < ncneed; ++c) row[cols[c]] = b.cols[c][pi];
            const int64_t rid = b.locators != nullptr ? b.locators[pi] : -1;
            if (!emit(w, rid, row.data())) return false;
          }
          return true;
        };
      };
      const int ngroups = csi->num_row_groups();
      if (use_shared_scan) {
        // Cooperative pass over the row groups; the delta store is always
        // scanned privately (row-mode, cheap, not worth coordinating).
        Timer t;
        PackedRow rowbuf(ncols);
        auto handler = make_batch_handler(0, &rowbuf);
        Status ss =
            ctx.scan_scheduler->Scan(csi, cols, sp, handler, m, need_locs);
        if (ss.ok()) ss = csi->ScanDelta(cols, sp, handler, m, need_locs);
        m->cpu_ns += static_cast<uint64_t>(t.ElapsedMs() * 1e6);
        return ss;
      }
      if (nworkers <= 1) {
        Timer t;
        PackedRow rowbuf(ncols);
        auto handler = make_batch_handler(0, &rowbuf);
        Status ss = csi->ScanGroups(0, ngroups, cols, sp, handler, m,
                                    need_locs, nullptr, kfp);
        if (ss.ok()) {
          ss = csi->ScanDelta(cols, sp, handler, m, need_locs, kfp);
        }
        m->cpu_ns += static_cast<uint64_t>(t.ElapsedMs() * 1e6);
        return ss;
      }
      // Morsel = one row group (+ one trailing morsel for the delta
      // store). The delete-buffer snapshot is taken once and shared so
      // per-group morsels do not re-scan the delete buffer.
      std::unordered_set<int64_t> dead;
      HD_RETURN_IF_ERROR(csi->SnapshotDeleteBuffer(&dead, m));
      std::vector<PackedRow> rowbufs(nworkers, PackedRow(ncols));
      std::atomic<bool> stop{false};
      return MorselLoop(
          static_cast<uint64_t>(ngroups) + 1, nworkers, m, scan_label,
          [&](int slot, uint64_t mi, QueryMetrics* wm) -> Status {
            if (stop.load(std::memory_order_relaxed)) return Status::OK();
            auto inner = make_batch_handler(slot, &rowbufs[slot]);
            auto handler = [&](const ColumnBatch& b) {
              if (!inner(b)) {
                stop.store(true, std::memory_order_relaxed);
                return false;
              }
              return true;
            };
            if (mi < static_cast<uint64_t>(ngroups)) {
              const int g = static_cast<int>(mi);
              return csi->ScanGroups(g, g + 1, cols, sp, handler, wm,
                                     need_locs, &dead, kfp);
            }
            return csi->ScanDelta(cols, sp, handler, wm, need_locs, kfp);
          });
    }
  }
  return Status::Internal("unreachable");
}

// ---------------------------------------------------------------------
// SELECT execution.
// ---------------------------------------------------------------------

namespace {

/// Worker-local sink: either aggregation or row collection.
struct WorkerSink {
  // Aggregation: flat open-addressing group table (inline keys,
  // contiguous AggState payload, one hash per probe).
  AggHashTable table;
  std::vector<AggState> global;  // no GROUP BY
  // Spill partitions for grace hash agg: flat rows of
  // [group slots..., per-agg raw input (bit-cast double or int)].
  std::vector<std::vector<int64_t>> spill_parts;
  uint64_t spill_bytes = 0;
  bool spilling = false;

  // Collection (projection / sort input): flat packed rows.
  std::vector<int64_t> rows;
  uint64_t row_count = 0;

  // Reusable per-batch scratch (no heap allocation per input row):
  // row-major gathered group keys, their hashes, and resolved group
  // indices (kSpilledRow = routed to a spill partition); srow_buf caches
  // each row's payload state pointer across the per-aggregate loops.
  std::vector<int64_t> key_buf;
  std::vector<uint64_t> hash_buf;
  std::vector<uint32_t> gidx_buf;
  std::vector<AggState*> srow_buf;
};

constexpr uint32_t kSpilledRow = UINT32_MAX;

}  // namespace

Status Executor::Impl::RunSelect() {
  QueryMetrics* m = &res.metrics;

  HD_RETURN_IF_ERROR(AcquireReadLocks());

  HD_RETURN_IF_ERROR(PrepareJoins());

  const bool has_aggs = !aggs.empty();
  const bool stream_agg = plan.agg == AggMethod::kStream;

  // Shared-scan routing. A non-transactional single-table SELECT over a
  // CSI attaches to the cooperative pass when a scheduler is configured —
  // UNLESS the query is structurally answerable by encoded-domain
  // aggregate pushdown (every non-COUNT aggregate's predicates sit on its
  // own column): those queries decode nothing, so sharing a decode would
  // only cost them. Stream aggregation and scan-provided ordering need
  // ascending row order, which the circular pass does not give.
  auto structurally_pushable = [&]() {
    if (aggs.empty() || !group_slots.empty()) return false;
    for (const auto& a : aggs) {
      int col = -1;
      if (a.fn == AggSpec::Fn::kCount && !a.has_arg) continue;
      if ((a.fn == AggSpec::Fn::kSum || a.fn == AggSpec::Fn::kAvg) &&
          a.arg_is_col && a.arg_is_int && a.arg_col.table == 0) {
        col = a.arg_col.col;
      } else if ((a.fn == AggSpec::Fn::kMin || a.fn == AggSpec::Fn::kMax) &&
                 a.arg_is_col && a.arg_col.table == 0) {
        col = a.arg_col.col;
      } else {
        return false;
      }
      for (const auto& p : base_preds) {
        if (p.col != col) return false;
      }
    }
    return true;
  };
  use_shared_scan = ctx.scan_scheduler != nullptr && ctx.txn == nullptr &&
                    plan.base.is_csi() && joins.empty() &&
                    plan.driving_join < 0 && !stream_agg &&
                    (q.order_by.empty() || plan.explicit_sort) &&
                    !structurally_pushable();
  // The shared pass is consumed by this thread alone: concurrency comes
  // from the other queries attached to the same pass, not from morsels.
  const int nworkers = use_shared_scan ? 1 : dop();
  m->dop = nworkers;

  // Output projection slots when not aggregating.
  std::vector<int> proj_slots;
  std::vector<ColRef> proj_refs = q.select_cols;
  if (!has_aggs) {
    if (proj_refs.empty()) {
      for (int c = 0; c < base->num_columns(); ++c) {
        proj_refs.push_back(ColRef{0, c});
      }
    }
    // Sort keys must ride along; remember where they live in the projected
    // row.
    for (const auto& o : q.order_by) {
      if (std::find(proj_refs.begin(), proj_refs.end(), o) == proj_refs.end()) {
        proj_refs.push_back(o);
      }
    }
    for (const auto& r : proj_refs) proj_slots.push_back(L.SlotOf(r));
  }
  std::vector<int> sort_pos;  // positions of order_by cols in projected row
  for (const auto& o : q.order_by) {
    for (size_t i = 0; i < proj_refs.size(); ++i) {
      if (proj_refs[i] == o) {
        sort_pos.push_back(static_cast<int>(i));
        break;
      }
    }
  }

  const uint64_t grant = ctx.memory_grant_bytes;
  constexpr int kSpillParts = 16;

  std::vector<WorkerSink> sinks(nworkers);
  for (auto& s : sinks) {
    if (has_aggs) {
      s.global.assign(aggs.size(), AggState{});
      s.spill_parts.resize(kSpillParts);
      s.table.Init(group_slots.size(), aggs.size());
    }
  }

  // Streaming aggregate state (serial only).
  std::vector<int64_t> stream_key;
  std::vector<AggState> stream_state(aggs.size());
  bool stream_has = false;
  std::vector<Row> stream_out;
  auto stream_flush = [&]() {
    if (!stream_has) return;
    Row r;
    for (size_t gi = 0; gi < group_slots.size(); ++gi) {
      const ColRef& g = q.group_by[gi];
      r.push_back(L.tables[g.table]->UnpackValue(g.col, stream_key[gi]));
    }
    for (size_t ai = 0; ai < aggs.size(); ++ai) {
      r.push_back(AggFinal(aggs[ai], stream_state[ai], L));
    }
    stream_out.push_back(std::move(r));
    stream_state.assign(aggs.size(), AggState{});
  };

  // Per-group approximate bytes for grant accounting, and the resulting
  // per-worker group cap: FindOrInsert refuses the insert past it and the
  // row grace-spills to a partition (hash reused for the routing).
  const uint64_t group_entry_bytes =
      48 + group_slots.size() * 8 + aggs.size() * sizeof(AggState);
  const size_t max_groups =
      grant > 0 ? static_cast<size_t>((grant / nworkers) / group_entry_bytes)
                : static_cast<size_t>(-1);

  // Encoded-domain aggregate pushdown (fast single-table global
  // aggregates): per-worker partial states folded in the finish phase.
  // Empty pspecs = pushdown not applicable to this query. pushed_rows
  // counts rows the pushdown logically aggregated per worker — they flow
  // scan→agg in the operator profiles even though no batch materialized.
  std::vector<PushAggSpec> pspecs;
  std::vector<std::vector<PushAggState>> pacc;
  std::vector<uint64_t> pushed_rows;

  std::atomic<int64_t> emitted{0};
  const int64_t limit =
      (q.limit >= 0 && !has_aggs && q.order_by.empty()) ? q.limit : -1;

  // Per-worker row-flow counters, folded into the operator profiles after
  // the scan (plain uint64 per worker: no hot-path atomics).
  const size_t nsteps = plan.joins.size();
  std::vector<uint64_t> base_out(nworkers, 0);
  std::vector<std::vector<uint64_t>> join_in(nsteps,
                                             std::vector<uint64_t>(nworkers, 0));
  std::vector<std::vector<uint64_t>> join_out(
      nsteps, std::vector<uint64_t>(nworkers, 0));
  std::vector<uint64_t> sink_in(nworkers, 0);

  // The per-row consumer running after joins.
  auto consume = [&](int w, const int64_t* wide, int64_t rid) -> bool {
    sink_in[w]++;
    PayVersionCost(rid);
    if (row_read_locks) {
      Status s = ctx.txns->locks()->Acquire(ctx.txn->id(),
                                            LockResource{table_hash, rid},
                                            LockMode::kS, ctx.lock_timeout_ms);
      if (!s.ok()) {
        // Stop the scan and surface the lock failure (deadlock victim /
        // injected timeout) as the statement status so the caller retries.
        RecordSideError(std::move(s));
        return false;
      }
      if (ctx.txn->isolation() == IsolationLevel::kReadCommitted) {
        ctx.txns->locks()->Release(ctx.txn->id(), LockResource{table_hash, rid});
      }
    }
    WorkerSink& sink = sinks[w];
    if (has_aggs) {
      if (stream_agg) {
        std::vector<int64_t> key(group_slots.size());
        for (size_t gi = 0; gi < group_slots.size(); ++gi) {
          key[gi] = wide[group_slots[gi]];
        }
        if (!stream_has || key != stream_key) {
          stream_flush();
          stream_key = std::move(key);
          stream_has = true;
        }
        for (size_t ai = 0; ai < aggs.size(); ++ai) {
          AggUpdate(aggs[ai], &stream_state[ai], L, wide);
        }
        return true;
      }
      if (group_slots.empty()) {
        for (size_t ai = 0; ai < aggs.size(); ++ai) {
          AggUpdate(aggs[ai], &sink.global[ai], L, wide);
        }
        return true;
      }
      std::vector<int64_t>& key = sink.key_buf;
      key.resize(group_slots.size());
      for (size_t gi = 0; gi < group_slots.size(); ++gi) {
        key[gi] = wide[group_slots[gi]];
      }
      // One hash serves the probe and, on overflow, the spill routing.
      const uint64_t h = AggHashTable::HashKey(key.data(), key.size());
      const size_t g = sink.table.FindOrInsert(key.data(), h, max_groups);
      if (g == AggHashTable::kNoSlot) {
        // Grace spill: route this row to a partition for phase 2.
        sink.spilling = true;
        auto& part = sink.spill_parts[h % kSpillParts];
        part.insert(part.end(), key.begin(), key.end());
        for (size_t ai = 0; ai < aggs.size(); ++ai) {
          double v = 0;
          if (aggs[ai].has_arg) v = EvalExpr(aggs[ai].arg, L, wide);
          part.push_back(std::bit_cast<int64_t>(v));
        }
        sink.spill_bytes += (key.size() + aggs.size()) * 8;
        return true;
      }
      AggState* st = sink.table.StatesAt(g);
      for (size_t ai = 0; ai < aggs.size(); ++ai) {
        AggUpdate(aggs[ai], &st[ai], L, wide);
      }
      return true;
    }
    // Collection path. Without a sort, output streams to the client: only
    // the materialization window is buffered (no server-side memory).
    sink.row_count++;
    if (plan.explicit_sort ||
        sink.row_count <= QueryResult::kMaxMaterializedRows) {
      for (int slot : proj_slots) sink.rows.push_back(wide[slot]);
    }
    if (limit >= 0) {
      const int64_t e = emitted.fetch_add(1) + 1;
      if (e >= limit) return false;
    }
    return true;
  };

  // Join pipeline: expand wide rows through join steps, then consume.
  const int driving_step = DrivingStepIndex();
  std::vector<std::vector<int64_t>> wide_bufs(nworkers,
                                              std::vector<int64_t>(L.total));
  // Row-mode pipelines pay per-probe operator overhead; batch pipelines
  // (CSI base) do not — charged after the scan from the join_in counters.
  std::function<bool(int, int64_t*, int64_t, size_t)> pipeline =
      [&](int w, int64_t* wide, int64_t rid, size_t step) -> bool {
    if (step == joins.size()) return consume(w, wide, rid);
    if (static_cast<int>(step) == driving_step) {
      return pipeline(w, wide, rid, step + 1);  // already materialized
    }
    JoinExec& je = joins[step];
    const int64_t key = wide[je.base_join_slot];
    join_in[step][w]++;
    if (je.method == JoinStep::Method::kHash) {
      uint32_t nmatch = 0;
      const uint32_t* matches = je.hash.map.Find(key, &nmatch);
      for (uint32_t mi = 0; mi < nmatch; ++mi) {
        const int64_t* dim_row =
            je.hash.rows.data() +
            static_cast<size_t>(matches[mi]) * je.hash.stride;
        std::copy(dim_row, dim_row + je.hash.stride, wide + je.dim_offset);
        join_out[step][w]++;
        if (!pipeline(w, wide, rid, step + 1)) return false;
      }
      return true;
    }
    // Index nested-loop probe.
    NlDim& nd = je.nl;
    Bound lo = Bound::Inclusive({key});
    Bound hi = Bound::Inclusive({key});
    bool cont = true;
    // Probe-side charges land on this join's operator block (atomic adds,
    // thread-safe across morsel workers).
    QueryMetrics* wm = OpM(opx.join[step]);
    Status ps = nd.tree->Scan(lo, hi, [&](const int64_t* ekey, const int64_t* payload) {
      wm->cpu_ns += static_cast<uint64_t>(ctx.serial_row_overhead_ns);
      int64_t* dim_wide = wide + je.dim_offset;
      if (nd.covering) {
        for (int c : nd.needed_cols) {
          const int slot = nd.entry_slot[c];
          dim_wide[c] = slot < nd.kw ? ekey[slot] : payload[slot - nd.kw];
        }
      } else {
        std::vector<int64_t> pk_hint;
        for (int s : nd.pk_slots) {
          pk_hint.push_back(s < nd.kw ? ekey[s] : payload[s - nd.kw]);
        }
        PackedRow full;
        Status fs = nd.table->FetchRow(ekey[nd.kw - 1], pk_hint, &full, wm);
        if (!fs.ok()) {
          if (!fs.IsIoError()) return true;  // vanished row: skip
          RecordSideError(std::move(fs));
          cont = false;
          return false;
        }
        std::copy(full.begin(), full.end(), dim_wide);
      }
      // Dim residual predicates (shifted to wide coordinates).
      for (const auto& p : nd.preds) {
        const int64_t v = dim_wide[p.col];
        if (v < p.lo || v > p.hi) return true;
      }
      join_out[step][w]++;
      cont = pipeline(w, wide, rid, step + 1);
      return cont;
    }, wm);
    if (!ps.ok()) {
      RecordSideError(std::move(ps));
      return false;
    }
    return cont;
  };

  // ---- Vectorized fast path: CSI base, no joins, global aggregation ----
  // This is what makes batch mode an order of magnitude cheaper per row.
  const bool fast_agg = plan.base.is_csi() && joins.empty() && has_aggs &&
                        group_slots.empty() && !stream_agg &&
                        ctx.txn == nullptr;
  // Grouped variant: aggregate straight off the decoded batches.
  const bool fast_group = plan.base.is_csi() && joins.empty() && has_aggs &&
                          !group_slots.empty() && !stream_agg &&
                          ctx.txn == nullptr && plan.driving_join < 0;
  // Batch-mode join pipeline: a CSI base whose join steps are all hash
  // joins probes on decoded key vectors and late-materializes the wide
  // row once, at the consume boundary. Unlike fast_agg/fast_group this
  // path stays eligible under transactions: consume() runs per surviving
  // join-output row exactly as in row mode, so lock/version semantics are
  // identical (row mode also pays them only after the joins).
  const bool fast_join =
      plan.base.is_csi() && !joins.empty() && plan.driving_join < 0 &&
      !stream_agg &&
      std::all_of(joins.begin(), joins.end(), [](const JoinExec& j) {
        return j.method == JoinStep::Method::kHash;
      });
  Status scan_status;
  if (plan.driving_join >= 0 && driving_step >= 0) {
    // Dimension-driven hybrid plan: scan the (filtered) driving dimension
    // as the outer side, seek the base table's B+ tree per dim row.
    BTree* tree = nullptr;
    std::vector<int> key_cols;
    std::vector<int> payload_cols;
    bool payload_full = false;
    if (plan.base.index_name.empty()) {
      tree = base->primary_btree();
      key_cols = base->primary_key_cols();
      payload_full = true;
    } else {
      SecondaryIndex* si = base->FindSecondary(plan.base.index_name);
      if (si == nullptr || !si->btree) {
        return Status::NotFound("index " + plan.base.index_name);
      }
      tree = si->btree.get();
      key_cols = si->def.key_cols;
      payload_cols = si->payload_cols;
    }
    const JoinClause& jc = q.joins[plan.driving_join];
    if (tree == nullptr || key_cols.empty() || key_cols[0] != jc.base_col) {
      return Status::InvalidArgument(
          "dim-driven plan needs a base B+ tree leading on the join column");
    }
    Table* dim = L.tables[plan.driving_join + 1];
    const int dim_off = L.offset[plan.driving_join + 1];
    std::vector<BoundPred> dim_preds = BindPreds(*dim, jc.dim.preds);
    const int ncols = base->num_columns();
    const int kw = static_cast<int>(key_cols.size()) + 1;
    Timer t;
    PackedRow rowbuf(ncols);
    int64_t* wide = wide_bufs[0].data();
    uint64_t fact_entries = 0;
    uint64_t dim_rows = 0;
    // Dim-side scan charges land on the DimDriver node; base B+ tree seeks
    // (and residual fetches) on the scan node.
    QueryMetrics* dm = OpM(opx.join[driving_step]);
    QueryMetrics* sm = ScanM();
    scan_status = ScanDim(
        dim, plan.joins[driving_step].dim_path, dim_preds,
        [&](const int64_t* dimrow) {
          ++dim_rows;
          std::copy(dimrow, dimrow + dim->num_columns(), wide + dim_off);
          const int64_t key = dimrow[jc.dim_col];
          Status ps = tree->Scan(
              Bound::Inclusive({key}), Bound::Inclusive({key}),
              [&](const int64_t* ekey, const int64_t* payload) {
                ++fact_entries;
                if (payload_full) {
                  std::copy(payload, payload + ncols, rowbuf.begin());
                } else {
                  std::vector<char> have(ncols, 0);
                  for (size_t k = 0; k < key_cols.size(); ++k) {
                    rowbuf[key_cols[k]] = ekey[k];
                    have[key_cols[k]] = 1;
                  }
                  for (size_t pi = 0; pi < payload_cols.size(); ++pi) {
                    rowbuf[payload_cols[pi]] = payload[pi];
                    have[payload_cols[pi]] = 1;
                  }
                  bool missing = false;
                  for (int c = 0; c < ncols; ++c) {
                    if (!have[c]) { missing = true; break; }
                  }
                  if (missing) {
                    std::vector<int64_t> pk_hint;
                    for (int pk : base->primary_key_cols()) {
                      pk_hint.push_back(rowbuf[pk]);
                    }
                    PackedRow full;
                    Status fs = base->FetchRow(ekey[kw - 1], pk_hint, &full, sm);
                    if (!fs.ok()) {
                      if (!fs.IsIoError()) return true;  // vanished row
                      RecordSideError(std::move(fs));
                      return false;
                    }
                    rowbuf = full;
                  }
                }
                if (!CheckPreds(base_preds, rowbuf.data())) return true;
                std::copy(rowbuf.begin(), rowbuf.end(), wide);
                base_out[0]++;
                return pipeline(0, wide, ekey[kw - 1], 0);
              },
              sm);
          if (!ps.ok()) RecordSideError(std::move(ps));
        },
        dm, ctx.serial_row_overhead_ns);
    sm->cpu_ns += static_cast<uint64_t>(t.ElapsedMs() * 1e6) +
                  static_cast<uint64_t>(fact_entries * ctx.serial_row_overhead_ns);
    if (opx.join[driving_step] >= 0) {
      ops[opx.join[driving_step]].rows_in = dim_rows;
      ops[opx.join[driving_step]].rows_out = dim_rows;
      ops[opx.scan].rows_in = fact_entries;
    }
  } else if (fast_join) {
    // ---- Batch-mode join pipeline (CSI base, all-hash join steps). ----
    // Each decoded batch carries a probe selection (prow: surviving batch
    // positions) plus one build-row vector per completed step. A step
    // gathers the key column through prow, runs the vectorized
    // ComputeHashes / FindSlots / ExpandMatches kernels, and remaps the
    // carried vectors through the matches — multi-match keys expand, FK
    // -> PK takes the 1-match fast path. No wide row exists until the
    // consume boundary, where only rows that survived EVERY step gather
    // their dim payloads and remaining base columns.
    ColumnStoreIndex* csi = plan.base.index_name.empty()
                                ? base->primary_csi()
                                : base->FindSecondary(plan.base.index_name)
                                      ->csi.get();
    if (csi == nullptr) return Status::Internal("no csi");
    const std::vector<int>& cols = needed_base_cols;
    const int ncneed = static_cast<int>(cols.size());
    std::vector<int> colslot(base->num_columns(), -1);
    for (int i = 0; i < ncneed; ++i) colslot[cols[i]] = i;
    // Batch-column index of each step's base join key (base wide slots
    // coincide with base column ids — the base is table 0 at offset 0).
    std::vector<int> key_ci(nsteps, -1);
    for (size_t s = 0; s < nsteps; ++s) {
      key_ci[s] = colslot[joins[s].base_join_slot];
    }
    std::vector<SegPredicate> sp;
    for (const auto& p : base_preds) {
      if (p.impossible) sp.push_back({p.col, 1, 0});
      sp.push_back({p.col, p.lo, p.hi});
    }
    // Locators only when a transaction pays per-row lock/version costs.
    const bool need_locs = ctx.txn != nullptr;
    // Push every build-side Bloom filter into the scan.
    std::vector<ScanKeyFilter> kfs;
    for (size_t s = 0; s < nsteps; ++s) {
      if (joins[s].hash.bloom.empty()) continue;
      kfs.push_back(ScanKeyFilter{joins[s].base_join_slot,
                                  &joins[s].hash.bloom, OpM(opx.join[s])});
    }
    const std::vector<ScanKeyFilter>* kfp = kfs.empty() ? nullptr : &kfs;
    struct JoinScratch {
      std::vector<int64_t> keys;
      std::vector<uint64_t> hashes;
      std::vector<int32_t> slots;
      std::vector<uint32_t> prow;
      std::vector<uint32_t> remap;
      std::vector<std::vector<uint32_t>> brows;  // per-step build rows
      std::vector<uint32_t> mp, mb;
    };
    std::vector<JoinScratch> scratch(nworkers);
    for (auto& js : scratch) js.brows.resize(nsteps);
    auto make_handler = [&](int w) {
      return [&, w](const ColumnBatch& b) {
        JoinScratch& js = scratch[w];
        base_out[w] += b.count;
        size_t cur = static_cast<size_t>(b.count);
        js.prow.resize(cur);
        for (size_t i = 0; i < cur; ++i) {
          js.prow[i] = static_cast<uint32_t>(i);
        }
        for (size_t s = 0; s < nsteps && cur > 0; ++s) {
          const FlatJoinMap& map = joins[s].hash.map;
          const int64_t* keycol = b.cols[key_ci[s]];
          js.keys.resize(cur);
          for (size_t i = 0; i < cur; ++i) js.keys[i] = keycol[js.prow[i]];
          js.hashes.resize(cur);
          map.ComputeHashes(js.keys.data(), cur, js.hashes.data());
          js.slots.resize(cur);
          map.FindSlots(js.keys.data(), js.hashes.data(), cur,
                        js.slots.data());
          js.mp.clear();
          js.mb.clear();
          const size_t nm =
              map.ExpandMatches(js.slots.data(), cur, &js.mp, &js.mb);
          join_in[s][w] += cur;
          join_out[s][w] += nm;
          QueryMetrics* jm = OpM(opx.join[s]);
          jm->join_batch_probes += cur;
          jm->join_matches += nm;
          // Remap the carried selection (and earlier steps' build rows)
          // through this step's match vector.
          js.remap.resize(nm);
          for (size_t j = 0; j < nm; ++j) js.remap[j] = js.prow[js.mp[j]];
          js.prow.swap(js.remap);
          for (size_t t = 0; t < s; ++t) {
            js.remap.resize(nm);
            for (size_t j = 0; j < nm; ++j) {
              js.remap[j] = js.brows[t][js.mp[j]];
            }
            js.brows[t].swap(js.remap);
          }
          js.brows[s].assign(js.mb.begin(), js.mb.end());
          cur = nm;
        }
        if (cur == 0) return true;
        // Consume boundary: the only wide-row materialization in the
        // pipeline, paid per surviving match.
        int64_t* wide = wide_bufs[w].data();
        for (size_t j = 0; j < cur; ++j) {
          const uint32_t pi = js.prow[j];
          for (int c = 0; c < ncneed; ++c) wide[cols[c]] = b.cols[c][pi];
          for (size_t s = 0; s < nsteps; ++s) {
            const HashDim& hd = joins[s].hash;
            const int64_t* dim_row =
                hd.rows.data() +
                static_cast<size_t>(js.brows[s][j]) * hd.stride;
            std::copy(dim_row, dim_row + hd.stride,
                      wide + joins[s].dim_offset);
          }
          const int64_t rid = b.locators != nullptr
                                  ? b.locators[pi]
                                  : -1;
          if (!consume(w, wide, rid)) return false;
        }
        return true;
      };
    };
    const int ngroups = csi->num_row_groups();
    QueryMetrics* sm = ScanM();
    if (nworkers <= 1) {
      Timer t;
      auto handler = make_handler(0);
      scan_status = csi->ScanGroups(0, ngroups, cols, sp, handler, sm,
                                    need_locs, nullptr, kfp);
      if (scan_status.ok()) {
        scan_status = csi->ScanDelta(cols, sp, handler, sm, need_locs, kfp);
      }
      sm->cpu_ns += static_cast<uint64_t>(t.ElapsedMs() * 1e6);
    } else {
      std::unordered_set<int64_t> dead;
      scan_status = csi->SnapshotDeleteBuffer(&dead, sm);
      if (scan_status.ok()) {
        std::atomic<bool> stop{false};
        scan_status = MorselLoop(
            static_cast<uint64_t>(ngroups) + 1, nworkers, sm,
            ops[opx.scan].name,
            [&](int slot, uint64_t mi, QueryMetrics* wm) -> Status {
              if (stop.load(std::memory_order_relaxed)) return Status::OK();
              auto inner = make_handler(slot);
              auto handler = [&](const ColumnBatch& b) {
                if (!inner(b)) {
                  stop.store(true, std::memory_order_relaxed);
                  return false;
                }
                return true;
              };
              if (mi < static_cast<uint64_t>(ngroups)) {
                const int g = static_cast<int>(mi);
                return csi->ScanGroups(g, g + 1, cols, sp, handler, wm,
                                       need_locs, &dead, kfp);
              }
              return csi->ScanDelta(cols, sp, handler, wm, need_locs, kfp);
            });
      }
    }
  } else if (fast_group) {
    // Grouped aggregation directly over decoded batches: no wide-row
    // materialization, reusable key buffer, per-worker maps (merged in the
    // finish phase), grace-spill past the grant.
    ColumnStoreIndex* csi = plan.base.index_name.empty()
                                ? base->primary_csi()
                                : base->FindSecondary(plan.base.index_name)
                                      ->csi.get();
    if (csi == nullptr) return Status::Internal("no csi");
    std::vector<int> needed;
    std::vector<char> need_flag(base->num_columns(), 0);
    for (const auto& a : aggs) {
      if (a.has_arg) {
        std::vector<ColRef> refs;
        CollectExprCols(a.arg, &refs);
        for (const auto& r : refs) need_flag[r.col] = 1;
      }
    }
    for (const auto& g : q.group_by) need_flag[g.col] = 1;
    for (int c = 0; c < base->num_columns(); ++c) {
      if (need_flag[c]) needed.push_back(c);
    }
    std::vector<int> slot_of_col(base->num_columns(), -1);
    for (size_t i = 0; i < needed.size(); ++i) slot_of_col[needed[i]] = i;
    std::vector<int> group_cis;  // batch column index per group col
    for (const auto& g : q.group_by) group_cis.push_back(slot_of_col[g.col]);
    std::vector<SegPredicate> sp;
    for (const auto& p : base_preds) {
      if (p.impossible) sp.push_back({p.col, 1, 0});
      sp.push_back({p.col, p.lo, p.hi});
    }
    const std::unordered_set<int64_t>* delete_snapshot = nullptr;
    auto make_handler = [&](int w) {
      return [&, w](const ColumnBatch& b) {
        WorkerSink& sink = sinks[w];
        sink.row_count += b.count;
        const size_t kw = group_cis.size();
        const size_t na = aggs.size();
        // Shared-scan batches address a dense decode through a selection
        // vector; private batches are compact (identity).
        const uint32_t* bsel = b.sel;
        auto phys = [bsel](int i) {
          return bsel != nullptr ? static_cast<int>(bsel[i]) : i;
        };
        // Gather group keys row-major, hash the whole batch once, then
        // resolve every row's group before any state is touched
        // (insertion may reallocate the state array).
        std::vector<int64_t>& kb = sink.key_buf;
        kb.resize(static_cast<size_t>(b.count) * kw);
        for (int i = 0; i < b.count; ++i) {
          for (size_t gi = 0; gi < kw; ++gi) {
            kb[i * kw + gi] = b.cols[group_cis[gi]][phys(i)];
          }
        }
        std::vector<uint64_t>& hb = sink.hash_buf;
        hb.resize(b.count);
        sink.table.ComputeHashes(kb.data(), b.count, hb.data());
        std::vector<uint32_t>& gidx = sink.gidx_buf;
        gidx.resize(b.count);
        for (int i = 0; i < b.count; ++i) {
          const int64_t* key = kb.data() + static_cast<size_t>(i) * kw;
          const size_t g = sink.table.FindOrInsert(key, hb[i], max_groups);
          if (g == AggHashTable::kNoSlot) {
            gidx[i] = kSpilledRow;
            sink.spilling = true;
            auto& part = sink.spill_parts[hb[i] % kSpillParts];
            part.insert(part.end(), key, key + kw);
            for (size_t ai = 0; ai < na; ++ai) {
              double v = 0;
              if (aggs[ai].has_arg) {
                v = EvalExprBatch(aggs[ai].arg, L, b.cols, slot_of_col,
                                  phys(i));
              }
              part.push_back(std::bit_cast<int64_t>(v));
            }
            sink.spill_bytes += (kw + na) * 8;
          } else {
            gidx[i] = static_cast<uint32_t>(g);
          }
        }
        // Per-aggregate column loops over the resolved groups: one tight
        // loop per aggregate instead of a per-row per-agg switch. State
        // pointers are resolved once per row (null = spilled); the key and
        // its states share a payload row, so the lines are already warm
        // from the probe.
        std::vector<AggState*>& rs = sink.srow_buf;
        rs.resize(b.count);
        for (int i = 0; i < b.count; ++i) {
          rs[i] = gidx[i] == kSpilledRow ? nullptr
                                         : sink.table.StatesAt(gidx[i]);
        }
        for (size_t ai = 0; ai < na; ++ai) {
          const AggDesc& a = aggs[ai];
          switch (a.fn) {
            case AggSpec::Fn::kCount:
              for (int i = 0; i < b.count; ++i) {
                if (rs[i] != nullptr) ++rs[i][ai].count;
              }
              break;
            case AggSpec::Fn::kSum:
            case AggSpec::Fn::kAvg:
              if (a.arg_is_col && a.arg_is_int) {
                const int64_t* col = b.cols[slot_of_col[a.arg_col.col]];
                for (int i = 0; i < b.count; ++i) {
                  if (rs[i] == nullptr) continue;
                  AggState& st = rs[i][ai];
                  ++st.count;
                  st.i += col[phys(i)];
                }
              } else {
                for (int i = 0; i < b.count; ++i) {
                  if (rs[i] == nullptr) continue;
                  AggState& st = rs[i][ai];
                  ++st.count;
                  st.d += EvalExprBatch(a.arg, L, b.cols, slot_of_col,
                                        phys(i));
                }
              }
              break;
            case AggSpec::Fn::kMin:
            case AggSpec::Fn::kMax: {
              const bool is_min = a.fn == AggSpec::Fn::kMin;
              if (a.arg_is_col) {
                const int64_t* col = b.cols[slot_of_col[a.arg_col.col]];
                for (int i = 0; i < b.count; ++i) {
                  if (rs[i] == nullptr) continue;
                  AggState& st = rs[i][ai];
                  const int64_t v = col[phys(i)];
                  if (!st.has || (is_min ? v < st.packed_minmax
                                         : v > st.packed_minmax)) {
                    st.packed_minmax = v;
                  }
                  st.has = true;
                }
              } else {
                for (int i = 0; i < b.count; ++i) {
                  if (rs[i] == nullptr) continue;
                  AggState& st = rs[i][ai];
                  const double v =
                      EvalExprBatch(a.arg, L, b.cols, slot_of_col, phys(i));
                  if (!st.has || (is_min ? v < st.d : v > st.d)) st.d = v;
                  st.has = true;
                }
              }
              break;
            }
          }
        }
        return true;
      };
    };
    auto batch_worker = [&](int w, int gb, int ge, QueryMetrics* wm) -> Status {
      auto handler = make_handler(w);
      // gb < 0 selects the delta store (scheduled as its own morsel).
      if (gb < 0) {
        return csi->ScanDelta(needed, sp, handler, wm,
                              /*need_locators=*/false);
      }
      return csi->ScanGroups(gb, ge, needed, sp, handler, wm,
                             /*need_locators=*/false, delete_snapshot);
    };
    const int ngroups2 = csi->num_row_groups();
    QueryMetrics* sm = ScanM();
    if (use_shared_scan) {
      Timer t;
      auto handler = make_handler(0);
      scan_status =
          ctx.scan_scheduler->Scan(csi, needed, sp, handler, sm,
                                   /*need_locators=*/false);
      if (scan_status.ok()) {
        scan_status = csi->ScanDelta(needed, sp, handler, sm,
                                     /*need_locators=*/false);
      }
      sm->cpu_ns += static_cast<uint64_t>(t.ElapsedMs() * 1e6);
    } else if (nworkers <= 1) {
      Timer t;
      scan_status = batch_worker(0, 0, ngroups2, sm);
      if (scan_status.ok()) scan_status = batch_worker(0, -1, -1, sm);
      sm->cpu_ns += static_cast<uint64_t>(t.ElapsedMs() * 1e6);
    } else {
      std::unordered_set<int64_t> dead;
      scan_status = csi->SnapshotDeleteBuffer(&dead, sm);
      if (scan_status.ok()) {
        delete_snapshot = &dead;
        scan_status = MorselLoop(
            static_cast<uint64_t>(ngroups2) + 1, nworkers, sm,
            ops[opx.scan].name,
            [&](int slot, uint64_t mi, QueryMetrics* wm) -> Status {
              if (mi < static_cast<uint64_t>(ngroups2)) {
                const int g = static_cast<int>(mi);
                return batch_worker(slot, g, g + 1, wm);
              }
              return batch_worker(slot, -1, -1, wm);
            });
      }
    }
  } else if (fast_agg) {
    // Identify the single-int-column sums we can add without decode.
    ColumnStoreIndex* csi = plan.base.index_name.empty()
                                ? base->primary_csi()
                                : base->FindSecondary(plan.base.index_name)
                                      ->csi.get();
    if (csi == nullptr) return Status::Internal("no csi");
    std::vector<int> needed;
    std::vector<char> need_flag(base->num_columns(), 0);
    for (const auto& a : aggs) {
      if (a.has_arg) {
        std::vector<ColRef> refs;
        CollectExprCols(a.arg, &refs);
        for (const auto& r : refs) need_flag[r.col] = 1;
      }
    }
    for (int c = 0; c < base->num_columns(); ++c) {
      if (need_flag[c]) needed.push_back(c);
    }
    std::vector<int> slot_of_col(base->num_columns(), -1);
    for (size_t i = 0; i < needed.size(); ++i) slot_of_col[needed[i]] = i;
    std::vector<SegPredicate> sp;
    for (const auto& p : base_preds) {
      if (p.impossible) sp.push_back({p.col, 1, 0});
      sp.push_back({p.col, p.lo, p.hi});
    }
    // Map the aggregate list onto encoded-domain pushdown specs. All-or-
    // nothing: a row group is either answered entirely from segment
    // metadata / encoded kernels or scanned normally. Min/max can push any
    // single column (packing is order-preserving); SUM/AVG only integer
    // columns (double sums need value-domain addition).
    bool push_ok = !aggs.empty();
    for (const auto& a : aggs) {
      PushAggSpec s;
      if (a.fn == AggSpec::Fn::kCount && !a.has_arg) {
        s.fn = PushAggSpec::Fn::kCount;
      } else if ((a.fn == AggSpec::Fn::kSum || a.fn == AggSpec::Fn::kAvg) &&
                 a.arg_is_col && a.arg_is_int && a.arg_col.table == 0) {
        s.fn = PushAggSpec::Fn::kSum;
        s.col = a.arg_col.col;
      } else if ((a.fn == AggSpec::Fn::kMin || a.fn == AggSpec::Fn::kMax) &&
                 a.arg_is_col && a.arg_col.table == 0) {
        s.fn = a.fn == AggSpec::Fn::kMin ? PushAggSpec::Fn::kMin
                                         : PushAggSpec::Fn::kMax;
        s.col = a.arg_col.col;
      } else {
        push_ok = false;
        break;
      }
      pspecs.push_back(s);
    }
    if (!push_ok) pspecs.clear();
    if (!pspecs.empty()) {
      pacc.assign(nworkers, std::vector<PushAggState>(pspecs.size()));
      pushed_rows.assign(nworkers, 0);
    }
    const std::unordered_set<int64_t>* delete_snapshot = nullptr;
    auto make_handler = [&](int w) {
      return [&, w](const ColumnBatch& b) {
        WorkerSink& sink = sinks[w];
        sink.row_count += b.count;
        // Shared-scan batches address a dense decode through a selection
        // vector; the hot kernels get their own indexed loops so the
        // private (compact) path stays branch-free.
        const uint32_t* bsel = b.sel;
        for (size_t ai = 0; ai < aggs.size(); ++ai) {
          const AggDesc& a = aggs[ai];
          AggState& st = sink.global[ai];
          if (a.fn == AggSpec::Fn::kCount && !a.has_arg) {
            st.count += b.count;
            continue;
          }
          if (a.arg_is_col) {
            const int ci = slot_of_col[a.arg_col.col];
            const int64_t* col = b.cols[ci];
            switch (a.fn) {
              case AggSpec::Fn::kSum:
              case AggSpec::Fn::kAvg: {
                st.count += b.count;
                if (a.arg_is_int) {
                  int64_t acc = 0;
                  if (bsel == nullptr) {
                    for (int i = 0; i < b.count; ++i) acc += col[i];
                  } else {
                    for (int i = 0; i < b.count; ++i) acc += col[bsel[i]];
                  }
                  st.i += acc;
                } else {
                  double acc = 0;
                  if (bsel == nullptr) {
                    for (int i = 0; i < b.count; ++i) {
                      acc += UnpackDouble(col[i]);
                    }
                  } else {
                    for (int i = 0; i < b.count; ++i) {
                      acc += UnpackDouble(col[bsel[i]]);
                    }
                  }
                  st.d += acc;
                }
                break;
              }
              case AggSpec::Fn::kMin:
              case AggSpec::Fn::kMax: {
                int64_t mv = bsel == nullptr ? col[0] : col[bsel[0]];
                if (a.fn == AggSpec::Fn::kMin) {
                  if (bsel == nullptr) {
                    for (int i = 1; i < b.count; ++i) mv = std::min(mv, col[i]);
                  } else {
                    for (int i = 1; i < b.count; ++i) {
                      mv = std::min(mv, col[bsel[i]]);
                    }
                  }
                } else {
                  if (bsel == nullptr) {
                    for (int i = 1; i < b.count; ++i) mv = std::max(mv, col[i]);
                  } else {
                    for (int i = 1; i < b.count; ++i) {
                      mv = std::max(mv, col[bsel[i]]);
                    }
                  }
                }
                if (!st.has ||
                    (a.fn == AggSpec::Fn::kMin ? mv < st.packed_minmax
                                               : mv > st.packed_minmax)) {
                  st.packed_minmax = mv;
                }
                st.has = true;
                break;
              }
              default:
                break;
            }
          } else {
            st.count += b.count;
            double acc = 0;
            for (int i = 0; i < b.count; ++i) {
              const int pi = bsel != nullptr ? static_cast<int>(bsel[i]) : i;
              acc += EvalExprBatch(a.arg, L, b.cols, slot_of_col, pi);
            }
            if (a.fn == AggSpec::Fn::kSum || a.fn == AggSpec::Fn::kAvg) {
              st.d += acc;
            }
          }
        }
        return true;
      };
    };
    auto batch_worker = [&](int w, int gb, int ge, QueryMetrics* wm) -> Status {
      auto handler = make_handler(w);
      // gb < 0 selects the delta store (scheduled as its own morsel).
      if (gb < 0) {
        return csi->ScanDelta(needed, sp, handler, wm,
                              /*need_locators=*/false);
      }
      for (int g2 = gb; g2 < ge; ++g2) {
        // A row group answered entirely in the encoded domain never
        // reaches the decode handler (Fig. 4 aggregate pushdown).
        uint64_t pr = 0;
        if (!pspecs.empty() &&
            csi->TryPushdownAggregates(g2, sp, pspecs, pacc[w].data(),
                                       delete_snapshot, wm, &pr)) {
          pushed_rows[w] += pr;
          continue;
        }
        HD_RETURN_IF_ERROR(csi->ScanGroups(g2, g2 + 1, needed, sp, handler,
                                           wm, /*need_locators=*/false,
                                           delete_snapshot));
      }
      return Status::OK();
    };
    const int ngroups = csi->num_row_groups();
    QueryMetrics* sm = ScanM();
    // Snapshot the delete buffer once up front (shared across workers and
    // across the now-per-group ScanGroups calls).
    std::unordered_set<int64_t> dead;
    scan_status = csi->SnapshotDeleteBuffer(&dead, sm);
    if (scan_status.ok()) {
      delete_snapshot = &dead;
      if (use_shared_scan) {
        Timer t;
        auto handler = make_handler(0);
        scan_status = ctx.scan_scheduler->Scan(csi, needed, sp, handler, sm,
                                               /*need_locators=*/false);
        if (scan_status.ok()) {
          scan_status = csi->ScanDelta(needed, sp, handler, sm,
                                       /*need_locators=*/false);
        }
        sm->cpu_ns += static_cast<uint64_t>(t.ElapsedMs() * 1e6);
      } else if (nworkers <= 1) {
        Timer t;
        scan_status = batch_worker(0, 0, ngroups, sm);
        if (scan_status.ok()) scan_status = batch_worker(0, -1, -1, sm);
        sm->cpu_ns += static_cast<uint64_t>(t.ElapsedMs() * 1e6);
      } else {
        scan_status = MorselLoop(
            static_cast<uint64_t>(ngroups) + 1, nworkers, sm,
            ops[opx.scan].name,
            [&](int slot, uint64_t mi, QueryMetrics* wm) -> Status {
              if (mi < static_cast<uint64_t>(ngroups)) {
                const int g = static_cast<int>(mi);
                return batch_worker(slot, g, g + 1, wm);
              }
              return batch_worker(slot, -1, -1, wm);
            });
      }
    }
  } else {
    scan_status = DriveBaseScan(nworkers, [&](int w, int64_t rid,
                                              const int64_t* row) {
      int64_t* wide = wide_bufs[w].data();
      std::copy(row, row + base->num_columns(), wide);
      base_out[w]++;
      return pipeline(w, wide, rid, 0);
    });
  }
  HD_RETURN_IF_ERROR(scan_status);
  // Errors recorded inside scan callbacks (lock timeouts, fetch I/O, NL
  // probes) stopped the scan via `return false`; surface them now.
  HD_RETURN_IF_ERROR(TakeSideError());

  if (!plan.base.is_csi()) {
    // Row-mode probe overhead, charged per join step from its inflow.
    const double rate = nworkers > 1 ? ctx.parallel_row_overhead_ns
                                     : ctx.serial_row_overhead_ns;
    for (size_t s = 0; s < nsteps; ++s) {
      if (static_cast<int>(s) == driving_step) continue;
      if (joins[s].method != JoinStep::Method::kHash) continue;
      uint64_t probes = 0;
      for (uint64_t c : join_in[s]) probes += c;
      OpM(opx.join[s])->cpu_ns += static_cast<uint64_t>(probes * rate);
    }
  }

  // ---- Finish: merge worker states, spill phase 2, sort, decode. ----
  // Finish-phase charges (merge cpu, spill io, peak memory) land on the
  // root-side operator that does the work: Agg, else Sort, else Project.
  QueryMetrics* fm = has_aggs ? OpM(opx.agg)
                     : (plan.explicit_sort && !sort_pos.empty())
                         ? OpM(opx.sort)
                         : OpM(opx.output);
  Timer tfin;
  if (has_aggs) {
    if (stream_agg) {
      stream_flush();
      res.rows = std::move(stream_out);
      res.row_count = res.rows.size();
    } else if (group_slots.empty()) {
      std::vector<AggState> final_state(aggs.size());
      for (auto& s : sinks) {
        for (size_t ai = 0; ai < aggs.size(); ++ai) {
          AggMerge(aggs[ai], &final_state[ai], s.global[ai]);
        }
      }
      // Fold encoded-domain pushdown partials (row groups that never
      // produced a batch) into the final state.
      if (!pspecs.empty()) {
        for (const auto& wp : pacc) {
          for (size_t ai = 0; ai < aggs.size(); ++ai) {
            const PushAggState& p = wp[ai];
            AggState& st = final_state[ai];
            switch (pspecs[ai].fn) {
              case PushAggSpec::Fn::kCount:
                st.count += p.count;
                break;
              case PushAggSpec::Fn::kSum:
                st.count += p.count;
                st.i += p.sum;
                break;
              case PushAggSpec::Fn::kMin:
              case PushAggSpec::Fn::kMax: {
                if (!p.has) break;
                const bool is_min = pspecs[ai].fn == PushAggSpec::Fn::kMin;
                if (!st.has || (is_min ? p.minmax < st.packed_minmax
                                       : p.minmax > st.packed_minmax)) {
                  st.packed_minmax = p.minmax;
                }
                st.has = true;
                break;
              }
            }
          }
        }
      }
      Row r;
      for (size_t ai = 0; ai < aggs.size(); ++ai) {
        r.push_back(AggFinal(aggs[ai], final_state[ai], L));
      }
      res.rows.push_back(std::move(r));
      res.row_count = 1;
    } else {
      constexpr size_t kUnlimited = static_cast<size_t>(-1);
      // Merge worker tables into worker 0's. Group hashes were cached at
      // insert time, so the merge re-probes without rehashing any key.
      AggHashTable& global = sinks[0].table;
      for (int w = 1; w < nworkers; ++w) {
        const AggHashTable& t = sinks[w].table;
        for (size_t g = 0; g < t.size(); ++g) {
          const size_t dst =
              global.FindOrInsert(t.KeyAt(g), t.HashAt(g), kUnlimited);
          AggState* into = global.StatesAt(dst);
          const AggState* from = t.StatesAt(g);
          for (size_t ai = 0; ai < aggs.size(); ++ai) {
            AggMerge(aggs[ai], &into[ai], from[ai]);
          }
        }
      }
      // Grace-hash phase 2 over spilled partitions.
      uint64_t spill_total = 0;
      for (auto& s : sinks) spill_total += s.spill_bytes;
      uint64_t phase2_probes = 0;
      if (spill_total > 0) {
        res.spilled = true;
        fm->spill_bytes += spill_total;
        HD_RETURN_IF_ERROR(
            ctx.db->disk()->Write(spill_total, IoPattern::kSequential, fm));
        HD_RETURN_IF_ERROR(
            ctx.db->disk()->Read(spill_total, IoPattern::kSequential, fm));
        const size_t kwg = group_slots.size();
        const size_t kstride = kwg + aggs.size();
        for (int part = 0; part < kSpillParts; ++part) {
          AggHashTable pm;
          pm.Init(kwg, aggs.size());
          for (auto& s : sinks) {
            const auto& buf = s.spill_parts[part];
            for (size_t off = 0; off + kstride <= buf.size(); off += kstride) {
              const int64_t* key = buf.data() + off;
              const uint64_t h = AggHashTable::HashKey(key, kwg);
              const size_t g = pm.FindOrInsert(key, h, kUnlimited);
              AggState* st = pm.StatesAt(g);
              for (size_t ai = 0; ai < aggs.size(); ++ai) {
                const double v = std::bit_cast<double>(buf[off + kwg + ai]);
                switch (aggs[ai].fn) {
                  case AggSpec::Fn::kCount: ++st[ai].count; break;
                  case AggSpec::Fn::kSum:
                  case AggSpec::Fn::kAvg: ++st[ai].count; st[ai].d += v; break;
                  case AggSpec::Fn::kMin:
                  case AggSpec::Fn::kMax:
                    if (!st[ai].has ||
                        (aggs[ai].fn == AggSpec::Fn::kMin ? v < st[ai].d
                                                          : v > st[ai].d)) {
                      st[ai].d = v;
                    }
                    st[ai].has = true;
                    break;
                }
              }
            }
          }
          for (size_t g = 0; g < pm.size(); ++g) {
            const size_t dst =
                global.FindOrInsert(pm.KeyAt(g), pm.HashAt(g), kUnlimited);
            AggState* into = global.StatesAt(dst);
            const AggState* st = pm.StatesAt(g);
            for (size_t ai = 0; ai < aggs.size(); ++ai) {
              // Spilled aggregates lose the int fast path; merge as double.
              switch (aggs[ai].fn) {
                case AggSpec::Fn::kCount:
                case AggSpec::Fn::kSum:
                case AggSpec::Fn::kAvg:
                  into[ai].count += st[ai].count;
                  into[ai].d += st[ai].d;
                  break;
                case AggSpec::Fn::kMin:
                case AggSpec::Fn::kMax:
                  AggMerge(aggs[ai], &into[ai], st[ai]);
                  break;
              }
            }
          }
          phase2_probes += pm.probes();
        }
      }
      // Probe-chain accounting: worker tables (scan-time probes plus the
      // merges into worker 0's) and the phase-2 partition tables.
      uint64_t probes = phase2_probes;
      for (const auto& s : sinks) probes += s.table.probes();
      fm->hash_probes += probes;
      fm->UpdatePeakMemory(global.size() * group_entry_bytes);
      res.row_count = global.size();
      // Decode (capped).
      for (size_t g = 0; g < global.size(); ++g) {
        if (res.rows.size() >= QueryResult::kMaxMaterializedRows) break;
        const int64_t* k = global.KeyAt(g);
        const AggState* st = global.StatesAt(g);
        Row r;
        for (size_t gi = 0; gi < group_slots.size(); ++gi) {
          const ColRef& gc = q.group_by[gi];
          r.push_back(L.tables[gc.table]->UnpackValue(gc.col, k[gi]));
        }
        for (size_t ai = 0; ai < aggs.size(); ++ai) {
          r.push_back(AggFinal(aggs[ai], st[ai], L));
        }
        res.rows.push_back(std::move(r));
      }
    }
  } else {
    // Collected rows: concatenate, sort if needed, decode.
    const size_t stride = proj_slots.size();
    size_t total_rows = 0;
    for (auto& s : sinks) total_rows += s.row_count;
    std::vector<int64_t> all;
    all.reserve(total_rows * stride);
    for (auto& s : sinks) {
      all.insert(all.end(), s.rows.begin(), s.rows.end());
      s.rows.clear();
      s.rows.shrink_to_fit();
    }
    const uint64_t bytes = all.size() * 8;
    fm->UpdatePeakMemory(bytes);
    if (plan.explicit_sort && !sort_pos.empty()) {
      // Build row index and sort it.
      std::vector<uint32_t> idx(total_rows);
      for (size_t i = 0; i < total_rows; ++i) idx[i] = static_cast<uint32_t>(i);
      auto cmp = [&](uint32_t a, uint32_t b) {
        for (int sp2 : sort_pos) {
          const int64_t va = all[a * stride + sp2];
          const int64_t vb = all[b * stride + sp2];
          if (va != vb) return va < vb;
        }
        return a < b;
      };
      if (bytes > grant && grant > 0) {
        // External merge sort: sorted runs of grant-size + k-way merge.
        res.spilled = true;
        fm->spill_bytes += bytes;
        HD_RETURN_IF_ERROR(
            ctx.db->disk()->Write(bytes, IoPattern::kSequential, fm));
        HD_RETURN_IF_ERROR(
            ctx.db->disk()->Read(bytes, IoPattern::kSequential, fm));
        const size_t run_rows =
            std::max<size_t>(1, grant / 8 / std::max<size_t>(1, stride));
        std::vector<std::pair<size_t, size_t>> runs;
        for (size_t b2 = 0; b2 < total_rows; b2 += run_rows) {
          const size_t e2 = std::min(total_rows, b2 + run_rows);
          std::sort(idx.begin() + b2, idx.begin() + e2, cmp);
          runs.emplace_back(b2, e2);
        }
        // K-way merge.
        std::vector<uint32_t> merged;
        merged.reserve(total_rows);
        using HeapEnt = std::pair<uint32_t, size_t>;  // (row idx, run#)
        auto hcmp = [&](const HeapEnt& a, const HeapEnt& b) {
          return cmp(b.first, a.first);
        };
        std::priority_queue<HeapEnt, std::vector<HeapEnt>, decltype(hcmp)> pq(
            hcmp);
        std::vector<size_t> pos(runs.size());
        for (size_t r2 = 0; r2 < runs.size(); ++r2) {
          pos[r2] = runs[r2].first;
          if (pos[r2] < runs[r2].second) pq.push({idx[pos[r2]], r2});
        }
        while (!pq.empty()) {
          auto [ri, rn] = pq.top();
          pq.pop();
          merged.push_back(ri);
          if (++pos[rn] < runs[rn].second) pq.push({idx[pos[rn]], rn});
        }
        idx = std::move(merged);
      } else {
        std::sort(idx.begin(), idx.end(), cmp);
      }
      // Decode in sorted order.
      size_t out_n = total_rows;
      if (q.limit >= 0) out_n = std::min<size_t>(out_n, q.limit);
      res.row_count = out_n;
      const size_t matn =
          std::min<size_t>(out_n, QueryResult::kMaxMaterializedRows);
      for (size_t i = 0; i < matn; ++i) {
        Row r;
        for (size_t p2 = 0; p2 < q.select_cols.size() ||
                            (q.select_cols.empty() && p2 < stride);
             ++p2) {
          const ColRef& ref = proj_refs[p2];
          r.push_back(L.tables[ref.table]->UnpackValue(
              ref.col, all[idx[i] * stride + p2]));
        }
        res.rows.push_back(std::move(r));
      }
    } else {
      size_t out_n = total_rows;
      if (q.limit >= 0) out_n = std::min<size_t>(out_n, q.limit);
      res.row_count = out_n;
      const size_t matn =
          std::min<size_t>(out_n, QueryResult::kMaxMaterializedRows);
      const size_t nsel = q.select_cols.empty() ? stride : q.select_cols.size();
      for (size_t i = 0; i < matn; ++i) {
        Row r;
        for (size_t p2 = 0; p2 < nsel; ++p2) {
          const ColRef& ref = proj_refs[p2];
          r.push_back(
              L.tables[ref.table]->UnpackValue(ref.col, all[i * stride + p2]));
        }
        res.rows.push_back(std::move(r));
      }
    }
  }
  fm->cpu_ns += static_cast<uint64_t>(tfin.ElapsedMs() * 1e6);

  // Post-sort small aggregate outputs if ORDER BY requested on them.
  if (has_aggs && !q.order_by.empty() && !res.rows.empty()) {
    std::vector<int> pos;
    for (const auto& o : q.order_by) {
      for (size_t gi = 0; gi < q.group_by.size(); ++gi) {
        if (q.group_by[gi] == o) pos.push_back(static_cast<int>(gi));
      }
    }
    std::sort(res.rows.begin(), res.rows.end(), [&](const Row& a, const Row& b) {
      for (int p2 : pos) {
        const int c = a[p2].Compare(b[p2]);
        if (c != 0) return c < 0;
      }
      return false;
    });
    if (q.limit >= 0 && static_cast<int64_t>(res.rows.size()) > q.limit) {
      res.rows.resize(q.limit);
      res.row_count = res.rows.size();
    }
  }

  // Fold the per-worker row-flow counters into the operator profiles.
  auto fold = [](const std::vector<uint64_t>& v) {
    uint64_t t = 0;
    for (uint64_t c : v) t += c;
    return t;
  };
  if (opx.scan >= 0) {
    if (fast_agg || fast_group) {
      // Batch paths feed the aggregate straight from decoded batches;
      // rows answered by encoded-domain pushdown flow logically too.
      uint64_t batched = 0;
      for (const auto& s : sinks) batched += s.row_count;
      for (uint64_t pr : pushed_rows) batched += pr;
      ops[opx.scan].rows_out = batched;
      if (opx.agg >= 0) ops[opx.agg].rows_in = batched;
    } else {
      ops[opx.scan].rows_out = fold(base_out);
    }
  }
  for (size_t s = 0; s < nsteps; ++s) {
    if (static_cast<int>(s) == driving_step) continue;  // set above
    ops[opx.join[s]].rows_in = fold(join_in[s]);
    ops[opx.join[s]].rows_out = fold(join_out[s]);
  }
  if (!fast_agg && !fast_group) {
    const uint64_t into_sink = fold(sink_in);
    if (opx.agg >= 0) ops[opx.agg].rows_in = into_sink;
    if (opx.output >= 0) ops[opx.output].rows_in = into_sink;
    if (opx.sort >= 0 && opx.agg < 0) ops[opx.sort].rows_in = into_sink;
  }
  if (opx.agg >= 0) ops[opx.agg].rows_out = res.row_count;
  if (opx.sort >= 0) {
    if (opx.agg >= 0) ops[opx.sort].rows_in = res.row_count;
    ops[opx.sort].rows_out = res.row_count;
  }
  if (opx.output >= 0) ops[opx.output].rows_out = res.row_count;
  return Status::OK();
}

// ---------------------------------------------------------------------
// DML execution.
// ---------------------------------------------------------------------

Status Executor::Impl::RunDml() {
  // Mutation work is attributed to the DML root node; the qualifying scan
  // charges flow through DriveBaseScan to the scan node.
  QueryMetrics* m = OpM(opx.output);
  // Log under the enclosing transaction's WAL id, or an implicit one the
  // statement commits itself (after the latch — see Execute).
  if (base->wal() != nullptr) {
    if (ctx.txn != nullptr) {
      wal_txn = ctx.txn->wal_id();
    } else {
      wal_txn = base->wal()->AllocTxnId();
      wal_autocommit = true;
    }
  }
  auto mark_wal_write = [&] {
    if (base->wal() == nullptr) return;
    wal_wrote = true;
    if (ctx.txn != nullptr) ctx.txn->MarkWalWrite();
  };
  if (q.kind == Query::Kind::kInsert) {
    for (const auto& vr : q.insert_rows) {
      PackedRow p = base->PackRow(vr);
      int64_t rid = -1;
      mark_wal_write();  // even a failed insert logs its compensation
      HD_RETURN_IF_ERROR(base->InsertPacked(p, m, &rid, wal_txn));
      if (ctx.txn != nullptr && ctx.txns != nullptr) {
        HD_RETURN_IF_ERROR(LockRowX(rid));
        ctx.txns->NoteVersion(table_hash, rid, ctx.txn);
      }
      ++res.affected_rows;
    }
    if (opx.output >= 0) {
      ops[opx.output].rows_in = q.insert_rows.size();
      ops[opx.output].rows_out = res.affected_rows;
    }
    return Status::OK();
  }

  // UPDATE / DELETE: collect qualifying rows (TOP N), then mutate.
  const int64_t topn = q.limit >= 0 ? q.limit : INT64_MAX;
  std::vector<RowRef> refs;
  Timer t;
  Status s = DriveBaseScan(1, [&](int, int64_t rid, const int64_t* row) {
    RowRef r;
    r.rid = rid;
    r.row.assign(row, row + base->num_columns());
    refs.push_back(std::move(r));
    return static_cast<int64_t>(refs.size()) < topn;
  });
  HD_RETURN_IF_ERROR(s);
  HD_RETURN_IF_ERROR(TakeSideError());
  m->cpu_ns += static_cast<uint64_t>(t.ElapsedMs() * 1e6);
  if (opx.scan >= 0) ops[opx.scan].rows_out = refs.size();
  if (opx.output >= 0) ops[opx.output].rows_in = refs.size();

  if (ctx.txn != nullptr && ctx.txns != nullptr) {
    for (const auto& r : refs) {
      HD_RETURN_IF_ERROR(LockRowX(r.rid));
    }
  }

  Timer t2;
  if (!refs.empty()) mark_wal_write();
  if (q.kind == Query::Kind::kDelete) {
    HD_RETURN_IF_ERROR(base->DeleteRows(refs, m, wal_txn));
  } else {
    std::vector<PackedRow> news;
    news.reserve(refs.size());
    for (const auto& r : refs) {
      PackedRow nr = r.row;
      for (const auto& set : q.sets) {
        if (set.is_add) {
          const ValueType vt = base->schema().column(set.col).type;
          if (vt == ValueType::kDouble) {
            nr[set.col] = PackDouble(UnpackDouble(nr[set.col]) + set.add_delta);
          } else {
            nr[set.col] += static_cast<int64_t>(set.add_delta);
          }
        } else {
          nr[set.col] = base->PackValue(set.col, set.set_value);
        }
      }
      news.push_back(std::move(nr));
    }
    HD_RETURN_IF_ERROR(base->UpdateRows(refs, news, m, wal_txn));
  }
  m->cpu_ns += static_cast<uint64_t>(t2.ElapsedMs() * 1e6);

  if (ctx.txn != nullptr && ctx.txns != nullptr) {
    for (const auto& r : refs) ctx.txns->NoteVersion(table_hash, r.rid, ctx.txn);
  }
  res.affected_rows = refs.size();
  if (opx.output >= 0) ops[opx.output].rows_out = res.affected_rows;
  return Status::OK();
}

namespace {

const char* KindName(Query::Kind k) {
  switch (k) {
    case Query::Kind::kSelect: return "select";
    case Query::Kind::kUpdate: return "update";
    case Query::Kind::kDelete: return "delete";
    case Query::Kind::kInsert: return "insert";
  }
  return "unknown";
}

// Finalize one statement into the query store (ExecContext::capture
// identity + the rolled-up result). Best-effort by contract: the store
// itself evaluates the `querystore.record` failpoint and drops poisoned
// writes, so this can never change the statement's outcome.
void CaptureRecord(const ExecContext& ctx, const Query& q,
                   const QueryResult& res, double wall_ms) {
  if (ctx.query_store == nullptr) return;
  QueryRecord rec;
  rec.session_id = ctx.capture.session_id;
  rec.trace_id = ctx.capture.trace_id;
  rec.fingerprint = ctx.capture.fingerprint;
  rec.sql = ctx.capture.sql.empty() ? q.id : ctx.capture.sql;
  rec.norm = ctx.capture.norm;
  rec.plan = res.plan_desc;
  rec.kind = KindName(q.kind);
  rec.code = res.status.code();
  if (!res.status.ok()) rec.error = res.status.message();
  rec.latency_ms = wall_ms;
  rec.queue_ms = res.queue_ms;
  rec.rows_out = res.row_count > 0 ? res.row_count : res.affected_rows;
  rec.metrics = res.metrics;
  ctx.query_store->Record(std::move(rec));
}

}  // namespace

QueryResult Executor::Execute(const Query& q, const PhysicalPlan& plan) {
  const auto stmt_t0 = std::chrono::steady_clock::now();
  const auto wall_ms_since = [&stmt_t0] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - stmt_t0)
        .count();
  };
  Impl impl(ctx_, q, plan);
  impl.res.plan_desc = plan.Describe();
  impl.res.trace_id = ctx_.capture.trace_id;
  // Admission gate: non-transactional SELECTs acquire a slot before any
  // latch or lock (a queued query holds nothing). Statements inside a
  // transaction bypass the gate — stalling a lock holder in the admission
  // queue would invite deadlocks the lock manager cannot see.
  AdmissionController::Ticket ticket;
  if (ctx_.admission != nullptr && q.kind == Query::Kind::kSelect &&
      ctx_.txn == nullptr) {
    const bool tracing = Trace::Enabled();
    const uint64_t tr0 = tracing ? Trace::Global().NowUs() : 0;
    Status as = ctx_.admission->Admit(ctx_.memory_grant_bytes, &ticket);
    impl.res.queue_ms = wall_ms_since();
    if (tracing) {
      Trace::Global().Record("AdmissionWait", 0, tr0,
                             Trace::Global().NowUs() - tr0, 0,
                             ctx_.capture.trace_id, "admission");
    }
    if (!as.ok()) {
      // Shed queries are still captured: a store that hides admission
      // rejections would under-report exactly the overload the advisor
      // most needs to see.
      impl.res.status = std::move(as);
      SStats().errors->Add(1);
      SStats().ForKind(q.kind)->Record(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - stmt_t0)
              .count());
      CaptureRecord(ctx_, q, impl.res, wall_ms_since());
      return std::move(impl.res);
    }
  }
  Status s = impl.Setup();
  if (s.ok()) {
    // Physical latches: shared for reads, exclusive on the base for DML.
    // Tables are latched in pointer order to avoid latch deadlocks.
    std::vector<Table*> latch_order(impl.L.tables);
    std::sort(latch_order.begin(), latch_order.end());
    latch_order.erase(std::unique(latch_order.begin(), latch_order.end()),
                      latch_order.end());
    if (q.kind == Query::Kind::kSelect) {
      std::vector<std::shared_lock<FairSharedMutex>> latches;
      latches.reserve(latch_order.size());
      for (Table* t : latch_order) latches.emplace_back(t->phys_latch());
      s = impl.RunSelect();
    } else {
      {
        std::unique_lock<FairSharedMutex> latch(impl.base->phys_latch());
        s = impl.RunDml();
      }
      // Autocommit durability point, deliberately outside the exclusive
      // latch: in group mode this parks for the batch fsync, and nothing
      // should hold the table hostage while it waits. A commit error means
      // durability is unknown — the statement is reported failed and must
      // not be retried (see TransactionManager::Commit).
      if (impl.wal_autocommit && impl.wal_wrote) {
        WalManager* wal = impl.base->wal();
        if (s.ok()) {
          const bool tracing = Trace::Enabled();
          const uint64_t tr0 = tracing ? Trace::Global().NowUs() : 0;
          Status cs = wal->Commit(impl.wal_txn);
          if (tracing) {
            Trace::Global().Record("WalCommit", 0, tr0,
                                   Trace::Global().NowUs() - tr0, 0,
                                   ctx_.capture.trace_id, "wal");
          }
          if (!cs.ok()) s = std::move(cs);
        } else {
          wal->Abort(impl.wal_txn);
        }
      }
    }
  }
  impl.res.status = s;
  // Roll per-operator blocks up into the query totals. res.metrics already
  // holds the residual (locks, version probes) charged at query level, so
  // after the merge it is: sum over operators + residual.
  for (const auto& op : impl.ops) impl.res.metrics.Merge(op.metrics);
  impl.res.operators = std::move(impl.ops);
  impl.res.metrics.dop = impl.use_shared_scan ? 1 : impl.dop();
  {
    const QueryMetrics& qm = impl.res.metrics;
    if (qm.join_batch_probes.load() > 0) {
      SStats().join_batch_probes->Add(qm.join_batch_probes.load());
      SStats().join_matches->Add(qm.join_matches.load());
    }
    if (qm.join_bloom_checks.load() > 0) {
      SStats().join_bloom_checks->Add(qm.join_bloom_checks.load());
      SStats().join_bloom_filtered->Add(qm.join_bloom_filtered.load());
    }
  }
  if (!s.ok()) SStats().errors->Add(1);
  SStats().ForKind(q.kind)->Record(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - stmt_t0)
          .count());
  // Workload capture happens here — after the rollup, so the record
  // carries the exact-sum query totals — and never affects `res`.
  CaptureRecord(ctx_, q, impl.res, wall_ms_since());
  return std::move(impl.res);
}

}  // namespace hd
