#include "exec/admission.h"

#include <algorithm>
#include <chrono>

#include "common/telemetry.h"

namespace hd {

namespace {

struct AdmissionTelemetry {
  TGauge* running = Telemetry::Instance().Gauge("admission.running");
  TGauge* queued = Telemetry::Instance().Gauge("admission.queued");
  TCounter* admitted = Telemetry::Instance().Counter("admission.admitted");
  TCounter* shed = Telemetry::Instance().Counter("admission.shed");
  TCounter* timeouts = Telemetry::Instance().Counter("admission.timeouts");
  THistogram* queue_wait =
      Telemetry::Instance().Histogram("admission.queue_wait_ns");

  static AdmissionTelemetry& Get() {
    static AdmissionTelemetry t;
    return t;
  }
};

}  // namespace

struct AdmissionController::Waiter {
  bool admitted = false;
};

AdmissionController::AdmissionController(AdmissionOptions opts)
    : opts_(opts) {
  if (opts_.max_concurrent < 1) opts_.max_concurrent = 1;
}

bool AdmissionController::FitsLocked(uint64_t grant_bytes) const {
  if (running_ >= opts_.max_concurrent) return false;
  if (opts_.max_memory_grant == 0) return true;
  if (grant_used_ + grant_bytes <= opts_.max_memory_grant) return true;
  // An oversized grant would starve forever; let it run alone.
  return running_ == 0;
}

Status AdmissionController::Admit(uint64_t grant_bytes, Ticket* out) {
  auto& tel = AdmissionTelemetry::Get();
  const auto t0 = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lk(mu_);
  if (queue_.empty() && FitsLocked(grant_bytes)) {
    running_++;
    grant_used_ += grant_bytes;
    admitted_++;
    peak_running_ = std::max(peak_running_, running_);
    tel.running->Add(1);
    tel.admitted->Add(1);
    tel.queue_wait->Record(0);
    *out = Ticket(this, grant_bytes);
    return Status::OK();
  }
  if (static_cast<int>(queue_.size()) >= opts_.max_queue_depth) {
    shed_++;
    tel.shed->Add(1);
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(queue_.size()) +
        " waiting, " + std::to_string(running_) + " running)");
  }
  Waiter w;
  queue_.push_back(&w);
  peak_queued_ = std::max(peak_queued_, static_cast<int>(queue_.size()));
  tel.queued->Add(1);
  const auto deadline =
      t0 + std::chrono::milliseconds(opts_.queue_timeout_ms);
  // FIFO: only the head waiter is examined for admission, so a small
  // query cannot starve a large one at the head (no grant bypass).
  while (!w.admitted) {
    const bool at_head = !queue_.empty() && queue_.front() == &w;
    if (at_head && FitsLocked(grant_bytes)) {
      queue_.pop_front();
      running_++;
      grant_used_ += grant_bytes;
      admitted_++;
      peak_running_ = std::max(peak_running_, running_);
      w.admitted = true;
      tel.queued->Add(-1);
      tel.running->Add(1);
      tel.admitted->Add(1);
      // Another waiter may now be at the head with room behind us.
      cv_.notify_all();
      break;
    }
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
        !w.admitted) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == &w) {
          queue_.erase(it);
          break;
        }
      }
      timeouts_++;
      tel.queued->Add(-1);
      tel.timeouts->Add(1);
      tel.queue_wait->Record(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      // Our departure may unblock the waiter behind us.
      cv_.notify_all();
      return Status::ResourceExhausted(
          "admission queue timeout after " +
          std::to_string(opts_.queue_timeout_ms) + "ms");
    }
  }
  tel.queue_wait->Record(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  *out = Ticket(this, grant_bytes);
  return Status::OK();
}

void AdmissionController::Release(uint64_t grant_bytes) {
  auto& tel = AdmissionTelemetry::Get();
  std::lock_guard<std::mutex> lk(mu_);
  running_--;
  grant_used_ -= grant_bytes;
  tel.running->Add(-1);
  cv_.notify_all();
}

void AdmissionController::Ticket::Release() {
  if (ctrl_ != nullptr) {
    ctrl_->Release(grant_);
    ctrl_ = nullptr;
  }
}

int AdmissionController::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return running_;
}

int AdmissionController::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(queue_.size());
}

uint64_t AdmissionController::grant_in_use() const {
  std::lock_guard<std::mutex> lk(mu_);
  return grant_used_;
}

uint64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return admitted_;
}

uint64_t AdmissionController::shed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shed_;
}

uint64_t AdmissionController::timeouts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return timeouts_;
}

int AdmissionController::peak_running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_running_;
}

int AdmissionController::peak_queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_queued_;
}

}  // namespace hd
