// Flat open-addressing aggregate hash table for vectorized group-by.
//
// Replaces the std::unordered_map<vector<int64_t>, vector<AggState>> the
// executor used per worker: each group is one contiguous payload row —
// key_width int64 key words immediately followed by num_aggs AggStates —
// so a probe and its state update touch the same cache line(s) instead of
// three separate arrays. The slot directory is a power-of-two linear-probe
// table of 32-bit group references. One hash per probe: the hash is
// computed once per input row, drives FindOrInsert, selects the
// grace-spill partition on overflow, and is cached per group so growth
// and the end-of-query worker merge never rehash a key.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace hd {

/// Accumulator for one aggregate within one group. `d`/`i` hold the
/// double/int64 running sums, `count` the contributing rows (also AVG's
/// denominator), `packed_minmax` the min/max in packed-value space with
/// `has` marking whether any row contributed. All-zero bytes are a valid
/// initial state (the payload rows are zero-filled on insert).
struct AggState {
  double d = 0;
  int64_t i = 0;
  uint64_t count = 0;
  int64_t packed_minmax = 0;
  bool has = false;
};

static_assert(sizeof(AggState) % sizeof(int64_t) == 0,
              "payload rows are laid out in int64 words");

class AggHashTable {
 public:
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  /// Prepare for keys of `key_width` int64s and `num_aggs` AggStates per
  /// group. Clears any previous contents.
  void Init(size_t key_width, size_t num_aggs);

  size_t size() const { return ngroups_; }
  size_t key_width() const { return kw_; }

  /// Mixer shared by probing, spill partitioning, and the worker merge —
  /// computing it once per row is the whole point.
  static uint64_t HashKey(const int64_t* key, size_t kw) {
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < kw; ++i) {
      h ^= static_cast<uint64_t>(key[i]);
      h *= 0x9e3779b97f4a7c15ull;
      h ^= h >> 29;
    }
    return h;
  }

  /// Hash `n` keys laid out key_width-strided in `keys`. Also prefetches
  /// each hash's slot word so the probe pass that follows finds the slot
  /// directory cache-resident.
  void ComputeHashes(const int64_t* keys, size_t n, uint64_t* out) const;

  /// Second-stage prefetch: read the (already prefetched) slot word for
  /// `hash` and prefetch the referenced group's payload row. Call a dozen
  /// rows ahead of FindOrInsert in the probe loop to hide the dependent
  /// slot -> payload miss chain on large tables.
  void PrefetchFor(uint64_t hash) const {
    const uint32_t ref = slots_[hash & mask_];
    if (ref != 0) {
      __builtin_prefetch(payload_.data() + (ref - 1) * stride_, 1, 1);
    }
  }

  /// One probe chain: return the group index for `key` (hash precomputed),
  /// inserting a zero-initialized group when absent. Returns kNoSlot —
  /// with nothing inserted — when inserting would exceed `max_groups`
  /// (the grace-spill signal; the caller routes the row to partition
  /// hash % kSpillParts). The probe loop is inline (it runs once per input
  /// row); only the insert path leaves the header.
  size_t FindOrInsert(const int64_t* key, uint64_t hash, size_t max_groups) {
    ++probes_;
    size_t s = hash & mask_;
    if (kw_ == 1) {
      // Single-word keys (the common group-by): the key compare is one
      // word, so checking the cached hash first would only add a load.
      const int64_t k0 = key[0];
      while (true) {
        const uint32_t ref = slots_[s];
        if (ref == 0) return InsertAt(s, key, hash, max_groups);
        const size_t g = ref - 1;
        if (payload_[g * stride_] == k0) return g;
        s = (s + 1) & mask_;
      }
    }
    while (true) {
      const uint32_t ref = slots_[s];
      if (ref == 0) return InsertAt(s, key, hash, max_groups);
      const size_t g = ref - 1;
      if (hashes_[g] == hash &&
          std::memcmp(payload_.data() + g * stride_, key,
                      kw_ * sizeof(int64_t)) == 0) {
        return g;
      }
      s = (s + 1) & mask_;
    }
  }

  const int64_t* KeyAt(size_t g) const { return payload_.data() + g * stride_; }
  uint64_t HashAt(size_t g) const { return hashes_[g]; }
  /// Pointer to group g's num_aggs AggStates (adjacent to its key in the
  /// same payload row). Stable only until the next FindOrInsert (insertion
  /// may reallocate) — batched callers must finish all probes for a batch
  /// before touching states.
  AggState* StatesAt(size_t g) {
    return reinterpret_cast<AggState*>(payload_.data() + g * stride_ + kw_);
  }
  const AggState* StatesAt(size_t g) const {
    return reinterpret_cast<const AggState*>(payload_.data() + g * stride_ +
                                             kw_);
  }

  /// Probe chains walked (one per FindOrInsert call) — the hash_probes
  /// observability counter.
  uint64_t probes() const { return probes_; }
  uint64_t memory_bytes() const {
    return slots_.size() * sizeof(uint32_t) +
           payload_.size() * sizeof(int64_t) +
           hashes_.size() * sizeof(uint64_t);
  }

 private:
  /// Insert slow path: append the group at empty slot `s` (or refuse with
  /// kNoSlot at the max_groups cap), growing the directory afterwards if
  /// the load factor cap (0.7) was crossed.
  size_t InsertAt(size_t s, const int64_t* key, uint64_t hash,
                  size_t max_groups);
  void Grow();

  size_t kw_ = 1;
  size_t na_ = 0;
  size_t stride_ = 1;  ///< payload words per group: kw_ + na_ states
  size_t ngroups_ = 0;
  size_t mask_ = 0;
  std::vector<uint32_t> slots_;   ///< group index + 1; 0 = empty
  std::vector<int64_t> payload_;  ///< ngroups rows of key words + AggStates
  std::vector<uint64_t> hashes_;  ///< one cached hash per group
  uint64_t probes_ = 0;
};

}  // namespace hd
