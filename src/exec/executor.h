// Query executor: runs a PhysicalPlan for a Query against a Database.
//
// Two execution regimes, mirroring SQL Server (Section 2):
//   - row mode for heap and B+ tree access paths (one row at a time,
//     function-call-per-row overhead included);
//   - batch mode for columnstore scans (vectorized predicate evaluation
//     over decoded segments, batched aggregation).
//
// The executor charges hot/cold I/O through the buffer pool, honours a
// per-query memory grant (hash aggregates and sorts spill past it with
// simulated spill I/O and a real second pass), supports parallel base
// scans (DOP), and integrates with the lock manager / version store for
// the mixed-workload experiments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "common/metrics.h"
#include "exec/plan.h"
#include "exec/query.h"
#include "obs/query_store.h"
#include "txn/transaction.h"

namespace hd {

class ScanScheduler;
class AdmissionController;

/// Execution environment for one statement.
struct ExecContext {
  Database* db = nullptr;
  /// Per-query working memory ("grant memory" in SQL Server terms).
  uint64_t memory_grant_bytes = 4ull << 30;
  /// Upper bound on parallel workers; 0 = hardware default (capped at 16).
  int max_dop = 0;
  /// Optional transactional context (mixed workloads).
  TransactionManager* txns = nullptr;
  Transaction* txn = nullptr;
  int lock_timeout_ms = 500;
  /// Row-count threshold above which readers take a table S lock instead
  /// of per-row S locks.
  uint64_t table_lock_threshold = 4096;

  /// Calibrated row-mode overhead, charged as simulated CPU per row that
  /// flows through a row-mode scan (heap / B+ tree / NL probe). Our
  /// in-process pipeline lacks the interpretation cost of a commercial row
  /// engine (slot abstraction, per-row latching, plan interpretation), so
  /// we charge a constant to keep the row:batch per-row cost ratio in SQL
  /// Server's range. Serial plans are charged less than parallel ones —
  /// the paper observes exactly this ("sequential plans are more
  /// CPU-efficient compared to parallel plans", Section 3.2.1).
  double serial_row_overhead_ns = 60;
  double parallel_row_overhead_ns = 400;

  /// Cooperative shared scans (exec/scan_scheduler.h): when set,
  /// non-transactional SELECT scans over a CSI attach to the shared
  /// circular pass for that index instead of scanning privately. nullptr
  /// (default) preserves fully-private scans.
  ScanScheduler* scan_scheduler = nullptr;
  /// Admission gate (exec/admission.h): when set, non-transactional
  /// SELECTs acquire a slot (with this context's memory_grant_bytes as
  /// their grant) before executing; queue-full / timeout surfaces as
  /// kResourceExhausted in QueryResult::status.
  AdmissionController* admission = nullptr;

  /// Workload capture (obs/query_store.h): when set, the executor
  /// finalizes one QueryRecord per statement — at the same rollup point
  /// where operator metrics merge into the query totals, so the record's
  /// metrics are the exact-sum totals — stamped with `capture`'s
  /// identity (SQL text, fingerprint, session, trace id). Admission-shed
  /// statements are recorded too (status kResourceExhausted); capture is
  /// strictly best-effort and can never fail the query.
  QueryStore* query_store = nullptr;
  QueryCaptureInfo capture;
};

/// Result of executing one statement.
struct QueryResult {
  Status status;
  /// Decoded output rows (aggregates, or projected rows capped at
  /// kMaxMaterializedRows; row_count has the true cardinality).
  std::vector<Row> rows;
  uint64_t row_count = 0;
  uint64_t affected_rows = 0;
  QueryMetrics metrics;
  /// Per-operator breakdown in pipeline order (leaf scan first, root
  /// last); `metrics` is the rollup of these blocks plus the residual
  /// (locks / version probes) charged at query level. Rendered by
  /// ExplainAnalyze (exec/explain.h) and embedded in BENCH JSON.
  std::vector<OperatorProfile> operators;
  std::string plan_desc;
  bool spilled = false;
  /// End-to-end trace id this statement ran under (ExecContext::capture);
  /// 0 when untraced. Rendered by EXPLAIN ANALYZE and echoed to remote
  /// clients in ResultDone (docs/PROTOCOL.md §2.6).
  uint64_t trace_id = 0;
  /// Admission queue wait, also folded into the query-store record.
  double queue_ms = 0;

  static constexpr uint64_t kMaxMaterializedRows = 10000;

  bool ok() const { return status.ok(); }
};

class Executor {
 public:
  explicit Executor(ExecContext ctx) : ctx_(ctx) {}

  /// Execute `q` with the given physical plan.
  QueryResult Execute(const Query& q, const PhysicalPlan& plan);

 private:
  struct Impl;
  ExecContext ctx_;
};

}  // namespace hd
