#include "exec/join_hash.h"

namespace hd {

void FlatJoinMap::Build(const std::vector<std::pair<int64_t, uint32_t>>& pairs) {
  sentinel_idx_.clear();
  size_t cap = 16;
  while (cap < pairs.size() * 2 + 2) cap <<= 1;
  mask_ = cap - 1;
  entries_.assign(cap, Entry{kEmptyKey, 0, 0});
  size_t nregular = 0;
  for (const auto& [k, v] : pairs) {
    if (__builtin_expect(k == kEmptyKey, 0)) {
      sentinel_idx_.push_back(v);
      continue;
    }
    entries_[Slot(k, /*insert=*/true)].count++;
    ++nregular;
  }
  unique_ = sentinel_idx_.size() <= 1;
  uint32_t off = 0;
  for (size_t s = 0; s < cap; ++s) {
    Entry& e = entries_[s];
    if (e.count > 1) unique_ = false;
    e.start = off;
    off += e.count;
    e.count = 0;  // reused as a fill cursor below
  }
  idx_.resize(nregular);
  for (const auto& [k, v] : pairs) {
    if (__builtin_expect(k == kEmptyKey, 0)) continue;
    Entry& e = entries_[Slot(k, false)];
    idx_[e.start + e.count++] = v;
  }
}

void FlatJoinMap::ComputeHashes(const int64_t* keys, size_t n,
                                uint64_t* out) const {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = Hash(keys[i]);
    out[i] = h;
    // Stage-1 prefetch: the directory entry FindSlots will compare. One
    // line covers the key and its match range thanks to the consolidated
    // entry layout.
    __builtin_prefetch(entries_.data() + (h & mask_), 0, 1);
  }
}

void FlatJoinMap::FindSlots(const int64_t* keys, const uint64_t* hashes,
                            size_t n, int32_t* slots) const {
  for (size_t i = 0; i < n; ++i) {
    const int64_t k = keys[i];
    if (__builtin_expect(k == kEmptyKey, 0)) {
      slots[i] = sentinel_idx_.empty() ? kMiss : kSentinel;
      continue;
    }
    size_t s = hashes[i] & mask_;
    while (true) {
      const Entry& e = entries_[s];
      if (e.key == k) {
        slots[i] = static_cast<int32_t>(s);
        // Stage-2 prefetch: the match-index range ExpandMatches reads.
        __builtin_prefetch(idx_.data() + e.start, 0, 1);
        break;
      }
      if (e.key == kEmptyKey) {
        slots[i] = kMiss;
        break;
      }
      s = (s + 1) & mask_;
    }
  }
}

size_t FlatJoinMap::ExpandMatches(const int32_t* slots, size_t n,
                                  std::vector<uint32_t>* prow,
                                  std::vector<uint32_t>* brow) const {
  const size_t base = prow->size();
  if (unique_) {
    // FK -> PK fast path: at most one build row per key, so the match
    // vectors are a straight compaction of the hits — sized once up
    // front and written through raw cursors, no per-match size checks.
    prow->resize(base + n);
    brow->resize(base + n);
    uint32_t* pw = prow->data() + base;
    uint32_t* bw = brow->data() + base;
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) {
      const int32_t s = slots[i];
      pw[k] = static_cast<uint32_t>(i);
      if (__builtin_expect(s >= 0, 1)) {
        bw[k] = idx_[entries_[s].start];
      } else if (s == kSentinel) {
        bw[k] = sentinel_idx_[0];
      }
      k += (s != kMiss);
    }
    prow->resize(base + k);
    brow->resize(base + k);
    return k;
  }
  // General path: size the output in one counting pass, then fill.
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t s = slots[i];
    if (s >= 0) {
      total += entries_[s].count;
    } else if (s == kSentinel) {
      total += sentinel_idx_.size();
    }
  }
  prow->resize(base + total);
  brow->resize(base + total);
  uint32_t* pw = prow->data() + base;
  uint32_t* bw = brow->data() + base;
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t s = slots[i];
    if (s == kMiss) continue;
    const uint32_t* m;
    uint32_t cnt;
    if (s == kSentinel) {
      m = sentinel_idx_.data();
      cnt = static_cast<uint32_t>(sentinel_idx_.size());
    } else {
      const Entry& e = entries_[s];
      m = idx_.data() + e.start;
      cnt = e.count;
    }
    for (uint32_t j = 0; j < cnt; ++j) {
      pw[k] = static_cast<uint32_t>(i);
      bw[k] = m[j];
      ++k;
    }
  }
  return total;
}

}  // namespace hd
