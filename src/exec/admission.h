// Admission control for analytic queries (ROADMAP item 1).
//
// A gate in front of the execution pool: at most `max_concurrent` queries
// run at once and their memory grants may not exceed `max_memory_grant` in
// aggregate. Excess queries wait in a FIFO queue; a waiter that exceeds
// `queue_timeout_ms` — or arrives when the queue is already
// `max_queue_depth` deep — is shed with kResourceExhausted. This bounds
// pool oversubscription (morsel workers stay ~1 per core) and keeps
// per-query tail latency predictable under fan-in, instead of letting N
// queries time-slice the same cores N× slower.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/status.h"

namespace hd {

struct AdmissionOptions {
  /// Queries running at once (≈ pool width / per-query DOP).
  int max_concurrent = 8;
  /// Aggregate memory grant across running queries; 0 = unlimited. A
  /// query whose own grant exceeds the budget is still admitted when it
  /// is the only one running (it could otherwise never run).
  uint64_t max_memory_grant = 0;
  /// Waiters beyond this are shed immediately.
  int max_queue_depth = 64;
  /// Max wait before a queued query is shed.
  int queue_timeout_ms = 2000;
};

/// Thread-safe admission gate. Queries Admit() before executing and
/// release their slot via the returned RAII ticket.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions opts = AdmissionOptions());

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Releases one admission slot (and its grant) on destruction. Default
  /// constructed = empty (releases nothing), so a caller can declare one
  /// unconditionally and only arm it when admission is configured.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& o) noexcept : ctrl_(o.ctrl_), grant_(o.grant_) {
      o.ctrl_ = nullptr;
    }
    Ticket& operator=(Ticket&& o) noexcept {
      if (this != &o) {
        Release();
        ctrl_ = o.ctrl_;
        grant_ = o.grant_;
        o.ctrl_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool admitted() const { return ctrl_ != nullptr; }
    void Release();

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* c, uint64_t g) : ctrl_(c), grant_(g) {}
    AdmissionController* ctrl_ = nullptr;
    uint64_t grant_ = 0;
  };

  /// Block until a slot (and `grant_bytes` of the memory budget) is
  /// available, FIFO order. Returns kResourceExhausted when the queue is
  /// full on arrival (shed) or the wait exceeds the timeout. On success
  /// `*out` holds the slot until destroyed.
  Status Admit(uint64_t grant_bytes, Ticket* out);

  const AdmissionOptions& options() const { return opts_; }
  int running() const;
  int queued() const;
  uint64_t grant_in_use() const;
  uint64_t admitted() const;
  uint64_t shed() const;
  uint64_t timeouts() const;
  /// High-water marks since construction (the 4×-oversubscription bound
  /// checks: peak_running ≤ max_concurrent, peak_queued ≤ depth).
  int peak_running() const;
  int peak_queued() const;

 private:
  struct Waiter;

  /// True when the head waiter (or an arriving query with an empty queue)
  /// fits: a free slot and enough grant budget (or nothing running).
  bool FitsLocked(uint64_t grant_bytes) const;
  void Release(uint64_t grant_bytes);

  AdmissionOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Waiter*> queue_;
  int running_ = 0;
  uint64_t grant_used_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  uint64_t timeouts_ = 0;
  int peak_running_ = 0;
  int peak_queued_ = 0;
};

}  // namespace hd
