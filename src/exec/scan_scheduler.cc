#include "exec/scan_scheduler.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/telemetry.h"

namespace hd {

// One ring entry: the dense decoded image of row group (seq % ngroups).
// Slot `s` always lives at ring[s % ring_slots]; it is recycled only once
// every consumer counted in `pending` has consumed (or detached), so a
// consumer may read `data` outside the pass lock while it still owes its
// decrement.
struct ScanScheduler::Slot {
  enum class State { kFree, kDecoding, kReady };
  State state = State::kFree;
  uint64_t seq = 0;
  int pending = 0;
  const Consumer* decoder = nullptr;
  ColumnStoreIndex::DecodedGroup data;
};

struct ScanScheduler::Consumer {
  uint64_t begin = 0;  // pass position at attach
  uint64_t end = 0;    // begin + ngroups (full wrap)
  uint64_t next = 0;   // next seq to consume
  std::vector<int> cols;        // columns this consumer's batches emit
  /// cols ∪ predicate columns: what this consumer wants in the decoded
  /// image. Having the predicate column dense lets ScanDecodedGroup
  /// evaluate in the value domain (a branchless compare over contiguous
  /// int64s) instead of re-running the encoded-domain kernels per
  /// consumer — that per-consumer eval is the dominant residual cost of
  /// a shared pass once decode is amortized.
  std::vector<int> image_cols;
  bool need_locators = false;
};

struct ScanScheduler::Pass {
  std::mutex mu;
  std::condition_variable cv;
  const ColumnStoreIndex* csi = nullptr;
  int ngroups = 0;
  uint64_t next_claim = 0;  // next seq any consumer may claim for decode
  std::vector<Slot> ring;
  std::vector<Consumer*> consumers;
  /// Delete-buffer snapshot taken once at pass creation — sound because
  /// every consumer's statement holds the table's shared phys_latch, so
  /// the buffer cannot change while the pass is alive.
  std::unordered_set<int64_t> dead;
  int active = 0;
  Status broken = Status::OK();  // first decode failure; fails the pass
};

ScanScheduler::ScanScheduler(ScanSchedulerOptions opts) : opts_(opts) {
  if (opts_.ring_slots < 1) opts_.ring_slots = 1;
}

ScanScheduler::~ScanScheduler() = default;

uint64_t ScanScheduler::passes_started() const {
  std::lock_guard<std::mutex> lk(mu_);
  return passes_started_;
}

uint64_t ScanScheduler::attaches() const {
  std::lock_guard<std::mutex> lk(mu_);
  return attaches_;
}

size_t ScanScheduler::active_passes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return passes_.size();
}

void ScanScheduler::Detach(const std::shared_ptr<Pass>& pass, Consumer* me,
                           const ColumnStoreIndex* csi) {
  std::lock_guard<std::mutex> lk(mu_);
  std::lock_guard<std::mutex> plk(pass->mu);
  // Release this consumer's stake in every claimed-but-unconsumed slot of
  // its window so an early detach (LIMIT, error, failpoint) never stalls
  // the other consumers or leaks a ring slot.
  for (auto& sl : pass->ring) {
    if (sl.state == Slot::State::kFree) continue;
    if (sl.seq < me->next || sl.seq >= me->end) continue;
    sl.pending--;
    if (sl.pending == 0 && sl.state == Slot::State::kReady) {
      sl.state = Slot::State::kFree;
    }
  }
  pass->consumers.erase(
      std::remove(pass->consumers.begin(), pass->consumers.end(), me),
      pass->consumers.end());
  pass->active--;
  if (pass->active == 0) {
    auto it = passes_.find(csi);
    if (it != passes_.end() && it->second == pass) passes_.erase(it);
  }
  pass->cv.notify_all();
}

Status ScanScheduler::Scan(const ColumnStoreIndex* csi,
                           const std::vector<int>& cols_needed,
                           const std::vector<SegPredicate>& preds,
                           const std::function<bool(const ColumnBatch&)>& fn,
                           QueryMetrics* m, bool need_locators) {
  const int ngroups = csi->num_row_groups();
  if (ngroups == 0) return Status::OK();

  static TCounter* c_attaches =
      Telemetry::Instance().Counter("scan.shared_attaches");
  static TCounter* c_passes =
      Telemetry::Instance().Counter("scan.shared_passes");
  static TCounter* c_segs =
      Telemetry::Instance().Counter("scan.segments_shared");
  static TCounter* c_saved =
      Telemetry::Instance().Counter("scan.decode_bytes_saved");

  Consumer me;
  me.cols = cols_needed;
  me.image_cols = cols_needed;
  for (const auto& p : preds) {
    if (std::find(me.image_cols.begin(), me.image_cols.end(), p.col) ==
        me.image_cols.end()) {
      me.image_cols.push_back(p.col);
    }
  }
  me.need_locators = need_locators;

  std::shared_ptr<Pass> pass;
  {
    std::lock_guard<std::mutex> lk(mu_);
    std::shared_ptr<Pass>& entry = passes_[csi];
    bool fresh = false;
    if (entry != nullptr) {
      std::lock_guard<std::mutex> plk(entry->mu);
      // A pass poisoned by a decode failure drains with its current
      // consumers; new arrivals start a replacement pass.
      if (!entry->broken.ok()) entry = nullptr;
    }
    if (entry == nullptr) {
      entry = std::make_shared<Pass>();
      fresh = true;
    }
    pass = entry;
    std::lock_guard<std::mutex> plk(pass->mu);
    if (fresh) {
      pass->csi = csi;
      pass->ngroups = ngroups;
      pass->ring.resize(static_cast<size_t>(opts_.ring_slots));
      Status s = csi->SnapshotDeleteBuffer(&pass->dead, m);
      if (!s.ok()) {
        passes_.erase(csi);
        return s;
      }
      passes_started_++;
      c_passes->Add(1);
    }
    me.begin = pass->next_claim;
    me.end = me.begin + static_cast<uint64_t>(pass->ngroups);
    me.next = me.begin;
    pass->consumers.push_back(&me);
    pass->active++;
    attaches_++;
  }
  c_attaches->Add(1);
  if (m != nullptr) m->shared_scan_attaches += 1;

  const size_t nring = pass->ring.size();
  Status result = Status::OK();
  std::unique_lock<std::mutex> lk(pass->mu);
  while (true) {
    if (!pass->broken.ok()) {
      result = pass->broken;
      break;
    }
    if (me.next == me.end) break;  // full wrap: done
    Slot& sl = pass->ring[me.next % nring];

    if (me.next == pass->next_claim && sl.state == Slot::State::kFree) {
      // Claim: this consumer decodes the group on behalf of everyone
      // attached right now whose window covers it.
      const uint64_t seq = pass->next_claim++;
      const int group = static_cast<int>(seq % pass->ngroups);
      sl.state = Slot::State::kDecoding;
      sl.seq = seq;
      sl.decoder = &me;
      sl.pending = 0;
      std::vector<int> union_cols;
      bool want_locs = false;
      for (const Consumer* c : pass->consumers) {
        if (c->begin > seq || seq >= c->end) continue;
        sl.pending++;
        want_locs |= c->need_locators;
        for (int col : c->image_cols) {
          if (std::find(union_cols.begin(), union_cols.end(), col) ==
              union_cols.end()) {
            union_cols.push_back(col);
          }
        }
      }
      want_locs |= !pass->dead.empty() || csi->row_group(group).has_deletes();
      lk.unlock();
      Status ds = csi->DecodeGroupDense(group, union_cols, want_locs,
                                        &sl.data, m);
      lk.lock();
      if (!ds.ok()) {
        pass->broken = ds;
        pass->cv.notify_all();
        result = ds;
        break;
      }
      sl.state = Slot::State::kReady;
      pass->cv.notify_all();
      continue;  // loop back and consume it ourselves
    }

    if (me.next < pass->next_claim && sl.seq == me.next &&
        sl.state == Slot::State::kReady) {
      // Consume: evaluate our predicates against the shared image.
      const bool shared_decode = sl.decoder != &me;
      ColumnStoreIndex::DecodedGroup& dg = sl.data;
      lk.unlock();
      Status cs = EvalFailPoint("csi.shared_consume", m);
      bool stopped = false;
      if (cs.ok()) {
        if (shared_decode && m != nullptr) {
          const uint64_t nsegs = me.cols.size() + (me.need_locators ? 1 : 0);
          m->segments_shared += nsegs;
          m->shared_decode_bytes_saved +=
              dg.rows * sizeof(int64_t) * me.cols.size();
          c_segs->Add(nsegs);
          c_saved->Add(dg.rows * sizeof(int64_t) * me.cols.size());
        }
        cs = csi->ScanDecodedGroup(dg, me.cols, preds, fn, m,
                                   me.need_locators, &pass->dead, &stopped);
      }
      lk.lock();
      sl.pending--;
      if (sl.pending == 0 && sl.state == Slot::State::kReady) {
        sl.state = Slot::State::kFree;
        pass->cv.notify_all();
      }
      me.next++;
      if (!cs.ok()) {
        result = cs;
        break;
      }
      if (stopped) break;  // fn asked to stop (e.g. LIMIT satisfied)
      continue;
    }

    // Either our next group is mid-decode by another consumer, or the ring
    // slot it maps to is still owed to a lagging consumer.
    pass->cv.wait(lk);
  }
  lk.unlock();
  Detach(pass, &me, csi);
  return result;
}

}  // namespace hd
