// Table: schema + primary storage + secondary indexes + DML fan-out.
//
// Mirrors SQL Server's physical design space (Section 2): the primary
// structure is a heap, a clustered B+ tree, or a primary columnstore;
// secondaries are B+ trees (any number) or one columnstore per table.
//
// Every row has a stable RowId (insert sequence). A clustered B+ tree
// appends the RowId as a hidden uniquifier key column (SQL Server's trick
// for non-unique clustered keys); secondary B+ trees do the same and their
// payload carries included columns plus the primary key columns needed to
// address the clustered index.
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "catalog/index_def.h"
#include "catalog/stats.h"
#include "catalog/string_dict.h"
#include "columnstore/columnstore.h"
#include "common/latch.h"
#include "common/schema.h"
#include "storage/heap_file.h"
#include "storage/wal.h"

namespace hd {

enum class PrimaryKind { kHeap, kBTree, kColumnStore };

/// A materialized secondary index.
struct SecondaryIndex {
  IndexDef def;
  /// Columns stored in the payload of a secondary B+ tree: the declared
  /// included columns plus (deduped) primary-key columns.
  std::vector<int> payload_cols;
  std::unique_ptr<BTree> btree;
  std::unique_ptr<ColumnStoreIndex> csi;

  uint64_t size_bytes() const {
    return btree ? btree->size_bytes() : csi->size_bytes();
  }
};

/// A row reference: stable id + current packed image. DML APIs take these
/// so secondary index maintenance can compute old keys.
struct RowRef {
  int64_t rid = -1;
  PackedRow row;
};

class Table {
 public:
  Table(std::string name, Schema schema, BufferPool* pool);
  ~Table();

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int num_columns() const { return schema_.num_columns(); }
  BufferPool* buffer_pool() const { return pool_; }

  // ---------- value packing ----------

  /// Pack a Value for column `col` for storage; may extend a dictionary.
  int64_t PackValue(int col, const Value& v);
  /// Pack a constant for a comparison against column `col` without
  /// extending dictionaries. `dir` handles absent dictionary strings:
  /// -1 = round down (floor code), +1 = round up (floor code + 1);
  /// 0 = equality (absent -> *found=false).
  int64_t PackBound(int col, const Value& v, int dir, bool* found) const;
  Value UnpackValue(int col, int64_t packed) const;
  PackedRow PackRow(const Row& r);
  Row UnpackRow(const PackedRow& p) const;

  // ---------- loading ----------

  /// Bulk load rows into the current primary structure. Builds string
  /// dictionaries sorted, assigns RowIds, updates stats, and (re)builds
  /// any existing secondary indexes.
  void BulkLoad(const std::vector<Row>& rows);
  /// Column-major packed bulk load (fast path for generators). Dictionary
  /// columns must already be packed via PackValue.
  void BulkLoadPacked(std::vector<std::vector<int64_t>> cols);

  // ---------- physical design ----------

  /// Change the primary structure. Rebuilds secondaries; RowIds are
  /// reassigned in the new storage order.
  Status SetPrimary(PrimaryKind kind, std::vector<int> key_cols = {});

  Status CreateSecondaryBTree(const std::string& name,
                              std::vector<int> key_cols,
                              std::vector<int> included_cols);
  /// One columnstore per table (SQL Server restriction); stores all
  /// columns (the paper's DTA design choice (ii), Section 4.3).
  /// `sort_col >= 0` builds a *sorted* columnstore on that column — the
  /// Section 4.5 extension (Vertica-style projection order), enabling
  /// aggressive segment elimination for predicates on it.
  Status CreateSecondaryColumnStore(const std::string& name,
                                    int sort_col = -1);
  Status DropIndex(const std::string& name);
  void DropAllSecondaries();
  /// Materialize an IndexDef (primary or secondary).
  Status ApplyIndexDef(const IndexDef& def);

  PrimaryKind primary_kind() const { return primary_kind_; }
  const std::vector<int>& primary_key_cols() const { return primary_keys_; }
  HeapFile* heap() const { return heap_.get(); }
  BTree* primary_btree() const { return primary_btree_.get(); }
  ColumnStoreIndex* primary_csi() const { return primary_csi_.get(); }
  const std::vector<std::unique_ptr<SecondaryIndex>>& secondaries() const {
    return secondaries_;
  }
  SecondaryIndex* FindSecondary(const std::string& name) const;
  /// The table's columnstore (primary or secondary), if any.
  ColumnStoreIndex* any_csi() const;
  bool has_secondary_csi() const;

  // ---------- DML ----------
  //
  // When a WAL is bound (BindWal), every DML call logs its mutation BEFORE
  // applying it (WAL rule) under `wal_txn`. `wal_txn` = 0 with a bound WAL
  // self-wraps the statement: an implicit transaction id is allocated and
  // committed (with the mode's durability wait) before returning — direct
  // callers get per-statement durability without touching txn machinery.
  // The executor always passes an explicit id and commits after releasing
  // the physical latch (waiting on an fsync under the exclusive latch
  // would serialize all traffic through the commit window).

  /// Insert one packed row everywhere; `*rid_out` (optional) receives its
  /// RowId. On failure the row is absent from every structure: a failed
  /// secondary insert compensates by deleting the primary copy, so a
  /// statement-level retry re-inserts cleanly.
  Status InsertPacked(const PackedRow& row, QueryMetrics* m,
                      int64_t* rid_out = nullptr, uint64_t wal_txn = 0);
  Status InsertRow(const Row& r, QueryMetrics* m, int64_t* rid_out = nullptr) {
    return InsertPacked(PackRow(r), m, rid_out);
  }
  /// Delete rows (statement-granular so primary-CSI delete scans once).
  Status DeleteRows(const std::vector<RowRef>& rows, QueryMetrics* m,
                    uint64_t wal_txn = 0);
  /// Update rows: news[i] replaces rows[i] (RowIds preserved).
  Status UpdateRows(const std::vector<RowRef>& rows,
                    const std::vector<PackedRow>& news, QueryMetrics* m,
                    uint64_t wal_txn = 0);

  /// Fetch one row's full packed image by locator. `pk_hint` must carry
  /// the clustered key column values when the primary is a B+ tree (a
  /// secondary index's payload provides them); ignored otherwise. For a
  /// primary columnstore this is a pruned row-group scan — expensive by
  /// design, matching Section 2.
  Status FetchRow(int64_t rid, std::span<const int64_t> pk_hint,
                  PackedRow* out, QueryMetrics* m) const;

  // ---------- whole-table access ----------

  /// Scan every live row in primary storage order.
  void ScanAll(const std::function<bool(int64_t rid, const int64_t*)>& fn,
               QueryMetrics* m) const;

  /// Block-level sample in storage order: whole blocks of `block_rows`
  /// rows are taken with probability `ratio` (the biased sampling regime
  /// Section 4.4's estimators must cope with).
  void SampleBlocks(double ratio, uint64_t seed, int block_rows,
                    std::vector<std::vector<int64_t>>* cols) const;

  // ---------- stats ----------

  /// Recompute table statistics from a block sample (or full data when
  /// small).
  void Analyze();
  const TableStats& stats() const { return stats_; }

  uint64_t num_rows() const;
  uint64_t primary_size_bytes() const;
  /// Key width (int64 slots) of the clustered B+ tree incl. uniquifier.
  int primary_btree_key_width() const {
    return static_cast<int>(primary_keys_.size()) + 1;
  }

  /// Build the packed B+ tree key (key cols + rid) for a row image.
  std::vector<int64_t> MakeBTreeKey(const std::vector<int>& key_cols,
                                    const PackedRow& row, int64_t rid) const;

  const StringDict* dict(int col) const { return dicts_[col].get(); }

  // ---------- durability (storage/wal.h, catalog/recovery.h) ----------

  /// Bind this table to a WAL under a stable catalog id. After binding,
  /// DML logs logical records before applying them. Schema/DDL/bulk loads
  /// are NOT logged — they become durable at the next checkpoint (see
  /// DESIGN.md "Durability & recovery": DDL must be followed by an
  /// explicit Database::Checkpoint for recovery to replay correctly).
  void BindWal(WalManager* wal, uint32_t table_id) {
    wal_ = wal;
    table_id_ = table_id;
  }
  WalManager* wal() const { return wal_; }
  uint32_t table_id() const { return table_id_; }
  /// LSN of the last logged mutation applied to this table; records at or
  /// below the checkpointed value are skipped during redo (the pageLSN
  /// comparison, at table granularity for the logical-redo scheme).
  uint64_t applied_lsn() const { return applied_lsn_; }
  void set_applied_lsn(uint64_t lsn) { applied_lsn_ = lsn; }
  int64_t next_rid() const { return next_rid_; }

  /// Packed row image -> loggable row: string columns travel as text (so
  /// recovery can rebuild dictionary codes), NULLs as explicit nulls.
  WalRow ToWalRow(const PackedRow& row) const;
  /// Loggable row -> packed image against THIS instance's dictionaries
  /// (GetOrAdd; replay in LSN order reproduces code allocation).
  PackedRow FromWalRow(const WalRow& row);

  /// Run the tuple mover over every columnstore on this table under the
  /// exclusive physical latch, logging a self-committed "reorg applied"
  /// record per index FIRST — a crash mid-mover replays to the old or new
  /// row-group image, never a torn mix.
  Status ReorganizeColumnstores();

  // Recovery-side appliers (catalog/recovery.cc). Only called before the
  // WAL is bound, so nothing here re-logs. Rid-explicit: replay must
  // reproduce the exact locators the log references.

  /// Restore a column dictionary image from a checkpoint.
  void RecoverRestoreDict(int col, std::vector<std::string> strings,
                          bool sorted);
  /// Bulk-install checkpointed rows (packed against the restored dicts)
  /// with explicit rids; `next_rid` restores the allocation point. Heap
  /// primaries pad rid gaps with tombstones so positions stay faithful.
  void RecoverLoad(std::vector<std::vector<int64_t>> cols,
                   std::vector<int64_t> rids, int64_t next_rid);
  /// Redo one logged insert at its original rid.
  Status RecoverInsert(int64_t rid, const PackedRow& row);
  Status RecoverUpdate(int64_t rid, const PackedRow& old_row,
                       const PackedRow& new_row);
  Status RecoverDelete(int64_t rid, const PackedRow& old_row);

  /// Physical latch: index structures are not internally latched, so
  /// concurrent statements take this shared (reads) or exclusive (DML).
  /// Logical concurrency control (row/table locks, versioning) lives in
  /// the txn module; this only protects physical structure integrity.
  /// Writer-preferring (common/latch.h): continuous analytic readers must
  /// not starve DML — see the FairSharedMutex header comment.
  FairSharedMutex& phys_latch() const { return phys_latch_; }

 private:
  void RebuildSecondary(SecondaryIndex* si);
  Status InsertIntoSecondaries(const PackedRow& row, int64_t rid,
                               QueryMetrics* m);
  /// Append one DML record under `txn` (WAL bound). Stamps nothing.
  Status LogDml(WalRecordType type, uint64_t txn, int64_t rid,
                const PackedRow* old_row, const PackedRow* new_row,
                uint64_t* lsn_out);
  /// Stamp the structures a logged mutation touched with its LSN (pageLSN
  /// plumbing + buffer-pool dirty tracking) and advance applied_lsn_.
  void StampLsn(int64_t rid, uint64_t lsn);
  std::vector<int> ComputePayloadCols(const IndexDef& def) const;
  /// Collect all live rows (with rids) from the current primary.
  void CollectAll(std::vector<PackedRow>* rows, std::vector<int64_t>* rids) const;

  std::string name_;
  Schema schema_;
  BufferPool* pool_;
  std::vector<std::unique_ptr<StringDict>> dicts_;  // null for non-strings

  PrimaryKind primary_kind_ = PrimaryKind::kHeap;
  std::vector<int> primary_keys_;
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<BTree> primary_btree_;
  std::unique_ptr<ColumnStoreIndex> primary_csi_;
  std::vector<std::unique_ptr<SecondaryIndex>> secondaries_;

  int64_t next_rid_ = 0;
  TableStats stats_;
  mutable FairSharedMutex phys_latch_;

  WalManager* wal_ = nullptr;  // null = durability off / recovery running
  uint32_t table_id_ = 0;
  uint64_t applied_lsn_ = 0;
};

}  // namespace hd
