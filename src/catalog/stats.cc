#include "catalog/stats.h"

#include <algorithm>
#include <cmath>

namespace hd {

uint64_t GeeEstimateDistinct(const std::vector<int64_t>& sorted_sample,
                             uint64_t total_rows) {
  const uint64_t ns = sorted_sample.size();
  if (ns == 0) return 0;
  if (ns >= total_rows) {
    // Exact: full data.
    uint64_t d = 1;
    for (size_t i = 1; i < sorted_sample.size(); ++i) {
      d += sorted_sample[i] != sorted_sample[i - 1];
    }
    return d;
  }
  uint64_t f1 = 0;       // values occurring exactly once in the sample
  uint64_t d_more = 0;   // values occurring more than once
  size_t i = 0;
  while (i < sorted_sample.size()) {
    size_t j = i + 1;
    while (j < sorted_sample.size() && sorted_sample[j] == sorted_sample[i]) {
      ++j;
    }
    if (j - i == 1) {
      ++f1;
    } else {
      ++d_more;
    }
    i = j;
  }
  const double scale = std::sqrt(static_cast<double>(total_rows) / ns);
  return d_more + static_cast<uint64_t>(scale * f1);
}

void ColumnStats::Build(std::vector<int64_t> values, uint64_t total_rows,
                        int num_buckets) {
  total_rows_ = total_rows;
  sample_rows_ = values.size();
  if (values.empty()) return;
  std::sort(values.begin(), values.end());
  min_ = values.front();
  max_ = values.back();
  ndv_ = GeeEstimateDistinct(values, total_rows);

  num_buckets = std::min<int>(num_buckets, static_cast<int>(values.size()));
  bounds_.clear();
  bucket_ndv_.clear();
  rows_per_bucket_ = static_cast<double>(values.size()) / num_buckets;
  for (int b = 0; b < num_buckets; ++b) {
    const size_t lo = static_cast<size_t>(b * rows_per_bucket_);
    bounds_.push_back(values[lo]);
    const size_t hi = std::min(values.size(),
                               static_cast<size_t>((b + 1) * rows_per_bucket_));
    uint64_t d = lo < hi ? 1 : 0;
    for (size_t i = lo + 1; i < hi; ++i) d += values[i] != values[i - 1];
    bucket_ndv_.push_back(std::max<uint64_t>(1, d));
  }
  bounds_.push_back(max_);
}

double ColumnStats::SelectivityRange(int64_t lo, int64_t hi) const {
  if (total_rows_ == 0 || bounds_.size() < 2) return 0.0;
  if (hi < min_ || lo > max_) return 0.0;
  lo = std::max(lo, min_);
  hi = std::min(hi, max_);
  const int nb = static_cast<int>(bounds_.size()) - 1;
  double frac = 0.0;
  for (int b = 0; b < nb; ++b) {
    const double blo = static_cast<double>(bounds_[b]);
    const double bhi = static_cast<double>(bounds_[b + 1]);
    const double l = std::max(blo, static_cast<double>(lo));
    const double h = std::min(bhi, static_cast<double>(hi));
    if (h < l) continue;
    // Uniform-within-bucket interpolation; point buckets count fully.
    double part = (bhi > blo) ? (h - l) / (bhi - blo) : 1.0;
    part = std::clamp(part, 0.0, 1.0);
    frac += part / nb;
  }
  return std::clamp(frac, 0.0, 1.0);
}

double ColumnStats::SelectivityEq(int64_t v) const {
  if (total_rows_ == 0 || bounds_.size() < 2) return 0.0;
  if (v < min_ || v > max_) return 0.0;
  // A frequent value spans multiple equi-depth buckets: sum contributions
  // from every bucket whose range contains v. Point buckets (lo == hi == v)
  // are entirely the value; mixed buckets contribute 1/ndv of their share.
  const int nb = static_cast<int>(bounds_.size()) - 1;
  double frac = 0.0;
  bool hit = false;
  for (int b = 0; b < nb; ++b) {
    const int64_t lo = bounds_[b];
    const int64_t hi = bounds_[b + 1];
    if (lo == hi) {
      if (v == lo) {
        hit = true;
        frac += 1.0 / nb;
      }
      continue;
    }
    // Half-open [lo, hi) to avoid double counting boundaries; the last
    // bucket is closed.
    if (v >= lo && (v < hi || b == nb - 1)) {
      hit = true;
      frac += 1.0 / nb / bucket_ndv_[b];
    }
  }
  if (!hit) return 1.0 / std::max<uint64_t>(1, ndv_);
  return std::clamp(frac, 0.0, 1.0);
}

}  // namespace hd
