// Database: named tables plus the shared storage substrate.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "catalog/table.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"

namespace hd {

class Database {
 public:
  explicit Database(DiskConfig disk_cfg = DiskConfig(),
                    uint64_t buffer_capacity_bytes = 0)
      : disk_(disk_cfg), pool_(&disk_, buffer_capacity_bytes) {}

  /// Create a table; name must be unique.
  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Table* GetTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  const std::map<std::string, std::unique_ptr<Table>>& tables() const {
    return tables_;
  }

  BufferPool* buffer_pool() { return &pool_; }
  DiskModel* disk() { return &disk_; }

  /// Model a cold server: drop all buffer-pool residency.
  void ColdStart() { pool_.EvictAll(); }
  /// Model a fully warmed cache.
  void WarmAll() { pool_.WarmAll(); }

  /// Total bytes across all tables' primary structures and indexes.
  uint64_t TotalSizeBytes() const;

 private:
  DiskModel disk_;
  BufferPool pool_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace hd
