// Database: named tables plus the shared storage substrate.
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "catalog/recovery.h"
#include "catalog/table.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/wal.h"

namespace hd {

class Database {
 public:
  explicit Database(DiskConfig disk_cfg = DiskConfig(),
                    uint64_t buffer_capacity_bytes = 0)
      : disk_(disk_cfg), pool_(&disk_, buffer_capacity_bytes) {}

  /// Create a table; name must be unique. The table gets a stable catalog
  /// id and, when durability is open, is bound to the WAL (its DDL still
  /// only becomes durable at the next Checkpoint()).
  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Table* GetTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  const std::map<std::string, std::unique_ptr<Table>>& tables() const {
    return tables_;
  }

  BufferPool* buffer_pool() { return &pool_; }
  DiskModel* disk() { return &disk_; }

  /// Model a cold server: drop all buffer-pool residency.
  void ColdStart() { pool_.EvictAll(); }
  /// Model a fully warmed cache.
  void WarmAll() { pool_.WarmAll(); }

  /// Total bytes across all tables' primary structures and indexes.
  uint64_t TotalSizeBytes() const;

  // ---------- durability (storage/wal.h, catalog/recovery.h) ----------

  /// Attach this database to `dir`: run restart recovery (checkpoint +
  /// WAL replay) into the current catalog, then open the WAL for appends
  /// and bind every table. kOff leaves the database fully volatile (the
  /// pre-durability engine) and is a no-op. Call once, before serving.
  Status OpenDurability(const std::string& dir, DurabilityMode mode,
                        WalOptions opts = WalOptions(),
                        RecoveryStats* stats = nullptr);

  /// Fuzzy checkpoint + WAL truncation (catalog/recovery.cc). Also the
  /// durability point for DDL and bulk loads, which are not logged.
  Status Checkpoint();

  WalManager* wal() const { return wal_.get(); }
  DurabilityMode durability_mode() const { return durability_mode_; }
  const std::string& data_dir() const { return data_dir_; }

  Table* GetTableById(uint32_t id) const;
  uint32_t next_table_id() const { return next_table_id_; }

  // Recovery seams (catalog/recovery.cc): pin a recovered table to its
  // checkpointed id / restore the id allocation point.
  void AssignTableId(Table* t, uint32_t id);
  void SeedNextTableId(uint32_t next) {
    next_table_id_ = std::max(next_table_id_, next);
  }

 private:
  DiskModel disk_;
  BufferPool pool_;
  std::map<std::string, std::unique_ptr<Table>> tables_;

  std::string data_dir_;
  DurabilityMode durability_mode_ = DurabilityMode::kOff;
  std::unique_ptr<WalManager> wal_;
  uint32_t next_table_id_ = 1;
  std::map<uint32_t, Table*> tables_by_id_;
};

}  // namespace hd
