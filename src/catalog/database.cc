#include "catalog/database.h"

namespace hd {

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name)) {
    return Status::InvalidArgument("table exists: " + name);
  }
  auto t = std::make_unique<Table>(name, std::move(schema), &pool_);
  Table* ptr = t.get();
  tables_.emplace(name, std::move(t));
  const uint32_t id = next_table_id_++;
  ptr->BindWal(wal_.get(), id);
  tables_by_id_[id] = ptr;
  // DDL is not logged, so a table created after the last checkpoint would
  // be invisible to recovery — and committed DML against it silently
  // unreplayable. Checkpointing right away puts the (empty) table in the
  // recovery baseline. No-op during recovery itself: wal_ is not open yet.
  if (wal_ != nullptr && wal_->open()) {
    Status s = WriteCheckpoint(this, data_dir_);
    if (!s.ok()) {
      tables_by_id_.erase(id);
      tables_.erase(name);
      return s;
    }
  }
  return ptr;
}

Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Database::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  tables_by_id_.erase(it->second->table_id());
  tables_.erase(it);
  // Make the drop durable immediately; otherwise recovery would resurrect
  // the table from the previous checkpoint. An error here means the drop
  // happened in memory but is not yet durable — the caller may retry.
  if (wal_ != nullptr && wal_->open()) {
    HD_RETURN_IF_ERROR(WriteCheckpoint(this, data_dir_));
  }
  return Status::OK();
}

uint64_t Database::TotalSizeBytes() const {
  uint64_t b = 0;
  for (const auto& [name, t] : tables_) {
    b += t->primary_size_bytes();
    for (const auto& si : t->secondaries()) b += si->size_bytes();
  }
  return b;
}

Table* Database::GetTableById(uint32_t id) const {
  auto it = tables_by_id_.find(id);
  return it == tables_by_id_.end() ? nullptr : it->second;
}

void Database::AssignTableId(Table* t, uint32_t id) {
  tables_by_id_.erase(t->table_id());
  t->BindWal(wal_.get(), id);
  tables_by_id_[id] = t;
  next_table_id_ = std::max(next_table_id_, id + 1);
}

Status Database::OpenDurability(const std::string& dir, DurabilityMode mode,
                                WalOptions opts, RecoveryStats* stats) {
  if (mode == DurabilityMode::kOff) return Status::OK();
  if (wal_ != nullptr) {
    return Status::InvalidArgument("durability already open");
  }
  RecoveryStats local;
  if (stats == nullptr) stats = &local;
  HD_RETURN_IF_ERROR(WalRecover(this, dir, stats));

  data_dir_ = dir;
  durability_mode_ = mode;
  wal_ = std::make_unique<WalManager>(dir, mode, opts);
  Status s = wal_->Open(stats->max_lsn + 1, stats->max_txn + 1);
  if (!s.ok()) {
    wal_.reset();
    durability_mode_ = DurabilityMode::kOff;
    return s;
  }
  for (const auto& [name, t] : tables_) {
    t->BindWal(wal_.get(), t->table_id());
  }
  return Status::OK();
}

Status Database::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("durability is not open");
  }
  return WriteCheckpoint(this, data_dir_);
}

}  // namespace hd
