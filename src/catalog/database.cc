#include "catalog/database.h"

namespace hd {

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name)) {
    return Status::InvalidArgument("table exists: " + name);
  }
  auto t = std::make_unique<Table>(name, std::move(schema), &pool_);
  Table* ptr = t.get();
  tables_.emplace(name, std::move(t));
  return ptr;
}

Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::OK();
}

uint64_t Database::TotalSizeBytes() const {
  uint64_t b = 0;
  for (const auto& [name, t] : tables_) {
    b += t->primary_size_bytes();
    for (const auto& si : t->secondaries()) b += si->size_bytes();
  }
  return b;
}

}  // namespace hd
