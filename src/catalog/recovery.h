// Crash recovery and checkpointing for the WAL (storage/wal.h).
//
// The engine's structures have no page serialization — they are rebuilt,
// not mapped. A checkpoint is therefore a *logical* per-table snapshot
// (schema, dictionaries, index defs, live rows with their rids, and the
// table's applied LSN), written atomically (tmp + fsync + rename + dir
// fsync, with a CURRENT pointer file), and recovery is:
//
//   1. Load the checkpoint named by CURRENT (if any): recreate tables,
//      restore dictionaries code-for-code, install rows at their original
//      rids (heap gaps padded with tombstones), rebuild secondaries.
//   2. Analysis: scan the WAL once, classifying transactions into winners
//      (commit record present) and losers (everything else). Records below
//      the checkpoint's stored redo_start are resolved history retained by
//      segment-granular truncation; they are dropped so repeated
//      crash/recover/checkpoint cycles never double-undo.
//   3. Redo: replay records in LSN order. A record at or below its table's
//      checkpointed applied LSN is already reflected in the snapshot (the
//      pageLSN comparison at table granularity) — it is not replayed, but
//      if it belongs to a LOSER its in-place effect was captured by the
//      fuzzy checkpoint, so it is queued for undo with the logged row
//      images. Above the snapshot point, ALL inserts replay — winners and
//      losers — so heap rids stay dense with physical slots ("repeating
//      history"); updates/deletes replay for winners only.
//   4. Undo: losers' effects are reversed in reverse LSN order — replayed
//      and checkpointed inserts are deleted (leaving tombstones),
//      checkpointed updates restore the old image, checkpointed deletes
//      resurrect the old row. A rid a winner wrote LATER than the loser's
//      op keeps the winner's image. NotFound during undo is tolerated
//      (the loser compensated its own op).
//
// Recovery runs on an *unbound* database (no WalManager open), so nothing
// replayed is re-logged; the caller (Database::OpenDurability) opens the
// log for appends afterwards, seeded past the maxima observed here.
//
// Durability contract for DDL and bulk loads: they are NOT logged.
// CREATE/DROP TABLE self-checkpoint when durability is open (so committed
// DML against a new table is always replayable); bulk loads and index
// changes become durable at the next Database::Checkpoint(). Records for
// table ids recovery does not know are counted (skipped_records) and
// dropped. See DESIGN.md "Durability & recovery".
#pragma once

#include <string>

#include "common/status.h"
#include "storage/wal.h"

namespace hd {

class Database;

/// What a restart did, for tests and the recovery.* telemetry
/// (recovery.redo_records / undo_records / restart_ms).
struct RecoveryStats {
  bool checkpoint_loaded = false;
  uint64_t redo_records = 0;
  uint64_t undo_records = 0;
  /// Records for table ids unknown to the checkpointed catalog (DDL after
  /// the last checkpoint — dropped per the durability contract).
  uint64_t skipped_records = 0;
  /// Torn/corrupt tail bytes discarded by the log scan.
  uint64_t truncated_bytes = 0;
  uint64_t max_lsn = 0;  // highest LSN observed (checkpoint or log)
  uint64_t max_txn = 0;  // highest WAL txn id observed
  double restart_ms = 0;
};

/// Run restart recovery from `dir` into `db`. Checkpointed tables must not
/// already exist in `db`. Fails on the `recovery.redo` failpoint or real
/// corruption; the caller may retry on a fresh Database (nothing on disk
/// is mutated). `stats` may be null.
Status WalRecover(Database* db, const std::string& dir, RecoveryStats* stats);

/// Take a fuzzy checkpoint of `db` into `dir` using db->wal() (which must
/// be open): per-table snapshots under the shared physical latch,
/// EnsureDurable past every snapshotted LSN (WAL rule, enforced through
/// BufferPool::CleanUpTo), atomic install, then WAL truncation below the
/// redo horizon. Fails on the `wal.checkpoint` failpoint with the previous
/// checkpoint left fully valid.
Status WriteCheckpoint(Database* db, const std::string& dir);

}  // namespace hd
