#include "catalog/table.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace hd {

Table::Table(std::string name, Schema schema, BufferPool* pool)
    : name_(std::move(name)), schema_(std::move(schema)), pool_(pool) {
  dicts_.resize(schema_.num_columns());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    if (schema_.column(c).type == ValueType::kString) {
      dicts_[c] = std::make_unique<StringDict>();
    }
  }
  heap_ = std::make_unique<HeapFile>(schema_.num_columns(), pool_);
}

Table::~Table() = default;

// ---------------- value packing ----------------

int64_t Table::PackValue(int col, const Value& v) {
  if (v.is_null()) return INT64_MIN;  // NULLs sort first
  switch (schema_.column(col).type) {
    case ValueType::kString:
      return dicts_[col]->GetOrAdd(v.str());
    case ValueType::kDouble:
      return PackDouble(v.AsDouble());
    default:
      return v.AsInt64();
  }
}

int64_t Table::PackBound(int col, const Value& v, int dir, bool* found) const {
  if (found != nullptr) *found = true;
  if (v.is_null()) return INT64_MIN;
  switch (schema_.column(col).type) {
    case ValueType::kString: {
      const StringDict* d = dicts_[col].get();
      int64_t code = d->Lookup(v.str());
      if (code >= 0) return code;
      if (dir == 0) {
        if (found != nullptr) *found = false;
        return 0;
      }
      const int64_t floor_code = d->FloorCode(v.str());
      return dir < 0 ? floor_code : floor_code + 1;
    }
    case ValueType::kDouble:
      return PackDouble(v.AsDouble());
    default:
      return v.AsInt64();
  }
}

Value Table::UnpackValue(int col, int64_t packed) const {
  if (packed == INT64_MIN) return Value::Null();
  switch (schema_.column(col).type) {
    case ValueType::kString:
      return Value::String(dicts_[col]->At(packed));
    case ValueType::kDouble:
      return Value::Double(UnpackDouble(packed));
    case ValueType::kInt32:
    case ValueType::kDate:
      return Value::Int32(static_cast<int32_t>(packed));
    default:
      return Value::Int64(packed);
  }
}

PackedRow Table::PackRow(const Row& r) {
  assert(static_cast<int>(r.size()) == schema_.num_columns());
  PackedRow p(r.size());
  for (size_t c = 0; c < r.size(); ++c) {
    p[c] = PackValue(static_cast<int>(c), r[c]);
  }
  return p;
}

Row Table::UnpackRow(const PackedRow& p) const {
  Row r(p.size());
  for (size_t c = 0; c < p.size(); ++c) {
    r[c] = UnpackValue(static_cast<int>(c), p[c]);
  }
  return r;
}

// ---------------- loading ----------------

void Table::BulkLoad(const std::vector<Row>& rows) {
  // Build string dictionaries sorted for order-preserving codes.
  for (int c = 0; c < schema_.num_columns(); ++c) {
    if (!dicts_[c]) continue;
    std::vector<std::string> vals;
    vals.reserve(rows.size());
    for (const auto& r : rows) {
      if (!r[c].is_null()) vals.push_back(r[c].str());
    }
    dicts_[c]->BuildSorted(std::move(vals));
  }
  std::vector<std::vector<int64_t>> cols(schema_.num_columns());
  for (auto& c : cols) c.reserve(rows.size());
  for (const auto& r : rows) {
    PackedRow p = PackRow(r);
    for (size_t c = 0; c < p.size(); ++c) cols[c].push_back(p[c]);
  }
  BulkLoadPacked(std::move(cols));
}

void Table::BulkLoadPacked(std::vector<std::vector<int64_t>> cols) {
  assert(static_cast<int>(cols.size()) == schema_.num_columns());
  const size_t n = cols.empty() ? 0 : cols[0].size();
  const int ncols = schema_.num_columns();

  switch (primary_kind_) {
    case PrimaryKind::kHeap: {
      heap_ = std::make_unique<HeapFile>(ncols, pool_);
      PackedRow row(ncols);
      for (size_t i = 0; i < n; ++i) {
        for (int c = 0; c < ncols; ++c) row[c] = cols[c][i];
        heap_->Append(row);
      }
      next_rid_ = static_cast<int64_t>(n);
      break;
    }
    case PrimaryKind::kBTree: {
      const int kw = primary_btree_key_width();
      primary_btree_ = std::make_unique<BTree>(kw, ncols, pool_);
      // Sort by key then bulk load; rids follow the original row order.
      std::vector<uint32_t> perm(n);
      for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
      std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
        for (int kc : primary_keys_) {
          if (cols[kc][a] != cols[kc][b]) return cols[kc][a] < cols[kc][b];
        }
        return a < b;
      });
      std::vector<int64_t> flat;
      flat.reserve(n * (kw + ncols));
      for (uint32_t src : perm) {
        for (int kc : primary_keys_) flat.push_back(cols[kc][src]);
        flat.push_back(static_cast<int64_t>(src));  // rid = original order
        for (int c = 0; c < ncols; ++c) flat.push_back(cols[c][src]);
      }
      primary_btree_->BulkLoad(flat);
      next_rid_ = static_cast<int64_t>(n);
      break;
    }
    case PrimaryKind::kColumnStore: {
      primary_csi_ = std::make_unique<ColumnStoreIndex>(
          ColumnStoreIndex::Kind::kPrimary, ncols, pool_);
      std::vector<int64_t> locs(n);
      for (size_t i = 0; i < n; ++i) locs[i] = static_cast<int64_t>(i);
      primary_csi_->BulkLoad(std::move(cols), std::move(locs));
      next_rid_ = static_cast<int64_t>(n);
      break;
    }
  }
  for (auto& si : secondaries_) RebuildSecondary(si.get());
  Analyze();
}

// ---------------- physical design ----------------

Status Table::SetPrimary(PrimaryKind kind, std::vector<int> key_cols) {
  if (kind == PrimaryKind::kBTree && key_cols.empty()) {
    return Status::InvalidArgument("clustered B+ tree needs key columns");
  }
  std::vector<PackedRow> rows;
  std::vector<int64_t> rids;
  CollectAll(&rows, &rids);

  primary_kind_ = kind;
  primary_keys_ = std::move(key_cols);
  heap_.reset();
  primary_btree_.reset();
  primary_csi_.reset();

  const int ncols = schema_.num_columns();
  std::vector<std::vector<int64_t>> cols(ncols);
  for (auto& c : cols) c.reserve(rows.size());
  for (const auto& r : rows) {
    for (int c = 0; c < ncols; ++c) cols[c].push_back(r[c]);
  }
  if (kind == PrimaryKind::kHeap) {
    heap_ = std::make_unique<HeapFile>(ncols, pool_);
  }
  BulkLoadPacked(std::move(cols));
  return Status::OK();
}

std::vector<int> Table::ComputePayloadCols(const IndexDef& def) const {
  std::vector<int> payload = def.included_cols;
  if (primary_kind_ == PrimaryKind::kBTree) {
    for (int pk : primary_keys_) {
      if (std::find(payload.begin(), payload.end(), pk) == payload.end() &&
          std::find(def.key_cols.begin(), def.key_cols.end(), pk) ==
              def.key_cols.end()) {
        payload.push_back(pk);
      }
    }
  }
  return payload;
}

Status Table::CreateSecondaryBTree(const std::string& name,
                                   std::vector<int> key_cols,
                                   std::vector<int> included_cols) {
  if (FindSecondary(name) != nullptr) {
    return Status::InvalidArgument("index exists: " + name);
  }
  auto si = std::make_unique<SecondaryIndex>();
  si->def.name = name;
  si->def.type = IndexDef::Type::kBTree;
  si->def.key_cols = std::move(key_cols);
  si->def.included_cols = std::move(included_cols);
  si->payload_cols = ComputePayloadCols(si->def);
  RebuildSecondary(si.get());
  secondaries_.push_back(std::move(si));
  return Status::OK();
}

Status Table::CreateSecondaryColumnStore(const std::string& name,
                                         int sort_col) {
  if (FindSecondary(name) != nullptr) {
    return Status::InvalidArgument("index exists: " + name);
  }
  if (any_csi() != nullptr) {
    return Status::NotSupported("only one columnstore per table");
  }
  if (sort_col >= schema_.num_columns()) {
    return Status::InvalidArgument("sort column out of range");
  }
  auto si = std::make_unique<SecondaryIndex>();
  si->def.name = name;
  si->def.type = IndexDef::Type::kColumnStore;
  if (sort_col >= 0) si->def.key_cols = {sort_col};
  RebuildSecondary(si.get());
  secondaries_.push_back(std::move(si));
  return Status::OK();
}

Status Table::ApplyIndexDef(const IndexDef& def) {
  if (def.is_primary) {
    if (def.is_btree()) return SetPrimary(PrimaryKind::kBTree, def.key_cols);
    return SetPrimary(PrimaryKind::kColumnStore);
  }
  if (def.is_btree()) {
    return CreateSecondaryBTree(def.name, def.key_cols, def.included_cols);
  }
  return CreateSecondaryColumnStore(
      def.name, def.key_cols.empty() ? -1 : def.key_cols[0]);
}

Status Table::DropIndex(const std::string& name) {
  for (auto it = secondaries_.begin(); it != secondaries_.end(); ++it) {
    if ((*it)->def.name == name) {
      secondaries_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no such index: " + name);
}

void Table::DropAllSecondaries() { secondaries_.clear(); }

SecondaryIndex* Table::FindSecondary(const std::string& name) const {
  for (const auto& si : secondaries_) {
    if (si->def.name == name) return si.get();
  }
  return nullptr;
}

ColumnStoreIndex* Table::any_csi() const {
  if (primary_csi_) return primary_csi_.get();
  for (const auto& si : secondaries_) {
    if (si->csi) return si->csi.get();
  }
  return nullptr;
}

bool Table::has_secondary_csi() const {
  for (const auto& si : secondaries_) {
    if (si->csi) return true;
  }
  return false;
}

void Table::RebuildSecondary(SecondaryIndex* si) {
  si->payload_cols = si->def.is_btree() ? ComputePayloadCols(si->def)
                                        : std::vector<int>{};
  if (si->def.is_btree()) {
    const int kw = static_cast<int>(si->def.key_cols.size()) + 1;
    const int pw = static_cast<int>(si->payload_cols.size());
    si->btree = std::make_unique<BTree>(kw, pw, pool_);
    // Collect (key, rid, payload) tuples, sort, bulk load.
    struct Ent {
      std::vector<int64_t> kp;
    };
    std::vector<std::vector<int64_t>> ents;
    ScanAll(
        [&](int64_t rid, const int64_t* row) {
          std::vector<int64_t> e;
          e.reserve(kw + pw);
          for (int kc : si->def.key_cols) e.push_back(row[kc]);
          e.push_back(rid);
          for (int pc : si->payload_cols) e.push_back(row[pc]);
          ents.push_back(std::move(e));
          return true;
        },
        nullptr);
    std::sort(ents.begin(), ents.end(),
              [kw](const std::vector<int64_t>& a, const std::vector<int64_t>& b) {
                return ComparePacked(a.data(), b.data(), kw) < 0;
              });
    std::vector<int64_t> flat;
    flat.reserve(ents.size() * (kw + pw));
    for (auto& e : ents) flat.insert(flat.end(), e.begin(), e.end());
    si->btree->BulkLoad(flat);
  } else {
    const int ncols = schema_.num_columns();
    CsiOptions copts;
    if (!si->def.key_cols.empty()) copts.sort_col = si->def.key_cols[0];
    si->csi = std::make_unique<ColumnStoreIndex>(
        ColumnStoreIndex::Kind::kSecondary, ncols, pool_, copts);
    std::vector<std::vector<int64_t>> cols(ncols);
    std::vector<int64_t> locs;
    ScanAll(
        [&](int64_t rid, const int64_t* row) {
          for (int c = 0; c < ncols; ++c) cols[c].push_back(row[c]);
          locs.push_back(rid);
          return true;
        },
        nullptr);
    si->csi->BulkLoad(std::move(cols), std::move(locs));
  }
}

// ---------------- DML ----------------

std::vector<int64_t> Table::MakeBTreeKey(const std::vector<int>& key_cols,
                                         const PackedRow& row,
                                         int64_t rid) const {
  std::vector<int64_t> k;
  k.reserve(key_cols.size() + 1);
  for (int kc : key_cols) k.push_back(row[kc]);
  k.push_back(rid);
  return k;
}

Status Table::InsertIntoSecondaries(const PackedRow& row, int64_t rid,
                                    QueryMetrics* m) {
  for (auto& si : secondaries_) {
    if (si->btree) {
      std::vector<int64_t> key = MakeBTreeKey(si->def.key_cols, row, rid);
      std::vector<int64_t> payload;
      payload.reserve(si->payload_cols.size());
      for (int pc : si->payload_cols) payload.push_back(row[pc]);
      HD_RETURN_IF_ERROR(si->btree->Insert(key, payload, m));
    } else {
      HD_RETURN_IF_ERROR(si->csi->Insert(row, rid, m));
    }
  }
  return Status::OK();
}

// ---------------- WAL integration ----------------

WalRow Table::ToWalRow(const PackedRow& row) const {
  WalRow out;
  out.reserve(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    if (row[c] == INT64_MIN) {
      out.push_back(WalValue::Null());
    } else if (dicts_[c]) {
      out.push_back(WalValue::Str(dicts_[c]->At(row[c])));
    } else {
      out.push_back(WalValue::Packed(row[c]));
    }
  }
  return out;
}

PackedRow Table::FromWalRow(const WalRow& row) {
  PackedRow out(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    switch (row[c].tag) {
      case WalValue::Tag::kNull:
        out[c] = INT64_MIN;
        break;
      case WalValue::Tag::kString:
        out[c] = dicts_[c]->GetOrAdd(row[c].str);
        break;
      case WalValue::Tag::kPacked:
        out[c] = row[c].packed;
        break;
    }
  }
  return out;
}

Status Table::LogDml(WalRecordType type, uint64_t txn, int64_t rid,
                     const PackedRow* old_row, const PackedRow* new_row,
                     uint64_t* lsn_out) {
  WalRecord rec;
  rec.type = type;
  rec.txn = txn;
  rec.table_id = table_id_;
  rec.rid = rid;
  if (old_row != nullptr) rec.old_row = ToWalRow(*old_row);
  if (new_row != nullptr) rec.new_row = ToWalRow(*new_row);
  return wal_->Append(&rec, lsn_out);
}

void Table::StampLsn(int64_t rid, uint64_t lsn) {
  if (lsn == 0) return;
  switch (primary_kind_) {
    case PrimaryKind::kHeap:
      heap_->StampPageLsn(static_cast<uint64_t>(rid), lsn);
      break;
    case PrimaryKind::kBTree:
      primary_btree_->set_recovery_lsn(lsn);
      break;
    case PrimaryKind::kColumnStore:
      primary_csi_->set_recovery_lsn(lsn);
      break;
  }
  for (auto& si : secondaries_) {
    if (si->btree) {
      si->btree->set_recovery_lsn(lsn);
    } else {
      si->csi->set_recovery_lsn(lsn);
    }
  }
  if (lsn > applied_lsn_) applied_lsn_ = lsn;
}

Status Table::ReorganizeColumnstores() {
  std::unique_lock<FairSharedMutex> latch(phys_latch_);
  auto run = [&](ColumnStoreIndex* csi, const std::string& name) -> Status {
    if (csi == nullptr) return Status::OK();
    // Log the logical "reorg applied" mark BEFORE the tuple mover runs:
    // replay then reproduces the post-reorg layout; a crash before the
    // record is durable replays to the pre-reorg image. Either way the
    // logical contents are identical — never a torn mix. txn 0 =
    // self-committed (redo applies it unconditionally).
    uint64_t lsn = 0;
    if (wal_ != nullptr) {
      WalRecord rec;
      rec.type = WalRecordType::kCsiReorg;
      rec.txn = 0;
      rec.table_id = table_id_;
      rec.aux = name;
      HD_RETURN_IF_ERROR(wal_->Append(&rec, &lsn));
    }
    HD_RETURN_IF_ERROR(csi->Reorganize());
    if (lsn != 0) {
      csi->set_recovery_lsn(lsn);
      if (lsn > applied_lsn_) applied_lsn_ = lsn;
    }
    return Status::OK();
  };
  HD_RETURN_IF_ERROR(run(primary_csi_.get(), ""));
  for (auto& si : secondaries_) {
    if (si->csi) HD_RETURN_IF_ERROR(run(si->csi.get(), si->def.name));
  }
  return Status::OK();
}

Status Table::InsertPacked(const PackedRow& row, QueryMetrics* m,
                           int64_t* rid_out, uint64_t wal_txn) {
  const bool self_commit = wal_ != nullptr && wal_txn == 0;
  if (self_commit) wal_txn = wal_->AllocTxnId();
  // Log before allocating the rid for real: a failed append (wal.append
  // failpoint) must leave no rid gap for a row that never existed.
  const int64_t rid = next_rid_;
  uint64_t lsn = 0;
  if (wal_ != nullptr) {
    Status ls = LogDml(WalRecordType::kInsert, wal_txn, rid, nullptr, &row,
                       &lsn);
    if (!ls.ok()) {
      if (self_commit) (void)wal_->Abort(wal_txn);
      return ls;
    }
  }
  next_rid_ = rid + 1;
  bool in_primary = false;
  Status apply;
  switch (primary_kind_) {
    case PrimaryKind::kHeap: {
      uint64_t hrid = heap_->Append(row);
      assert(static_cast<int64_t>(hrid) == rid);
      (void)hrid;
      in_primary = true;
      break;
    }
    case PrimaryKind::kBTree: {
      std::vector<int64_t> key = MakeBTreeKey(primary_keys_, row, rid);
      apply = primary_btree_->Insert(key, row, m);
      in_primary = apply.ok();
      break;
    }
    case PrimaryKind::kColumnStore:
      apply = primary_csi_->Insert(row, rid, m);
      in_primary = apply.ok();
      break;
  }
  if (apply.ok()) apply = InsertIntoSecondaries(row, rid, m);
  if (!apply.ok()) {
    if (in_primary) {
      // Compensate so the statement is all-or-nothing: remove the primary
      // copy (best-effort — a second injected failure here leaves an
      // orphan primary row, which only over-counts, never corrupts).
      // next_rid_ is NOT rolled back: heap RowIds must stay dense with the
      // heap's physical slots, and gaps are harmless for the other
      // primaries. The compensation delete is logged under the SAME wal
      // txn, so replay reproduces the absence whether the txn commits or
      // not.
      RowRef ref;
      ref.rid = rid;
      ref.row = row;
      (void)DeleteRows({ref}, nullptr, wal_txn);
    }
    if (self_commit) (void)wal_->Abort(wal_txn);
    return apply;
  }
  StampLsn(rid, lsn);
  if (rid_out != nullptr) *rid_out = rid;
  if (self_commit) {
    HD_RETURN_IF_ERROR(wal_->Commit(wal_txn));
  }
  return Status::OK();
}

Status Table::DeleteRows(const std::vector<RowRef>& rows, QueryMetrics* m,
                         uint64_t wal_txn) {
  if (rows.empty()) return Status::OK();
  const bool self_commit = wal_ != nullptr && wal_txn == 0;
  if (self_commit) wal_txn = wal_->AllocTxnId();
  // WAL rule: log the whole batch before touching any structure, so a
  // failed append fails the statement with nothing applied.
  uint64_t last_lsn = 0;
  if (wal_ != nullptr) {
    for (const auto& r : rows) {
      Status ls = LogDml(WalRecordType::kDelete, wal_txn, r.rid, &r.row,
                         nullptr, &last_lsn);
      if (!ls.ok()) {
        if (self_commit) (void)wal_->Abort(wal_txn);
        return ls;
      }
    }
  }
  std::vector<int64_t> rids;
  rids.reserve(rows.size());
  for (const auto& r : rows) rids.push_back(r.rid);

  Status apply = [&]() -> Status {
    switch (primary_kind_) {
      case PrimaryKind::kHeap:
        for (const auto& r : rows) {
          HD_RETURN_IF_ERROR(heap_->Delete(r.rid, m));
        }
        break;
      case PrimaryKind::kBTree:
        for (const auto& r : rows) {
          std::vector<int64_t> key = MakeBTreeKey(primary_keys_, r.row, r.rid);
          HD_RETURN_IF_ERROR(primary_btree_->Delete(key, m));
        }
        break;
      case PrimaryKind::kColumnStore:
        HD_RETURN_IF_ERROR(primary_csi_->DeleteBatch(rids, m));
        break;
    }
    for (auto& si : secondaries_) {
      if (si->btree) {
        for (const auto& r : rows) {
          std::vector<int64_t> key =
              MakeBTreeKey(si->def.key_cols, r.row, r.rid);
          HD_RETURN_IF_ERROR(si->btree->Delete(key, m));
        }
      } else {
        HD_RETURN_IF_ERROR(si->csi->DeleteBatch(rids, m));
      }
    }
    return Status::OK();
  }();
  // Conservative: stamp even on a partial failure — some structures did
  // change, and over-marking dirtiness is always safe.
  if (last_lsn != 0) {
    for (const auto& r : rows) StampLsn(r.rid, last_lsn);
  }
  if (!apply.ok()) {
    if (self_commit) (void)wal_->Abort(wal_txn);
    return apply;
  }
  if (self_commit) {
    HD_RETURN_IF_ERROR(wal_->Commit(wal_txn));
  }
  return Status::OK();
}

Status Table::UpdateRows(const std::vector<RowRef>& rows,
                         const std::vector<PackedRow>& news, QueryMetrics* m,
                         uint64_t wal_txn) {
  assert(rows.size() == news.size());
  if (rows.empty()) return Status::OK();
  const bool self_commit = wal_ != nullptr && wal_txn == 0;
  if (self_commit) wal_txn = wal_->AllocTxnId();
  uint64_t last_lsn = 0;
  if (wal_ != nullptr) {
    for (size_t i = 0; i < rows.size(); ++i) {
      Status ls = LogDml(WalRecordType::kUpdate, wal_txn, rows[i].rid,
                         &rows[i].row, &news[i], &last_lsn);
      if (!ls.ok()) {
        if (self_commit) (void)wal_->Abort(wal_txn);
        return ls;
      }
    }
  }

  auto keys_changed = [&](const std::vector<int>& key_cols, size_t i) {
    for (int kc : key_cols) {
      if (rows[i].row[kc] != news[i][kc]) return true;
    }
    return false;
  };

  Status apply = [&]() -> Status {
  switch (primary_kind_) {
    case PrimaryKind::kHeap:
      for (size_t i = 0; i < rows.size(); ++i) {
        HD_RETURN_IF_ERROR(heap_->Update(rows[i].rid, news[i], m));
      }
      break;
    case PrimaryKind::kBTree:
      for (size_t i = 0; i < rows.size(); ++i) {
        std::vector<int64_t> old_key =
            MakeBTreeKey(primary_keys_, rows[i].row, rows[i].rid);
        if (!keys_changed(primary_keys_, i)) {
          HD_RETURN_IF_ERROR(primary_btree_->UpdatePayload(old_key, news[i], m));
        } else {
          HD_RETURN_IF_ERROR(primary_btree_->Delete(old_key, m));
          std::vector<int64_t> new_key =
              MakeBTreeKey(primary_keys_, news[i], rows[i].rid);
          HD_RETURN_IF_ERROR(primary_btree_->Insert(new_key, news[i], m));
        }
      }
      break;
    case PrimaryKind::kColumnStore: {
      // Paper, Section 2: a point update on a columnstore is a delete
      // followed by an insert.
      std::vector<int64_t> rids;
      for (const auto& r : rows) rids.push_back(r.rid);
      HD_RETURN_IF_ERROR(primary_csi_->DeleteBatch(rids, m));
      for (size_t i = 0; i < rows.size(); ++i) {
        HD_RETURN_IF_ERROR(primary_csi_->Insert(news[i], rows[i].rid, m));
      }
      break;
    }
  }

  for (auto& si : secondaries_) {
    if (si->btree) {
      for (size_t i = 0; i < rows.size(); ++i) {
        std::vector<int64_t> old_key =
            MakeBTreeKey(si->def.key_cols, rows[i].row, rows[i].rid);
        std::vector<int64_t> payload;
        payload.reserve(si->payload_cols.size());
        for (int pc : si->payload_cols) payload.push_back(news[i][pc]);
        if (!keys_changed(si->def.key_cols, i)) {
          HD_RETURN_IF_ERROR(si->btree->UpdatePayload(old_key, payload, m));
        } else {
          HD_RETURN_IF_ERROR(si->btree->Delete(old_key, m));
          std::vector<int64_t> new_key =
              MakeBTreeKey(si->def.key_cols, news[i], rows[i].rid);
          HD_RETURN_IF_ERROR(si->btree->Insert(new_key, payload, m));
        }
      }
    } else {
      std::vector<int64_t> rids;
      for (const auto& r : rows) rids.push_back(r.rid);
      HD_RETURN_IF_ERROR(si->csi->DeleteBatch(rids, m));
      for (size_t i = 0; i < rows.size(); ++i) {
        HD_RETURN_IF_ERROR(si->csi->Insert(news[i], rows[i].rid, m));
      }
    }
  }
  return Status::OK();
  }();
  if (last_lsn != 0) {
    for (const auto& r : rows) StampLsn(r.rid, last_lsn);
  }
  if (!apply.ok()) {
    if (self_commit) (void)wal_->Abort(wal_txn);
    return apply;
  }
  if (self_commit) {
    HD_RETURN_IF_ERROR(wal_->Commit(wal_txn));
  }
  return Status::OK();
}

Status Table::FetchRow(int64_t rid, std::span<const int64_t> pk_hint,
                       PackedRow* out, QueryMetrics* m) const {
  const int ncols = schema_.num_columns();
  out->resize(ncols);
  switch (primary_kind_) {
    case PrimaryKind::kHeap:
      return heap_->Fetch(rid, out->data(), m);
    case PrimaryKind::kBTree: {
      if (static_cast<int>(pk_hint.size()) !=
          static_cast<int>(primary_keys_.size())) {
        return Status::InvalidArgument("pk hint width mismatch");
      }
      std::vector<int64_t> key(pk_hint.begin(), pk_hint.end());
      key.push_back(rid);
      return primary_btree_->SeekEqual(key, out->data(), m);
    }
    case PrimaryKind::kColumnStore: {
      // Pruned scan of locator segments, then decode the matching row.
      for (int g = 0; g < primary_csi_->num_row_groups(); ++g) {
        const RowGroup& rg = primary_csi_->row_group(g);
        const ColumnSegment& ls = rg.locator_segment();
        if (ls.CanSkip(rid, rid)) {
          if (m != nullptr) m->segments_skipped += 1;
          continue;
        }
        HD_RETURN_IF_ERROR(ls.Touch(pool_, m));
        const size_t n = rg.num_rows();
        std::vector<int64_t> buf(std::min<size_t>(n, kBatchSize));
        for (size_t start = 0; start < n; start += buf.size()) {
          const size_t take = std::min(buf.size(), n - start);
          ls.Decode(start, take, buf.data());
          for (size_t i = 0; i < take; ++i) {
            if (buf[i] == rid) {
              if (rg.IsDeleted(start + i)) return Status::NotFound("deleted");
              for (int c = 0; c < ncols; ++c) {
                HD_RETURN_IF_ERROR(rg.segment(c).Touch(pool_, m));
                rg.segment(c).Decode(start + i, 1, &(*out)[c]);
              }
              return Status::OK();
            }
          }
        }
      }
      // Fall back to the delta store.
      Status result = Status::NotFound("rid not found");
      Status scan = primary_csi_->ScanDelta(
          [&] {
            std::vector<int> all(ncols);
            for (int c = 0; c < ncols; ++c) all[c] = c;
            return all;
          }(),
          {},
          [&](const ColumnBatch& b) {
            for (int i = 0; i < b.count; ++i) {
              if (b.locators[i] == rid) {
                for (int c = 0; c < ncols; ++c) (*out)[c] = b.cols[c][i];
                result = Status::OK();
                return false;
              }
            }
            return true;
          },
          m);
      if (!scan.ok()) return scan;
      return result;
    }
  }
  return Status::Internal("unreachable");
}

// ---------------- whole-table access ----------------

void Table::ScanAll(const std::function<bool(int64_t, const int64_t*)>& fn,
                    QueryMetrics* m) const {
  // ScanAll feeds maintenance paths (stats sampling, index rebuild) that
  // have no failure channel; injected I/O faults are ignored here — they
  // target query/DML boundaries, not offline rebuilds.
  switch (primary_kind_) {
    case PrimaryKind::kHeap:
      (void)heap_->Scan([&](uint64_t rid, const int64_t* row) {
        return fn(static_cast<int64_t>(rid), row);
      }, m);
      break;
    case PrimaryKind::kBTree: {
      const int kw = primary_btree_key_width();
      (void)primary_btree_->Scan(Bound::Unbounded(), Bound::Unbounded(),
                                 [&](const int64_t* key, const int64_t* payload) {
                                   return fn(key[kw - 1], payload);
                                 },
                                 m);
      break;
    }
    case PrimaryKind::kColumnStore: {
      const int ncols = schema_.num_columns();
      std::vector<int> all(ncols);
      for (int c = 0; c < ncols; ++c) all[c] = c;
      PackedRow row(ncols);
      bool stop = false;
      auto emit = [&](const ColumnBatch& b) {
        for (int i = 0; i < b.count && !stop; ++i) {
          for (int c = 0; c < ncols; ++c) row[c] = b.cols[c][i];
          if (!fn(b.locators[i], row.data())) stop = true;
        }
        return !stop;
      };
      (void)primary_csi_->ScanGroups(0, primary_csi_->num_row_groups(), all,
                                     {}, emit, m);
      if (!stop) (void)primary_csi_->ScanDelta(all, {}, emit, m);
      break;
    }
  }
}

void Table::CollectAll(std::vector<PackedRow>* rows,
                       std::vector<int64_t>* rids) const {
  const int ncols = schema_.num_columns();
  ScanAll(
      [&](int64_t rid, const int64_t* row) {
        rows->emplace_back(row, row + ncols);
        rids->push_back(rid);
        return true;
      },
      nullptr);
}

void Table::SampleBlocks(double ratio, uint64_t seed, int block_rows,
                         std::vector<std::vector<int64_t>>* cols) const {
  const int ncols = schema_.num_columns();
  cols->assign(ncols, {});
  if (ratio <= 0) return;
  Rng rng(seed);
  bool take = rng.Flip(ratio);
  int in_block = 0;
  ScanAll(
      [&](int64_t, const int64_t* row) {
        if (take) {
          for (int c = 0; c < ncols; ++c) (*cols)[c].push_back(row[c]);
        }
        if (++in_block >= block_rows) {
          in_block = 0;
          take = rng.Flip(ratio);
        }
        return true;
      },
      nullptr);
}

// ---------------- stats ----------------

void Table::Analyze() {
  const uint64_t n = num_rows();
  stats_.row_count = n;
  stats_.columns.assign(schema_.num_columns(), {});
  if (n == 0) return;
  // Sample about 1M rows via blocks; small tables use everything.
  constexpr uint64_t kTarget = 1u << 20;
  const double ratio = n <= kTarget ? 1.0 : static_cast<double>(kTarget) / n;
  std::vector<std::vector<int64_t>> cols;
  SampleBlocks(ratio, /*seed=*/7, /*block_rows=*/1024, &cols);
  for (int c = 0; c < schema_.num_columns(); ++c) {
    stats_.columns[c].Build(std::move(cols[c]), n);
  }
}

uint64_t Table::num_rows() const {
  switch (primary_kind_) {
    case PrimaryKind::kHeap: return heap_->live_rows();
    case PrimaryKind::kBTree: return primary_btree_->num_entries();
    case PrimaryKind::kColumnStore: return primary_csi_->num_rows();
  }
  return 0;
}

// ---------------- recovery appliers (catalog/recovery.cc) ----------------

void Table::RecoverRestoreDict(int col, std::vector<std::string> strings,
                               bool sorted) {
  if (dicts_[col]) dicts_[col]->Restore(std::move(strings), sorted);
}

void Table::RecoverLoad(std::vector<std::vector<int64_t>> cols,
                        std::vector<int64_t> rids, int64_t next_rid) {
  const size_t n = rids.size();
  const int ncols = schema_.num_columns();
  switch (primary_kind_) {
    case PrimaryKind::kHeap: {
      heap_ = std::make_unique<HeapFile>(ncols, pool_);
      // Heap rids are physical positions: install in rid order, padding
      // gaps (rows deleted before the checkpoint) with tombstones.
      std::vector<size_t> order(n);
      for (size_t i = 0; i < n; ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](size_t a, size_t b) { return rids[a] < rids[b]; });
      PackedRow row(ncols);
      for (size_t idx : order) {
        while (static_cast<int64_t>(heap_->num_rows()) < rids[idx]) {
          heap_->AppendTombstone();
        }
        for (int c = 0; c < ncols; ++c) row[c] = cols[c][idx];
        heap_->Append(row);
      }
      break;
    }
    case PrimaryKind::kBTree: {
      const int kw = primary_btree_key_width();
      primary_btree_ = std::make_unique<BTree>(kw, ncols, pool_);
      std::vector<size_t> perm(n);
      for (size_t i = 0; i < n; ++i) perm[i] = i;
      std::sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
        for (int kc : primary_keys_) {
          if (cols[kc][a] != cols[kc][b]) return cols[kc][a] < cols[kc][b];
        }
        return rids[a] < rids[b];
      });
      std::vector<int64_t> flat;
      flat.reserve(n * (kw + ncols));
      for (size_t src : perm) {
        for (int kc : primary_keys_) flat.push_back(cols[kc][src]);
        flat.push_back(rids[src]);  // stored rid, NOT position
        for (int c = 0; c < ncols; ++c) flat.push_back(cols[c][src]);
      }
      primary_btree_->BulkLoad(flat);
      break;
    }
    case PrimaryKind::kColumnStore: {
      primary_csi_ = std::make_unique<ColumnStoreIndex>(
          ColumnStoreIndex::Kind::kPrimary, ncols, pool_);
      primary_csi_->BulkLoad(std::move(cols), std::move(rids));
      break;
    }
  }
  next_rid_ = next_rid;
  for (auto& si : secondaries_) RebuildSecondary(si.get());
  Analyze();
}

Status Table::RecoverInsert(int64_t rid, const PackedRow& row) {
  switch (primary_kind_) {
    case PrimaryKind::kHeap: {
      while (static_cast<int64_t>(heap_->num_rows()) < rid) {
        heap_->AppendTombstone();
      }
      if (static_cast<int64_t>(heap_->num_rows()) > rid) {
        // The slot already exists — legal only as undo of a loser DELETE,
        // where the checkpoint left a tombstone at this rid.
        HD_RETURN_IF_ERROR(heap_->Resurrect(rid, row));
      } else {
        heap_->Append(row);
      }
      break;
    }
    case PrimaryKind::kBTree: {
      std::vector<int64_t> key = MakeBTreeKey(primary_keys_, row, rid);
      HD_RETURN_IF_ERROR(primary_btree_->Insert(key, row, nullptr));
      break;
    }
    case PrimaryKind::kColumnStore:
      HD_RETURN_IF_ERROR(primary_csi_->Insert(row, rid, nullptr));
      break;
  }
  HD_RETURN_IF_ERROR(InsertIntoSecondaries(row, rid, nullptr));
  next_rid_ = std::max(next_rid_, rid + 1);
  return Status::OK();
}

Status Table::RecoverUpdate(int64_t rid, const PackedRow& old_row,
                            const PackedRow& new_row) {
  RowRef ref;
  ref.rid = rid;
  ref.row = old_row;
  return UpdateRows({ref}, {new_row}, nullptr);
}

Status Table::RecoverDelete(int64_t rid, const PackedRow& old_row) {
  RowRef ref;
  ref.rid = rid;
  ref.row = old_row;
  return DeleteRows({ref}, nullptr);
}

uint64_t Table::primary_size_bytes() const {
  switch (primary_kind_) {
    case PrimaryKind::kHeap: return heap_->size_bytes();
    case PrimaryKind::kBTree: return primary_btree_->size_bytes();
    case PrimaryKind::kColumnStore: return primary_csi_->size_bytes();
  }
  return 0;
}

}  // namespace hd
