// Column and table statistics for cardinality estimation.
//
// Equi-depth histograms over packed values plus GEE-style distinct count
// estimation (Chaudhuri, Motwani, Narasayya '98 — the same estimator the
// paper's size-estimation work builds on).
#pragma once

#include <cstdint>
#include <vector>

#include "common/packed.h"

namespace hd {

/// Statistics for one column, built from a (possibly sampled) value set.
class ColumnStats {
 public:
  /// Build from sample `values` drawn from a column with `total_rows` rows.
  /// `values` is consumed (sorted in place).
  void Build(std::vector<int64_t> values, uint64_t total_rows,
             int num_buckets = 100);

  int64_t min_value() const { return min_; }
  int64_t max_value() const { return max_; }
  uint64_t distinct_count() const { return ndv_; }
  uint64_t row_count() const { return total_rows_; }

  /// Fraction of rows with value in [lo, hi] (inclusive, packed space).
  double SelectivityRange(int64_t lo, int64_t hi) const;

  /// Fraction of rows with value == v.
  double SelectivityEq(int64_t v) const;

  bool empty() const { return total_rows_ == 0; }

 private:
  int64_t min_ = 0;
  int64_t max_ = 0;
  uint64_t ndv_ = 0;
  uint64_t total_rows_ = 0;
  uint64_t sample_rows_ = 0;
  /// bounds_[i]..bounds_[i+1] delimit bucket i (value space, inclusive of
  /// the upper bound for the last bucket).
  std::vector<int64_t> bounds_;
  std::vector<uint64_t> bucket_ndv_;
  double rows_per_bucket_ = 0;  // in sample space, scaled on use
};

/// GEE distinct-value estimator: d_hat = d_more + sqrt(n/ns) * f1, where f1
/// is the number of sample values occurring exactly once. `sorted_sample`
/// must be sorted.
uint64_t GeeEstimateDistinct(const std::vector<int64_t>& sorted_sample,
                             uint64_t total_rows);

/// Statistics for a whole table.
struct TableStats {
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;

  bool valid() const { return row_count > 0 && !columns.empty(); }
};

}  // namespace hd
