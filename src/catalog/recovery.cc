#include "catalog/recovery.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "catalog/database.h"
#include "catalog/table.h"
#include "common/failpoint.h"
#include "common/telemetry.h"

namespace hd {
namespace {

// Checkpoint file: "HDCKPT01" magic, then the little-endian body described
// in WriteCheckpoint below, then a u32 CRC32 over everything after the
// magic. Installed atomically via tmp + fsync + rename; the CURRENT file
// names the live checkpoint so a crash mid-install never orphans readers.
constexpr char kCkptMagic[8] = {'H', 'D', 'C', 'K', 'P', 'T', '0', '1'};

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Bounds-checked reader over the checkpoint body.
struct Cursor {
  const uint8_t* p;
  size_t n;
  bool ok = true;

  bool Need(size_t k) {
    if (n < k) ok = false;
    return ok;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    uint8_t v = *p;
    ++p;
    --n;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
    p += 4;
    n -= 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
    p += 8;
    n -= 8;
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  std::string Str() {
    uint32_t len = U32();
    if (!Need(len)) return "";
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    n -= len;
    return s;
  }
};

Status ReadFileAll(const std::string& path, std::vector<uint8_t>* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path);
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  out->clear();
  uint8_t buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      Status s = Status::IoError("read " + path + ": " + std::strerror(errno));
      ::close(fd);
      return s;
    }
    if (r == 0) break;
    out->insert(out->end(), buf, buf + r);
  }
  ::close(fd);
  return Status::OK();
}

Status WriteFileDurable(const std::string& path, const uint8_t* data,
                        size_t n) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      Status s = Status::IoError("write " + path + ": " + std::strerror(errno));
      ::close(fd);
      return s;
    }
    off += w;
  }
  if (::fsync(fd) != 0) {
    Status s = Status::IoError("fsync " + path + ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("open dir " + dir + ": " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    Status s = Status::IoError("fsync dir " + dir + ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::OK();
}

/// Durably replace `path`'s contents (tmp + rename + dir fsync).
Status ReplaceFileDurable(const std::string& dir, const std::string& path,
                          const uint8_t* data, size_t n) {
  const std::string tmp = path + ".tmp";
  HD_RETURN_IF_ERROR(WriteFileDurable(tmp, data, n));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + ": " + std::strerror(errno));
  }
  return FsyncDir(dir);
}

/// Per-table snapshot taken under the shared physical latch.
struct TableSnapshot {
  uint32_t table_id = 0;
  std::string name;
  Schema schema;
  // code->string image per column (empty + !has_dict for non-strings)
  std::vector<bool> has_dict;
  std::vector<std::vector<std::string>> dict_strings;
  std::vector<bool> dict_sorted;
  PrimaryKind primary_kind = PrimaryKind::kHeap;
  std::vector<int> primary_keys;
  std::vector<IndexDef> secondaries;
  int64_t next_rid = 0;
  uint64_t applied_lsn = 0;
  std::vector<int64_t> rids;
  std::vector<std::vector<int64_t>> cols;  // column-major live rows
};

void SerializeIndexDef(std::vector<uint8_t>* out, const IndexDef& def) {
  PutString(out, def.name);
  PutU8(out, def.type == IndexDef::Type::kColumnStore ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(def.key_cols.size()));
  for (int c : def.key_cols) PutU32(out, static_cast<uint32_t>(c));
  PutU32(out, static_cast<uint32_t>(def.included_cols.size()));
  for (int c : def.included_cols) PutU32(out, static_cast<uint32_t>(c));
}

IndexDef DeserializeIndexDef(Cursor* c) {
  IndexDef def;
  def.name = c->Str();
  def.type = c->U8() == 1 ? IndexDef::Type::kColumnStore : IndexDef::Type::kBTree;
  uint32_t nk = c->U32();
  for (uint32_t i = 0; i < nk && c->ok; ++i) {
    def.key_cols.push_back(static_cast<int>(c->U32()));
  }
  uint32_t ni = c->U32();
  for (uint32_t i = 0; i < ni && c->ok; ++i) {
    def.included_cols.push_back(static_cast<int>(c->U32()));
  }
  return def;
}

void SerializeTable(std::vector<uint8_t>* out, const TableSnapshot& t) {
  PutU32(out, t.table_id);
  PutString(out, t.name);
  const int ncols = t.schema.num_columns();
  PutU32(out, static_cast<uint32_t>(ncols));
  for (int c = 0; c < ncols; ++c) {
    const Column& col = t.schema.column(c);
    PutString(out, col.name);
    PutU8(out, static_cast<uint8_t>(col.type));
    PutU32(out, static_cast<uint32_t>(col.avg_width));
  }
  for (int c = 0; c < ncols; ++c) {
    PutU8(out, t.has_dict[c] ? 1 : 0);
    if (!t.has_dict[c]) continue;
    PutU32(out, static_cast<uint32_t>(t.dict_strings[c].size()));
    for (const auto& s : t.dict_strings[c]) PutString(out, s);
    PutU8(out, t.dict_sorted[c] ? 1 : 0);
  }
  PutU8(out, static_cast<uint8_t>(t.primary_kind));
  PutU32(out, static_cast<uint32_t>(t.primary_keys.size()));
  for (int k : t.primary_keys) PutU32(out, static_cast<uint32_t>(k));
  PutU32(out, static_cast<uint32_t>(t.secondaries.size()));
  for (const auto& def : t.secondaries) SerializeIndexDef(out, def);
  PutI64(out, t.next_rid);
  PutU64(out, t.applied_lsn);
  const uint64_t nrows = t.rids.size();
  PutU64(out, nrows);
  for (uint64_t r = 0; r < nrows; ++r) {
    PutI64(out, t.rids[r]);
    for (int c = 0; c < ncols; ++c) PutI64(out, t.cols[c][r]);
  }
}

std::string CkptPath(const std::string& dir, uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "checkpoint-%010llu.hd",
                static_cast<unsigned long long>(seq));
  return dir + "/" + buf;
}

std::string CurrentPath(const std::string& dir) { return dir + "/CURRENT"; }

}  // namespace

Status WriteCheckpoint(Database* db, const std::string& dir) {
  HD_FAILPOINT_RETURN("wal.checkpoint");
  WalManager* wal = db->wal();
  if (wal == nullptr || !wal->open()) {
    return Status::InvalidArgument("checkpoint requires an open WAL");
  }

  // Fuzzy snapshot: each table is consistent at its own applied LSN; redo
  // replays anything logged after a table's snapshot point.
  std::vector<TableSnapshot> snaps;
  uint64_t max_applied = 0;
  for (const auto& [name, table] : db->tables()) {
    Table* t = table.get();
    std::shared_lock<FairSharedMutex> lk(t->phys_latch());
    TableSnapshot s;
    s.table_id = t->table_id();
    s.name = t->name();
    s.schema = t->schema();
    const int ncols = s.schema.num_columns();
    s.has_dict.resize(ncols, false);
    s.dict_strings.resize(ncols);
    s.dict_sorted.resize(ncols, true);
    for (int c = 0; c < ncols; ++c) {
      const StringDict* d = t->dict(c);
      if (d == nullptr) continue;
      s.has_dict[c] = true;
      s.dict_sorted[c] = d->sorted();
      s.dict_strings[c].reserve(d->size());
      for (size_t i = 0; i < d->size(); ++i) {
        s.dict_strings[c].push_back(d->At(static_cast<int64_t>(i)));
      }
    }
    s.primary_kind = t->primary_kind();
    s.primary_keys = t->primary_key_cols();
    for (const auto& si : t->secondaries()) s.secondaries.push_back(si->def);
    s.next_rid = t->next_rid();
    s.applied_lsn = t->applied_lsn();
    s.cols.resize(ncols);
    t->ScanAll(
        [&](int64_t rid, const int64_t* vals) {
          s.rids.push_back(rid);
          for (int c = 0; c < ncols; ++c) s.cols[c].push_back(vals[c]);
          return true;
        },
        nullptr);
    max_applied = std::max(max_applied, s.applied_lsn);
    snaps.push_back(std::move(s));
  }

  // Capture allocation points after the snapshots so they cover every LSN
  // the snapshots reflect.
  const uint64_t next_lsn = wal->next_lsn();
  const uint64_t next_txn = wal->AllocTxnId();
  uint64_t redo_start = next_lsn;
  for (const auto& s : snaps) {
    redo_start = std::min(redo_start, s.applied_lsn + 1);
  }
  const uint64_t oldest_active = wal->OldestActiveTxnLsn();
  if (oldest_active != 0) redo_start = std::min(redo_start, oldest_active);

  // WAL rule: nothing snapshotted may be persisted before the log covering
  // it is durable. Dirty extents past the snapshot horizon belong to
  // concurrent DML this checkpoint did not capture — they stay dirty.
  HD_RETURN_IF_ERROR(wal->EnsureDurable(max_applied));
  HD_RETURN_IF_ERROR(
      db->buffer_pool()->CleanUpTo(max_applied, wal->durable_lsn()));

  std::vector<uint8_t> body;
  PutU64(&body, next_lsn);
  PutU64(&body, next_txn);
  PutU64(&body, redo_start);
  PutU32(&body, db->next_table_id());
  PutU32(&body, static_cast<uint32_t>(snaps.size()));
  for (const auto& s : snaps) SerializeTable(&body, s);

  std::vector<uint8_t> file;
  file.insert(file.end(), kCkptMagic, kCkptMagic + sizeof(kCkptMagic));
  file.insert(file.end(), body.begin(), body.end());
  PutU32(&file, WalCrc32(body.data(), body.size()));

  // Next sequence number: one past whatever CURRENT names.
  uint64_t seq = 1;
  std::string prev_ckpt;
  {
    std::vector<uint8_t> cur;
    if (ReadFileAll(CurrentPath(dir), &cur).ok()) {
      std::string name(cur.begin(), cur.end());
      while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
        name.pop_back();
      }
      unsigned long long prev = 0;
      if (std::sscanf(name.c_str(), "checkpoint-%llu.hd", &prev) == 1) {
        seq = prev + 1;
        prev_ckpt = dir + "/" + name;
      }
    }
  }

  const std::string ckpt = CkptPath(dir, seq);
  HD_RETURN_IF_ERROR(ReplaceFileDurable(dir, ckpt, file.data(), file.size()));
  const std::string current = ckpt.substr(dir.size() + 1) + "\n";
  HD_RETURN_IF_ERROR(ReplaceFileDurable(
      dir, CurrentPath(dir), reinterpret_cast<const uint8_t*>(current.data()),
      current.size()));
  // The previous checkpoint is unreachable once CURRENT points past it.
  if (!prev_ckpt.empty() && prev_ckpt != ckpt) ::unlink(prev_ckpt.c_str());

  HD_RETURN_IF_ERROR(wal->TruncateBelow(redo_start));
  Telemetry::Instance().Counter("wal.checkpoints")->Add(1);
  return Status::OK();
}

namespace {

/// Load the checkpoint named by CURRENT into `db`. NotFound = no
/// checkpoint (fresh directory) — not an error for recovery. On success
/// `*redo_start_out` is the checkpoint's stored redo horizon: every log
/// record below it was resolved when the checkpoint was taken (truncation
/// is segment-granular, so such records can still be present in the log).
Status LoadCheckpoint(Database* db, const std::string& dir,
                      RecoveryStats* stats, uint64_t* redo_start_out) {
  std::vector<uint8_t> cur;
  Status s = ReadFileAll(CurrentPath(dir), &cur);
  if (s.IsNotFound()) return s;
  HD_RETURN_IF_ERROR(s);
  std::string name(cur.begin(), cur.end());
  while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
    name.pop_back();
  }

  std::vector<uint8_t> file;
  HD_RETURN_IF_ERROR(ReadFileAll(dir + "/" + name, &file));
  if (file.size() < sizeof(kCkptMagic) + 4 ||
      std::memcmp(file.data(), kCkptMagic, sizeof(kCkptMagic)) != 0) {
    return Status::Corruption("bad checkpoint magic: " + name);
  }
  const uint8_t* body = file.data() + sizeof(kCkptMagic);
  const size_t body_n = file.size() - sizeof(kCkptMagic) - 4;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, file.data() + file.size() - 4, 4);
  if (WalCrc32(body, body_n) != stored_crc) {
    return Status::Corruption("checkpoint CRC mismatch: " + name);
  }

  Cursor c{body, body_n};
  const uint64_t next_lsn = c.U64();
  const uint64_t next_txn = c.U64();
  const uint64_t redo_start = c.U64();
  const uint32_t next_table_id = c.U32();
  const uint32_t ntables = c.U32();
  for (uint32_t ti = 0; ti < ntables && c.ok; ++ti) {
    const uint32_t table_id = c.U32();
    const std::string tname = c.Str();
    const uint32_t ncols = c.U32();
    if (!c.ok || ncols > 4096) {
      return Status::Corruption("checkpoint table header: " + name);
    }
    std::vector<Column> cols;
    cols.reserve(ncols);
    for (uint32_t i = 0; i < ncols && c.ok; ++i) {
      Column col;
      col.name = c.Str();
      col.type = static_cast<ValueType>(c.U8());
      col.avg_width = static_cast<int>(c.U32());
      cols.push_back(std::move(col));
    }
    struct DictImage {
      int col;
      std::vector<std::string> strings;
      bool sorted;
    };
    std::vector<DictImage> dicts;
    for (uint32_t i = 0; i < ncols && c.ok; ++i) {
      if (c.U8() == 0) continue;
      DictImage d;
      d.col = static_cast<int>(i);
      const uint32_t n = c.U32();
      d.strings.reserve(n);
      for (uint32_t j = 0; j < n && c.ok; ++j) d.strings.push_back(c.Str());
      d.sorted = c.U8() == 1;
      dicts.push_back(std::move(d));
    }
    const PrimaryKind kind = static_cast<PrimaryKind>(c.U8());
    std::vector<int> keys;
    const uint32_t nkeys = c.U32();
    for (uint32_t i = 0; i < nkeys && c.ok; ++i) {
      keys.push_back(static_cast<int>(c.U32()));
    }
    std::vector<IndexDef> secondaries;
    const uint32_t nsec = c.U32();
    for (uint32_t i = 0; i < nsec && c.ok; ++i) {
      secondaries.push_back(DeserializeIndexDef(&c));
    }
    const int64_t next_rid = c.I64();
    const uint64_t applied_lsn = c.U64();
    const uint64_t nrows = c.U64();
    std::vector<int64_t> rids;
    rids.reserve(nrows);
    std::vector<std::vector<int64_t>> data(ncols);
    for (uint32_t i = 0; i < ncols; ++i) data[i].reserve(nrows);
    for (uint64_t r = 0; r < nrows && c.ok; ++r) {
      rids.push_back(c.I64());
      for (uint32_t i = 0; i < ncols; ++i) data[i].push_back(c.I64());
    }
    if (!c.ok) return Status::Corruption("truncated checkpoint: " + name);

    auto created = db->CreateTable(tname, Schema(std::move(cols)));
    HD_RETURN_IF_ERROR(created.status());
    Table* t = created.value();
    db->AssignTableId(t, table_id);
    for (auto& d : dicts) {
      t->RecoverRestoreDict(d.col, std::move(d.strings), d.sorted);
    }
    if (kind != PrimaryKind::kHeap) {
      HD_RETURN_IF_ERROR(t->SetPrimary(kind, keys));
    }
    for (const auto& def : secondaries) {
      HD_RETURN_IF_ERROR(t->ApplyIndexDef(def));
    }
    t->RecoverLoad(std::move(data), std::move(rids), next_rid);
    t->set_applied_lsn(applied_lsn);
  }
  if (!c.ok) return Status::Corruption("truncated checkpoint: " + name);
  db->SeedNextTableId(next_table_id);
  if (redo_start_out != nullptr) *redo_start_out = redo_start;
  if (stats != nullptr) {
    stats->checkpoint_loaded = true;
    if (next_lsn > 0) stats->max_lsn = std::max(stats->max_lsn, next_lsn - 1);
    if (next_txn > 0) stats->max_txn = std::max(stats->max_txn, next_txn - 1);
  }
  return Status::OK();
}

}  // namespace

Status WalRecover(Database* db, const std::string& dir, RecoveryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  RecoveryStats local;
  if (stats == nullptr) stats = &local;
  *stats = RecoveryStats();

  uint64_t redo_start = 0;
  Status s = LoadCheckpoint(db, dir, stats, &redo_start);
  if (!s.ok() && !s.IsNotFound()) return s;

  // Single pass buffers the log: analysis needs the winner set before any
  // record is replayed, and the log fits (it is truncated at checkpoints).
  // Records below the checkpoint's redo_start were already resolved when
  // the checkpoint was taken — segment-granular truncation can leave them
  // in the log, and replaying or re-undoing them would double-apply across
  // repeated recoveries, so they are dropped here (max_lsn / max_txn still
  // account for them so allocators never go backwards).
  std::vector<WalRecord> log;
  std::set<uint64_t> winners;
  HD_RETURN_IF_ERROR(WalManager::ReadLog(
      dir,
      [&](const WalRecord& rec) {
        stats->max_lsn = std::max(stats->max_lsn, rec.lsn);
        stats->max_txn = std::max(stats->max_txn, rec.txn);
        if (rec.lsn < redo_start) return;
        if (rec.type == WalRecordType::kTxnCommit) {
          winners.insert(rec.txn);
        } else {
          log.push_back(rec);
        }
      },
      &stats->truncated_bytes));

  // Redo (repeating history): inserts replay for winners AND losers so
  // heap rids stay position-faithful; updates/deletes replay for winners
  // and self-committed (txn 0) records only. A fuzzy checkpoint can
  // capture a LOSER's in-place effects (its records carry lsn <= the
  // table's snapshot LSN; redo_start retains them via the oldest-active
  // horizon) — those are not replayed, but they ARE queued for undo with
  // the row images the log carries, so an uncommitted transaction caught
  // mid-flight by a checkpoint still rolls back completely on restart.
  struct UndoOp {
    uint64_t lsn;
    WalRecordType type;
    uint32_t table_id;
    int64_t rid;
    PackedRow old_row;  // kUpdate / kDelete: image to restore
    PackedRow new_row;  // kInsert / kUpdate: image currently in place
  };
  std::vector<UndoOp> undo_ops;  // scan order == LSN order
  // (table, rid) -> LSN of the last winner record that wrote it. Undo of
  // a loser op must not clobber a winner image written AFTER it.
  std::map<std::pair<uint32_t, int64_t>, uint64_t> winner_touched;
  for (const WalRecord& rec : log) {
    if (rec.type == WalRecordType::kTxnAbort) continue;
    HD_FAILPOINT_RETURN("recovery.redo");
    Table* t = db->GetTableById(rec.table_id);
    if (t == nullptr) {
      // DDL after the last checkpoint: the table was never checkpointed,
      // so its records are unreplayable by contract (see recovery.h).
      ++stats->skipped_records;
      continue;
    }
    const bool winner = rec.txn == 0 || winners.count(rec.txn) > 0;
    const bool dml = rec.type == WalRecordType::kInsert ||
                     rec.type == WalRecordType::kUpdate ||
                     rec.type == WalRecordType::kDelete;
    if (winner && dml) {
      uint64_t& last = winner_touched[{rec.table_id, rec.rid}];
      last = std::max(last, rec.lsn);
    }
    if (rec.lsn <= t->applied_lsn()) {
      // Already reflected by the checkpoint. Row conversion for loser
      // undo happens here, at scan time, so dictionary code allocation
      // stays in LSN order and deterministic.
      if (!winner && dml) {
        UndoOp op;
        op.lsn = rec.lsn;
        op.type = rec.type;
        op.table_id = rec.table_id;
        op.rid = rec.rid;
        if (rec.type != WalRecordType::kInsert) {
          op.old_row = t->FromWalRow(rec.old_row);
        }
        if (rec.type != WalRecordType::kDelete) {
          op.new_row = t->FromWalRow(rec.new_row);
        }
        undo_ops.push_back(std::move(op));
      }
      continue;
    }
    switch (rec.type) {
      case WalRecordType::kInsert: {
        PackedRow row = t->FromWalRow(rec.new_row);
        HD_RETURN_IF_ERROR(t->RecoverInsert(rec.rid, row));
        ++stats->redo_records;
        if (!winner) {
          UndoOp op;
          op.lsn = rec.lsn;
          op.type = rec.type;
          op.table_id = rec.table_id;
          op.rid = rec.rid;
          op.new_row = std::move(row);
          undo_ops.push_back(std::move(op));
        }
        break;
      }
      case WalRecordType::kUpdate:
        if (winner) {
          HD_RETURN_IF_ERROR(t->RecoverUpdate(rec.rid,
                                              t->FromWalRow(rec.old_row),
                                              t->FromWalRow(rec.new_row)));
          ++stats->redo_records;
        }
        break;
      case WalRecordType::kDelete:
        if (winner) {
          HD_RETURN_IF_ERROR(
              t->RecoverDelete(rec.rid, t->FromWalRow(rec.old_row)));
          ++stats->redo_records;
        }
        break;
      case WalRecordType::kCsiReorg: {
        ColumnStoreIndex* csi = nullptr;
        if (rec.aux.empty()) {
          csi = t->primary_csi();
        } else if (SecondaryIndex* si = t->FindSecondary(rec.aux)) {
          csi = si->csi.get();
        }
        // A dropped index since the checkpoint makes the reorg moot.
        if (csi != nullptr) {
          HD_RETURN_IF_ERROR(csi->Reorganize());
          ++stats->redo_records;
        }
        break;
      }
      default:
        break;
    }
    t->set_applied_lsn(rec.lsn);
  }

  // Undo: losers' effects come back out, newest first — replayed inserts
  // are deleted, and checkpointed inserts/updates/deletes are reversed
  // from the logged row images. A rid a winner wrote LATER than the
  // loser's op keeps the winner's image (repeating history already gave
  // it the final state). NotFound is fine — the loser compensated its own
  // op before the crash.
  for (auto it = undo_ops.rbegin(); it != undo_ops.rend(); ++it) {
    auto w = winner_touched.find({it->table_id, it->rid});
    if (w != winner_touched.end() && w->second > it->lsn) continue;
    Table* t = db->GetTableById(it->table_id);
    if (t == nullptr) continue;
    Status u;
    switch (it->type) {
      case WalRecordType::kInsert:
        u = t->RecoverDelete(it->rid, it->new_row);
        break;
      case WalRecordType::kUpdate:
        // The slot holds the loser's new image; put the old one back.
        u = t->RecoverUpdate(it->rid, it->new_row, it->old_row);
        break;
      case WalRecordType::kDelete:
        u = t->RecoverInsert(it->rid, it->old_row);
        break;
      default:
        break;
    }
    if (!u.ok() && !u.IsNotFound()) return u;
    ++stats->undo_records;
  }

  for (const auto& [tname, t] : db->tables()) {
    if (t->applied_lsn() > 0) t->Analyze();
  }

  stats->restart_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  auto& tel = Telemetry::Instance();
  tel.Counter("recovery.redo_records")->Add(stats->redo_records);
  tel.Counter("recovery.undo_records")->Add(stats->undo_records);
  tel.Counter("recovery.skipped_records")->Add(stats->skipped_records);
  tel.Gauge("recovery.restart_ms")
      ->Set(static_cast<int64_t>(stats->restart_ms));
  return Status::OK();
}

}  // namespace hd
