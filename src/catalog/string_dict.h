// Per-column string dictionary: maps strings to packed int64 codes.
//
// Bulk loads build the dictionary sorted, so codes are order-preserving
// and range predicates on strings work. Strings first seen by later
// trickle inserts get appended codes that are only equality-correct
// (documented engine limitation; none of the reproduced workloads range-
// scan strings inserted after load).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace hd {

class StringDict {
 public:
  /// Build from (not necessarily distinct) values; codes assigned in
  /// sorted order of the distinct set.
  void BuildSorted(std::vector<std::string> values);

  /// Code for `s`, inserting if absent (appended, possibly out of order).
  int64_t GetOrAdd(const std::string& s);

  /// Restore an exact dictionary image (checkpoint recovery): `strings`
  /// are the code->string table in code order, `sorted` the flag the
  /// saved dictionary carried. Codes are preserved bit-for-bit so packed
  /// row images in the same checkpoint stay valid.
  void Restore(std::vector<std::string> strings, bool sorted);

  /// Code for `s`, or -1 if absent.
  int64_t Lookup(const std::string& s) const {
    auto it = code_of_.find(s);
    return it == code_of_.end() ? -1 : it->second;
  }

  /// Largest code whose string is <= s (for range bounds); -1 if none.
  /// Only meaningful while the dictionary is sorted.
  int64_t FloorCode(const std::string& s) const;

  const std::string& At(int64_t code) const { return strings_[code]; }
  size_t size() const { return strings_.size(); }
  bool sorted() const { return sorted_; }
  uint64_t byte_size() const;

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int64_t> code_of_;
  bool sorted_ = true;
};

inline void StringDict::BuildSorted(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  strings_ = std::move(values);
  code_of_.clear();
  code_of_.reserve(strings_.size());
  for (size_t i = 0; i < strings_.size(); ++i) {
    code_of_.emplace(strings_[i], static_cast<int64_t>(i));
  }
  sorted_ = true;
}

inline void StringDict::Restore(std::vector<std::string> strings, bool sorted) {
  strings_ = std::move(strings);
  code_of_.clear();
  code_of_.reserve(strings_.size());
  for (size_t i = 0; i < strings_.size(); ++i) {
    code_of_.emplace(strings_[i], static_cast<int64_t>(i));
  }
  sorted_ = sorted;
}

inline int64_t StringDict::GetOrAdd(const std::string& s) {
  auto it = code_of_.find(s);
  if (it != code_of_.end()) return it->second;
  const int64_t code = static_cast<int64_t>(strings_.size());
  if (!strings_.empty() && s < strings_.back()) sorted_ = false;
  strings_.push_back(s);
  code_of_.emplace(s, code);
  return code;
}

inline int64_t StringDict::FloorCode(const std::string& s) const {
  auto it = std::upper_bound(strings_.begin(), strings_.end(), s);
  if (it == strings_.begin()) return -1;
  return static_cast<int64_t>(it - strings_.begin()) - 1;
}

inline uint64_t StringDict::byte_size() const {
  uint64_t b = 0;
  for (const auto& s : strings_) b += s.size() + 32;
  return b;
}

}  // namespace hd
