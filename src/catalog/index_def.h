// Logical index definitions — shared by the catalog (materialized indexes)
// and the advisor/what-if layer (hypothetical indexes).
#pragma once

#include <string>
#include <vector>

namespace hd {

/// A physical design structure on one table.
struct IndexDef {
  enum class Type { kBTree, kColumnStore };

  std::string name;
  Type type = Type::kBTree;
  bool is_primary = false;
  /// B+ tree: key columns, in order. Ignored for columnstores (no sort
  /// order, Section 2).
  std::vector<int> key_cols;
  /// Secondary B+ tree: non-key columns stored at the leaf level.
  std::vector<int> included_cols;

  bool is_btree() const { return type == Type::kBTree; }
  bool is_columnstore() const { return type == Type::kColumnStore; }

  bool operator==(const IndexDef& o) const {
    return type == o.type && is_primary == o.is_primary &&
           key_cols == o.key_cols && included_cols == o.included_cols;
  }

  std::string Describe() const {
    std::string s = is_primary ? "PRIMARY " : "SECONDARY ";
    s += is_btree() ? "BTREE" : "CSI";
    if (is_btree()) {
      s += " keys=[";
      for (size_t i = 0; i < key_cols.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(key_cols[i]);
      }
      s += "] incl=[";
      for (size_t i = 0; i < included_cols.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(included_cols[i]);
      }
      s += "]";
    }
    return s;
  }
};

}  // namespace hd
