// Synthetic stand-ins for the paper's five real customer workloads
// (Cust1–Cust5, Sections 5.1–5.2).
//
// The real traces are proprietary; what the paper publishes about them is
// Table 2 (schema size, table counts, query counts, join counts) and the
// Fig. 9 speedup distributions. Each profile here pins the generator's
// knobs — join fan-out, predicate selectivity mix, scan-heaviness, schema
// shape — to those published statistics, so the advisor sees workloads of
// the same character. Table/row counts are scaled down uniformly; the
// nominal (paper) statistics are retained for Table 2 reporting.
#pragma once

#include <string>
#include <vector>

#include "catalog/database.h"
#include "workload/tpcds.h"

namespace hd {

struct CustomerProfile {
  std::string name;
  // Nominal statistics as published in Table 2.
  double nominal_db_gb = 0;
  int nominal_tables = 0;
  double nominal_max_table_gb = 0;
  double nominal_avg_cols = 0;

  // Generator knobs.
  int num_dims = 12;       // materialized dimension tables
  int num_facts = 2;       // materialized fact tables
  uint64_t fact_rows = 300'000;
  int num_queries = 40;
  int min_joins = 4;
  int max_joins = 10;
  /// Fraction of queries with highly selective predicates (B+ tree wins).
  double selective_frac = 0.3;
  /// Fraction that are full-table rollups (columnstore wins).
  double scan_frac = 0.3;
  int fact_measures = 6;
  uint64_t seed = 5;
};

/// The five profiles, calibrated to Table 2 / Fig. 9.
CustomerProfile CustProfile(int i);

/// Build schema + data + queries for one profile. Table names are
/// prefixed with the profile name.
GeneratedWorkload MakeCustomer(Database* db, const CustomerProfile& p,
                               double scale = 1.0);

}  // namespace hd
