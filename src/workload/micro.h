// Micro-benchmark data and queries (Section 3).
//
// Synthetic tables of uniformly distributed 32-bit integers (as in the
// paper and Kester et al.), plus the paper's query templates Q1–Q3.
#pragma once

#include <string>
#include <vector>

#include "catalog/database.h"
#include "common/rng.h"
#include "exec/query.h"

namespace hd {

struct MicroOptions {
  uint64_t rows = 1u << 20;
  /// Values drawn uniformly from [0, max_value].
  int64_t max_value = (1ll << 31) - 1;
  uint64_t seed = 42;
  /// Pre-sort the data on column 0 before loading (the "CSI sorted"
  /// variant of Section 3.2.1).
  bool sorted_on_col0 = false;
};

/// Create and load a table named `name` with `ncols` integer columns
/// (col0, col1, ...). Returns the table (primary = heap until changed).
Table* MakeUniformIntTable(Database* db, const std::string& name, int ncols,
                           const MicroOptions& opts);

/// Create a two-column table where col0 has exactly `num_groups` distinct
/// values (uniformly assigned) — the Fig. 4 group-by table.
Table* MakeGroupedTable(Database* db, const std::string& name, uint64_t rows,
                        int64_t num_groups, uint64_t seed);

/// Q1: SELECT sum(col0) FROM t WHERE col0 < cutoff — `selectivity` of
/// [0, 1] is converted to a cutoff against [0, max_value].
Query MicroQ1(const std::string& table, double selectivity, int64_t max_value);

/// Q1 variant with a range predicate centered in the domain:
/// col0 BETWEEN mid-w/2 AND mid+w/2. On randomly ordered data no segment
/// can be eliminated by min/max, matching the paper's observation that
/// unsorted columnstores see no data skipping (Fig. 2 "CSI random").
Query MicroQ1Range(const std::string& table, double selectivity,
                   int64_t max_value);

/// Q2: SELECT col0, col1 FROM t WHERE col0 < cutoff ORDER BY col1.
Query MicroQ2(const std::string& table, double selectivity, int64_t max_value);

/// Q3: SELECT col0, sum(col1) FROM t GROUP BY col0.
Query MicroQ3(const std::string& table);

/// Q1 variant that aggregates a DIFFERENT column than it filters:
/// SELECT sum(col1) FROM t WHERE col0 BETWEEN lo AND hi. Unlike Q1/Q1r,
/// this cannot be answered by encoded-domain aggregate pushdown (the
/// aggregate column differs from the predicate column), so it always
/// decodes — the shape concurrent shared scans amortize.
Query MicroQ1SumOther(const std::string& table, int64_t lo, int64_t hi);

/// Zipf-skewed BETWEEN-range generator (ROADMAP item 4): predicate
/// centers are drawn from `num_hot_spots` positions spread over
/// [0, max_value] with Zipfian popularity (rank 0 hottest), so concurrent
/// queries cluster on hot ranges the way real dashboards do instead of
/// sampling the domain uniformly. Each range spans `selectivity` of the
/// domain, clamped to stay inside it.
struct ZipfPredOptions {
  int64_t max_value = (1ll << 31) - 1;
  double selectivity = 0.1;
  /// Skew theta in [0, 1): 0 = uniform over the spots, 0.99 = extreme.
  double theta = 0.8;
  int num_hot_spots = 64;
  uint64_t seed = 7;
};

class ZipfPredicateGen {
 public:
  explicit ZipfPredicateGen(const ZipfPredOptions& opts);

  /// Next range [*lo, *hi] (inclusive), Zipf-popular center.
  void NextRange(int64_t* lo, int64_t* hi);

 private:
  ZipfPredOptions opts_;
  Rng rng_;
  /// Spot centers; index = popularity rank (shuffled so the hot spot is
  /// not always at the domain edge).
  std::vector<int64_t> centers_;
};

}  // namespace hd
