#include "workload/customer.h"

#include "common/rng.h"

namespace hd {

CustomerProfile CustProfile(int i) {
  CustomerProfile p;
  switch (i) {
    case 1:
      // Decision support over a medium star schema; queries are mostly
      // narrow slices (Fig. 9(b): hybrid >10x over CSI for 30/36 queries).
      p.name = "cust1";
      p.nominal_db_gb = 172;
      p.nominal_tables = 23;
      p.nominal_max_table_gb = 63.8;
      p.nominal_avg_cols = 14.1;
      p.num_dims = 14;
      p.num_facts = 3;
      p.fact_rows = 400'000;
      p.num_queries = 36;
      p.min_joins = 5;
      p.max_joins = 9;
      p.selective_frac = 0.75;
      p.scan_frac = 0.10;
      p.fact_measures = 6;
      p.seed = 101;
      break;
    case 2:
      // Wide-schema reporting: scan-dominated (hybrid ~= CSI, >> B+ tree).
      p.name = "cust2";
      p.nominal_db_gb = 44.6;
      p.nominal_tables = 614;
      p.nominal_max_table_gb = 44.6;
      p.nominal_avg_cols = 23.5;
      p.num_dims = 16;
      p.num_facts = 2;
      p.fact_rows = 250'000;
      p.num_queries = 40;
      p.min_joins = 6;
      p.max_joins = 10;
      p.selective_frac = 0.08;
      p.scan_frac = 0.60;
      p.fact_measures = 10;
      p.seed = 102;
      break;
    case 3:
      // Operational reporting: selective lookups dominate (hybrid ~= B+
      // tree, >10x over CSI for half the workload).
      p.name = "cust3";
      p.nominal_db_gb = 138.4;
      p.nominal_tables = 3394;
      p.nominal_max_table_gb = 79.8;
      p.nominal_avg_cols = 26.3;
      p.num_dims = 16;
      p.num_facts = 3;
      p.fact_rows = 350'000;
      p.num_queries = 40;
      p.min_joins = 6;
      p.max_joins = 11;
      p.selective_frac = 0.60;
      p.scan_frac = 0.05;
      p.fact_measures = 8;
      p.seed = 103;
      break;
    case 4:
      // Mixed decision support.
      p.name = "cust4";
      p.nominal_db_gb = 93;
      p.nominal_tables = 22;
      p.nominal_max_table_gb = 54.8;
      p.nominal_avg_cols = 20.3;
      p.num_dims = 12;
      p.num_facts = 2;
      p.fact_rows = 300'000;
      p.num_queries = 24;
      p.min_joins = 4;
      p.max_joins = 9;
      p.selective_frac = 0.35;
      p.scan_frac = 0.35;
      p.fact_measures = 8;
      p.seed = 104;
      break;
    default:
      // Deep join pipelines over a small database (avg 21.6 joins/query).
      p.name = "cust5";
      p.nominal_db_gb = 9.83;
      p.nominal_tables = 474;
      p.nominal_max_table_gb = 1.52;
      p.nominal_avg_cols = 5.5;
      p.num_dims = 24;
      p.num_facts = 2;
      p.fact_rows = 150'000;
      p.num_queries = 47;
      p.min_joins = 16;
      p.max_joins = 24;
      p.selective_frac = 0.15;
      p.scan_frac = 0.40;
      p.fact_measures = 4;
      p.seed = 105;
      break;
  }
  return p;
}

namespace {

struct DimMeta {
  std::string name;
  int64_t rows = 0;
  int hi_ndv_attr = 1;  // attr column with near-unique values
  int lo_ndv_attr = 2;  // attr column with ~20 distinct values
  int64_t lo_ndv = 20;
};

}  // namespace

GeneratedWorkload MakeCustomer(Database* db, const CustomerProfile& p,
                               double scale) {
  Rng rng(p.seed);
  GeneratedWorkload w;

  // ---- dimension tables: pk, hi-ndv attr, lo-ndv attr, label, filler ----
  std::vector<DimMeta> dims;
  for (int d = 0; d < p.num_dims; ++d) {
    DimMeta dm;
    dm.name = p.name + "_dim" + std::to_string(d);
    dm.rows = rng.Uniform(100, 20'000);
    dm.lo_ndv = rng.Uniform(4, 40);
    auto t = db->CreateTable(
        dm.name, Schema({{"pk", ValueType::kInt64, 0},
                         {"attr_hi", ValueType::kInt64, 0},
                         {"attr_lo", ValueType::kInt64, 0},
                         {"label", ValueType::kString, 10},
                         {"filler", ValueType::kInt64, 0}}));
    std::vector<std::vector<int64_t>> cols(5);
    Table* tab = t.value();
    for (int64_t i = 0; i < dm.rows; ++i) {
      cols[0].push_back(i);
      cols[1].push_back(i);  // unique
      cols[2].push_back(rng.Uniform(0, dm.lo_ndv - 1));
      cols[3].push_back(
          tab->PackValue(3, Value::String("lbl" + std::to_string(
                                              rng.Uniform(0, dm.lo_ndv - 1)))));
      cols[4].push_back(rng.Uniform(0, 1'000'000));
    }
    tab->BulkLoadPacked(std::move(cols));
    dims.push_back(dm);
    w.tables.push_back(dm.name);
  }

  // ---- fact tables: fk per dim + id + measures ----
  const uint64_t frows = static_cast<uint64_t>(p.fact_rows * scale);
  std::vector<std::string> facts;
  const int nfk = p.num_dims;
  for (int f = 0; f < p.num_facts; ++f) {
    const std::string fname = p.name + "_fact" + std::to_string(f);
    std::vector<Column> cols;
    cols.push_back({"id", ValueType::kInt64, 0});
    for (int d = 0; d < nfk; ++d) {
      cols.push_back({"fk" + std::to_string(d), ValueType::kInt64, 0});
    }
    for (int m = 0; m < p.fact_measures; ++m) {
      cols.push_back({"m" + std::to_string(m),
                      m % 2 ? ValueType::kDouble : ValueType::kInt64, 0});
    }
    auto t = db->CreateTable(fname, Schema(cols));
    Table* tab = t.value();
    const int ncols = tab->num_columns();
    std::vector<std::vector<int64_t>> data(ncols);
    for (uint64_t i = 0; i < frows; ++i) {
      data[0].push_back(static_cast<int64_t>(i));
      for (int d = 0; d < nfk; ++d) {
        data[1 + d].push_back(rng.Zipf(dims[d].rows, 0.3));
      }
      for (int m = 0; m < p.fact_measures; ++m) {
        const int c = 1 + nfk + m;
        if (m % 2) {
          data[c].push_back(
              tab->PackValue(c, Value::Double(rng.UniformReal(0, 1000))));
        } else {
          data[c].push_back(rng.Uniform(0, 10'000));
        }
      }
    }
    tab->BulkLoadPacked(std::move(data));
    facts.push_back(fname);
    w.tables.push_back(fname);
  }

  // ---- queries ----
  Rng qr(p.seed + 7);
  for (int qi = 0; qi < p.num_queries; ++qi) {
    Query q;
    q.id = p.name + "-Q" + std::to_string(qi + 1);
    q.base.table = facts[qr.Uniform(0, p.num_facts - 1)];
    const int mcol = 1 + nfk + static_cast<int>(qr.Uniform(0, p.fact_measures - 1));
    const double roll = qr.UniformReal(0, 1);
    if (roll < p.scan_frac) {
      // Full rollup over one or two measures, grouped by a low-card fk.
      q.aggs = {AggSpec::Sum(Expr::Col(0, mcol), "m"), AggSpec::CountStar()};
      const int gd = static_cast<int>(qr.Uniform(0, nfk - 1));
      JoinClause jc;
      jc.dim.table = dims[gd].name;
      jc.base_col = 1 + gd;
      jc.dim_col = 0;
      q.joins.push_back(jc);
      q.group_by = {ColRef{1, 2}};  // dim attr_lo
      // Deep-join profiles chain extra (unfiltered) dimensions.
      int extra = static_cast<int>(qr.Uniform(p.min_joins, p.max_joins)) - 1;
      for (int e = 0; e < extra; ++e) {
        const int d2 = static_cast<int>(qr.Uniform(0, nfk - 1));
        JoinClause j2;
        j2.dim.table = dims[d2].name;
        j2.base_col = 1 + d2;
        j2.dim_col = 0;
        q.joins.push_back(j2);
      }
    } else {
      const bool selective = qr.UniformReal(0, 1) <
                             p.selective_frac / std::max(1e-9, 1 - p.scan_frac);
      const int njoin = static_cast<int>(qr.Uniform(p.min_joins, p.max_joins));
      for (int j = 0; j < njoin; ++j) {
        const int d = static_cast<int>(qr.Uniform(0, nfk - 1));
        JoinClause jc;
        jc.dim.table = dims[d].name;
        jc.base_col = 1 + d;
        jc.dim_col = 0;
        if (j == 0) {
          if (selective) {
            // A handful of dim rows (near-unique attribute range).
            const int64_t v = qr.Uniform(0, dims[d].rows - 1);
            jc.dim.preds = {Pred::Between(1, Value::Int64(v),
                                          Value::Int64(v + 3))};
          } else {
            // One low-cardinality slice (~1/lo_ndv of the fact).
            jc.dim.preds = {
                Pred::Eq(2, Value::Int64(qr.Uniform(0, dims[d].lo_ndv - 1)))};
          }
        }
        q.joins.push_back(jc);
      }
      q.aggs = {AggSpec::Sum(Expr::Col(0, mcol), "m"), AggSpec::CountStar()};
      if (!selective && qr.Flip(0.4)) {
        q.group_by = {ColRef{1, 2}};
      }
      if (selective && qr.Flip(0.3)) {
        // Selective fact-key range instead of a dim predicate.
        q.joins[0].dim.preds.clear();
        const int64_t v = qr.Uniform(0, static_cast<int64_t>(frows) - 50);
        q.base.preds = {Pred::Between(0, Value::Int64(v), Value::Int64(v + 40))};
      }
    }
    w.queries.push_back(std::move(q));
  }
  return w;
}

}  // namespace hd
