#include "workload/micro.h"

#include <algorithm>

#include "common/rng.h"

namespace hd {

Table* MakeUniformIntTable(Database* db, const std::string& name, int ncols,
                           const MicroOptions& opts) {
  std::vector<Column> cols;
  for (int c = 0; c < ncols; ++c) {
    cols.push_back({"col" + std::to_string(c), ValueType::kInt64, 0});
  }
  auto res = db->CreateTable(name, Schema(std::move(cols)));
  if (!res.ok()) return nullptr;
  Table* t = res.value();
  Rng rng(opts.seed);
  std::vector<std::vector<int64_t>> data(ncols);
  for (auto& d : data) d.reserve(opts.rows);
  for (uint64_t i = 0; i < opts.rows; ++i) {
    for (int c = 0; c < ncols; ++c) {
      data[c].push_back(rng.Uniform(0, opts.max_value));
    }
  }
  if (opts.sorted_on_col0 && ncols > 0) {
    std::vector<uint32_t> perm(opts.rows);
    for (uint64_t i = 0; i < opts.rows; ++i) perm[i] = static_cast<uint32_t>(i);
    std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
      return data[0][a] < data[0][b];
    });
    std::vector<int64_t> tmp(opts.rows);
    for (int c = 0; c < ncols; ++c) {
      for (uint64_t i = 0; i < opts.rows; ++i) tmp[i] = data[c][perm[i]];
      data[c].swap(tmp);
    }
  }
  t->BulkLoadPacked(std::move(data));
  return t;
}

Table* MakeGroupedTable(Database* db, const std::string& name, uint64_t rows,
                        int64_t num_groups, uint64_t seed) {
  std::vector<Column> cols = {{"col0", ValueType::kInt64, 0},
                              {"col1", ValueType::kInt64, 0}};
  auto res = db->CreateTable(name, Schema(std::move(cols)));
  if (!res.ok()) return nullptr;
  Table* t = res.value();
  Rng rng(seed);
  std::vector<std::vector<int64_t>> data(2);
  data[0].reserve(rows);
  data[1].reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    data[0].push_back(rng.Uniform(0, num_groups - 1));
    data[1].push_back(rng.Uniform(0, 1'000'000));
  }
  t->BulkLoadPacked(std::move(data));
  return t;
}

Query MicroQ1(const std::string& table, double selectivity, int64_t max_value) {
  Query q;
  q.id = "Q1";
  q.base.table = table;
  const int64_t cutoff =
      static_cast<int64_t>(selectivity * static_cast<double>(max_value));
  q.base.preds.push_back(Pred::Lt(0, Value::Int64(cutoff)));
  q.aggs.push_back(AggSpec::Sum(Expr::Col(0, 0), "sum_col0"));
  return q;
}

Query MicroQ1Range(const std::string& table, double selectivity,
                   int64_t max_value) {
  Query q;
  q.id = "Q1r";
  q.base.table = table;
  const int64_t mid = max_value / 2;
  const int64_t width =
      static_cast<int64_t>(selectivity * static_cast<double>(max_value));
  q.base.preds.push_back(Pred::Between(0, Value::Int64(mid - width / 2),
                                       Value::Int64(mid + (width + 1) / 2 - 1)));
  q.aggs.push_back(AggSpec::Sum(Expr::Col(0, 0), "sum_col0"));
  return q;
}

Query MicroQ2(const std::string& table, double selectivity, int64_t max_value) {
  Query q;
  q.id = "Q2";
  q.base.table = table;
  const int64_t cutoff =
      static_cast<int64_t>(selectivity * static_cast<double>(max_value));
  q.base.preds.push_back(Pred::Lt(0, Value::Int64(cutoff)));
  q.select_cols = {ColRef{0, 0}, ColRef{0, 1}};
  q.order_by = {ColRef{0, 1}};
  return q;
}

Query MicroQ3(const std::string& table) {
  Query q;
  q.id = "Q3";
  q.base.table = table;
  q.group_by = {ColRef{0, 0}};
  q.aggs.push_back(AggSpec::Sum(Expr::Col(0, 1), "sum_col1"));
  return q;
}

Query MicroQ1SumOther(const std::string& table, int64_t lo, int64_t hi) {
  Query q;
  q.id = "Q1x";
  q.base.table = table;
  q.base.preds.push_back(
      Pred::Between(0, Value::Int64(lo), Value::Int64(hi)));
  q.aggs.push_back(AggSpec::Sum(Expr::Col(0, 1), "sum_col1"));
  return q;
}

ZipfPredicateGen::ZipfPredicateGen(const ZipfPredOptions& opts)
    : opts_(opts), rng_(opts.seed) {
  const int n = std::max(1, opts_.num_hot_spots);
  centers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Evenly spaced spot centers across the domain...
    centers_.push_back(static_cast<int64_t>(
        (static_cast<double>(i) + 0.5) / n *
        static_cast<double>(opts_.max_value)));
  }
  // ...shuffled once so popularity rank is decoupled from position.
  rng_.Shuffle(&centers_);
}

void ZipfPredicateGen::NextRange(int64_t* lo, int64_t* hi) {
  const int64_t rank =
      rng_.Zipf(static_cast<int64_t>(centers_.size()), opts_.theta);
  const int64_t center = centers_[static_cast<size_t>(rank)];
  const int64_t width = std::max<int64_t>(
      1, static_cast<int64_t>(opts_.selectivity *
                              static_cast<double>(opts_.max_value)));
  int64_t l = center - width / 2;
  int64_t h = l + width - 1;
  if (l < 0) {
    h -= l;
    l = 0;
  }
  if (h > opts_.max_value) {
    l = std::max<int64_t>(0, l - (h - opts_.max_value));
    h = opts_.max_value;
  }
  *lo = l;
  *hi = h;
}

}  // namespace hd
