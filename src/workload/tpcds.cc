#include "workload/tpcds.h"

#include "common/rng.h"

namespace hd {

namespace {

// Column indices, kept in sync with the schema built below.
namespace ss {  // store_sales (also the layout of web/catalog sales)
constexpr int kSoldDateSk = 0, kSoldTimeSk = 1, kItemSk = 2, kCustomerSk = 3,
              kCdemoSk = 4, kHdemoSk = 5, kAddrSk = 6, kStoreSk = 7,
              kPromoSk = 8, kTicketNumber = 9, kQuantity = 10,
              kWholesaleCost = 11, kListPrice = 12, kSalesPrice = 13,
              kExtDiscountAmt = 14, kExtSalesPrice = 15, kNetPaid = 16,
              kNetProfit = 17, kNumCols = 18;
}  // namespace ss
namespace dd {  // date_dim
constexpr int kDateSk = 0, kYear = 1, kMoy = 2, kDom = 3, kQoy = 4,
              kWeekSeq = 5, kDayName = 6, kWeekend = 7, kMonthName = 8,
              kDate = 9, kNumCols = 10;
}  // namespace dd
namespace it {  // item
constexpr int kItemSk = 0, kBrandId = 1, kClassId = 2, kCategoryId = 3,
              kCategory = 4, kBrand = 5, kCurrentPrice = 6, kManufactId = 7,
              kSize = 8, kColor = 9, kUnits = 10, kWholesaleCost = 11,
              kNumCols = 12;
}  // namespace it
namespace cu {  // customer
constexpr int kCustomerSk = 0, kBirthYear = 1, kBirthMonth = 2, kAddrSk = 3,
              kHdemoSk = 4, kFirstName = 5, kLastName = 6, kPreferred = 7,
              kSalutation = 8, kEmail = 9, kNumCols = 10;
}  // namespace cu
namespace st {  // store
constexpr int kStoreSk = 0, kState = 1, kCity = 2, kMarketId = 3,
              kEmployees = 4, kFloorSpace = 5, kManager = 6, kCompanyId = 7,
              kTaxPct = 8, kDivisionId = 9, kNumCols = 10;
}  // namespace st

constexpr int kYearLo = 1998, kYearHi = 2003;
constexpr int kNumDates = (kYearHi - kYearLo + 1) * 365;
constexpr int kNumItems = 2000;
constexpr int kNumCustomers = 10000;
constexpr int kNumStores = 50;
constexpr int kNumHdemo = 720;
constexpr int kNumPromo = 100;
constexpr int kNumWarehouses = 10;
constexpr int kNumAddresses = 5000;

static const char* kCategories[] = {"Books", "Electronics", "Home", "Jewelry",
                                    "Men", "Music", "Shoes", "Sports",
                                    "Children", "Women"};
static const char* kStates[] = {"AL", "CA", "FL", "GA", "IL", "MI", "NY",
                                "OH", "PA", "TX", "VA", "WA", "WI", "NC",
                                "TN", "MO", "IN", "MN", "CO", "AZ"};

void LoadDateDim(Database* db) {
  auto t = db->CreateTable(
      "date_dim",
      Schema({{"d_date_sk", ValueType::kInt64, 0},
              {"d_year", ValueType::kInt32, 0},
              {"d_moy", ValueType::kInt32, 0},
              {"d_dom", ValueType::kInt32, 0},
              {"d_qoy", ValueType::kInt32, 0},
              {"d_week_seq", ValueType::kInt32, 0},
              {"d_day_name", ValueType::kString, 9},
              {"d_weekend", ValueType::kInt32, 0},
              {"d_month_name", ValueType::kString, 9},
              {"d_date", ValueType::kDate, 0}}));
  static const char* kDays[] = {"Monday", "Tuesday", "Wednesday", "Thursday",
                                "Friday", "Saturday", "Sunday"};
  static const char* kMonths[] = {"January", "February", "March", "April",
                                  "May", "June", "July", "August",
                                  "September", "October", "November",
                                  "December"};
  std::vector<Row> rows;
  for (int i = 0; i < kNumDates; ++i) {
    const int year = kYearLo + i / 365;
    const int doy = i % 365;
    const int moy = doy / 31 + 1;
    rows.push_back({Value::Int64(i), Value::Int32(year),
                    Value::Int32(std::min(moy, 12)),
                    Value::Int32(doy % 31 + 1),
                    Value::Int32((std::min(moy, 12) - 1) / 3 + 1),
                    Value::Int32(i / 7), Value::String(kDays[i % 7]),
                    Value::Int32(i % 7 >= 5 ? 1 : 0),
                    Value::String(kMonths[std::min(moy, 12) - 1]),
                    Value::Date(10000 + i)});
  }
  t.value()->BulkLoad(rows);
}

void LoadItem(Database* db, Rng* rng) {
  auto t = db->CreateTable(
      "item", Schema({{"i_item_sk", ValueType::kInt64, 0},
                      {"i_brand_id", ValueType::kInt32, 0},
                      {"i_class_id", ValueType::kInt32, 0},
                      {"i_category_id", ValueType::kInt32, 0},
                      {"i_category", ValueType::kString, 12},
                      {"i_brand", ValueType::kString, 12},
                      {"i_current_price", ValueType::kDouble, 0},
                      {"i_manufact_id", ValueType::kInt32, 0},
                      {"i_size", ValueType::kString, 8},
                      {"i_color", ValueType::kString, 8},
                      {"i_units", ValueType::kString, 6},
                      {"i_wholesale_cost", ValueType::kDouble, 0}}));
  static const char* kSizes[] = {"small", "medium", "large", "extra", "petite"};
  static const char* kUnits[] = {"Each", "Dozen", "Case", "Pallet"};
  std::vector<Row> rows;
  for (int i = 0; i < kNumItems; ++i) {
    const int cat = static_cast<int>(rng->Uniform(0, 9));
    const int brand = static_cast<int>(rng->Uniform(1, 400));
    rows.push_back({Value::Int64(i), Value::Int32(brand),
                    Value::Int32(static_cast<int32_t>(rng->Uniform(1, 60))),
                    Value::Int32(cat + 1), Value::String(kCategories[cat]),
                    Value::String("brand#" + std::to_string(brand)),
                    Value::Double(rng->UniformReal(0.5, 300.0)),
                    Value::Int32(static_cast<int32_t>(rng->Uniform(1, 200))),
                    Value::String(kSizes[rng->Uniform(0, 4)]),
                    Value::String(rng->String(6)),
                    Value::String(kUnits[rng->Uniform(0, 3)]),
                    Value::Double(rng->UniformReal(0.2, 200.0))});
  }
  t.value()->BulkLoad(rows);
}

void LoadCustomer(Database* db, Rng* rng) {
  auto t = db->CreateTable(
      "customer", Schema({{"c_customer_sk", ValueType::kInt64, 0},
                          {"c_birth_year", ValueType::kInt32, 0},
                          {"c_birth_month", ValueType::kInt32, 0},
                          {"c_current_addr_sk", ValueType::kInt64, 0},
                          {"c_current_hdemo_sk", ValueType::kInt64, 0},
                          {"c_first_name", ValueType::kString, 10},
                          {"c_last_name", ValueType::kString, 10},
                          {"c_preferred_cust_flag", ValueType::kInt32, 0},
                          {"c_salutation", ValueType::kString, 6},
                          {"c_email_address", ValueType::kString, 20}}));
  static const char* kSal[] = {"Mr.", "Mrs.", "Ms.", "Dr.", "Miss", "Sir"};
  std::vector<Row> rows;
  for (int i = 0; i < kNumCustomers; ++i) {
    rows.push_back(
        {Value::Int64(i), Value::Int32(static_cast<int32_t>(rng->Uniform(1930, 2000))),
         Value::Int32(static_cast<int32_t>(rng->Uniform(1, 12))),
         Value::Int64(rng->Uniform(0, kNumAddresses - 1)),
         Value::Int64(rng->Uniform(0, kNumHdemo - 1)),
         Value::String(rng->String(7)), Value::String(rng->String(8)),
         Value::Int32(static_cast<int32_t>(rng->Uniform(0, 1))),
         Value::String(kSal[rng->Uniform(0, 5)]),
         Value::String(rng->String(12) + "@example.com")});
  }
  t.value()->BulkLoad(rows);
}

void LoadStore(Database* db, Rng* rng) {
  auto t = db->CreateTable(
      "store", Schema({{"s_store_sk", ValueType::kInt64, 0},
                       {"s_state", ValueType::kString, 4},
                       {"s_city", ValueType::kString, 10},
                       {"s_market_id", ValueType::kInt32, 0},
                       {"s_number_employees", ValueType::kInt32, 0},
                       {"s_floor_space", ValueType::kInt32, 0},
                       {"s_manager", ValueType::kString, 12},
                       {"s_company_id", ValueType::kInt32, 0},
                       {"s_tax_percentage", ValueType::kDouble, 0},
                       {"s_division_id", ValueType::kInt32, 0}}));
  std::vector<Row> rows;
  for (int i = 0; i < kNumStores; ++i) {
    rows.push_back({Value::Int64(i), Value::String(kStates[rng->Uniform(0, 19)]),
                    Value::String("city" + std::to_string(rng->Uniform(0, 19))),
                    Value::Int32(static_cast<int32_t>(rng->Uniform(1, 10))),
                    Value::Int32(static_cast<int32_t>(rng->Uniform(50, 300))),
                    Value::Int32(static_cast<int32_t>(rng->Uniform(5000, 9000))),
                    Value::String(rng->String(10)),
                    Value::Int32(static_cast<int32_t>(rng->Uniform(1, 5))),
                    Value::Double(rng->Uniform(0, 11) / 100.0),
                    Value::Int32(static_cast<int32_t>(rng->Uniform(1, 3)))});
  }
  t.value()->BulkLoad(rows);
}

void LoadSmallDims(Database* db, Rng* rng) {
  {
    auto t = db->CreateTable(
        "household_demographics",
        Schema({{"hd_demo_sk", ValueType::kInt64, 0},
                {"hd_income_band_sk", ValueType::kInt32, 0},
                {"hd_buy_potential", ValueType::kString, 8},
                {"hd_dep_count", ValueType::kInt32, 0},
                {"hd_vehicle_count", ValueType::kInt32, 0}}));
    static const char* kPot[] = {"0-500", "501-1000", "1001-5000", ">10000",
                                 "5001-10000", "Unknown"};
    std::vector<Row> rows;
    for (int i = 0; i < kNumHdemo; ++i) {
      rows.push_back({Value::Int64(i),
                      Value::Int32(static_cast<int32_t>(rng->Uniform(1, 20))),
                      Value::String(kPot[rng->Uniform(0, 5)]),
                      Value::Int32(static_cast<int32_t>(rng->Uniform(0, 9))),
                      Value::Int32(static_cast<int32_t>(rng->Uniform(0, 4)))});
    }
    t.value()->BulkLoad(rows);
  }
  {
    auto t = db->CreateTable(
        "promotion", Schema({{"p_promo_sk", ValueType::kInt64, 0},
                             {"p_channel_email", ValueType::kInt32, 0},
                             {"p_channel_tv", ValueType::kInt32, 0},
                             {"p_cost", ValueType::kDouble, 0},
                             {"p_response_target", ValueType::kInt32, 0},
                             {"p_promo_name", ValueType::kString, 10}}));
    std::vector<Row> rows;
    for (int i = 0; i < kNumPromo; ++i) {
      rows.push_back({Value::Int64(i),
                      Value::Int32(static_cast<int32_t>(rng->Uniform(0, 1))),
                      Value::Int32(static_cast<int32_t>(rng->Uniform(0, 1))),
                      Value::Double(rng->UniformReal(100, 5000)),
                      Value::Int32(static_cast<int32_t>(rng->Uniform(0, 1))),
                      Value::String("promo" + std::to_string(i))});
    }
    t.value()->BulkLoad(rows);
  }
  {
    auto t = db->CreateTable(
        "warehouse", Schema({{"w_warehouse_sk", ValueType::kInt64, 0},
                             {"w_state", ValueType::kString, 4},
                             {"w_sq_ft", ValueType::kInt32, 0},
                             {"w_city", ValueType::kString, 10},
                             {"w_county", ValueType::kString, 10},
                             {"w_country", ValueType::kString, 14}}));
    std::vector<Row> rows;
    for (int i = 0; i < kNumWarehouses; ++i) {
      rows.push_back({Value::Int64(i), Value::String(kStates[rng->Uniform(0, 19)]),
                      Value::Int32(static_cast<int32_t>(rng->Uniform(50000, 900000))),
                      Value::String("city" + std::to_string(rng->Uniform(0, 9))),
                      Value::String(rng->String(8)),
                      Value::String("United States")});
    }
    t.value()->BulkLoad(rows);
  }
  {
    auto t = db->CreateTable(
        "customer_address",
        Schema({{"ca_address_sk", ValueType::kInt64, 0},
                {"ca_state", ValueType::kString, 4},
                {"ca_city", ValueType::kString, 10},
                {"ca_zip", ValueType::kInt32, 0},
                {"ca_gmt_offset", ValueType::kInt32, 0},
                {"ca_county", ValueType::kString, 10},
                {"ca_country", ValueType::kString, 14},
                {"ca_street_name", ValueType::kString, 12}}));
    std::vector<Row> rows;
    for (int i = 0; i < kNumAddresses; ++i) {
      rows.push_back({Value::Int64(i), Value::String(kStates[rng->Uniform(0, 19)]),
                      Value::String("city" + std::to_string(rng->Uniform(0, 199))),
                      Value::Int32(static_cast<int32_t>(rng->Uniform(10000, 99999))),
                      Value::Int32(static_cast<int32_t>(rng->Uniform(-8, -5))),
                      Value::String(rng->String(8)),
                      Value::String("United States"),
                      Value::String(rng->String(10))});
    }
    t.value()->BulkLoad(rows);
  }
}

/// Sales facts share a layout; `rows` rows into `name`.
void LoadSalesFact(Database* db, const std::string& name, uint64_t rows,
                   Rng* rng) {
  auto t = db->CreateTable(
      name, Schema({{"sold_date_sk", ValueType::kInt64, 0},
                    {"sold_time_sk", ValueType::kInt64, 0},
                    {"item_sk", ValueType::kInt64, 0},
                    {"customer_sk", ValueType::kInt64, 0},
                    {"cdemo_sk", ValueType::kInt64, 0},
                    {"hdemo_sk", ValueType::kInt64, 0},
                    {"addr_sk", ValueType::kInt64, 0},
                    {"store_sk", ValueType::kInt64, 0},
                    {"promo_sk", ValueType::kInt64, 0},
                    {"ticket_number", ValueType::kInt64, 0},
                    {"quantity", ValueType::kInt32, 0},
                    {"wholesale_cost", ValueType::kDouble, 0},
                    {"list_price", ValueType::kDouble, 0},
                    {"sales_price", ValueType::kDouble, 0},
                    {"ext_discount_amt", ValueType::kDouble, 0},
                    {"ext_sales_price", ValueType::kDouble, 0},
                    {"net_paid", ValueType::kDouble, 0},
                    {"net_profit", ValueType::kDouble, 0}}));
  Table* tab = t.value();
  std::vector<std::vector<int64_t>> cols(ss::kNumCols);
  for (auto& c : cols) c.reserve(rows);
  int64_t ticket = 1;
  for (uint64_t i = 0; i < rows; ++i) {
    if (rng->Flip(0.3)) ++ticket;
    const double price = rng->UniformReal(1.0, 300.0);
    const int qty = static_cast<int>(rng->Uniform(1, 100));
    // Sales skew toward recent dates and popular items (Zipfian).
    cols[ss::kSoldDateSk].push_back(rng->Uniform(0, kNumDates - 1));
    cols[ss::kSoldTimeSk].push_back(rng->Uniform(0, 1439));
    cols[ss::kItemSk].push_back(rng->Zipf(kNumItems, 0.5));
    cols[ss::kCustomerSk].push_back(rng->Zipf(kNumCustomers, 0.3));
    cols[ss::kCdemoSk].push_back(rng->Uniform(0, 1999));
    cols[ss::kHdemoSk].push_back(rng->Uniform(0, kNumHdemo - 1));
    cols[ss::kAddrSk].push_back(rng->Uniform(0, kNumAddresses - 1));
    cols[ss::kStoreSk].push_back(rng->Uniform(0, kNumStores - 1));
    cols[ss::kPromoSk].push_back(rng->Uniform(0, kNumPromo - 1));
    cols[ss::kTicketNumber].push_back(ticket);
    cols[ss::kQuantity].push_back(qty);
    cols[ss::kWholesaleCost].push_back(
        tab->PackValue(ss::kWholesaleCost, Value::Double(price * 0.6)));
    cols[ss::kListPrice].push_back(
        tab->PackValue(ss::kListPrice, Value::Double(price * 1.2)));
    cols[ss::kSalesPrice].push_back(
        tab->PackValue(ss::kSalesPrice, Value::Double(price)));
    cols[ss::kExtDiscountAmt].push_back(tab->PackValue(
        ss::kExtDiscountAmt, Value::Double(price * qty * 0.05)));
    cols[ss::kExtSalesPrice].push_back(
        tab->PackValue(ss::kExtSalesPrice, Value::Double(price * qty)));
    cols[ss::kNetPaid].push_back(
        tab->PackValue(ss::kNetPaid, Value::Double(price * qty * 0.95)));
    cols[ss::kNetProfit].push_back(tab->PackValue(
        ss::kNetProfit, Value::Double(price * qty * rng->UniformReal(-0.1, 0.4))));
  }
  tab->BulkLoadPacked(std::move(cols));
}

// ---------------- query templates ----------------

JoinClause JoinDate(int fact_col, std::vector<Pred> preds) {
  JoinClause jc;
  jc.dim.table = "date_dim";
  jc.dim.preds = std::move(preds);
  jc.base_col = fact_col;
  jc.dim_col = dd::kDateSk;
  return jc;
}

Expr Revenue() {
  return Expr::Col(0, ss::kExtSalesPrice);
}

}  // namespace

GeneratedWorkload MakeTpcds(Database* db, const TpcdsOptions& opts) {
  Rng rng(opts.seed);
  LoadDateDim(db);
  LoadItem(db, &rng);
  LoadCustomer(db, &rng);
  LoadStore(db, &rng);
  LoadSmallDims(db, &rng);
  LoadSalesFact(db, "store_sales", opts.fact_rows, &rng);
  LoadSalesFact(db, "web_sales", opts.fact_rows / 2, &rng);
  LoadSalesFact(db, "catalog_sales", opts.fact_rows * 7 / 10, &rng);

  GeneratedWorkload w;
  w.tables = {"date_dim", "item", "customer", "store",
              "household_demographics", "promotion", "warehouse",
              "customer_address", "store_sales", "web_sales",
              "catalog_sales"};

  static const char* kFacts[] = {"store_sales", "web_sales", "catalog_sales"};
  Rng qr(opts.seed + 1);
  for (int qi = 0; qi < opts.num_queries; ++qi) {
    const std::string fact = kFacts[qr.Uniform(0, 2)];
    Query q;
    q.id = "TPCDS-" + std::to_string(qi + 1);
    q.base.table = fact;
    const int tmpl = static_cast<int>(qr.Uniform(0, 9));
    const int year = static_cast<int>(qr.Uniform(kYearLo, kYearHi));
    const int moy = static_cast<int>(qr.Uniform(1, 12));
    switch (tmpl) {
      case 0:
      case 1: {
        // Selective star: one month of one year, one item category, brand
        // breakdown (the Q54/Q72-like shape where hybrid plans shine).
        q.joins.push_back(JoinDate(
            ss::kSoldDateSk, {Pred::Eq(dd::kYear, Value::Int32(year)),
                              Pred::Eq(dd::kMoy, Value::Int32(moy))}));
        JoinClause ji;
        ji.dim.table = "item";
        ji.dim.preds = {Pred::Eq(it::kCategoryId,
                                 Value::Int32(static_cast<int32_t>(qr.Uniform(1, 10))))};
        ji.base_col = ss::kItemSk;
        ji.dim_col = it::kItemSk;
        q.joins.push_back(ji);
        q.aggs = {AggSpec::Sum(Revenue(), "rev"),
                  AggSpec::Sum(Expr::Col(0, ss::kQuantity), "qty")};
        q.group_by = {ColRef{2, it::kBrandId}};
        break;
      }
      case 2: {
        // Year-level star: one year of sales by store.
        q.joins.push_back(JoinDate(ss::kSoldDateSk,
                                   {Pred::Eq(dd::kYear, Value::Int32(year))}));
        q.aggs = {AggSpec::Sum(Revenue(), "rev")};
        q.group_by = {ColRef{0, ss::kStoreSk}};
        break;
      }
      case 3: {
        // Full-table rollup: total revenue by item (large scan; CSI wins).
        q.aggs = {AggSpec::Sum(Revenue(), "rev"),
                  AggSpec::Avg(Expr::Col(0, ss::kNetProfit))};
        q.group_by = {ColRef{0, ss::kItemSk}};
        break;
      }
      case 4: {
        // Ticket lookup: a handful of tickets (point-ish fact predicate).
        const int64_t t0 = qr.Uniform(1, static_cast<int64_t>(opts.fact_rows * 3 / 10));
        q.base.preds = {Pred::Between(ss::kTicketNumber, Value::Int64(t0),
                                      Value::Int64(t0 + 20))};
        q.aggs = {AggSpec::Sum(Revenue(), "rev"), AggSpec::CountStar()};
        break;
      }
      case 5: {
        // Customer activity: selective customer-dimension predicate.
        JoinClause jc;
        jc.dim.table = "customer";
        jc.dim.preds = {
            Pred::Eq(cu::kBirthYear,
                     Value::Int32(static_cast<int32_t>(qr.Uniform(1930, 2000)))),
            Pred::Eq(cu::kBirthMonth, Value::Int32(moy))};
        jc.base_col = ss::kCustomerSk;
        jc.dim_col = cu::kCustomerSk;
        q.joins.push_back(jc);
        q.aggs = {AggSpec::Sum(Revenue(), "rev"), AggSpec::CountStar()};
        break;
      }
      case 6: {
        // State report: store-state slice by month.
        JoinClause js;
        js.dim.table = "store";
        js.dim.preds = {Pred::Eq(st::kState,
                                 Value::String(kStates[qr.Uniform(0, 19)]))};
        js.base_col = ss::kStoreSk;
        js.dim_col = st::kStoreSk;
        q.joins.push_back(js);
        q.joins.push_back(JoinDate(ss::kSoldDateSk,
                                   {Pred::Eq(dd::kYear, Value::Int32(year))}));
        q.aggs = {AggSpec::Sum(Revenue(), "rev")};
        q.group_by = {ColRef{1, st::kCity}};
        break;
      }
      case 7: {
        // Promotion effect: half the promotions, full date range.
        JoinClause jp;
        jp.dim.table = "promotion";
        jp.dim.preds = {Pred::Eq(4, Value::Int32(0))};  // p_response_target
        jp.base_col = ss::kPromoSk;
        jp.dim_col = 0;
        q.joins.push_back(jp);
        q.aggs = {AggSpec::Sum(Revenue(), "rev"),
                  AggSpec::Sum(Expr::Col(0, ss::kExtDiscountAmt), "disc")};
        break;
      }
      case 8: {
        // Quarter window scan with household slice.
        q.joins.push_back(JoinDate(
            ss::kSoldDateSk, {Pred::Eq(dd::kYear, Value::Int32(year)),
                              Pred::Eq(dd::kQoy, Value::Int32(
                                  static_cast<int32_t>(qr.Uniform(1, 4))))}));
        JoinClause jh;
        jh.dim.table = "household_demographics";
        jh.dim.preds = {Pred::Eq(3, Value::Int32(  // hd_dep_count
            static_cast<int32_t>(qr.Uniform(0, 9))))};
        jh.base_col = ss::kHdemoSk;
        jh.dim_col = 0;
        q.joins.push_back(jh);
        q.aggs = {AggSpec::Sum(Revenue(), "rev"), AggSpec::CountStar()};
        break;
      }
      default: {
        // Report query: one month's rows ordered by profit (sort shape).
        q.joins.push_back(JoinDate(
            ss::kSoldDateSk, {Pred::Eq(dd::kYear, Value::Int32(year)),
                              Pred::Eq(dd::kMoy, Value::Int32(moy))}));
        q.select_cols = {ColRef{0, ss::kTicketNumber},
                         ColRef{0, ss::kNetProfit}};
        q.order_by = {ColRef{0, ss::kNetProfit}};
        q.limit = 100;
        break;
      }
    }
    w.queries.push_back(std::move(q));
  }
  return w;
}

}  // namespace hd
