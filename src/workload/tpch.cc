#include "workload/tpch.h"

#include "common/rng.h"

namespace hd {

Table* MakeLineitem(Database* db, const std::string& name,
                    const TpchOptions& opts) {
  using L = LineitemCols;
  std::vector<Column> cols(L::kNumCols);
  cols[L::kOrderKey] = {"l_orderkey", ValueType::kInt64, 0};
  cols[L::kLineNumber] = {"l_linenumber", ValueType::kInt32, 0};
  cols[L::kQuantity] = {"l_quantity", ValueType::kDouble, 0};
  cols[L::kExtendedPrice] = {"l_extendedprice", ValueType::kDouble, 0};
  cols[L::kDiscount] = {"l_discount", ValueType::kDouble, 0};
  cols[L::kTax] = {"l_tax", ValueType::kDouble, 0};
  cols[L::kShipDate] = {"l_shipdate", ValueType::kDate, 0};
  cols[L::kCommitDate] = {"l_commitdate", ValueType::kDate, 0};
  cols[L::kReceiptDate] = {"l_receiptdate", ValueType::kDate, 0};
  cols[L::kSuppKey] = {"l_suppkey", ValueType::kInt64, 0};
  cols[L::kPartKey] = {"l_partkey", ValueType::kInt64, 0};
  cols[L::kReturnFlag] = {"l_returnflag", ValueType::kString, 2};
  cols[L::kLineStatus] = {"l_linestatus", ValueType::kString, 2};
  cols[L::kShipMode] = {"l_shipmode", ValueType::kString, 8};
  auto res = db->CreateTable(name, Schema(std::move(cols)));
  if (!res.ok()) return nullptr;
  Table* t = res.value();

  static const char* kFlags[] = {"A", "N", "R"};
  static const char* kStatus[] = {"F", "O"};
  static const char* kModes[] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR",
                                 "SHIP", "TRUCK"};
  Rng rng(opts.seed);
  std::vector<std::vector<int64_t>> data(L::kNumCols);
  for (auto& d : data) d.reserve(opts.rows);
  int64_t orderkey = 1;
  int line = 1;
  int lines_this_order =
      static_cast<int>(rng.Uniform(1, 2 * opts.lines_per_order - 1));
  for (uint64_t i = 0; i < opts.rows; ++i) {
    if (line > lines_this_order) {
      ++orderkey;
      line = 1;
      lines_this_order =
          static_cast<int>(rng.Uniform(1, 2 * opts.lines_per_order - 1));
    }
    data[L::kOrderKey].push_back(orderkey);
    data[L::kLineNumber].push_back(line++);
    data[L::kQuantity].push_back(
        t->PackValue(L::kQuantity, Value::Double(rng.Uniform(1, 50))));
    data[L::kExtendedPrice].push_back(t->PackValue(
        L::kExtendedPrice, Value::Double(rng.UniformReal(900.0, 105000.0))));
    data[L::kDiscount].push_back(t->PackValue(
        L::kDiscount, Value::Double(rng.Uniform(0, 10) / 100.0)));
    data[L::kTax].push_back(
        t->PackValue(L::kTax, Value::Double(rng.Uniform(0, 8) / 100.0)));
    const int32_t ship =
        static_cast<int32_t>(rng.Uniform(kTpchShipDateLo, kTpchShipDateHi));
    data[L::kShipDate].push_back(ship);
    data[L::kCommitDate].push_back(ship + rng.Uniform(-30, 30));
    data[L::kReceiptDate].push_back(ship + rng.Uniform(1, 30));
    data[L::kSuppKey].push_back(rng.Uniform(1, 10000));
    data[L::kPartKey].push_back(rng.Uniform(1, 200000));
    data[L::kReturnFlag].push_back(
        t->PackValue(L::kReturnFlag, Value::String(kFlags[rng.Uniform(0, 2)])));
    data[L::kLineStatus].push_back(t->PackValue(
        L::kLineStatus, Value::String(kStatus[rng.Uniform(0, 1)])));
    data[L::kShipMode].push_back(
        t->PackValue(L::kShipMode, Value::String(kModes[rng.Uniform(0, 6)])));
  }
  t->BulkLoadPacked(std::move(data));
  return t;
}

Query TpchQ4(const std::string& table, int64_t n_rows, int32_t shipdate) {
  using L = LineitemCols;
  Query q;
  q.id = "Q4";
  q.kind = Query::Kind::kUpdate;
  q.base.table = table;
  q.base.preds.push_back(Pred::Eq(L::kShipDate, Value::Date(shipdate)));
  q.limit = n_rows;
  q.sets.push_back(UpdateSet::Add(L::kQuantity, 1.0));
  q.sets.push_back(UpdateSet::Add(L::kExtendedPrice, 0.01));
  return q;
}

Query TpchQ5(const std::string& table, int32_t shipdate) {
  return TpchQ5Range(table, shipdate, 1);
}

Query TpchQ5Range(const std::string& table, int32_t shipdate, int days) {
  using L = LineitemCols;
  Query q;
  q.id = "Q5";
  q.base.table = table;
  q.base.preds.push_back(Pred::Between(L::kShipDate, Value::Date(shipdate),
                                       Value::Date(shipdate + days)));
  q.aggs.push_back(AggSpec::Sum(Expr::Col(0, L::kQuantity), "sum_quantity"));
  q.aggs.push_back(AggSpec::Sum(
      Expr::Mul(Expr::Col(0, L::kExtendedPrice),
                Expr::Sub(Expr::Const(1.0), Expr::Col(0, L::kDiscount))),
      "sum_revenue"));
  return q;
}

}  // namespace hd
