#include "workload/mixed_driver.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"

namespace hd {

double OpStats::median_ms() const {
  if (latencies_ms.empty()) return 0;
  std::vector<double> v = latencies_ms;
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  return v[v.size() / 2];
}

double OpStats::p95_ms() const {
  if (latencies_ms.empty()) return 0;
  std::vector<double> v = latencies_ms;
  const size_t k = std::min(v.size() - 1, v.size() * 95 / 100);
  std::nth_element(v.begin(), v.begin() + k, v.end());
  return v[k];
}

double MixedResult::OverallMeanMs() const {
  double total = 0;
  uint64_t n = 0;
  for (const auto& [t, s] : per_type) {
    total += s.total_ms;
    n += s.count;
  }
  return n ? total / n : 0;
}

MixedResult RunMixedWorkload(Database* db, TransactionManager* txns,
                             const OpGenerator& gen, const MixedOptions& opts) {
  return RunMixedTxnWorkload(
      db, txns,
      [&gen](int tid, Rng* rng) {
        TxnOp op;
        op.statements.push_back(gen(tid, rng));
        op.id = op.statements[0].id;
        return op;
      },
      opts);
}

MixedResult RunMixedTxnWorkload(Database* db, TransactionManager* txns,
                                const TxnGenerator& gen,
                                const MixedOptions& opts) {
  MixedResult result;
  std::mutex result_mu;
  std::atomic<int> ops_left{opts.total_ops};
  Optimizer optimizer(db);
  Timer wall;

  auto worker = [&](int tid) {
    Rng rng(opts.seed + tid * 7919);
    std::map<std::string, OpStats> local;
    while (ops_left.fetch_sub(1) > 0) {
      TxnOp op = gen(tid, &rng);
      Timer op_timer;
      uint64_t aborts = 0;
      for (int attempt = 0; attempt < opts.max_retries; ++attempt) {
        auto txn = txns->Begin(opts.isolation);
        Configuration cfg = Configuration::FromCatalog(*db);
        PlanOptions popts;
        popts.max_dop = opts.max_dop_per_query;
        bool aborted = false;
        bool failed = false;
        for (const Query& q : op.statements) {
          auto plan = optimizer.Plan(q, cfg, popts);
          if (!plan.ok()) {
            failed = true;
            break;
          }
          ExecContext ctx;
          ctx.db = db;
          ctx.max_dop = opts.max_dop_per_query;
          ctx.txns = txns;
          ctx.txn = txn.get();
          ctx.lock_timeout_ms = opts.lock_timeout_ms;
          Executor ex(ctx);
          QueryResult r = ex.Execute(q, plan->plan);
          if (r.status.IsAborted()) {
            aborted = true;
            break;
          }
        }
        if (failed) {
          txns->Abort(txn.get());
          break;
        }
        if (aborted) {
          txns->Abort(txn.get());
          ++aborts;
          continue;  // retry the whole transaction
        }
        txns->Commit(txn.get());
        break;
      }
      OpStats& st = local[op.id];
      st.count += 1;
      st.aborts += aborts;
      const double ms = op_timer.ElapsedMs();
      st.total_ms += ms;
      st.latencies_ms.push_back(ms);
    }
    std::lock_guard<std::mutex> g(result_mu);
    for (auto& [type, st] : local) {
      OpStats& dst = result.per_type[type];
      dst.count += st.count;
      dst.aborts += st.aborts;
      dst.total_ms += st.total_ms;
      dst.latencies_ms.insert(dst.latencies_ms.end(), st.latencies_ms.begin(),
                              st.latencies_ms.end());
      result.total_aborts += st.aborts;
    }
  };

  // One morsel per simulated client; each runs its whole op stream. The
  // shared pool supplies the threads (its size, not opts.threads, bounds
  // hardware concurrency — `threads` keeps its workload meaning of
  // concurrent client sessions).
  ThreadPool::Global().ParallelFor(
      static_cast<uint64_t>(std::max(0, opts.threads)), opts.threads,
      [&](int /*slot*/, uint64_t tid) { worker(static_cast<int>(tid)); });
  result.wall_ms = wall.ElapsedMs();
  txns->GarbageCollect();
  return result;
}

}  // namespace hd
