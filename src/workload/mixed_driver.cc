#include "workload/mixed_driver.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "common/backoff.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"

namespace hd {

double OpStats::PercentileMs(double p) const {
  if (latencies_ms.empty()) return 0;
  std::vector<double> v = latencies_ms;
  const size_t k =
      std::min(v.size() - 1, static_cast<size_t>(v.size() * p));
  std::nth_element(v.begin(), v.begin() + k, v.end());
  return v[k];
}

double MixedResult::OverallMeanMs() const {
  double total = 0;
  uint64_t n = 0;
  for (const auto& [t, s] : per_type) {
    total += s.total_ms;
    n += s.count;
  }
  return n ? total / n : 0;
}

MixedResult RunMixedWorkload(Database* db, TransactionManager* txns,
                             const OpGenerator& gen, const MixedOptions& opts) {
  return RunMixedTxnWorkload(
      db, txns,
      [&gen](int tid, Rng* rng) {
        TxnOp op;
        op.statements.push_back(gen(tid, rng));
        op.id = op.statements[0].id;
        return op;
      },
      opts);
}

MixedResult RunMixedTxnWorkload(Database* db, TransactionManager* txns,
                                const TxnGenerator& gen,
                                const MixedOptions& opts) {
  MixedResult result;
  std::mutex result_mu;
  std::atomic<int> ops_left{opts.total_ops};
  Optimizer optimizer(db);
  Timer wall;

  auto worker = [&](int tid) {
    Rng rng(opts.seed + tid * 7919);
    std::map<std::string, OpStats> local;
    QueryMetrics local_metrics;
    Status local_first;
    while (ops_left.fetch_sub(1) > 0) {
      TxnOp op = gen(tid, &rng);
      Timer op_timer;
      uint64_t aborts = 0;
      // Seed the jitter per (run, client) so two victims of the same
      // deadlock desynchronize, while reruns stay byte-identical.
      Backoff backoff(opts.backoff_base_ms, opts.backoff_cap_ms,
                      opts.max_retries,
                      opts.seed ^ (static_cast<uint64_t>(tid) * 0x9e3779b9ull));
      Status op_status;
      while (true) {
        auto txn = txns->Begin(opts.isolation);
        Configuration cfg = Configuration::FromCatalog(*db);
        PlanOptions popts;
        popts.max_dop = opts.max_dop_per_query;
        Status stmt_status;
        for (const Query& q : op.statements) {
          auto plan = optimizer.Plan(q, cfg, popts);
          if (!plan.ok()) {
            stmt_status = plan.status();
            break;
          }
          ExecContext ctx;
          ctx.db = db;
          ctx.max_dop = opts.max_dop_per_query;
          ctx.txns = txns;
          ctx.txn = txn.get();
          ctx.lock_timeout_ms = opts.lock_timeout_ms;
          Executor ex(ctx);
          QueryResult r = ex.Execute(q, plan->plan);
          local_metrics.Merge(r.metrics);
          if (!r.status.ok()) {
            // Any statement failure aborts the transaction: committing a
            // partially-applied multi-statement op would persist half its
            // writes.
            stmt_status = r.status;
            break;
          }
        }
        if (stmt_status.ok()) {
          // A commit failure (durability unknown) is terminal for the op,
          // never retried: the commit record may have reached disk, and a
          // rerun landing after it would double-apply on recovery replay.
          Status cs = txns->Commit(txn.get());
          if (!cs.ok()) op_status = std::move(cs);
          break;
        }
        txns->Abort(txn.get());
        if (!stmt_status.IsRetryable()) {
          op_status = std::move(stmt_status);
          break;
        }
        if (backoff.Exhausted()) {
          op_status = Status::ResourceExhausted(
              "retry budget exhausted after " +
              std::to_string(backoff.attempts()) +
              " attempts; last: " + stmt_status.ToString());
          break;
        }
        ++aborts;
        backoff.SleepNext();
      }
      OpStats& st = local[op.id];
      st.count += 1;
      st.aborts += aborts;
      st.txn_retries += aborts;
      st.backoff_ms += backoff.total_backoff_ms();
      if (!op_status.ok()) {
        st.failures += 1;
        if (op_status.IsResourceExhausted()) st.exhausted += 1;
        if (local_first.ok()) local_first = std::move(op_status);
      }
      const double ms = op_timer.ElapsedMs();
      st.total_ms += ms;
      st.latencies_ms.push_back(ms);
      st.completion_ms.push_back(wall.ElapsedMs());
    }
    local_metrics.txn_retries +=
        [&] {
          uint64_t n = 0;
          for (const auto& [t, s] : local) n += s.txn_retries;
          return n;
        }();
    local_metrics.backoff_ns += [&] {
      double total = 0;
      for (const auto& [t, s] : local) total += s.backoff_ms;
      return static_cast<uint64_t>(total * 1e6);
    }();
    std::lock_guard<std::mutex> g(result_mu);
    for (auto& [type, st] : local) {
      OpStats& dst = result.per_type[type];
      dst.count += st.count;
      dst.aborts += st.aborts;
      dst.txn_retries += st.txn_retries;
      dst.backoff_ms += st.backoff_ms;
      dst.failures += st.failures;
      dst.exhausted += st.exhausted;
      dst.total_ms += st.total_ms;
      dst.latencies_ms.insert(dst.latencies_ms.end(), st.latencies_ms.begin(),
                              st.latencies_ms.end());
      dst.completion_ms.insert(dst.completion_ms.end(),
                               st.completion_ms.begin(),
                               st.completion_ms.end());
      result.total_aborts += st.aborts;
      result.total_retries += st.txn_retries;
      result.total_failures += st.failures;
      result.total_exhausted += st.exhausted;
    }
    result.metrics.Merge(local_metrics);
    if (result.first_error.ok() && !local_first.ok()) {
      result.first_error = std::move(local_first);
    }
  };

  // Concurrent analytic streams: dedicated OS threads (not pool morsels —
  // they must overlap the transactional clients, not queue behind them)
  // running non-transactional statements closed-loop until the
  // transactional stream drains. do/while so every stream completes at
  // least one statement even in degenerate configs.
  std::atomic<bool> analytic_stop{false};
  auto analytic_worker = [&](int aid) {
    const int tid = opts.threads + aid;
    Rng rng(opts.seed + static_cast<uint64_t>(tid) * 7919);
    std::map<std::string, OpStats> local;
    QueryMetrics local_metrics;
    Status local_first;
    do {
      Query q = opts.analytic_gen(tid, &rng);
      Timer op_timer;
      Configuration cfg = Configuration::FromCatalog(*db);
      PlanOptions popts;
      popts.max_dop = opts.max_dop_per_query;
      auto plan = optimizer.Plan(q, cfg, popts);
      Status op_status = plan.ok() ? Status::OK() : plan.status();
      if (plan.ok()) {
        ExecContext ctx;
        ctx.db = db;
        ctx.max_dop = opts.max_dop_per_query;
        ctx.scan_scheduler = opts.scan_scheduler;
        ctx.admission = opts.admission;
        Executor ex(ctx);
        QueryResult r = ex.Execute(q, plan->plan);
        local_metrics.Merge(r.metrics);
        op_status = std::move(r.status);
      }
      OpStats& st = local[q.id];
      st.count += 1;
      if (!op_status.ok()) {
        st.failures += 1;
        if (op_status.IsResourceExhausted()) st.exhausted += 1;
        if (local_first.ok()) local_first = std::move(op_status);
      }
      const double ms = op_timer.ElapsedMs();
      st.total_ms += ms;
      st.latencies_ms.push_back(ms);
      st.completion_ms.push_back(wall.ElapsedMs());
    } while (!analytic_stop.load(std::memory_order_relaxed));
    std::lock_guard<std::mutex> g(result_mu);
    for (auto& [type, st] : local) {
      OpStats& dst = result.analytic[type];
      dst.count += st.count;
      dst.failures += st.failures;
      dst.exhausted += st.exhausted;
      dst.total_ms += st.total_ms;
      dst.latencies_ms.insert(dst.latencies_ms.end(), st.latencies_ms.begin(),
                              st.latencies_ms.end());
      dst.completion_ms.insert(dst.completion_ms.end(),
                               st.completion_ms.begin(),
                               st.completion_ms.end());
    }
    result.metrics.Merge(local_metrics);
    if (result.first_error.ok() && !local_first.ok()) {
      result.first_error = std::move(local_first);
    }
  };
  std::vector<std::thread> analytic_clients;
  if (opts.analytic_threads > 0 && opts.analytic_gen) {
    analytic_clients.reserve(opts.analytic_threads);
    for (int a = 0; a < opts.analytic_threads; ++a) {
      analytic_clients.emplace_back(analytic_worker, a);
    }
  }

  // One morsel per simulated client; each runs its whole op stream. The
  // shared pool supplies the threads (its size, not opts.threads, bounds
  // hardware concurrency — `threads` keeps its workload meaning of
  // concurrent client sessions).
  ThreadPool::Global().ParallelFor(
      static_cast<uint64_t>(std::max(0, opts.threads)), opts.threads,
      [&](int /*slot*/, uint64_t tid) { worker(static_cast<int>(tid)); });
  analytic_stop.store(true, std::memory_order_relaxed);
  for (auto& t : analytic_clients) t.join();
  result.wall_ms = wall.ElapsedMs();
  txns->GarbageCollect();
  if (opts.interval_ms > 0 && result.wall_ms > 0) {
    const double width = opts.interval_ms;
    const size_t n =
        static_cast<size_t>(result.wall_ms / width) + 1;
    result.intervals.resize(n);
    for (size_t i = 0; i < n; ++i) {
      result.intervals[i].start_ms = static_cast<double>(i) * width;
      result.intervals[i].end_ms = static_cast<double>(i + 1) * width;
    }
    for (const auto* map : {&result.per_type, &result.analytic}) {
      for (const auto& [type, st] : *map) {
        for (double t : st.completion_ms) {
          size_t i = static_cast<size_t>(t / width);
          if (i >= n) i = n - 1;  // completion raced past the final wall read
          result.intervals[i].ops += 1;
          result.intervals[i].ops_per_type[type] += 1;
        }
      }
    }
    for (auto& iv : result.intervals) {
      // The last window is usually partial; scale by its real span.
      const double span = std::min(iv.end_ms, result.wall_ms) - iv.start_ms;
      iv.throughput_ops_s = span > 0 ? iv.ops * 1000.0 / span : 0;
    }
  }
  return result;
}

}  // namespace hd
