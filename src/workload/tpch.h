// TPC-H-like lineitem generator and the paper's Q4/Q5 statements
// (Sections 3.3 and 3.4).
#pragma once

#include <string>

#include "catalog/database.h"
#include "exec/query.h"

namespace hd {

/// Column indices of the generated lineitem table.
struct LineitemCols {
  static constexpr int kOrderKey = 0;
  static constexpr int kLineNumber = 1;
  static constexpr int kQuantity = 2;       // double
  static constexpr int kExtendedPrice = 3;  // double
  static constexpr int kDiscount = 4;       // double
  static constexpr int kTax = 5;            // double
  static constexpr int kShipDate = 6;       // date (days since epoch)
  static constexpr int kCommitDate = 7;
  static constexpr int kReceiptDate = 8;
  static constexpr int kSuppKey = 9;
  static constexpr int kPartKey = 10;
  static constexpr int kReturnFlag = 11;  // string
  static constexpr int kLineStatus = 12;  // string
  static constexpr int kShipMode = 13;    // string
  static constexpr int kNumCols = 14;
};

/// Shipdate domain: TPC-H dates span 1992-01-02 .. 1998-12-01.
constexpr int32_t kTpchShipDateLo = 8037;   // days since epoch
constexpr int32_t kTpchShipDateHi = 10561;

struct TpchOptions {
  uint64_t rows = 1u << 20;
  uint64_t seed = 7;
  /// Average lineitems per order (controls orderkey density).
  int lines_per_order = 4;
};

/// Create and bulk-load a lineitem-like table.
Table* MakeLineitem(Database* db, const std::string& name,
                    const TpchOptions& opts);

/// Q4: UPDATE TOP(n) SET l_quantity += 1, l_extendedprice += 0.01
///     WHERE l_shipdate = `shipdate`.
Query TpchQ4(const std::string& table, int64_t n_rows, int32_t shipdate);

/// Q5: SELECT sum(l_quantity), sum(l_extendedprice * (1 - l_discount))
///     WHERE l_shipdate BETWEEN d AND d+1.
Query TpchQ5(const std::string& table, int32_t shipdate);

/// Q5 generalized to a `days`-wide shipdate window (the mixed-workload
/// experiments scale the analytic window with the data).
Query TpchQ5Range(const std::string& table, int32_t shipdate, int days);

}  // namespace hd
