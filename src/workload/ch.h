// CH benchmark (Cole et al., DBTest'11): TPC-C transactions plus TPC-H-like
// analytic queries over the same data — the mixed-workload substrate of
// Section 5.2.2 / Figure 11.
//
// Simplifications (documented in DESIGN.md): composite TPC-C keys are
// denormalized into single synthetic uid columns (o_uid, ol_o_uid, ...) so
// the engine's single-column equi-joins apply; the H queries are
// single-fact/star reformulations of the CH query intents.
#pragma once

#include <atomic>
#include <memory>

#include "catalog/database.h"
#include "workload/mixed_driver.h"

namespace hd {

struct ChOptions {
  int warehouses = 4;
  int districts_per_wh = 10;
  int customers_per_district = 300;
  int initial_orders_per_district = 300;
  uint64_t seed = 42;
};

/// Column indices used by the generated schema.
struct ChCols {
  // order_line
  static constexpr int kOlOUid = 0, kOlNumber = 1, kOlIId = 2, kOlWId = 3,
                       kOlDId = 4, kOlQuantity = 5, kOlAmount = 6,
                       kOlDeliveryD = 7, kOlCUid = 8;
  // orders
  static constexpr int kOUid = 0, kOWId = 1, kODId = 2, kOCUid = 3,
                       kOEntryD = 4, kOCarrier = 5, kOOlCnt = 6;
  // customer
  static constexpr int kCUid = 0, kCWId = 1, kCDId = 2, kCBalance = 3,
                       kCYtd = 4, kCPaymentCnt = 5, kCDiscount = 6,
                       kCCredit = 7, kCLast = 8;
  // stock
  static constexpr int kSUid = 0, kSIId = 1, kSWId = 2, kSQuantity = 3,
                       kSYtd = 4, kSOrderCnt = 5;
  // item
  static constexpr int kIId = 0, kIImId = 1, kIPrice = 2, kIName = 3;
};

/// The CH driver state: schema + data + id allocators shared by the
/// transaction generators.
class ChBenchmark {
 public:
  /// Creates and loads all tables into `db`.
  ChBenchmark(Database* db, const ChOptions& opts);

  /// TPC-C-style transaction mix (NewOrder 45%, Payment 43%, OrderStatus
  /// 4%, Delivery 4%, StockLevel 4%) for C threads; thread 0 runs the
  /// H-like analytic queries round-robin (the paper dedicates resources
  /// to each component).
  TxnGenerator MakeGenerator();

  /// The H-like analytic query set (randomized parameters per call).
  std::vector<Query> AnalyticQueries(uint64_t seed) const;

  /// The full workload (C statements with weights + H queries) handed to
  /// the advisor for tuning.
  std::vector<Query> AdvisorWorkload() const;

  Database* db() const { return db_; }
  const ChOptions& options() const { return opts_; }
  int date_horizon() const { return date_hi_; }

 private:
  TxnOp NewOrder(Rng* rng);
  TxnOp Payment(Rng* rng);
  TxnOp OrderStatus(Rng* rng);
  TxnOp Delivery(Rng* rng);
  TxnOp StockLevel(Rng* rng);

  Database* db_;
  ChOptions opts_;
  int num_customers_ = 0;
  int num_items_ = 10000;
  int date_lo_ = 11000;
  int date_hi_ = 12000;
  std::shared_ptr<std::atomic<int64_t>> next_o_uid_;
  std::shared_ptr<std::atomic<int64_t>> next_ol_seq_;
};

}  // namespace hd
