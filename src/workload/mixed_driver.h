// Closed-loop multi-threaded mixed-workload driver (Sections 3.4, 5.2.2).
//
// Worker threads repeatedly draw a statement from a generator, run it in
// its own transaction at the configured isolation level, retry on
// deadlock-victim aborts, and record per-statement-type latencies.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "exec/query.h"
#include "txn/transaction.h"

namespace hd {

class ScanScheduler;
class AdmissionController;

/// Statement generator: called per operation with a thread-local RNG.
/// The returned Query's `id` labels its statistics bucket.
using OpGenerator = std::function<Query(int thread, Rng* rng)>;

struct MixedOptions {
  int threads = 10;
  /// Total operations across all threads.
  int total_ops = 2000;
  IsolationLevel isolation = IsolationLevel::kReadCommitted;
  int max_dop_per_query = 2;
  uint64_t seed = 99;
  int lock_timeout_ms = 200;
  /// Retry budget per operation: retryable failures (deadlock victim,
  /// transient I/O) are retried at most this many times, each preceded by
  /// a capped-exponential jittered backoff; exhaustion surfaces as
  /// kResourceExhausted in OpStats::exhausted / MixedResult::first_error.
  int max_retries = 20;
  double backoff_base_ms = 0.5;
  double backoff_cap_ms = 8.0;
  /// When > 0, the driver buckets operation completions into fixed wall
  /// clock windows of this width and reports a per-interval throughput
  /// series in MixedResult::intervals (tail-latency/throughput-over-time
  /// analysis; 0 disables the series).
  double interval_ms = 0;

  /// Concurrent analytic streams riding alongside the transactional mix:
  /// each thread runs `analytic_gen` statements closed-loop, OUTSIDE any
  /// transaction, until the transactional op stream drains (at least one
  /// statement per thread). Their stats land in MixedResult::analytic —
  /// separate from per_type so they do not skew the transactional
  /// latency comparisons.
  int analytic_threads = 0;
  OpGenerator analytic_gen;
  /// Shared-scan / admission wiring for the analytic streams (and any
  /// non-transactional statements); nullptr = private scans, no gate.
  ScanScheduler* scan_scheduler = nullptr;
  AdmissionController* admission = nullptr;
};

struct OpStats {
  uint64_t count = 0;
  uint64_t aborts = 0;
  /// Whole-transaction retries (== aborts that were retried) and the
  /// wall-clock time spent sleeping in backoff before those retries.
  uint64_t txn_retries = 0;
  double backoff_ms = 0;
  /// Operations that ultimately failed (non-retryable error or budget
  /// exhaustion); `exhausted` counts the kResourceExhausted subset.
  uint64_t failures = 0;
  uint64_t exhausted = 0;
  double total_ms = 0;
  std::vector<double> latencies_ms;
  /// Wall-clock completion time of each operation (ms since workload
  /// start), index-aligned with `latencies_ms`. Feeds the per-interval
  /// throughput series.
  std::vector<double> completion_ms;

  double mean_ms() const { return count ? total_ms / count : 0; }
  /// Latency percentile, p in [0, 1] (e.g. 0.999 for p999).
  double PercentileMs(double p) const;
  double median_ms() const { return PercentileMs(0.5); }
  double p95_ms() const { return PercentileMs(0.95); }
  double p99_ms() const { return PercentileMs(0.99); }
  double p999_ms() const { return PercentileMs(0.999); }
};

/// One wall-clock window of the workload: completions that landed in
/// [start_ms, end_ms) and the throughput they imply.
struct MixedInterval {
  double start_ms = 0;
  double end_ms = 0;
  uint64_t ops = 0;
  double throughput_ops_s = 0;
  std::map<std::string, uint64_t> ops_per_type;
};

struct MixedResult {
  std::map<std::string, OpStats> per_type;
  /// Stats of the concurrent analytic streams (MixedOptions::analytic_*),
  /// keyed by statement id. Excluded from OverallMeanMs and the total_*
  /// rollups; admission sheds show up here as failures/exhausted.
  std::map<std::string, OpStats> analytic;
  /// Per-interval throughput series (empty unless
  /// MixedOptions::interval_ms > 0).
  std::vector<MixedInterval> intervals;
  double wall_ms = 0;
  uint64_t total_aborts = 0;
  uint64_t total_retries = 0;
  uint64_t total_failures = 0;
  uint64_t total_exhausted = 0;
  /// Merged metrics of every statement executed (includes txn_retries /
  /// backoff_ns so the rollup reflects retry work).
  QueryMetrics metrics;
  /// First operation-level failure observed, OK when none (failed ops are
  /// also counted per-type in OpStats::failures).
  Status first_error;

  /// Mean latency across every operation executed.
  double OverallMeanMs() const;
};

MixedResult RunMixedWorkload(Database* db, TransactionManager* txns,
                             const OpGenerator& gen, const MixedOptions& opts);

/// A multi-statement transaction (e.g. a TPC-C NewOrder).
struct TxnOp {
  std::string id;
  std::vector<Query> statements;
};

using TxnGenerator = std::function<TxnOp(int thread, Rng* rng)>;

/// Like RunMixedWorkload, but each operation is a whole transaction: all
/// statements run under one Transaction; an abort retries the whole op.
MixedResult RunMixedTxnWorkload(Database* db, TransactionManager* txns,
                                const TxnGenerator& gen,
                                const MixedOptions& opts);

}  // namespace hd
