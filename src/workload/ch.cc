#include "workload/ch.h"

#include "common/rng.h"

namespace hd {

using C = ChCols;

ChBenchmark::ChBenchmark(Database* db, const ChOptions& opts)
    : db_(db), opts_(opts) {
  Rng rng(opts.seed);
  const int n_wh = opts.warehouses;
  const int n_dist = n_wh * opts.districts_per_wh;
  num_customers_ = n_dist * opts.customers_per_district;
  next_o_uid_ = std::make_shared<std::atomic<int64_t>>(0);
  next_ol_seq_ = std::make_shared<std::atomic<int64_t>>(0);

  // warehouse / district (tiny).
  {
    auto t = db->CreateTable("warehouse",
                             Schema({{"w_id", ValueType::kInt64, 0},
                                     {"w_tax", ValueType::kDouble, 0},
                                     {"w_ytd", ValueType::kDouble, 0},
                                     {"w_name", ValueType::kString, 8}}));
    std::vector<Row> rows;
    for (int i = 0; i < n_wh; ++i) {
      rows.push_back({Value::Int64(i), Value::Double(rng.Uniform(0, 20) / 100.0),
                      Value::Double(300000), Value::String(rng.String(6))});
    }
    t.value()->BulkLoad(rows);
  }
  {
    auto t = db->CreateTable("district",
                             Schema({{"d_uid", ValueType::kInt64, 0},
                                     {"d_w_id", ValueType::kInt64, 0},
                                     {"d_tax", ValueType::kDouble, 0},
                                     {"d_ytd", ValueType::kDouble, 0}}));
    std::vector<Row> rows;
    for (int i = 0; i < n_dist; ++i) {
      rows.push_back({Value::Int64(i), Value::Int64(i / opts.districts_per_wh),
                      Value::Double(rng.Uniform(0, 20) / 100.0),
                      Value::Double(30000)});
    }
    t.value()->BulkLoad(rows);
  }
  // customer.
  {
    auto t = db->CreateTable(
        "customer", Schema({{"c_uid", ValueType::kInt64, 0},
                            {"c_w_id", ValueType::kInt64, 0},
                            {"c_d_id", ValueType::kInt64, 0},
                            {"c_balance", ValueType::kDouble, 0},
                            {"c_ytd_payment", ValueType::kDouble, 0},
                            {"c_payment_cnt", ValueType::kInt32, 0},
                            {"c_discount", ValueType::kDouble, 0},
                            {"c_credit", ValueType::kString, 4},
                            {"c_last", ValueType::kString, 12}}));
    static const char* kLast[] = {"BAR", "OUGHT", "ABLE", "PRI", "PRES",
                                  "ESE", "ANTI", "CALLY", "ATION", "EING"};
    std::vector<Row> rows;
    for (int i = 0; i < num_customers_; ++i) {
      const int dist = i / opts.customers_per_district;
      rows.push_back(
          {Value::Int64(i), Value::Int64(dist / opts.districts_per_wh),
           Value::Int64(dist), Value::Double(-10.0), Value::Double(10.0),
           Value::Int32(1), Value::Double(rng.Uniform(0, 50) / 100.0),
           Value::String(rng.Flip(0.1) ? "BC" : "GC"),
           Value::String(std::string(kLast[rng.Uniform(0, 9)]) +
                         kLast[rng.Uniform(0, 9)])});
    }
    t.value()->BulkLoad(rows);
  }
  // item / stock.
  {
    auto t = db->CreateTable("item", Schema({{"i_id", ValueType::kInt64, 0},
                                             {"i_im_id", ValueType::kInt32, 0},
                                             {"i_price", ValueType::kDouble, 0},
                                             {"i_name", ValueType::kString, 14}}));
    std::vector<Row> rows;
    for (int i = 0; i < num_items_; ++i) {
      rows.push_back({Value::Int64(i),
                      Value::Int32(static_cast<int32_t>(rng.Uniform(1, 10000))),
                      Value::Double(rng.UniformReal(1, 100)),
                      Value::String(rng.String(12))});
    }
    t.value()->BulkLoad(rows);
  }
  {
    auto t = db->CreateTable("stock",
                             Schema({{"s_uid", ValueType::kInt64, 0},
                                     {"s_i_id", ValueType::kInt64, 0},
                                     {"s_w_id", ValueType::kInt64, 0},
                                     {"s_quantity", ValueType::kInt32, 0},
                                     {"s_ytd", ValueType::kInt32, 0},
                                     {"s_order_cnt", ValueType::kInt32, 0}}));
    std::vector<std::vector<int64_t>> cols(6);
    for (int wh = 0; wh < n_wh; ++wh) {
      for (int i = 0; i < num_items_; ++i) {
        cols[0].push_back(static_cast<int64_t>(wh) * num_items_ + i);
        cols[1].push_back(i);
        cols[2].push_back(wh);
        cols[3].push_back(rng.Uniform(10, 100));
        cols[4].push_back(0);
        cols[5].push_back(0);
      }
    }
    t.value()->BulkLoadPacked(std::move(cols));
  }
  // orders + order_line (+ neworder is folded into o_carrier == 0).
  {
    auto to = db->CreateTable(
        "orders", Schema({{"o_uid", ValueType::kInt64, 0},
                          {"o_w_id", ValueType::kInt64, 0},
                          {"o_d_id", ValueType::kInt64, 0},
                          {"o_c_uid", ValueType::kInt64, 0},
                          {"o_entry_d", ValueType::kDate, 0},
                          {"o_carrier_id", ValueType::kInt32, 0},
                          {"o_ol_cnt", ValueType::kInt32, 0}}));
    auto tl = db->CreateTable(
        "order_line", Schema({{"ol_o_uid", ValueType::kInt64, 0},
                              {"ol_number", ValueType::kInt32, 0},
                              {"ol_i_id", ValueType::kInt64, 0},
                              {"ol_w_id", ValueType::kInt64, 0},
                              {"ol_d_id", ValueType::kInt64, 0},
                              {"ol_quantity", ValueType::kInt32, 0},
                              {"ol_amount", ValueType::kDouble, 0},
                              {"ol_delivery_d", ValueType::kDate, 0},
                              {"ol_c_uid", ValueType::kInt64, 0}}));
    std::vector<std::vector<int64_t>> ocols(7);
    std::vector<std::vector<int64_t>> lcols(9);
    Table* lt = tl.value();
    for (int dist = 0; dist < n_dist; ++dist) {
      for (int k = 0; k < opts.initial_orders_per_district; ++k) {
        const int64_t ouid = next_o_uid_->fetch_add(1);
        const int64_t cuid =
            dist * opts.customers_per_district +
            rng.Uniform(0, opts.customers_per_district - 1);
        const int olcnt = static_cast<int>(rng.Uniform(5, 15));
        const int entry = static_cast<int>(rng.Uniform(date_lo_, date_hi_));
        ocols[C::kOUid].push_back(ouid);
        ocols[C::kOWId].push_back(dist / opts.districts_per_wh);
        ocols[C::kODId].push_back(dist);
        ocols[C::kOCUid].push_back(cuid);
        ocols[C::kOEntryD].push_back(entry);
        ocols[C::kOCarrier].push_back(rng.Uniform(1, 10));
        ocols[C::kOOlCnt].push_back(olcnt);
        for (int l = 0; l < olcnt; ++l) {
          lcols[C::kOlOUid].push_back(ouid);
          lcols[C::kOlNumber].push_back(l + 1);
          lcols[C::kOlIId].push_back(rng.Zipf(num_items_, 0.4));
          lcols[C::kOlWId].push_back(dist / opts.districts_per_wh);
          lcols[C::kOlDId].push_back(dist);
          lcols[C::kOlQuantity].push_back(rng.Uniform(1, 10));
          lcols[C::kOlAmount].push_back(
              lt->PackValue(C::kOlAmount, Value::Double(rng.UniformReal(1, 10000))));
          lcols[C::kOlDeliveryD].push_back(entry + rng.Uniform(1, 10));
          lcols[C::kOlCUid].push_back(cuid);
        }
      }
    }
    to.value()->BulkLoadPacked(std::move(ocols));
    lt->BulkLoadPacked(std::move(lcols));
  }
}

// ---------------- TPC-C transactions ----------------

TxnOp ChBenchmark::NewOrder(Rng* rng) {
  TxnOp op;
  op.id = "NewOrder";
  const int64_t ouid = next_o_uid_->fetch_add(1);
  const int64_t cuid = rng->Uniform(0, num_customers_ - 1);
  const int n_dist = opts_.warehouses * opts_.districts_per_wh;
  const int64_t dist = rng->Uniform(0, n_dist - 1);
  const int olcnt = static_cast<int>(rng->Uniform(5, 15));
  const int entry = date_hi_;

  // District tax read + (skipped next_o_id bump: ids come from the global
  // allocator).
  Query qd;
  qd.id = "NewOrder";
  qd.base.table = "district";
  qd.base.preds = {Pred::Eq(0, Value::Int64(dist))};
  qd.select_cols = {ColRef{0, 2}};
  op.statements.push_back(qd);

  // Insert the order.
  Query qo;
  qo.kind = Query::Kind::kInsert;
  qo.id = "NewOrder";
  qo.base.table = "orders";
  qo.insert_rows.push_back({Value::Int64(ouid),
                            Value::Int64(dist / opts_.districts_per_wh),
                            Value::Int64(dist), Value::Int64(cuid),
                            Value::Date(entry), Value::Int32(0),
                            Value::Int32(olcnt)});
  op.statements.push_back(qo);

  // Insert the order lines + bump stock.
  Query ql;
  ql.kind = Query::Kind::kInsert;
  ql.id = "NewOrder";
  ql.base.table = "order_line";
  for (int l = 0; l < olcnt; ++l) {
    const int64_t item = rng->Uniform(0, num_items_ - 1);
    ql.insert_rows.push_back(
        {Value::Int64(ouid), Value::Int32(l + 1), Value::Int64(item),
         Value::Int64(dist / opts_.districts_per_wh), Value::Int64(dist),
         Value::Int32(static_cast<int32_t>(rng->Uniform(1, 10))),
         Value::Double(rng->UniformReal(1, 10000)), Value::Date(0),
         Value::Int64(cuid)});
    Query qs;
    qs.kind = Query::Kind::kUpdate;
    qs.id = "NewOrder";
    qs.base.table = "stock";
    const int64_t wh = dist / opts_.districts_per_wh;
    qs.base.preds = {Pred::Eq(C::kSUid, Value::Int64(wh * num_items_ + item))};
    qs.sets = {UpdateSet::Add(C::kSQuantity, -1),
               UpdateSet::Add(C::kSOrderCnt, 1)};
    op.statements.push_back(qs);
  }
  op.statements.push_back(ql);
  return op;
}

TxnOp ChBenchmark::Payment(Rng* rng) {
  TxnOp op;
  op.id = "Payment";
  const int64_t cuid = rng->Uniform(0, num_customers_ - 1);
  const double amount = rng->UniformReal(1, 5000);
  Query qc;
  qc.kind = Query::Kind::kUpdate;
  qc.id = "Payment";
  qc.base.table = "customer";
  qc.base.preds = {Pred::Eq(C::kCUid, Value::Int64(cuid))};
  qc.sets = {UpdateSet::Add(C::kCBalance, -amount),
             UpdateSet::Add(C::kCYtd, amount),
             UpdateSet::Add(C::kCPaymentCnt, 1)};
  op.statements.push_back(qc);
  Query qd;
  qd.kind = Query::Kind::kUpdate;
  qd.id = "Payment";
  qd.base.table = "district";
  const int n_dist = opts_.warehouses * opts_.districts_per_wh;
  qd.base.preds = {Pred::Eq(0, Value::Int64(rng->Uniform(0, n_dist - 1)))};
  qd.sets = {UpdateSet::Add(3, amount)};
  op.statements.push_back(qd);
  return op;
}

TxnOp ChBenchmark::OrderStatus(Rng* rng) {
  TxnOp op;
  op.id = "OrderStatus";
  const int64_t cuid = rng->Uniform(0, num_customers_ - 1);
  Query q;
  q.id = "OrderStatus";
  q.base.table = "orders";
  q.base.preds = {Pred::Eq(C::kOCUid, Value::Int64(cuid))};
  q.order_by = {ColRef{0, C::kOUid}};
  q.select_cols = {ColRef{0, C::kOUid}, ColRef{0, C::kOEntryD},
                   ColRef{0, C::kOCarrier}};
  op.statements.push_back(q);
  return op;
}

TxnOp ChBenchmark::Delivery(Rng* rng) {
  TxnOp op;
  op.id = "Delivery";
  Query q;
  q.kind = Query::Kind::kUpdate;
  q.id = "Delivery";
  q.base.table = "orders";
  const int64_t hi = next_o_uid_->load();
  q.base.preds = {Pred::Between(C::kOUid, Value::Int64(hi - 200),
                                Value::Int64(hi))};
  q.base.preds.push_back(Pred::Eq(C::kOCarrier, Value::Int32(0)));
  q.limit = 10;
  q.sets = {UpdateSet::Assign(C::kOCarrier,
                              Value::Int32(static_cast<int32_t>(
                                  rng->Uniform(1, 10))))};
  op.statements.push_back(q);
  return op;
}

TxnOp ChBenchmark::StockLevel(Rng* rng) {
  TxnOp op;
  op.id = "StockLevel";
  Query q;
  q.id = "StockLevel";
  q.base.table = "stock";
  q.base.preds = {
      Pred::Eq(C::kSWId, Value::Int64(rng->Uniform(0, opts_.warehouses - 1))),
      Pred::Lt(C::kSQuantity, Value::Int32(15))};
  q.aggs = {AggSpec::CountStar()};
  op.statements.push_back(q);
  return op;
}

// ---------------- H-like analytic queries ----------------

std::vector<Query> ChBenchmark::AnalyticQueries(uint64_t seed) const {
  Rng rng(seed);
  std::vector<Query> qs;
  const int d0 = static_cast<int>(rng.Uniform(date_lo_, date_hi_ - 100));

  {  // CH-Q1: pricing summary by line number.
    Query q;
    q.id = "CH-Q1";
    q.base.table = "order_line";
    q.base.preds = {Pred::Gt(C::kOlDeliveryD, Value::Date(d0))};
    q.group_by = {ColRef{0, C::kOlNumber}};
    q.aggs = {AggSpec::Sum(Expr::Col(0, C::kOlQuantity), "sum_qty"),
              AggSpec::Sum(Expr::Col(0, C::kOlAmount), "sum_amount"),
              AggSpec::CountStar()};
    qs.push_back(q);
  }
  {  // CH-Q6: revenue in a quantity/date band.
    Query q;
    q.id = "CH-Q6";
    q.base.table = "order_line";
    q.base.preds = {
        Pred::Between(C::kOlDeliveryD, Value::Date(d0), Value::Date(d0 + 120)),
        Pred::Between(C::kOlQuantity, Value::Int32(2), Value::Int32(8))};
    q.aggs = {AggSpec::Sum(Expr::Col(0, C::kOlAmount), "revenue")};
    qs.push_back(q);
  }
  {  // CH-Q12: shipping-mode-ish rollup of lines by order carrier.
    Query q;
    q.id = "CH-Q12";
    q.base.table = "order_line";
    JoinClause j;
    j.dim.table = "orders";
    j.base_col = C::kOlOUid;
    j.dim_col = C::kOUid;
    j.dim.preds = {Pred::Between(C::kOEntryD, Value::Date(d0),
                                 Value::Date(d0 + 60))};
    q.joins.push_back(j);
    q.group_by = {ColRef{1, C::kOCarrier}};
    q.aggs = {AggSpec::CountStar()};
    qs.push_back(q);
  }
  {  // CH-Q14: promotion-ish revenue share over a small item class.
    Query q;
    q.id = "CH-Q14";
    q.base.table = "order_line";
    JoinClause j;
    j.dim.table = "item";
    j.base_col = C::kOlIId;
    j.dim_col = C::kIId;
    j.dim.preds = {Pred::Between(C::kIImId, Value::Int32(100),
                                 Value::Int32(200))};
    q.joins.push_back(j);
    q.aggs = {AggSpec::Sum(Expr::Col(0, C::kOlAmount), "promo_rev"),
              AggSpec::CountStar()};
    qs.push_back(q);
  }
  {  // CH-Q4: order counts by carrier in a window.
    Query q;
    q.id = "CH-Q4";
    q.base.table = "orders";
    q.base.preds = {Pred::Between(C::kOEntryD, Value::Date(d0),
                                  Value::Date(d0 + 90))};
    q.group_by = {ColRef{0, C::kOCarrier}};
    q.aggs = {AggSpec::CountStar()};
    qs.push_back(q);
  }
  {  // CH-Q3-ish: large orders of bad-credit customers.
    Query q;
    q.id = "CH-Q3";
    q.base.table = "order_line";
    JoinClause j;
    j.dim.table = "customer";
    j.base_col = C::kOlCUid;
    j.dim_col = C::kCUid;
    j.dim.preds = {Pred::Eq(C::kCCredit, Value::String("BC"))};
    q.joins.push_back(j);
    q.aggs = {AggSpec::Sum(Expr::Col(0, C::kOlAmount), "rev")};
    q.group_by = {ColRef{1, C::kCDId}};
    qs.push_back(q);
  }
  {  // CH-Q18: top customers by spend.
    Query q;
    q.id = "CH-Q18";
    q.base.table = "order_line";
    JoinClause j;
    j.dim.table = "customer";
    j.base_col = C::kOlCUid;
    j.dim_col = C::kCUid;
    q.joins.push_back(j);
    q.group_by = {ColRef{0, C::kOlCUid}};
    q.aggs = {AggSpec::Sum(Expr::Col(0, C::kOlAmount), "spend")};
    qs.push_back(q);
  }
  {  // CH-Q5-ish: revenue by district for one entry window.
    Query q;
    q.id = "CH-Q5";
    q.base.table = "order_line";
    JoinClause j;
    j.dim.table = "orders";
    j.base_col = C::kOlOUid;
    j.dim_col = C::kOUid;
    j.dim.preds = {Pred::Between(C::kOEntryD, Value::Date(d0),
                                 Value::Date(d0 + 30))};
    q.joins.push_back(j);
    q.group_by = {ColRef{0, C::kOlDId}};
    q.aggs = {AggSpec::Sum(Expr::Col(0, C::kOlAmount), "rev")};
    qs.push_back(q);
  }
  {  // CH-Q19-ish: revenue for one item band and small quantities.
    Query q;
    q.id = "CH-Q19";
    q.base.table = "order_line";
    q.base.preds = {Pred::Between(C::kOlIId, Value::Int64(0),
                                  Value::Int64(num_items_ / 50)),
                    Pred::Between(C::kOlQuantity, Value::Int32(1),
                                  Value::Int32(5))};
    q.aggs = {AggSpec::Sum(Expr::Col(0, C::kOlAmount), "rev")};
    qs.push_back(q);
  }
  {  // CH-Q16-ish: stock availability by item class.
    Query q;
    q.id = "CH-Q16";
    q.base.table = "stock";
    JoinClause j;
    j.dim.table = "item";
    j.base_col = C::kSIId;
    j.dim_col = C::kIId;
    q.joins.push_back(j);
    q.group_by = {ColRef{1, C::kIImId}};
    q.aggs = {AggSpec::CountStar()};
    q.limit = 100;
    qs.push_back(q);
  }
  return qs;
}

std::vector<Query> ChBenchmark::AdvisorWorkload() const {
  std::vector<Query> w = AnalyticQueries(opts_.seed + 3);
  // Representative C statements with high weights (they run far more often
  // than the H queries), so the advisor accounts for update costs.
  Rng rng(opts_.seed + 4);
  {
    Query q;
    q.kind = Query::Kind::kUpdate;
    q.id = "C-stock-update";
    q.base.table = "stock";
    q.base.preds = {Pred::Eq(C::kSUid, Value::Int64(rng.Uniform(0, 1000)))};
    q.sets = {UpdateSet::Add(C::kSQuantity, -1)};
    q.weight = 500;
    w.push_back(q);
  }
  {
    Query q;
    q.kind = Query::Kind::kUpdate;
    q.id = "C-cust-update";
    q.base.table = "customer";
    q.base.preds = {Pred::Eq(C::kCUid, Value::Int64(rng.Uniform(0, 1000)))};
    q.sets = {UpdateSet::Add(C::kCBalance, -1.0)};
    q.weight = 400;
    w.push_back(q);
  }
  {
    Query q;
    q.kind = Query::Kind::kInsert;
    q.id = "C-ol-insert";
    q.base.table = "order_line";
    q.insert_rows.push_back({Value::Int64(0), Value::Int32(1), Value::Int64(0),
                             Value::Int64(0), Value::Int64(0), Value::Int32(1),
                             Value::Double(1.0), Value::Date(0),
                             Value::Int64(0)});
    q.weight = 450;
    w.push_back(q);
  }
  return w;
}

TxnGenerator ChBenchmark::MakeGenerator() {
  // Capture `this` members by value where mutation is shared.
  ChBenchmark* self = this;
  return [self](int tid, Rng* rng) -> TxnOp {
    if (tid == 0) {
      // Analytics thread: one H query per op, round-robin.
      std::vector<Query> qs = self->AnalyticQueries(rng->Uniform(0, 1 << 30));
      TxnOp op;
      const size_t pick = static_cast<size_t>(rng->Uniform(0, qs.size() - 1));
      op.id = qs[pick].id;
      op.statements.push_back(qs[pick]);
      return op;
    }
    const double roll = rng->UniformReal(0, 1);
    if (roll < 0.45) return self->NewOrder(rng);
    if (roll < 0.88) return self->Payment(rng);
    if (roll < 0.92) return self->OrderStatus(rng);
    if (roll < 0.96) return self->Delivery(rng);
    return self->StockLevel(rng);
  };
}

}  // namespace hd
