// TPC-DS-like decision-support workload: a scaled-down retail star schema
// (fact tables + dimensions) and a 97-query workload drawn from templates
// that mirror TPC-DS query patterns — selective dimension-driven star
// joins, wide scans with grouping, fact-key lookups, and report queries.
//
// Used by the Section 5 end-to-end evaluation (Figs. 9, 10; Table 2).
#pragma once

#include <string>
#include <vector>

#include "catalog/database.h"
#include "exec/query.h"

namespace hd {

struct TpcdsOptions {
  /// store_sales row count; other tables scale relative to it.
  uint64_t fact_rows = 400'000;
  int num_queries = 97;
  uint64_t seed = 2018;
};

struct GeneratedWorkload {
  std::vector<Query> queries;
  std::vector<std::string> tables;
};

/// Create and load the schema, generate the query workload.
GeneratedWorkload MakeTpcds(Database* db, const TpcdsOptions& opts);

}  // namespace hd
