// Cost-based optimizer with a "what-if" interface.
//
// Given a logical Query and a Configuration (real or hypothetical), the
// optimizer enumerates access paths (heap scan, B+ tree range/full scan,
// columnstore scan), join methods (hash, index nested loops, and the
// dimension-driven hybrid shape of Section 5.3), and aggregation
// strategies (hash with spill vs. streaming), and returns the cheapest
// physical plan with its estimated cost. Costing needs only statistics and
// index metadata — exactly the contract DTA's what-if API relies on
// (Section 4.2).
#pragma once

#include "catalog/database.h"
#include "exec/plan.h"
#include "exec/query.h"
#include "optimizer/config.h"
#include "optimizer/cost_model.h"

namespace hd {

/// Environment assumptions for planning.
struct PlanOptions {
  /// Charge I/O for every byte touched (cold cache). Hot = CPU only.
  bool cold = false;
  /// Query working memory for hash/sort operators.
  uint64_t memory_grant_bytes = 4ull << 30;
  /// Override CostParams::max_dop (0 = use CostParams).
  int max_dop = 0;
};

class Optimizer {
 public:
  explicit Optimizer(Database* db, CostParams params = CostParams())
      : db_(db), p_(params) {}

  struct PlanResult {
    PhysicalPlan plan;
    double cost_ms = 0;
  };

  /// Cheapest plan for `q` under `cfg`.
  Result<PlanResult> Plan(const Query& q, const Configuration& cfg,
                          const PlanOptions& opts = PlanOptions()) const;

  /// The "what-if" API: optimizer-estimated cost of `q` under `cfg`
  /// without materializing anything.
  Result<double> WhatIfCost(const Query& q, const Configuration& cfg,
                            const PlanOptions& opts = PlanOptions()) const;

  /// Estimated fraction of `t`'s rows satisfying `preds` (conjunctive).
  double PredSelectivity(const Table& t, const std::vector<Pred>& preds) const;

  const CostParams& params() const { return p_; }
  Database* db() const { return db_; }

 private:
  struct PathCand;
  struct Ctx;

  /// Enumerate access paths for one table under its TableConfig.
  std::vector<PathCand> EnumeratePaths(const Table& t, const TableConfig& tc,
                                       const std::vector<Pred>& preds,
                                       const std::vector<int>& needed_cols,
                                       const PlanOptions& opts) const;

  Database* db_;
  CostParams p_;
};

}  // namespace hd
