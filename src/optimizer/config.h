// Physical design configurations: what indexes exist (really or
// hypothetically) on each table.
//
// This is the contract of the "what-if" API (Section 4.2): the optimizer
// costs queries against a Configuration, which needs only metadata and
// (estimated) sizes — never materialized index structures. Real
// configurations are snapshotted from the catalog; hypothetical ones are
// assembled by the advisor with estimated statistics.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "catalog/index_def.h"

namespace hd {

/// Size statistics the optimizer needs to cost an index.
struct IndexStatsInfo {
  uint64_t rows = 0;
  uint64_t size_bytes = 0;
  /// Columnstores: compressed bytes per stored (table) column — the
  /// per-column sizes the extended what-if API exposes (Section 4.2).
  std::vector<uint64_t> column_bytes;
};

/// One (possibly hypothetical) secondary index in a configuration.
struct ConfigIndex {
  IndexDef def;
  IndexStatsInfo stats;
  bool hypothetical = false;
};

/// Physical design of one table.
struct TableConfig {
  PrimaryKind primary = PrimaryKind::kHeap;
  std::vector<int> primary_keys;
  IndexStatsInfo primary_stats;
  std::vector<ConfigIndex> secondaries;

  bool HasCsi() const {
    if (primary == PrimaryKind::kColumnStore) return true;
    for (const auto& s : secondaries) {
      if (s.def.is_columnstore()) return true;
    }
    return false;
  }
};

/// A full database physical design.
struct Configuration {
  std::map<std::string, TableConfig> tables;

  /// Snapshot the current materialized design with exact sizes.
  static Configuration FromCatalog(const Database& db);

  const TableConfig* Find(const std::string& t) const {
    auto it = tables.find(t);
    return it == tables.end() ? nullptr : &it->second;
  }
  TableConfig* FindMutable(const std::string& t) {
    auto it = tables.find(t);
    return it == tables.end() ? nullptr : &it->second;
  }

  /// Total bytes of secondary (redundant) structures — the quantity a
  /// storage budget constrains.
  uint64_t SecondaryBytes() const;

  std::string Describe() const;
};

/// Estimated statistics for a hypothetical B+ tree (exact arithmetic: row
/// count times entry width, page-rounded with the bulk-load fill factor).
IndexStatsInfo EstimateBTreeStats(const Table& t, const IndexDef& def);

/// Materialize `cfg` on the database: set primaries, drop and recreate
/// secondaries. Used by experiments to execute under a configuration.
Status MaterializeConfiguration(Database* db, const Configuration& cfg);

}  // namespace hd
