#include "optimizer/config.h"

#include <sstream>

namespace hd {

Configuration Configuration::FromCatalog(const Database& db) {
  Configuration cfg;
  for (const auto& [name, t] : db.tables()) {
    TableConfig tc;
    tc.primary = t->primary_kind();
    tc.primary_keys = t->primary_key_cols();
    tc.primary_stats.rows = t->num_rows();
    tc.primary_stats.size_bytes = t->primary_size_bytes();
    if (t->primary_kind() == PrimaryKind::kColumnStore) {
      for (int c = 0; c < t->num_columns(); ++c) {
        tc.primary_stats.column_bytes.push_back(
            t->primary_csi()->column_size_bytes(c));
      }
    }
    for (const auto& si : t->secondaries()) {
      ConfigIndex ci;
      ci.def = si->def;
      ci.stats.rows = t->num_rows();
      ci.stats.size_bytes = si->size_bytes();
      if (si->csi) {
        for (int c = 0; c < t->num_columns(); ++c) {
          ci.stats.column_bytes.push_back(si->csi->column_size_bytes(c));
        }
      }
      tc.secondaries.push_back(std::move(ci));
    }
    cfg.tables.emplace(name, std::move(tc));
  }
  return cfg;
}

uint64_t Configuration::SecondaryBytes() const {
  uint64_t b = 0;
  for (const auto& [n, tc] : tables) {
    for (const auto& s : tc.secondaries) b += s.stats.size_bytes;
  }
  return b;
}

std::string Configuration::Describe() const {
  std::ostringstream os;
  for (const auto& [n, tc] : tables) {
    os << n << ": primary=";
    switch (tc.primary) {
      case PrimaryKind::kHeap: os << "HEAP"; break;
      case PrimaryKind::kBTree: os << "BTREE"; break;
      case PrimaryKind::kColumnStore: os << "CSI"; break;
    }
    for (const auto& s : tc.secondaries) {
      os << " + " << s.def.Describe();
    }
    os << "\n";
  }
  return os.str();
}

IndexStatsInfo EstimateBTreeStats(const Table& t, const IndexDef& def) {
  IndexStatsInfo st;
  st.rows = t.num_rows();
  // Entry = key columns + uniquifier + payload (included + pk columns when
  // the primary is a clustered B+ tree), 8 bytes per slot, ~90% leaf fill.
  uint64_t slots = def.key_cols.size() + 1 + def.included_cols.size();
  if (def.is_primary) {
    slots = def.key_cols.size() + 1 + t.num_columns();
  } else if (t.primary_kind() == PrimaryKind::kBTree) {
    slots += t.primary_key_cols().size();
  }
  const double leaf_bytes = static_cast<double>(st.rows) * slots * 8 / 0.9;
  st.size_bytes = static_cast<uint64_t>(leaf_bytes * 1.02);  // + internals
  return st;
}

Status MaterializeConfiguration(Database* db, const Configuration& cfg) {
  for (const auto& [name, tc] : cfg.tables) {
    Table* t = db->GetTable(name);
    if (t == nullptr) return Status::NotFound("table " + name);
    t->DropAllSecondaries();
    if (t->primary_kind() != tc.primary ||
        t->primary_key_cols() != tc.primary_keys) {
      HD_RETURN_IF_ERROR(t->SetPrimary(tc.primary, tc.primary_keys));
    }
    for (const auto& s : tc.secondaries) {
      HD_RETURN_IF_ERROR(t->ApplyIndexDef(s.def));
    }
    t->Analyze();
  }
  return Status::OK();
}

}  // namespace hd
