#include "optimizer/optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hd {

namespace {

struct PackedPred {
  int col;
  int64_t lo;
  int64_t hi;
  double sel;
  bool impossible;
};

std::vector<PackedPred> BindAndEstimate(const Table& t,
                                        const std::vector<Pred>& preds) {
  std::vector<PackedPred> out;
  for (const auto& p : preds) {
    PackedPred b{p.col, INT64_MIN, INT64_MAX, 1.0, false};
    if (p.is_equality()) {
      bool found = true;
      int64_t v = t.PackBound(p.col, *p.lo, 0, &found);
      if (!found) {
        b.impossible = true;
      } else {
        b.lo = b.hi = v;
      }
    } else {
      if (p.lo.has_value()) {
        bool found = true;
        int64_t v = t.PackBound(p.col, *p.lo, +1, &found);
        b.lo = (p.lo_incl || !found) ? v : v + 1;
      }
      if (p.hi.has_value()) {
        bool found = true;
        int64_t v = t.PackBound(p.col, *p.hi, -1, &found);
        b.hi = (p.hi_incl || !found) ? v : v - 1;
      }
      if (b.lo > b.hi) b.impossible = true;
    }
    if (b.impossible) {
      b.sel = 0.0;
    } else if (t.stats().valid() && p.col < static_cast<int>(t.stats().columns.size())) {
      const ColumnStats& cs = t.stats().columns[p.col];
      b.sel = (b.lo == b.hi) ? cs.SelectivityEq(b.lo)
                             : cs.SelectivityRange(b.lo, b.hi);
    } else {
      b.sel = (b.lo == b.hi) ? 0.01 : 0.1;  // fallback guesses
    }
    out.push_back(b);
  }
  return out;
}

double CombinedSel(const std::vector<PackedPred>& preds) {
  double s = 1.0;
  for (const auto& p : preds) s *= p.sel;
  return s;
}

double SeqReadMs(uint64_t bytes, const DiskConfig& d) {
  return bytes / (d.read_bw_mb_s * 1024.0 * 1024.0) * 1000.0 +
         d.random_latency_ms;
}

double RandomReadMs(double accesses, uint64_t bytes, const DiskConfig& d) {
  return accesses * d.random_latency_ms +
         bytes / (d.read_bw_mb_s * 1024.0 * 1024.0) * 1000.0;
}

}  // namespace

double Optimizer::PredSelectivity(const Table& t,
                                  const std::vector<Pred>& preds) const {
  return CombinedSel(BindAndEstimate(t, preds));
}

// One candidate access path with its cost decomposition.
struct Optimizer::PathCand {
  AccessPath path;
  double scan_rows = 0;   // rows the scan touches
  double out_rows = 0;    // rows surviving all table preds
  double cpu_ms = 0;         // at the parallel row rate
  double cpu_ms_serial = 0;  // at the serial row rate
  double io_ms = 0;
  bool covering = true;
  bool parallel_ok = true;
  std::vector<int> order_cols;  // provided sort order (table columns)

  /// Serial-execution estimate (used for dimension scans, which run on
  /// the coordinating thread).
  double total(bool cold) const { return cpu_ms_serial + (cold ? io_ms : 0.0); }
};

std::vector<Optimizer::PathCand> Optimizer::EnumeratePaths(
    const Table& t, const TableConfig& tc, const std::vector<Pred>& preds,
    const std::vector<int>& needed_cols, const PlanOptions& opts) const {
  (void)opts;
  std::vector<PathCand> cands;
  const DiskConfig& disk = db_->disk()->config();
  const double n = static_cast<double>(tc.primary_stats.rows
                                           ? tc.primary_stats.rows
                                           : t.num_rows());
  std::vector<PackedPred> bp = BindAndEstimate(t, preds);
  const double sel_all = CombinedSel(bp);
  const double out_rows = n * sel_all;
  const int ncols = t.num_columns();
  const int row_width = ncols * 8;

  auto pred_on = [&](int col) -> const PackedPred* {
    for (const auto& p : bp) {
      if (p.col == col) return &p;
    }
    return nullptr;
  };

  auto add_btree = [&](const std::string& index_name,
                       const std::vector<int>& key_cols,
                       const std::vector<int>& payload_cols, bool payload_full,
                       uint64_t size_bytes) {
    // Range candidate: bound leading key columns by predicates.
    double sel_prefix = 1.0;
    int seek_cols = 0;
    for (int k = 0; k < static_cast<int>(key_cols.size()); ++k) {
      const PackedPred* p = pred_on(key_cols[k]);
      if (p == nullptr) break;
      sel_prefix *= p->sel;
      ++seek_cols;
      if (p->lo != p->hi) break;  // range pred ends the prefix
    }
    PathCand c;
    c.path.kind = seek_cols > 0 ? AccessPath::Kind::kBTreeRange
                                : AccessPath::Kind::kBTreeFullScan;
    c.path.index_name = index_name;
    c.path.seek_cols = seek_cols;
    c.scan_rows = std::max(1.0, n * sel_prefix);
    c.out_rows = out_rows;
    c.order_cols = key_cols;
    // Coverage check.
    c.covering = true;
    if (!payload_full) {
      for (int need : needed_cols) {
        bool ok = std::find(key_cols.begin(), key_cols.end(), need) !=
                      key_cols.end() ||
                  std::find(payload_cols.begin(), payload_cols.end(), need) !=
                      payload_cols.end();
        if (!ok) {
          c.covering = false;
          break;
        }
      }
    }
    const int entry_width =
        static_cast<int>(key_cols.size() + 1 +
                         (payload_full ? ncols : payload_cols.size())) * 8;
    c.cpu_ms = (p_.seek_ns + c.scan_rows * p_.scan_row_parallel_ns) / 1e6;
    c.cpu_ms_serial =
        (p_.seek_ns + c.scan_rows * p_.scan_row_serial_ns) / 1e6;
    c.io_ms = RandomReadMs(1, static_cast<uint64_t>(c.scan_rows * entry_width),
                           disk);
    if (!c.covering) {
      const double lookup_cpu = c.out_rows * p_.lookup_ns / 1e6;
      c.cpu_ms += lookup_cpu;
      c.cpu_ms_serial += lookup_cpu;
      c.io_ms += RandomReadMs(c.out_rows, static_cast<uint64_t>(
                                              c.out_rows * row_width), disk);
    }
    // Full scans read the whole leaf level.
    if (seek_cols == 0) {
      c.io_ms = SeqReadMs(size_bytes, disk);
    }
    c.parallel_ok = true;
    cands.push_back(std::move(c));
  };

  auto add_csi = [&](const std::string& index_name,
                     const IndexStatsInfo& stats, int sort_col) {
    PathCand c;
    c.path.kind = AccessPath::Kind::kCsiScan;
    c.path.index_name = index_name;
    c.scan_rows = n;
    c.out_rows = out_rows;
    // Sorted columnstore (Section 4.5 extension): a predicate on the sort
    // column eliminates all but the qualifying segments.
    double scan_frac = 1.0;
    if (sort_col >= 0) {
      const PackedPred* p = pred_on(sort_col);
      if (p != nullptr) {
        scan_frac = std::clamp(p->sel + p_.csi_rowgroup_rows / std::max(1.0, n),
                               0.0, 1.0);
        c.scan_rows = std::max(1.0, n * scan_frac);
      }
    }
    // Columns actually decoded: needed + predicate columns.
    std::vector<char> touch(ncols, 0);
    for (int need : needed_cols) touch[need] = 1;
    for (const auto& p : bp) touch[p.col] = 1;
    int ntouch = 0;
    uint64_t bytes = 0;
    for (int cidx = 0; cidx < ncols; ++cidx) {
      if (!touch[cidx]) continue;
      ++ntouch;
      if (cidx < static_cast<int>(stats.column_bytes.size())) {
        bytes += stats.column_bytes[cidx];
      } else {
        bytes += stats.size_bytes / std::max(1, ncols);
      }
    }
    c.cpu_ms =
        c.scan_rows * (p_.batch_cpu_ns + p_.batch_col_ns * ntouch) / 1e6;
    c.cpu_ms_serial = c.cpu_ms;  // batch mode has no exchange overhead
    c.io_ms = SeqReadMs(static_cast<uint64_t>(bytes * scan_frac), disk);
    c.parallel_ok = true;
    cands.push_back(std::move(c));
  };

  switch (tc.primary) {
    case PrimaryKind::kHeap: {
      PathCand c;
      c.path.kind = AccessPath::Kind::kHeapScan;
      c.scan_rows = n;
      c.out_rows = out_rows;
      c.cpu_ms = n * p_.scan_row_parallel_ns / 1e6;
      c.cpu_ms_serial = n * p_.scan_row_serial_ns / 1e6;
      c.io_ms = SeqReadMs(tc.primary_stats.size_bytes, disk);
      cands.push_back(std::move(c));
      break;
    }
    case PrimaryKind::kBTree:
      add_btree("", tc.primary_keys, {}, /*payload_full=*/true,
                tc.primary_stats.size_bytes);
      break;
    case PrimaryKind::kColumnStore:
      add_csi("", tc.primary_stats, /*sort_col=*/-1);
      break;
  }
  for (const auto& s : tc.secondaries) {
    if (s.def.is_btree()) {
      // Payload includes declared includes + pk columns (Table's policy).
      std::vector<int> payload = s.def.included_cols;
      if (tc.primary == PrimaryKind::kBTree) {
        for (int pk : tc.primary_keys) {
          if (std::find(payload.begin(), payload.end(), pk) == payload.end() &&
              std::find(s.def.key_cols.begin(), s.def.key_cols.end(), pk) ==
                  s.def.key_cols.end()) {
            payload.push_back(pk);
          }
        }
      }
      add_btree(s.def.name, s.def.key_cols, payload, false,
                s.stats.size_bytes);
    } else {
      add_csi(s.def.name, s.stats,
              s.def.key_cols.empty() ? -1 : s.def.key_cols[0]);
    }
  }
  return cands;
}

namespace {

/// Helper: needed base-table columns of a query.
std::vector<int> NeededBaseCols(const Query& q, const Table& base) {
  std::vector<char> need(base.num_columns(), 0);
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    if (e.kind == Expr::Kind::kCol && e.col.table == 0) need[e.col.col] = 1;
    for (const auto& c : e.children) walk(c);
  };
  for (const auto& a : q.aggs) {
    if (a.arg) walk(*a.arg);
  }
  auto mark = [&](const std::vector<ColRef>& refs) {
    for (const auto& r : refs) {
      if (r.table == 0) need[r.col] = 1;
    }
  };
  mark(q.group_by);
  mark(q.order_by);
  mark(q.select_cols);
  for (const auto& j : q.joins) need[j.base_col] = 1;
  for (const auto& p : q.base.preds) need[p.col] = 1;
  if (q.kind != Query::Kind::kSelect) {
    for (int c = 0; c < base.num_columns(); ++c) need[c] = 1;  // DML: all
  }
  if (q.kind == Query::Kind::kSelect && q.aggs.empty() &&
      q.select_cols.empty()) {
    for (int c = 0; c < base.num_columns(); ++c) need[c] = 1;  // SELECT *
  }
  std::vector<int> out;
  for (int c = 0; c < base.num_columns(); ++c) {
    if (need[c]) out.push_back(c);
  }
  return out;
}

std::vector<int> NeededDimCols(const Query& q, int join_idx, const Table& dim) {
  std::vector<char> need(dim.num_columns(), 0);
  const int tbl = join_idx + 1;
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    if (e.kind == Expr::Kind::kCol && e.col.table == tbl) need[e.col.col] = 1;
    for (const auto& c : e.children) walk(c);
  };
  for (const auto& a : q.aggs) {
    if (a.arg) walk(*a.arg);
  }
  auto mark = [&](const std::vector<ColRef>& refs) {
    for (const auto& r : refs) {
      if (r.table == tbl) need[r.col] = 1;
    }
  };
  mark(q.group_by);
  mark(q.order_by);
  mark(q.select_cols);
  need[q.joins[join_idx].dim_col] = 1;
  for (const auto& p : q.joins[join_idx].dim.preds) need[p.col] = 1;
  std::vector<int> out;
  for (int c = 0; c < dim.num_columns(); ++c) {
    if (need[c]) out.push_back(c);
  }
  return out;
}

bool OrderCovers(const std::vector<int>& provided, const std::vector<ColRef>& want) {
  if (want.empty()) return false;
  if (provided.size() < want.size()) return false;
  for (size_t i = 0; i < want.size(); ++i) {
    if (want[i].table != 0 || provided[i] != want[i].col) return false;
  }
  return true;
}

}  // namespace

Result<Optimizer::PlanResult> Optimizer::Plan(const Query& q,
                                              const Configuration& cfg,
                                              const PlanOptions& opts) const {
  Table* base = db_->GetTable(q.base.table);
  if (base == nullptr) return Status::NotFound("table " + q.base.table);
  const TableConfig* tc = cfg.Find(q.base.table);
  if (tc == nullptr) return Status::NotFound("config for " + q.base.table);
  const bool cold = opts.cold;
  const DiskConfig& disk = db_->disk()->config();
  const int max_dop = opts.max_dop > 0 ? opts.max_dop : p_.max_dop;

  const std::vector<int> needed = NeededBaseCols(q, *base);
  std::vector<PathCand> base_cands =
      EnumeratePaths(*base, *tc, q.base.preds, needed, opts);
  if (base_cands.empty()) return Status::Internal("no access path");

  // Dimension info shared by all alternatives.
  struct DimInfo {
    Table* table;
    const TableConfig* tc;
    double rows;        // total
    double out_rows;    // after dim preds
    std::vector<PathCand> cands;  // access paths for the dim
    int best = 0;                 // cheapest candidate index
    double best_cost = 0;
    // Index-NL support: secondary/primary btree leading on the join col.
    bool has_nl_index = false;
    AccessPath nl_path;
    bool nl_covering = false;
  };
  std::vector<DimInfo> dims;
  for (size_t j = 0; j < q.joins.size(); ++j) {
    const JoinClause& jc = q.joins[j];
    DimInfo di;
    di.table = db_->GetTable(jc.dim.table);
    if (di.table == nullptr) return Status::NotFound("table " + jc.dim.table);
    di.tc = cfg.Find(jc.dim.table);
    if (di.tc == nullptr) return Status::NotFound("config " + jc.dim.table);
    di.rows = static_cast<double>(di.tc->primary_stats.rows
                                      ? di.tc->primary_stats.rows
                                      : di.table->num_rows());
    di.out_rows =
        std::max(1.0, di.rows * PredSelectivity(*di.table, jc.dim.preds));
    std::vector<int> dim_needed = NeededDimCols(q, static_cast<int>(j), *di.table);
    di.cands = EnumeratePaths(*di.table, *di.tc, jc.dim.preds, dim_needed, opts);
    di.best_cost = 1e300;
    for (size_t ci = 0; ci < di.cands.size(); ++ci) {
      const double c = di.cands[ci].total(cold);
      if (c < di.best_cost) {
        di.best_cost = c;
        di.best = static_cast<int>(ci);
      }
    }
    // NL index: primary btree keyed on dim_col, or secondary leading on it.
    if (di.tc->primary == PrimaryKind::kBTree && !di.tc->primary_keys.empty() &&
        di.tc->primary_keys[0] == jc.dim_col) {
      di.has_nl_index = true;
      di.nl_path.kind = AccessPath::Kind::kBTreeRange;
      di.nl_path.seek_cols = 1;
      di.nl_covering = true;
    } else {
      for (const auto& s : di.tc->secondaries) {
        if (s.def.is_btree() && !s.def.key_cols.empty() &&
            s.def.key_cols[0] == jc.dim_col) {
          di.has_nl_index = true;
          di.nl_path.kind = AccessPath::Kind::kBTreeRange;
          di.nl_path.index_name = s.def.name;
          di.nl_path.seek_cols = 1;
          // Covering if every needed col is key/payload.
          std::vector<int> payload = s.def.included_cols;
          if (di.tc->primary == PrimaryKind::kBTree) {
            for (int pk : di.tc->primary_keys) payload.push_back(pk);
          }
          di.nl_covering = true;
          for (int need : dim_needed) {
            bool ok = std::find(s.def.key_cols.begin(), s.def.key_cols.end(),
                                need) != s.def.key_cols.end() ||
                      std::find(payload.begin(), payload.end(), need) !=
                          payload.end();
            if (!ok) di.nl_covering = false;
          }
          break;
        }
      }
    }
    dims.push_back(std::move(di));
  }

  // Estimated groups for aggregation.
  double est_groups = 1;
  if (!q.group_by.empty()) {
    for (const auto& g : q.group_by) {
      Table* t = g.table == 0 ? base : dims[g.table - 1].table;
      double ndv = 100;
      if (t->stats().valid() && g.col < static_cast<int>(t->stats().columns.size())) {
        ndv = static_cast<double>(t->stats().columns[g.col].distinct_count());
      }
      est_groups *= std::max(1.0, ndv);
    }
  }

  // `extra_cpu` scales with the scan DOP (worker-local aggregation);
  // `serial_cpu` does not (the final sort runs single-threaded).
  auto finish_cost = [&](double stream_rows, bool order_ok_for_group,
                         bool order_ok_for_sort, bool serial, bool batch_base,
                         AggMethod* agg_out, bool* sort_out, double* extra_cpu,
                         double* serial_cpu, double* extra_io) {
    *agg_out = AggMethod::kNone;
    *sort_out = false;
    *extra_cpu = 0;
    *serial_cpu = 0;
    *extra_io = 0;
    if (!q.aggs.empty()) {
      if (q.group_by.empty()) {
        const double per_row = batch_base && q.joins.empty()
                                   ? p_.batch_cpu_ns * 2
                                   : p_.agg_hash_ns;
        *extra_cpu += stream_rows * per_row / 1e6;
        *agg_out = AggMethod::kHash;
      } else {
        const double g = std::min(est_groups, std::max(1.0, stream_rows));
        const double hash_cpu = stream_rows * p_.agg_hash_ns / 1e6;
        const double mem = g * p_.agg_group_entry_bytes;
        double hash_io = 0;
        if (mem > static_cast<double>(opts.memory_grant_bytes)) {
          // Grace-hash spill: write + read every input row once.
          const double bytes =
              stream_rows * (q.group_by.size() + q.aggs.size()) * 8;
          hash_io = bytes / (disk.write_bw_mb_s * 1024 * 1024) * 1000 +
                    bytes / (disk.read_bw_mb_s * 1024 * 1024) * 1000;
        }
        const double stream_cpu = stream_rows * p_.agg_stream_ns / 1e6;
        const bool stream_ok = order_ok_for_group && serial && q.joins.empty();
        // Spill I/O always hurts (it is real time, hot or cold).
        if (stream_ok && stream_cpu < hash_cpu + hash_io) {
          *agg_out = AggMethod::kStream;
          *extra_cpu += stream_cpu;
        } else {
          *agg_out = AggMethod::kHash;
          *extra_cpu += hash_cpu;
          *extra_io += hash_io;  // charged even when hot: spills are real
        }
      }
    }
    if (!q.order_by.empty() && q.aggs.empty()) {
      if (!order_ok_for_sort) {
        *sort_out = true;
        const double nlogn =
            stream_rows * std::max(1.0, std::log2(std::max(2.0, stream_rows)));
        *serial_cpu += nlogn * p_.sort_cmp_ns / 1e6;
        const double bytes = stream_rows * p_.sort_row_bytes;
        if (bytes > static_cast<double>(opts.memory_grant_bytes)) {
          *extra_io += bytes / (disk.write_bw_mb_s * 1024 * 1024) * 1000 +
                       bytes / (disk.read_bw_mb_s * 1024 * 1024) * 1000;
        }
      }
    }
  };

  PlanResult best;
  best.cost_ms = 1e300;

  // ---------- base-driven alternatives ----------
  for (const auto& cand : base_cands) {
    double join_cpu = 0;
    double io = cand.io_ms;
    double stream_rows = cand.out_rows;
    const double probe_ns =
        cand.path.is_csi() ? p_.batch_probe_ns : p_.row_probe_ns;
    std::vector<JoinStep> steps;
    for (size_t j = 0; j < dims.size(); ++j) {
      const DimInfo& di = dims[j];
      const double sel_dim = di.out_rows / std::max(1.0, di.rows);
      // Hash join. A CSI base scan pushes the join's Bloom filter into the
      // scan, so only matching rows (plus a false-positive tail) reach the
      // batch probe kernels; row-mode bases probe every inflow row.
      double probe_cost_ms;
      if (cand.path.is_csi()) {
        const double pass = std::min(1.0, sel_dim + p_.bloom_fp_rate);
        probe_cost_ms = (stream_rows * p_.bloom_check_ns +
                         stream_rows * pass * probe_ns) /
                        1e6;
      } else {
        probe_cost_ms = stream_rows * probe_ns / 1e6;
      }
      const double hash_cost = di.best_cost +
                               di.out_rows * p_.hash_build_ns / 1e6 +
                               probe_cost_ms;
      // Index NL join.
      double nl_cost = 1e300;
      if (di.has_nl_index) {
        nl_cost = stream_rows * (p_.seek_ns + p_.row_cpu_ns) / 1e6;
        if (!di.nl_covering) nl_cost += stream_rows * p_.lookup_ns / 1e6;
        if (cold) {
          nl_cost += RandomReadMs(std::min(stream_rows, di.rows),
                                  static_cast<uint64_t>(stream_rows * 64),
                                  disk);
        }
      }
      JoinStep st;
      st.join_idx = static_cast<int>(j);
      if (nl_cost < hash_cost) {
        st.method = JoinStep::Method::kIndexNL;
        st.dim_path = di.nl_path;
        join_cpu += nl_cost;  // NL I/O folded above for simplicity
      } else {
        st.method = JoinStep::Method::kHash;
        st.dim_path = di.cands[di.best].path;
        join_cpu += di.cands[di.best].cpu_ms_serial +
                    di.out_rows * p_.hash_build_ns / 1e6 + probe_cost_ms;
        io += di.cands[di.best].io_ms;
      }
      stream_rows *= sel_dim;
      st.est_dim_rows = di.out_rows;
      st.est_rows_out = stream_rows;
      steps.push_back(std::move(st));
    }

    // DML statements collect their row set serially, so their plan must be
    // costed at DOP 1.
    const bool parallel = q.kind == Query::Kind::kSelect &&
                          cand.parallel_ok &&
                          cand.scan_rows > p_.serial_row_threshold;
    const int dop = parallel ? max_dop : 1;
    const bool order_group = OrderCovers(cand.order_cols, q.group_by);
    const bool order_sort = OrderCovers(cand.order_cols, q.order_by);

    // Try both serial and the chosen dop: streaming agg or sort avoidance
    // may beat parallelism (Fig. 4's crossover; Q2's option (c)).
    for (int try_dop : {1, dop}) {
      AggMethod agg;
      bool sort;
      double extra_cpu, serial_cpu, extra_io;
      finish_cost(stream_rows, order_group && try_dop == 1,
                  order_sort && try_dop == 1, try_dop == 1,
                  cand.path.is_csi(), &agg, &sort, &extra_cpu, &serial_cpu,
                  &extra_io);
      double total_cpu = (try_dop == 1 ? cand.cpu_ms_serial : cand.cpu_ms) +
                         join_cpu + extra_cpu;
      double total_io = (cold ? io : 0.0) + extra_io;
      double cost = total_cpu / try_dop + serial_cpu + total_io / try_dop +
                    (try_dop > 1 ? p_.parallel_startup_ms : 0.0);
      if (cost < best.cost_ms) {
        best.cost_ms = cost;
        best.plan.base = cand.path;
        best.plan.joins = steps;
        best.plan.agg = agg;
        best.plan.explicit_sort = sort;
        best.plan.dop = try_dop;
        best.plan.driving_join = -1;
        best.plan.est_cost = cost;
        best.plan.est_base_rows = cand.scan_rows;
        best.plan.est_out_rows = stream_rows;
      }
      if (try_dop == dop) break;  // dop == 1 case
    }
  }

  // ---------- dimension-driven alternatives (Section 5.3 shape) ----------
  if (q.kind == Query::Kind::kSelect) {
    for (size_t j = 0; j < dims.size(); ++j) {
      const DimInfo& di = dims[j];
      const JoinClause& jc = q.joins[j];
      // Need a base B+ tree leading on the join column.
      AccessPath fact_path;
      bool found = false;
      bool covering = true;
      if (tc->primary == PrimaryKind::kBTree && !tc->primary_keys.empty() &&
          tc->primary_keys[0] == jc.base_col) {
        fact_path.kind = AccessPath::Kind::kBTreeRange;
        fact_path.seek_cols = 1;
        found = true;
      } else {
        for (const auto& s : tc->secondaries) {
          if (s.def.is_btree() && !s.def.key_cols.empty() &&
              s.def.key_cols[0] == jc.base_col) {
            fact_path.kind = AccessPath::Kind::kBTreeRange;
            fact_path.index_name = s.def.name;
            fact_path.seek_cols = 1;
            std::vector<int> payload = s.def.included_cols;
            if (tc->primary == PrimaryKind::kBTree) {
              for (int pk : tc->primary_keys) payload.push_back(pk);
            }
            for (int need : needed) {
              bool ok = std::find(s.def.key_cols.begin(), s.def.key_cols.end(),
                                  need) != s.def.key_cols.end() ||
                        std::find(payload.begin(), payload.end(), need) !=
                            payload.end();
              if (!ok) covering = false;
            }
            found = true;
            break;
          }
        }
      }
      if (!found) continue;

      const double n = static_cast<double>(tc->primary_stats.rows
                                               ? tc->primary_stats.rows
                                               : base->num_rows());
      const double matches_per_dim = n / std::max(1.0, di.rows);
      const double fact_rows = di.out_rows * matches_per_dim;
      const double sel_base = PredSelectivity(*base, q.base.preds);
      double stream_rows = fact_rows * sel_base;

      double cpu = di.cands[di.best].cpu_ms_serial +
                   di.out_rows * p_.seek_ns / 1e6 +
                   fact_rows * p_.row_cpu_ns / 1e6;
      if (!covering) cpu += fact_rows * p_.lookup_ns / 1e6;
      double io = di.cands[di.best].io_ms;
      if (cold) {
        io += RandomReadMs(di.out_rows,
                           static_cast<uint64_t>(fact_rows * 64), disk);
      }

      std::vector<JoinStep> steps;
      {
        JoinStep st;
        st.join_idx = static_cast<int>(j);
        st.method = JoinStep::Method::kHash;  // placeholder for the driver
        st.dim_path = di.cands[di.best].path;
        st.est_dim_rows = di.out_rows;
        st.est_rows_out = stream_rows;
        steps.push_back(std::move(st));
      }
      for (size_t k = 0; k < dims.size(); ++k) {
        if (k == j) continue;
        const DimInfo& dk = dims[k];
        const double sel_dim = dk.out_rows / std::max(1.0, dk.rows);
        const double hash_cost = dk.best_cost +
                                 dk.out_rows * p_.hash_build_ns / 1e6 +
                                 stream_rows * p_.row_probe_ns / 1e6;
        double nl_cost = 1e300;
        if (dk.has_nl_index) {
          nl_cost = stream_rows * (p_.seek_ns + p_.row_cpu_ns) / 1e6;
          if (!dk.nl_covering) nl_cost += stream_rows * p_.lookup_ns / 1e6;
        }
        JoinStep st;
        st.join_idx = static_cast<int>(k);
        if (nl_cost < hash_cost) {
          st.method = JoinStep::Method::kIndexNL;
          st.dim_path = dk.nl_path;
          cpu += nl_cost;
        } else {
          st.method = JoinStep::Method::kHash;
          st.dim_path = dk.cands[dk.best].path;
          cpu += dk.cands[dk.best].cpu_ms_serial +
                 dk.out_rows * p_.hash_build_ns / 1e6 +
                 stream_rows * p_.row_probe_ns / 1e6;
          io += dk.cands[dk.best].io_ms;
        }
        stream_rows *= sel_dim;
        st.est_dim_rows = dk.out_rows;
        st.est_rows_out = stream_rows;
        steps.push_back(std::move(st));
      }

      AggMethod agg;
      bool sort;
      double extra_cpu, serial_cpu, extra_io;
      finish_cost(stream_rows, false, false, true, false, &agg, &sort,
                  &extra_cpu, &serial_cpu, &extra_io);
      const double cost =
          cpu + extra_cpu + serial_cpu + (cold ? io : 0.0) + extra_io;
      if (cost < best.cost_ms) {
        best.cost_ms = cost;
        best.plan.base = fact_path;
        best.plan.joins = steps;
        best.plan.agg = agg;
        best.plan.explicit_sort = sort;
        best.plan.dop = 1;
        best.plan.driving_join = static_cast<int>(j);
        best.plan.est_cost = cost;
        best.plan.est_base_rows = fact_rows;
        best.plan.est_out_rows = stream_rows;
      }
    }
  }

  // ---------- DML maintenance costs ----------
  if (q.kind != Query::Kind::kSelect) {
    best.plan.dop = 1;  // DML row collection is serial
    double n_aff = best.plan.est_out_rows;
    if (q.kind != Query::Kind::kSelect && q.limit >= 0) {
      n_aff = std::min<double>(n_aff, static_cast<double>(q.limit));
    }
    if (q.kind == Query::Kind::kInsert) {
      n_aff = static_cast<double>(q.insert_rows.size());
      best.cost_ms = 0;  // no scan
    }
    double maint = 0;
    const double rows_total = static_cast<double>(
        tc->primary_stats.rows ? tc->primary_stats.rows : base->num_rows());
    switch (tc->primary) {
      case PrimaryKind::kHeap:
        maint += n_aff * p_.update_in_place_ns / 1e6;
        break;
      case PrimaryKind::kBTree:
        maint += n_aff * p_.dml_btree_ns / 1e6;
        break;
      case PrimaryKind::kColumnStore:
        // Statement-level locator scan + delta insert per row.
        maint += rows_total * p_.csi_locate_ns / 1e6 +
                 n_aff * p_.dml_delta_insert_ns / 1e6;
        break;
    }
    for (const auto& s : tc->secondaries) {
      if (s.def.is_btree()) {
        maint += n_aff * p_.dml_btree_ns / 1e6;
      } else {
        maint += n_aff * (p_.dml_delete_buffer_ns + p_.dml_delta_insert_ns) / 1e6;
      }
    }
    best.cost_ms += maint;
    best.plan.est_cost = best.cost_ms;
  }

  return best;
}

Result<double> Optimizer::WhatIfCost(const Query& q, const Configuration& cfg,
                                     const PlanOptions& opts) const {
  HD_ASSIGN_OR_RETURN(PlanResult r, Plan(q, cfg, opts));
  return r.cost_ms;
}

}  // namespace hd
