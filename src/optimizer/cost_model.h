// Cost model calibration constants.
//
// Units: nanoseconds of CPU per elementary operation; costs are reported
// in milliseconds. The defaults are calibrated to this engine's measured
// behaviour (row mode ~an order of magnitude more per-row work than batch
// mode, B+ tree descents in the microseconds), which in turn mirrors the
// ratios the paper reports for SQL Server.
#pragma once

#include <cstdint>

namespace hd {

/// Calibration constants for the optimizer's cost formulas. Values are
/// nanoseconds of CPU per elementary operation unless noted; the micro
/// benchmark suite (`bench_micro_structures`) backs the calibration.
struct CostParams {
  // Row-mode pipeline cost per row (scan + filter + per-row virtual calls).
  double row_cpu_ns = 300;
  // Row-mode scan rates: serial plans avoid exchange/repartition overhead
  // ("sequential plans are more CPU-efficient than parallel plans",
  // Section 3.2.1), so a serial scan is cheaper per row.
  double scan_row_serial_ns = 100;
  double scan_row_parallel_ns = 440;
  // Sorted-columnstore skipping granularity: segments eliminate at row-
  // group level, so a predicate on the sort column still reads at least
  // one group's worth of rows.
  double csi_rowgroup_rows = 131072;
  // Batch-mode baseline per row, plus per decoded column.
  double batch_cpu_ns = 3;
  double batch_col_ns = 1.2;
  // One B+ tree root-to-leaf descent.
  double seek_ns = 1200;
  // Key/RID lookup of a base row (non-covering secondary).
  double lookup_ns = 2000;
  // Hash join. Probes from a batch-mode (columnstore) pipeline are far
  // cheaper per row than from a row-mode pipeline (operator overhead).
  double hash_build_ns = 90;
  double hash_probe_ns = 45;        // legacy/generic
  double batch_probe_ns = 40;
  double row_probe_ns = 110;
  // Bloom pushdown (CSI base scans under hash joins): every scanned row
  // pays a blocked-Bloom membership test inside the scan, and only rows
  // that pass — the join's true matches plus the filter's false-positive
  // tail — reach the probe kernels.
  double bloom_check_ns = 2.5;
  double bloom_fp_rate = 0.05;
  // Aggregation.
  double agg_hash_ns = 50;
  double agg_stream_ns = 12;
  double agg_group_entry_bytes = 64;
  // Sort: per comparison (n log2 n comparisons).
  double sort_cmp_ns = 30;
  double sort_row_bytes = 24;
  // DML maintenance per row.
  double dml_btree_ns = 2500;          // B+ tree insert/delete/update
  double dml_delta_insert_ns = 3500;   // columnstore delta-store insert
  double dml_delete_buffer_ns = 3000;  // secondary CSI delete-buffer insert
  double update_in_place_ns = 1800;    // heap in-place update
  // Primary CSI delete: statement-level locator scan, per compressed row.
  double csi_locate_ns = 4.0;
  // Parallelism.
  int max_dop = 8;
  double parallel_startup_ms = 0.2;
  uint64_t serial_row_threshold = 10000;
};

}  // namespace hd
