#include "columnstore/encoding.h"

#include <cassert>

namespace hd {

void SelVector::SetRange(size_t b, size_t e) {
  if (b >= e) return;
  const size_t wb = b >> 6;
  const size_t we = (e - 1) >> 6;
  const uint64_t first = ~0ull << (b & 63);
  const uint64_t last = (e & 63) == 0 ? ~0ull : (1ull << (e & 63)) - 1;
  if (wb == we) {
    words_[wb] |= first & last;
    return;
  }
  words_[wb] |= first;
  for (size_t w = wb + 1; w < we; ++w) words_[w] = ~0ull;
  words_[we] |= last;
}

void SelVector::ClearRange(size_t b, size_t e) {
  if (b >= e) return;
  const size_t wb = b >> 6;
  const size_t we = (e - 1) >> 6;
  const uint64_t first = ~0ull << (b & 63);
  const uint64_t last = (e & 63) == 0 ? ~0ull : (1ull << (e & 63)) - 1;
  if (wb == we) {
    words_[wb] &= ~(first & last);
    return;
  }
  words_[wb] &= ~first;
  for (size_t w = wb + 1; w < we; ++w) words_[w] = 0;
  words_[we] &= ~last;
}

void BitPacked::Pack(std::span<const uint64_t> values) {
  n_ = values.size();
  uint64_t maxv = 0;
  for (uint64_t v : values) maxv = v > maxv ? v : maxv;
  bits_ = BitsFor(maxv);
  mask_ = bits_ == 64 ? ~0ull : ((1ull << bits_) - 1);
  if (bits_ == 0) {
    words_.clear();
    return;
  }
  const size_t total_bits = n_ * static_cast<size_t>(bits_);
  // One zero pad word past the data keeps the decode kernels' two-word
  // gather in bounds for the final element without a branch.
  words_.assign((total_bits + 63) / 64 + 1, 0);
  for (size_t i = 0; i < n_; ++i) {
    const size_t bitpos = i * bits_;
    const size_t w = bitpos >> 6;
    const int off = static_cast<int>(bitpos & 63);
    words_[w] |= values[i] << off;
    if (off + bits_ > 64) {
      words_[w + 1] |= values[i] >> (64 - off);
    }
  }
}

namespace {

/// Whole-word unpack for bit widths that divide 64: no element straddles a
/// word, so the body loop reads one word and emits 64/B values with a
/// fixed-trip inner loop the compiler unrolls and vectorizes.
template <int B>
void DecodeDiv64(const uint64_t* words, size_t start, size_t count,
                 uint64_t* out) {
  constexpr int kPer = 64 / B;
  constexpr uint64_t kMask = B == 64 ? ~0ull : ((1ull << B) - 1);
  size_t i = 0;
  size_t pos = start;
  while (i < count && (pos % kPer) != 0) {
    out[i++] = (words[pos / kPer] >> ((pos % kPer) * B)) & kMask;
    ++pos;
  }
  size_t wi = pos / kPer;
  for (; i + kPer <= count; i += kPer, ++wi) {
    const uint64_t w = words[wi];
    for (int k = 0; k < kPer; ++k) {
      out[i + k] = (w >> (k * B)) & kMask;
    }
  }
  pos = wi * static_cast<size_t>(kPer);
  while (i < count) {
    out[i++] = (words[pos / kPer] >> ((pos % kPer) * B)) & kMask;
    ++pos;
  }
}

/// EvalRange body for bit widths that divide 64: no element straddles a
/// word, so the gather is one shift+mask. Produces one output selection
/// word per 64 elements; the full-word case runs a fixed-trip inner loop
/// the compiler unrolls. `span = hi - lo`; the single unsigned compare
/// `(v - lo) <= span` implements lo <= v <= hi (v < lo wraps huge).
template <int B>
void EvalDiv64(const uint64_t* words, size_t start, size_t count,
               uint64_t lo, uint64_t span, bool refine, uint64_t* selw) {
  constexpr int kPer = 64 / B;
  constexpr uint64_t kMask = B == 64 ? ~0ull : ((1ull << B) - 1);
  size_t pos = start;
  size_t i = 0;
  size_t sw = 0;
  while (i < count) {
    const int nb = static_cast<int>(std::min<size_t>(64, count - i));
    uint64_t m = 0;
    if (nb == 64) {
      for (int j = 0; j < 64; ++j) {
        const uint64_t v = (words[pos / kPer] >> ((pos % kPer) * B)) & kMask;
        m |= static_cast<uint64_t>((v - lo) <= span) << j;
        ++pos;
      }
    } else {
      for (int j = 0; j < nb; ++j) {
        const uint64_t v = (words[pos / kPer] >> ((pos % kPer) * B)) & kMask;
        m |= static_cast<uint64_t>((v - lo) <= span) << j;
        ++pos;
      }
    }
    selw[sw] = refine ? (selw[sw] & m) : m;
    ++sw;
    i += nb;
  }
}

}  // namespace

void BitPacked::Decode(size_t start, size_t count, uint64_t* out) const {
  assert(start + count <= n_);
  switch (bits_) {
    case 0:
      std::memset(out, 0, count * sizeof(uint64_t));
      return;
    case 1: DecodeDiv64<1>(words_.data(), start, count, out); return;
    case 2: DecodeDiv64<2>(words_.data(), start, count, out); return;
    case 4: DecodeDiv64<4>(words_.data(), start, count, out); return;
    case 8: DecodeDiv64<8>(words_.data(), start, count, out); return;
    case 16: DecodeDiv64<16>(words_.data(), start, count, out); return;
    case 32: DecodeDiv64<32>(words_.data(), start, count, out); return;
    case 64:
      std::memcpy(out, words_.data() + start, count * sizeof(uint64_t));
      return;
    default:
      break;
  }
  // General widths: branch-free two-word gather. The double shift forms
  // `next_word << (64 - off)` without the off==0 undefined shift; the pad
  // word written by Pack() keeps words[w + 1] in bounds.
  const int bits = bits_;
  const uint64_t mask = mask_;
  const uint64_t* words = words_.data();
  size_t bitpos = start * static_cast<size_t>(bits);
  for (size_t i = 0; i < count; ++i) {
    const size_t w = bitpos >> 6;
    const int off = static_cast<int>(bitpos & 63);
    uint64_t v = words[w] >> off;
    v |= (words[w + 1] << 1) << (63 - off);
    out[i] = v & mask;
    bitpos += bits;
  }
}

void BitPacked::DecodeSelected(size_t start, std::span<const uint32_t> sel,
                               uint64_t* out) const {
  if (bits_ == 0) {
    std::memset(out, 0, sel.size() * sizeof(uint64_t));
    return;
  }
  const int bits = bits_;
  const uint64_t mask = mask_;
  const uint64_t* words = words_.data();
  for (size_t k = 0; k < sel.size(); ++k) {
    const size_t bitpos = (start + sel[k]) * static_cast<size_t>(bits);
    const size_t w = bitpos >> 6;
    const int off = static_cast<int>(bitpos & 63);
    uint64_t v = words[w] >> off;
    v |= (words[w + 1] << 1) << (63 - off);
    out[k] = v & mask;
  }
}

void BitPacked::EvalRange(size_t start, size_t count, uint64_t lo,
                          uint64_t hi, bool refine, SelVector* sel) const {
  assert(start + count <= n_);
  assert(sel->size() == count);
  if (hi < lo) {
    sel->Reset(count);
    return;
  }
  uint64_t* selw = sel->words();
  if (bits_ == 0) {
    const bool match = lo == 0;  // every element is 0
    if (match) {
      if (!refine) sel->ResetAllSet(count);
    } else {
      sel->Reset(count);
    }
    return;
  }
  const uint64_t span = hi - lo;
  const uint64_t* words = words_.data();
  switch (bits_) {
    case 1: EvalDiv64<1>(words, start, count, lo, span, refine, selw); return;
    case 2: EvalDiv64<2>(words, start, count, lo, span, refine, selw); return;
    case 4: EvalDiv64<4>(words, start, count, lo, span, refine, selw); return;
    case 8: EvalDiv64<8>(words, start, count, lo, span, refine, selw); return;
    case 16: EvalDiv64<16>(words, start, count, lo, span, refine, selw); return;
    case 32: EvalDiv64<32>(words, start, count, lo, span, refine, selw); return;
    case 64: EvalDiv64<64>(words, start, count, lo, span, refine, selw); return;
    default:
      break;
  }
  // General widths: branch-free two-word gather (see Decode), full-word
  // inner loops so the compiler unrolls the 64-element case.
  const int bits = bits_;
  const uint64_t mask = mask_;
  size_t bitpos = start * static_cast<size_t>(bits);
  size_t i = 0;
  size_t sw = 0;
  while (i < count) {
    const int nb = static_cast<int>(std::min<size_t>(64, count - i));
    uint64_t m = 0;
    if (nb == 64) {
      for (int j = 0; j < 64; ++j) {
        const size_t w = bitpos >> 6;
        const int off = static_cast<int>(bitpos & 63);
        uint64_t v = words[w] >> off;
        v |= (words[w + 1] << 1) << (63 - off);
        m |= static_cast<uint64_t>(((v & mask) - lo) <= span) << j;
        bitpos += bits;
      }
    } else {
      for (int j = 0; j < nb; ++j) {
        const size_t w = bitpos >> 6;
        const int off = static_cast<int>(bitpos & 63);
        uint64_t v = words[w] >> off;
        v |= (words[w + 1] << 1) << (63 - off);
        m |= static_cast<uint64_t>(((v & mask) - lo) <= span) << j;
        bitpos += bits;
      }
    }
    selw[sw] = refine ? (selw[sw] & m) : m;
    ++sw;
    i += nb;
  }
}

uint64_t BitPacked::Sum(size_t start, size_t count) const {
  assert(start + count <= n_);
  if (bits_ == 0) return 0;
  const int bits = bits_;
  const uint64_t mask = mask_;
  const uint64_t* words = words_.data();
  size_t bitpos = start * static_cast<size_t>(bits);
  uint64_t acc = 0;
  for (size_t i = 0; i < count; ++i) {
    const size_t w = bitpos >> 6;
    const int off = static_cast<int>(bitpos & 63);
    uint64_t v = words[w] >> off;
    v |= (words[w + 1] << 1) << (63 - off);
    acc += v & mask;
    bitpos += bits;
  }
  return acc;
}

void BitPacked::SumRange(size_t start, size_t count, uint64_t lo, uint64_t hi,
                         uint64_t* sum, uint64_t* matches) const {
  assert(start + count <= n_);
  uint64_t acc = 0;
  uint64_t cnt = 0;
  if (bits_ == 0) {
    if (lo == 0) cnt = count;  // all elements are 0; they contribute 0
    *sum = 0;
    *matches = cnt;
    return;
  }
  const int bits = bits_;
  const uint64_t mask = mask_;
  const uint64_t* words = words_.data();
  size_t bitpos = start * static_cast<size_t>(bits);
  for (size_t i = 0; i < count; ++i) {
    const size_t w = bitpos >> 6;
    const int off = static_cast<int>(bitpos & 63);
    uint64_t v = words[w] >> off;
    v |= (words[w + 1] << 1) << (63 - off);
    v &= mask;
    const uint64_t match = (v >= lo) & (v <= hi);
    acc += v * match;
    cnt += match;
    bitpos += bits;
  }
  *sum = acc;
  *matches = cnt;
}

uint64_t CountRuns(std::span<const int64_t> values) {
  if (values.empty()) return 0;
  uint64_t runs = 1;
  for (size_t i = 1; i < values.size(); ++i) {
    runs += values[i] != values[i - 1];
  }
  return runs;
}

const char* SegEncodingName(SegEncoding e) {
  switch (e) {
    case SegEncoding::kDictRle: return "DICT_RLE";
    case SegEncoding::kDictPacked: return "DICT_PACKED";
    case SegEncoding::kRawPacked: return "RAW_PACKED";
  }
  return "?";
}

}  // namespace hd
