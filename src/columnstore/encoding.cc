#include "columnstore/encoding.h"

#include <cassert>

namespace hd {

int BitsFor(uint64_t v) {
  int b = 0;
  while (v != 0) {
    ++b;
    v >>= 1;
  }
  return b;
}

void BitPacked::Pack(std::span<const uint64_t> values) {
  n_ = values.size();
  uint64_t maxv = 0;
  for (uint64_t v : values) maxv = v > maxv ? v : maxv;
  bits_ = BitsFor(maxv);
  if (bits_ == 0) {
    words_.clear();
    return;
  }
  const size_t total_bits = n_ * static_cast<size_t>(bits_);
  words_.assign((total_bits + 63) / 64, 0);
  for (size_t i = 0; i < n_; ++i) {
    const size_t bitpos = i * bits_;
    const size_t w = bitpos >> 6;
    const int off = static_cast<int>(bitpos & 63);
    words_[w] |= values[i] << off;
    if (off + bits_ > 64) {
      words_[w + 1] |= values[i] >> (64 - off);
    }
  }
}

uint64_t BitPacked::Get(size_t i) const {
  if (bits_ == 0) return 0;
  const size_t bitpos = i * bits_;
  const size_t w = bitpos >> 6;
  const int off = static_cast<int>(bitpos & 63);
  uint64_t v = words_[w] >> off;
  if (off + bits_ > 64) {
    v |= words_[w + 1] << (64 - off);
  }
  const uint64_t mask = bits_ == 64 ? ~0ull : ((1ull << bits_) - 1);
  return v & mask;
}

void BitPacked::Decode(size_t start, size_t count, uint64_t* out) const {
  assert(start + count <= n_);
  if (bits_ == 0) {
    for (size_t i = 0; i < count; ++i) out[i] = 0;
    return;
  }
  // Word-sequential unpack: track the bit cursor instead of recomputing
  // word/offset per element (the hot loop of every columnstore scan).
  const int bits = bits_;
  const uint64_t mask = bits == 64 ? ~0ull : ((1ull << bits) - 1);
  size_t bitpos = start * static_cast<size_t>(bits);
  size_t w = bitpos >> 6;
  int off = static_cast<int>(bitpos & 63);
  const uint64_t* words = words_.data();
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = words[w] >> off;
    if (off + bits > 64) {
      v |= words[w + 1] << (64 - off);
    }
    out[i] = v & mask;
    off += bits;
    w += static_cast<size_t>(off >> 6);
    off &= 63;
  }
}

void BitPacked::EvalRange(size_t start, size_t count, uint64_t lo,
                          uint64_t hi, bool refine, uint8_t* out) const {
  assert(start + count <= n_);
  if (bits_ == 0) {
    const uint8_t match = lo == 0;  // every element is 0
    if (refine) {
      if (!match) {
        for (size_t i = 0; i < count; ++i) out[i] = 0;
      }
    } else {
      for (size_t i = 0; i < count; ++i) out[i] = match;
    }
    return;
  }
  const int bits = bits_;
  const uint64_t mask = bits == 64 ? ~0ull : ((1ull << bits) - 1);
  size_t bitpos = start * static_cast<size_t>(bits);
  size_t w = bitpos >> 6;
  int off = static_cast<int>(bitpos & 63);
  const uint64_t* words = words_.data();
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = words[w] >> off;
    if (off + bits > 64) {
      v |= words[w + 1] << (64 - off);
    }
    v &= mask;
    const uint8_t match = (v >= lo) & (v <= hi);
    out[i] = refine ? (out[i] & match) : match;
    off += bits;
    w += static_cast<size_t>(off >> 6);
    off &= 63;
  }
}

uint64_t CountRuns(std::span<const int64_t> values) {
  if (values.empty()) return 0;
  uint64_t runs = 1;
  for (size_t i = 1; i < values.size(); ++i) {
    runs += values[i] != values[i - 1];
  }
  return runs;
}

const char* SegEncodingName(SegEncoding e) {
  switch (e) {
    case SegEncoding::kDictRle: return "DICT_RLE";
    case SegEncoding::kDictPacked: return "DICT_PACKED";
    case SegEncoding::kRawPacked: return "RAW_PACKED";
  }
  return "?";
}

}  // namespace hd
