// Column segment encodings: bit-packing, dictionary, run-length.
//
// Mirrors the SQL Server columnstore compression pipeline described in
// Section 2 of the paper: values are dictionary-encoded when the domain is
// small, then either run-length encoded (when sorting produced long runs)
// or bit-packed. Each encoder reports its exact encoded byte size, which
// the advisor's size-estimation work (Section 4.4) is validated against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hd {

/// Number of bits needed to represent `v` (v >= 0); 0 for v == 0.
int BitsFor(uint64_t v);

/// Fixed-width bit-packed array of unsigned values.
class BitPacked {
 public:
  BitPacked() = default;

  /// Pack `values` using width = BitsFor(max).
  void Pack(std::span<const uint64_t> values);

  uint64_t Get(size_t i) const;
  size_t size() const { return n_; }
  int bit_width() const { return bits_; }
  size_t byte_size() const { return words_.size() * 8 + sizeof(*this); }

  /// Unpack [start, start+count) into out.
  void Decode(size_t start, size_t count, uint64_t* out) const;

  /// Evaluate `lo <= value <= hi` for elements [start, start+count)
  /// directly over the packed words — the encoded-domain predicate kernel
  /// (no value materialization). refine=false writes out[i] = match;
  /// refine=true ANDs the match into out[i].
  void EvalRange(size_t start, size_t count, uint64_t lo, uint64_t hi,
                 bool refine, uint8_t* out) const;

 private:
  std::vector<uint64_t> words_;
  size_t n_ = 0;
  int bits_ = 0;
};

/// One maximal run of identical values.
struct Run {
  uint32_t code;    // dictionary code (or raw offset value)
  uint32_t length;
};

/// Encoding selected for a segment.
enum class SegEncoding : uint8_t {
  kDictRle,    // dictionary + run-length on codes
  kDictPacked, // dictionary + bit-packed codes
  kRawPacked,  // (value - min) bit-packed, no dictionary
};

const char* SegEncodingName(SegEncoding e);

/// Count maximal runs of identical adjacent values.
uint64_t CountRuns(std::span<const int64_t> values);

}  // namespace hd
