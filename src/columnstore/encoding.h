// Column segment encodings: bit-packing, dictionary, run-length.
//
// Mirrors the SQL Server columnstore compression pipeline described in
// Section 2 of the paper: values are dictionary-encoded when the domain is
// small, then either run-length encoded (when sorting produced long runs)
// or bit-packed. Each encoder reports its exact encoded byte size, which
// the advisor's size-estimation work (Section 4.4) is validated against.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace hd {

/// Number of bits needed to represent `v` (v >= 0); 0 for v == 0.
inline int BitsFor(uint64_t v) {
  return v == 0 ? 0 : 64 - std::countl_zero(v);
}

/// Word-packed selection bitmap over one scan batch: bit i set = row i
/// survives the predicate chain. Replaces the one-uint8-per-row match
/// vector — 64 rows per word, popcount instead of a byte-summing loop,
/// and O(words) all-pass / none proofs.
///
/// Contract: tail bits past size() are always zero, so Count()/AllSet()/
/// NoneSet() are plain word scans. Reset() keeps the backing store, so one
/// SelVector serves every batch of a scan without reallocating.
class SelVector {
 public:
  SelVector() = default;

  /// Size to `n` rows, all bits clear.
  void Reset(size_t n) {
    n_ = n;
    const size_t nw = NumWords(n);
    if (words_.size() < nw) words_.resize(nw);
    std::memset(words_.data(), 0, nw * sizeof(uint64_t));
  }

  /// Size to `n` rows, all bits set (all-pass fast path).
  void ResetAllSet(size_t n) {
    n_ = n;
    const size_t nw = NumWords(n);
    if (words_.size() < nw) words_.resize(nw);
    if (nw == 0) return;
    std::memset(words_.data(), 0xff, nw * sizeof(uint64_t));
    words_[nw - 1] &= TailMask(n);
  }

  size_t size() const { return n_; }
  size_t num_words() const { return NumWords(n_); }
  uint64_t* words() { return words_.data(); }
  const uint64_t* words() const { return words_.data(); }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i) { words_[i >> 6] |= 1ull << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(1ull << (i & 63)); }

  /// Set bits [b, e) — the RLE per-run writer.
  void SetRange(size_t b, size_t e);
  /// Clear bits [b, e).
  void ClearRange(size_t b, size_t e);

  /// Number of set bits (hardware popcount per word).
  uint64_t Count() const {
    uint64_t c = 0;
    const size_t nw = NumWords(n_);
    for (size_t w = 0; w < nw; ++w) c += std::popcount(words_[w]);
    return c;
  }

  bool AllSet() const {
    const size_t nw = NumWords(n_);
    if (nw == 0) return true;
    for (size_t w = 0; w + 1 < nw; ++w) {
      if (words_[w] != ~0ull) return false;
    }
    return words_[nw - 1] == TailMask(n_);
  }

  bool NoneSet() const {
    const size_t nw = NumWords(n_);
    for (size_t w = 0; w < nw; ++w) {
      if (words_[w] != 0) return false;
    }
    return true;
  }

  /// AND another selection of the same size into this one (conjunctive
  /// predicate chains).
  void And(const SelVector& o) {
    const size_t nw = NumWords(n_);
    for (size_t w = 0; w < nw; ++w) words_[w] &= o.words_[w];
  }

  /// Materialize set-bit positions into `out` (capacity >= size()).
  /// Returns the number of indices written. Skips empty words whole; a set
  /// bit costs one countr_zero + clear-lowest-bit.
  int ToIndices(uint32_t* out) const {
    int k = 0;
    const size_t nw = NumWords(n_);
    for (size_t w = 0; w < nw; ++w) {
      uint64_t bits = words_[w];
      const uint32_t base = static_cast<uint32_t>(w << 6);
      while (bits != 0) {
        out[k++] = base + static_cast<uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
      }
    }
    return k;
  }

 private:
  static size_t NumWords(size_t n) { return (n + 63) >> 6; }
  /// Mask of valid bits in the last word (n > 0).
  static uint64_t TailMask(size_t n) {
    const int tail = static_cast<int>(n & 63);
    return tail == 0 ? ~0ull : (1ull << tail) - 1;
  }

  std::vector<uint64_t> words_;
  size_t n_ = 0;
};

/// Fixed-width bit-packed array of unsigned values.
class BitPacked {
 public:
  BitPacked() = default;

  /// Pack `values` using width = BitsFor(max).
  void Pack(std::span<const uint64_t> values);

  /// Random access. Inline: called per-element inside scan and gather
  /// loops; the value mask is precomputed at Pack() time, so a call is two
  /// shifts, a conditional straddle fixup, and an AND.
  uint64_t Get(size_t i) const {
    if (bits_ == 0) return 0;
    const size_t bitpos = i * static_cast<size_t>(bits_);
    const size_t w = bitpos >> 6;
    const int off = static_cast<int>(bitpos & 63);
    uint64_t v = words_[w] >> off;
    if (off + bits_ > 64) {
      v |= words_[w + 1] << (64 - off);
    }
    return v & mask_;
  }

  size_t size() const { return n_; }
  int bit_width() const { return bits_; }
  /// Encoded size; the trailing pad word Pack() appends (decode-kernel
  /// bounds slack, not data) is excluded.
  size_t byte_size() const {
    return (words_.empty() ? 0 : words_.size() - 1) * 8 + sizeof(*this);
  }

  /// Unpack [start, start+count) into out. Width-specialized: bit widths
  /// that divide 64 unpack whole words with an unrolled, auto-vectorizable
  /// inner loop; other widths run a branch-free two-word gather.
  void Decode(size_t start, size_t count, uint64_t* out) const;

  /// Late materialization: unpack only rows start+sel[k] (sel ascending,
  /// relative to start) into out[k].
  void DecodeSelected(size_t start, std::span<const uint32_t> sel,
                      uint64_t* out) const;

  /// Evaluate `lo <= value <= hi` for elements [start, start+count)
  /// directly over the packed words — the encoded-domain predicate kernel
  /// (no value materialization). Match bits are packed into `sel` (bit i =
  /// element start+i). refine=false overwrites sel's words; refine=true
  /// ANDs into them. `sel` must be Reset/ResetAllSet to `count` rows.
  void EvalRange(size_t start, size_t count, uint64_t lo, uint64_t hi,
                 bool refine, SelVector* sel) const;

  /// Σ values[start, start+count) in the packed domain (no output buffer).
  uint64_t Sum(size_t start, size_t count) const;

  /// Sum + count of elements in [lo, hi] over [start, start+count) — the
  /// encoded-domain filtered-SUM kernel.
  void SumRange(size_t start, size_t count, uint64_t lo, uint64_t hi,
                uint64_t* sum, uint64_t* matches) const;

 private:
  std::vector<uint64_t> words_;
  size_t n_ = 0;
  int bits_ = 0;
  uint64_t mask_ = 0;  ///< (1 << bits_) - 1, precomputed at Pack()
};

/// One maximal run of identical values.
struct Run {
  uint32_t code;    // dictionary code (or raw offset value)
  uint32_t length;
};

/// Encoding selected for a segment.
enum class SegEncoding : uint8_t {
  kDictRle,    // dictionary + run-length on codes
  kDictPacked, // dictionary + bit-packed codes
  kRawPacked,  // (value - min) bit-packed, no dictionary
};

const char* SegEncodingName(SegEncoding e);

/// Count maximal runs of identical adjacent values.
uint64_t CountRuns(std::span<const int64_t> values);

}  // namespace hd
