// Columnstore index (CSI): row groups + delta store + delete handling.
//
// Faithful to the SQL Server design the paper describes in Section 2:
//   - Bulk loads compress directly into row groups; trickle inserts land
//     in a delta store (a B+ tree) scanned row-at-a-time by queries.
//   - Secondary CSIs take deletes as cheap inserts into a *delete buffer*
//     (another B+ tree of row locators); scans pay an anti-semi-join
//     against it.
//   - Primary CSIs have no delete buffer: a delete must locate the row in
//     the compressed row groups (a scan) to set its bit in the *delete
//     bitmap*, keeping scans fast but making small deletes expensive.
//   - Reorganize() models the background tuple mover: compresses the delta
//     store into row groups and folds the delete buffer into bitmaps.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btree/btree.h"
#include "columnstore/row_group.h"
#include "common/bloom.h"
#include "common/status.h"

namespace hd {

/// Vectorized scan batch size (SQL Server batch mode operates on ~900-row
/// batches; we use a cache-friendly 4096).
constexpr int kBatchSize = 4096;

/// A batch of decoded column values handed to batch-mode operators.
///
/// Two layouts, distinguished by `sel`:
///   - sel == nullptr (compact): row j of the batch lives at index j of
///     every column array (and of `locators`). This is what ScanGroups /
///     ScanDelta emit.
///   - sel != nullptr (selection-vector): the column arrays are a *dense*
///     decode of a wider range and row j lives at physical index sel[j]
///     (ascending, 0 <= j < count) of every column array and of
///     `locators`. Shared scans emit this form so consumers never pay a
///     gather/compaction for rows another query's predicate would have
///     dropped — the aggregate/projection kernels apply the indirection
///     themselves. Only handlers on shared-scan routes receive it.
struct ColumnBatch {
  int count = 0;
  /// One pointer per requested column, each `count` values (or a dense
  /// slice indexed through `sel`).
  std::vector<const int64_t*> cols;
  /// Row locators (base RowId or packed primary key), `count` values.
  const int64_t* locators = nullptr;
  /// Selection indices into the dense column arrays; nullptr = compact.
  const uint32_t* sel = nullptr;
};

/// Inclusive range predicate on one stored column, in packed value space.
struct SegPredicate {
  int col = 0;  // position within this index's column list
  int64_t lo = INT64_MIN;
  int64_t hi = INT64_MAX;
};

/// Bloom pre-filter pushed into a scan by a hash join (sideways
/// information passing): the decoded values of stored column `col` are
/// tested against the join's build-side filter before any *other* column
/// is materialized, so rows that cannot join never enter the pipeline.
/// False positives only pass extra rows (the exact probe drops them);
/// a joinable row is never filtered. `m` is the owning *join* operator's
/// metrics block — join_bloom_checks / join_bloom_filtered are work done
/// on that join's behalf, per the attribution contract in metrics.h.
struct ScanKeyFilter {
  int col = 0;
  const BlockedBloomFilter* bloom = nullptr;
  QueryMetrics* m = nullptr;
};

/// One aggregate the scan layer may answer entirely in the encoded domain
/// (TryPushdownAggregates). `col` is a stored-column position; ignored for
/// kCount.
struct PushAggSpec {
  enum class Fn : uint8_t { kCount, kSum, kMin, kMax };
  Fn fn = Fn::kCount;
  int col = 0;
};

/// Accumulator for one pushed-down aggregate, merged across row groups.
/// kCount fills `count`; kSum fills `sum` + `count` (rows contributing,
/// for AVG); kMin/kMax fill `minmax` with `has` set once any row matched.
struct PushAggState {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t minmax = 0;
  bool has = false;
};

class ColumnStoreIndex {
 public:
  enum class Kind { kPrimary, kSecondary };

  /// `num_columns` stored columns (the table maps its schema onto them).
  ColumnStoreIndex(Kind kind, int num_columns, BufferPool* pool,
                   CsiOptions opts = CsiOptions());
  /// Retracts this index's contribution to the process health gauges.
  ~ColumnStoreIndex();

  Kind kind() const { return kind_; }
  int num_columns() const { return ncols_; }
  const CsiOptions& options() const { return opts_; }

  /// WAL rule plumbing (storage/wal.h): LSN of the last logged mutation
  /// (delta insert / delete / reorg) applied to this index. Stamped by
  /// catalog::Table; checked at checkpoint time.
  uint64_t recovery_lsn() const { return recovery_lsn_; }
  void set_recovery_lsn(uint64_t lsn) {
    if (lsn > recovery_lsn_) recovery_lsn_ = lsn;
  }

  /// Bulk load column-major data; `locators[i]` identifies row i in the
  /// base table (RowId, or the row's own id when this is the primary).
  void BulkLoad(std::vector<std::vector<int64_t>> cols,
                std::vector<int64_t> locators);

  /// Trickle-insert one row into the delta store. A failed automatic delta
  /// flush does NOT fail the insert — the delta simply stays resident
  /// (scans union it) and a later flush retries.
  Status Insert(std::span<const int64_t> row, int64_t locator,
                QueryMetrics* m);

  /// Statement-level delete of a set of locators. Secondary: append each
  /// to the delete buffer. Primary: scan row-group locator segments to
  /// find positions and set delete bitmap bits (the expensive path).
  Status DeleteBatch(std::span<const int64_t> locators, QueryMetrics* m);

  /// Number of live rows (compressed + delta - deleted).
  uint64_t num_rows() const;
  uint64_t compressed_rows() const { return compressed_rows_; }
  uint64_t delta_rows() const { return delta_ ? delta_->num_entries() : 0; }
  uint64_t delete_buffer_rows() const {
    return delete_buffer_ ? delete_buffer_->num_entries() : 0;
  }
  int num_row_groups() const { return static_cast<int>(groups_.size()); }
  const RowGroup& row_group(int g) const { return *groups_[g]; }

  /// Compressed size (all row groups) plus delta/delete structures.
  uint64_t size_bytes() const;
  /// Compressed bytes of one stored column across row groups — the
  /// per-column size the what-if API needs (Section 4.2).
  uint64_t column_size_bytes(int col) const;

  /// Vectorized scan of row groups [group_begin, group_end) — the unit of
  /// parallelism (one row group = one morsel). Decodes `cols_needed`,
  /// applies `preds` in the encoded domain (dictionary code space, per-run
  /// RLE evaluation, min/max all-pass fast path) with segment elimination,
  /// filters deleted rows (bitmap + delete-buffer anti-join), and invokes
  /// `fn` per batch. `fn` returns false to stop.
  /// `need_locators` = false lets read-only scans skip decoding locator
  /// segments (they are still decoded when delete filtering requires it);
  /// ColumnBatch::locators is null in that case.
  /// `delete_snapshot`, when non-null, is a caller-held delete-buffer
  /// snapshot shared across the morsels of one scan (so a parallel scan
  /// does not re-snapshot per row group); null snapshots internally.
  /// `key_filters`, when non-null, are join Bloom pre-filters evaluated
  /// on the decoded key column(s) after predicate/delete filtering and
  /// before any other column is gathered (each filter's column must be in
  /// `cols_needed`).
  Status ScanGroups(int group_begin, int group_end,
                    const std::vector<int>& cols_needed,
                    const std::vector<SegPredicate>& preds,
                    const std::function<bool(const ColumnBatch&)>& fn,
                    QueryMetrics* m, bool need_locators = true,
                    const std::unordered_set<int64_t>* delete_snapshot =
                        nullptr,
                    const std::vector<ScanKeyFilter>* key_filters =
                        nullptr) const;

  /// Encoded-domain aggregate pushdown over row group `g` (Fig. 4
  /// single-column aggregates): COUNT = popcount of the selection bitmap,
  /// SUM = Σ code·runlen (RLE) / packed-domain sums, MIN/MAX from segment
  /// min/max or the sorted dictionary — zero rows decoded. Returns true
  /// and folds each spec into acc[i] when EVERY spec is answerable for
  /// this group; returns false (acc untouched) when the group has deleted
  /// rows, the delete buffer is non-empty, or a spec needs row
  /// materialization (e.g. SUM under a predicate on a different column) —
  /// the caller then falls back to ScanGroups for the group. `preds`
  /// follows ScanGroups semantics. On success `*rows_aggregated` (when
  /// non-null) is set to the number of rows that matched the predicates —
  /// the rows the aggregate logically consumed (operator row-flow
  /// accounting).
  bool TryPushdownAggregates(int g, const std::vector<SegPredicate>& preds,
                             std::span<const PushAggSpec> specs,
                             PushAggState* acc,
                             const std::unordered_set<int64_t>* delete_snapshot,
                             QueryMetrics* m,
                             uint64_t* rows_aggregated = nullptr) const;

  /// Dense decoded image of one row group — the payload of a shared-scan
  /// ring slot. One decode is produced by whichever consumer claims the
  /// group; every attached consumer then evaluates its own predicates
  /// against the dense arrays via ScanDecodedGroup.
  struct DecodedGroup {
    int group = -1;
    size_t rows = 0;
    /// Stored-column positions decoded, parallel to `values`.
    std::vector<int> cols;
    std::vector<std::vector<int64_t>> values;
    /// Dense locator decode; empty when no consumer (and no delete
    /// filtering) needs locators.
    std::vector<int64_t> locators;
    /// Decoded bytes this image represents (8 bytes × rows × arrays) —
    /// what each additional consumer saves by not decoding privately.
    uint64_t decode_bytes = 0;

    const int64_t* column(int col) const {
      for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i] == col) return values[i].data();
      }
      return nullptr;
    }
  };

  /// Decode row group `g` densely (all rows, no predicate) into `out`,
  /// reusing its buffers. Touches the segments (I/O accounting) and
  /// charges rows_decoded to `m` — the decoder's metrics; sharing
  /// consumers are charged nothing here.
  Status DecodeGroupDense(int g, const std::vector<int>& cols,
                          bool want_locators, DecodedGroup* out,
                          QueryMetrics* m) const;

  /// Consumer side of a shared scan: evaluate `preds` over row group
  /// `dg.group` in the encoded domain (same elimination / run-eval / bulk
  /// heuristics as ScanGroups), but emit batches that point INTO the dense
  /// decoded image — sparse batches carry a selection vector
  /// (ColumnBatch::sel) instead of gathering, so the consumer pays no
  /// per-row materialization. `dg` must contain every column in
  /// `cols_needed` (and locators when delete filtering or `need_locators`
  /// requires them). `*stopped` is set when `fn` returned false (the
  /// caller detaches from the pass). Charges rows_scanned / rows_selected
  /// / rows_output to `m` but NOT rows_decoded.
  Status ScanDecodedGroup(const DecodedGroup& dg,
                          const std::vector<int>& cols_needed,
                          const std::vector<SegPredicate>& preds,
                          const std::function<bool(const ColumnBatch&)>& fn,
                          QueryMetrics* m, bool need_locators,
                          const std::unordered_set<int64_t>* delete_snapshot,
                          bool* stopped) const;

  /// Row-mode scan of the delta store (queries must union this in).
  /// `key_filters` follows ScanGroups semantics (delta rows carry every
  /// column, so the filter column need not be in `cols_needed`).
  Status ScanDelta(const std::vector<int>& cols_needed,
                   const std::vector<SegPredicate>& preds,
                   const std::function<bool(const ColumnBatch&)>& fn,
                   QueryMetrics* m, bool need_locators = true,
                   const std::vector<ScanKeyFilter>* key_filters =
                       nullptr) const;

  /// Tuple mover: fold delta + delete buffer into compressed row groups.
  /// Fails (leaving the index fully queryable, reorganize deferred) when
  /// the `csi.reorganize` failpoint or an underlying read fires.
  Status Reorganize();

  /// Compress a full delta store into a new row group (invoked
  /// automatically when the delta reaches the row-group size, like SQL
  /// Server's tuple mover closing a delta row group). On failure — the
  /// `csi.compress_delta` failpoint or a propagated I/O error — the delta
  /// store is left intact and queryable; the flush is simply deferred.
  Status CompressDelta(QueryMetrics* m);

  /// Fold the delete buffer into per-row-group delete bitmaps (the
  /// background compaction of Section 2). Invoked automatically past
  /// CsiOptions::delete_buffer_compact_threshold. On mid-way failure the
  /// buffer is kept (bits already folded stay set — scans consult both, so
  /// no row resurrects) and compaction is deferred.
  Status CompactDeleteBuffer(QueryMetrics* m);

  /// Snapshot the delete-buffer locators for a scan's anti-join (charged
  /// as a delete-buffer B+ tree scan).
  Status SnapshotDeleteBuffer(std::unordered_set<int64_t>* out,
                              QueryMetrics* m) const;

 private:
  void BuildGroups(std::vector<std::vector<int64_t>> cols,
                   std::vector<int64_t> locators);

  /// Publish the delta between this index's current health stats and what
  /// it last published into the process-wide telemetry gauges
  /// (csi.row_groups, csi.delta_rows, csi.delete_buffer_rows, ... — see
  /// docs/OBSERVABILITY.md). Called after every mutating operation; the
  /// destructor retracts the remainder, so process gauges always equal
  /// the sum over live indexes.
  void SyncTelemetry();

  /// Last values published to the gauges (deltas aggregate correctly
  /// across many live indexes).
  struct Published {
    int64_t row_groups = 0;
    int64_t compressed_rows = 0;
    int64_t deleted_rows = 0;
    int64_t delta_rows = 0;
    int64_t delete_buffer_rows = 0;
    int64_t compressed_bytes = 0;
    int64_t raw_bytes = 0;
  };
  Published published_;

  Kind kind_;
  int ncols_;
  BufferPool* pool_;
  CsiOptions opts_;
  std::vector<std::unique_ptr<RowGroup>> groups_;
  uint64_t compressed_rows_ = 0;
  uint64_t compressed_deleted_ = 0;

  /// Delta store: B+ tree keyed by insert sequence; payload = row cols +
  /// locator. The side map locates a delta row by locator in O(1) so
  /// statement-level deletes need not scan the delta.
  std::unique_ptr<BTree> delta_;
  int64_t delta_seq_ = 0;
  std::unordered_map<int64_t, int64_t> delta_key_of_locator_;

  /// Secondary only: delete buffer keyed by locator.
  std::unique_ptr<BTree> delete_buffer_;

  uint64_t recovery_lsn_ = 0;
};

}  // namespace hd
