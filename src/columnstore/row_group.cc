#include "columnstore/row_group.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_set>

namespace hd {

namespace {

/// Approximate distinct count of a column (exact up to a cap).
uint64_t DistinctCount(const std::vector<int64_t>& v, size_t cap) {
  std::unordered_set<int64_t> s;
  s.reserve(std::min(v.size(), cap));
  for (int64_t x : v) {
    s.insert(x);
    if (s.size() >= cap) return cap;
  }
  return s.size();
}

}  // namespace

void RowGroup::Build(std::vector<std::vector<int64_t>> cols,
                     std::vector<int64_t> locators, const CsiOptions& opts,
                     BufferPool* pool) {
  const int ncols = static_cast<int>(cols.size());
  n_ = locators.size();
  for (auto& c : cols) {
    assert(c.size() == n_);
    (void)c;
  }

  if (opts.compression_sort && ncols > 0 && n_ > 1) {
    // Greedy VertiPaq-style ordering: sort columns by ascending distinct
    // count (fewest-runs-first heuristic from Section 4.4), then sort the
    // row permutation lexicographically in that column order.
    std::vector<int> order(ncols);
    std::iota(order.begin(), order.end(), 0);
    std::vector<uint64_t> ndv(ncols);
    for (int c = 0; c < ncols; ++c) ndv[c] = DistinctCount(cols[c], 1u << 16);
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return ndv[a] < ndv[b]; });
    std::vector<uint32_t> perm(n_);
    std::iota(perm.begin(), perm.end(), 0u);
    std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
      for (int c : order) {
        if (cols[c][a] != cols[c][b]) return cols[c][a] < cols[c][b];
      }
      return a < b;
    });
    // Apply the permutation to every column and the locators.
    std::vector<int64_t> tmp(n_);
    for (int c = 0; c < ncols; ++c) {
      for (size_t i = 0; i < n_; ++i) tmp[i] = cols[c][perm[i]];
      cols[c].swap(tmp);
    }
    for (size_t i = 0; i < n_; ++i) tmp[i] = locators[perm[i]];
    locators.swap(tmp);
  }

  segments_.resize(ncols);
  for (int c = 0; c < ncols; ++c) {
    segments_[c].Build(cols[c], pool);
  }
  locator_seg_.Build(locators, pool);
  del_bits_.assign((n_ + 63) / 64, 0);
  deleted_count_ = 0;
}

uint64_t RowGroup::size_bytes() const {
  uint64_t b = locator_seg_.size_bytes() + del_bits_.size() * 8;
  for (const auto& s : segments_) b += s.size_bytes();
  return b;
}

}  // namespace hd
