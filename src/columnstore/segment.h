// Column segment: one column's worth of one row group, compressed.
//
// Carries the small materialized aggregates (min/max) that enable data
// skipping / segment elimination (Section 3.2.1 and Moerkotte's SMAs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "columnstore/encoding.h"
#include "common/metrics.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace hd {

/// Immutable compressed column segment over packed int64 values.
class ColumnSegment {
 public:
  ColumnSegment() = default;

  /// Compress `values`. The encoder picks dictionary+RLE when runs are
  /// long, dictionary+bitpack when the domain is small, raw bitpack
  /// otherwise — mimicking SQL Server's per-segment encoding choice.
  void Build(std::span<const int64_t> values, BufferPool* pool);

  ~ColumnSegment();
  ColumnSegment(ColumnSegment&&) noexcept;
  ColumnSegment& operator=(ColumnSegment&&) noexcept;
  ColumnSegment(const ColumnSegment&) = delete;
  ColumnSegment& operator=(const ColumnSegment&) = delete;

  size_t num_rows() const { return n_; }
  int64_t min_value() const { return min_; }
  int64_t max_value() const { return max_; }
  uint64_t distinct_count() const { return dict_.size() ? dict_.size() : approx_ndv_; }
  uint64_t num_runs() const { return num_runs_; }
  SegEncoding encoding() const { return enc_; }
  /// Exact encoded size (data + dictionary + header).
  uint64_t size_bytes() const { return size_bytes_; }
  ExtentId extent() const { return extent_; }

  /// True if no value in [lo, hi] can be present (segment elimination).
  bool CanSkip(int64_t lo, int64_t hi) const { return hi < min_ || lo > max_; }

  /// A value-domain range predicate translated into this segment's encoded
  /// domain. Dictionary segments binary-search the sorted dictionary ONCE
  /// (per segment, not per row); raw bit-packed segments shift the bounds
  /// into offset space. `none` also covers dictionary misses: the range
  /// overlaps [min,max] but contains no stored value.
  struct CodeRange {
    uint64_t lo = 0;   ///< inclusive lower bound, code/offset space
    uint64_t hi = 0;   ///< inclusive upper bound, code/offset space
    bool none = false; ///< no row can match
    bool all = false;  ///< every row matches (min/max proof): decode-only
  };
  CodeRange TranslateRange(int64_t lo, int64_t hi) const;

  /// Evaluate `value in [lo,hi]` for rows [start, start+count) entirely in
  /// the encoded domain: dictionary/raw segments compare codes (no value
  /// materialization), RLE segments test once per run instead of per row.
  /// Match bits land in `sel` (bit i = row start+i; sel sized to count):
  /// refine=false overwrites, refine=true ANDs (conjunctive predicate
  /// chains). Returns the number of RLE runs examined (0 for non-RLE
  /// encodings).
  uint64_t EvalRange(size_t start, size_t count, const CodeRange& cr,
                     bool refine, SelVector* sel) const;

  /// Decode rows [start, start+count) into `out`. Charges buffer-pool
  /// access for the segment on first touch per query via Touch().
  void Decode(size_t start, size_t count, int64_t* out) const;

  /// Late materialization: decode only rows start+sel[k] (sel ascending,
  /// offsets relative to start) into out[k]. RLE walks runs once; packed
  /// encodings gather.
  void DecodeSelected(size_t start, std::span<const uint32_t> sel,
                      int64_t* out) const;

  // Encoded-domain single-column aggregate kernels (Fig. 4 pushdown).
  // None of these materialize a decode buffer.

  /// Σ of every value in the segment (int64 wrap semantics, matching the
  /// executor's integer SUM fast path).
  int64_t SumAll() const;

  /// Σ and count of values whose own code falls in `cr` (cr from
  /// TranslateRange on THIS segment; cr.none/cr.all handled by caller).
  /// Returns RLE runs examined (0 for non-RLE).
  uint64_t SumWhere(const CodeRange& cr, int64_t* sum,
                    uint64_t* matches) const;

  /// Min/max of values whose own code falls in `cr`. Dictionary segments
  /// answer from the sorted dictionary (every code occurs); raw segments
  /// scan packed offsets. False if no row matches.
  bool MinMaxWhere(const CodeRange& cr, int64_t* mn, int64_t* mx) const;

  /// Account a scan touch of this segment (cold I/O if non-resident).
  /// Fails only when the underlying (simulated) read fails; the segment is
  /// then not counted as scanned and the caller must stop using it.
  Status Touch(BufferPool* pool, QueryMetrics* m) const {
    HD_RETURN_IF_ERROR(pool->Access(extent_, IoPattern::kSequential, m));
    if (m != nullptr) {
      m->segments_scanned += 1;
      m->bytes_processed += size_bytes_;
    }
    return Status::OK();
  }

 private:
  void Reset();

  size_t n_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  uint64_t num_runs_ = 0;
  uint64_t approx_ndv_ = 0;
  SegEncoding enc_ = SegEncoding::kRawPacked;
  uint64_t size_bytes_ = 0;
  ExtentId extent_ = kInvalidExtent;
  BufferPool* pool_ = nullptr;

  // kDictRle / kDictPacked: sorted distinct values.
  std::vector<int64_t> dict_;
  // kDictRle: runs over dictionary codes.
  std::vector<Run> runs_;
  // kDictPacked: codes; kRawPacked: value - min_.
  BitPacked packed_;
  // Prefix of cumulative run lengths for O(log R) positional decode.
  std::vector<uint32_t> run_offsets_;
};

}  // namespace hd
