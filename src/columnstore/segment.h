// Column segment: one column's worth of one row group, compressed.
//
// Carries the small materialized aggregates (min/max) that enable data
// skipping / segment elimination (Section 3.2.1 and Moerkotte's SMAs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "columnstore/encoding.h"
#include "common/metrics.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace hd {

/// Immutable compressed column segment over packed int64 values.
class ColumnSegment {
 public:
  ColumnSegment() = default;

  /// Compress `values`. The encoder picks dictionary+RLE when runs are
  /// long, dictionary+bitpack when the domain is small, raw bitpack
  /// otherwise — mimicking SQL Server's per-segment encoding choice.
  void Build(std::span<const int64_t> values, BufferPool* pool);

  ~ColumnSegment();
  ColumnSegment(ColumnSegment&&) noexcept;
  ColumnSegment& operator=(ColumnSegment&&) noexcept;
  ColumnSegment(const ColumnSegment&) = delete;
  ColumnSegment& operator=(const ColumnSegment&) = delete;

  size_t num_rows() const { return n_; }
  int64_t min_value() const { return min_; }
  int64_t max_value() const { return max_; }
  uint64_t distinct_count() const { return dict_.size() ? dict_.size() : approx_ndv_; }
  uint64_t num_runs() const { return num_runs_; }
  SegEncoding encoding() const { return enc_; }
  /// Exact encoded size (data + dictionary + header).
  uint64_t size_bytes() const { return size_bytes_; }
  ExtentId extent() const { return extent_; }

  /// True if no value in [lo, hi] can be present (segment elimination).
  bool CanSkip(int64_t lo, int64_t hi) const { return hi < min_ || lo > max_; }

  /// A value-domain range predicate translated into this segment's encoded
  /// domain. Dictionary segments binary-search the sorted dictionary ONCE
  /// (per segment, not per row); raw bit-packed segments shift the bounds
  /// into offset space. `none` also covers dictionary misses: the range
  /// overlaps [min,max] but contains no stored value.
  struct CodeRange {
    uint64_t lo = 0;   ///< inclusive lower bound, code/offset space
    uint64_t hi = 0;   ///< inclusive upper bound, code/offset space
    bool none = false; ///< no row can match
    bool all = false;  ///< every row matches (min/max proof): decode-only
  };
  CodeRange TranslateRange(int64_t lo, int64_t hi) const;

  /// Evaluate `value in [lo,hi]` for rows [start, start+count) entirely in
  /// the encoded domain: dictionary/raw segments compare codes (no value
  /// materialization), RLE segments test once per run instead of per row.
  /// refine=false writes out[i] = match; refine=true ANDs matches into
  /// out[i] (conjunctive predicate chains). Returns the number of RLE runs
  /// examined (0 for non-RLE encodings).
  uint64_t EvalRange(size_t start, size_t count, const CodeRange& cr,
                     bool refine, uint8_t* out) const;

  /// Decode rows [start, start+count) into `out`. Charges buffer-pool
  /// access for the segment on first touch per query via Touch().
  void Decode(size_t start, size_t count, int64_t* out) const;

  /// Account a scan touch of this segment (cold I/O if non-resident).
  /// Fails only when the underlying (simulated) read fails; the segment is
  /// then not counted as scanned and the caller must stop using it.
  Status Touch(BufferPool* pool, QueryMetrics* m) const {
    HD_RETURN_IF_ERROR(pool->Access(extent_, IoPattern::kSequential, m));
    if (m != nullptr) {
      m->segments_scanned += 1;
      m->bytes_processed += size_bytes_;
    }
    return Status::OK();
  }

 private:
  void Reset();

  size_t n_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  uint64_t num_runs_ = 0;
  uint64_t approx_ndv_ = 0;
  SegEncoding enc_ = SegEncoding::kRawPacked;
  uint64_t size_bytes_ = 0;
  ExtentId extent_ = kInvalidExtent;
  BufferPool* pool_ = nullptr;

  // kDictRle / kDictPacked: sorted distinct values.
  std::vector<int64_t> dict_;
  // kDictRle: runs over dictionary codes.
  std::vector<Run> runs_;
  // kDictPacked: codes; kRawPacked: value - min_.
  BitPacked packed_;
  // Prefix of cumulative run lengths for O(log R) positional decode.
  std::vector<uint32_t> run_offsets_;
};

}  // namespace hd
