#include "columnstore/columnstore.h"

#include <algorithm>
#include <cassert>

#include "common/failpoint.h"
#include "common/telemetry.h"

namespace hd {

namespace {

// Process-wide columnstore health telemetry (paper Section 2 structures:
// delta store depth, delete-bitmap density, row-group fill). Gauges are
// published by delta from SyncTelemetry(), so each one is the sum over
// all live ColumnStoreIndex instances.
struct CsiStats {
  TCounter* inserts = Telemetry::Instance().Counter("csi.inserts");
  TCounter* delta_flushes = Telemetry::Instance().Counter("csi.delta_flushes");
  TCounter* reorganizes = Telemetry::Instance().Counter("csi.reorganizes");
  TCounter* delete_compactions =
      Telemetry::Instance().Counter("csi.delete_compactions");
  TGauge* row_groups = Telemetry::Instance().Gauge("csi.row_groups");
  TGauge* compressed_rows = Telemetry::Instance().Gauge("csi.compressed_rows");
  TGauge* deleted_rows = Telemetry::Instance().Gauge("csi.deleted_rows");
  TGauge* delta_rows = Telemetry::Instance().Gauge("csi.delta_rows");
  TGauge* delete_buffer_rows =
      Telemetry::Instance().Gauge("csi.delete_buffer_rows");
  TGauge* compressed_bytes =
      Telemetry::Instance().Gauge("csi.compressed_bytes");
  TGauge* raw_bytes = Telemetry::Instance().Gauge("csi.raw_bytes");
};

CsiStats& Stats() {
  static CsiStats s;
  return s;
}

}  // namespace

ColumnStoreIndex::ColumnStoreIndex(Kind kind, int num_columns,
                                   BufferPool* pool, CsiOptions opts)
    : kind_(kind), ncols_(num_columns), pool_(pool), opts_(opts) {
  delta_ = std::make_unique<BTree>(/*key_width=*/1,
                                   /*payload_width=*/ncols_ + 1, pool_);
  if (kind_ == Kind::kSecondary) {
    delete_buffer_ = std::make_unique<BTree>(/*key_width=*/1,
                                             /*payload_width=*/0, pool_);
  }
}

ColumnStoreIndex::~ColumnStoreIndex() {
  Stats().row_groups->Add(-published_.row_groups);
  Stats().compressed_rows->Add(-published_.compressed_rows);
  Stats().deleted_rows->Add(-published_.deleted_rows);
  Stats().delta_rows->Add(-published_.delta_rows);
  Stats().delete_buffer_rows->Add(-published_.delete_buffer_rows);
  Stats().compressed_bytes->Add(-published_.compressed_bytes);
  Stats().raw_bytes->Add(-published_.raw_bytes);
}

void ColumnStoreIndex::SyncTelemetry() {
  Published now;
  now.row_groups = static_cast<int64_t>(groups_.size());
  now.compressed_rows = static_cast<int64_t>(compressed_rows_);
  now.deleted_rows = static_cast<int64_t>(compressed_deleted_);
  now.delta_rows = static_cast<int64_t>(delta_rows());
  now.delete_buffer_rows = static_cast<int64_t>(delete_buffer_rows());
  if (now.row_groups == published_.row_groups) {
    // Group set unchanged: the byte totals cannot have moved, and
    // recomputing them walks every segment — skip (keeps the per-insert
    // cost of this sync O(1)).
    now.compressed_bytes = published_.compressed_bytes;
    now.raw_bytes = published_.raw_bytes;
  } else {
    uint64_t cb = 0;
    for (const auto& g : groups_) cb += g->size_bytes();
    now.compressed_bytes = static_cast<int64_t>(cb);
    // Uncompressed footprint of the same rows (cols + locator, 8 B each),
    // for the compression-ratio health signal.
    now.raw_bytes =
        static_cast<int64_t>(compressed_rows_ * (ncols_ + 1) * 8);
  }
  Stats().row_groups->Add(now.row_groups - published_.row_groups);
  Stats().compressed_rows->Add(now.compressed_rows -
                               published_.compressed_rows);
  Stats().deleted_rows->Add(now.deleted_rows - published_.deleted_rows);
  Stats().delta_rows->Add(now.delta_rows - published_.delta_rows);
  Stats().delete_buffer_rows->Add(now.delete_buffer_rows -
                                  published_.delete_buffer_rows);
  Stats().compressed_bytes->Add(now.compressed_bytes -
                                published_.compressed_bytes);
  Stats().raw_bytes->Add(now.raw_bytes - published_.raw_bytes);
  published_ = now;
}

void ColumnStoreIndex::BuildGroups(std::vector<std::vector<int64_t>> cols,
                                   std::vector<int64_t> locators) {
  const size_t n = locators.size();
  if (opts_.sort_col >= 0 && opts_.sort_col < ncols_ && n > 1) {
    // Sorted columnstore: global sort on the projection column before
    // forming row groups (Section 4.5 extension).
    std::vector<uint32_t> perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
    const std::vector<int64_t>& key = cols[opts_.sort_col];
    std::sort(perm.begin(), perm.end(),
              [&](uint32_t a, uint32_t b) { return key[a] < key[b]; });
    std::vector<int64_t> tmp(n);
    for (int c = 0; c < ncols_; ++c) {
      for (size_t i = 0; i < n; ++i) tmp[i] = cols[c][perm[i]];
      cols[c].swap(tmp);
    }
    for (size_t i = 0; i < n; ++i) tmp[i] = locators[perm[i]];
    locators.swap(tmp);
  }
  const size_t rg = opts_.rowgroup_size;
  for (size_t start = 0; start < n; start += rg) {
    const size_t take = std::min(rg, n - start);
    std::vector<std::vector<int64_t>> gcols(ncols_);
    for (int c = 0; c < ncols_; ++c) {
      gcols[c].assign(cols[c].begin() + start, cols[c].begin() + start + take);
    }
    std::vector<int64_t> glocs(locators.begin() + start,
                               locators.begin() + start + take);
    auto g = std::make_unique<RowGroup>();
    g->Build(std::move(gcols), std::move(glocs), opts_, pool_);
    groups_.push_back(std::move(g));
    compressed_rows_ += take;
  }
}

void ColumnStoreIndex::BulkLoad(std::vector<std::vector<int64_t>> cols,
                                std::vector<int64_t> locators) {
  assert(static_cast<int>(cols.size()) == ncols_);
  BuildGroups(std::move(cols), std::move(locators));
  SyncTelemetry();
}

Status ColumnStoreIndex::Insert(std::span<const int64_t> row, int64_t locator,
                                QueryMetrics* m) {
  assert(static_cast<int>(row.size()) == ncols_);
  std::vector<int64_t> payload(row.begin(), row.end());
  payload.push_back(locator);
  int64_t key = delta_seq_++;
  HD_RETURN_IF_ERROR(
      delta_->Insert(std::span<const int64_t>(&key, 1), payload, m));
  delta_key_of_locator_[locator] = key;
  if (delta_->num_entries() >= opts_.rowgroup_size) {
    // A failed flush is a deferral, not an insert failure: the delta keeps
    // growing past the threshold, scans keep unioning it, and the next
    // insert past the threshold (or an explicit Reorganize) retries.
    (void)CompressDelta(m);
  }
  Stats().inserts->Add(1);
  SyncTelemetry();
  return Status::OK();
}

Status ColumnStoreIndex::CompressDelta(QueryMetrics* m) {
  if (delta_rows() == 0) return Status::OK();
  HD_FAILPOINT_RETURN_M("csi.compress_delta", m);
  // Apply pending logical deletes to the old compressed copies first;
  // otherwise a buffered locator could later match the freshly compressed
  // (live) version of the row.
  HD_RETURN_IF_ERROR(CompactDeleteBuffer(m));
  std::vector<std::vector<int64_t>> cols(ncols_);
  std::vector<int64_t> locs;
  HD_RETURN_IF_ERROR(delta_->Scan(
      Bound::Unbounded(), Bound::Unbounded(),
      [&](const int64_t*, const int64_t* payload) {
        for (int c = 0; c < ncols_; ++c) cols[c].push_back(payload[c]);
        locs.push_back(payload[ncols_]);
        return true;
      },
      m));
  const size_t n = locs.size();
  auto g = std::make_unique<RowGroup>();
  g->Build(std::move(cols), std::move(locs), opts_, pool_);
  if (m != nullptr) {
    // Writing the compressed row group is real (sequential) write I/O. A
    // failed write abandons the fresh group before any state changed, so
    // the delta store survives untouched and the flush can be retried.
    HD_RETURN_IF_ERROR(pool_->disk()->Write(g->size_bytes(),
                                            IoPattern::kSequential, m));
  }
  groups_.push_back(std::move(g));
  compressed_rows_ += n;
  delta_ = std::make_unique<BTree>(1, ncols_ + 1, pool_);
  delta_seq_ = 0;
  delta_key_of_locator_.clear();
  Stats().delta_flushes->Add(1);
  SyncTelemetry();
  return Status::OK();
}

Status ColumnStoreIndex::DeleteBatch(std::span<const int64_t> locators,
                                     QueryMetrics* m) {
  if (locators.empty()) return Status::OK();
  if (kind_ == Kind::kSecondary) {
    // Rows still in the delta store are deleted there directly; everything
    // else becomes a fast logical delete via the delete buffer.
    for (int64_t loc : locators) {
      auto it = delta_key_of_locator_.find(loc);
      if (it != delta_key_of_locator_.end()) {
        HD_RETURN_IF_ERROR(
            delta_->Delete(std::span<const int64_t>(&it->second, 1), m));
        delta_key_of_locator_.erase(it);
        continue;
      }
      Status s = delete_buffer_->Insert(std::span<const int64_t>(&loc, 1), {}, m);
      if (!s.ok() && s.code() != Code::kInvalidArgument) return s;
    }
    if (delete_buffer_->num_entries() > opts_.delete_buffer_compact_threshold) {
      // Compaction failure defers folding; the buffer keeps shadowing the
      // deleted rows so query results are unaffected.
      (void)CompactDeleteBuffer(m);
    }
    SyncTelemetry();
    return Status::OK();
  } else {
    // Primary CSI: find each locator's physical position by scanning the
    // compressed locator segments (min/max lets us skip groups, but a
    // matching group's segment must be decoded — the cost Section 3.3
    // measures). One pass per statement.
    std::unordered_set<int64_t> want(locators.begin(), locators.end());
    std::vector<int64_t> buf(kBatchSize);
    for (auto& g : groups_) {
      if (want.empty()) break;
      const ColumnSegment& ls = g->locator_segment();
      int64_t lo = INT64_MAX, hi = INT64_MIN;
      for (int64_t l : want) {
        lo = std::min(lo, l);
        hi = std::max(hi, l);
      }
      if (ls.CanSkip(lo, hi)) {
        if (m != nullptr) m->segments_skipped += 1;
        continue;
      }
      HD_RETURN_IF_ERROR(ls.Touch(pool_, m));
      const size_t n = g->num_rows();
      for (size_t start = 0; start < n; start += kBatchSize) {
        const size_t take = std::min<size_t>(kBatchSize, n - start);
        ls.Decode(start, take, buf.data());
        for (size_t i = 0; i < take; ++i) {
          auto it = want.find(buf[i]);
          if (it != want.end()) {
            g->SetDeleted(start + i);
            ++compressed_deleted_;
            want.erase(it);
          }
        }
      }
    }
    // Any remaining locators must be delta-store rows: delete them there.
    for (int64_t loc : want) {
      auto it = delta_key_of_locator_.find(loc);
      if (it == delta_key_of_locator_.end()) continue;
      HD_RETURN_IF_ERROR(
          delta_->Delete(std::span<const int64_t>(&it->second, 1), m));
      delta_key_of_locator_.erase(it);
    }
    SyncTelemetry();
    return Status::OK();
  }
}

Status ColumnStoreIndex::CompactDeleteBuffer(QueryMetrics* m) {
  if (!delete_buffer_ || delete_buffer_->num_entries() == 0) {
    return Status::OK();
  }
  std::unordered_set<int64_t> dead;
  HD_RETURN_IF_ERROR(SnapshotDeleteBuffer(&dead, m));
  std::vector<int64_t> buf(kBatchSize);
  for (auto& g : groups_) {
    if (dead.empty()) break;
    const ColumnSegment& ls = g->locator_segment();
    // Mid-loop failure keeps the delete buffer: bits already folded stay
    // set and the buffered locators still shadow them, so nothing
    // resurrects; compaction simply runs again later.
    HD_RETURN_IF_ERROR(ls.Touch(pool_, m));
    const size_t n = g->num_rows();
    for (size_t start = 0; start < n && !dead.empty(); start += kBatchSize) {
      const size_t take = std::min<size_t>(kBatchSize, n - start);
      ls.Decode(start, take, buf.data());
      for (size_t i = 0; i < take; ++i) {
        auto it = dead.find(buf[i]);
        if (it != dead.end()) {
          if (!g->IsDeleted(start + i)) {
            g->SetDeleted(start + i);
            ++compressed_deleted_;
          }
          dead.erase(it);
        }
      }
    }
  }
  delete_buffer_ = std::make_unique<BTree>(1, 0, pool_);
  Stats().delete_compactions->Add(1);
  SyncTelemetry();
  return Status::OK();
}

uint64_t ColumnStoreIndex::num_rows() const {
  uint64_t n = compressed_rows_ - compressed_deleted_ + delta_rows();
  // Secondary delete-buffer entries shadow compressed rows that have not
  // been compacted yet.
  if (delete_buffer_) n -= std::min(n, delete_buffer_->num_entries());
  return n;
}

uint64_t ColumnStoreIndex::size_bytes() const {
  uint64_t b = 0;
  for (const auto& g : groups_) b += g->size_bytes();
  if (delta_) b += delta_->size_bytes();
  if (delete_buffer_) b += delete_buffer_->size_bytes();
  return b;
}

uint64_t ColumnStoreIndex::column_size_bytes(int col) const {
  uint64_t b = 0;
  for (const auto& g : groups_) b += g->segment(col).size_bytes();
  return b;
}

Status ColumnStoreIndex::SnapshotDeleteBuffer(std::unordered_set<int64_t>* out,
                                              QueryMetrics* m) const {
  out->clear();
  if (!delete_buffer_ || delete_buffer_->num_entries() == 0) {
    return Status::OK();
  }
  out->reserve(delete_buffer_->num_entries());
  return delete_buffer_->Scan(Bound::Unbounded(), Bound::Unbounded(),
                              [&](const int64_t* key, const int64_t*) {
                                out->insert(key[0]);
                                return true;
                              },
                              m);
}

Status ColumnStoreIndex::ScanGroups(
    int group_begin, int group_end, const std::vector<int>& cols_needed,
    const std::vector<SegPredicate>& preds,
    const std::function<bool(const ColumnBatch&)>& fn, QueryMetrics* m,
    bool need_locators,
    const std::unordered_set<int64_t>* delete_snapshot,
    const std::vector<ScanKeyFilter>* key_filters) const {
  group_end = std::min(group_end, num_row_groups());
  const bool have_filters = key_filters != nullptr && !key_filters->empty();
  // Map each key filter to its position in cols_needed so its decode
  // buffer doubles as the output column (no second decode downstream).
  std::vector<size_t> kf_ci;
  if (have_filters) {
    for (const auto& kf : *key_filters) {
      size_t ci = 0;
      while (ci < cols_needed.size() && cols_needed[ci] != kf.col) ++ci;
      kf_ci.push_back(ci);  // == size() when absent -> filter skipped
    }
  }
  std::vector<char> col_done(cols_needed.size(), 0);
  // Anti-join set from the delete buffer (secondary CSI only). Parallel
  // scans snapshot once and share it across morsels via delete_snapshot.
  std::unordered_set<int64_t> local_dead;
  if (delete_snapshot == nullptr) {
    HD_RETURN_IF_ERROR(SnapshotDeleteBuffer(&local_dead, m));
  }
  const std::unordered_set<int64_t>& dead =
      delete_snapshot != nullptr ? *delete_snapshot : local_dead;
  const bool check_dead = !dead.empty();

  // Scratch buffers reused across batches.
  std::vector<std::vector<int64_t>> dec(cols_needed.size());
  for (auto& d : dec) d.resize(kBatchSize);
  SelVector match;
  std::vector<int64_t> loc_buf(kBatchSize);
  std::vector<std::vector<int64_t>> out_cols(cols_needed.size());
  for (auto& d : out_cols) d.resize(kBatchSize);
  std::vector<uint32_t> sel(kBatchSize);
  // Predicates translated into the current group's encoded domain.
  struct GroupPred {
    const ColumnSegment* seg;
    ColumnSegment::CodeRange cr;
  };
  std::vector<GroupPred> active;
  active.reserve(preds.size());

  for (int gi = group_begin; gi < group_end; ++gi) {
    const RowGroup& g = *groups_[gi];
    // Translate each predicate into this group's encoded domain: one
    // dictionary binary search per segment. A `none` result eliminates
    // the group (min/max data skipping, or a dictionary miss inside the
    // [min,max] envelope); an `all` result proves every row passes, so
    // the scan skips predicate evaluation entirely (decode-only).
    active.clear();
    bool skip = false;
    for (const auto& p : preds) {
      const ColumnSegment& seg = g.segment(p.col);
      ColumnSegment::CodeRange cr = seg.TranslateRange(p.lo, p.hi);
      if (cr.none) {
        skip = true;
        break;
      }
      if (!cr.all) active.push_back(GroupPred{&seg, cr});
    }
    if (skip) {
      if (m != nullptr) m->segments_skipped += cols_needed.size() + 1;
      continue;
    }
    // Touch all segments we will decode (I/O accounting).
    for (int c : cols_needed) {
      HD_RETURN_IF_ERROR(g.segment(c).Touch(pool_, m));
    }
    for (const auto& p : preds) {
      bool needed = false;
      for (int c : cols_needed) needed |= (c == p.col);
      if (!needed) HD_RETURN_IF_ERROR(g.segment(p.col).Touch(pool_, m));
    }
    const bool want_locs = need_locators || check_dead || g.has_deletes();
    if (want_locs) HD_RETURN_IF_ERROR(g.locator_segment().Touch(pool_, m));

    const size_t n = g.num_rows();
    for (size_t start = 0; start < n; start += kBatchSize) {
      const int take = static_cast<int>(std::min<size_t>(kBatchSize, n - start));
      // Build the selection bitmap from encoded-domain predicate matches,
      // then materialize indices only when the batch is genuinely sparse.
      int nsel;
      bool dense;
      if (active.empty()) {
        dense = true;
        nsel = take;
      } else {
        match.Reset(take);
        uint64_t runs = 0;
        for (size_t pi = 0; pi < active.size(); ++pi) {
          runs += active[pi].seg->EvalRange(start, take, active[pi].cr,
                                            /*refine=*/pi > 0, &match);
        }
        if (m != nullptr) m->runs_evaluated += runs;
        if (match.NoneSet()) {
          if (m != nullptr) m->rows_scanned += take;
          continue;
        }
        dense = match.AllSet();
        nsel = dense ? take : match.ToIndices(sel.data());
      }
      if (m != nullptr) {
        m->rows_scanned += take;
        m->rows_selected += nsel;
      }
      // Locators: dense batches decode the whole segment slice; sparse
      // batches gather only surviving rows (loc_buf stays aligned with
      // sel either way).
      if (want_locs) {
        if (dense) {
          g.locator_segment().Decode(start, take, loc_buf.data());
        } else {
          g.locator_segment().DecodeSelected(
              start, std::span<const uint32_t>(sel.data(), nsel),
              loc_buf.data());
        }
      }
      // Filter deleted rows: bitmap, then delete-buffer anti-join. The
      // compaction keeps loc_buf aligned with sel.
      if (check_dead || g.has_deletes()) {
        if (dense) {
          for (int i = 0; i < take; ++i) sel[i] = static_cast<uint32_t>(i);
          dense = false;
        }
        int k = 0;
        for (int s = 0; s < nsel; ++s) {
          const uint32_t i = sel[s];
          bool live = !g.IsDeleted(start + i);
          if (live && check_dead) live = !dead.count(loc_buf[s]);
          sel[k] = i;
          loc_buf[k] = loc_buf[s];
          k += live;
        }
        nsel = k;
        if (nsel == 0) continue;
        // Every row survived: sel is the identity again.
        if (nsel == take) dense = true;
      }
      // Bloom pushdown: decode each pushed join key for surviving rows
      // only, and drop rows whose key cannot be on the build side —
      // before any other column is gathered. The decoded keys land in
      // the key column's output buffer (compacted along with sel), so
      // the materialization loop below never touches those segments
      // again. Checks/filtered counts are charged to the owning join.
      if (have_filters) {
        std::fill(col_done.begin(), col_done.end(), 0);
        for (size_t fi = 0; fi < key_filters->size(); ++fi) {
          const ScanKeyFilter& kf = (*key_filters)[fi];
          const size_t ci = kf_ci[fi];
          if (ci == cols_needed.size() || kf.bloom == nullptr) continue;
          if (dense) {
            for (int i = 0; i < take; ++i) sel[i] = static_cast<uint32_t>(i);
            dense = false;
          }
          const ColumnSegment& kseg = g.segment(cols_needed[ci]);
          if (!col_done[ci]) {
            // Same bulk-vs-gather heuristic as the main loop.
            if (nsel * 4 >= take * 3) {
              kseg.Decode(start, take, dec[ci].data());
              for (int s = 0; s < nsel; ++s) {
                out_cols[ci][s] = dec[ci][sel[s]];
              }
            } else {
              kseg.DecodeSelected(
                  start, std::span<const uint32_t>(sel.data(), nsel),
                  out_cols[ci].data());
            }
            col_done[ci] = 1;
          }
          int k = 0;
          for (int s = 0; s < nsel; ++s) {
            const bool pass = kf.bloom->MayContain(out_cols[ci][s]);
            sel[k] = sel[s];
            loc_buf[k] = loc_buf[s];
            for (size_t cj = 0; cj < col_done.size(); ++cj) {
              if (col_done[cj]) out_cols[cj][k] = out_cols[cj][s];
            }
            k += pass;
          }
          if (kf.m != nullptr) {
            kf.m->join_bloom_checks += static_cast<uint64_t>(nsel);
            kf.m->join_bloom_filtered += static_cast<uint64_t>(nsel - k);
          }
          nsel = k;
          if (nsel == 0) break;
        }
        if (nsel == 0) continue;
        if (nsel == take) dense = true;
      }
      // Materialize requested columns. Dense batches take the bulk unpack
      // kernels; sparse batches late-materialize — only rows that survived
      // the predicate (and delete filters) are ever decoded, which is what
      // rows_decoded measures. Near-dense batches still decode in bulk and
      // gather: sequential unpack beats a per-row gather above ~75%
      // selectivity.
      ColumnBatch batch;
      batch.count = nsel;
      batch.cols.resize(cols_needed.size());
      const bool bulk = dense || nsel * 4 >= take * 3;
      if (m != nullptr) {
        m->rows_decoded += static_cast<uint64_t>(bulk ? take : nsel);
        if (!bulk) m->rows_late_materialized += static_cast<uint64_t>(nsel);
      }
      for (size_t ci = 0; ci < cols_needed.size(); ++ci) {
        if (have_filters && col_done[ci]) {
          // Already decoded (and compacted) by the Bloom pass.
          batch.cols[ci] = out_cols[ci].data();
          continue;
        }
        const ColumnSegment& seg = g.segment(cols_needed[ci]);
        if (dense) {
          seg.Decode(start, take, dec[ci].data());
          batch.cols[ci] = dec[ci].data();
        } else if (bulk) {
          seg.Decode(start, take, dec[ci].data());
          for (int s = 0; s < nsel; ++s) out_cols[ci][s] = dec[ci][sel[s]];
          batch.cols[ci] = out_cols[ci].data();
        } else {
          seg.DecodeSelected(start,
                             std::span<const uint32_t>(sel.data(), nsel),
                             out_cols[ci].data());
          batch.cols[ci] = out_cols[ci].data();
        }
      }
      batch.locators = want_locs ? loc_buf.data() : nullptr;
      if (m != nullptr) m->rows_output += nsel;
      if (!fn(batch)) return Status::OK();
    }
  }
  return Status::OK();
}

Status ColumnStoreIndex::DecodeGroupDense(int gi, const std::vector<int>& cols,
                                          bool want_locators, DecodedGroup* out,
                                          QueryMetrics* m) const {
  const RowGroup& g = *groups_[gi];
  const size_t n = g.num_rows();
  out->group = gi;
  out->rows = n;
  out->cols = cols;
  out->values.resize(cols.size());
  out->decode_bytes = 0;
  for (size_t ci = 0; ci < cols.size(); ++ci) {
    const ColumnSegment& seg = g.segment(cols[ci]);
    HD_RETURN_IF_ERROR(seg.Touch(pool_, m));
    out->values[ci].resize(n);
    seg.Decode(0, n, out->values[ci].data());
    out->decode_bytes += n * sizeof(int64_t);
  }
  if (want_locators) {
    HD_RETURN_IF_ERROR(g.locator_segment().Touch(pool_, m));
    out->locators.resize(n);
    g.locator_segment().Decode(0, n, out->locators.data());
    out->decode_bytes += n * sizeof(int64_t);
  } else {
    out->locators.clear();
  }
  if (m != nullptr) m->rows_decoded += n;
  return Status::OK();
}

Status ColumnStoreIndex::ScanDecodedGroup(
    const DecodedGroup& dg, const std::vector<int>& cols_needed,
    const std::vector<SegPredicate>& preds,
    const std::function<bool(const ColumnBatch&)>& fn, QueryMetrics* m,
    bool need_locators, const std::unordered_set<int64_t>* delete_snapshot,
    bool* stopped) const {
  if (stopped != nullptr) *stopped = false;
  const RowGroup& g = *groups_[dg.group];
  const bool check_dead =
      delete_snapshot != nullptr && !delete_snapshot->empty();

  // Dense column pointers for the consumer's projection.
  std::vector<const int64_t*> dense(cols_needed.size());
  for (size_t ci = 0; ci < cols_needed.size(); ++ci) {
    dense[ci] = dg.column(cols_needed[ci]);
    if (dense[ci] == nullptr) {
      return Status::Internal("shared scan: column missing from decoded group");
    }
  }

  // Predicate translation mirrors ScanGroups for group-level skipping: a
  // `none` eliminates the whole group (the decode was shared, but this
  // consumer still skips the evaluation), `all` drops the predicate.
  // Surviving predicates split by where they evaluate: when the pass
  // decoded the predicate column into the shared image (the scheduler adds
  // predicate columns to the image union, so this is the common case), the
  // compare runs directly on the dense decoded values — a branchless loop
  // over contiguous int64s that also builds the selection vector in place,
  // with no bitmap ToIndices materialization. That per-consumer evaluation
  // is the dominant residual cost of a shared pass once decode is
  // amortized, so it must not re-run the heavier encoded-domain run
  // kernels N times per group. Predicates whose column is absent from the
  // image fall back to the encoded path.
  struct GroupPred {
    const ColumnSegment* seg;
    ColumnSegment::CodeRange cr;
  };
  struct DensePred {
    const int64_t* vals;  // group-relative dense decoded column
    int64_t lo, hi;
  };
  std::vector<GroupPred> encoded;
  std::vector<DensePred> valued;
  for (const auto& p : preds) {
    const ColumnSegment& seg = g.segment(p.col);
    ColumnSegment::CodeRange cr = seg.TranslateRange(p.lo, p.hi);
    if (cr.none) {
      if (m != nullptr) m->segments_skipped += cols_needed.size() + 1;
      return Status::OK();
    }
    if (cr.all) continue;
    const int64_t* dv = dg.column(p.col);
    if (dv != nullptr) {
      valued.push_back(DensePred{dv, p.lo, p.hi});
    } else {
      encoded.push_back(GroupPred{&seg, cr});
    }
  }

  SelVector match;
  std::vector<uint32_t> sel(kBatchSize);
  const size_t n = dg.rows;
  const bool filter_deletes = check_dead || g.has_deletes();
  for (size_t start = 0; start < n; start += kBatchSize) {
    const int take = static_cast<int>(std::min<size_t>(kBatchSize, n - start));
    int nsel;
    bool all_pass;
    if (encoded.empty() && valued.empty()) {
      all_pass = true;
      nsel = take;
    } else {
      if (!encoded.empty()) {
        match.Reset(take);
        uint64_t runs = 0;
        for (size_t pi = 0; pi < encoded.size(); ++pi) {
          runs += encoded[pi].seg->EvalRange(start, take, encoded[pi].cr,
                                             /*refine=*/pi > 0, &match);
        }
        if (m != nullptr) m->runs_evaluated += runs;
        if (match.NoneSet()) {
          if (m != nullptr) m->rows_scanned += take;
          continue;
        }
        all_pass = match.AllSet();
        nsel = all_pass ? take : match.ToIndices(sel.data());
      } else {
        // First dense predicate builds the selection vector branchlessly.
        const DensePred& f = valued[0];
        const int64_t* v = f.vals + start;
        nsel = 0;
        for (int i = 0; i < take; ++i) {
          sel[nsel] = static_cast<uint32_t>(i);
          nsel += static_cast<int>((v[i] >= f.lo) & (v[i] <= f.hi));
        }
        all_pass = (nsel == take);
      }
      // Remaining dense predicates refine by compacting the selection
      // vector in place.
      const size_t vfirst = encoded.empty() ? 1 : 0;
      for (size_t pi = vfirst; pi < valued.size(); ++pi) {
        if (all_pass) {
          for (int i = 0; i < take; ++i) sel[i] = static_cast<uint32_t>(i);
          all_pass = false;
        }
        const DensePred& vp = valued[pi];
        const int64_t* v = vp.vals + start;
        int k = 0;
        for (int s2 = 0; s2 < nsel; ++s2) {
          const uint32_t i = sel[s2];
          sel[k] = i;
          k += static_cast<int>((v[i] >= vp.lo) & (v[i] <= vp.hi));
        }
        nsel = k;
        if (nsel == take) all_pass = true;
      }
      if (nsel == 0) {
        if (m != nullptr) m->rows_scanned += take;
        continue;
      }
    }
    if (m != nullptr) {
      m->rows_scanned += take;
      m->rows_selected += nsel;
    }
    // Delete filtering compacts the selection vector in place; the pass
    // guarantees dg.locators is populated whenever this can fire.
    if (filter_deletes) {
      if (all_pass) {
        for (int i = 0; i < take; ++i) sel[i] = static_cast<uint32_t>(i);
        all_pass = false;
      }
      const int64_t* locs = dg.locators.data() + start;
      int k = 0;
      for (int s = 0; s < nsel; ++s) {
        const uint32_t i = sel[s];
        bool live = !g.IsDeleted(start + i);
        if (live && check_dead) live = !delete_snapshot->count(locs[i]);
        sel[k] = i;
        k += live;
      }
      nsel = k;
      if (nsel == 0) continue;
    }
    ColumnBatch batch;
    batch.count = nsel;
    batch.cols.resize(cols_needed.size());
    for (size_t ci = 0; ci < cols_needed.size(); ++ci) {
      batch.cols[ci] = dense[ci] + start;
    }
    batch.locators =
        (need_locators && !dg.locators.empty()) ? dg.locators.data() + start
                                                : nullptr;
    batch.sel = all_pass ? nullptr : sel.data();
    if (m != nullptr) m->rows_output += nsel;
    if (!fn(batch)) {
      if (stopped != nullptr) *stopped = true;
      return Status::OK();
    }
  }
  return Status::OK();
}

bool ColumnStoreIndex::TryPushdownAggregates(
    int gi, const std::vector<SegPredicate>& preds,
    std::span<const PushAggSpec> specs, PushAggState* acc,
    const std::unordered_set<int64_t>* delete_snapshot,
    QueryMetrics* m, uint64_t* rows_aggregated) const {
  if (rows_aggregated != nullptr) *rows_aggregated = 0;
  if (gi < 0 || gi >= num_row_groups() || specs.empty()) return false;
  const RowGroup& g = *groups_[gi];
  // Deleted rows would have to be subtracted value-by-value; fall back.
  if (g.has_deletes()) return false;
  if (delete_snapshot != nullptr ? !delete_snapshot->empty()
                                 : delete_buffer_rows() > 0) {
    return false;
  }
  const size_t n = g.num_rows();
  if (n == 0) return true;

  // Translate predicates into this group's encoded domain, intersecting
  // multiple ranges on the same column (code space is totally ordered).
  struct GroupPred {
    const ColumnSegment* seg;
    ColumnSegment::CodeRange cr;
    int col;
  };
  std::vector<GroupPred> active;
  active.reserve(preds.size());
  for (const auto& p : preds) {
    const ColumnSegment& seg = g.segment(p.col);
    const ColumnSegment::CodeRange cr = seg.TranslateRange(p.lo, p.hi);
    if (cr.none) {
      // Group eliminated: every spec contributes zero rows.
      if (m != nullptr) {
        m->segments_skipped += specs.size() + 1;
        m->aggs_pushed_down += specs.size();
      }
      return true;
    }
    if (cr.all) continue;
    bool merged = false;
    for (auto& a : active) {
      if (a.col != p.col) continue;
      a.cr.lo = std::max(a.cr.lo, cr.lo);
      a.cr.hi = std::min(a.cr.hi, cr.hi);
      merged = true;
      if (a.cr.hi < a.cr.lo) {
        if (m != nullptr) {
          m->segments_skipped += specs.size() + 1;
          m->aggs_pushed_down += specs.size();
        }
        return true;
      }
      break;
    }
    if (!merged) active.push_back(GroupPred{&seg, cr, p.col});
  }
  const bool all_pass = active.empty();

  // Validate that EVERY spec is answerable in the encoded domain before
  // touching `acc`. COUNT always is. SUM/MIN/MAX are when the group is
  // all-pass, or when the single remaining predicate is on the aggregated
  // column itself (per-run / per-code match tests).
  for (const auto& s : specs) {
    if (s.fn == PushAggSpec::Fn::kCount) continue;
    if (all_pass) continue;
    if (active.size() != 1 || active[0].col != s.col) return false;
  }

  // I/O accounting: touch every segment the kernels read.
  std::vector<int> touched;
  for (const auto& s : specs) {
    if (s.fn == PushAggSpec::Fn::kCount) continue;
    bool seen = false;
    for (int c : touched) seen |= (c == s.col);
    if (!seen) touched.push_back(s.col);
  }
  for (const auto& a : active) {
    bool seen = false;
    for (int c : touched) seen |= (c == a.col);
    if (!seen) touched.push_back(a.col);
  }
  for (int c : touched) {
    if (!g.segment(c).Touch(pool_, m).ok()) return false;
  }

  // Selected-row count: n when all rows pass, else popcount of the
  // combined selection bitmap (computed at most once, batch-chunked).
  uint64_t selected = n;
  bool selected_known = all_pass;
  uint64_t runs = 0;
  auto SelectedCount = [&]() -> uint64_t {
    if (!selected_known) {
      SelVector bits;
      uint64_t cnt = 0;
      for (size_t start = 0; start < n; start += kBatchSize) {
        const size_t take = std::min<size_t>(kBatchSize, n - start);
        bits.Reset(take);
        for (size_t pi = 0; pi < active.size(); ++pi) {
          runs += active[pi].seg->EvalRange(start, take, active[pi].cr,
                                            /*refine=*/pi > 0, &bits);
        }
        cnt += bits.Count();
      }
      selected = cnt;
      selected_known = true;
    }
    return selected;
  };

  for (size_t si = 0; si < specs.size(); ++si) {
    const PushAggSpec& s = specs[si];
    PushAggState& a = acc[si];
    switch (s.fn) {
      case PushAggSpec::Fn::kCount:
        a.count += SelectedCount();
        break;
      case PushAggSpec::Fn::kSum: {
        const ColumnSegment& seg = g.segment(s.col);
        if (all_pass) {
          a.sum += seg.SumAll();
          a.count += n;
        } else {
          int64_t sum = 0;
          uint64_t matches = 0;
          runs += seg.SumWhere(active[0].cr, &sum, &matches);
          a.sum += sum;
          a.count += matches;
        }
        break;
      }
      case PushAggSpec::Fn::kMin:
      case PushAggSpec::Fn::kMax: {
        const ColumnSegment& seg = g.segment(s.col);
        int64_t mn, mx;
        if (all_pass) {
          mn = seg.min_value();
          mx = seg.max_value();
        } else if (!seg.MinMaxWhere(active[0].cr, &mn, &mx)) {
          break;  // no matching row in this group; `has` stays as-is
        }
        const bool is_min = s.fn == PushAggSpec::Fn::kMin;
        const int64_t v = is_min ? mn : mx;
        if (!a.has || (is_min ? v < a.minmax : v > a.minmax)) a.minmax = v;
        a.has = true;
        break;
      }
    }
  }
  if (rows_aggregated != nullptr) *rows_aggregated = SelectedCount();
  if (m != nullptr) {
    m->rows_scanned += n;
    m->rows_selected += SelectedCount();
    m->runs_evaluated += runs;
    m->aggs_pushed_down += specs.size();
  }
  return true;
}

Status ColumnStoreIndex::ScanDelta(
    const std::vector<int>& cols_needed, const std::vector<SegPredicate>& preds,
    const std::function<bool(const ColumnBatch&)>& fn, QueryMetrics* m,
    bool need_locators, const std::vector<ScanKeyFilter>* key_filters) const {
  (void)need_locators;  // delta rows carry their locator inline anyway
  if (delta_rows() == 0) return Status::OK();
  const bool have_filters = key_filters != nullptr && !key_filters->empty();
  // Per-filter check/filtered tallies, flushed once at end of scan so the
  // per-row path stays free of atomic traffic.
  std::vector<uint64_t> kf_checks, kf_dropped;
  if (have_filters) {
    kf_checks.assign(key_filters->size(), 0);
    kf_dropped.assign(key_filters->size(), 0);
  }
  // Note: the delete buffer does NOT apply here. A locator in the buffer
  // marks the *compressed* copy dead; a delta row with the same locator is
  // the row's live, newer version (delete-then-insert update pattern).
  std::vector<std::vector<int64_t>> out_cols(cols_needed.size());
  for (auto& d : out_cols) d.resize(kBatchSize);
  std::vector<int64_t> out_locs(kBatchSize);
  int count = 0;
  bool stop = false;
  auto flush = [&]() {
    if (count == 0 || stop) return;
    ColumnBatch b;
    b.count = count;
    b.cols.resize(cols_needed.size());
    for (size_t ci = 0; ci < cols_needed.size(); ++ci) {
      b.cols[ci] = out_cols[ci].data();
    }
    b.locators = out_locs.data();
    if (!fn(b)) stop = true;
    count = 0;
  };
  HD_RETURN_IF_ERROR(delta_->Scan(
      Bound::Unbounded(), Bound::Unbounded(),
      [&](const int64_t*, const int64_t* payload) {
        const int64_t loc = payload[ncols_];
        for (const auto& p : preds) {
          const int64_t v = payload[p.col];
          if (v < p.lo || v > p.hi) return true;
        }
        if (have_filters) {
          for (size_t fi = 0; fi < key_filters->size(); ++fi) {
            const ScanKeyFilter& kf = (*key_filters)[fi];
            if (kf.bloom == nullptr) continue;
            ++kf_checks[fi];
            if (!kf.bloom->MayContain(payload[kf.col])) {
              ++kf_dropped[fi];
              return true;
            }
          }
        }
        for (size_t ci = 0; ci < cols_needed.size(); ++ci) {
          out_cols[ci][count] = payload[cols_needed[ci]];
        }
        out_locs[count] = loc;
        if (++count == kBatchSize) {
          flush();
          if (stop) return false;
        }
        return true;
      },
      m));
  flush();
  if (have_filters) {
    for (size_t fi = 0; fi < key_filters->size(); ++fi) {
      QueryMetrics* jm = (*key_filters)[fi].m;
      if (jm == nullptr) continue;
      jm->join_bloom_checks += kf_checks[fi];
      jm->join_bloom_filtered += kf_dropped[fi];
    }
  }
  return Status::OK();
}

Status ColumnStoreIndex::Reorganize() {
  HD_FAILPOINT_RETURN("csi.reorganize");
  // Gather every live row (compressed + delta), rebuild row groups. All
  // reads happen before any state is replaced, so a failed read leaves the
  // index exactly as it was (reorganize deferred).
  std::unordered_set<int64_t> dead;
  HD_RETURN_IF_ERROR(SnapshotDeleteBuffer(&dead, nullptr));
  std::vector<std::vector<int64_t>> cols(ncols_);
  std::vector<int64_t> locs;
  std::vector<int64_t> buf;
  for (auto& g : groups_) {
    const size_t n = g->num_rows();
    buf.resize(n);
    std::vector<int64_t> lbuf(n);
    g->locator_segment().Decode(0, n, lbuf.data());
    std::vector<char> keep(n, 1);
    for (size_t i = 0; i < n; ++i) {
      if (g->IsDeleted(i) || (!dead.empty() && dead.count(lbuf[i]))) keep[i] = 0;
    }
    for (int c = 0; c < ncols_; ++c) {
      g->segment(c).Decode(0, n, buf.data());
      for (size_t i = 0; i < n; ++i) {
        if (keep[i]) cols[c].push_back(buf[i]);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (keep[i]) locs.push_back(lbuf[i]);
    }
  }
  HD_RETURN_IF_ERROR(
      delta_->Scan(Bound::Unbounded(), Bound::Unbounded(),
                   [&](const int64_t*, const int64_t* payload) {
                     // Delta rows are always live (see ScanDelta).
                     const int64_t loc = payload[ncols_];
                     for (int c = 0; c < ncols_; ++c) {
                       cols[c].push_back(payload[c]);
                     }
                     locs.push_back(loc);
                     return true;
                   },
                   nullptr));
  groups_.clear();
  compressed_rows_ = 0;
  compressed_deleted_ = 0;
  delta_ = std::make_unique<BTree>(1, ncols_ + 1, pool_);
  delta_seq_ = 0;
  delta_key_of_locator_.clear();
  if (delete_buffer_) delete_buffer_ = std::make_unique<BTree>(1, 0, pool_);
  BuildGroups(std::move(cols), std::move(locs));
  Stats().reorganizes->Add(1);
  SyncTelemetry();
  return Status::OK();
}

}  // namespace hd
