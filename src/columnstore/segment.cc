#include "columnstore/segment.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace hd {

ColumnSegment::~ColumnSegment() { Reset(); }

void ColumnSegment::Reset() {
  if (extent_ != kInvalidExtent && pool_ != nullptr) {
    pool_->Unregister(extent_);
    extent_ = kInvalidExtent;
  }
}

ColumnSegment::ColumnSegment(ColumnSegment&& o) noexcept { *this = std::move(o); }

ColumnSegment& ColumnSegment::operator=(ColumnSegment&& o) noexcept {
  if (this == &o) return *this;
  Reset();
  n_ = o.n_;
  min_ = o.min_;
  max_ = o.max_;
  num_runs_ = o.num_runs_;
  approx_ndv_ = o.approx_ndv_;
  enc_ = o.enc_;
  size_bytes_ = o.size_bytes_;
  extent_ = o.extent_;
  pool_ = o.pool_;
  dict_ = std::move(o.dict_);
  runs_ = std::move(o.runs_);
  packed_ = std::move(o.packed_);
  run_offsets_ = std::move(o.run_offsets_);
  o.extent_ = kInvalidExtent;
  o.pool_ = nullptr;
  return *this;
}

void ColumnSegment::Build(std::span<const int64_t> values, BufferPool* pool) {
  Reset();
  pool_ = pool;
  n_ = values.size();
  if (n_ == 0) {
    extent_ = pool->Register(64);
    size_bytes_ = 64;
    return;
  }
  min_ = max_ = values[0];
  for (int64_t v : values) {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  num_runs_ = CountRuns(values);

  // Distinct values, capped: dictionaries above 1M entries stop paying.
  constexpr size_t kMaxDict = 1u << 20;
  std::unordered_map<int64_t, uint32_t> code_of;
  code_of.reserve(std::min(n_, kMaxDict));
  bool dict_ok = true;
  for (int64_t v : values) {
    if (code_of.size() >= kMaxDict) {
      dict_ok = false;
      break;
    }
    code_of.emplace(v, 0);
  }

  const double avg_run = static_cast<double>(n_) / num_runs_;
  // Pick the cheaper representation: dictionary-based encodings pay the
  // dictionary (8 bytes/distinct), raw bit-packing pays BitsFor(max-min)
  // bits per row. High-cardinality wide-domain columns should stay raw.
  bool dict_wins = dict_ok;
  if (dict_ok) {
    const double dict_bits_per_row =
        BitsFor(code_of.size() > 0 ? code_of.size() - 1 : 0);
    const double raw_bits_per_row =
        BitsFor(static_cast<uint64_t>(max_ - min_));
    const double dict_total =
        n_ * dict_bits_per_row / 8.0 + code_of.size() * 8.0;
    const double rle_total =
        avg_run >= 3.0 ? num_runs_ * sizeof(Run) + code_of.size() * 8.0
                       : dict_total;
    const double raw_total = n_ * raw_bits_per_row / 8.0;
    dict_wins = std::min(dict_total, rle_total) <= raw_total;
  }
  if (dict_wins) {
    dict_.reserve(code_of.size());
    for (auto& [v, c] : code_of) dict_.push_back(v);
    std::sort(dict_.begin(), dict_.end());
    for (size_t i = 0; i < dict_.size(); ++i) code_of[dict_[i]] = static_cast<uint32_t>(i);
    approx_ndv_ = dict_.size();
    if (avg_run >= 3.0) {
      enc_ = SegEncoding::kDictRle;
      runs_.reserve(num_runs_);
      run_offsets_.reserve(num_runs_ + 1);
      run_offsets_.push_back(0);
      size_t i = 0;
      while (i < n_) {
        size_t j = i + 1;
        while (j < n_ && values[j] == values[i]) ++j;
        runs_.push_back(Run{code_of[values[i]], static_cast<uint32_t>(j - i)});
        run_offsets_.push_back(static_cast<uint32_t>(j));
        i = j;
      }
      size_bytes_ = runs_.size() * sizeof(Run) + dict_.size() * 8 + 64;
    } else {
      enc_ = SegEncoding::kDictPacked;
      std::vector<uint64_t> codes(n_);
      for (size_t i = 0; i < n_; ++i) codes[i] = code_of[values[i]];
      packed_.Pack(codes);
      size_bytes_ = packed_.byte_size() + dict_.size() * 8 + 64;
    }
  } else {
    enc_ = SegEncoding::kRawPacked;
    approx_ndv_ = dict_ok ? code_of.size() : n_;
    std::vector<uint64_t> offs(n_);
    for (size_t i = 0; i < n_; ++i) {
      offs[i] = static_cast<uint64_t>(values[i] - min_);
    }
    packed_.Pack(offs);
    size_bytes_ = packed_.byte_size() + 64;
  }
  extent_ = pool->Register(size_bytes_);
}

ColumnSegment::CodeRange ColumnSegment::TranslateRange(int64_t lo,
                                                       int64_t hi) const {
  CodeRange cr;
  if (n_ == 0 || hi < lo || hi < min_ || lo > max_) {
    cr.none = true;
    return cr;
  }
  if (lo <= min_ && max_ <= hi) {
    cr.all = true;
    return cr;
  }
  switch (enc_) {
    case SegEncoding::kDictRle:
    case SegEncoding::kDictPacked: {
      auto b = std::lower_bound(dict_.begin(), dict_.end(), lo);
      auto e = std::upper_bound(b, dict_.end(), hi);
      if (b == e) {
        // Range overlaps [min,max] but no stored value falls inside it —
        // the dictionary proves the whole segment empty for this predicate.
        cr.none = true;
        return cr;
      }
      cr.lo = static_cast<uint64_t>(b - dict_.begin());
      cr.hi = static_cast<uint64_t>(e - dict_.begin()) - 1;
      return cr;
    }
    case SegEncoding::kRawPacked: {
      cr.lo = lo <= min_ ? 0 : static_cast<uint64_t>(lo - min_);
      cr.hi = hi >= max_ ? static_cast<uint64_t>(max_ - min_)
                         : static_cast<uint64_t>(hi - min_);
      return cr;
    }
  }
  cr.all = true;
  return cr;
}

uint64_t ColumnSegment::EvalRange(size_t start, size_t count,
                                  const CodeRange& cr, bool refine,
                                  SelVector* sel) const {
  assert(start + count <= n_);
  assert(sel->size() == count);
  if (cr.none) {
    sel->Reset(count);
    return 0;
  }
  if (cr.all) {
    if (!refine) sel->ResetAllSet(count);
    return 0;
  }
  switch (enc_) {
    case SegEncoding::kDictRle: {
      size_t r = std::upper_bound(run_offsets_.begin(), run_offsets_.end(),
                                  static_cast<uint32_t>(start)) -
                 run_offsets_.begin() - 1;
      uint64_t runs = 0;
      size_t produced = 0;
      size_t pos = start;
      while (produced < count) {
        const Run& run = runs_[r];
        const size_t run_end = run_offsets_[r] + run.length;
        const size_t take = std::min(count - produced, run_end - pos);
        const bool match = run.code >= cr.lo && run.code <= cr.hi;
        ++runs;
        if (match) {
          if (!refine) sel->SetRange(produced, produced + take);
        } else {
          sel->ClearRange(produced, produced + take);
        }
        produced += take;
        pos += take;
        if (pos >= run_end) ++r;
      }
      return runs;
    }
    case SegEncoding::kDictPacked:
    case SegEncoding::kRawPacked:
      packed_.EvalRange(start, count, cr.lo, cr.hi, refine, sel);
      return 0;
  }
  return 0;
}

void ColumnSegment::Decode(size_t start, size_t count, int64_t* out) const {
  assert(start + count <= n_);
  switch (enc_) {
    case SegEncoding::kDictRle: {
      // Locate the run containing `start` by binary search on offsets.
      size_t r = std::upper_bound(run_offsets_.begin(), run_offsets_.end(),
                                  static_cast<uint32_t>(start)) -
                 run_offsets_.begin() - 1;
      size_t produced = 0;
      size_t pos = start;
      while (produced < count) {
        const Run& run = runs_[r];
        const size_t run_start = run_offsets_[r];
        const size_t run_end = run_start + run.length;
        const size_t take = std::min(count - produced, run_end - pos);
        const int64_t v = dict_[run.code];
        for (size_t i = 0; i < take; ++i) out[produced + i] = v;
        produced += take;
        pos += take;
        if (pos >= run_end) ++r;
      }
      break;
    }
    case SegEncoding::kDictPacked: {
      for (size_t i = 0; i < count; ++i) {
        out[i] = dict_[packed_.Get(start + i)];
      }
      break;
    }
    case SegEncoding::kRawPacked: {
      for (size_t i = 0; i < count; ++i) {
        out[i] = min_ + static_cast<int64_t>(packed_.Get(start + i));
      }
      break;
    }
  }
}

void ColumnSegment::DecodeSelected(size_t start, std::span<const uint32_t> sel,
                                   int64_t* out) const {
  if (sel.empty()) return;
  assert(start + sel.back() < n_);
  switch (enc_) {
    case SegEncoding::kDictRle: {
      // One forward walk over the runs covering the selected positions.
      size_t r = std::upper_bound(run_offsets_.begin(), run_offsets_.end(),
                                  static_cast<uint32_t>(start + sel[0])) -
                 run_offsets_.begin() - 1;
      size_t run_end = run_offsets_[r] + runs_[r].length;
      for (size_t k = 0; k < sel.size(); ++k) {
        const size_t pos = start + sel[k];
        while (pos >= run_end) {
          ++r;
          run_end = run_offsets_[r] + runs_[r].length;
        }
        out[k] = dict_[runs_[r].code];
      }
      break;
    }
    case SegEncoding::kDictPacked: {
      for (size_t k = 0; k < sel.size(); ++k) {
        out[k] = dict_[packed_.Get(start + sel[k])];
      }
      break;
    }
    case SegEncoding::kRawPacked: {
      for (size_t k = 0; k < sel.size(); ++k) {
        out[k] = min_ + static_cast<int64_t>(packed_.Get(start + sel[k]));
      }
      break;
    }
  }
}

int64_t ColumnSegment::SumAll() const {
  int64_t acc = 0;
  switch (enc_) {
    case SegEncoding::kDictRle:
      for (const Run& run : runs_) {
        acc += dict_[run.code] * static_cast<int64_t>(run.length);
      }
      break;
    case SegEncoding::kDictPacked:
      for (size_t i = 0; i < n_; ++i) acc += dict_[packed_.Get(i)];
      break;
    case SegEncoding::kRawPacked:
      acc = min_ * static_cast<int64_t>(n_) +
            static_cast<int64_t>(packed_.Sum(0, n_));
      break;
  }
  return acc;
}

uint64_t ColumnSegment::SumWhere(const CodeRange& cr, int64_t* sum,
                                 uint64_t* matches) const {
  int64_t acc = 0;
  uint64_t cnt = 0;
  uint64_t runs = 0;
  switch (enc_) {
    case SegEncoding::kDictRle:
      for (const Run& run : runs_) {
        ++runs;
        if (run.code >= cr.lo && run.code <= cr.hi) {
          acc += dict_[run.code] * static_cast<int64_t>(run.length);
          cnt += run.length;
        }
      }
      break;
    case SegEncoding::kDictPacked:
      for (size_t i = 0; i < n_; ++i) {
        const uint64_t code = packed_.Get(i);
        const bool match = code >= cr.lo && code <= cr.hi;
        acc += dict_[code] * static_cast<int64_t>(match);
        cnt += match;
      }
      break;
    case SegEncoding::kRawPacked: {
      uint64_t offsum = 0;
      packed_.SumRange(0, n_, cr.lo, cr.hi, &offsum, &cnt);
      acc = min_ * static_cast<int64_t>(cnt) + static_cast<int64_t>(offsum);
      break;
    }
  }
  *sum = acc;
  *matches = cnt;
  return runs;
}

bool ColumnSegment::MinMaxWhere(const CodeRange& cr, int64_t* mn,
                                int64_t* mx) const {
  switch (enc_) {
    case SegEncoding::kDictRle:
    case SegEncoding::kDictPacked:
      // Every dictionary code occurs in the segment, so the sorted
      // dictionary answers directly.
      if (cr.lo >= dict_.size() || cr.hi < cr.lo) return false;
      *mn = dict_[cr.lo];
      *mx = dict_[std::min<uint64_t>(cr.hi, dict_.size() - 1)];
      return true;
    case SegEncoding::kRawPacked: {
      // Offsets in [lo, hi] are not guaranteed present: scan for the
      // extremes in the packed domain.
      uint64_t lo_seen = UINT64_MAX;
      uint64_t hi_seen = 0;
      bool any = false;
      for (size_t i = 0; i < n_; ++i) {
        const uint64_t off = packed_.Get(i);
        if (off < cr.lo || off > cr.hi) continue;
        lo_seen = std::min(lo_seen, off);
        hi_seen = std::max(hi_seen, off);
        any = true;
      }
      if (!any) return false;
      *mn = min_ + static_cast<int64_t>(lo_seen);
      *mx = min_ + static_cast<int64_t>(hi_seen);
      return true;
    }
  }
  return false;
}

}  // namespace hd
