// Row group: a horizontal slice of a columnstore index (100K–1M rows in
// SQL Server), compressed column by column, plus its delete bitmap.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "columnstore/segment.h"

namespace hd {

/// Options controlling columnstore build behaviour.
struct CsiOptions {
  /// Rows per row group. SQL Server uses 100K–1M; scaled default for our
  /// data sizes.
  size_t rowgroup_size = 1u << 17;
  /// Apply the compression sort inside each row group: greedily order
  /// columns by ascending distinct count and sort rows lexicographically
  /// (Section 2 / Figure 8). Improves RLE without changing segment
  /// min/max, so data skipping behaviour is unaffected.
  bool compression_sort = true;
  /// Secondary CSI: when the delete buffer exceeds this many rows, the
  /// (modelled) background process compacts it into the delete bitmaps
  /// (Section 2), bounding the scans' anti-semi-join cost.
  size_t delete_buffer_compact_threshold = 4096;
  /// Sorted columnstore (the Section 4.5 / Vertica-projection extension):
  /// bulk loads globally sort rows on this stored column before forming
  /// row groups, giving segments disjoint [min,max] ranges and hence
  /// aggressive data skipping for predicates on it. Trickle inserts land
  /// in the (unsorted) delta store — keeping strict order under updates
  /// would be expensive, exactly as the paper notes. -1 = unsorted.
  int sort_col = -1;
};

/// One compressed row group.
class RowGroup {
 public:
  /// Build from column-major values (`cols[c]` has the same length for all
  /// c) plus per-row locators. May permute rows for compression.
  void Build(std::vector<std::vector<int64_t>> cols,
             std::vector<int64_t> locators, const CsiOptions& opts,
             BufferPool* pool);

  size_t num_rows() const { return n_; }
  int num_columns() const { return static_cast<int>(segments_.size()); }
  const ColumnSegment& segment(int c) const { return segments_[c]; }
  const ColumnSegment& locator_segment() const { return locator_seg_; }

  /// Delete bitmap handling (primary CSI path).
  bool IsDeleted(size_t pos) const {
    return (del_bits_[pos >> 6] >> (pos & 63)) & 1;
  }
  void SetDeleted(size_t pos) {
    uint64_t& w = del_bits_[pos >> 6];
    const uint64_t bit = 1ull << (pos & 63);
    if (!(w & bit)) {
      w |= bit;
      ++deleted_count_;
    }
  }
  uint64_t deleted_count() const { return deleted_count_; }
  bool has_deletes() const { return deleted_count_ > 0; }

  /// Total compressed bytes across segments (+ locator segment).
  uint64_t size_bytes() const;

 private:
  size_t n_ = 0;
  std::vector<ColumnSegment> segments_;
  ColumnSegment locator_seg_;
  std::vector<uint64_t> del_bits_;
  uint64_t deleted_count_ = 0;
};

}  // namespace hd
