#!/usr/bin/env bash
# Kill-9 crash-recovery check (wired into CI; see .github/workflows/ci.yml).
#
# Drives the real server binary through the durability contract the unit
# tests can only simulate in-process:
#
#   1. start hd_server on a fresh --data-dir with group commit; write 65
#      marker rows (autocommit and BEGIN/COMMIT), leave one transaction
#      OPEN, then SIGKILL the server — no checkpoint, no clean shutdown,
#      torn WAL tail allowed. On restart the committed markers must
#      replay from the WAL and the open transaction's row must be gone.
#   2. N more rounds, each with a different crash point: a writer client
#      streams autocommitted inserts while the server is SIGKILLed
#      mid-load. Client-visible consistency: every acked insert (the ack
#      is sent only after commit durability) must survive the restart,
#      and at most one in-flight unacked statement may appear beyond
#      that — the recovered count C obeys acked <= C <= acked + 1.
#   3. SIGTERM (clean shutdown writes a final checkpoint), restart once
#      more: recovery must report redo=0 — the checkpoint covered it all.
#
# Usage: tools/crash_recovery_test.sh [build-dir] [port] [rounds]
set -euo pipefail

BUILD=${1:-build}
PORT=${2:-55441}
ROUNDS=${3:-4}
SERVER="$BUILD/src/server/hd_server"
CLIENT="$BUILD/examples/sql_client"
DIR=$(mktemp -d)
SERVER_PID=""
trap 'kill -9 "$SERVER_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

die() { echo "FAIL: $*" >&2; cat "$DIR"/server*.log 2>/dev/null >&2; exit 1; }

start_server() {  # $1 = log suffix
  "$SERVER" --port "$PORT" --workers 2 --data-dir "$DIR/data" \
    --durability group > "$DIR/server$1.log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    grep -q "listening" "$DIR/server$1.log" 2>/dev/null && return 0
    kill -0 "$SERVER_PID" 2>/dev/null || die "server exited during start"
    sleep 0.2
  done
  die "server did not start"
}

# Count marker rows for a given day value through a fresh client session.
count_day() {  # $1 = day
  echo "SELECT count(*) FROM sales WHERE day = $1" | "$CLIENT" --port "$PORT" \
    | grep -Eo '^[0-9]+$' | head -1
}

echo "== phase 1: fresh start, committed + open-txn writes, kill -9 =="
start_server 1
grep -q "initialized fresh data dir" "$DIR/server1.log" \
  || die "expected fresh-directory initialization"

# 64 autocommitted single-row inserts plus one explicit transaction.
{
  for _ in $(seq 1 64); do
    echo "INSERT INTO sales VALUES ('crash', 999, 7, 1.5)"
  done
  echo "BEGIN"
  echo "INSERT INTO sales VALUES ('crash', 999, 7, 1.5)"
  echo "COMMIT"
} | "$CLIENT" --port "$PORT" > "$DIR/writes.log" 2>&1
grep -q "error" "$DIR/writes.log" && die "write session reported errors"
[ "$(count_day 999)" = "65" ] || die "expected 65 marker rows before crash"

# Leave a transaction open (uncommitted insert in flight) when the power
# goes out: feed a client through a FIFO and never send COMMIT.
mkfifo "$DIR/open_txn"
"$CLIENT" --port "$PORT" < "$DIR/open_txn" > "$DIR/open_txn.log" 2>&1 &
OPEN_PID=$!
exec 9>"$DIR/open_txn"
printf 'BEGIN\n' >&9
printf "INSERT INTO sales VALUES ('doomed', 998, 1, 1.0)\n" >&9
sleep 1  # let the statement reach the server before the crash

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
exec 9>&-
wait "$OPEN_PID" 2>/dev/null || true

start_server 2
grep -q "recovered" "$DIR/server2.log" || die "expected WAL recovery banner"
[ "$(count_day 999)" = "65" ] || die "committed rows lost across kill -9"
[ "$(count_day 998)" = "0" ] || die "uncommitted row survived kill -9"
expect=65

echo "== phase 2: $ROUNDS seeded kill -9 rounds under write load =="
log=3
for round in $(seq 1 "$ROUNDS"); do
  # Stream autocommitted inserts and crash mid-load. Varying the window
  # per round seeds a different crash point in the commit pipeline.
  seq 1 5000 | sed "s/.*/INSERT INTO sales VALUES ('crash', 999, 7, 1.5)/" \
    | "$CLIENT" --port "$PORT" > "$DIR/load$round.log" 2>&1 &
  WRITER=$!
  sleep "0.$((3 + round * 2))"
  kill -9 "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  wait "$WRITER" 2>/dev/null || true
  acked=$(grep -c "rows affected" "$DIR/load$round.log" || true)

  start_server "$log"
  grep -q "recovered" "$DIR/server$log.log" || die "round $round: no recovery"
  got=$(count_day 999)
  [ "$got" -ge $((expect + acked)) ] \
    || die "round $round: acked writes lost ($got < $expect + $acked)"
  [ "$got" -le $((expect + acked + 1)) ] \
    || die "round $round: phantom rows beyond the one in-flight statement"
  echo "   round $round: acked=$acked recovered=$got"
  expect=$got
  log=$((log + 1))
done

echo "== phase 3: clean shutdown checkpoints; next start replays nothing =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
grep -q "final checkpoint" "$DIR/server$((log - 1)).log" \
  || die "clean shutdown did not write a final checkpoint"

start_server "$log"
grep -Eq "recovered .* redo=0 " "$DIR/server$log.log" \
  || die "post-checkpoint restart should replay zero records"
[ "$(count_day 999)" = "$expect" ] || die "rows lost across clean restart"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

echo "crash recovery ok: $expect committed rows durable across" \
     "$((ROUNDS + 1)) kill -9 crashes; open txn rolled back"
