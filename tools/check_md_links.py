#!/usr/bin/env python3
"""Check that relative links and in-page anchors in markdown resolve.

Scans every *.md under the repo root (skipping build trees and dot
directories) for inline markdown links/images and verifies that

* links pointing into the repo name an existing file or directory;
* `#anchor` and `path.md#anchor` links name a heading that exists in
  the target file, using GitHub's slugification (lowercase, spaces to
  dashes, punctuation dropped, `-1` suffixes for duplicates).

External links (http/https/mailto) are skipped; anchors into non-md
targets are checked for the path part only.

Exit status 0 when every link resolves, 1 otherwise (used by the CI
docs job).
"""
import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
SKIP_DIRS = {"build", "build-tsan", ".git", ".github"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
        ]
        for f in filenames:
            if f.endswith(".md"):
                yield os.path.join(dirpath, f)


def github_slug(heading):
    """GitHub's anchor slug for a heading line's text."""
    # Strip inline code/emphasis markers and links, keep their text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    text = text.strip().lower()
    # Drop everything that is not a word character, space, dash, or
    # unicode letter; then spaces become dashes. ('§', '.', '/' drop.)
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    text = text.replace(" ", "-")
    return text


def anchors_of(path, cache):
    """The set of valid anchors in a markdown file (with -n dedup)."""
    if path in cache:
        return cache[path]
    slugs = set()
    counts = {}
    in_fence = False
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError:
        cache[path] = slugs
        return slugs
    for line in lines:
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    cache[path] = slugs
    return slugs


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    bad = []
    nlinks = 0
    nanchors = 0
    anchor_cache = {}
    for path in sorted(md_files(root)):
        text = open(path, encoding="utf-8").read()
        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            frag = None
            if "#" in target:
                target, frag = target.split("#", 1)
            resolved = (
                path
                if not target
                else os.path.normpath(
                    os.path.join(os.path.dirname(path), target)
                )
            )
            line = text[: m.start()].count("\n") + 1
            if target:
                nlinks += 1
                if not os.path.exists(resolved):
                    bad.append(
                        f"{os.path.relpath(path, root)}:{line}: broken link "
                        f"'{m.group(1)}' -> {os.path.relpath(resolved, root)}"
                    )
                    continue
            if frag is not None and resolved.endswith(".md"):
                nanchors += 1
                if frag not in anchors_of(resolved, anchor_cache):
                    bad.append(
                        f"{os.path.relpath(path, root)}:{line}: broken "
                        f"anchor '#{frag}' in "
                        f"{os.path.relpath(resolved, root)}"
                    )
    for b in bad:
        print(b)
    print(
        f"checked {nlinks} relative links and {nanchors} anchors, "
        f"{len(bad)} broken"
    )
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
