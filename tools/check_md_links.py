#!/usr/bin/env python3
"""Check that relative links in the repo's markdown files resolve.

Scans every *.md under the repo root (skipping build trees and dot
directories) for inline markdown links/images and verifies that links
pointing into the repo name an existing file or directory. External
links (http/https/mailto) and pure in-page anchors are skipped; a
`path#anchor` link is checked for the path part only.

Exit status 0 when every link resolves, 1 otherwise (used by the CI
docs job).
"""
import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {"build", "build-tsan", ".git", ".github"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
        ]
        for f in filenames:
            if f.endswith(".md"):
                yield os.path.join(dirpath, f)


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    bad = []
    nlinks = 0
    for path in sorted(md_files(root)):
        text = open(path, encoding="utf-8").read()
        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target)
            )
            nlinks += 1
            if not os.path.exists(resolved):
                line = text[: m.start()].count("\n") + 1
                bad.append(
                    f"{os.path.relpath(path, root)}:{line}: broken link "
                    f"'{m.group(1)}' -> {os.path.relpath(resolved, root)}"
                )
    for b in bad:
        print(b)
    print(f"checked {nlinks} relative links, {len(bad)} broken")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
