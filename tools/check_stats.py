#!/usr/bin/env python3
"""Validate engine telemetry output (CI smoke + local use).

Usage:
    check_stats.py --jsonl stats.jsonl [--min-samples N]
    check_stats.py --prom metrics.prom
    check_stats.py --qlog qlog.jsonl [--min-samples N]

JSONL mode checks the hd-stats/1 sampler stream: every line is a JSON
object with the right schema tag, non-decreasing timestamps, non-negative
counters, and internally consistent histogram summaries (p50 <= p95 <=
p99 <= p999 <= max, count*min <= sum). The cumulative join counters
(join.*) additionally get a monotonicity check across samples and the
containment invariant join.bloom_filtered <= join.bloom_checks (a filter
cannot drop more keys than it tested). Prometheus mode checks the text
exposition: every line is a `# TYPE` comment or a `name[{labels}] value`
sample with an `hd_`-prefixed, well-formed metric name. Qlog mode checks
the hd-qlog/1 query-store capture stream: per line, schema tag, unique
non-negative seq, non-decreasing ts_ms, 16-hex-digit fp and trace ids,
non-negative latency_ms, and a known kind/status vocabulary.
"""

import argparse
import json
import re
import sys

PROM_SAMPLE = re.compile(
    r'^hd_[a-zA-Z0-9_]+(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})?'
    r" -?[0-9][0-9.e+-]*$"
)
PROM_TYPE = re.compile(r"^# TYPE hd_[a-zA-Z0-9_]+ (counter|gauge|summary)$")


def fail(msg):
    print(f"check_stats: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_jsonl(path, min_samples):
    lines = [ln for ln in open(path, encoding="utf-8") if ln.strip()]
    if len(lines) < min_samples:
        fail(f"{path}: {len(lines)} samples, expected >= {min_samples}")
    last_ts = 0
    last_join = {}
    for i, ln in enumerate(lines):
        try:
            rec = json.loads(ln)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i + 1}: not valid JSON: {e}")
        if rec.get("schema") != "hd-stats/1":
            fail(f"{path}:{i + 1}: schema {rec.get('schema')!r}")
        ts = rec.get("ts_ms")
        if not isinstance(ts, int) or ts < last_ts:
            fail(f"{path}:{i + 1}: ts_ms {ts!r} not monotonic (prev {last_ts})")
        last_ts = ts
        counters = rec.get("counters", {})
        for name, v in counters.items():
            if not isinstance(v, int) or v < 0:
                fail(f"{path}:{i + 1}: counter {name} = {v!r}")
            if name.startswith("join."):
                if v < last_join.get(name, 0):
                    fail(
                        f"{path}:{i + 1}: cumulative counter {name} "
                        f"decreased: {last_join[name]} -> {v}"
                    )
                last_join[name] = v
        if counters.get("join.bloom_filtered", 0) > counters.get(
            "join.bloom_checks", 0
        ):
            fail(
                f"{path}:{i + 1}: join.bloom_filtered "
                f"{counters['join.bloom_filtered']} exceeds "
                f"join.bloom_checks {counters.get('join.bloom_checks', 0)}"
            )
        for name, h in rec.get("histograms", {}).items():
            qs = [h["p50"], h["p95"], h["p99"], h["p999"]]
            if any(a > b * 1.0001 + 1 for a, b in zip(qs, qs[1:])):
                fail(f"{path}:{i + 1}: {name} quantiles not ordered: {qs}")
            if h["count"] > 0 and h["sum"] < 0:
                fail(f"{path}:{i + 1}: {name} negative sum")
            if h["count"] == 0 and h["sum"] != 0:
                fail(f"{path}:{i + 1}: {name} empty but sum={h['sum']}")
    print(f"check_stats: {path} ok: {len(lines)} hd-stats/1 samples")


HEX16 = re.compile(r"^[0-9a-f]{16}$")
QLOG_KINDS = {"select", "insert", "update", "delete", "invalid", "unknown", ""}
QLOG_STATUS = {"ok", "error"}


def check_qlog(path, min_samples):
    lines = [ln for ln in open(path, encoding="utf-8") if ln.strip()]
    if len(lines) < min_samples:
        fail(f"{path}: {len(lines)} records, expected >= {min_samples}")
    last_ts = 0
    seen_seq = set()
    slow = errors = 0
    for i, ln in enumerate(lines):
        try:
            rec = json.loads(ln)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i + 1}: not valid JSON: {e}")
        if rec.get("schema") != "hd-qlog/1":
            fail(f"{path}:{i + 1}: schema {rec.get('schema')!r}")
        # seq is assigned before the serialized append, so concurrent
        # writers may land slightly out of order in a live log; uniqueness
        # is the invariant, not strict ordering.
        seq = rec.get("seq")
        if not isinstance(seq, int) or seq < 0 or seq in seen_seq:
            fail(f"{path}:{i + 1}: seq {seq!r} missing, negative, or duplicate")
        seen_seq.add(seq)
        ts = rec.get("ts_ms")
        if not isinstance(ts, int) or ts < last_ts:
            fail(f"{path}:{i + 1}: ts_ms {ts!r} not monotonic (prev {last_ts})")
        last_ts = ts
        for field in ("fp", "trace"):
            v = rec.get(field)
            if not isinstance(v, str) or not HEX16.match(v):
                fail(f"{path}:{i + 1}: {field} {v!r} is not 16 hex digits")
        for field in ("latency_ms", "queue_ms"):
            v = rec.get(field)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"{path}:{i + 1}: {field} {v!r}")
        if rec.get("kind") not in QLOG_KINDS:
            fail(f"{path}:{i + 1}: unknown kind {rec.get('kind')!r}")
        status = rec.get("status")
        if status not in QLOG_STATUS:
            fail(f"{path}:{i + 1}: unknown status {status!r}")
        if status == "error":
            errors += 1
            if rec.get("code", 0) == 0:
                fail(f"{path}:{i + 1}: status=error but code=0")
        if not isinstance(rec.get("sql"), str) or not isinstance(
            rec.get("norm"), str
        ):
            fail(f"{path}:{i + 1}: sql/norm missing or not strings")
        for field in ("rows_out", "rows_scanned", "decode_bytes", "session"):
            v = rec.get(field)
            if not isinstance(v, int) or v < 0:
                fail(f"{path}:{i + 1}: {field} {v!r}")
        if rec.get("slow"):
            slow += 1
    print(
        f"check_stats: {path} ok: {len(lines)} hd-qlog/1 records "
        f"({errors} errors, {slow} slow)"
    )


def check_prom(path):
    lines = [ln.rstrip("\n") for ln in open(path, encoding="utf-8")]
    samples = 0
    for i, ln in enumerate(lines):
        if not ln:
            fail(f"{path}:{i + 1}: blank line in exposition")
        if ln.startswith("#"):
            if not PROM_TYPE.match(ln):
                fail(f"{path}:{i + 1}: bad comment line: {ln!r}")
            continue
        if not PROM_SAMPLE.match(ln):
            fail(f"{path}:{i + 1}: bad sample line: {ln!r}")
        samples += 1
    if samples == 0:
        fail(f"{path}: no samples")
    print(f"check_stats: {path} ok: {samples} Prometheus samples")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jsonl", help="hd-stats/1 JSONL file to validate")
    ap.add_argument("--prom", help="Prometheus text exposition to validate")
    ap.add_argument("--qlog", help="hd-qlog/1 query-store JSONL to validate")
    ap.add_argument("--min-samples", type=int, default=2)
    args = ap.parse_args()
    if not args.jsonl and not args.prom and not args.qlog:
        ap.error("need --jsonl, --prom, and/or --qlog")
    if args.jsonl:
        check_jsonl(args.jsonl, args.min_samples)
    if args.prom:
        check_prom(args.prom)
    if args.qlog:
        check_qlog(args.qlog, args.min_samples)


if __name__ == "__main__":
    main()
