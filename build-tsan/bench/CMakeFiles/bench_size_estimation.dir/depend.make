# Empty dependencies file for bench_size_estimation.
# This may be replaced when dependencies are built.
