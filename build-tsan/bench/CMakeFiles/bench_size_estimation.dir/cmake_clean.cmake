file(REMOVE_RECURSE
  "CMakeFiles/bench_size_estimation.dir/bench_size_estimation.cc.o"
  "CMakeFiles/bench_size_estimation.dir/bench_size_estimation.cc.o.d"
  "bench_size_estimation"
  "bench_size_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_size_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
