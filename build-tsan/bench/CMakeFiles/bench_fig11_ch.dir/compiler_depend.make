# Empty compiler generated dependencies file for bench_fig11_ch.
# This may be replaced when dependencies are built.
