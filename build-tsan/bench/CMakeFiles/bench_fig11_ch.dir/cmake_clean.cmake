file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ch.dir/bench_fig11_ch.cc.o"
  "CMakeFiles/bench_fig11_ch.dir/bench_fig11_ch.cc.o.d"
  "bench_fig11_ch"
  "bench_fig11_ch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
