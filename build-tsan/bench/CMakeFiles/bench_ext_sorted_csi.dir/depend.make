# Empty dependencies file for bench_ext_sorted_csi.
# This may be replaced when dependencies are built.
