file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sorted_csi.dir/bench_ext_sorted_csi.cc.o"
  "CMakeFiles/bench_ext_sorted_csi.dir/bench_ext_sorted_csi.cc.o.d"
  "bench_ext_sorted_csi"
  "bench_ext_sorted_csi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sorted_csi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
