
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_groupby.cc" "bench/CMakeFiles/bench_fig4_groupby.dir/bench_fig4_groupby.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_groupby.dir/bench_fig4_groupby.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/hd_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/hd_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/optimizer/CMakeFiles/hd_optimizer.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/exec/CMakeFiles/hd_exec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/txn/CMakeFiles/hd_txn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/catalog/CMakeFiles/hd_catalog.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/columnstore/CMakeFiles/hd_columnstore.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/btree/CMakeFiles/hd_btree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/hd_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/hd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
