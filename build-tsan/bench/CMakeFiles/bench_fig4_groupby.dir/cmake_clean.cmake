file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_groupby.dir/bench_fig4_groupby.cc.o"
  "CMakeFiles/bench_fig4_groupby.dir/bench_fig4_groupby.cc.o.d"
  "bench_fig4_groupby"
  "bench_fig4_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
