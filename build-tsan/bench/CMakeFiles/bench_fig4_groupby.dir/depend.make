# Empty dependencies file for bench_fig4_groupby.
# This may be replaced when dependencies are built.
