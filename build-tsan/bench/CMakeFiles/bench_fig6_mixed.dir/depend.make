# Empty dependencies file for bench_fig6_mixed.
# This may be replaced when dependencies are built.
