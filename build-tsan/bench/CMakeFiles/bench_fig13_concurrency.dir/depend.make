# Empty dependencies file for bench_fig13_concurrency.
# This may be replaced when dependencies are built.
