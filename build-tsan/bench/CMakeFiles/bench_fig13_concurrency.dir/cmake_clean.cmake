file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_concurrency.dir/bench_fig13_concurrency.cc.o"
  "CMakeFiles/bench_fig13_concurrency.dir/bench_fig13_concurrency.cc.o.d"
  "bench_fig13_concurrency"
  "bench_fig13_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
