# Empty compiler generated dependencies file for bench_fig3_sort_order.
# This may be replaced when dependencies are built.
