file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_data_skipping.dir/bench_fig2_data_skipping.cc.o"
  "CMakeFiles/bench_fig2_data_skipping.dir/bench_fig2_data_skipping.cc.o.d"
  "bench_fig2_data_skipping"
  "bench_fig2_data_skipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_data_skipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
