# Empty compiler generated dependencies file for bench_fig2_data_skipping.
# This may be replaced when dependencies are built.
