# Empty dependencies file for bench_fig1_selectivity.
# This may be replaced when dependencies are built.
