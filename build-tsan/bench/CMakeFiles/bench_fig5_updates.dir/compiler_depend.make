# Empty compiler generated dependencies file for bench_fig5_updates.
# This may be replaced when dependencies are built.
