file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_updates.dir/bench_fig5_updates.cc.o"
  "CMakeFiles/bench_fig5_updates.dir/bench_fig5_updates.cc.o.d"
  "bench_fig5_updates"
  "bench_fig5_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
