file(REMOVE_RECURSE
  "CMakeFiles/selvector_test.dir/selvector_test.cc.o"
  "CMakeFiles/selvector_test.dir/selvector_test.cc.o.d"
  "selvector_test"
  "selvector_test.pdb"
  "selvector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
