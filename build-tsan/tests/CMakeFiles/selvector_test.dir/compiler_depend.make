# Empty compiler generated dependencies file for selvector_test.
# This may be replaced when dependencies are built.
