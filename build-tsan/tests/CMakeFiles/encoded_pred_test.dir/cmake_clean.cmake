file(REMOVE_RECURSE
  "CMakeFiles/encoded_pred_test.dir/encoded_pred_test.cc.o"
  "CMakeFiles/encoded_pred_test.dir/encoded_pred_test.cc.o.d"
  "encoded_pred_test"
  "encoded_pred_test.pdb"
  "encoded_pred_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoded_pred_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
