# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for encoded_pred_test.
