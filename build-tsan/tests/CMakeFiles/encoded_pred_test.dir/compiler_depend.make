# Empty compiler generated dependencies file for encoded_pred_test.
# This may be replaced when dependencies are built.
