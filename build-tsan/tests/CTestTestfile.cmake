# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/common_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/failpoint_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/metrics_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/explain_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/selvector_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/encoded_pred_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/storage_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/btree_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/columnstore_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/catalog_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/exec_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/advisor_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/txn_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/workload_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sql_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/edge_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/chaos_test[1]_include.cmake")
