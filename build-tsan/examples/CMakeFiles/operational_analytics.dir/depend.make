# Empty dependencies file for operational_analytics.
# This may be replaced when dependencies are built.
