file(REMOVE_RECURSE
  "CMakeFiles/operational_analytics.dir/operational_analytics.cpp.o"
  "CMakeFiles/operational_analytics.dir/operational_analytics.cpp.o.d"
  "operational_analytics"
  "operational_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operational_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
