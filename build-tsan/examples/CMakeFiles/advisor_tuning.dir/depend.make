# Empty dependencies file for advisor_tuning.
# This may be replaced when dependencies are built.
