file(REMOVE_RECURSE
  "CMakeFiles/advisor_tuning.dir/advisor_tuning.cpp.o"
  "CMakeFiles/advisor_tuning.dir/advisor_tuning.cpp.o.d"
  "advisor_tuning"
  "advisor_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
