file(REMOVE_RECURSE
  "CMakeFiles/hd_core.dir/advisor.cc.o"
  "CMakeFiles/hd_core.dir/advisor.cc.o.d"
  "CMakeFiles/hd_core.dir/candidates.cc.o"
  "CMakeFiles/hd_core.dir/candidates.cc.o.d"
  "CMakeFiles/hd_core.dir/size_estimation.cc.o"
  "CMakeFiles/hd_core.dir/size_estimation.cc.o.d"
  "libhd_core.a"
  "libhd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
