# Empty dependencies file for hd_btree.
# This may be replaced when dependencies are built.
