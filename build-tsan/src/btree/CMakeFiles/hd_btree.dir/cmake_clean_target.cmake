file(REMOVE_RECURSE
  "libhd_btree.a"
)
