file(REMOVE_RECURSE
  "CMakeFiles/hd_btree.dir/btree.cc.o"
  "CMakeFiles/hd_btree.dir/btree.cc.o.d"
  "libhd_btree.a"
  "libhd_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
