# Empty dependencies file for hd_common.
# This may be replaced when dependencies are built.
