file(REMOVE_RECURSE
  "CMakeFiles/hd_common.dir/failpoint.cc.o"
  "CMakeFiles/hd_common.dir/failpoint.cc.o.d"
  "CMakeFiles/hd_common.dir/metrics.cc.o"
  "CMakeFiles/hd_common.dir/metrics.cc.o.d"
  "CMakeFiles/hd_common.dir/schema.cc.o"
  "CMakeFiles/hd_common.dir/schema.cc.o.d"
  "CMakeFiles/hd_common.dir/status.cc.o"
  "CMakeFiles/hd_common.dir/status.cc.o.d"
  "CMakeFiles/hd_common.dir/telemetry.cc.o"
  "CMakeFiles/hd_common.dir/telemetry.cc.o.d"
  "CMakeFiles/hd_common.dir/thread_pool.cc.o"
  "CMakeFiles/hd_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/hd_common.dir/trace.cc.o"
  "CMakeFiles/hd_common.dir/trace.cc.o.d"
  "CMakeFiles/hd_common.dir/value.cc.o"
  "CMakeFiles/hd_common.dir/value.cc.o.d"
  "libhd_common.a"
  "libhd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
