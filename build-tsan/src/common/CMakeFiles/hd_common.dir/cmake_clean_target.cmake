file(REMOVE_RECURSE
  "libhd_common.a"
)
