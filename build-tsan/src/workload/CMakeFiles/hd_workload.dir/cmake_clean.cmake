file(REMOVE_RECURSE
  "CMakeFiles/hd_workload.dir/ch.cc.o"
  "CMakeFiles/hd_workload.dir/ch.cc.o.d"
  "CMakeFiles/hd_workload.dir/customer.cc.o"
  "CMakeFiles/hd_workload.dir/customer.cc.o.d"
  "CMakeFiles/hd_workload.dir/micro.cc.o"
  "CMakeFiles/hd_workload.dir/micro.cc.o.d"
  "CMakeFiles/hd_workload.dir/mixed_driver.cc.o"
  "CMakeFiles/hd_workload.dir/mixed_driver.cc.o.d"
  "CMakeFiles/hd_workload.dir/tpcds.cc.o"
  "CMakeFiles/hd_workload.dir/tpcds.cc.o.d"
  "CMakeFiles/hd_workload.dir/tpch.cc.o"
  "CMakeFiles/hd_workload.dir/tpch.cc.o.d"
  "libhd_workload.a"
  "libhd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
