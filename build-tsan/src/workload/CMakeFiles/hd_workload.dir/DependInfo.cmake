
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/ch.cc" "src/workload/CMakeFiles/hd_workload.dir/ch.cc.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/ch.cc.o.d"
  "/root/repo/src/workload/customer.cc" "src/workload/CMakeFiles/hd_workload.dir/customer.cc.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/customer.cc.o.d"
  "/root/repo/src/workload/micro.cc" "src/workload/CMakeFiles/hd_workload.dir/micro.cc.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/micro.cc.o.d"
  "/root/repo/src/workload/mixed_driver.cc" "src/workload/CMakeFiles/hd_workload.dir/mixed_driver.cc.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/mixed_driver.cc.o.d"
  "/root/repo/src/workload/tpcds.cc" "src/workload/CMakeFiles/hd_workload.dir/tpcds.cc.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/tpcds.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/workload/CMakeFiles/hd_workload.dir/tpch.cc.o" "gcc" "src/workload/CMakeFiles/hd_workload.dir/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/hd_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/catalog/CMakeFiles/hd_catalog.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/exec/CMakeFiles/hd_exec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/optimizer/CMakeFiles/hd_optimizer.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/txn/CMakeFiles/hd_txn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/columnstore/CMakeFiles/hd_columnstore.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/btree/CMakeFiles/hd_btree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/hd_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
