# Empty dependencies file for hd_columnstore.
# This may be replaced when dependencies are built.
