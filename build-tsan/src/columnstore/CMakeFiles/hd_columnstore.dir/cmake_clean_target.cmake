file(REMOVE_RECURSE
  "libhd_columnstore.a"
)
