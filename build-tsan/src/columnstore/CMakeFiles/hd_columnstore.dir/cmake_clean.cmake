file(REMOVE_RECURSE
  "CMakeFiles/hd_columnstore.dir/columnstore.cc.o"
  "CMakeFiles/hd_columnstore.dir/columnstore.cc.o.d"
  "CMakeFiles/hd_columnstore.dir/encoding.cc.o"
  "CMakeFiles/hd_columnstore.dir/encoding.cc.o.d"
  "CMakeFiles/hd_columnstore.dir/row_group.cc.o"
  "CMakeFiles/hd_columnstore.dir/row_group.cc.o.d"
  "CMakeFiles/hd_columnstore.dir/segment.cc.o"
  "CMakeFiles/hd_columnstore.dir/segment.cc.o.d"
  "libhd_columnstore.a"
  "libhd_columnstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_columnstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
