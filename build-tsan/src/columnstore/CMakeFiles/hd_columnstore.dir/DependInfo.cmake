
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/columnstore/columnstore.cc" "src/columnstore/CMakeFiles/hd_columnstore.dir/columnstore.cc.o" "gcc" "src/columnstore/CMakeFiles/hd_columnstore.dir/columnstore.cc.o.d"
  "/root/repo/src/columnstore/encoding.cc" "src/columnstore/CMakeFiles/hd_columnstore.dir/encoding.cc.o" "gcc" "src/columnstore/CMakeFiles/hd_columnstore.dir/encoding.cc.o.d"
  "/root/repo/src/columnstore/row_group.cc" "src/columnstore/CMakeFiles/hd_columnstore.dir/row_group.cc.o" "gcc" "src/columnstore/CMakeFiles/hd_columnstore.dir/row_group.cc.o.d"
  "/root/repo/src/columnstore/segment.cc" "src/columnstore/CMakeFiles/hd_columnstore.dir/segment.cc.o" "gcc" "src/columnstore/CMakeFiles/hd_columnstore.dir/segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/hd_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/hd_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/btree/CMakeFiles/hd_btree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
