# Empty dependencies file for hd_catalog.
# This may be replaced when dependencies are built.
