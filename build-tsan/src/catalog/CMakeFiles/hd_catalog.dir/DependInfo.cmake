
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/database.cc" "src/catalog/CMakeFiles/hd_catalog.dir/database.cc.o" "gcc" "src/catalog/CMakeFiles/hd_catalog.dir/database.cc.o.d"
  "/root/repo/src/catalog/stats.cc" "src/catalog/CMakeFiles/hd_catalog.dir/stats.cc.o" "gcc" "src/catalog/CMakeFiles/hd_catalog.dir/stats.cc.o.d"
  "/root/repo/src/catalog/table.cc" "src/catalog/CMakeFiles/hd_catalog.dir/table.cc.o" "gcc" "src/catalog/CMakeFiles/hd_catalog.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/hd_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/hd_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/btree/CMakeFiles/hd_btree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/columnstore/CMakeFiles/hd_columnstore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
