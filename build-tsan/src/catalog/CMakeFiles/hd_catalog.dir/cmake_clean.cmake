file(REMOVE_RECURSE
  "CMakeFiles/hd_catalog.dir/database.cc.o"
  "CMakeFiles/hd_catalog.dir/database.cc.o.d"
  "CMakeFiles/hd_catalog.dir/stats.cc.o"
  "CMakeFiles/hd_catalog.dir/stats.cc.o.d"
  "CMakeFiles/hd_catalog.dir/table.cc.o"
  "CMakeFiles/hd_catalog.dir/table.cc.o.d"
  "libhd_catalog.a"
  "libhd_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
