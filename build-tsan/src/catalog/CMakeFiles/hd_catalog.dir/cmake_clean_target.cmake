file(REMOVE_RECURSE
  "libhd_catalog.a"
)
