file(REMOVE_RECURSE
  "CMakeFiles/hd_sql.dir/parser.cc.o"
  "CMakeFiles/hd_sql.dir/parser.cc.o.d"
  "libhd_sql.a"
  "libhd_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
