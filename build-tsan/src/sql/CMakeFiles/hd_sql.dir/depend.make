# Empty dependencies file for hd_sql.
# This may be replaced when dependencies are built.
