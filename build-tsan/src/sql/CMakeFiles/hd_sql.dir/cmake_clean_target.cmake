file(REMOVE_RECURSE
  "libhd_sql.a"
)
