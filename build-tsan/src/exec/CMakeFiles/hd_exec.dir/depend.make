# Empty dependencies file for hd_exec.
# This may be replaced when dependencies are built.
