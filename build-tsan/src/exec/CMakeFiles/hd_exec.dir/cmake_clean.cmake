file(REMOVE_RECURSE
  "CMakeFiles/hd_exec.dir/agg_hash.cc.o"
  "CMakeFiles/hd_exec.dir/agg_hash.cc.o.d"
  "CMakeFiles/hd_exec.dir/executor.cc.o"
  "CMakeFiles/hd_exec.dir/executor.cc.o.d"
  "CMakeFiles/hd_exec.dir/explain.cc.o"
  "CMakeFiles/hd_exec.dir/explain.cc.o.d"
  "libhd_exec.a"
  "libhd_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
