file(REMOVE_RECURSE
  "libhd_exec.a"
)
