# Empty dependencies file for hd_optimizer.
# This may be replaced when dependencies are built.
