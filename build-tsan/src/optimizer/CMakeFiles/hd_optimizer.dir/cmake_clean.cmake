file(REMOVE_RECURSE
  "CMakeFiles/hd_optimizer.dir/config.cc.o"
  "CMakeFiles/hd_optimizer.dir/config.cc.o.d"
  "CMakeFiles/hd_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/hd_optimizer.dir/optimizer.cc.o.d"
  "libhd_optimizer.a"
  "libhd_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
