file(REMOVE_RECURSE
  "libhd_optimizer.a"
)
