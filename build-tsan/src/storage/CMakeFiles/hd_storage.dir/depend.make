# Empty dependencies file for hd_storage.
# This may be replaced when dependencies are built.
