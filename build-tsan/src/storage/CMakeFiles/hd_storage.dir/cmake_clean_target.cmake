file(REMOVE_RECURSE
  "libhd_storage.a"
)
