file(REMOVE_RECURSE
  "CMakeFiles/hd_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/hd_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/hd_storage.dir/disk_model.cc.o"
  "CMakeFiles/hd_storage.dir/disk_model.cc.o.d"
  "CMakeFiles/hd_storage.dir/heap_file.cc.o"
  "CMakeFiles/hd_storage.dir/heap_file.cc.o.d"
  "libhd_storage.a"
  "libhd_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
