file(REMOVE_RECURSE
  "CMakeFiles/hd_txn.dir/lock_manager.cc.o"
  "CMakeFiles/hd_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/hd_txn.dir/transaction.cc.o"
  "CMakeFiles/hd_txn.dir/transaction.cc.o.d"
  "libhd_txn.a"
  "libhd_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
