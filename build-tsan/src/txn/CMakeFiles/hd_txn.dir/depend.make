# Empty dependencies file for hd_txn.
# This may be replaced when dependencies are built.
