file(REMOVE_RECURSE
  "libhd_txn.a"
)
