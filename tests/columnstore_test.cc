// Unit tests for columnstore encodings, segments, row groups, and the
// delta-store / delete-buffer / delete-bitmap machinery of Section 2.
#include <gtest/gtest.h>

#include <numeric>

#include "columnstore/columnstore.h"
#include "common/rng.h"

namespace hd {
namespace {

TEST(BitPackedTest, RoundTrip) {
  std::vector<uint64_t> vals;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    vals.push_back(static_cast<uint64_t>(rng.Uniform(0, 123456)));
  }
  BitPacked p;
  p.Pack(vals);
  EXPECT_EQ(p.bit_width(), BitsFor(123456));
  for (size_t i = 0; i < vals.size(); ++i) {
    ASSERT_EQ(p.Get(i), vals[i]) << i;
  }
  std::vector<uint64_t> out(100);
  p.Decode(500, 100, out.data());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], vals[500 + i]);
}

TEST(BitPackedTest, AllZeros) {
  std::vector<uint64_t> vals(1000, 0);
  BitPacked p;
  p.Pack(vals);
  EXPECT_EQ(p.bit_width(), 0);
  EXPECT_EQ(p.Get(123), 0u);
  EXPECT_LT(p.byte_size(), 128u);  // nearly free
}

TEST(BitsForTest, Values) {
  EXPECT_EQ(BitsFor(0), 0);
  EXPECT_EQ(BitsFor(1), 1);
  EXPECT_EQ(BitsFor(2), 2);
  EXPECT_EQ(BitsFor(255), 8);
  EXPECT_EQ(BitsFor(256), 9);
}

TEST(CountRunsTest, Figure8Example) {
  // The paper's Figure 8: columns A and B sorted by (B, A).
  // Sorted data: A = 0,1,3,3,3,3  B = 0,0,0,1,1,1.
  std::vector<int64_t> a = {0, 1, 3, 3, 3, 3};
  std::vector<int64_t> b = {0, 0, 0, 1, 1, 1};
  EXPECT_EQ(CountRuns(a), 3u);  // (0,1), (1,1), (3,4) — 3 runs as in Fig 8(d)
  EXPECT_EQ(CountRuns(b), 2u);  // (0,3), (1,3)
}

class SegmentTest : public ::testing::Test {
 protected:
  SegmentTest() : pool_(&disk_) {}
  DiskModel disk_;
  BufferPool pool_;
};

TEST_F(SegmentTest, RleForLongRuns) {
  std::vector<int64_t> v;
  for (int g = 0; g < 10; ++g) {
    for (int i = 0; i < 1000; ++i) v.push_back(g);
  }
  ColumnSegment s;
  s.Build(v, &pool_);
  EXPECT_EQ(s.encoding(), SegEncoding::kDictRle);
  EXPECT_EQ(s.num_runs(), 10u);
  EXPECT_EQ(s.min_value(), 0);
  EXPECT_EQ(s.max_value(), 9);
  EXPECT_LT(s.size_bytes(), 1000u);  // massive compression
  std::vector<int64_t> out(v.size());
  s.Decode(0, v.size(), out.data());
  EXPECT_EQ(out, v);
}

TEST_F(SegmentTest, DictPackedForSmallSparseDomains) {
  // 200 distinct values spread over a wide range: dictionary codes need 8
  // bits while raw offsets would need ~21, so the dictionary must win.
  Rng rng(2);
  std::vector<int64_t> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.Uniform(0, 200) * 7919);
  ColumnSegment s;
  s.Build(v, &pool_);
  EXPECT_EQ(s.encoding(), SegEncoding::kDictPacked);
  EXPECT_EQ(s.distinct_count(), 201u);
  std::vector<int64_t> out(v.size());
  s.Decode(0, v.size(), out.data());
  EXPECT_EQ(out, v);
  // ~8 bits per value instead of 64.
  EXPECT_LT(s.size_bytes(), 10000u * 2 + 4096);
}

TEST_F(SegmentTest, RawPackedWhenDictionaryDoesNotPay) {
  // Dense small-integer domain: raw offsets are as narrow as dictionary
  // codes, so paying for the dictionary is a loss.
  Rng rng(12);
  std::vector<int64_t> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.Uniform(0, 200));
  ColumnSegment s;
  s.Build(v, &pool_);
  EXPECT_EQ(s.encoding(), SegEncoding::kRawPacked);
  std::vector<int64_t> out(v.size());
  s.Decode(0, v.size(), out.data());
  EXPECT_EQ(out, v);
}

TEST_F(SegmentTest, DecodeMidRle) {
  std::vector<int64_t> v;
  for (int g = 0; g < 100; ++g) {
    for (int i = 0; i < 37; ++i) v.push_back(g * 5);
  }
  ColumnSegment s;
  s.Build(v, &pool_);
  ASSERT_EQ(s.encoding(), SegEncoding::kDictRle);
  std::vector<int64_t> out(100);
  s.Decode(1234, 100, out.data());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], v[1234 + i]);
}

TEST_F(SegmentTest, CanSkip) {
  std::vector<int64_t> v;
  for (int64_t i = 100; i < 200; ++i) v.push_back(i);
  ColumnSegment s;
  s.Build(v, &pool_);
  EXPECT_TRUE(s.CanSkip(0, 99));
  EXPECT_TRUE(s.CanSkip(201, 300));
  EXPECT_FALSE(s.CanSkip(150, 160));
  EXPECT_FALSE(s.CanSkip(0, 100));  // touches min
}

TEST_F(SegmentTest, NegativeValuesRoundTrip) {
  Rng rng(3);
  std::vector<int64_t> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.Uniform(-1000000, 1000000));
  ColumnSegment s;
  s.Build(v, &pool_);
  std::vector<int64_t> out(v.size());
  s.Decode(0, v.size(), out.data());
  EXPECT_EQ(out, v);
}

TEST_F(SegmentTest, CompressionSortShrinksRowGroup) {
  Rng rng(4);
  const size_t n = 50000;
  // Two correlated low-cardinality columns: sorting makes long runs.
  std::vector<std::vector<int64_t>> cols(2);
  for (size_t i = 0; i < n; ++i) {
    int64_t a = rng.Uniform(0, 5);
    cols[0].push_back(a);
    cols[1].push_back(a * 10 + rng.Uniform(0, 2));
  }
  std::vector<int64_t> locs(n);
  std::iota(locs.begin(), locs.end(), 0);

  CsiOptions sorted_opts;
  sorted_opts.compression_sort = true;
  RowGroup sorted_rg;
  sorted_rg.Build(cols, locs, sorted_opts, &pool_);

  CsiOptions raw_opts;
  raw_opts.compression_sort = false;
  RowGroup raw_rg;
  raw_rg.Build(cols, locs, raw_opts, &pool_);

  EXPECT_LT(sorted_rg.segment(0).size_bytes() + sorted_rg.segment(1).size_bytes(),
            (raw_rg.segment(0).size_bytes() + raw_rg.segment(1).size_bytes()) / 4);
  // Sorting must not change min/max (skipping behaviour preserved).
  EXPECT_EQ(sorted_rg.segment(0).min_value(), raw_rg.segment(0).min_value());
  EXPECT_EQ(sorted_rg.segment(0).max_value(), raw_rg.segment(0).max_value());
}

class CsiTest : public ::testing::Test {
 protected:
  CsiTest() : pool_(&disk_) {}

  std::unique_ptr<ColumnStoreIndex> MakeCsi(ColumnStoreIndex::Kind kind,
                                            size_t n, size_t rowgroup = 4096) {
    CsiOptions opts;
    opts.rowgroup_size = rowgroup;
    auto csi = std::make_unique<ColumnStoreIndex>(kind, 2, &pool_, opts);
    std::vector<std::vector<int64_t>> cols(2);
    std::vector<int64_t> locs;
    for (size_t i = 0; i < n; ++i) {
      cols[0].push_back(static_cast<int64_t>(i));       // sorted
      cols[1].push_back(static_cast<int64_t>(i % 97));  // small domain
      locs.push_back(static_cast<int64_t>(i));
    }
    csi->BulkLoad(std::move(cols), std::move(locs));
    return csi;
  }

  static uint64_t CountScan(ColumnStoreIndex* csi,
                            const std::vector<SegPredicate>& preds,
                            QueryMetrics* m = nullptr) {
    uint64_t count = 0;
    auto fn = [&](const ColumnBatch& b) {
      count += b.count;
      return true;
    };
    csi->ScanGroups(0, csi->num_row_groups(), {0, 1}, preds, fn, m);
    csi->ScanDelta({0, 1}, preds, fn, m);
    return count;
  }

  DiskModel disk_;
  BufferPool pool_;
};

TEST_F(CsiTest, BulkLoadAndFullScan) {
  auto csi = MakeCsi(ColumnStoreIndex::Kind::kPrimary, 20000);
  EXPECT_EQ(csi->num_rows(), 20000u);
  EXPECT_EQ(csi->num_row_groups(), 5);  // 20000 / 4096 -> 5 groups
  EXPECT_EQ(CountScan(csi.get(), {}), 20000u);
}

TEST_F(CsiTest, PredicatePushdownAndSegmentElimination) {
  auto csi = MakeCsi(ColumnStoreIndex::Kind::kPrimary, 20000);
  QueryMetrics m;
  // col0 in [100, 199]: data sorted on col0 -> only 1 group touched.
  EXPECT_EQ(CountScan(csi.get(), {{0, 100, 199}}, &m), 100u);
  EXPECT_GT(m.segments_skipped.load(), 0u);
}

TEST_F(CsiTest, DeltaStoreInsertVisibleToScan) {
  auto csi = MakeCsi(ColumnStoreIndex::Kind::kSecondary, 10000);
  std::vector<int64_t> row = {999999, 42};
  csi->Insert(row, 10000, nullptr);
  EXPECT_EQ(csi->delta_rows(), 1u);
  EXPECT_EQ(CountScan(csi.get(), {{0, 999999, 999999}}), 1u);
  EXPECT_EQ(csi->num_rows(), 10001u);
}

TEST_F(CsiTest, SecondaryDeleteUsesDeleteBuffer) {
  auto csi = MakeCsi(ColumnStoreIndex::Kind::kSecondary, 10000);
  std::vector<int64_t> locs = {5, 6, 7};
  ASSERT_TRUE(csi->DeleteBatch(locs, nullptr).ok());
  EXPECT_EQ(csi->delete_buffer_rows(), 3u);
  // The anti-join hides the deleted rows.
  EXPECT_EQ(CountScan(csi.get(), {}), 9997u);
  EXPECT_EQ(CountScan(csi.get(), {{0, 5, 7}}), 0u);
}

TEST_F(CsiTest, PrimaryDeleteUsesDeleteBitmap) {
  auto csi = MakeCsi(ColumnStoreIndex::Kind::kPrimary, 10000);
  std::vector<int64_t> locs = {5, 6, 7};
  QueryMetrics m;
  ASSERT_TRUE(csi->DeleteBatch(locs, &m).ok());
  EXPECT_EQ(csi->delete_buffer_rows(), 0u);  // no delete buffer on primary
  EXPECT_EQ(csi->row_group(0).deleted_count(), 3u);
  EXPECT_EQ(CountScan(csi.get(), {}), 9997u);
  // The delete had to decode locator segments (expensive path).
  EXPECT_GT(m.segments_scanned.load(), 0u);
}

TEST_F(CsiTest, DeleteFromDeltaStore) {
  auto csi = MakeCsi(ColumnStoreIndex::Kind::kSecondary, 1000);
  std::vector<int64_t> row = {5555, 1};
  csi->Insert(row, 1000, nullptr);
  std::vector<int64_t> locs = {1000};
  ASSERT_TRUE(csi->DeleteBatch(locs, nullptr).ok());
  EXPECT_EQ(csi->delta_rows(), 0u);
  EXPECT_EQ(csi->delete_buffer_rows(), 0u);  // it was a delta row
  EXPECT_EQ(CountScan(csi.get(), {}), 1000u);
}

TEST_F(CsiTest, ReorganizeCompactsEverything) {
  auto csi = MakeCsi(ColumnStoreIndex::Kind::kSecondary, 10000);
  for (int i = 0; i < 100; ++i) {
    std::vector<int64_t> row = {100000 + i, i};
    csi->Insert(row, 10000 + i, nullptr);
  }
  std::vector<int64_t> dels;
  for (int64_t i = 0; i < 50; ++i) dels.push_back(i);
  ASSERT_TRUE(csi->DeleteBatch(dels, nullptr).ok());
  const uint64_t before = csi->num_rows();
  csi->Reorganize();
  EXPECT_EQ(csi->delta_rows(), 0u);
  EXPECT_EQ(csi->delete_buffer_rows(), 0u);
  EXPECT_EQ(csi->num_rows(), before);
  EXPECT_EQ(CountScan(csi.get(), {}), before);
}

TEST_F(CsiTest, PerColumnSizes) {
  auto csi = MakeCsi(ColumnStoreIndex::Kind::kPrimary, 20000);
  // col1 (97 distinct values) must compress far better than col0 (unique).
  EXPECT_LT(csi->column_size_bytes(1), csi->column_size_bytes(0) / 2);
  EXPECT_GE(csi->size_bytes(),
            csi->column_size_bytes(0) + csi->column_size_bytes(1));
}

TEST_F(CsiTest, ColdScanChargesIo) {
  auto csi = MakeCsi(ColumnStoreIndex::Kind::kPrimary, 50000);
  pool_.EvictAll();
  QueryMetrics cold;
  CountScan(csi.get(), {}, &cold);
  EXPECT_GT(cold.sim_io_ms(), 0.0);
  QueryMetrics hot;
  CountScan(csi.get(), {}, &hot);
  EXPECT_DOUBLE_EQ(hot.sim_io_ms(), 0.0);
}

TEST_F(CsiTest, SortedColumnstoreSkipsAggressively) {
  // Section 4.5 extension: global sort on col0 before forming row groups.
  CsiOptions opts;
  opts.rowgroup_size = 4096;
  opts.sort_col = 0;
  ColumnStoreIndex csi(ColumnStoreIndex::Kind::kSecondary, 2, &pool_, opts);
  Rng rng(9);
  std::vector<std::vector<int64_t>> cols(2);
  std::vector<int64_t> locs;
  for (int i = 0; i < 40000; ++i) {
    cols[0].push_back(rng.Uniform(0, 1000000));  // random order in
    cols[1].push_back(i);
    locs.push_back(i);
  }
  int64_t expect = 0;
  for (int i = 0; i < 40000; ++i) {
    if (cols[0][i] >= 500000 && cols[0][i] <= 500999) ++expect;
  }
  csi.BulkLoad(std::move(cols), std::move(locs));
  QueryMetrics m;
  uint64_t count = 0;
  auto fn = [&](const ColumnBatch& b) {
    count += b.count;
    return true;
  };
  csi.ScanGroups(0, csi.num_row_groups(), {0, 1}, {{0, 500000, 500999}}, fn,
                 &m);
  EXPECT_EQ(count, static_cast<uint64_t>(expect));
  // Sorted segments: nearly every group skipped.
  EXPECT_GT(m.segments_skipped.load(), 8u);
  // Locators still identify the original rows (round trip via col1 == loc).
  csi.ScanGroups(0, 2, {1}, {},
                 [&](const ColumnBatch& b) {
                   for (int i = 0; i < b.count; ++i) {
                     EXPECT_EQ(b.cols[0][i], b.locators[i]);
                   }
                   return true;
                 },
                 nullptr);
}

TEST_F(CsiTest, SortedColumnstoreSurvivesReorganize) {
  CsiOptions opts;
  opts.rowgroup_size = 2048;
  opts.sort_col = 0;
  ColumnStoreIndex csi(ColumnStoreIndex::Kind::kSecondary, 2, &pool_, opts);
  Rng rng(10);
  std::vector<std::vector<int64_t>> cols(2);
  std::vector<int64_t> locs;
  for (int i = 0; i < 10000; ++i) {
    cols[0].push_back(rng.Uniform(0, 1000000));
    cols[1].push_back(i);
    locs.push_back(i);
  }
  csi.BulkLoad(std::move(cols), std::move(locs));
  // Trickle-insert unsorted rows, then reorganize: order must be restored.
  for (int i = 0; i < 100; ++i) {
    std::vector<int64_t> row = {rng.Uniform(0, 1000000), 10000 + i};
    csi.Insert(row, 10000 + i, nullptr);
  }
  csi.Reorganize();
  int64_t prev_max = INT64_MIN;
  for (int g = 0; g < csi.num_row_groups(); ++g) {
    EXPECT_GE(csi.row_group(g).segment(0).min_value(), prev_max);
    prev_max = csi.row_group(g).segment(0).max_value();
  }
  EXPECT_EQ(csi.num_rows(), 10100u);
}

TEST_F(CsiTest, ScanEarlyStop) {
  auto csi = MakeCsi(ColumnStoreIndex::Kind::kPrimary, 20000);
  int batches = 0;
  csi->ScanGroups(0, csi->num_row_groups(), {0}, {},
                  [&](const ColumnBatch&) { return ++batches < 2; }, nullptr);
  EXPECT_EQ(batches, 2);
}

}  // namespace
}  // namespace hd
