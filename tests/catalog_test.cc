// Tests for the catalog: packing, dictionaries, stats, physical design
// changes, and DML fan-out consistency across index types.
#include <gtest/gtest.h>

#include "catalog/database.h"
#include "common/rng.h"

namespace hd {
namespace {

Schema TestSchema() {
  return Schema({{"id", ValueType::kInt64, 0},
                 {"price", ValueType::kDouble, 0},
                 {"name", ValueType::kString, 8},
                 {"day", ValueType::kDate, 0}});
}

std::vector<Row> TestRows(int n, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<Row> rows;
  static const char* kNames[] = {"alpha", "bravo", "charlie", "delta", "echo"};
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(i), Value::Double(i * 1.5),
                    Value::String(kNames[rng.Uniform(0, 4)]),
                    Value::Date(static_cast<int32_t>(rng.Uniform(0, 365)))});
  }
  return rows;
}

class TableTest : public ::testing::Test {
 protected:
  TableTest() {
    t_ = db_.CreateTable("t", TestSchema()).value();
    t_->BulkLoad(TestRows(1000));
  }
  Database db_;
  Table* t_;
};

TEST_F(TableTest, PackUnpackRoundTrip) {
  Row r = {Value::Int64(7), Value::Double(-3.25), Value::String("bravo"),
           Value::Date(100)};
  PackedRow p = t_->PackRow(r);
  Row back = t_->UnpackRow(p);
  EXPECT_EQ(back[0].i64(), 7);
  EXPECT_DOUBLE_EQ(back[1].f64(), -3.25);
  EXPECT_EQ(back[2].str(), "bravo");
  EXPECT_EQ(back[3].i32(), 100);
}

TEST_F(TableTest, StringDictOrderPreservingAfterBulkLoad) {
  const StringDict* d = t_->dict(2);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->sorted());
  EXPECT_LT(d->Lookup("alpha"), d->Lookup("bravo"));
  EXPECT_LT(d->Lookup("bravo"), d->Lookup("charlie"));
}

TEST_F(TableTest, PackBoundAbsentString) {
  bool found = true;
  t_->PackBound(2, Value::String("bzzz"), 0, &found);  // absent, equality
  EXPECT_FALSE(found);
  // Range rounding: "bzzz" falls between "bravo" and "charlie".
  int64_t down = t_->PackBound(2, Value::String("bzzz"), -1, &found);
  int64_t up = t_->PackBound(2, Value::String("bzzz"), +1, &found);
  EXPECT_EQ(down, t_->dict(2)->Lookup("bravo"));
  EXPECT_EQ(up, t_->dict(2)->Lookup("charlie"));
}

TEST_F(TableTest, StatsBuilt) {
  const TableStats& s = t_->stats();
  ASSERT_TRUE(s.valid());
  EXPECT_EQ(s.row_count, 1000u);
  EXPECT_EQ(s.columns[0].min_value(), 0);
  EXPECT_EQ(s.columns[0].max_value(), 999);
  EXPECT_NEAR(s.columns[0].SelectivityRange(0, 499), 0.5, 0.05);
  EXPECT_EQ(s.columns[2].distinct_count(), 5u);
}

TEST_F(TableTest, SetPrimaryBTreePreservesData) {
  ASSERT_TRUE(t_->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  EXPECT_EQ(t_->num_rows(), 1000u);
  // Rows come back in key order.
  int64_t prev = -1;
  t_->ScanAll(
      [&](int64_t, const int64_t* row) {
        EXPECT_GT(row[0], prev);
        prev = row[0];
        return true;
      },
      nullptr);
}

TEST_F(TableTest, SetPrimaryColumnStorePreservesData) {
  ASSERT_TRUE(t_->SetPrimary(PrimaryKind::kColumnStore).ok());
  EXPECT_EQ(t_->num_rows(), 1000u);
  uint64_t n = 0;
  t_->ScanAll([&](int64_t, const int64_t*) {
    ++n;
    return true;
  }, nullptr);
  EXPECT_EQ(n, 1000u);
}

TEST_F(TableTest, SecondaryBTreeLookup) {
  ASSERT_TRUE(t_->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  ASSERT_TRUE(t_->CreateSecondaryBTree("ix_day", {3}, {1}).ok());
  SecondaryIndex* si = t_->FindSecondary("ix_day");
  ASSERT_NE(si, nullptr);
  EXPECT_EQ(si->btree->num_entries(), 1000u);
  // Payload must include the included col and the pk col (id).
  EXPECT_NE(std::find(si->payload_cols.begin(), si->payload_cols.end(), 0),
            si->payload_cols.end());
}

TEST_F(TableTest, OnlyOneCsiPerTable) {
  ASSERT_TRUE(t_->CreateSecondaryColumnStore("csi1").ok());
  EXPECT_FALSE(t_->CreateSecondaryColumnStore("csi2").ok());
}

TEST_F(TableTest, InsertFansOutToAllIndexes) {
  ASSERT_TRUE(t_->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  ASSERT_TRUE(t_->CreateSecondaryBTree("ix_day", {3}, {}).ok());
  ASSERT_TRUE(t_->CreateSecondaryColumnStore("csi").ok());
  Row r = {Value::Int64(5000), Value::Double(1.0), Value::String("alpha"),
           Value::Date(999)};
  t_->InsertRow(r, nullptr);
  EXPECT_EQ(t_->num_rows(), 1001u);
  EXPECT_EQ(t_->FindSecondary("ix_day")->btree->num_entries(), 1001u);
  EXPECT_EQ(t_->FindSecondary("csi")->csi->num_rows(), 1001u);
  EXPECT_EQ(t_->FindSecondary("csi")->csi->delta_rows(), 1u);
}

TEST_F(TableTest, DeleteFansOut) {
  ASSERT_TRUE(t_->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  ASSERT_TRUE(t_->CreateSecondaryBTree("ix_day", {3}, {}).ok());
  ASSERT_TRUE(t_->CreateSecondaryColumnStore("csi").ok());
  // Find row id=10 via scan.
  std::vector<RowRef> victims;
  t_->ScanAll(
      [&](int64_t rid, const int64_t* row) {
        if (row[0] == 10) {
          victims.push_back({rid, PackedRow(row, row + 4)});
          return false;
        }
        return true;
      },
      nullptr);
  ASSERT_EQ(victims.size(), 1u);
  ASSERT_TRUE(t_->DeleteRows(victims, nullptr).ok());
  EXPECT_EQ(t_->num_rows(), 999u);
  EXPECT_EQ(t_->FindSecondary("ix_day")->btree->num_entries(), 999u);
  EXPECT_EQ(t_->FindSecondary("csi")->csi->num_rows(), 999u);
}

TEST_F(TableTest, UpdatePreservesRowIdAndIndexes) {
  ASSERT_TRUE(t_->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  ASSERT_TRUE(t_->CreateSecondaryBTree("ix_day", {3}, {}).ok());
  std::vector<RowRef> victims;
  t_->ScanAll(
      [&](int64_t rid, const int64_t* row) {
        if (row[0] == 20) {
          victims.push_back({rid, PackedRow(row, row + 4)});
          return false;
        }
        return true;
      },
      nullptr);
  ASSERT_EQ(victims.size(), 1u);
  PackedRow nr = victims[0].row;
  nr[3] = 12345;  // change the secondary's key column
  ASSERT_TRUE(t_->UpdateRows(victims, {nr}, nullptr).ok());
  EXPECT_EQ(t_->num_rows(), 1000u);
  EXPECT_EQ(t_->FindSecondary("ix_day")->btree->num_entries(), 1000u);
  // Row must be findable under the new day value.
  bool seen = false;
  t_->FindSecondary("ix_day")->btree->Scan(
      Bound::Inclusive({12345}), Bound::Inclusive({12345}),
      [&](const int64_t*, const int64_t*) {
        seen = true;
        return false;
      },
      nullptr);
  EXPECT_TRUE(seen);
}

TEST_F(TableTest, FetchRowByLocatorAllPrimaries) {
  // Heap.
  PackedRow out;
  ASSERT_TRUE(t_->FetchRow(17, {}, &out, nullptr).ok());
  EXPECT_EQ(out[0], 17);
  // B+ tree (needs pk hint).
  ASSERT_TRUE(t_->SetPrimary(PrimaryKind::kBTree, {0}).ok());
  int64_t rid17 = -1;
  PackedRow row17;
  t_->ScanAll(
      [&](int64_t rid, const int64_t* row) {
        if (row[0] == 17) {
          rid17 = rid;
          row17.assign(row, row + 4);
          return false;
        }
        return true;
      },
      nullptr);
  std::vector<int64_t> pk = {row17[0]};
  ASSERT_TRUE(t_->FetchRow(rid17, pk, &out, nullptr).ok());
  EXPECT_EQ(out[0], 17);
  // Primary columnstore.
  ASSERT_TRUE(t_->SetPrimary(PrimaryKind::kColumnStore).ok());
  int64_t ridc = -1;
  t_->ScanAll(
      [&](int64_t rid, const int64_t* row) {
        if (row[0] == 17) {
          ridc = rid;
          return false;
        }
        return true;
      },
      nullptr);
  ASSERT_TRUE(t_->FetchRow(ridc, {}, &out, nullptr).ok());
  EXPECT_EQ(out[0], 17);
}

TEST_F(TableTest, SampleBlocksApproximatesRatio) {
  std::vector<std::vector<int64_t>> cols;
  t_->SampleBlocks(0.5, 3, /*block_rows=*/16, &cols);
  ASSERT_EQ(cols.size(), 4u);
  EXPECT_GT(cols[0].size(), 250u);
  EXPECT_LT(cols[0].size(), 750u);
}

TEST_F(TableTest, ApplyIndexDefDispatch) {
  IndexDef d;
  d.name = "csi_t";
  d.type = IndexDef::Type::kColumnStore;
  ASSERT_TRUE(t_->ApplyIndexDef(d).ok());
  EXPECT_TRUE(t_->has_secondary_csi());
  IndexDef b;
  b.name = "ix";
  b.type = IndexDef::Type::kBTree;
  b.key_cols = {3};
  ASSERT_TRUE(t_->ApplyIndexDef(b).ok());
  EXPECT_NE(t_->FindSecondary("ix"), nullptr);
}

TEST(DatabaseTest, CreateDropTables) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", TestSchema()).ok());
  EXPECT_FALSE(db.CreateTable("a", TestSchema()).ok());
  EXPECT_NE(db.GetTable("a"), nullptr);
  ASSERT_TRUE(db.DropTable("a").ok());
  EXPECT_EQ(db.GetTable("a"), nullptr);
  EXPECT_TRUE(db.DropTable("a").IsNotFound());
}

TEST(GeeTest, ExactOnFullData) {
  std::vector<int64_t> v = {1, 1, 2, 3, 3, 3, 4};
  EXPECT_EQ(GeeEstimateDistinct(v, v.size()), 4u);
}

TEST(GeeTest, ScalesSingletons) {
  // Sample of 100 values from 10000 rows: 50 singletons, 25 doubles.
  std::vector<int64_t> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  for (int i = 1000; i < 1025; ++i) {
    v.push_back(i);
    v.push_back(i);
  }
  std::sort(v.begin(), v.end());
  const uint64_t est = GeeEstimateDistinct(v, 10000);
  // d_more (25) + sqrt(100) * f1 (50) = 525.
  EXPECT_EQ(est, 525u);
}

TEST(ColumnStatsTest, EqualitySelectivity) {
  std::vector<int64_t> v;
  for (int i = 0; i < 10000; ++i) v.push_back(i % 100);
  ColumnStats s;
  s.Build(std::move(v), 10000);
  EXPECT_NEAR(s.SelectivityEq(50), 0.01, 0.005);
  EXPECT_DOUBLE_EQ(s.SelectivityEq(5000), 0.0);  // out of domain
}

}  // namespace
}  // namespace hd
