// SelVector / BitPacked kernel tests: word-boundary behavior of the
// packed selection bitmap, the all-pass / none fast-path proofs, hardware
// popcount vs a naive bit loop, width-specialized batch unpack, and late
// materialization (DecodeSelected) cross-checked against a
// decode-then-filter oracle for every segment encoding.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "columnstore/columnstore.h"
#include "common/rng.h"

namespace hd {
namespace {

// ---------------------------------------------------------------------
// SelVector: the word-packed selection bitmap.
// ---------------------------------------------------------------------

TEST(SelVectorTest, SetClearTestAcrossWordBoundaries) {
  SelVector v;
  v.Reset(130);  // three words, 2-bit tail
  const size_t probes[] = {0, 1, 62, 63, 64, 65, 126, 127, 128, 129};
  for (size_t i : probes) EXPECT_FALSE(v.Test(i)) << i;
  for (size_t i : probes) v.Set(i);
  for (size_t i : probes) EXPECT_TRUE(v.Test(i)) << i;
  EXPECT_EQ(v.Count(), std::size(probes));
  for (size_t i : probes) v.Clear(i);
  EXPECT_TRUE(v.NoneSet());
}

TEST(SelVectorTest, SetRangeClearRangeMatchNaive) {
  Rng rng(31);
  const size_t n = 517;  // deliberately not a multiple of 64
  SelVector v;
  v.Reset(n);
  std::vector<uint8_t> oracle(n, 0);
  for (int step = 0; step < 200; ++step) {
    const size_t b = static_cast<size_t>(rng.Uniform(0, n - 1));
    const size_t e = b + static_cast<size_t>(
                             rng.Uniform(0, static_cast<int64_t>(n - b)));
    if (step % 2 == 0) {
      v.SetRange(b, e);
      std::fill(oracle.begin() + b, oracle.begin() + e, 1);
    } else {
      v.ClearRange(b, e);
      std::fill(oracle.begin() + b, oracle.begin() + e, 0);
    }
    uint64_t want = 0;
    for (size_t i = 0; i < n; ++i) want += oracle[i];
    ASSERT_EQ(v.Count(), want) << "step " << step << " [" << b << "," << e
                               << ")";
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(v.Test(i), oracle[i] != 0) << "step " << step << " bit " << i;
    }
  }
}

TEST(SelVectorTest, CountIsPopcountOfRandomPattern) {
  Rng rng(37);
  for (size_t n : {0ul, 1ul, 63ul, 64ul, 65ul, 1000ul, 4096ul}) {
    SelVector v;
    v.Reset(n);
    uint64_t want = 0;
    for (size_t i = 0; i < n; ++i) {
      if (rng.Uniform(0, 2) == 0) {
        v.Set(i);
        ++want;
      }
    }
    EXPECT_EQ(v.Count(), want) << "n=" << n;
  }
}

TEST(SelVectorTest, AllSetNoneSetFastPaths) {
  for (size_t n : {1ul, 63ul, 64ul, 65ul, 128ul, 130ul, 4096ul}) {
    SelVector v;
    v.ResetAllSet(n);
    EXPECT_TRUE(v.AllSet()) << n;
    EXPECT_FALSE(v.NoneSet()) << n;
    EXPECT_EQ(v.Count(), n) << n;
    v.Clear(n - 1);  // last bit lives in the tail word
    EXPECT_FALSE(v.AllSet()) << n;
    v.Reset(n);
    EXPECT_TRUE(v.NoneSet()) << n;
    EXPECT_FALSE(v.AllSet()) << n;
  }
  // Empty selection: vacuously all-set and none-set.
  SelVector e;
  e.Reset(0);
  EXPECT_TRUE(e.AllSet());
  EXPECT_TRUE(e.NoneSet());
}

TEST(SelVectorTest, ResetAfterLargerAllSetLeavesTailClear) {
  // Reset() keeps capacity; a smaller re-Reset after ResetAllSet must not
  // leak stale set bits past size() (Count/AllSet are plain word scans).
  SelVector v;
  v.ResetAllSet(130);
  v.Reset(70);
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_TRUE(v.NoneSet());
  v.SetRange(0, 70);
  EXPECT_TRUE(v.AllSet());
  EXPECT_EQ(v.Count(), 70u);
}

TEST(SelVectorTest, AndIsConjunction) {
  const size_t n = 200;
  Rng rng(41);
  SelVector a, b;
  a.Reset(n);
  b.Reset(n);
  std::vector<uint8_t> wa(n), wb(n);
  for (size_t i = 0; i < n; ++i) {
    wa[i] = rng.Uniform(0, 1);
    wb[i] = rng.Uniform(0, 1);
    if (wa[i]) a.Set(i);
    if (wb[i]) b.Set(i);
  }
  a.And(b);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a.Test(i), wa[i] && wb[i]) << i;
  }
}

TEST(SelVectorTest, ToIndicesMatchesNaive) {
  Rng rng(43);
  const size_t n = 700;
  SelVector v;
  v.Reset(n);
  std::vector<uint32_t> want;
  for (size_t i = 0; i < n; ++i) {
    if (rng.Uniform(0, 3) == 0) {
      v.Set(i);
      want.push_back(static_cast<uint32_t>(i));
    }
  }
  std::vector<uint32_t> got(n);
  const int k = v.ToIndices(got.data());
  ASSERT_EQ(static_cast<size_t>(k), want.size());
  got.resize(want.size());
  EXPECT_EQ(got, want);  // ascending by construction of the word scan
}

// ---------------------------------------------------------------------
// BitPacked: width-specialized unpack + gather kernels.
// ---------------------------------------------------------------------

TEST(BitPackedTest, DecodeEveryWidthMatchesGetAndSource) {
  Rng rng(47);
  for (int w = 0; w <= 64; ++w) {
    const size_t n = 300 + static_cast<size_t>(rng.Uniform(0, 200));
    std::vector<uint64_t> vals(n);
    const uint64_t mask = w == 64 ? ~0ull : (1ull << w) - 1;
    for (size_t i = 0; i < n; ++i) {
      vals[i] = static_cast<uint64_t>(rng.Uniform(0, INT64_MAX)) & mask;
    }
    // Force the full width: BitsFor(max element) must equal w.
    if (w > 0) vals[0] = mask;
    BitPacked p;
    p.Pack(vals);
    ASSERT_EQ(p.bit_width(), w == 0 ? 0 : w);
    ASSERT_EQ(p.size(), n);
    // Whole-array decode, plus windows that start mid-word.
    const size_t starts[] = {0, 1, n / 3, n - 1};
    for (size_t start : starts) {
      const size_t count = n - start;
      std::vector<uint64_t> out(count, ~0ull);
      p.Decode(start, count, out.data());
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[i], vals[start + i]) << "w=" << w << " start=" << start
                                           << " i=" << i;
        ASSERT_EQ(p.Get(start + i), vals[start + i]) << "w=" << w;
      }
    }
  }
}

TEST(BitPackedTest, DecodeSelectedMatchesDecodeThenGather) {
  Rng rng(53);
  for (int w : {1, 3, 8, 13, 16, 21, 32, 40, 64}) {
    const size_t n = 2000;
    const uint64_t mask = w == 64 ? ~0ull : (1ull << w) - 1;
    std::vector<uint64_t> vals(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = static_cast<uint64_t>(rng.Uniform(0, INT64_MAX)) & mask;
    }
    vals[0] = mask;
    BitPacked p;
    p.Pack(vals);
    const size_t start = 37;
    std::vector<uint32_t> sel;
    for (size_t i = start; i < n; ++i) {
      if (rng.Uniform(0, 4) == 0) sel.push_back(static_cast<uint32_t>(i - start));
    }
    std::vector<uint64_t> got(sel.size(), ~0ull);
    p.DecodeSelected(start, sel, got.data());
    for (size_t k = 0; k < sel.size(); ++k) {
      ASSERT_EQ(got[k], vals[start + sel[k]]) << "w=" << w << " k=" << k;
    }
  }
}

TEST(BitPackedTest, EvalRangePacksMatchBitsAndRefines) {
  Rng rng(59);
  const size_t n = 3000;
  std::vector<uint64_t> vals(n);
  for (size_t i = 0; i < n; ++i) {
    vals[i] = static_cast<uint64_t>(rng.Uniform(0, 500));
  }
  BitPacked p;
  p.Pack(vals);
  const size_t start = 11, count = 2500;
  SelVector sel;
  sel.Reset(count);
  p.EvalRange(start, count, 100, 300, /*refine=*/false, &sel);
  for (size_t i = 0; i < count; ++i) {
    const uint64_t v = vals[start + i];
    ASSERT_EQ(sel.Test(i), v >= 100 && v <= 300) << i;
  }
  // refine=true ANDs a second range into the surviving bits.
  p.EvalRange(start, count, 200, 400, /*refine=*/true, &sel);
  uint64_t want = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t v = vals[start + i];
    const bool pass = v >= 200 && v <= 300;
    ASSERT_EQ(sel.Test(i), pass) << i;
    want += pass;
  }
  EXPECT_EQ(sel.Count(), want);
}

TEST(BitPackedTest, SumKernelsMatchNaive) {
  Rng rng(61);
  const size_t n = 2600;
  std::vector<uint64_t> vals(n);
  for (size_t i = 0; i < n; ++i) {
    vals[i] = static_cast<uint64_t>(rng.Uniform(0, 1000));
  }
  BitPacked p;
  p.Pack(vals);
  const size_t start = 19, count = 2400;
  uint64_t want_sum = 0;
  for (size_t i = 0; i < count; ++i) want_sum += vals[start + i];
  EXPECT_EQ(p.Sum(start, count), want_sum);

  uint64_t fsum = 0, fcount = 0;
  p.SumRange(start, count, 250, 750, &fsum, &fcount);
  uint64_t wsum = 0, wcount = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t v = vals[start + i];
    if (v >= 250 && v <= 750) {
      wsum += v;
      ++wcount;
    }
  }
  EXPECT_EQ(fsum, wsum);
  EXPECT_EQ(fcount, wcount);
}

// ---------------------------------------------------------------------
// ColumnSegment::DecodeSelected vs decode-then-filter, every encoding.
// ---------------------------------------------------------------------

class SegmentDecodeSelectedTest : public ::testing::Test {
 protected:
  SegmentDecodeSelectedTest() : pool_(&disk_) {}

  // Build a segment of the requested shape and cross-check DecodeSelected
  // on random windows and random ascending selections against decoding
  // the whole window and gathering (the oracle the fast path replaces).
  void CheckShape(int shape, SegEncoding want_enc) {
    Rng rng(67 + shape);
    std::vector<int64_t> vals;
    const int n = 6000;
    int64_t v = rng.Uniform(-500, 500);
    for (int i = 0; i < n; ++i) {
      switch (shape) {
        case 0:  // runny -> kDictRle
          if (rng.Uniform(0, 99) < 2) v = rng.Uniform(-500, 500);
          vals.push_back(v);
          break;
        case 1:  // small domain -> kDictPacked
          vals.push_back(rng.Uniform(0, 40) * 7 - 100);
          break;
        default:  // wide domain -> kRawPacked
          vals.push_back(rng.Uniform(-1000000, 1000000));
      }
    }
    ColumnSegment s;
    s.Build(vals, &pool_);
    ASSERT_EQ(s.encoding(), want_enc);

    for (int trial = 0; trial < 20; ++trial) {
      const size_t start = static_cast<size_t>(rng.Uniform(0, n - 2));
      const size_t count =
          1 + static_cast<size_t>(
                  rng.Uniform(0, static_cast<int64_t>(n - start - 1)));
      // Oracle: decode the whole window, then gather.
      std::vector<int64_t> full(count);
      s.Decode(start, count, full.data());
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(full[i], vals[start + i]);  // Decode itself is correct
      }
      // Selections at several densities, always including boundaries.
      const int denom = 1 + static_cast<int>(rng.Uniform(0, 7));
      std::vector<uint32_t> sel;
      for (size_t i = 0; i < count; ++i) {
        if (i == 0 || i + 1 == count || rng.Uniform(0, denom) == 0) {
          sel.push_back(static_cast<uint32_t>(i));
        }
      }
      std::vector<int64_t> got(sel.size(), INT64_MIN);
      s.DecodeSelected(start, sel, got.data());
      for (size_t k = 0; k < sel.size(); ++k) {
        ASSERT_EQ(got[k], full[sel[k]])
            << SegEncodingName(s.encoding()) << " trial=" << trial
            << " start=" << start << " count=" << count << " k=" << k;
      }
    }
  }

  DiskModel disk_;
  BufferPool pool_;
};

TEST_F(SegmentDecodeSelectedTest, DictRle) {
  CheckShape(0, SegEncoding::kDictRle);
}

TEST_F(SegmentDecodeSelectedTest, DictPacked) {
  CheckShape(1, SegEncoding::kDictPacked);
}

TEST_F(SegmentDecodeSelectedTest, RawPacked) {
  CheckShape(2, SegEncoding::kRawPacked);
}

TEST_F(SegmentDecodeSelectedTest, EmptyAndSingletonSelections) {
  std::vector<int64_t> vals;
  Rng rng(71);
  for (int i = 0; i < 1000; ++i) vals.push_back(rng.Uniform(0, 30));
  ColumnSegment s;
  s.Build(vals, &pool_);
  // Empty selection decodes nothing (and must not touch `out`).
  int64_t sentinel = 12345;
  s.DecodeSelected(100, {}, &sentinel);
  EXPECT_EQ(sentinel, 12345);
  // Singleton at each end of a window.
  for (uint32_t off : {0u, 499u}) {
    std::vector<uint32_t> sel{off};
    int64_t out = INT64_MIN;
    s.DecodeSelected(250, sel, &out);
    EXPECT_EQ(out, vals[250 + off]);
  }
}

}  // namespace
}  // namespace hd
