// Unit and property tests for the B+ tree.
#include <gtest/gtest.h>

#include <map>

#include "btree/btree.h"
#include "common/rng.h"

namespace hd {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : pool_(&disk_) {}
  DiskModel disk_;
  BufferPool pool_;
};

std::vector<int64_t> FlatEntries(const std::vector<std::pair<int64_t, int64_t>>& kv) {
  std::vector<int64_t> flat;
  for (auto [k, v] : kv) {
    flat.push_back(k);
    flat.push_back(v);
  }
  return flat;
}

TEST_F(BTreeTest, BulkLoadAndScan) {
  BTree t(1, 1, &pool_);
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 10000; ++i) kv.push_back({i, i * 10});
  t.BulkLoad(FlatEntries(kv));
  EXPECT_EQ(t.num_entries(), 10000u);
  EXPECT_GE(t.height(), 2);
  int64_t expect = 0;
  t.Scan(Bound::Unbounded(), Bound::Unbounded(),
         [&](const int64_t* k, const int64_t* p) {
           EXPECT_EQ(k[0], expect);
           EXPECT_EQ(p[0], expect * 10);
           ++expect;
           return true;
         },
         nullptr);
  EXPECT_EQ(expect, 10000);
}

TEST_F(BTreeTest, SeekEqual) {
  BTree t(1, 1, &pool_);
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 1000; ++i) kv.push_back({i * 2, i});
  t.BulkLoad(FlatEntries(kv));
  int64_t out;
  int64_t key = 500;
  ASSERT_TRUE(t.SeekEqual(std::span<const int64_t>(&key, 1), &out, nullptr).ok());
  EXPECT_EQ(out, 250);
  key = 501;  // absent
  EXPECT_TRUE(t.SeekEqual(std::span<const int64_t>(&key, 1), &out, nullptr)
                  .IsNotFound());
}

TEST_F(BTreeTest, RangeScanBounds) {
  BTree t(1, 1, &pool_);
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 1000; ++i) kv.push_back({i, i});
  t.BulkLoad(FlatEntries(kv));
  int64_t count = 0;
  t.Scan(Bound::Inclusive({100}), Bound::Exclusive({200}),
         [&](const int64_t* k, const int64_t*) {
           EXPECT_GE(k[0], 100);
           EXPECT_LT(k[0], 200);
           ++count;
           return true;
         },
         nullptr);
  EXPECT_EQ(count, 100);
}

TEST_F(BTreeTest, InsertAndSplit) {
  BTree t(1, 1, &pool_);
  t.BulkLoad({});
  Rng rng(5);
  std::map<int64_t, int64_t> ref;
  for (int i = 0; i < 20000; ++i) {
    int64_t k = rng.Uniform(0, 1'000'000'000);
    if (ref.count(k)) continue;
    ref[k] = i;
    int64_t key = k, payload = i;
    ASSERT_TRUE(t.Insert(std::span<const int64_t>(&key, 1),
                         std::span<const int64_t>(&payload, 1), nullptr)
                    .ok());
  }
  EXPECT_EQ(t.num_entries(), ref.size());
  // Scan must match the reference map exactly.
  auto it = ref.begin();
  t.Scan(Bound::Unbounded(), Bound::Unbounded(),
         [&](const int64_t* k, const int64_t* p) {
           EXPECT_EQ(k[0], it->first);
           EXPECT_EQ(p[0], it->second);
           ++it;
           return true;
         },
         nullptr);
  EXPECT_EQ(it, ref.end());
}

TEST_F(BTreeTest, DuplicateInsertRejected) {
  BTree t(1, 1, &pool_);
  t.BulkLoad({});
  int64_t k = 1, p = 2;
  ASSERT_TRUE(t.Insert(std::span<const int64_t>(&k, 1),
                       std::span<const int64_t>(&p, 1), nullptr).ok());
  EXPECT_FALSE(t.Insert(std::span<const int64_t>(&k, 1),
                        std::span<const int64_t>(&p, 1), nullptr).ok());
}

TEST_F(BTreeTest, DeleteAndUpdate) {
  BTree t(1, 1, &pool_);
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 1000; ++i) kv.push_back({i, i});
  t.BulkLoad(FlatEntries(kv));
  int64_t key = 500;
  ASSERT_TRUE(t.Delete(std::span<const int64_t>(&key, 1), nullptr).ok());
  EXPECT_EQ(t.num_entries(), 999u);
  int64_t out;
  EXPECT_TRUE(t.SeekEqual(std::span<const int64_t>(&key, 1), &out, nullptr)
                  .IsNotFound());
  key = 600;
  int64_t np = 12345;
  ASSERT_TRUE(t.UpdatePayload(std::span<const int64_t>(&key, 1),
                              std::span<const int64_t>(&np, 1), nullptr).ok());
  ASSERT_TRUE(t.SeekEqual(std::span<const int64_t>(&key, 1), &out, nullptr).ok());
  EXPECT_EQ(out, 12345);
}

TEST_F(BTreeTest, CompositeKeyPrefixScan) {
  // Key = (a, b); scan on prefix a == 5 must hit all b values.
  BTree t(2, 1, &pool_);
  std::vector<int64_t> flat;
  for (int64_t a = 0; a < 100; ++a) {
    for (int64_t b = 0; b < 10; ++b) {
      flat.push_back(a);
      flat.push_back(b);
      flat.push_back(a * 1000 + b);
    }
  }
  t.BulkLoad(flat);
  int count = 0;
  t.Scan(Bound::Inclusive({5}), Bound::Inclusive({5}),
         [&](const int64_t* k, const int64_t*) {
           EXPECT_EQ(k[0], 5);
           ++count;
           return true;
         },
         nullptr);
  EXPECT_EQ(count, 10);
}

TEST_F(BTreeTest, ExclusivePrefixLowerBoundAcrossLeaves) {
  // Many duplicates of the bound prefix spanning multiple leaves.
  BTree t(2, 0, &pool_);
  std::vector<int64_t> flat;
  for (int64_t i = 0; i < 5000; ++i) {
    flat.push_back(i < 2500 ? 7 : 8);  // first key col
    flat.push_back(i);                 // uniquifier
  }
  t.BulkLoad(flat);
  int count = 0;
  t.Scan(Bound::Exclusive({7}), Bound::Unbounded(),
         [&](const int64_t* k, const int64_t*) {
           EXPECT_EQ(k[0], 8);
           ++count;
           return true;
         },
         nullptr);
  EXPECT_EQ(count, 2500);
}

TEST_F(BTreeTest, CollectLeavesCoversRange) {
  BTree t(1, 1, &pool_);
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 50000; ++i) kv.push_back({i, i});
  t.BulkLoad(FlatEntries(kv));
  Bound lo = Bound::Inclusive({1000});
  Bound hi = Bound::Inclusive({40000});
  std::vector<LeafHandle> leaves;
  ASSERT_TRUE(t.CollectLeaves(lo, hi, nullptr, &leaves).ok());
  ASSERT_GT(leaves.size(), 4u);
  int64_t count = 0;
  for (auto h : leaves) {
    ASSERT_TRUE(t.ScanLeaf(h, lo, hi,
                           [&](const int64_t* k, const int64_t*) {
                             EXPECT_GE(k[0], 1000);
                             EXPECT_LE(k[0], 40000);
                             ++count;
                             return true;
                           },
                           nullptr)
                    .ok());
  }
  EXPECT_EQ(count, 39001);
}

TEST_F(BTreeTest, ColdTraversalChargesIo) {
  BTree t(1, 1, &pool_);
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 100000; ++i) kv.push_back({i, i});
  t.BulkLoad(FlatEntries(kv));
  pool_.EvictAll();
  QueryMetrics cold;
  int64_t out, key = 77777;
  ASSERT_TRUE(t.SeekEqual(std::span<const int64_t>(&key, 1), &out, &cold).ok());
  EXPECT_GT(cold.sim_io_ms(), 0.0);
  QueryMetrics hot;
  ASSERT_TRUE(t.SeekEqual(std::span<const int64_t>(&key, 1), &out, &hot).ok());
  EXPECT_DOUBLE_EQ(hot.sim_io_ms(), 0.0);
}

TEST_F(BTreeTest, SizeBytesGrowsWithEntries) {
  BTree small(1, 1, &pool_);
  BTree large(1, 1, &pool_);
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 1000; ++i) kv.push_back({i, i});
  small.BulkLoad(FlatEntries(kv));
  for (int64_t i = 1000; i < 100000; ++i) kv.push_back({i, i});
  large.BulkLoad(FlatEntries(kv));
  EXPECT_GT(large.size_bytes(), 10 * small.size_bytes());
}

// Property test: random interleaving of inserts/deletes matches std::map.
class BTreeFuzzTest : public BTreeTest,
                      public ::testing::WithParamInterface<uint64_t> {};

TEST_P(BTreeFuzzTest, MatchesReferenceMap) {
  BTree t(1, 1, &pool_);
  t.BulkLoad({});
  Rng rng(GetParam());
  std::map<int64_t, int64_t> ref;
  for (int i = 0; i < 5000; ++i) {
    const int64_t k = rng.Uniform(0, 2000);
    int64_t payload = i;
    if (rng.Flip(0.7)) {
      if (!ref.count(k)) {
        ref[k] = i;
        ASSERT_TRUE(t.Insert(std::span<const int64_t>(&k, 1),
                             std::span<const int64_t>(&payload, 1), nullptr)
                        .ok());
      }
    } else {
      const bool existed = ref.erase(k) > 0;
      Status s = t.Delete(std::span<const int64_t>(&k, 1), nullptr);
      EXPECT_EQ(s.ok(), existed);
    }
  }
  EXPECT_EQ(t.num_entries(), ref.size());
  auto it = ref.begin();
  t.Scan(Bound::Unbounded(), Bound::Unbounded(),
         [&](const int64_t* k, const int64_t* p) {
           EXPECT_EQ(k[0], it->first);
           EXPECT_EQ(p[0], it->second);
           ++it;
           return true;
         },
         nullptr);
  EXPECT_EQ(it, ref.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 17, 23));

}  // namespace
}  // namespace hd
