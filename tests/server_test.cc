// Conformance and robustness tests for the hd_server socket/session
// layer against the normative wire spec in docs/PROTOCOL.md. Each test
// cites the section it checks (§n) — when the spec and this file
// disagree, one of them has a bug.
//
// Covered here:
//   §1   frame grammar: length prefix, poisoned-stream lengths
//   §1.2 wire scalars + per-value tags (encode/decode round trips)
//   §1.3 malformed/truncated frames → typed errors, never crashes
//   §2   every message type round-trips; unknown types rejected
//   §3.1 hello-first handshake, version negotiation
//   §3.2 query exchange: header/batches/done ordering, zero-row results
//   §3.3 transaction statements and their error cases
//   §3.4 orderly goodbye vs abrupt disconnect (nothing leaks)
//   §4   error-code mapping: engine Status == wire code (admission shed
//        arrives as kResourceExhausted)
//   §5   version mismatch is refused before any query
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/parser.h"

namespace hd {
namespace {

/// Poll a condition with a deadline (server-side state changes arrive
/// asynchronously: worker loops notice closed sockets on their next
/// poll() tick).
template <typename F>
bool WaitUntil(F cond, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

uint64_t CounterValue(const std::string& name) {
  TelemetrySnapshot snap = Telemetry::Instance().Snapshot();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::Instance().DisarmAll();
    // The demo hybrid design at test scale: clustered B+ tree(region,
    // day) + secondary columnstore, enough rows for several row groups.
    auto sales = db_.CreateTable(
        "sales", Schema({{"region", ValueType::kString, 8},
                         {"day", ValueType::kInt32, 0},
                         {"units", ValueType::kInt32, 0},
                         {"revenue", ValueType::kDouble, 0}}));
    ASSERT_TRUE(sales.ok());
    static const char* kRegions[] = {"east", "north", "south", "west"};
    std::vector<Row> rows;
    rows.reserve(60000);
    for (int i = 0; i < 60000; ++i) {
      rows.push_back({Value::String(kRegions[i % 4]), Value::Int32(i % 365),
                      Value::Int32(1 + i % 9), Value::Double(5.0 + i % 200)});
    }
    sales.value()->BulkLoad(rows);
    ASSERT_TRUE(sales.value()->SetPrimary(PrimaryKind::kBTree, {0, 1}).ok());
    ASSERT_TRUE(sales.value()->CreateSecondaryColumnStore("csi").ok());
    sales.value()->Analyze();
  }

  void TearDown() override { FailPoints::Instance().DisarmAll(); }

  /// Start a server on an ephemeral port with the given options.
  std::unique_ptr<Server> StartServer(ServerOptions opts = ServerOptions()) {
    opts.port = 0;
    auto s = std::make_unique<Server>(&db_, opts);
    EXPECT_TRUE(s->Start().ok());
    return s;
  }

  /// In-process reference execution: the byte-identity baseline the
  /// remote path must match.
  std::vector<std::string> RunLocal(const std::string& sql,
                                    uint64_t* row_count = nullptr) {
    auto q = ParseSql(db_, sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    Optimizer opt(&db_);
    auto pr = opt.Plan(*q, Configuration::FromCatalog(db_), {});
    EXPECT_TRUE(pr.ok()) << pr.status().ToString();
    ExecContext ctx;
    ctx.db = &db_;
    Executor ex(ctx);
    QueryResult r = ex.Execute(*q, pr->plan);
    EXPECT_TRUE(r.ok()) << r.status.ToString();
    if (row_count != nullptr) *row_count = r.row_count;
    return Render(r.rows);
  }

  /// Render rows to comparable strings, sorted (hash aggregation does
  /// not promise an output order without ORDER BY).
  static std::vector<std::string> Render(const std::vector<Row>& rows) {
    std::vector<std::string> out;
    out.reserve(rows.size());
    for (const Row& r : rows) {
      std::string line;
      for (size_t c = 0; c < r.size(); ++c) {
        if (c) line += "|";
        line += r[c].ToString();
      }
      out.push_back(std::move(line));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Raw TCP connect, no handshake — for hostile-frame tests. Installs a
  /// short recv timeout so a (correctly) silent server cannot hang the
  /// test.
  static int RawConnect(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    return fd;
  }

  /// Raw connect + §3.1 handshake; returns the socket.
  static int RawHandshake(int port) {
    const int fd = RawConnect(port);
    EXPECT_TRUE(
        WriteFrame(fd, MsgType::kHello, EncodeHello({kProtocolVersion, "raw"}))
            .ok());
    Frame f;
    EXPECT_TRUE(ReadFrame(fd, &f).ok());
    EXPECT_EQ(f.type, MsgType::kHelloOk);
    return fd;
  }

  static void SendBytes(int fd, const std::string& bytes) {
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  Database db_;
};

// ---- §1.2/§2: payload round trips (pure encode/decode, no sockets) ----

TEST_F(ServerTest, WireScalarsAndValuesRoundTrip) {
  WireWriter w;
  w.U8(7);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.F64(-2.5);
  w.Str("hello");
  w.Value(Value());  // NULL
  w.Value(Value::Int32(-42));
  w.Value(Value::Int64(1ll << 40));
  w.Value(Value::Double(3.25));
  w.Value(Value::String("wire"));
  WireReader r(w.buf());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double f64 = 0;
  std::string s;
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.U64(&u64).ok());
  ASSERT_TRUE(r.F64(&f64).ok());
  ASSERT_TRUE(r.Str(&s).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xdeadbeef);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(f64, -2.5);
  EXPECT_EQ(s, "hello");
  Value v;
  ASSERT_TRUE(r.Value(&v).ok());
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(r.Value(&v).ok());
  EXPECT_EQ(v.i32(), -42);
  ASSERT_TRUE(r.Value(&v).ok());
  EXPECT_EQ(v.i64(), 1ll << 40);
  ASSERT_TRUE(r.Value(&v).ok());
  EXPECT_EQ(v.f64(), 3.25);
  ASSERT_TRUE(r.Value(&v).ok());
  EXPECT_EQ(v.str(), "wire");
  EXPECT_TRUE(r.AtEnd());

  // §1.3: every getter past the end is a typed error, never a wild read.
  uint64_t dummy = 0;
  EXPECT_TRUE(r.U64(&dummy).IsInvalidArgument());
}

TEST_F(ServerTest, MessagesRoundTrip) {
  {
    HelloMsg m;  // §2.1
    ASSERT_TRUE(
        DecodeHello(EncodeHello({kProtocolVersion, "client-x"}), &m).ok());
    EXPECT_EQ(m.version, kProtocolVersion);
    EXPECT_EQ(m.client_name, "client-x");
  }
  {
    HelloOkMsg m;  // §2.2
    ASSERT_TRUE(
        DecodeHelloOk(EncodeHelloOk({kProtocolVersion, 99}), &m).ok());
    EXPECT_EQ(m.session_id, 99u);
  }
  {
    QueryMsg m;  // §2.3
    ASSERT_TRUE(DecodeQuery(EncodeQuery({"SELECT 1"}), &m).ok());
    EXPECT_EQ(m.sql, "SELECT 1");
  }
  {
    ResultHeaderMsg in, out;  // §2.4
    in.columns = {{"region", static_cast<uint8_t>(ValueType::kString)},
                  {"SUM", ResultHeaderMsg::kDynamicColType}};
    ASSERT_TRUE(DecodeResultHeader(EncodeResultHeader(in), &out).ok());
    ASSERT_EQ(out.columns.size(), 2u);
    EXPECT_EQ(out.columns[0].first, "region");
    EXPECT_EQ(out.columns[1].second, ResultHeaderMsg::kDynamicColType);
  }
  {
    RowBatchMsg in, out;  // §2.5
    in.last = true;
    in.rows = {{Value::Int32(1), Value()},
               {Value::String("x"), Value::Double(0.5)}};
    ASSERT_TRUE(DecodeRowBatch(EncodeRowBatch(in), &out).ok());
    EXPECT_TRUE(out.last);
    ASSERT_EQ(out.rows.size(), 2u);
    EXPECT_TRUE(out.rows[0][1].is_null());
    EXPECT_EQ(out.rows[1][0].str(), "x");
  }
  {
    ResultDoneMsg in, out;  // §2.6
    in.row_count = 5;
    in.affected_rows = 2;
    in.exec_ms = 1.5;
    in.info = "plan";
    ASSERT_TRUE(DecodeResultDone(EncodeResultDone(in), &out).ok());
    EXPECT_EQ(out.row_count, 5u);
    EXPECT_EQ(out.affected_rows, 2u);
    EXPECT_EQ(out.exec_ms, 1.5);
    EXPECT_EQ(out.info, "plan");
  }
  {
    ErrorMsg m;  // §2.7 / §4: the wire code IS the engine code
    ASSERT_TRUE(DecodeError(
                    EncodeError({Code::kResourceExhausted, "shed"}), &m)
                    .ok());
    EXPECT_EQ(m.code, Code::kResourceExhausted);
    EXPECT_EQ(m.message, "shed");
  }
  {
    StatsReqMsg m;  // §2.8
    StatsReqMsg req;
    req.format = StatsReqMsg::kJson;
    ASSERT_TRUE(DecodeStatsReq(EncodeStatsReq(req), &m).ok());
    EXPECT_EQ(m.format, StatsReqMsg::kJson);
  }
  {
    InfoMsg m;  // §2.10
    ASSERT_TRUE(DecodeInfo(EncodeInfo({"note"}), &m).ok());
    EXPECT_EQ(m.text, "note");
  }
  // §4: unknown wire codes decode to kInternal instead of UB.
  EXPECT_EQ(CodeFromWire(250), Code::kInternal);
}

// ---- §3.1/§3.2: handshake and basic queries over a real socket --------

TEST_F(ServerTest, HandshakeAndQueriesMatchInProcess) {
  auto server = StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  EXPECT_GT(c.session_id(), 0u);

  for (const char* sql :
       {"SELECT count(*), sum(revenue) FROM sales",
        "SELECT region, sum(revenue) FROM sales GROUP BY region",
        "SELECT sum(units) FROM sales WHERE day BETWEEN 10 AND 60",
        "SELECT day, units FROM sales WHERE region = 'east' AND day < 3"}) {
    SCOPED_TRACE(sql);
    uint64_t local_count = 0;
    const std::vector<std::string> want = RunLocal(sql, &local_count);
    auto r = c.Query(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(Render(r->rows), want);  // byte-identical cells
    EXPECT_EQ(r->row_count, local_count);
  }
  EXPECT_TRUE(c.Close().ok());  // §3.4 orderly goodbye
  EXPECT_TRUE(WaitUntil([&] { return server->sessions_active() == 0; }));
}

TEST_F(ServerTest, ResultHeaderNamesColumns) {
  auto server = StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  // §2.4: projected columns carry catalog names/types; aggregates carry
  // their labels with the dynamic type marker.
  auto r = c.Query("SELECT region, sum(revenue) FROM sales GROUP BY region");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->columns.size(), 2u);
  EXPECT_EQ(r->columns[0], "region");
  EXPECT_EQ(r->column_types[0], static_cast<uint8_t>(ValueType::kString));
  EXPECT_EQ(r->column_types[1], ResultHeaderMsg::kDynamicColType);

  auto sel = c.Query("SELECT day, units FROM sales WHERE region = 'east'");
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->columns.size(), 2u);
  EXPECT_EQ(sel->columns[0], "day");
  EXPECT_EQ(sel->columns[1], "units");
}

TEST_F(ServerTest, ZeroRowResultStillFramesProperly) {
  auto server = StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  // §2.5: a zero-row SELECT still sends ResultHeader + one empty batch
  // with last=1 — the client sees named columns and no rows.
  auto r = c.Query("SELECT day, units FROM sales WHERE region = 'nowhere'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->columns.size(), 2u);
  EXPECT_TRUE(r->rows.empty());
  EXPECT_EQ(r->row_count, 0u);
}

TEST_F(ServerTest, LargeResultStreamsInBatches) {
  auto server = StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  // 15000 matching rows > kRowsPerBatch forces a multi-batch stream
  // (§2.5); the reassembled stream must still match in-process.
  const char* sql = "SELECT day, units FROM sales WHERE region = 'east'";
  const std::vector<std::string> want = RunLocal(sql);
  ASSERT_GT(want.size(), kRowsPerBatch);
  auto r = c.Query(sql);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Render(r->rows), want);
}

TEST_F(ServerTest, ExplainTravelsAsInfo) {
  auto server = StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  // §2.10: EXPLAIN output rides an Info frame; no row stream.
  auto r = c.Query("EXPLAIN SELECT sum(revenue) FROM sales WHERE day < 40");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
  EXPECT_NE(r->info.find("CsiScan"), std::string::npos) << r->info;

  auto ra = c.Query(
      "EXPLAIN ANALYZE SELECT sum(revenue) FROM sales WHERE day < 40");
  ASSERT_TRUE(ra.ok());
  EXPECT_NE(ra->info.find("actual"), std::string::npos) << ra->info;
}

TEST_F(ServerTest, PlanCacheHitsOnRepeatedStatement) {
  auto server = StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  const char* sql = "SELECT count(*) FROM sales WHERE day < 123";
  const uint64_t before = CounterValue("server.plan_cache_hits");
  ASSERT_TRUE(c.Query(sql).ok());  // miss: parse + plan, then cached
  ASSERT_TRUE(c.Query(sql).ok());  // hit: catalog-of-intermediates
  ASSERT_TRUE(c.Query(sql).ok());
  EXPECT_GE(CounterValue("server.plan_cache_hits"), before + 2);
}

TEST_F(ServerTest, StatsRequestReturnsRegistry) {
  auto server = StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(c.Query("SELECT count(*) FROM sales").ok());
  // §2.8: both formats; the snapshot must include server.* metrics.
  auto prom = c.Stats(StatsReqMsg::kPrometheus);
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("hd_server_connections_total"), std::string::npos);
  EXPECT_NE(prom->find("hd_server_queries_total"), std::string::npos);
  auto json = c.Stats(StatsReqMsg::kJson);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("server.queries"), std::string::npos);
}

// ---- §3.3: transactions over the wire ---------------------------------

TEST_F(ServerTest, TransactionsOverTheWire) {
  auto server = StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());

  const auto count_before = RunLocal("SELECT count(*) FROM sales WHERE day = 100");

  ASSERT_TRUE(c.Query("BEGIN").ok());
  auto upd = c.Query("UPDATE sales SET revenue = revenue + 1 WHERE day = 100");
  ASSERT_TRUE(upd.ok());
  EXPECT_GT(upd->affected_rows, 0u);
  ASSERT_TRUE(c.Query("COMMIT").ok());
  // The txn's statements ran against the same table a later autocommit
  // statement sees.
  auto after = c.Query("SELECT count(*) FROM sales WHERE day = 100");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Render(after->rows), count_before);

  // ROLLBACK (§3.3): the engine's transaction layer models
  // concurrency-control cost — abort releases the txn's locks and undoes
  // its version-store markers (no phantom versions survive); statement
  // effects themselves are applied in place.
  const uint64_t versions_before = server->txns()->version_count();
  ASSERT_TRUE(c.Query("BEGIN SNAPSHOT").ok());
  ASSERT_TRUE(
      c.Query("UPDATE sales SET units = units + 5 WHERE day = 7").ok());
  EXPECT_GT(server->txns()->locks()->TotalGranted(), 0u);
  ASSERT_TRUE(c.Query("ROLLBACK").ok());
  EXPECT_EQ(server->txns()->locks()->TotalGranted(), 0u);
  EXPECT_EQ(server->txns()->version_count(), versions_before);
  server->txns()->GarbageCollect();
  EXPECT_EQ(server->txns()->version_count(), 0u);

  // §3.3 error cases, all typed, all non-fatal to the session.
  ASSERT_TRUE(c.Query("BEGIN").ok());
  EXPECT_TRUE(c.Query("BEGIN").status().IsInvalidArgument());  // nested
  ASSERT_TRUE(c.Query("COMMIT").ok());
  EXPECT_TRUE(c.Query("COMMIT").status().IsInvalidArgument());  // no txn
  EXPECT_TRUE(c.Query("ROLLBACK").status().IsInvalidArgument());
  EXPECT_TRUE(c.Query("BEGIN NONSENSE").status().IsInvalidArgument());
  // Session still usable after every rejected statement.
  EXPECT_TRUE(c.Query("SELECT count(*) FROM sales").ok());
  // No lock survives a fully drained session history.
  EXPECT_TRUE(c.Close().ok());
  EXPECT_TRUE(WaitUntil([&] { return server->sessions_active() == 0; }));
  EXPECT_EQ(server->txns()->locks()->TotalGranted(), 0u);
}

// ---- §4: engine error codes survive the wire --------------------------

TEST_F(ServerTest, AdmissionShedArrivesAsResourceExhausted) {
  ServerOptions opts;
  opts.admission_slots = 1;
  auto server = StartServer(opts);
  ASSERT_NE(server->admission(), nullptr);

  // Hold the single admission slot so the next query must queue; the
  // controller sheds it at queue_timeout_ms and the session forwards the
  // engine's kResourceExhausted verbatim (§4) — the remote client sees
  // exactly what an in-process caller would.
  AdmissionController::Ticket held;
  ASSERT_TRUE(server->admission()->Admit(0, &held).ok());
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  auto r = c.Query("SELECT sum(revenue) FROM sales");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  held.Release();
  // Once the gate opens the same session succeeds (shed is per-query).
  EXPECT_TRUE(c.Query("SELECT sum(revenue) FROM sales").ok());
}

TEST_F(ServerTest, ParseAndPlanErrorsAreTypedAndNonFatal) {
  auto server = StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  auto bad = c.Query("SELEC typo FROM sales");
  ASSERT_FALSE(bad.ok());
  auto missing = c.Query("SELECT count(*) FROM no_such_table");
  ASSERT_FALSE(missing.ok());
  // The session survives both (§3.2: Error ends the exchange, not the
  // connection).
  EXPECT_TRUE(c.Query("SELECT count(*) FROM sales").ok());
}

TEST_F(ServerTest, MaxSessionsRefusedWithTypedError) {
  ServerOptions opts;
  opts.max_sessions = 1;
  auto server = StartServer(opts);
  Client first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server->port()).ok());
  Client second;
  Status s = second.Connect("127.0.0.1", server->port());
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  // Capacity frees once the first client leaves.
  ASSERT_TRUE(first.Close().ok());
  ASSERT_TRUE(WaitUntil([&] { return server->sessions_active() == 0; }));
  EXPECT_TRUE(second.Connect("127.0.0.1", server->port()).ok());
}

// ---- §1.3/§3.1: hostile and malformed input ---------------------------

TEST_F(ServerTest, HelloFirstIsEnforced) {
  auto server = StartServer();
  const int fd = RawConnect(server->port());
  // §3.1: any first frame other than Hello is a protocol violation.
  ASSERT_TRUE(WriteFrame(fd, MsgType::kQuery, EncodeQuery({"SELECT 1"})).ok());
  Frame f;
  ASSERT_TRUE(ReadFrame(fd, &f).ok());
  ASSERT_EQ(f.type, MsgType::kError);
  ErrorMsg e;
  ASSERT_TRUE(DecodeError(f.payload, &e).ok());
  EXPECT_EQ(e.code, Code::kInvalidArgument);
  // ... and the server hangs up afterwards.
  EXPECT_TRUE(ReadFrame(fd, &f).IsNotFound());
  ::close(fd);
}

TEST_F(ServerTest, VersionMismatchIsRefused) {
  auto server = StartServer();
  const int fd = RawConnect(server->port());
  // §5: a version the server does not speak is refused in the handshake.
  ASSERT_TRUE(
      WriteFrame(fd, MsgType::kHello, EncodeHello({"hd-proto/0", "old"}))
          .ok());
  Frame f;
  ASSERT_TRUE(ReadFrame(fd, &f).ok());
  ASSERT_EQ(f.type, MsgType::kError);
  ErrorMsg e;
  ASSERT_TRUE(DecodeError(f.payload, &e).ok());
  EXPECT_EQ(e.code, Code::kInvalidArgument);
  EXPECT_NE(e.message.find("hd-proto/1"), std::string::npos);
  ::close(fd);
}

TEST_F(ServerTest, PoisonedLengthsGetTypedErrorThenClose) {
  auto server = StartServer();
  // §1.3: length 0 and length > max both poison the stream. The server
  // answers kInvalidArgument and closes; it must not crash or hang.
  for (const uint32_t len : {0u, kMaxFrameBytes + 1}) {
    SCOPED_TRACE(len);
    const int fd = RawHandshake(server->port());
    WireWriter w;
    w.U32(len);
    SendBytes(fd, w.buf());
    Frame f;
    ASSERT_TRUE(ReadFrame(fd, &f).ok());
    ASSERT_EQ(f.type, MsgType::kError);
    ErrorMsg e;
    ASSERT_TRUE(DecodeError(f.payload, &e).ok());
    EXPECT_EQ(e.code, Code::kInvalidArgument);
    EXPECT_TRUE(ReadFrame(fd, &f).IsNotFound());
    ::close(fd);
  }
  EXPECT_TRUE(WaitUntil([&] { return server->sessions_active() == 0; }));
}

TEST_F(ServerTest, TornFrameGetsTypedErrorThenClose) {
  auto server = StartServer();
  const int fd = RawHandshake(server->port());
  // Announce 50 bytes, deliver 11, half-close: a torn frame (§1.3).
  WireWriter w;
  w.U32(50);
  w.U8(static_cast<uint8_t>(MsgType::kQuery));
  SendBytes(fd, w.buf() + std::string(10, 'x'));
  ::shutdown(fd, SHUT_WR);
  Frame f;
  ASSERT_TRUE(ReadFrame(fd, &f).ok());
  ASSERT_EQ(f.type, MsgType::kError);
  ErrorMsg e;
  ASSERT_TRUE(DecodeError(f.payload, &e).ok());
  EXPECT_EQ(e.code, Code::kIoError);
  ::close(fd);
  EXPECT_TRUE(WaitUntil([&] { return server->sessions_active() == 0; }));
}

TEST_F(ServerTest, UnknownAndUnexpectedTypesRejected) {
  auto server = StartServer();
  // A type value outside the §2 table, and a server-only type from a
  // client, are both rejected with kInvalidArgument.
  for (const uint8_t type :
       {uint8_t{200}, static_cast<uint8_t>(MsgType::kHelloOk)}) {
    SCOPED_TRACE(static_cast<int>(type));
    const int fd = RawHandshake(server->port());
    ASSERT_TRUE(WriteFrame(fd, static_cast<MsgType>(type), "").ok());
    Frame f;
    ASSERT_TRUE(ReadFrame(fd, &f).ok());
    ASSERT_EQ(f.type, MsgType::kError);
    ErrorMsg e;
    ASSERT_TRUE(DecodeError(f.payload, &e).ok());
    EXPECT_EQ(e.code, Code::kInvalidArgument);
    ::close(fd);
  }
}

TEST_F(ServerTest, TruncatedPayloadRejected) {
  auto server = StartServer();
  const int fd = RawHandshake(server->port());
  // A Query whose sql string claims 100 bytes but carries 3 (§1.3: the
  // decoder must bounds-check, not read wild).
  WireWriter payload;
  payload.U32(100);
  const std::string p = payload.Take() + "abc";
  ASSERT_TRUE(WriteFrame(fd, MsgType::kQuery, p).ok());
  Frame f;
  ASSERT_TRUE(ReadFrame(fd, &f).ok());
  ASSERT_EQ(f.type, MsgType::kError);
  ErrorMsg e;
  ASSERT_TRUE(DecodeError(f.payload, &e).ok());
  EXPECT_EQ(e.code, Code::kInvalidArgument);
  ::close(fd);
}

TEST_F(ServerTest, RandomFrameFuzzNeverCrashesTheServer) {
  auto server = StartServer();
  Rng rng(20260809);
  for (int i = 0; i < 40; ++i) {
    const int fd = RawHandshake(server->port());
    // Random type, random payload. The server must answer every such
    // frame with a well-formed frame of its own (or close), never crash.
    const auto type = static_cast<MsgType>(rng.Uniform(0, 255));
    std::string payload;
    const int n = static_cast<int>(rng.Uniform(0, 64));
    payload.reserve(n);
    for (int b = 0; b < n; ++b) {
      payload.push_back(static_cast<char>(rng.Uniform(0, 255)));
    }
    if (WriteFrame(fd, type, payload).ok()) {
      Frame f;
      (void)ReadFrame(fd, &f);  // reply, EOF, or our 2s recv timeout
    }
    ::close(fd);
  }
  // The server is still healthy: fresh client, correct answer.
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  const auto want = RunLocal("SELECT count(*) FROM sales");
  auto r = c.Query("SELECT count(*) FROM sales");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Render(r->rows), want);
  EXPECT_TRUE(WaitUntil([&] { return server->sessions_active() == 1; }));
}

// ---- §3.4: abrupt disconnects leak nothing ----------------------------

TEST_F(ServerTest, AbruptDisconnectReleasesLocksAndSession) {
  ServerOptions opts;
  opts.shared_scans = true;
  auto server = StartServer(opts);
  {
    Client c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
    ASSERT_TRUE(c.Query("BEGIN").ok());
    ASSERT_TRUE(
        c.Query("UPDATE sales SET revenue = revenue + 1 WHERE day = 3").ok());
    EXPECT_GT(server->txns()->locks()->TotalGranted(), 0u);
    c.Abort();  // vanish with an open transaction holding locks
  }
  // §3.4: the server notices EOF, destroys the session, and the
  // destructor aborts the transaction — locks drain to zero with no
  // client-side help.
  EXPECT_TRUE(WaitUntil([&] { return server->sessions_active() == 0; }));
  EXPECT_TRUE(
      WaitUntil([&] { return server->txns()->locks()->TotalGranted() == 0; }));

  // Kill-mid-query flavor: fire a statement and hang up immediately.
  {
    Client c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
    ASSERT_TRUE(
        WriteFrame(c.fd(), MsgType::kQuery,
                   EncodeQuery({"SELECT region, sum(revenue) FROM sales "
                                "GROUP BY region"}))
            .ok());
    c.Abort();
  }
  EXPECT_TRUE(WaitUntil([&] { return server->sessions_active() == 0; }));
  EXPECT_EQ(server->txns()->locks()->TotalGranted(), 0u);
  // No shared-scan pass is left attached either (the executor detaches
  // even when the result can no longer be delivered).
  EXPECT_TRUE(WaitUntil(
      [&] { return server->scan_scheduler()->active_passes() == 0; }));
  // And the server still serves.
  Client again;
  ASSERT_TRUE(again.Connect("127.0.0.1", server->port()).ok());
  EXPECT_TRUE(again.Query("SELECT count(*) FROM sales").ok());
}

// ---- The acceptance benchmark: many concurrent clients ----------------

TEST_F(ServerTest, SixtyFourConcurrentClientsByteIdenticalResults) {
  ServerOptions opts;
  opts.shared_scans = true;
  opts.admission_slots = 8;
  opts.workers = 4;
  auto server = StartServer(opts);

  const std::vector<std::string> sqls = {
      "SELECT count(*), sum(revenue) FROM sales",
      "SELECT region, sum(revenue) FROM sales GROUP BY region",
      "SELECT sum(units) FROM sales WHERE day BETWEEN 10 AND 60",
      "SELECT day, units FROM sales WHERE region = 'east' AND day < 3",
  };
  std::vector<std::vector<std::string>> want;
  want.reserve(sqls.size());
  for (const auto& sql : sqls) want.push_back(RunLocal(sql));

  constexpr int kClients = 64;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client c;
      if (!c.Connect("127.0.0.1", server->port(),
                     "load-" + std::to_string(t))
               .ok()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t qi = 0; qi < sqls.size(); ++qi) {
        auto r = c.Query(sqls[qi]);
        // With 8 slots, 64 clients, and a 64-deep queue nothing sheds;
        // every result must be byte-identical to in-process execution.
        if (!r.ok() || Render(r->rows) != want[qi]) {
          failures.fetch_add(1);
          return;
        }
      }
      if (!c.Close().ok()) failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Everything drains: sessions, admission slots, shared-scan passes.
  EXPECT_TRUE(WaitUntil([&] { return server->sessions_active() == 0; }));
  EXPECT_EQ(server->admission()->running(), 0);
  EXPECT_EQ(server->scan_scheduler()->active_passes(), 0u);
  EXPECT_EQ(server->txns()->locks()->TotalGranted(), 0u);
  // The shared pass actually fired under fan-in.
  EXPECT_GT(CounterValue("scan.shared_attaches"), 0u);
}

// ---- Failpoint seams (docs/ROBUSTNESS.md: server.accept/read/write) ----

TEST_F(ServerTest, AcceptFailpointDropsConnectionServerRecovers) {
  auto server = StartServer();
  {
    ScopedFailPoint fp("server.accept",
                       FailSpec::OneShot(Code::kIoError, "accept chaos"));
    Client c;
    EXPECT_FALSE(c.Connect("127.0.0.1", server->port()).ok());
  }
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  EXPECT_TRUE(c.Query("SELECT count(*) FROM sales").ok());
}

TEST_F(ServerTest, ReadFailpointKillsSessionCleanly) {
  auto server = StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  ScopedFailPoint fp("server.read",
                     FailSpec::OneShot(Code::kIoError, "read chaos"));
  // The injected read failure takes the torn-frame path: typed Error,
  // then close. (The seam is server-side only — this client's own
  // ReadFrame is unaffected.)
  auto r = c.Query("SELECT count(*) FROM sales");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIoError()) << r.status().ToString();
  EXPECT_TRUE(WaitUntil([&] { return server->sessions_active() == 0; }));
}

TEST_F(ServerTest, WriteFailpointClosesSessionWithoutLeaks) {
  auto server = StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(c.Query("BEGIN").ok());
  ASSERT_TRUE(
      c.Query("UPDATE sales SET revenue = revenue + 1 WHERE day = 9").ok());
  {
    ScopedFailPoint fp("server.write",
                       FailSpec::OneShot(Code::kIoError, "write chaos"));
    // The server cannot deliver the response; it drops the session. The
    // open transaction must be aborted by the session destructor.
    (void)c.Query("SELECT count(*) FROM sales");
  }
  EXPECT_TRUE(WaitUntil([&] { return server->sessions_active() == 0; }));
  EXPECT_EQ(server->txns()->locks()->TotalGranted(), 0u);
}

// ---- Trace ids on the wire (§2.3/§2.6 optional trailing field) ----

TEST_F(ServerTest, QueryAndResultDoneCarryTraceIds) {
  {
    QueryMsg m;
    ASSERT_TRUE(
        DecodeQuery(EncodeQuery({"SELECT 1", 0xfeed0000beefull}), &m).ok());
    EXPECT_EQ(m.sql, "SELECT 1");
    EXPECT_EQ(m.trace_id, 0xfeed0000beefull);
  }
  {
    ResultDoneMsg in, out;
    in.row_count = 3;
    in.trace_id = 0x42;
    ASSERT_TRUE(DecodeResultDone(EncodeResultDone(in), &out).ok());
    EXPECT_EQ(out.trace_id, 0x42u);
  }
}

TEST_F(ServerTest, LegacyFramesWithoutTraceIdStillDecode) {
  // A pre-trace peer omits the trailing u64 entirely (§5 minor rev):
  // absence decodes as trace_id 0, but bytes *after* the field are still
  // a decode error.
  WireWriter w;
  w.Str("SELECT count(*) FROM sales");
  QueryMsg m;
  ASSERT_TRUE(DecodeQuery(w.buf(), &m).ok());
  EXPECT_EQ(m.sql, "SELECT count(*) FROM sales");
  EXPECT_EQ(m.trace_id, 0u);

  WireWriter bad;
  bad.Str("SELECT 1");
  bad.U64(7);
  bad.U8(1);  // trailing garbage past the optional field
  EXPECT_FALSE(DecodeQuery(bad.buf(), &m).ok());

  WireWriter done;  // legacy ResultDone: row_count, affected, exec_ms, info
  done.U64(1);
  done.U64(0);
  done.F64(0.5);
  done.Str("");
  ResultDoneMsg d;
  ASSERT_TRUE(DecodeResultDone(done.buf(), &d).ok());
  EXPECT_EQ(d.trace_id, 0u);
}

TEST_F(ServerTest, PinnedTraceIdIsEchoedEndToEnd) {
  auto server = StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  auto r = c.Query("SELECT count(*) FROM sales", /*trace_id=*/0xc0ffee);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->trace_id, 0xc0ffeeu);
  // Unpinned: the client stamps its own (high bit = client origin),
  // distinct per statement, echoed back by the server.
  auto a = c.Query("SELECT count(*) FROM sales");
  auto b = c.Query("SELECT count(*) FROM sales");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->trace_id, 0u);
  EXPECT_NE(a->trace_id, b->trace_id);
  EXPECT_EQ(a->trace_id >> 63, 1u);
  // The server's query store holds the same ids.
  ASSERT_NE(server->query_store(), nullptr);
  auto recent = server->query_store()->Recent(10);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[2].trace_id, 0xc0ffeeu);
  EXPECT_EQ(recent[0].trace_id, b->trace_id);
}

TEST_F(ServerTest, ServerAssignsTraceIdToLegacyClients) {
  auto server = StartServer();
  const int fd = RawHandshake(server->port());
  WireWriter w;  // Query frame with NO trace field, like an old client
  w.Str("SELECT count(*) FROM sales");
  ASSERT_TRUE(WriteFrame(fd, MsgType::kQuery, w.buf()).ok());
  uint64_t assigned = 0;
  for (;;) {
    Frame f;
    ASSERT_TRUE(ReadFrame(fd, &f).ok());
    if (f.type == MsgType::kResultDone) {
      ResultDoneMsg d;
      ASSERT_TRUE(DecodeResultDone(f.payload, &d).ok());
      assigned = d.trace_id;
      break;
    }
    ASSERT_NE(f.type, MsgType::kError);
  }
  ::close(fd);
  EXPECT_NE(assigned, 0u) << "server must assign when the client sent none";
  EXPECT_EQ(assigned >> 63, 0u) << "server-assigned ids have no client bit";
}

// ---- `.queries` over the wire ----

TEST_F(ServerTest, QueriesCommandOverTheWire) {
  ServerOptions so;
  so.slow_query_ms = 0;  // everything is "slow": exercises the slow log
  auto server = StartServer(so);
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(c.Query("SELECT count(*) FROM sales WHERE day < 10").ok());
  ASSERT_TRUE(c.Query("SELECT count(*) FROM sales WHERE day < 99").ok());

  auto top = c.Query(".queries");
  ASSERT_TRUE(top.ok());
  EXPECT_NE(top->info.find("query store: 2 recorded"), std::string::npos)
      << top->info;
  EXPECT_NE(top->info.find("WHERE day < 99"), std::string::npos);

  auto fp = c.Query(".queries fingerprints");
  ASSERT_TRUE(fp.ok());
  // Same class: literals normalized away, 2 calls on one fingerprint.
  EXPECT_NE(fp->info.find("fingerprint classes: 1"), std::string::npos)
      << fp->info;

  auto slow = c.Query(".queries slow");
  ASSERT_TRUE(slow.ok());
  EXPECT_NE(slow->info.find("slow-query log"), std::string::npos);

  auto bad = c.Query(".queries bogus");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument()) << bad.status().ToString();
}

TEST_F(ServerTest, QueriesCommandWhenStoreDisabled) {
  ServerOptions so;
  so.query_store_capacity = 0;
  auto server = StartServer(so);
  EXPECT_EQ(server->query_store(), nullptr);
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(c.Query("SELECT count(*) FROM sales").ok());  // still serves
  auto r = c.Query(".queries");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kNotSupported) << r.status().ToString();
}

TEST_F(ServerTest, QlogCapturesWireTrafficWithTraceIds) {
  const std::string path = "server_qlog_test.jsonl";
  std::remove(path.c_str());
  ServerOptions so;
  so.qlog_path = path;
  auto server = StartServer(so);
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  auto r = c.Query("SELECT region, sum(revenue) FROM sales GROUP BY region");
  ASSERT_TRUE(r.ok());
  server->query_store()->Flush();

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  // The trace id the client printed is greppable in the server's qlog —
  // the correlation contract the CI smoke test relies on.
  EXPECT_NE(contents.find("\"schema\":\"hd-qlog/1\""), std::string::npos);
  EXPECT_NE(contents.find(FingerprintHex(r->trace_id)), std::string::npos);
  EXPECT_NE(contents.find("GROUP BY region"), std::string::npos);
}

}  // namespace
}  // namespace hd
