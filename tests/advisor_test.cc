// Advisor tests: candidate selection, index merging, size estimation, and
// end-to-end recommendations under all three modes.
#include <gtest/gtest.h>

#include "core/advisor.h"
#include "workload/micro.h"
#include "workload/tpch.h"

namespace hd {
namespace {

class CandidateTest : public ::testing::Test {
 protected:
  CandidateTest() {
    auto fact = db_.CreateTable(
        "fact", Schema({{"fk", ValueType::kInt64, 0},
                        {"a", ValueType::kInt64, 0},
                        {"m", ValueType::kDouble, 0}}));
    std::vector<std::vector<int64_t>> cols(3);
    for (int i = 0; i < 1000; ++i) {
      cols[0].push_back(i % 50);
      cols[1].push_back(i);
      cols[2].push_back(fact.value()->PackValue(2, Value::Double(i * 0.5)));
    }
    fact.value()->BulkLoadPacked(std::move(cols));
    auto dim = db_.CreateTable("dim", Schema({{"pk", ValueType::kInt64, 0},
                                              {"attr", ValueType::kInt64, 0}}));
    std::vector<std::vector<int64_t>> dcols(2);
    for (int i = 0; i < 50; ++i) {
      dcols[0].push_back(i);
      dcols[1].push_back(i % 5);
    }
    dim.value()->BulkLoadPacked(std::move(dcols));
  }

  Query StarQuery() {
    Query q;
    q.base.table = "fact";
    q.base.preds = {Pred::Lt(1, Value::Int64(100))};
    JoinClause jc;
    jc.dim.table = "dim";
    jc.base_col = 0;
    jc.dim_col = 0;
    jc.dim.preds = {Pred::Eq(1, Value::Int64(3))};
    q.joins.push_back(jc);
    q.aggs = {AggSpec::Sum(Expr::Col(0, 2), "s")};
    return q;
  }

  Database db_;
};

TEST_F(CandidateTest, GeneratesBTreeAndCsiCandidates) {
  auto cands = GenerateCandidates(StarQuery(), &db_, AdvisorMode::kHybrid);
  bool has_pred_btree = false, has_fk_btree = false, has_csi = false,
       has_dim_cand = false;
  for (const auto& c : cands) {
    if (c.def.is_columnstore() && c.table == "fact") has_csi = true;
    if (c.def.is_btree() && c.table == "fact") {
      if (!c.def.key_cols.empty() && c.def.key_cols[0] == 1) has_pred_btree = true;
      if (!c.def.key_cols.empty() && c.def.key_cols[0] == 0) has_fk_btree = true;
    }
    if (c.table == "dim") has_dim_cand = true;
  }
  EXPECT_TRUE(has_pred_btree);
  EXPECT_TRUE(has_fk_btree);
  EXPECT_TRUE(has_csi);
  EXPECT_TRUE(has_dim_cand);
}

TEST_F(CandidateTest, ModeRestrictsTypes) {
  for (const auto& c :
       GenerateCandidates(StarQuery(), &db_, AdvisorMode::kBTreeOnly)) {
    EXPECT_TRUE(c.def.is_btree());
  }
  for (const auto& c :
       GenerateCandidates(StarQuery(), &db_, AdvisorMode::kCsiOnly)) {
    EXPECT_TRUE(c.def.is_columnstore());
  }
}

TEST_F(CandidateTest, UpdateQueriesGetNoCsiCandidates) {
  Query upd;
  upd.kind = Query::Kind::kUpdate;
  upd.base.table = "fact";
  upd.base.preds = {Pred::Eq(1, Value::Int64(5))};
  upd.sets = {UpdateSet::Add(2, 1.0)};
  for (const auto& c : GenerateCandidates(upd, &db_, AdvisorMode::kHybrid)) {
    EXPECT_TRUE(c.def.is_btree()) << c.def.Describe();
  }
}

TEST(MergeTest, PrefixKeysMerge) {
  Candidate a, b;
  a.table = b.table = "t";
  a.def.type = b.def.type = IndexDef::Type::kBTree;
  a.def.key_cols = {1};
  a.def.included_cols = {5};
  b.def.key_cols = {1, 2};
  b.def.included_cols = {7};
  auto merged = MergeCandidates({a, b});
  bool found = false;
  for (const auto& m : merged) {
    if (m.def.key_cols == std::vector<int>{1, 2}) {
      if (std::find(m.def.included_cols.begin(), m.def.included_cols.end(), 5) !=
              m.def.included_cols.end() &&
          std::find(m.def.included_cols.begin(), m.def.included_cols.end(), 7) !=
              m.def.included_cols.end()) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(MergeTest, CsiNeverMerges) {
  Candidate a, b;
  a.table = b.table = "t";
  a.def.type = IndexDef::Type::kColumnStore;
  b.def.type = IndexDef::Type::kBTree;
  b.def.key_cols = {1};
  auto merged = MergeCandidates({a, b});
  EXPECT_EQ(merged.size(), 2u);  // nothing new
}

TEST(MergeTest, DifferentTablesNeverMerge) {
  Candidate a, b;
  a.table = "t1";
  b.table = "t2";
  a.def.type = b.def.type = IndexDef::Type::kBTree;
  a.def.key_cols = {1};
  b.def.key_cols = {1, 2};
  EXPECT_EQ(MergeCandidates({a, b}).size(), 2u);
}

// ---------------- end-to-end recommendations ----------------

class AdvisorEndToEnd : public ::testing::Test {
 protected:
  AdvisorEndToEnd() {
    MicroOptions mo;
    mo.rows = 150000;
    mo.max_value = (1 << 30);
    t_ = MakeUniformIntTable(&db_, "t", 2, mo);
  }
  Database db_;
  Table* t_;
};

TEST_F(AdvisorEndToEnd, SelectiveWorkloadGetsBTree) {
  std::vector<Query> w;
  for (int i = 0; i < 5; ++i) {
    w.push_back(MicroQ1("t", 0.0001 * (i + 1), 1 << 30));
  }
  Advisor adv(&db_);
  auto rec = adv.Recommend(w);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  bool has_btree = false;
  for (const auto& ci : rec->chosen) has_btree |= ci.def.is_btree();
  EXPECT_TRUE(has_btree) << rec->Report();
  EXPECT_LT(rec->final_cost_ms, rec->initial_cost_ms / 2);
}

TEST_F(AdvisorEndToEnd, ScanWorkloadGetsCsi) {
  std::vector<Query> w;
  for (int i = 0; i < 5; ++i) {
    Query q = MicroQ3("t");
    q.group_by = {ColRef{0, 0}};
    w.push_back(q);
  }
  Advisor adv(&db_);
  auto rec = adv.Recommend(w);
  ASSERT_TRUE(rec.ok());
  bool has_csi = false;
  for (const auto& ci : rec->chosen) has_csi |= ci.def.is_columnstore();
  EXPECT_TRUE(has_csi) << rec->Report();
}

TEST_F(AdvisorEndToEnd, MixedWorkloadGetsHybrid) {
  std::vector<Query> w;
  for (int i = 0; i < 4; ++i) w.push_back(MicroQ1("t", 0.0001, 1 << 30));
  for (int i = 0; i < 4; ++i) w.push_back(MicroQ3("t"));
  Advisor adv(&db_);
  auto rec = adv.Recommend(w);
  ASSERT_TRUE(rec.ok());
  bool has_btree = false, has_csi = false;
  for (const auto& ci : rec->chosen) {
    has_btree |= ci.def.is_btree();
    has_csi |= ci.def.is_columnstore();
  }
  EXPECT_TRUE(has_btree && has_csi) << rec->Report();
}

TEST_F(AdvisorEndToEnd, StorageBudgetRespected) {
  std::vector<Query> w;
  for (int i = 0; i < 4; ++i) w.push_back(MicroQ1("t", 0.0001, 1 << 30));
  for (int i = 0; i < 4; ++i) w.push_back(MicroQ3("t"));
  AdvisorOptions ao;
  ao.storage_budget_bytes = 1 << 20;  // 1 MB: too small for any CSI
  Advisor adv(&db_, ao);
  auto rec = adv.Recommend(w);
  ASSERT_TRUE(rec.ok());
  uint64_t total = 0;
  for (const auto& ci : rec->chosen) total += ci.est_size_bytes;
  EXPECT_LE(total, ao.storage_budget_bytes);
}

TEST_F(AdvisorEndToEnd, UpdateHeavyWorkloadAvoidsCsi) {
  std::vector<Query> w;
  // Mostly updates plus one mild scan: CSI maintenance should not pay.
  for (int i = 0; i < 20; ++i) {
    Query u;
    u.kind = Query::Kind::kUpdate;
    u.id = "upd" + std::to_string(i);
    u.base.table = "t";
    u.base.preds = {Pred::Between(0, Value::Int64(i * 1000),
                                  Value::Int64(i * 1000 + 500000))};
    u.sets = {UpdateSet::Add(1, 1.0)};
    u.weight = 50;
    w.push_back(u);
  }
  w.push_back(MicroQ3("t"));
  Advisor adv(&db_);
  auto rec = adv.Recommend(w);
  ASSERT_TRUE(rec.ok());
  for (const auto& ci : rec->chosen) {
    EXPECT_TRUE(ci.def.is_btree())
        << "CSI recommended for update-heavy workload: " << rec->Report();
  }
}

TEST_F(AdvisorEndToEnd, CsiOnlyModeBuildsCsiEverywhere) {
  AdvisorOptions ao;
  ao.mode = AdvisorMode::kCsiOnly;
  Advisor adv(&db_, ao);
  std::vector<Query> w = {MicroQ3("t")};
  auto rec = adv.Recommend(w);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->chosen.size(), 1u);
  EXPECT_TRUE(rec->chosen[0].def.is_columnstore());
  EXPECT_TRUE(rec->config.Find("t")->HasCsi());
}

TEST_F(AdvisorEndToEnd, RecommendationMaterializes) {
  std::vector<Query> w = {MicroQ1("t", 0.0001, 1 << 30), MicroQ3("t")};
  Advisor adv(&db_);
  auto rec = adv.Recommend(w);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(MaterializeConfiguration(&db_, rec->config).ok());
  EXPECT_EQ(t_->secondaries().size(), rec->chosen.size());
}

// ---------------- size estimation ----------------

TEST(SizeEstimationTest, EstimatorsTrackExactSize) {
  Database db;
  TpchOptions to;
  to.rows = 60000;
  Table* li = MakeLineitem(&db, "li", to);
  SizeEstimateOptions so;
  so.sample_ratio = 0.1;
  IndexStatsInfo exact = MeasureCsiSizeExact(*li, so.rowgroup_size);
  IndexStatsInfo bb = EstimateCsiSizeBlackBox(*li, so);
  IndexStatsInfo gee = EstimateCsiSizeGee(*li, so);
  ASSERT_GT(exact.size_bytes, 0u);
  EXPECT_GT(bb.size_bytes, exact.size_bytes / 4);
  EXPECT_LT(bb.size_bytes, exact.size_bytes * 4);
  EXPECT_GT(gee.size_bytes, exact.size_bytes / 4);
  EXPECT_LT(gee.size_bytes, exact.size_bytes * 4);
  EXPECT_EQ(gee.column_bytes.size(),
            static_cast<size_t>(li->num_columns()));
}

TEST(SizeEstimationTest, GeeHandlesLowCardinalityColumns) {
  Database db;
  Table* g = MakeGroupedTable(&db, "g", 200000, 25, 7);
  SizeEstimateOptions so;
  IndexStatsInfo exact = MeasureCsiSizeExact(*g, so.rowgroup_size);
  IndexStatsInfo bb = EstimateCsiSizeBlackBox(*g, so);
  IndexStatsInfo gee = EstimateCsiSizeGee(*g, so);
  // Column 0 has 25 distinct values; black-box linear scaling overshoots.
  const double bb_ratio =
      static_cast<double>(bb.column_bytes[0]) / exact.column_bytes[0];
  const double gee_ratio =
      static_cast<double>(gee.column_bytes[0]) / exact.column_bytes[0];
  EXPECT_GT(bb_ratio, 3.0);   // the n_nationkey pathology
  EXPECT_LT(gee_ratio, 3.0);  // the run model does not scale linearly
}

}  // namespace
}  // namespace hd
